// Package aimnet is the Go client for aimserver. It speaks the
// netproto frame protocol: handshake, script execution, one-statement
// row streaming with credit-based flow control, prepared statements
// addressed by server-side id, and typed errors that round-trip the
// engine's sentinels — errors.Is(err, aim.ErrWriteConflict),
// errors.Is(err, netproto.ErrOverloaded) and friends work on a client
// error exactly as they do in-process.
//
// A Conn is one session: one transaction, one in-flight request at a
// time (concurrent callers serialize on an internal mutex, like a
// single database/sql connection). Statement cancellation rides the
// request's context: when it fires mid-request the client sends a
// Cancel frame and the server answers with a canceled error.
//
// When the server sheds work under overload it attaches a retry-after
// hint; Dial and every statement entry point honor it with jittered
// exponential backoff up to Options.MaxRetries before giving up —
// sheds are safe to retry because a shed statement never started.
package aimnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/netproto"
)

// Options tune a client connection. The zero value works.
type Options struct {
	// Client is the name sent in the handshake (diagnostics).
	Client string
	// DialTimeout bounds the TCP connect + handshake (default 5s).
	DialTimeout time.Duration
	// Window is the row-stream credit window: how many rows the server
	// may send ahead of consumption (default 128).
	Window uint32
	// MaxRetries bounds the jittered-backoff retries when the server
	// sheds a connection or statement with an overload error
	// (default 4; negative disables retry).
	MaxRetries int
}

func (o Options) withDefaults() Options {
	if o.Client == "" {
		o.Client = "aimnet"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Window == 0 {
		o.Window = 128
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	return o
}

// Conn is one client session on an aimserver.
type Conn struct {
	opts Options

	// mu serializes requests: the protocol is strictly
	// request-response per session.
	mu sync.Mutex
	// wmu serializes frame writes so a Cancel from the context watcher
	// never interleaves with a request write.
	wmu sync.Mutex

	c         net.Conn
	br        *bufio.Reader
	sessionID uint64
	txnOpen   bool
	closed    bool
}

// Dial connects and performs the handshake. A server that refuses the
// connection under overload is retried with jittered backoff honoring
// its retry-after hint, up to MaxRetries.
func Dial(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := dialOnce(addr, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		hint, retriable := shedHint(err)
		if !retriable || attempt >= opts.MaxRetries {
			return nil, lastErr
		}
		time.Sleep(backoff(attempt, hint))
	}
}

func dialOnce(addr string, opts Options) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	c := &Conn{opts: opts, c: nc, br: bufio.NewReader(nc)}
	hello := &netproto.Hello{Version: netproto.Version, Client: opts.Client}
	if err := netproto.WriteFrame(nc, netproto.TypeHello, hello.Encode()); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := netproto.ReadFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("aimnet: handshake: %w", err)
	}
	switch typ {
	case netproto.TypeHelloOK:
		ok, err := netproto.DecodeHelloOK(payload)
		if err != nil {
			nc.Close()
			return nil, err
		}
		c.sessionID = ok.SessionID
		nc.SetDeadline(time.Time{})
		return c, nil
	case netproto.TypeError:
		m, derr := netproto.DecodeError(payload)
		nc.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, m.DecodeWireError()
	default:
		nc.Close()
		return nil, fmt.Errorf("aimnet: unexpected handshake frame 0x%02x", typ)
	}
}

// shedHint reports whether err is a retriable overload shed and its
// backoff hint.
func shedHint(err error) (time.Duration, bool) {
	var se *netproto.ServerError
	if errors.As(err, &se) && se.Code == netproto.CodeOverloaded {
		return se.RetryAfter, true
	}
	return 0, false
}

// backoff computes jittered exponential backoff from the server's
// retry-after hint: uniformly random in [d/2, d] where d doubles per
// attempt, capped at one second.
func backoff(attempt int, hint time.Duration) time.Duration {
	if hint <= 0 {
		hint = 25 * time.Millisecond
	}
	d := hint << uint(attempt)
	if d > time.Second {
		d = time.Second
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// SessionID is the server-assigned session id (diagnostics).
func (c *Conn) SessionID() uint64 { return c.sessionID }

// TxnOpen reports whether the session has an open transaction, as of
// the last completed request.
func (c *Conn) TxnOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txnOpen
}

// Close says Goodbye and closes the connection. Idempotent.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.c.SetWriteDeadline(time.Now().Add(time.Second))
	c.writeFrame(netproto.TypeGoodbye, nil)
	return c.c.Close()
}

func (c *Conn) writeFrame(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return netproto.WriteFrame(c.c, typ, payload)
}

// watchCancel forwards a context cancellation as a Cancel frame while
// a request is in flight. The returned stop must be called when the
// request completes.
func (c *Conn) watchCancel(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.writeFrame(netproto.TypeCancel, nil)
		case <-stopCh:
		}
	}()
	return func() { close(stopCh) }
}

// die marks the connection broken (I/O error mid-request: the stream
// position is unknown, so the session cannot be reused).
func (c *Conn) die(err error) error {
	if !c.closed {
		c.closed = true
		c.c.Close()
	}
	return err
}

func (c *Conn) checkOpen() error {
	if c.closed {
		return errors.New("aimnet: connection closed")
	}
	return nil
}

// Result is one statement's materialized outcome.
type Result = netproto.Result

// Exec runs a script of semicolon-separated statements with
// materialized results. BEGIN/COMMIT/ROLLBACK inside the script
// manage the session transaction. Overload sheds are retried with
// backoff; other errors are returned typed.
func (c *Conn) Exec(ctx context.Context, script string) ([]Result, error) {
	var out []Result
	err := c.withRetry(ctx, func() error {
		var err error
		out, err = c.execOnce(ctx, script)
		return err
	})
	return out, err
}

func (c *Conn) execOnce(ctx context.Context, script string) ([]Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	m := &netproto.Exec{Script: script}
	if err := c.writeFrame(netproto.TypeExec, m.Encode()); err != nil {
		return nil, c.die(err)
	}
	typ, payload, err := netproto.ReadFrame(c.br)
	if err != nil {
		return nil, c.die(err)
	}
	switch typ {
	case netproto.TypeResults:
		res, err := netproto.DecodeResults(payload)
		if err != nil {
			return nil, c.die(err)
		}
		c.txnOpen = res.TxnOpen
		return res.Results, nil
	case netproto.TypeError:
		return nil, c.serverErr(payload)
	default:
		return nil, c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}

// serverErr decodes an Error frame into the typed client error,
// tracking the transaction flag it carries.
func (c *Conn) serverErr(payload []byte) error {
	m, err := netproto.DecodeError(payload)
	if err != nil {
		return c.die(err)
	}
	c.txnOpen = m.TxnOpen
	return m.DecodeWireError()
}

// withRetry retries fn on overload sheds with jittered backoff.
func (c *Conn) withRetry(ctx context.Context, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		hint, retriable := shedHint(err)
		if !retriable || attempt >= c.opts.MaxRetries {
			return err
		}
		select {
		case <-time.After(backoff(attempt, hint)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Info fetches the server's counters (the wire form of
// aim.Stats().Net).
func (c *Conn) Info(ctx context.Context) (map[string]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	if err := c.writeFrame(netproto.TypeInfo, nil); err != nil {
		return nil, c.die(err)
	}
	typ, payload, err := netproto.ReadFrame(c.br)
	if err != nil {
		return nil, c.die(err)
	}
	switch typ {
	case netproto.TypeInfoResp:
		m, err := netproto.DecodeInfoResp(payload)
		if err != nil {
			return nil, c.die(err)
		}
		out := make(map[string]int64, len(m.Fields))
		for _, f := range m.Fields {
			out[f.Key] = f.Val
		}
		return out, nil
	case netproto.TypeError:
		return nil, c.serverErr(payload)
	default:
		return nil, c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}

// Tuple is a row as streamed from the server.
type Tuple = model.Tuple

// Value is one NF² value: a prepared statement's arguments and a
// tuple's fields. The scalar kinds below convert plain Go values
// (aimnet.Int(7), aimnet.Str("x")); the model package is internal, so
// these aliases are the public way in.
type (
	Value = model.Value
	Int   = model.Int
	Float = model.Float
	Str   = model.Str
	Bool  = model.Bool
	Time  = model.Time
	Null  = model.Null
)
