package aimnet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/netproto"
)

// Rows streams one SELECT's result. The connection stays dedicated to
// the stream until Close or exhaustion (Next returning false), exactly
// like an engine.Rows dedicates its cursor: iterate promptly, close
// always.
//
// Flow control is credit-based: the server may send at most Window
// rows ahead of what the client has consumed. Next grants more credit
// (a Fetch frame) whenever the remaining window falls to half, so a
// steadily-consuming client streams without stalls while a stalled
// client stalls the server after at most Window rows — bounded memory
// on both sides.
type Rows struct {
	c      *Conn
	ctx    context.Context
	stop   func()
	typ    *model.TableType
	tup    model.Tuple
	err    error
	done   bool
	closed bool
	n      uint64
	// remaining is the credit the server still holds.
	remaining uint32
	aborted   bool
	txnOpen   bool
}

// Query runs one SELECT and streams its rows. The returned Rows owns
// the connection until Close. Overload sheds are retried with backoff
// before the stream starts.
func (c *Conn) Query(ctx context.Context, sqlText string) (*Rows, error) {
	var r *Rows
	err := c.withRetry(ctx, func() error {
		var err error
		r, err = c.queryOnce(ctx, sqlText)
		return err
	})
	return r, err
}

func (c *Conn) queryOnce(ctx context.Context, sqlText string) (*Rows, error) {
	c.mu.Lock()
	if err := c.checkOpen(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	m := &netproto.Query{SQL: sqlText, Window: c.opts.Window}
	if err := c.writeFrame(netproto.TypeQuery, m.Encode()); err != nil {
		c.mu.Unlock()
		return nil, c.die(err)
	}
	return c.startStream(ctx)
}

// startStream reads the stream opening (RowHeader or Error) with c.mu
// held; on success the lock stays held by the returned Rows until its
// Close.
func (c *Conn) startStream(ctx context.Context) (*Rows, error) {
	stop := c.watchCancel(ctx)
	typ, payload, err := netproto.ReadFrame(c.br)
	if err != nil {
		stop()
		c.mu.Unlock()
		return nil, c.die(err)
	}
	switch typ {
	case netproto.TypeRowHeader:
		h, err := netproto.DecodeRowHeader(payload)
		if err != nil {
			stop()
			c.mu.Unlock()
			return nil, c.die(err)
		}
		return &Rows{c: c, ctx: ctx, stop: stop, typ: h.Type, remaining: c.opts.Window}, nil
	case netproto.TypeError:
		stop()
		defer c.mu.Unlock()
		return nil, c.serverErr(payload)
	default:
		stop()
		c.mu.Unlock()
		return nil, c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}

// Type is the result schema.
func (r *Rows) Type() *model.TableType { return r.typ }

// Next advances to the next row, granting flow-control credit as the
// window drains. It returns false at end of stream or error; check
// Err.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	// Top the window back up once half is consumed.
	if !r.aborted && r.remaining <= r.c.opts.Window/2 {
		grant := r.c.opts.Window - r.remaining
		if err := r.c.writeFrame(netproto.TypeFetch, (&netproto.Fetch{N: grant}).Encode()); err != nil {
			r.fail(r.c.die(err))
			return false
		}
		r.remaining += grant
	}
	typ, payload, err := netproto.ReadFrame(r.c.br)
	if err != nil {
		r.fail(r.c.die(err))
		return false
	}
	switch typ {
	case netproto.TypeRow:
		m, err := netproto.DecodeRow(payload)
		if err != nil {
			r.fail(r.c.die(err))
			return false
		}
		r.tup = m.Tuple
		r.n++
		if r.remaining > 0 {
			r.remaining--
		}
		return true
	case netproto.TypeDone:
		m, err := netproto.DecodeDone(payload)
		if err != nil {
			r.fail(r.c.die(err))
			return false
		}
		r.finish(m.TxnOpen)
		return false
	case netproto.TypeError:
		r.fail(r.c.serverErr(payload))
		r.finish(r.c.txnOpen)
		return false
	default:
		r.fail(r.c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ)))
		return false
	}
}

func (r *Rows) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// finish ends the stream and releases the connection.
func (r *Rows) finish(txnOpen bool) {
	if r.done {
		return
	}
	r.done = true
	r.c.txnOpen = txnOpen
	r.stop()
	r.c.mu.Unlock()
}

// Tuple is the current row (valid until the next Next).
func (r *Rows) Tuple() model.Tuple { return r.tup }

// Err reports the error that ended iteration, if any.
func (r *Rows) Err() error {
	if r.err != nil && errors.Is(r.err, context.Canceled) && r.ctx.Err() != nil {
		return r.ctx.Err()
	}
	return r.err
}

// N is the number of rows received so far.
func (r *Rows) N() uint64 { return r.n }

// Close abandons the stream: it tells the server to drop the cursor
// (StreamClose) and drains frames until the server confirms, then
// releases the connection. Idempotent; safe after exhaustion.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done {
		return nil
	}
	r.aborted = true
	if err := r.c.writeFrame(netproto.TypeStreamClose, nil); err != nil {
		r.fail(r.c.die(err))
		r.finish(r.c.txnOpen)
		return nil
	}
	// Drain in-flight rows until the server's Done/Error.
	for !r.done {
		typ, payload, err := netproto.ReadFrame(r.c.br)
		if err != nil {
			r.fail(r.c.die(err))
			r.finish(r.c.txnOpen)
			return nil
		}
		switch typ {
		case netproto.TypeRow:
			// discard
		case netproto.TypeDone:
			if m, err := netproto.DecodeDone(payload); err == nil {
				r.finish(m.TxnOpen)
			} else {
				r.fail(r.c.die(err))
				r.finish(r.c.txnOpen)
			}
		case netproto.TypeError:
			r.fail(r.c.serverErr(payload))
			r.finish(r.c.txnOpen)
		default:
			r.fail(r.c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ)))
			r.finish(r.c.txnOpen)
		}
	}
	return nil
}

// Stmt is a prepared statement held server-side, addressed by id.
type Stmt struct {
	c         *Conn
	id        uint64
	numParams int
	isSelect  bool
	text      string
	closed    bool
}

// Prepare parses and binds one statement server-side.
func (c *Conn) Prepare(ctx context.Context, sqlText string) (*Stmt, error) {
	var st *Stmt
	err := c.withRetry(ctx, func() error {
		var err error
		st, err = c.prepareOnce(ctx, sqlText)
		return err
	})
	return st, err
}

func (c *Conn) prepareOnce(ctx context.Context, sqlText string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	stop := c.watchCancel(ctx)
	defer stop()
	m := &netproto.Prepare{SQL: sqlText}
	if err := c.writeFrame(netproto.TypePrepare, m.Encode()); err != nil {
		return nil, c.die(err)
	}
	typ, payload, err := netproto.ReadFrame(c.br)
	if err != nil {
		return nil, c.die(err)
	}
	switch typ {
	case netproto.TypePrepared:
		p, err := netproto.DecodePrepared(payload)
		if err != nil {
			return nil, c.die(err)
		}
		return &Stmt{c: c, id: p.ID, numParams: int(p.NumParams), isSelect: p.IsSelect, text: sqlText}, nil
	case netproto.TypeError:
		return nil, c.serverErr(payload)
	default:
		return nil, c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}

// NumParams is the number of ? placeholders.
func (s *Stmt) NumParams() int { return s.numParams }

// IsSelect reports whether the statement is a query.
func (s *Stmt) IsSelect() bool { return s.isSelect }

// Text is the statement's SQL.
func (s *Stmt) Text() string { return s.text }

// Exec runs the prepared statement with bound arguments, materialized.
func (s *Stmt) Exec(ctx context.Context, args ...model.Value) (Result, error) {
	var out Result
	err := s.c.withRetry(ctx, func() error {
		var err error
		out, err = s.execOnce(ctx, args)
		return err
	})
	return out, err
}

func (s *Stmt) execOnce(ctx context.Context, args []model.Value) (Result, error) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if err := s.c.checkOpen(); err != nil {
		return Result{}, err
	}
	if s.closed {
		return Result{}, errors.New("aimnet: statement closed")
	}
	stop := s.c.watchCancel(ctx)
	defer stop()
	m := &netproto.StmtExec{ID: s.id, Args: args}
	payload, err := m.Encode()
	if err != nil {
		return Result{}, err
	}
	if err := s.c.writeFrame(netproto.TypeStmtExec, payload); err != nil {
		return Result{}, s.c.die(err)
	}
	typ, resp, err := netproto.ReadFrame(s.c.br)
	if err != nil {
		return Result{}, s.c.die(err)
	}
	switch typ {
	case netproto.TypeResults:
		res, err := netproto.DecodeResults(resp)
		if err != nil {
			return Result{}, s.c.die(err)
		}
		s.c.txnOpen = res.TxnOpen
		if len(res.Results) != 1 {
			return Result{}, fmt.Errorf("aimnet: expected 1 result, got %d", len(res.Results))
		}
		return res.Results[0], nil
	case netproto.TypeError:
		return Result{}, s.c.serverErr(resp)
	default:
		return Result{}, s.c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}

// Query streams the prepared SELECT with bound arguments.
func (s *Stmt) Query(ctx context.Context, args ...model.Value) (*Rows, error) {
	var r *Rows
	err := s.c.withRetry(ctx, func() error {
		var err error
		r, err = s.queryOnce(ctx, args)
		return err
	})
	return r, err
}

func (s *Stmt) queryOnce(ctx context.Context, args []model.Value) (*Rows, error) {
	s.c.mu.Lock()
	if err := s.c.checkOpen(); err != nil {
		s.c.mu.Unlock()
		return nil, err
	}
	if s.closed {
		s.c.mu.Unlock()
		return nil, errors.New("aimnet: statement closed")
	}
	m := &netproto.StmtQuery{ID: s.id, Window: s.c.opts.Window, Args: args}
	payload, err := m.Encode()
	if err != nil {
		s.c.mu.Unlock()
		return nil, err
	}
	if err := s.c.writeFrame(netproto.TypeStmtQuery, payload); err != nil {
		s.c.mu.Unlock()
		return nil, s.c.die(err)
	}
	return s.c.startStream(ctx)
}

// Close drops the server-side statement. Idempotent.
func (s *Stmt) Close() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.closed || s.c.closed {
		s.closed = true
		return nil
	}
	s.closed = true
	m := &netproto.StmtClose{ID: s.id}
	if err := s.c.writeFrame(netproto.TypeStmtClose, m.Encode()); err != nil {
		return s.c.die(err)
	}
	typ, payload, err := netproto.ReadFrame(s.c.br)
	if err != nil {
		return s.c.die(err)
	}
	switch typ {
	case netproto.TypeDone:
		return nil
	case netproto.TypeError:
		return s.c.serverErr(payload)
	default:
		return s.c.die(fmt.Errorf("aimnet: unexpected frame 0x%02x", typ))
	}
}
