package aim_test

import (
	"strings"
	"testing"

	"repro"
)

func openLoaded(t testing.TB) *aim.DB {
	t.Helper()
	db, err := aim.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
CREATE TABLE DEPARTMENTS (
  DNO INT, MGRNO INT,
  PROJECTS TABLE OF (PNO INT, PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
);
INSERT INTO DEPARTMENTS VALUES
 (314, 56194,
  {(17, 'CGA', {(39582, 'Leader'), (56019, 'Consultant')}),
   (23, 'HEAP', {(58912, 'Staff')})},
  320000, {(2, '3278'), (3, 'PC/AT')}),
 (218, 71349, {(25, 'TEXT', {(89921, 'Consultant')})}, 440000, {(1, 'PC')});
`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicQueryAndFormat(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	rows, schema, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].(aim.Int) != 314 {
		t.Fatalf("rows = %v", rows)
	}
	out := aim.Format("RESULT", schema, rows)
	if !strings.Contains(out, "314") || !strings.Contains(out, "DNO") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestPublicObjectStatsAndRefs(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	refs, err := db.Refs("DEPARTMENTS")
	if err != nil || len(refs) != 2 {
		t.Fatalf("refs = %v, %v", refs, err)
	}
	stats, err := db.ObjectStats("DEPARTMENTS", refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Layout != aim.SS3 {
		t.Errorf("default layout = %s", stats.Layout)
	}
	if stats.MDSubtuples < 3 || stats.DataSubtuples < 5 {
		t.Errorf("stats = %+v", stats)
	}
	if _, err := db.ObjectStats("NOPE", refs[0]); err == nil {
		t.Error("stats on missing table succeeded")
	}
}

func TestPublicCheckoutCheckIn(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	refs, _ := db.Refs("DEPARTMENTS")
	snap, err := db.Checkout("DEPARTMENTS", refs[0])
	if err != nil {
		t.Fatal(err)
	}
	ws, err := aim.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := ws.Exec(`
CREATE TABLE DEPARTMENTS (
  DNO INT, MGRNO INT,
  PROJECTS TABLE OF (PNO INT, PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
)`); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.CheckIn("DEPARTMENTS", snap); err != nil {
		t.Fatal(err)
	}
	rows, _, err := ws.Query(`SELECT x.DNO, COUNT(x.PROJECTS) FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][1].(aim.Int) != 2 {
		t.Fatalf("checked-in object = %v", rows)
	}
	// Queries on the workstation copy see the imported data via the
	// registered indexesless path; add an index after import.
	if _, err := ws.Exec(`CREATE INDEX fn ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION)`); err != nil {
		t.Fatal(err)
	}
	got, _, err := ws.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("indexed query over imported object = %v", got)
	}
}

func TestPublicTNames(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	refs, _ := db.Refs("DEPARTMENTS")
	reg, err := db.TNames("DEPARTMENTS")
	if err != nil {
		t.Fatal(err)
	}
	name, err := reg.SubobjectName(refs[0], aim.Step{Attr: 2, Pos: 0})
	if err != nil {
		t.Fatal(err)
	}
	token := name.Encode()
	back, err := aim.DecodeTName(token)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := reg.ResolveTuple(back)
	if err != nil {
		t.Fatal(err)
	}
	if tup[1].(aim.Str) != "CGA" {
		t.Errorf("t-name resolves to %v", tup)
	}
}

func TestPublicBufferStats(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	db.ResetBufferStats()
	if _, _, err := db.Query(`SELECT * FROM x IN DEPARTMENTS`); err != nil {
		t.Fatal(err)
	}
	st := db.BufferStats()
	if st.Fetches == 0 {
		t.Error("no fetches recorded")
	}
}

func TestPublicPersistentOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := aim.Open(aim.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE T (A INT); INSERT INTO T VALUES (7);`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := aim.Open(aim.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, _, err := db2.Query(`SELECT t.A FROM t IN T`)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("after reopen: %v, %v", rows, err)
	}
}

// The package documentation example must actually work.
func TestDocExample(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE DEPARTMENTS (
	    DNO INT, MGRNO INT,
	    PROJECTS TABLE OF (PNO INT, PNAME STRING,
	        MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
	    BUDGET INT,
	    EQUIP TABLE OF (QU INT, TYPE STRING))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO DEPARTMENTS VALUES
	    (314, 56194, {(17, 'CGA', {(39582, 'Leader')})}, 320000, {(2, '3278')})`); err != nil {
		t.Fatal(err)
	}
	rows, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS
	    WHERE EXISTS y IN x.EQUIP: y.TYPE = '3278'`)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("doc example: %v, %v", rows, err)
	}
}

// The streaming cursor of the README example: QueryRows + Scan +
// Stats, matching the materialized result.
func TestPublicQueryRows(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	want, _, err := db.Query(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY x.DNO`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ORDER BY x.DNO`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	i := 0
	for rows.Next() {
		var dno, budget int
		if err := rows.Scan(&dno, &budget); err != nil {
			t.Fatal(err)
		}
		if aim.Int(dno) != want.Tuples[i][0] || aim.Int(budget) != want.Tuples[i][1] {
			t.Errorf("row %d = (%d, %d), want %v", i, dno, budget, want.Tuples[i])
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if i != want.Len() {
		t.Fatalf("streamed %d rows, want %d", i, want.Len())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.LastStatement.Rows != want.Len() || s.LastStatement.Fetches == 0 {
		t.Errorf("Stats().LastStatement = %+v", s.LastStatement)
	}
	if s.Buffer.Fetches == 0 {
		t.Error("Stats().Buffer empty")
	}
}
