// Package aim is a from-scratch reproduction of the AIM-II DBMS
// prototype described in "A DBMS Prototype to Support Extended NF²
// Relations: An Integrated View on Flat Tables and Hierarchies"
// (Dadam et al., SIGMOD 1986): a database system for the extended NF²
// data model, which treats flat relations, ordered tables (lists) and
// arbitrarily nested hierarchical structures (complex objects)
// uniformly.
//
// The system provides:
//
//   - an SQL-like query language generalized for nested tables
//     (nested SELECT result construction, range variables over any
//     nesting level, EXISTS/ALL quantifiers, joins across levels,
//     list indexing, masked text search, ASOF time-version queries);
//   - complex-object storage with Mini Directories in all three
//     storage structures of the paper (SS1, SS2, SS3), local address
//     spaces with page lists and Mini TIDs, page-level check-out;
//   - B-tree indexes with hierarchical addresses (plus the paper's
//     two rejected strategies for comparison), word-fragment text
//     indexes, and tuple names;
//   - a full storage stack: slotted pages, segments, buffer pool,
//     write-ahead logging and crash recovery.
//
// Quick start:
//
//	db, _ := aim.OpenMemory()
//	defer db.Close()
//	db.Exec(`CREATE TABLE DEPARTMENTS (
//	    DNO INT, MGRNO INT,
//	    PROJECTS TABLE OF (PNO INT, PNAME STRING,
//	        MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
//	    BUDGET INT,
//	    EQUIP TABLE OF (QU INT, TYPE STRING))`)
//	db.Exec(`INSERT INTO DEPARTMENTS VALUES
//	    (314, 56194, {(17, 'CGA', {(39582, 'Leader')})}, 320000, {(2, '3278')})`)
//	rows, schema, _ := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS
//	    WHERE EXISTS y IN x.EQUIP: y.TYPE = '3278'`)
//	fmt.Println(aim.Format("RESULT", schema, rows))
package aim

import (
	"context"
	"reflect"
	"time"

	"repro/internal/buffer"
	"repro/internal/dberr"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/scrub"
	"repro/internal/tname"
)

// Re-exported model types: values and schemas of the extended NF²
// data model.
type (
	// Value is any attribute value: an atomic value or a *Table.
	Value = model.Value
	// Tuple is one tuple (complex object or subobject).
	Tuple = model.Tuple
	// Table is a table value: ordered (list) or unordered (relation).
	Table = model.Table
	// TableType describes a (possibly nested) table schema.
	TableType = model.TableType
	// Attr is one attribute of a table type.
	Attr = model.Attr
	// Type is an attribute type: atomic or table-valued.
	Type = model.Type
)

// Re-exported atomic value constructors.
type (
	// Int is an atomic integer value.
	Int = model.Int
	// Float is an atomic floating point value.
	Float = model.Float
	// Str is an atomic string value.
	Str = model.Str
	// Bool is an atomic boolean value.
	Bool = model.Bool
	// Time is an atomic instant value.
	Time = model.Time
	// Null is the atomic null value.
	Null = model.Null
)

// Layout selects the Mini Directory storage structure for NF² tables
// (Fig 6 of the paper).
type Layout = object.Layout

// The three storage structures; SS3 is AIM-II's (and this package's)
// default.
const (
	SS1 = object.SS1
	SS2 = object.SS2
	SS3 = object.SS3
)

// Options configures a database.
type Options struct {
	// Dir is the database directory; empty means in-memory.
	Dir string
	// PoolPages is the buffer pool capacity in 4 KiB pages
	// (default 1024).
	PoolPages int
	// PoolShards overrides the buffer pool's lock-stripe count (a
	// power of two; 0 derives it from PoolPages). The pool shards
	// automatically for large capacities; set this only to force a
	// specific stripe count in benchmarks or tests.
	PoolShards int
	// DisableWAL turns off write-ahead logging for on-disk databases.
	DisableWAL bool
	// DefaultLayout is the storage structure for new NF² tables
	// (default SS3).
	DefaultLayout Layout
	// Clock supplies timestamps for versioned tables (default
	// wall-clock nanoseconds).
	Clock func() int64
	// WALSegmentBytes bounds each WAL segment file; once a checkpoint
	// passes a segment, the file is recycled. 0 uses the default
	// (4 MiB); negative keeps the log in one unbounded file.
	WALSegmentBytes int64
	// CheckpointEvery starts a background checkpointer with the given
	// period. 0 disables it; Checkpoint can always be called directly.
	CheckpointEvery time.Duration
	// GroupCommitWait is the extra time a group-commit leader waits for
	// concurrent committers to join its fsync when some are already
	// pending. 0 means leaders never dally; a lone committer never
	// waits either way.
	GroupCommitWait time.Duration
}

// DB is a database handle.
type DB struct {
	eng *engine.DB
}

// Result is the outcome of one executed statement.
type Result = engine.Result

// Open opens (or creates) a database.
func Open(opts Options) (*DB, error) {
	eng, err := engine.Open(engine.Options{
		Dir:             opts.Dir,
		PoolPages:       opts.PoolPages,
		PoolShards:      opts.PoolShards,
		DisableWAL:      opts.DisableWAL,
		DefaultLayout:   opts.DefaultLayout,
		Clock:           opts.Clock,
		WALSegmentBytes: opts.WALSegmentBytes,
		CheckpointEvery: opts.CheckpointEvery,
		GroupCommitWait: opts.GroupCommitWait,
	})
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// OpenMemory opens a fresh in-memory database.
func OpenMemory() (*DB, error) { return Open(Options{}) }

// Close checkpoints and closes the database.
func (db *DB) Close() error { return db.eng.Close() }

// Exec parses and runs a script of semicolon-separated NF² SQL
// statements, committing after each.
func (db *DB) Exec(script string) ([]Result, error) { return db.eng.Exec(script) }

// ExecContext is Exec with cancellation: a canceled or expired
// context fails the current statement promptly (long scans check it
// once per tuple binding), and a failed mutating statement is rolled
// back to the previous statement boundary like any other error.
func (db *DB) ExecContext(ctx context.Context, script string) ([]Result, error) {
	return db.eng.ExecContext(ctx, script)
}

// Query runs one SELECT and returns the result table and its schema,
// fully materialized. It is a convenience wrapper over the streaming
// path (QueryRows): the engine reads objects pruned to the query's
// attribute paths either way.
func (db *DB) Query(q string) (*Table, *TableType, error) { return db.eng.Query(q) }

// QueryContext is Query with cancellation.
func (db *DB) QueryContext(ctx context.Context, q string) (*Table, *TableType, error) {
	return db.eng.QueryContext(ctx, q)
}

// Rows is a streaming query cursor: result tuples are produced one
// Next at a time, and only the attribute paths the query actually
// references are fetched from storage. Iterate with Next, read the
// current tuple with Tuple or Scan, and Close when done (Close is
// idempotent; a cursor abandoned without Close holds no buffer pages
// and blocks no writers):
//
//	rows, _ := db.QueryRows(`SELECT x.DNO FROM x IN DEPARTMENTS`)
//	defer rows.Close()
//	for rows.Next() {
//	    var dno int
//	    rows.Scan(&dno)
//	}
//	err := rows.Err()
type Rows = engine.Rows

// QueryRows runs one SELECT and returns a streaming cursor over its
// result.
func (db *DB) QueryRows(q string) (*Rows, error) { return db.eng.QueryRows(q) }

// QueryRowsContext is QueryRows with cancellation: the context is
// checked once per Next call, so an abandoned iteration stops within
// one tuple's worth of work.
func (db *DB) QueryRowsContext(ctx context.Context, q string) (*Rows, error) {
	return db.eng.QueryRowsContext(ctx, q)
}

// --- prepared statements -------------------------------------------------

// Stmt is a prepared statement: parsed once, planned once, executed
// any number of times with different arguments bound to its `?`
// placeholders (positional, in order of appearance). Re-execution
// performs no parser and no planner work — the plan is reused until a
// schema or index change invalidates it, at which point the next
// execution transparently re-plans from the kept parse tree. A Stmt
// is safe for concurrent use.
//
//	stmt, _ := db.Prepare(`SELECT x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`)
//	for _, dno := range []int{314, 315} {
//	    rows, _, _ := stmt.Query(dno)
//	    ...
//	}
type Stmt struct {
	ps *engine.PreparedStmt
}

// Prepare parses and plans one statement, which may contain `?`
// placeholders in any expression position (WHERE comparisons, INSERT
// values, SET clauses). Unknown tables and type errors surface here
// rather than at execution.
func (db *DB) Prepare(q string) (*Stmt, error) {
	ps, err := db.eng.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{ps: ps}, nil
}

// coerceArg converts a Go argument value to a model value: int/int64
// → INT, float64 → FLOAT, string → STRING, bool → BOOL, time.Time →
// TIME, nil → NULL; model values pass through.
func coerceArg(a any) (Value, error) {
	switch x := a.(type) {
	case nil:
		return model.Null{}, nil
	case model.Value:
		return x, nil
	case int:
		return model.Int(x), nil
	case int64:
		return model.Int(x), nil
	case float64:
		return model.Float(x), nil
	case string:
		return model.Str(x), nil
	case bool:
		return model.Bool(x), nil
	case time.Time:
		return model.TimeOf(x), nil
	}
	return nil, errBadArg{a}
}

type errBadArg struct{ a any }

func (e errBadArg) Error() string {
	return "aim: unsupported argument type " + typeName(e.a)
}

func typeName(a any) string { return reflect.TypeOf(a).String() }

func coerceArgs(args []any) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := coerceArg(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Exec runs the prepared statement with the given arguments (one per
// `?`) and commits it.
func (s *Stmt) Exec(args ...any) (Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (Result, error) {
	vals, err := coerceArgs(args)
	if err != nil {
		return Result{}, err
	}
	return s.ps.ExecContext(ctx, vals...)
}

// Query runs the prepared SELECT with the given arguments,
// materialized.
func (s *Stmt) Query(args ...any) (*Table, *TableType, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Table, *TableType, error) {
	vals, err := coerceArgs(args)
	if err != nil {
		return nil, nil, err
	}
	return s.ps.QueryContext(ctx, vals...)
}

// QueryRows runs the prepared SELECT with the given arguments and
// returns a streaming cursor.
func (s *Stmt) QueryRows(args ...any) (*Rows, error) {
	return s.QueryRowsContext(context.Background(), args...)
}

// QueryRowsContext is QueryRows with cancellation.
func (s *Stmt) QueryRowsContext(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := coerceArgs(args)
	if err != nil {
		return nil, err
	}
	return s.ps.QueryRowsContext(ctx, vals...)
}

// Explain renders the statement's bound access plan — chosen indexes,
// operators, fetch sets per range variable — without executing
// anything, and reports whether the plan came from the shared plan
// cache.
func (s *Stmt) Explain() (plan []string, fromCache bool, err error) {
	return s.ps.Explain()
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.ps.NumParams() }

// Text returns the statement's SQL text.
func (s *Stmt) Text() string { return s.ps.Text() }

// --- transactions --------------------------------------------------------

// Tx is a multi-statement transaction under snapshot isolation: every
// read of a versioned table sees the database exactly as of Begin
// (plus the transaction's own writes), writes are buffered and
// applied atomically at Commit under first-writer-wins conflict
// detection (ErrWriteConflict), and Rollback discards everything.
// Unversioned tables keep no version chains, so transactional reads
// of them see the current committed state; their writes still get the
// same buffering, conflict detection and atomic commit.
//
// A Tx must not be shared between goroutines; any number of
// transactions (and auto-commit statements) may run concurrently on
// the same DB from different goroutines.
//
//	tx, _ := db.Begin()
//	tx.Exec(`UPDATE x IN DEPARTMENTS SET BUDGET = 1 WHERE x.DNO = 314`)
//	if err := tx.Commit(); errors.Is(err, aim.ErrWriteConflict) {
//	    // a concurrent transaction won; retry
//	}
type Tx struct {
	tx *engine.Txn
}

// ErrWriteConflict is returned (by Tx writes) when the object being
// written was already written by a concurrent transaction — either
// one still active, or one that committed after this transaction
// began. The losing transaction should roll back and retry.
var ErrWriteConflict = engine.ErrWriteConflict

// ErrTxnDone is returned by operations on a committed or rolled-back
// transaction.
var ErrTxnDone = engine.ErrTxnDone

// ErrTxnDDL is returned for DDL statements inside a transaction;
// schema changes are auto-commit only.
var ErrTxnDDL = engine.ErrTxnDDL

// ErrReadOnlyReplica is returned for writes, DDL and transactions on a
// database opened as a read replica (aimserver -follow); it round-trips
// the network protocol, so errors.Is works on aimnet client errors too.
var ErrReadOnlyReplica = engine.ErrReadOnlyReplica

// Begin starts a transaction at the current instant.
func (db *DB) Begin() (*Tx, error) {
	tx, err := db.eng.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// Exec runs a script of statements inside the transaction. Writes are
// buffered; a failing statement rolls back only its own effects and
// the transaction stays usable.
func (tx *Tx) Exec(script string) ([]Result, error) { return tx.tx.Exec(script) }

// ExecContext is Exec with cancellation.
func (tx *Tx) ExecContext(ctx context.Context, script string) ([]Result, error) {
	return tx.tx.ExecContext(ctx, script)
}

// Query runs one SELECT at the transaction's snapshot, materialized.
func (tx *Tx) Query(q string) (*Table, *TableType, error) { return tx.tx.Query(q) }

// QueryRows runs one SELECT at the transaction's snapshot and returns
// a streaming cursor; the result stays consistent even while other
// transactions commit.
func (tx *Tx) QueryRows(q string) (*Rows, error) { return tx.tx.QueryRows(q) }

// QueryRowsContext is QueryRows with cancellation.
func (tx *Tx) QueryRowsContext(ctx context.Context, q string) (*Rows, error) {
	return tx.tx.QueryRowsContext(ctx, q)
}

// TxStmt is a prepared statement bound to one transaction: the parse
// is reused, reads see the transaction's snapshot plus its own
// buffered writes, and writes join the transaction's buffer.
//
//	stmt, _ := db.Prepare(`UPDATE x IN DEPARTMENTS SET BUDGET = ? WHERE x.DNO = ?`)
//	tx, _ := db.Begin()
//	tx.Stmt(stmt).Exec(500000, 314)
//	tx.Commit()
type TxStmt struct {
	tx *engine.Txn
	ps *engine.PreparedStmt
}

// Stmt binds a prepared statement to the transaction.
func (tx *Tx) Stmt(s *Stmt) *TxStmt { return &TxStmt{tx: tx.tx, ps: s.ps} }

// Exec runs the statement inside the transaction with the given
// arguments.
func (s *TxStmt) Exec(args ...any) (Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation.
func (s *TxStmt) ExecContext(ctx context.Context, args ...any) (Result, error) {
	vals, err := coerceArgs(args)
	if err != nil {
		return Result{}, err
	}
	return s.tx.ExecPrepared(ctx, s.ps, vals...)
}

// Query runs the prepared SELECT at the transaction's snapshot,
// materialized.
func (s *TxStmt) Query(args ...any) (*Table, *TableType, error) {
	res, err := s.Exec(args...)
	if err != nil {
		return nil, nil, err
	}
	return res.Table, res.Type, nil
}

// QueryRows runs the prepared SELECT at the transaction's snapshot
// and returns a streaming cursor.
func (s *TxStmt) QueryRows(args ...any) (*Rows, error) {
	return s.QueryRowsContext(context.Background(), args...)
}

// QueryRowsContext is QueryRows with cancellation.
func (s *TxStmt) QueryRowsContext(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := coerceArgs(args)
	if err != nil {
		return nil, err
	}
	return s.tx.QueryRowsPrepared(ctx, s.ps, vals...)
}

// Commit atomically applies the transaction's writes and makes them
// durable; all its versions carry one commit timestamp, so other
// snapshots see either none or all of them.
func (tx *Tx) Commit() error { return tx.tx.Commit() }

// Rollback discards the transaction. After Commit it returns
// ErrTxnDone (harmless in the usual defer tx.Rollback() pattern).
func (tx *Tx) Rollback() error { return tx.tx.Rollback() }

// SnapshotTS returns the transaction's begin timestamp (usable in
// ASOF clauses to reproduce the snapshot after commit).
func (tx *Tx) SnapshotTS() int64 { return tx.tx.SnapshotTS() }

// StmtStats are the physical access counters of one statement: buffer
// pool activity and subtuples decoded (see Stats).
type StmtStats = engine.StmtStats

// Stats bundles the cumulative buffer-pool counters with the counters
// of the most recently completed statement. For queries consumed
// through a Rows cursor the statement completes — and LastStatement
// is recorded — at Close.
type Stats struct {
	// Buffer is the cumulative buffer pool activity since Open (or the
	// last ResetBufferStats).
	Buffer buffer.Stats
	// LastStatement is the access counters of the most recently
	// completed statement.
	LastStatement StmtStats
	// WAL is the durability subsystem's counters: retained segments,
	// checkpoint horizon, replay-tail bounds, fsyncs, checkpoints.
	// Zero when logging is off.
	WAL WALStats
	// PlanCache is the shared statement-plan cache's counters: hits
	// (executions that skipped parse and bind entirely), misses
	// (fresh binds) and invalidations (plans discarded because DDL or
	// an index change moved the catalog epoch).
	PlanCache PlanCacheStats
	// Net is the network front end's counters (sessions, statements in
	// flight, queue depth, sheds, drains, bytes) when an aimserver is
	// attached to this database; all zero otherwise. The same counters
	// answer the protocol's INFO request.
	Net NetStats
	// Repl is the replication role and progress: on a primary, follower
	// counts and the shipped horizon; on a replica, the applied/visible
	// horizon, its lag behind the primary in WAL bytes, and the
	// reconnect/snapshot history. Role is "none" when the database has
	// never shipped or followed.
	Repl ReplStats
}

// NetStats are the network front end's counters (see Stats.Net).
type NetStats = engine.NetStats

// PlanCacheStats are the plan cache counters (see Stats.PlanCache).
type PlanCacheStats = engine.PlanCacheStats

// WALStats are the write-ahead log and checkpoint counters.
type WALStats = engine.WALStats

// ReplStats are the replication counters (see Stats.Repl).
type ReplStats = engine.ReplStats

// Stats returns the database access statistics.
func (db *DB) Stats() Stats {
	return Stats{
		Buffer:        db.eng.Pool().Stats(),
		LastStatement: db.eng.LastStmtStats(),
		WAL:           db.eng.WALStats(),
		PlanCache:     db.eng.PlanCacheStats(),
		Net:           db.eng.NetStats(),
		Repl:          db.eng.ReplStats(),
	}
}

// Checkpoint writes a fuzzy checkpoint: all dirty pages are flushed
// (WAL first, per the write-ahead rule), a checkpoint record marking
// the new replay horizon is forced to the log, and WAL segments wholly
// below the horizon are recycled. After it returns, reopening the
// database replays only the log tail written since this call. Without
// a WAL it degrades to a plain flush of the dirty pages.
func (db *DB) Checkpoint() error { return db.eng.WALCheckpoint() }

// Now returns the database clock's current timestamp, usable in ASOF
// clauses.
func (db *DB) Now() int64 { return db.eng.Now() }

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, storage statistics, tuple names).
func (db *DB) Engine() *engine.DB { return db.eng }

// BufferStats returns the buffer pool access counters (logical
// fetches, hits, physical reads/writes).
func (db *DB) BufferStats() buffer.Stats { return db.eng.Pool().Stats() }

// ResetBufferStats zeroes the buffer pool counters.
func (db *DB) ResetBufferStats() { db.eng.Pool().ResetStats() }

// ObjectStats returns the physical composition (MD subtuples, data
// subtuples, pointers, pages) of one complex object of an NF² table.
func (db *DB) ObjectStats(table string, ref ObjectRef) (ObjectStatsT, error) {
	m, ok := db.eng.Manager(table)
	if !ok {
		return ObjectStatsT{}, errNoNF2(table)
	}
	t, _ := db.eng.Catalog().Table(table)
	return m.ObjectStats(t.Type, ref)
}

// ObjectRef identifies a complex object (the TID of its root MD
// subtuple).
type ObjectRef = object.Ref

// ObjectStatsT is the physical composition of a complex object.
type ObjectStatsT = object.Stats

// Refs lists the object references of a table.
func (db *DB) Refs(table string) ([]ObjectRef, error) { return db.eng.Refs(table) }

// TNames returns a tuple-name registry for an NF² table (§4.3 of the
// paper): system generated keys for objects, subobjects and
// subtables that applications can hold for later direct access.
func (db *DB) TNames(table string) (*tname.Registry, error) {
	m, ok := db.eng.Manager(table)
	if !ok {
		return nil, errNoNF2(table)
	}
	t, _ := db.eng.Catalog().Table(table)
	return tname.NewRegistry(m, t.Type), nil
}

// Checkout exports a complex object at page level (§4.1): the
// returned snapshot can be shipped to a workstation and imported into
// any database with CheckIn.
func (db *DB) Checkout(table string, ref ObjectRef) ([]byte, error) {
	m, ok := db.eng.Manager(table)
	if !ok {
		return nil, errNoNF2(table)
	}
	snap, err := m.Export(ref)
	if err != nil {
		return nil, err
	}
	return object.EncodeSnapshot(snap), nil
}

// CheckIn imports a checked-out object into an NF² table of the same
// schema and layout, returning its new reference.
func (db *DB) CheckIn(table string, snapshot []byte) (ObjectRef, error) {
	m, ok := db.eng.Manager(table)
	if !ok {
		return ObjectRef{}, errNoNF2(table)
	}
	snap, err := object.DecodeSnapshot(snapshot)
	if err != nil {
		return ObjectRef{}, err
	}
	ref, err := m.Import(snap)
	if err != nil {
		return ObjectRef{}, err
	}
	t, _ := db.eng.Catalog().Table(table)
	tup, err := m.Read(t.Type, ref)
	if err != nil {
		return ObjectRef{}, err
	}
	if err := model.Conform(t.Type, tup); err != nil {
		return ObjectRef{}, err
	}
	// Register the imported object like a fresh insert.
	if err := db.eng.RegisterImported(t, ref); err != nil {
		return ObjectRef{}, err
	}
	return ref, nil
}

// Format renders a table in the paper's nested layout (relations in
// { }, lists in < >).
func Format(name string, tt *TableType, tbl *Table) string {
	return model.FormatTable(name, tt, tbl)
}

type nf2Err string

func (e nf2Err) Error() string { return "aim: table " + string(e) + " is not a stored NF² table" }

func errNoNF2(table string) error { return nf2Err(table) }

// FromEngine wraps an already-open engine handle in the public
// facade; used by tools that assemble databases through internal
// helpers (e.g. the fixture loader of the experiment harness).
func FromEngine(eng *engine.DB) *DB { return &DB{eng: eng} }

// Step addresses one navigation move inside a complex object: the
// table-valued attribute index and the member position.
type Step = object.Step

// TName is a tuple name (§4.3): a system generated, stable reference
// to an object, subobject or subtable.
type TName = tname.Name

// DecodeTName parses a tuple-name token produced by TName.Encode.
func DecodeTName(token string) (TName, error) { return tname.Decode(token) }

// --- corruption detection and containment --------------------------------

// ErrCorrupt is the shared corruption sentinel: every error caused by
// a damaged durable structure — failed page checksum, undecodable
// subtuple, broken Mini-Directory — wraps it, so errors.Is(err,
// ErrCorrupt) classifies faults across all storage layers.
var ErrCorrupt = dberr.ErrCorrupt

// ErrObjectQuarantined is the sentinel matched by errors.Is when a
// statement touches a quarantined object. The concrete error is a
// *QuarantineError naming the table and object.
var ErrObjectQuarantined = engine.ErrQuarantined

// QuarantineError reports the quarantined object a statement touched.
type QuarantineError = engine.QuarantineError

// Quarantined lists the currently quarantined objects.
func (db *DB) Quarantined() []*QuarantineError { return db.eng.Quarantined() }

// DegradedIndexes lists the out-of-service indexes (name -> reason).
// A degraded index is invisible to the planner; queries fall back to
// base-table scans until aimdoctor rebuilds it.
func (db *DB) DegradedIndexes() map[string]string { return db.eng.DegradedIndexes() }

// ScrubReport is the machine-readable result of a scrub run.
type ScrubReport = scrub.Report

// ScrubOptions configures a scrub run.
type ScrubOptions = scrub.Options

// Scrub audits the database online: every durable page, object
// directory, Mini-Directory tree, flat tuple, and index is
// cross-checked and each fault reported as a typed finding. With
// Quarantine set, broken objects are quarantined and diverging
// indexes taken out of service.
func (db *DB) Scrub(opts ScrubOptions) (*ScrubReport, error) { return scrub.Run(db.eng, opts) }
