// Quickstart: create the paper's DEPARTMENTS table, load department
// 314, and run the flavor of every §3 query class — projection,
// nesting, unnesting, quantifiers and subtable DML.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db, err := aim.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Exec(`
CREATE TABLE DEPARTMENTS (
  DNO INT,
  MGRNO INT,
  PROJECTS TABLE OF (
    PNO INT,
    PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)
  ),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
)`))

	must(db.Exec(`
INSERT INTO DEPARTMENTS VALUES
 (314, 56194,
  {(17, 'CGA',  {(39582, 'Leader'), (56019, 'Consultant'), (69011, 'Secretary')}),
   (23, 'HEAP', {(58912, 'Staff'), (90011, 'Leader'), (78218, 'Secretary'), (98602, 'Staff')})},
  320000,
  {(2, '3278'), (3, 'PC/AT'), (1, 'PC')}),
 (218, 71349,
  {(25, 'TEXT', {(92100, 'Leader'), (89921, 'Consultant'), (44512, 'Consultant')})},
  440000,
  {(2, '3278'), (1, 'PC/AT')})`))

	// Example 1: retrieve the whole NF² table.
	show(db, "SELECT * (whole NF² table)", `SELECT * FROM x IN DEPARTMENTS`)

	// Example 4: unnest into a flat result.
	show(db, "unnest (flat result)", `
SELECT x.DNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)

	// Example 5: EXISTS over a subtable.
	show(db, "EXISTS (departments using a PC/AT)", `
SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`)

	// Explicit nested result construction (Fig 2 style).
	show(db, "nested result construction", `
SELECT x.DNO,
       CONSULTANTS = (SELECT z.EMPNO
                      FROM y IN x.PROJECTS, z IN y.MEMBERS
                      WHERE z.FUNCTION = 'Consultant')
FROM x IN DEPARTMENTS`)

	// Subtable DML: insert a member into project 17, then delete it.
	must(db.Exec(`
INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE y.PNO = 17 VALUES (11111, 'Consultant')`))
	show(db, "after subtable INSERT", `
SELECT z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE y.PNO = 17`)
	must(db.Exec(`
DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
WHERE z.EMPNO = 11111`))

	// An index with hierarchical addresses (§4.2) speeds up the
	// consultant query; the result is unchanged.
	must(db.Exec(`CREATE INDEX fn ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING HIERARCHICAL`))
	show(db, "indexed consultant lookup", `
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
}

func show(db *aim.DB, title, q string) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("--- %s ---\n%s\n", title, aim.Format("RESULT", tt, tbl))
}

func must(_ []aim.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
