// Office automation (the paper's §2 application domain): a REPORTS
// table with an ordered AUTHORS list and a DESCRIPTORS relation,
// masked text search over titles via the word-fragment text index
// (§5), and list indexing (AUTHORS[1], §3 Example 8).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db, err := aim.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Exec(`
CREATE TABLE REPORTS (
  REPNO STRING,
  AUTHORS LIST OF (NAME STRING),
  TITLE STRING,
  DESCRIPTORS TABLE OF (WORD STRING, WEIGHT FLOAT)
)`))

	// Table 6 plus two more reports so the §5 text query has matches.
	must(db.Exec(`
INSERT INTO REPORTS VALUES
 ('0179', <('Jones')>, 'Concurrency and Concurrency Control',
  {('Concurrency Control', 0.6), ('Recovery', 0.3), ('Distribution', 0.1)}),
 ('0189', <('Tilda'), ('Abraham')>, 'Text Editing and String Search',
  {('Editing', 0.7), ('Formatting', 0.3)}),
 ('0292', <('Meyer'), ('Racey')>, 'Branch and Bound Math Optimization',
  {('Optimization', 0.6), ('Garbage Collection', 0.4)}),
 ('0300', <('Jones'), ('Meyer')>, 'Minicomputer Performance for Computational Workloads',
  {('Performance', 0.8)}),
 ('0301', <('Racey')>, 'Computer Networks', {('Networks', 0.9)})`))

	must(db.Exec(`CREATE TEXT INDEX rep_title ON REPORTS (TITLE)`))

	show(db, "Table 6 plus two new reports", `SELECT * FROM x IN REPORTS`)

	// §5: masked search + EXISTS over the ordered AUTHORS list.
	show(db, "reports with *comput* in the title co-authored by Jones (text index)", `
SELECT x.REPNO, x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.TITLE CONTAINS '*comput*'
  AND EXISTS y IN x.AUTHORS: y.NAME = 'Jones'`)

	// Example 8: the FIRST author must be Jones — list indexing.
	show(db, "reports whose first author is Jones (AUTHORS[1])", `
SELECT x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.AUTHORS[1].NAME = 'Jones'`)

	// Heavy descriptors across all reports, ordered by weight.
	show(db, "descriptors with weight >= 0.5, heaviest first", `
SELECT x.REPNO, d.WORD, d.WEIGHT
FROM x IN REPORTS, d IN x.DESCRIPTORS
WHERE d.WEIGHT >= 0.5
ORDER BY d.WEIGHT DESC`)

	// Author productivity: count of reports per (distinct) author.
	show(db, "authors and their report counts", `
SELECT DISTINCT a.NAME,
       REPORTS = (SELECT r.REPNO FROM r IN REPORTS
                  WHERE EXISTS b IN r.AUTHORS: b.NAME = a.NAME)
FROM x IN REPORTS, a IN x.AUTHORS`)
}

func show(db *aim.DB, title, q string) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("--- %s ---\n%s\n", title, aim.Format("RESULT", tt, tbl))
}

func must(_ []aim.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
