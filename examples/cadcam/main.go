// CAD/CAM (the paper's motivating domain, §1): deeply nested complex
// objects (assemblies -> parts -> surfaces -> control points), tuple
// names handed to an application for direct access (§4.3), and the
// page-level check-out of a whole design object to a "workstation"
// (§4.1) — here a second database standing in for one.
package main

import (
	"fmt"
	"log"

	"repro"
)

const assemblySchema = `
CREATE TABLE ASSEMBLIES (
  AID INT,
  NAME STRING,
  PARTS TABLE OF (
    PID INT,
    MATERIAL STRING,
    SURFACES LIST OF (
      SID INT,
      KIND STRING,
      POINTS LIST OF (X FLOAT, Y FLOAT, Z FLOAT)
    )
  ),
  REVISION INT
)`

func main() {
	db, err := aim.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Exec(assemblySchema))
	must(db.Exec(`
INSERT INTO ASSEMBLIES VALUES
 (1, 'gripper',
  {(10, 'steel',
    <(100, 'bezier', <(0.0, 0.0, 0.0), (1.0, 0.0, 0.5), (1.0, 1.0, 0.5)>),
     (101, 'planar', <(0.0, 0.0, 0.0), (0.0, 1.0, 0.0)>)>),
   (11, 'alu',
    <(110, 'bezier', <(2.0, 2.0, 2.0), (3.0, 2.0, 2.5)>)>)},
  1),
 (2, 'rotary-joint',
  {(20, 'steel', <(200, 'cylindrical', <(0.0, 0.0, 0.0)>)>)},
  3)`))

	// Nesting depth 4: the "deeply nested hierarchical structures"
	// CAD objects require (§1).
	show(db, "bezier surfaces and their control points", `
SELECT a.NAME, p.PID, s.SID,
       CTRL = (SELECT c.X, c.Y, c.Z FROM c IN s.POINTS)
FROM a IN ASSEMBLIES, p IN a.PARTS, s IN p.SURFACES
WHERE s.KIND = 'bezier'`)

	// Partial update deep in the hierarchy: one part's material is
	// rewritten in place, without touching the rest of the object.
	must(db.Exec(`
UPDATE p FROM a IN ASSEMBLIES, p IN a.PARTS
SET MATERIAL = 'titanium' WHERE p.PID = 11`))
	show(db, "after updating part 11's material", `
SELECT p.PID, p.MATERIAL FROM a IN ASSEMBLIES, p IN a.PARTS WHERE a.AID = 1`)

	// Tuple names: hand a stable reference to part 10 to the
	// "application", mutate around it, dereference it later.
	refs, err := db.Refs("ASSEMBLIES")
	if err != nil {
		log.Fatal(err)
	}
	reg, err := db.TNames("ASSEMBLIES")
	if err != nil {
		log.Fatal(err)
	}
	part10, err := reg.SubobjectName(refs[0], aim.Step{Attr: 2, Pos: 0})
	if err != nil {
		log.Fatal(err)
	}
	token := part10.Encode()
	fmt.Printf("--- tuple name for part 10 handed to the application ---\n%s\n\n", token)
	must(db.Exec(`
INSERT INTO a.PARTS FROM a IN ASSEMBLIES WHERE a.AID = 1
VALUES (12, 'carbon', <>)`))
	tup, err := reg.ResolveTuple(mustDecode(token))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- dereferencing the t-name after further inserts ---\npart %v, material %v\n\n", tup[0], tup[1])

	// Check the gripper out to a "workstation" (a second database)
	// at page level, modify it there, and inspect both copies.
	snapshot, err := db.Checkout("ASSEMBLIES", refs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- checked out assembly 1: %d bytes of raw pages ---\n\n", len(snapshot))

	ws, err := aim.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer ws.Close()
	must(ws.Exec(assemblySchema))
	if _, err := ws.CheckIn("ASSEMBLIES", snapshot); err != nil {
		log.Fatal(err)
	}
	must(ws.Exec(`UPDATE a IN ASSEMBLIES SET REVISION = 2 WHERE a.AID = 1`))
	show(ws, "workstation copy (revision bumped)", `
SELECT a.AID, a.NAME, a.REVISION, COUNT(a.PARTS) AS NPARTS FROM a IN ASSEMBLIES`)
	show(db, "server copy (unchanged)", `
SELECT a.AID, a.NAME, a.REVISION, COUNT(a.PARTS) AS NPARTS FROM a IN ASSEMBLIES`)
}

func mustDecode(token string) aim.TName {
	v, err := aim.DecodeTName(token)
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func show(db *aim.DB, title, q string) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("--- %s ---\n%s\n", title, aim.Format("RESULT", tt, tbl))
}

func must(_ []aim.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
