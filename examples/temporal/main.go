// Time versions (§5 of the paper): a VERSIONED table keeps history at
// the subtuple level and answers ASOF queries — "one wants to see a
// table or subtable as it looked like at a fixed point in time in the
// past". The paper's own example is reproduced: the projects
// department 314 had on January 15th, 1984.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A controllable clock so the demonstration prints stable dates.
	now := time.Date(1984, 1, 1, 0, 0, 0, 0, time.UTC)
	db, err := aim.Open(aim.Options{Clock: func() int64 {
		now = now.Add(time.Hour)
		return now.UnixNano()
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.Exec(`
CREATE TABLE DEPARTMENTS (
  DNO INT, MGRNO INT,
  PROJECTS TABLE OF (PNO INT, PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
) VERSIONED`))

	// Early January 1984: department 314 with projects 17 and 23.
	must(db.Exec(`
INSERT INTO DEPARTMENTS VALUES
 (314, 56194,
  {(17, 'CGA',  {(39582, 'Leader'), (56019, 'Consultant')}),
   (23, 'HEAP', {(58912, 'Staff')})},
  320000, {(2, '3278')})`))

	// Late January: project 23 is cancelled, a new project 29 starts,
	// and the budget is cut.
	now = time.Date(1984, 1, 20, 0, 0, 0, 0, time.UTC)
	must(db.Exec(`DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23`))
	must(db.Exec(`
INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314
VALUES (29, 'ROBOT', {(77777, 'Leader')})`))
	must(db.Exec(`UPDATE x IN DEPARTMENTS SET BUDGET = 250000 WHERE x.DNO = 314`))

	show(db, "current state (late January 1984)", `
SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314`)

	// The paper's §5 query: "all projects which department 314 has
	// had on January 15th, 1984".
	show(db, "ASOF January 15th, 1984 (the paper's example)", `
SELECT y.PNO, y.PNAME
FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS
WHERE x.DNO = 314`)

	// Budget history: current versus as-of.
	show(db, "budget now", `SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS`)
	show(db, "budget ASOF January 15th", `
SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS ASOF '1984-01-15'`)

	// Whole-table time travel: the deleted project 23 reappears.
	show(db, "full department ASOF January 15th", `
SELECT * FROM x IN DEPARTMENTS ASOF '1984-01-15'`)
}

func show(db *aim.DB, title, q string) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("--- %s ---\n%s\n", title, aim.Format("RESULT", tt, tbl))
}

func must(_ []aim.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
