package aim_test

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// The aim-level prepared API: Go-native argument coercion, Exec/Query
// re-execution, Explain, and plan-cache stats surfaced via Stats().
func TestStmtBasics(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()

	stmt, err := db.Prepare(`SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	// Plain Go ints coerce to model values.
	tbl, _, err := stmt.Query(314)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("got %d rows, want 1", tbl.Len())
	}
	// Re-execution with a different argument.
	tbl, _, err = stmt.Query(218)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("got %d rows for DNO 218, want 1", tbl.Len())
	}
	// Unsupported argument types fail with a clear error.
	if _, _, err := stmt.Query(struct{}{}); err == nil {
		t.Fatal("struct argument should be rejected")
	}
	// Explain renders a plan without executing.
	lines, _, err := stmt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "DEPARTMENTS") {
		t.Fatalf("Explain = %q", lines)
	}
	// The plan cache saw this statement.
	if s := db.Stats(); s.PlanCache.Misses == 0 {
		t.Errorf("Stats().PlanCache shows no activity: %+v", s.PlanCache)
	}
}

// String, float, bool, nil and time.Time arguments coerce; a prepared
// INSERT inserts them.
func TestStmtArgCoercion(t *testing.T) {
	db, err := aim.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE V (S STRING, F FLOAT, B BOOL, N INT, T TIME)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO V VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	if _, err := ins.Exec("hello", 1.5, true, int64(7), when); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := db.Query(`SELECT v.S, v.F, v.B, v.N FROM v IN V WHERE v.B = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("coerced insert not found: %d rows", tbl.Len())
	}
}

// Prepared statements inside a transaction via Tx.Stmt: writes stay
// isolated until commit and the same Stmt remains usable outside.
func TestTxStmt(t *testing.T) {
	db := openLoaded(t)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE AUDIT (ID INT, NOTE STRING)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO AUDIT VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	count, err := db.Prepare(`SELECT a.ID FROM a IN AUDIT WHERE a.ID = ?`)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stmt(ins).Exec(1, "from tx"); err != nil {
		t.Fatal(err)
	}
	// Inside: visible through the transaction's prepared read.
	tbl, _, err := tx.Stmt(count).Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("tx read sees %d rows, want 1", tbl.Len())
	}
	// Outside: not yet.
	tbl, _, err = count.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("uncommitted row visible outside tx: %d rows", tbl.Len())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl, _, err = count.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("committed row missing: %d rows", tbl.Len())
	}

	// Streaming read through a TxStmt in a fresh transaction.
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Rollback()
	rows, err := tx2.Stmt(count).QueryRows(1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("TxStmt.QueryRows saw %d rows, want 1", n)
	}
}
