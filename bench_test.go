// Benchmarks regenerating the quantitative shape of the paper's
// storage and addressing claims (see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded results):
//
//   - BenchmarkLayout*: SS1/SS2/SS3 build, whole-object read and
//     partial navigation (Fig 6, §4.1);
//   - BenchmarkIndexAddressing: the Fig 7 conjunctive query under
//     data-TID, root-TID and hierarchical index addresses (§4.2);
//   - BenchmarkMaterializedJoin: hierarchical table as a pre-computed
//     join versus the equivalent flat 3-way join (§3 Example 4);
//   - BenchmarkClusteringColdRead / BenchmarkWholeObjectRead: local
//     address spaces versus Lorie's "on top" linked tuples (§1, §4.1);
//   - BenchmarkCheckout: page-level relocation cost versus object
//     size (§4.1);
//   - BenchmarkTextSearch: masked search with and without the
//     word-fragment text index (§5);
//   - BenchmarkASOF: time-version chain walks (§5);
//   - BenchmarkExistsVsAll: quantifier evaluation (§3 Examples 5-6).
package aim

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/lorie"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/sql"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func benchWorld(b *testing.B, layout object.Layout) (*buffer.Pool, *subtuple.Store, *object.Manager) {
	b.Helper()
	pool := buffer.NewPool(1 << 16)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	return pool, st, object.NewManager(st, layout)
}

var benchCfg = testdata.GenConfig{
	Departments: 50, ProjsPerDept: 8, MembersPerProj: 15, EquipPerDept: 5, Seed: 42,
}

// --- Fig 6 / §4.1: storage structures -----------------------------------

func BenchmarkLayoutBuild(b *testing.B) {
	data := testdata.GenDepartments(benchCfg)
	tt := testdata.DepartmentsType()
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, m := benchWorld(b, layout)
				for _, tup := range data.Tuples {
					if _, err := m.Insert(tt, tup); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkLayoutReadObject(b *testing.B) {
	data := testdata.GenDepartments(benchCfg)
	tt := testdata.DepartmentsType()
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		b.Run(layout.String(), func(b *testing.B) {
			_, _, m := benchWorld(b, layout)
			var refs []object.Ref
			for _, tup := range data.Tuples {
				ref, _ := m.Insert(tt, tup)
				refs = append(refs, ref)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(tt, refs[i%len(refs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLayoutNavigate(b *testing.B) {
	data := testdata.GenDepartments(benchCfg)
	tt := testdata.DepartmentsType()
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		b.Run(layout.String(), func(b *testing.B) {
			_, _, m := benchWorld(b, layout)
			var refs []object.Ref
			for _, tup := range data.Tuples {
				ref, _ := m.Insert(tt, tup)
				refs = append(refs, ref)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Partial retrieval of one member's atoms: navigation
				// over structural information only.
				_, err := m.ReadAtomsAt(tt, refs[i%len(refs)],
					object.Step{Attr: 2, Pos: i % benchCfg.ProjsPerDept},
					object.Step{Attr: 2, Pos: i % benchCfg.MembersPerProj})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 7 / §4.2: index address strategies ------------------------------

func BenchmarkIndexAddressing(b *testing.B) {
	cfg := benchCfg
	cfg.ConsultantEvery = 9
	cfg.ProjectNoRange = cfg.ProjsPerDept * 3
	data := testdata.GenDepartments(cfg)
	tt := testdata.DepartmentsType()

	hasConsultant := func(proj model.Tuple) bool {
		for _, z := range proj[2].(*model.Table).Tuples {
			if z[1].(model.Str) == "Consultant" {
				return true
			}
		}
		return false
	}
	targetPNO := int64(-1)
	for _, d := range data.Tuples {
		for _, p := range d[2].(*model.Table).Tuples {
			if hasConsultant(p) {
				targetPNO = int64(p[0].(model.Int))
				break
			}
		}
		if targetPNO >= 0 {
			break
		}
	}
	matches := func(d model.Tuple) bool {
		for _, p := range d[2].(*model.Table).Tuples {
			if int64(p[0].(model.Int)) == targetPNO && hasConsultant(p) {
				return true
			}
		}
		return false
	}

	for _, kind := range []index.Kind{index.DataTID, index.RootTID, index.Hierarchical} {
		b.Run(kind.String(), func(b *testing.B) {
			_, _, m := benchWorld(b, object.SS3)
			var refs []object.Ref
			for _, tup := range data.Tuples {
				ref, _ := m.Insert(tt, tup)
				refs = append(refs, ref)
			}
			pnoIx, _ := index.New(index.Def{Name: "pno", Path: []string{"PROJECTS", "PNO"}, Kind: kind}, tt)
			fnIx, _ := index.New(index.Def{Name: "fn", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: kind}, tt)
			for _, ref := range refs {
				pnoIx.AddObject(m, tt, ref)
				fnIx.AddObject(m, tt, ref)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := 0
				switch kind {
				case index.DataTID:
					// Unusable addresses: full table scan (Fig 7a).
					for _, ref := range refs {
						tup, err := m.Read(tt, ref)
						if err != nil {
							b.Fatal(err)
						}
						if matches(tup) {
							results++
						}
					}
				case index.RootTID:
					pAddrs, _ := pnoIx.Lookup(model.Int(targetPNO))
					fAddrs, _ := fnIx.Lookup(model.Str("Consultant"))
					fRoots := map[page.TID]bool{}
					for _, a := range fAddrs {
						fRoots[a.TID] = true
					}
					for _, root := range index.DistinctRoots(pAddrs) {
						if !fRoots[root] {
							continue
						}
						tup, err := m.Read(tt, root)
						if err != nil {
							b.Fatal(err)
						}
						if matches(tup) {
							results++
						}
					}
				case index.Hierarchical:
					pAddrs, _ := pnoIx.Lookup(model.Int(targetPNO))
					fAddrs, _ := fnIx.Lookup(model.Str("Consultant"))
					pairs := index.IntersectByPrefix(pAddrs, fAddrs, 1)
					seen := map[page.TID]bool{}
					for _, pr := range pairs {
						if !seen[pr[0].TID] {
							seen[pr[0].TID] = true
							if _, err := m.ReadAtomsAt(tt, pr[0].TID); err != nil {
								b.Fatal(err)
							}
							results++
						}
					}
				}
				if results == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// --- §3 Example 4: materialized join vs flat join -------------------------

func BenchmarkMaterializedJoin(b *testing.B) {
	db, err := core.Office()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	// Scale the stored data: add generated departments and their 1NF
	// decomposition.
	// Modest scale: the flat 3-way join is a naive nested loop, so its
	// cost grows with the product of the table sizes.
	gen := testdata.GenDepartments(testdata.GenConfig{
		Departments: 12, ProjsPerDept: 5, MembersPerProj: 8, EquipPerDept: 3, Seed: 9,
	})
	for _, d := range gen.Tuples {
		if err := db.Insert("DEPARTMENTS", d); err != nil {
			b.Fatal(err)
		}
		if err := db.Insert("DEPARTMENTS_1NF", model.Tuple{d[0], d[1], d[3]}); err != nil {
			b.Fatal(err)
		}
		for _, p := range d[2].(*model.Table).Tuples {
			if err := db.Insert("PROJECTS_1NF", model.Tuple{p[0], p[1], d[0]}); err != nil {
				b.Fatal(err)
			}
			for _, m := range p[2].(*model.Table).Tuples {
				if err := db.Insert("MEMBERS_1NF", model.Tuple{m[0], p[0], d[0], m[1]}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("NF2Unnest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _, err := db.Query(`
SELECT x.DNO, y.PNO, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
			if err != nil {
				b.Fatal(err)
			}
			if tbl.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("Flat3WayJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _, err := db.Query(`
SELECT x.DNO, y.PNO, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS_1NF, y IN PROJECTS_1NF, z IN MEMBERS_1NF
WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO`)
			if err != nil {
				b.Fatal(err)
			}
			if tbl.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- §4.1: clustering and whole-object reads ------------------------------

func BenchmarkWholeObjectRead(b *testing.B) {
	data := testdata.GenDepartments(benchCfg)
	tt := testdata.DepartmentsType()
	b.Run("AIM-II", func(b *testing.B) {
		_, _, m := benchWorld(b, object.SS3)
		var refs []object.Ref
		for _, tup := range data.Tuples {
			ref, _ := m.Insert(tt, tup)
			refs = append(refs, ref)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Read(tt, refs[i%len(refs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LorieLinkedTuples", func(b *testing.B) {
		pool := buffer.NewPool(1 << 16)
		pool.Register(1, segment.NewMemStore())
		st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
		ls := lorie.New(st, tt)
		var roots []page.TID
		for _, tup := range data.Tuples {
			root, _ := ls.Insert(tup)
			roots = append(roots, root)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ls.Read(roots[i%len(roots)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClusteringColdRead(b *testing.B) {
	// One measured iteration = cold-reading every grown object; the
	// physical read counts are reported as custom metrics.
	rows, err := core.CompareClustering(16, 5, 12, 40, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Run(r.System, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = r
			}
			b.ReportMetric(float64(r.PhysicalReads), "coldreads/op")
			b.ReportMetric(float64(r.Fetches), "fetches/op")
		})
	}
}

// --- §4.1: page-level checkout ---------------------------------------------

func BenchmarkCheckout(b *testing.B) {
	tt := testdata.DepartmentsType()
	for _, members := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			cfg := testdata.GenConfig{Departments: 1, ProjsPerDept: 1, MembersPerProj: members, EquipPerDept: 1, Seed: int64(members)}
			data := testdata.GenDepartments(cfg)
			_, _, m := benchWorld(b, object.SS3)
			ref, err := m.Insert(tt, data.Tuples[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := m.Export(ref)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Import(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §5: masked text search -------------------------------------------------

func BenchmarkTextSearch(b *testing.B) {
	db, err := core.Office()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	words := []string{"database", "minicomputer", "network", "design", "graphics",
		"computer", "workstation", "protocol", "compiler", "computational", "storage"}
	for i := 0; i < 500; i++ {
		title := fmt.Sprintf("%s %s %s", words[i%len(words)], words[(i*3+1)%len(words)], words[(i*7+2)%len(words)])
		stmt := fmt.Sprintf(`INSERT INTO REPORTS VALUES ('%04d', <('Author%d')>, '%s', {})`, 1000+i, i%20, title)
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	q := `SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*comput*'`
	b.Run("Scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if tbl.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
	if err := db.CreateTextIndex("bench_title", "REPORTS", []string{"TITLE"}); err != nil {
		b.Fatal(err)
	}
	b.Run("FragmentIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if tbl.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- §5: ASOF version chains -------------------------------------------------

func BenchmarkASOF(b *testing.B) {
	for _, depth := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("versions=%d", depth), func(b *testing.B) {
			pool := buffer.NewPool(1 << 16)
			pool.Register(1, segment.NewMemStore())
			ts := int64(0)
			st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: true, Clock: func() int64 { ts++; return ts }})
			tid, _ := st.Insert([]byte("v0"))
			for i := 0; i < depth; i++ {
				if err := st.Update(tid, []byte(fmt.Sprintf("v%d", i+1))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := st.ReadAsOf(tid, 1); err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §3 Examples 5-6: quantifier evaluation -----------------------------------

func BenchmarkExistsVsAll(b *testing.B) {
	db, err := engineWithGen(b, object.SS3)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.Run("EXISTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Leader'`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ALL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS: z.FUNCTION = 'Leader'`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func engineWithGen(b *testing.B, layout object.Layout) (*engine.DB, error) {
	b.Helper()
	db, err := engine.Open(engine.Options{DefaultLayout: layout})
	if err != nil {
		return nil, err
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		return nil, err
	}
	for _, tup := range testdata.GenDepartments(benchCfg).Tuples {
		if err := db.Insert("DEPARTMENTS", tup); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// --- projection pushdown: pruned vs full-object reads -------------------------

// BenchmarkProjectionPushdown measures a single-attribute projection
// over wide generated departments (8 projects × 15 members each)
// under each storage structure, executed two ways: Full fetches every
// subtuple of every object (the pre-cursor behavior, via
// Executor.FullPaths), Pruned fetches only the data subtuples the
// projection needs. pages/op is the number of page pin requests per
// query; the benchmark fails if pruning does not touch strictly fewer
// pages than full retrieval.
func BenchmarkProjectionPushdown(b *testing.B) {
	const q = `SELECT x.DNO FROM x IN DEPARTMENTS`
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		b.Run(layout.String(), func(b *testing.B) {
			db, err := engineWithGen(b, layout)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			measure := func(full bool) engine.StmtStats {
				db.Executor().FullPaths = full
				tbl, _, err := db.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if tbl.Len() != benchCfg.Departments {
					b.Fatalf("rows = %d, want %d", tbl.Len(), benchCfg.Departments)
				}
				return db.LastStmtStats()
			}
			fullStats := measure(true)
			prunedStats := measure(false)
			if prunedStats.Fetches >= fullStats.Fetches {
				b.Fatalf("%s: pruned execution touched %d pages, full %d — pushdown saved nothing",
					layout, prunedStats.Fetches, fullStats.Fetches)
			}
			for _, mode := range []struct {
				name  string
				full  bool
				stats engine.StmtStats
			}{{"Full", true, fullStats}, {"Pruned", false, prunedStats}} {
				b.Run(mode.name, func(b *testing.B) {
					db.Executor().FullPaths = mode.full
					for i := 0; i < b.N; i++ {
						if _, _, err := db.Query(q); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(mode.stats.Fetches), "pages/op")
					b.ReportMetric(float64(mode.stats.Decoded), "subtuples/op")
				})
			}
			db.Executor().FullPaths = false
		})
	}
}

// --- micro: subtuple store and B-tree -----------------------------------------

func BenchmarkSubtupleInsert(b *testing.B) {
	pool := buffer.NewPool(1 << 16)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubtupleRead(b *testing.B) {
	pool := buffer.NewPool(1 << 16)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	var tids []page.TID
	for i := 0; i < 1000; i++ {
		tid, _ := st.Insert(make([]byte, 64))
		tids = append(tids, tid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Read(tids[i%len(tids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsertLookup(b *testing.B) {
	bt := index.NewBTree()
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i], _ = model.EncodeKeyValue(model.Int(int64(i)))
	}
	b.Run("Insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt.Insert(keys[i%len(keys)], index.Addr{TID: page.TID{Page: uint32(i + 1)}})
		}
	})
	b.Run("Lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if bt.Search(keys[i%len(keys)]) == nil {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkQueryParse measures the SQL front end on the paper's most
// complex query (Fig 5).
func BenchmarkQueryParse(b *testing.B) {
	q := `
SELECT x.DNO, m.LNAME, m.SEX,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF
WHERE m.EMPNO = x.MGRNO;`
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
