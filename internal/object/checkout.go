package object

import (
	"encoding/binary"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/dberr"
	"repro/internal/page"
)

// This file implements the page-level relocation and check-out that
// §4.1 names as the second advantage of Mini TIDs: "when a complex
// object has to be moved to another place in the database or sent to
// a workstation (checked-out), this can easily be done at the page
// level, i.e. without having to look at the subtuples individually.
// No changes are required for D and C pointers since Mini TIDs refer
// to positions in the page list and not in the database segment. As a
// consequence, only the page list must be updated."
//
// This relies on the pages of a local address space being dedicated
// to one object, which is how place() allocates them.

// Snapshot is a checked-out complex object: its Mini Directory layout
// plus the raw bytes of every page of its local address space. All D
// and C pointers inside the pages remain valid because they are Mini
// TIDs. A Snapshot can be imported into any database segment.
type Snapshot struct {
	Layout Layout
	// Local records which page-list positions are occupied; gaps are
	// preserved so Mini TIDs stay valid.
	Local []bool
	// Pages holds the page images of the occupied positions, in order.
	Pages [][]byte
	// Root is the object's root MD subtuple position inside its local
	// address space.
	Root page.MiniTID
}

// Export checks the complex object out of the database at page level.
// No subtuple is visited individually; the pages are copied verbatim.
func (m *Manager) Export(ref Ref) (*Snapshot, error) {
	o, _, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Layout: m.layout, Local: make([]bool, len(o.pages))}
	rootLocal := -1
	for i, pg := range o.pages {
		if pg == 0 {
			continue
		}
		snap.Local[i] = true
		f, err := m.st.Pool().Pin(buffer.PageKey{Seg: m.st.Segment(), Page: pg})
		if err != nil {
			return nil, err
		}
		img := make([]byte, page.Size)
		f.RLatch()
		copy(img, f.Page.Bytes())
		f.RUnlatch()
		m.st.Pool().Unpin(f, false)
		snap.Pages = append(snap.Pages, img)
		if pg == ref.Page {
			rootLocal = i
		}
	}
	if rootLocal < 0 {
		return nil, fmt.Errorf("object: root MD subtuple outside the object's local address space")
	}
	snap.Root = page.MiniTID{Page: uint16(rootLocal), Slot: ref.Slot}
	return snap, nil
}

// Import brings a checked-out object back into the database: fresh
// pages are allocated, the page images are written verbatim, and only
// the page list in the root MD subtuple is rewritten to the new page
// numbers. Returns the new object reference.
//
// Import writes pages physically; callers using a WAL should force a
// checkpoint (pool flush) afterwards, as recovery does not replay
// page-level imports.
func (m *Manager) Import(snap *Snapshot) (Ref, error) {
	if snap.Layout != m.layout {
		return Ref{}, fmt.Errorf("object: snapshot layout %s, manager uses %s", snap.Layout, m.layout)
	}
	pool := m.st.Pool()
	seg := m.st.Segment()
	newPages := make([]uint32, len(snap.Local))
	pi := 0
	for i, used := range snap.Local {
		if !used {
			continue
		}
		no, err := pool.Allocate(seg)
		if err != nil {
			return Ref{}, err
		}
		f, err := pool.PinNew(buffer.PageKey{Seg: seg, Page: no})
		if err != nil {
			return Ref{}, err
		}
		copy(f.Page.Bytes(), snap.Pages[pi])
		pool.Unpin(f, true)
		newPages[i] = no
		pi++
	}
	newRoot := Ref{Page: newPages[snap.Root.Page], Slot: snap.Root.Slot}
	// Rewrite only the page list inside the root MD subtuple.
	raw, err := m.st.Read(newRoot)
	if err != nil {
		return Ref{}, err
	}
	o := m.newCtx()
	o.root = newRoot
	body, err := o.decodeEnvelope(raw)
	if err != nil {
		return Ref{}, err
	}
	if len(o.pages) != len(newPages) {
		return Ref{}, fmt.Errorf("object: imported page list length %d, snapshot has %d", len(o.pages), len(newPages))
	}
	o.pages = newPages
	if err := o.flushRoot(body); err != nil {
		return Ref{}, err
	}
	return newRoot, nil
}

// Relocate moves the complex object to a fresh set of pages within
// its segment — Export followed by Import. The cost is proportional
// to the object's page count, not its subtuple count.
func (m *Manager) Relocate(ref Ref) (Ref, error) {
	snap, err := m.Export(ref)
	if err != nil {
		return Ref{}, err
	}
	return m.Import(snap)
}

// EncodeSnapshot serializes a Snapshot for sending to a workstation.
func EncodeSnapshot(s *Snapshot) []byte {
	b := []byte{byte(s.Layout)}
	b = binary.AppendUvarint(b, uint64(len(s.Local)))
	for _, used := range s.Local {
		if used {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = page.AppendMiniTID(b, s.Root)
	for _, img := range s.Pages {
		b = append(b, img...)
	}
	return b
}

// DecodeSnapshot parses a serialized Snapshot.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	if len(raw) < 2 {
		return nil, dberr.Corruptf("object: short snapshot")
	}
	s := &Snapshot{Layout: Layout(raw[0])}
	p := raw[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, dberr.Corruptf("object: corrupt snapshot header")
	}
	p = p[sz:]
	if uint64(len(p)) < n {
		return nil, dberr.Corruptf("object: truncated snapshot")
	}
	s.Local = make([]bool, n)
	used := 0
	for i := range s.Local {
		s.Local[i] = p[i] == 1
		if s.Local[i] {
			used++
		}
	}
	p = p[n:]
	root, err := page.DecodeMiniTID(p)
	if err != nil {
		return nil, err
	}
	s.Root = root
	p = p[page.EncodedMiniTIDLen:]
	if len(p) != used*page.Size {
		return nil, dberr.Corruptf("object: snapshot has %d page bytes, want %d", len(p), used*page.Size)
	}
	for i := 0; i < used; i++ {
		img := make([]byte, page.Size)
		copy(img, p[i*page.Size:])
		s.Pages = append(s.Pages, img)
	}
	return s, nil
}
