package object

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testdata"
)

// pruneTuple is the reference semantics of a PathSet applied to a
// fully materialized tuple: unrequested atoms become null, unrequested
// subtables become empty, requested subtables keep their membership.
func pruneTuple(tt *model.TableType, tup model.Tuple, ps *PathSet) model.Tuple {
	if ps == nil || ps.All {
		return tup
	}
	out := make(model.Tuple, len(tt.Attrs))
	for i, a := range tt.Attrs {
		if a.Type.Kind != model.KindTable {
			if ps.Atoms {
				out[i] = tup[i]
			} else {
				out[i] = model.Null{}
			}
			continue
		}
		sub := a.Type.Table
		sps, ok := ps.Subs[i]
		if !ok {
			out[i] = &model.Table{Ordered: sub.Ordered}
			continue
		}
		src := tup[i].(*model.Table)
		dst := &model.Table{Ordered: sub.Ordered}
		for _, mt := range src.Tuples {
			dst.Append(pruneTuple(sub, mt, sps))
		}
		out[i] = dst
	}
	return out
}

// Schema indices in DepartmentsType: DNO=0, MGRNO=1, PROJECTS=2,
// BUDGET=3, EQUIP=4; inside PROJECTS: PNO=0, PNAME=1, MEMBERS=2.
const (
	depProjects = 2
	depEquip    = 4
	projMembers = 2
)

func lazyPathSets() map[string]*PathSet {
	atomsOnly := &PathSet{Atoms: true}

	projAtoms := &PathSet{Atoms: true}
	projAtoms.Descend(depProjects).MarkAtoms()

	deepOnly := &PathSet{} // MEMBERS atoms, nothing else
	deepOnly.Descend(depProjects).Descend(projMembers).MarkAtoms()

	membership := &PathSet{} // COUNT(x.EQUIP): membership only
	membership.Descend(depEquip)

	full := AllPaths()

	return map[string]*PathSet{
		"root-atoms":       atomsOnly,
		"projects-atoms":   projAtoms,
		"members-deep":     deepOnly,
		"equip-membership": membership,
		"all":              full,
	}
}

func TestReadPrunedMatchesReference(t *testing.T) {
	tt := testdata.DepartmentsType()
	depts := testdata.Departments()
	allLayouts(t, func(t *testing.T, m *Manager) {
		var refs []Ref
		for _, tup := range depts.Tuples {
			ref, err := m.Insert(tt, tup)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, ref)
		}
		for name, ps := range lazyPathSets() {
			for i, ref := range refs {
				got, err := m.ReadPruned(tt, ref, 0, ps)
				if err != nil {
					t.Fatalf("%s: ReadPruned dept %d: %v", name, i, err)
				}
				want := pruneTuple(tt, depts.Tuples[i], ps)
				if !model.TupleEqual(got, want) {
					t.Errorf("%s: dept %d mismatch:\n got %v\nwant %v", name, i, got, want)
				}
			}
		}
	})
}

// TestReadPrunedFewerFetches asserts the point of the exercise: a
// narrow read performs strictly fewer buffer fetches (pins) than full
// materialization, under every layout.
func TestReadPrunedFewerFetches(t *testing.T) {
	tt := testdata.DepartmentsType()
	depts := testdata.Departments()
	for _, l := range []Layout{SS1, SS2, SS3} {
		t.Run(l.String(), func(t *testing.T) {
			st, pool := newTestStore(t, false)
			m := NewManager(st, l)
			var refs []Ref
			for _, tup := range depts.Tuples {
				ref, err := m.Insert(tt, tup)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, ref)
			}
			narrow := &PathSet{Atoms: true} // SELECT x.DNO equivalent
			pool.ResetStats()
			for _, ref := range refs {
				if _, err := m.Read(tt, ref); err != nil {
					t.Fatal(err)
				}
			}
			fullFetches := pool.Stats().Fetches
			pool.ResetStats()
			for _, ref := range refs {
				if _, err := m.ReadPruned(tt, ref, 0, narrow); err != nil {
					t.Fatal(err)
				}
			}
			prunedFetches := pool.Stats().Fetches
			if prunedFetches >= fullFetches {
				t.Errorf("pruned read fetched %d pages, full read %d — want strictly fewer", prunedFetches, fullFetches)
			}
		})
	}
}

// TestLazyStagedFetch exercises the cursor usage pattern: fetch the
// predicate's paths first, then widen to the projection's paths on the
// same handle. The second fetch must not re-decode what the first one
// already read, and both results must match the reference pruning.
func TestLazyStagedFetch(t *testing.T) {
	tt := testdata.DepartmentsType()
	dept := testdata.Departments().Tuples[0]
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, dept)
		if err != nil {
			t.Fatal(err)
		}
		l, err := m.OpenLazy(tt, ref, 0)
		if err != nil {
			t.Fatal(err)
		}
		narrow := &PathSet{Atoms: true}
		got, err := l.Fetch(narrow)
		if err != nil {
			t.Fatal(err)
		}
		if want := pruneTuple(tt, dept, narrow); !model.TupleEqual(got, want) {
			t.Errorf("narrow fetch mismatch:\n got %v\nwant %v", got, want)
		}

		pool := m.st.Pool()
		pool.ResetStats()
		if _, err := l.Fetch(narrow); err != nil {
			t.Fatal(err)
		}
		if f := pool.Stats().Fetches; f != 0 {
			t.Errorf("re-fetch of cached paths performed %d page fetches, want 0", f)
		}

		wide := &PathSet{Atoms: true}
		wide.Descend(depProjects).MarkAtoms()
		got, err = l.Fetch(wide)
		if err != nil {
			t.Fatal(err)
		}
		if want := pruneTuple(tt, dept, wide); !model.TupleEqual(got, want) {
			t.Errorf("widened fetch mismatch:\n got %v\nwant %v", got, want)
		}
		full, err := l.Fetch(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !model.TupleEqual(full, dept) {
			t.Errorf("full fetch mismatch:\n got %v\nwant %v", full, dept)
		}
	})
}

func TestPathSetDescribe(t *testing.T) {
	tt := testdata.DepartmentsType()
	ps := &PathSet{Atoms: true}
	ps.Descend(depProjects).Descend(projMembers).MarkAtoms()
	ps.Descend(depEquip)
	got := ps.Describe(tt)
	want := "{atoms, PROJECTS: {MEMBERS: {atoms}}, EQUIP: {members}}"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	if s := AllPaths().Describe(tt); s != "*" {
		t.Errorf("AllPaths().Describe = %q, want *", s)
	}
}
