package object

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// DumpMD renders the Mini Directory tree of a complex object in the
// style of Fig 6 of the paper: MD subtuples in [brackets] (the
// figure's rectangles), data subtuples in (parentheses) (the ovals),
// with D and C pointer markers. The rendering makes the structural
// difference between SS1, SS2 and SS3 visible directly.
func (m *Manager) DumpMD(tt *model.TableType, ref Ref) (string, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return "", err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[root MD subtuple %v, layout %s, page list %v]\n", ref, m.layout, o.pages)
	if err := m.dumpLevel(o, tt, h, &b, "", true); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (m *Manager) dumpLevel(o *objCtx, tt *model.TableType, h levelHandle, b *strings.Builder, indent string, isRoot bool) error {
	atoms, err := o.readAtoms(h.d)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "%s├─D→ (data %v: %s)\n", indent, h.d, atomsString(atoms))
	for gi, ti := range tt.TableIndexes() {
		sub := tt.Attrs[ti].Type.Table
		name := tt.Attrs[ti].Name
		switch m.layout {
		case SS1, SS3:
			fmt.Fprintf(b, "%s├─C→ [MD subtable %s %v]\n", indent, name, h.subC[gi])
		case SS2:
			fmt.Fprintf(b, "%s├─%s (%d member pointers inline)\n", indent, name, len(h.groups[gi]))
		}
		hs, err := m.memberHandles(o, sub, h, gi)
		if err != nil {
			return err
		}
		for i, mh := range hs {
			childIndent := indent + "│  "
			if sub.Flat() {
				matoms, err := o.readAtoms(mh.d)
				if err != nil {
					return err
				}
				fmt.Fprintf(b, "%s├─D→ (data %v: %s)\n", childIndent, mh.d, atomsString(matoms))
				continue
			}
			switch m.layout {
			case SS1, SS2:
				fmt.Fprintf(b, "%s├─C→ [MD subobject #%d %v]\n", childIndent, i, mh.self)
			case SS3:
				fmt.Fprintf(b, "%s├─entry #%d (embedded: D + %d C pointers)\n", childIndent, i, len(mh.subC))
			}
			if err := m.dumpLevel(o, sub, mh, b, childIndent+"│  ", false); err != nil {
				return err
			}
		}
	}
	return nil
}

func atomsString(atoms []model.Value) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		if a == nil {
			parts[i] = "NULL"
		} else {
			parts[i] = a.String()
		}
	}
	return strings.Join(parts, " ")
}
