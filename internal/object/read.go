package object

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
)

// levelHandle is the decoded structural information of one
// (sub)object: its data subtuple pointer plus, depending on the
// layout, C pointers to subtable MD subtuples (SS1/SS3) or inline
// member pointer groups (SS2). self records where the node body
// lives so mutations can rewrite it: NilMini for the root (whose body
// lives in the root MD subtuple) and for SS3 members (whose entry is
// embedded in the parent subtable's MD subtuple).
type levelHandle struct {
	d      page.MiniTID
	subC   []page.MiniTID   // SS1, SS3: one per subtable
	groups [][]page.MiniTID // SS2: member pointers per subtable
	self   page.MiniTID
	isRoot bool
	// SS3 members: location of the embedded entry.
	parentMD  page.MiniTID
	parentPos int
}

// rootHandle decodes the root node body.
func (m *Manager) rootHandle(tt *model.TableType, body []byte) (levelHandle, error) {
	h, err := m.parseNode(tt, body)
	if err != nil {
		return levelHandle{}, err
	}
	h.self = page.NilMini
	h.isRoot = true
	h.parentMD = page.NilMini
	return h, nil
}

// memberHandles returns the handles of all members of subtable gi
// (index among table-valued attributes) of the object level h, in
// stored order. For flat subtables the handles carry only the data
// pointer.
func (m *Manager) memberHandles(o *objCtx, sub *model.TableType, h levelHandle, gi int) ([]levelHandle, error) {
	switch m.layout {
	case SS1:
		raw, err := o.read(h.subC[gi])
		if err != nil {
			return nil, err
		}
		r := &reader{b: raw}
		n := r.count()
		out := make([]levelHandle, 0, n)
		for i := 0; i < n; i++ {
			ptr := r.mini()
			if sub.Flat() {
				out = append(out, levelHandle{d: ptr, self: page.NilMini, parentMD: h.subC[gi], parentPos: i})
				continue
			}
			nodeRaw, err := o.read(ptr)
			if err != nil {
				return nil, err
			}
			mh, err := m.parseNode(sub, nodeRaw)
			if err != nil {
				return nil, err
			}
			mh.self = ptr
			mh.parentMD = h.subC[gi]
			mh.parentPos = i
			out = append(out, mh)
		}
		if r.err != nil {
			return nil, r.err
		}
		return out, nil
	case SS2:
		g := h.groups[gi]
		out := make([]levelHandle, 0, len(g))
		for i, ptr := range g {
			if sub.Flat() {
				out = append(out, levelHandle{d: ptr, self: page.NilMini, parentMD: page.NilMini, parentPos: i})
				continue
			}
			nodeRaw, err := o.read(ptr)
			if err != nil {
				return nil, err
			}
			mh, err := m.parseNode(sub, nodeRaw)
			if err != nil {
				return nil, err
			}
			mh.self = ptr
			mh.parentMD = page.NilMini
			mh.parentPos = i
			out = append(out, mh)
		}
		return out, nil
	default: // SS3
		raw, err := o.read(h.subC[gi])
		if err != nil {
			return nil, err
		}
		n, sz := binary.Uvarint(raw)
		if sz <= 0 {
			return nil, dberr.Corruptf("object: corrupt subtable MD")
		}
		body := raw[sz:]
		es := entrySize(sub)
		if sub.Flat() {
			es = page.EncodedMiniTIDLen
		}
		if len(body) != int(n)*es {
			return nil, dberr.Corruptf("object: subtable MD has %d bytes, want %d entries × %d", len(body), n, es)
		}
		out := make([]levelHandle, 0, n)
		for i := 0; i < int(n); i++ {
			chunk := body[i*es : (i+1)*es]
			if sub.Flat() {
				d, err := page.DecodeMiniTID(chunk)
				if err != nil {
					return nil, err
				}
				out = append(out, levelHandle{d: d, self: page.NilMini, parentMD: h.subC[gi], parentPos: i})
				continue
			}
			mh, err := m.parseNode(sub, chunk)
			if err != nil {
				return nil, err
			}
			mh.self = page.NilMini // embedded entry, no own MD subtuple
			mh.parentMD = h.subC[gi]
			mh.parentPos = i
			out = append(out, mh)
		}
		return out, nil
	}
}

// readAtoms fetches and decodes the data subtuple of a level.
func (o *objCtx) readAtoms(d page.MiniTID) ([]model.Value, error) {
	raw, err := o.read(d)
	if err != nil {
		return nil, err
	}
	return model.DecodeAtoms(raw)
}

// assemble builds a model.Tuple from atom values and subtable values
// in schema order. Data subtuples written before an ALTER TABLE ADD
// carry fewer atoms than the current schema; the missing (newest)
// attributes read as null.
func assemble(tt *model.TableType, atoms []model.Value, subs []*model.Table) (model.Tuple, error) {
	want := len(tt.AtomicIndexes())
	if len(atoms) > want {
		return nil, dberr.Corruptf("object: data subtuple has %d atoms, schema wants %d", len(atoms), want)
	}
	for len(atoms) < want {
		atoms = append(atoms, model.Null{})
	}
	tup := make(model.Tuple, len(tt.Attrs))
	ai, si := 0, 0
	for i, a := range tt.Attrs {
		if a.Type.Kind == model.KindTable {
			tup[i] = subs[si]
			si++
		} else {
			tup[i] = atoms[ai]
			ai++
		}
	}
	return tup, nil
}

// readLevelH materializes the full (sub)object under the handle.
func (m *Manager) readLevelH(o *objCtx, tt *model.TableType, h levelHandle) (model.Tuple, error) {
	atoms, err := o.readAtoms(h.d)
	if err != nil {
		return nil, err
	}
	tis := tt.TableIndexes()
	subs := make([]*model.Table, len(tis))
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		hs, err := m.memberHandles(o, sub, h, gi)
		if err != nil {
			return nil, err
		}
		tbl := &model.Table{Ordered: sub.Ordered}
		for _, mh := range hs {
			var mt model.Tuple
			if sub.Flat() {
				matoms, err := o.readAtoms(mh.d)
				if err != nil {
					return nil, err
				}
				mt, err = assemble(sub, matoms, nil)
				if err != nil {
					return nil, err
				}
			} else {
				mt, err = m.readLevelH(o, sub, mh)
				if err != nil {
					return nil, err
				}
			}
			tbl.Append(mt)
		}
		subs[gi] = tbl
	}
	return assemble(tt, atoms, subs)
}

// Read materializes the whole complex object.
func (m *Manager) Read(tt *model.TableType, ref Ref) (model.Tuple, error) {
	return m.ReadAsOf(tt, ref, 0)
}

// ReadAsOf materializes the complex object as of the given instant
// (0 means current state). The store must be versioned for non-zero
// timestamps.
func (m *Manager) ReadAsOf(tt *model.TableType, ref Ref, asof int64) (model.Tuple, error) {
	o, body, err := m.loadCtx(ref, asof)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	return m.readLevelH(o, tt, h)
}

// Step addresses one navigation move: descend into the table-valued
// attribute Attr (an index into the level's Attrs) and select the
// member at position Pos. Pos == -1 addresses the subtable itself
// (only valid as the final step).
type Step struct {
	Attr int
	Pos  int
}

// locate descends to the handle addressed by steps (all with
// Pos >= 0) and returns it with the type of its level. The descent
// touches only MD subtuples — "navigation in a complex object can be
// done on the structural information without having to access the
// data at all" (§4.1) — except SS2/SS1 member-node reads, which are
// themselves MD subtuples.
func (m *Manager) locate(o *objCtx, tt *model.TableType, h levelHandle, steps []Step) (*model.TableType, levelHandle, error) {
	cur, curT := h, tt
	for _, st := range steps {
		if st.Attr < 0 || st.Attr >= len(curT.Attrs) || curT.Attrs[st.Attr].Type.Kind != model.KindTable {
			return nil, levelHandle{}, fmt.Errorf("%w: attr %d is not a subtable", ErrBadPath, st.Attr)
		}
		gi := 0
		for _, ti := range curT.TableIndexes() {
			if ti == st.Attr {
				break
			}
			gi++
		}
		sub := curT.Attrs[st.Attr].Type.Table
		hs, err := m.memberHandles(o, sub, cur, gi)
		if err != nil {
			return nil, levelHandle{}, err
		}
		if st.Pos < 0 || st.Pos >= len(hs) {
			return nil, levelHandle{}, fmt.Errorf("%w: position %d of %d members", ErrBadPath, st.Pos, len(hs))
		}
		cur, curT = hs[st.Pos], sub
	}
	return curT, cur, nil
}

// ReadSubobject materializes the subobject addressed by steps without
// reading the rest of the object.
func (m *Manager) ReadSubobject(tt *model.TableType, ref Ref, steps ...Step) (model.Tuple, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	lt, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return nil, err
	}
	if lt.Flat() {
		atoms, err := o.readAtoms(lh.d)
		if err != nil {
			return nil, err
		}
		return assemble(lt, atoms, nil)
	}
	return m.readLevelH(o, lt, lh)
}

// ReadSubtable materializes one subtable instance: steps address a
// subobject (possibly none for the top level) and attr names the
// table-valued attribute to read.
func (m *Manager) ReadSubtable(tt *model.TableType, ref Ref, attr int, steps ...Step) (*model.Table, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	lt, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return nil, err
	}
	if attr < 0 || attr >= len(lt.Attrs) || lt.Attrs[attr].Type.Kind != model.KindTable {
		return nil, fmt.Errorf("%w: attr %d is not a subtable", ErrBadPath, attr)
	}
	gi := 0
	for _, ti := range lt.TableIndexes() {
		if ti == attr {
			break
		}
		gi++
	}
	sub := lt.Attrs[attr].Type.Table
	hs, err := m.memberHandles(o, sub, lh, gi)
	if err != nil {
		return nil, err
	}
	tbl := &model.Table{Ordered: sub.Ordered}
	for _, mh := range hs {
		var mt model.Tuple
		if sub.Flat() {
			atoms, err := o.readAtoms(mh.d)
			if err != nil {
				return nil, err
			}
			mt, err = assemble(sub, atoms, nil)
			if err != nil {
				return nil, err
			}
		} else {
			mt, err = m.readLevelH(o, sub, mh)
			if err != nil {
				return nil, err
			}
		}
		tbl.Append(mt)
	}
	return tbl, nil
}

// ReadAtomsAt returns only the atomic attribute values of the
// (sub)object addressed by steps — a partial retrieval that does not
// touch the subobject's subtables.
func (m *Manager) ReadAtomsAt(tt *model.TableType, ref Ref, steps ...Step) ([]model.Value, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	_, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return nil, err
	}
	return o.readAtoms(lh.d)
}

// ReadDataPath reads the data subtuple at the end of a hierarchical
// address path (the Mini TIDs of the data subtuples of successive
// complex subobjects, as in Fig 7b) with a single subtuple access
// after loading the root — the direct location of "a certain piece of
// data" that §4.2 demands from index addresses.
func (m *Manager) ReadDataPath(ref Ref, dpath []page.MiniTID) ([]model.Value, error) {
	o, _, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	if len(dpath) == 0 {
		return nil, fmt.Errorf("object: empty data path")
	}
	return o.readAtoms(dpath[len(dpath)-1])
}

// EnumLevel walks all subobjects at the level reached by following
// tablePath (attribute indexes of table-valued attributes, outermost
// first; empty = the objects' top level) and calls fn with each
// subobject's hierarchical data path (Fig 7b: data subtuple Mini TIDs
// of the subobjects from nesting level 1 down to this one — for the
// top level, just its own data subtuple) and its atomic values.
// Used to build indexes with hierarchical addresses.
func (m *Manager) EnumLevel(tt *model.TableType, ref Ref, tablePath []int, fn func(dpath []page.MiniTID, atoms []model.Value) error) error {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return err
	}
	if len(tablePath) == 0 {
		atoms, err := o.readAtoms(h.d)
		if err != nil {
			return err
		}
		return fn([]page.MiniTID{h.d}, atoms)
	}
	return m.enumLevelRec(o, tt, h, tablePath, nil, fn)
}

func (m *Manager) enumLevelRec(o *objCtx, tt *model.TableType, h levelHandle, tablePath []int, prefix []page.MiniTID, fn func([]page.MiniTID, []model.Value) error) error {
	attr := tablePath[0]
	if attr < 0 || attr >= len(tt.Attrs) || tt.Attrs[attr].Type.Kind != model.KindTable {
		return fmt.Errorf("%w: attr %d is not a subtable", ErrBadPath, attr)
	}
	gi := 0
	for _, ti := range tt.TableIndexes() {
		if ti == attr {
			break
		}
		gi++
	}
	sub := tt.Attrs[attr].Type.Table
	hs, err := m.memberHandles(o, sub, h, gi)
	if err != nil {
		return err
	}
	for _, mh := range hs {
		path := append(append([]page.MiniTID(nil), prefix...), mh.d)
		if len(tablePath) == 1 {
			atoms, err := o.readAtoms(mh.d)
			if err != nil {
				return err
			}
			if err := fn(path, atoms); err != nil {
				return err
			}
			continue
		}
		if err := m.enumLevelRec(o, sub, mh, tablePath[1:], path, fn); err != nil {
			return err
		}
	}
	return nil
}

// Stats describes the physical composition of one complex object —
// the quantities compared across SS1/SS2/SS3 in §4.1 and /DGW85/.
type Stats struct {
	Layout        Layout
	MDSubtuples   int // including the root MD subtuple
	MDBytes       int
	DataSubtuples int
	DataBytes     int
	Pointers      int // D and C pointers in all MD subtuples
	Pages         int // pages in the local address space (excluding gaps)
	PageListLen   int // page-list positions including gaps
	PageListGaps  int // gap positions left by emptied pages (§4.1)
}

// ObjectStats walks the object's Mini Directory and tallies its
// physical composition.
func (m *Manager) ObjectStats(tt *model.TableType, ref Ref) (Stats, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{Layout: m.layout, MDSubtuples: 1}
	raw, err := m.st.Read(ref)
	if err != nil {
		return Stats{}, err
	}
	s.MDBytes += len(raw)
	s.PageListLen = len(o.pages)
	for _, pg := range o.pages {
		if pg != 0 {
			s.Pages++
		} else {
			s.PageListGaps++
		}
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return Stats{}, err
	}
	if err := m.statsLevel(o, tt, h, &s); err != nil {
		return Stats{}, err
	}
	return s, nil
}

func (m *Manager) statsLevel(o *objCtx, tt *model.TableType, h levelHandle, s *Stats) error {
	raw, err := o.read(h.d)
	if err != nil {
		return err
	}
	s.DataSubtuples++
	s.DataBytes += len(raw)
	// This level's own pointers: one D pointer plus, per layout, one C
	// pointer per subtable (SS1/SS3) or one pointer per member in each
	// inline group (SS2).
	s.Pointers++
	tis := tt.TableIndexes()
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		switch m.layout {
		case SS1, SS3:
			s.Pointers++ // C pointer to the subtable MD
			mdRaw, err := o.read(h.subC[gi])
			if err != nil {
				return err
			}
			s.MDSubtuples++
			s.MDBytes += len(mdRaw)
			if m.layout == SS1 || (m.layout == SS3 && sub.Flat()) {
				// SS1: the subtable MD holds one pointer per member.
				// SS3 with flat members: each entry is one D pointer.
				r := &reader{b: mdRaw}
				s.Pointers += r.count()
			}
			// SS3 with complex members: the entries carry the members'
			// own D and C pointers, counted in the recursion.
		case SS2:
			s.Pointers += len(h.groups[gi])
		}
		hs, err := m.memberHandles(o, sub, h, gi)
		if err != nil {
			return err
		}
		for _, mh := range hs {
			if sub.Flat() {
				mraw, err := o.read(mh.d)
				if err != nil {
					return err
				}
				s.DataSubtuples++
				s.DataBytes += len(mraw)
				continue
			}
			if m.layout == SS1 || m.layout == SS2 {
				// The complex member has its own MD subtuple.
				nraw, err := o.read(mh.self)
				if err != nil {
					return err
				}
				s.MDSubtuples++
				s.MDBytes += len(nraw)
			}
			if err := m.statsLevel(o, sub, mh, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResolveDataMini translates a Mini TID of the object's local address
// space into its segment TID — used to build indexes with data-
// subtuple addresses (the first, insufficient strategy of §4.2).
func (m *Manager) ResolveDataMini(ref Ref, mt page.MiniTID) (page.TID, error) {
	o, _, err := m.loadCtx(ref, 0)
	if err != nil {
		return page.TID{}, err
	}
	return o.resolve(mt)
}

// DataPathAt returns the hierarchical data path (the Mini TIDs of the
// data subtuples of the complex subobjects from level 1 down to the
// target) for the subobject addressed by steps; empty steps address
// the object itself, whose path is its own data subtuple.
func (m *Manager) DataPathAt(tt *model.TableType, ref Ref, steps ...Step) ([]page.MiniTID, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return []page.MiniTID{h.d}, nil
	}
	var path []page.MiniTID
	cur, curT := h, tt
	for _, st := range steps {
		curT, cur, err = m.locate(o, curT, cur, []Step{st})
		if err != nil {
			return nil, err
		}
		path = append(path, cur.d)
	}
	return path, nil
}

// FindByDataPath locates the subobject whose hierarchical data path
// is dpath and returns the navigation steps to it — the inverse of
// DataPathAt, used to resolve tuple names and index addresses back to
// subobjects.
func (m *Manager) FindByDataPath(tt *model.TableType, ref Ref, dpath []page.MiniTID) ([]Step, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	if len(dpath) == 1 && dpath[0] == h.d {
		return []Step{}, nil
	}
	var steps []Step
	cur, curT := h, tt
	for _, want := range dpath {
		found := false
		for gi, ti := range curT.TableIndexes() {
			sub := curT.Attrs[ti].Type.Table
			hs, err := m.memberHandles(o, sub, cur, gi)
			if err != nil {
				return nil, err
			}
			for pos, mh := range hs {
				if mh.d == want {
					steps = append(steps, Step{Attr: ti, Pos: pos})
					cur, curT = mh, sub
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: data path component %v not found", ErrBadPath, want)
		}
	}
	return steps, nil
}

// HistoryAt returns the version history (newest first) of the atomic
// attribute values of the (sub)object addressed by steps — the
// walk-through-time access of §5, surfaced at the object level but,
// as in the paper, not at the language interface.
func (m *Manager) HistoryAt(tt *model.TableType, ref Ref, steps ...Step) ([]AtomsVersion, error) {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	_, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return nil, err
	}
	tid, err := o.resolve(lh.d)
	if err != nil {
		return nil, err
	}
	raws, err := m.st.History(tid)
	if err != nil {
		return nil, err
	}
	out := make([]AtomsVersion, 0, len(raws))
	for _, v := range raws {
		av := AtomsVersion{FromTS: v.FromTS, Deleted: v.Deleted}
		if !v.Deleted {
			av.Atoms, err = model.DecodeAtoms(v.Payload)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, av)
	}
	return out, nil
}

// AtomsVersion is one historical state of a (sub)object's atomic
// attribute values.
type AtomsVersion struct {
	FromTS  int64
	Atoms   []model.Value
	Deleted bool
}
