package object

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func newTestStore(t testing.TB, versioned bool) (*subtuple.Store, *buffer.Pool) {
	t.Helper()
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	var clock func() int64
	if versioned {
		ts := int64(0)
		clock = func() int64 { ts++; return ts }
	}
	return subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: versioned, Clock: clock}), pool
}

func allLayouts(t *testing.T, fn func(t *testing.T, m *Manager)) {
	for _, l := range []Layout{SS1, SS2, SS3} {
		t.Run(l.String(), func(t *testing.T) {
			st, _ := newTestStore(t, false)
			fn(t, NewManager(st, l))
		})
	}
}

func TestRoundTripDepartments(t *testing.T) {
	tt := testdata.DepartmentsType()
	depts := testdata.Departments()
	allLayouts(t, func(t *testing.T, m *Manager) {
		var refs []Ref
		for _, tup := range depts.Tuples {
			ref, err := m.Insert(tt, tup)
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			refs = append(refs, ref)
		}
		for i, ref := range refs {
			got, err := m.Read(tt, ref)
			if err != nil {
				t.Fatalf("Read dept %d: %v", i, err)
			}
			if !model.TupleEqual(got, depts.Tuples[i]) {
				t.Errorf("dept %d mismatch:\n got %v\nwant %v", i, got, depts.Tuples[i])
			}
		}
	})
}

func TestRoundTripReports(t *testing.T) {
	tt := testdata.ReportsType()
	reports := testdata.Reports()
	allLayouts(t, func(t *testing.T, m *Manager) {
		for i, tup := range reports.Tuples {
			ref, err := m.Insert(tt, tup)
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			got, err := m.Read(tt, ref)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if !model.TupleEqual(got, tup) {
				t.Errorf("report %d mismatch:\n got %v\nwant %v", i, got, tup)
			}
		}
	})
}

// TestOrderedSubtablePreservesSequence checks that lists keep their
// order through the MD entry sequence (§4.1).
func TestOrderedSubtablePreservesSequence(t *testing.T) {
	tt := model.MustTableType(false,
		model.Attr{Name: "ID", Type: model.AtomicType(model.KindInt)},
		model.Attr{Name: "STEPS", Type: model.TableOf(true,
			model.Attr{Name: "NAME", Type: model.AtomicType(model.KindString)})},
	)
	tup := model.Tuple{model.Int(1), model.NewList(
		model.Tuple{model.Str("c")}, model.Tuple{model.Str("a")}, model.Tuple{model.Str("b")},
	)}
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, tup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Read(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		steps := got[1].(*model.Table)
		want := []string{"c", "a", "b"}
		for i, w := range want {
			if string(steps.Tuples[i][0].(model.Str)) != w {
				t.Fatalf("step %d = %v, want %s", i, steps.Tuples[i][0], w)
			}
		}
	})
}

// TestMDSubtupleCountOrder asserts the paper's ordering
// SS1 > SS3 > SS2 for the number of MD subtuples (§4.1).
func TestMDSubtupleCountOrder(t *testing.T) {
	tt := testdata.DepartmentsType()
	dept314 := testdata.Departments().Tuples[0]
	counts := map[Layout]int{}
	for _, l := range []Layout{SS1, SS2, SS3} {
		st, _ := newTestStore(t, false)
		m := NewManager(st, l)
		ref, err := m.Insert(tt, dept314)
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.ObjectStats(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		counts[l] = s.MDSubtuples
		t.Logf("%s: %d MD subtuples, %d data subtuples, %d pointers, %d MD bytes",
			l, s.MDSubtuples, s.DataSubtuples, s.Pointers, s.MDBytes)
	}
	if !(counts[SS1] > counts[SS3] && counts[SS3] > counts[SS2]) {
		t.Errorf("MD subtuple counts not SS1 > SS3 > SS2: %v", counts)
	}
	// Fig 6 for department 314: SS1 has root + PROJECTS + EQUIP +
	// 2 project nodes + 2 MEMBERS = 7; SS3 root + PROJECTS + EQUIP +
	// 2 MEMBERS = 5; SS2 root + 2 project nodes = 3.
	if counts[SS1] != 7 || counts[SS3] != 5 || counts[SS2] != 3 {
		t.Errorf("department 314 MD counts = %v, want SS1=7 SS3=5 SS2=3", counts)
	}
}

func TestDataSubtupleCountInvariant(t *testing.T) {
	tt := testdata.DepartmentsType()
	dept314 := testdata.Departments().Tuples[0]
	// 1 dept + 2 projects + 7 members + 3 equip = 13 data subtuples,
	// identical across layouts (structure/data separation).
	for _, l := range []Layout{SS1, SS2, SS3} {
		st, _ := newTestStore(t, false)
		m := NewManager(st, l)
		ref, _ := m.Insert(tt, dept314)
		s, err := m.ObjectStats(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if s.DataSubtuples != 13 {
			t.Errorf("%s: %d data subtuples, want 13", l, s.DataSubtuples)
		}
	}
}

func TestNavigation(t *testing.T) {
	tt := testdata.DepartmentsType()
	dept314 := testdata.Departments().Tuples[0]
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, dept314)
		if err != nil {
			t.Fatal(err)
		}
		// PROJECTS is attr 2; project 1 (HEAP); MEMBERS is attr 2 within.
		proj, err := m.ReadSubobject(tt, ref, Step{Attr: 2, Pos: 1})
		if err != nil {
			t.Fatal(err)
		}
		if proj[1].(model.Str) != "HEAP" {
			t.Fatalf("project = %v, want HEAP", proj[1])
		}
		members, err := m.ReadSubtable(tt, ref, 2, Step{Attr: 2, Pos: 1})
		if err != nil {
			t.Fatal(err)
		}
		if members.Len() != 4 {
			t.Fatalf("HEAP has %d members, want 4", members.Len())
		}
		atoms, err := m.ReadAtomsAt(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if atoms[0].(model.Int) != 314 {
			t.Fatalf("top-level atoms = %v", atoms)
		}
	})
}

func TestMutations(t *testing.T) {
	tt := testdata.DepartmentsType()
	dept314 := testdata.Departments().Tuples[0].Clone()
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, dept314)
		if err != nil {
			t.Fatal(err)
		}
		// Update the budget (atomic attrs of the top level: DNO, MGRNO, BUDGET).
		if err := m.UpdateAtoms(tt, ref, []model.Value{model.Int(314), model.Int(56194), model.Int(999)}); err != nil {
			t.Fatalf("UpdateAtoms: %v", err)
		}
		// Insert a new member into project CGA (pos 0).
		newMember := model.Tuple{model.Int(11111), model.Str("Consultant")}
		if err := m.InsertMember(tt, ref, []Step{{Attr: 2, Pos: 0}}, 2, -1, newMember); err != nil {
			t.Fatalf("InsertMember: %v", err)
		}
		// Insert a whole new project.
		newProj := model.Tuple{model.Int(99), model.Str("NEW"), model.NewRelation(
			model.Tuple{model.Int(22222), model.Str("Leader")},
		)}
		if err := m.InsertMember(tt, ref, nil, 2, -1, newProj); err != nil {
			t.Fatalf("InsertMember project: %v", err)
		}
		// Delete equipment item 0.
		if err := m.DeleteMember(tt, ref, nil, 4, 0); err != nil {
			t.Fatalf("DeleteMember: %v", err)
		}
		got, err := m.Read(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if got[3].(model.Int) != 999 {
			t.Errorf("budget = %v, want 999", got[3])
		}
		projs := got[2].(*model.Table)
		if projs.Len() != 3 {
			t.Fatalf("projects = %d, want 3", projs.Len())
		}
		cga := projs.Tuples[0]
		if cga[2].(*model.Table).Len() != 4 {
			t.Errorf("CGA members = %d, want 4", cga[2].(*model.Table).Len())
		}
		if projs.Tuples[2][1].(model.Str) != "NEW" {
			t.Errorf("new project = %v", projs.Tuples[2][1])
		}
		if got[4].(*model.Table).Len() != 2 {
			t.Errorf("equip = %d, want 2", got[4].(*model.Table).Len())
		}
	})
}

func TestDeleteObject(t *testing.T) {
	tt := testdata.DepartmentsType()
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(tt, ref); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := m.Read(tt, ref); err == nil {
			t.Fatal("Read after Delete succeeded")
		}
	})
}

func TestEnumLevel(t *testing.T) {
	tt := testdata.DepartmentsType()
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate MEMBERS level (PROJECTS attr 2, MEMBERS attr 2).
		var paths [][]page.MiniTID
		var funcs []string
		err = m.EnumLevel(tt, ref, []int{2, 2}, func(dpath []page.MiniTID, atoms []model.Value) error {
			cp := append([]page.MiniTID(nil), dpath...)
			paths = append(paths, cp)
			funcs = append(funcs, string(atoms[1].(model.Str)))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 7 {
			t.Fatalf("enumerated %d members, want 7", len(paths))
		}
		for _, p := range paths {
			if len(p) != 2 {
				t.Fatalf("member path length %d, want 2 (project data, member data)", len(p))
			}
		}
		// Members of the same project share the path prefix (Fig 7b).
		if paths[0][0] != paths[1][0] {
			t.Error("members of project CGA do not share the project data-subtuple prefix")
		}
		if paths[0][0] == paths[3][0] {
			t.Error("members of different projects share a prefix")
		}
		// Direct access through the hierarchical address.
		atoms, err := m.ReadDataPath(ref, paths[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(atoms[1].(model.Str)) != funcs[1] {
			t.Errorf("ReadDataPath = %v, want %s", atoms, funcs[1])
		}
	})
}

func TestCheckoutRelocate(t *testing.T) {
	tt := testdata.DepartmentsType()
	want := testdata.Departments().Tuples[0]
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, want)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := m.Export(ref)
		if err != nil {
			t.Fatalf("Export: %v", err)
		}
		raw := EncodeSnapshot(snap)
		snap2, err := DecodeSnapshot(raw)
		if err != nil {
			t.Fatalf("DecodeSnapshot: %v", err)
		}
		ref2, err := m.Import(snap2)
		if err != nil {
			t.Fatalf("Import: %v", err)
		}
		got, err := m.Read(tt, ref2)
		if err != nil {
			t.Fatalf("Read imported: %v", err)
		}
		if !model.TupleEqual(got, want) {
			t.Errorf("imported object mismatch:\n got %v\nwant %v", got, want)
		}
		// Relocate and re-check; the original is untouched.
		ref3, err := m.Relocate(ref)
		if err != nil {
			t.Fatalf("Relocate: %v", err)
		}
		got3, err := m.Read(tt, ref3)
		if err != nil {
			t.Fatal(err)
		}
		if !model.TupleEqual(got3, want) {
			t.Error("relocated object mismatch")
		}
	})
}

func TestVersionedASOF(t *testing.T) {
	tt := testdata.DepartmentsType()
	for _, l := range []Layout{SS1, SS2, SS3} {
		t.Run(l.String(), func(t *testing.T) {
			ts := int64(0)
			pool := buffer.NewPool(256)
			pool.Register(1, segment.NewMemStore())
			st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: true, Clock: func() int64 { ts++; return ts }})
			m := NewManager(st, l)
			orig := testdata.Departments().Tuples[0]
			ref, err := m.Insert(tt, orig)
			if err != nil {
				t.Fatal(err)
			}
			t1 := ts // after initial insert
			if err := m.UpdateAtoms(tt, ref, []model.Value{model.Int(314), model.Int(56194), model.Int(777)}); err != nil {
				t.Fatal(err)
			}
			if err := m.DeleteMember(tt, ref, nil, 2, 0); err != nil { // drop project CGA
				t.Fatal(err)
			}
			// Current state: budget 777, one project.
			cur, err := m.Read(tt, ref)
			if err != nil {
				t.Fatal(err)
			}
			if cur[3].(model.Int) != 777 || cur[2].(*model.Table).Len() != 1 {
				t.Fatalf("current state wrong: %v", cur)
			}
			// ASOF t1: original budget and both projects.
			old, err := m.ReadAsOf(tt, ref, t1)
			if err != nil {
				t.Fatal(err)
			}
			if !model.TupleEqual(old, orig) {
				t.Errorf("ASOF state mismatch:\n got %v\nwant %v", old, orig)
			}
		})
	}
}

func TestLargeObjectOverflow(t *testing.T) {
	// A subtable with enough members that its MD subtuple spills into
	// an overflow chain (SS3 keeps one MD subtuple per subtable, so
	// 3000 members × 4 bytes exceed a page).
	tt := model.MustTableType(false,
		model.Attr{Name: "ID", Type: model.AtomicType(model.KindInt)},
		model.Attr{Name: "ITEMS", Type: model.TableOf(false,
			model.Attr{Name: "N", Type: model.AtomicType(model.KindInt)})},
	)
	items := model.NewRelation()
	for i := 0; i < 3000; i++ {
		items.Append(model.Tuple{model.Int(int64(i))})
	}
	tup := model.Tuple{model.Int(7), items}
	allLayouts(t, func(t *testing.T, m *Manager) {
		ref, err := m.Insert(tt, tup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Read(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if got[1].(*model.Table).Len() != 3000 {
			t.Fatalf("items = %d, want 3000", got[1].(*model.Table).Len())
		}
		// Mutate after overflow: append one more and re-read.
		if err := m.InsertMember(tt, ref, nil, 1, -1, model.Tuple{model.Int(3000)}); err != nil {
			t.Fatalf("InsertMember: %v", err)
		}
		got, err = m.Read(tt, ref)
		if err != nil {
			t.Fatal(err)
		}
		if got[1].(*model.Table).Len() != 3001 {
			t.Fatalf("items after insert = %d", got[1].(*model.Table).Len())
		}
	})
}

func TestClusteringPageLocality(t *testing.T) {
	// All subtuples of one object live on its own page set; reading a
	// whole object touches only its local pages (plus buffer effects).
	tt := testdata.DepartmentsType()
	st, pool := newTestStore(t, false)
	m := NewManager(st, SS3)
	cfg := testdata.GenConfig{Departments: 20, ProjsPerDept: 5, MembersPerProj: 10, EquipPerDept: 4, Seed: 1}
	var refs []Ref
	for _, tup := range testdata.GenDepartments(cfg).Tuples {
		ref, err := m.Insert(tt, tup)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	stats, err := m.ObjectStats(tt, refs[10])
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, err := m.Read(tt, refs[10]); err != nil {
		t.Fatal(err)
	}
	got := pool.Stats()
	// Distinct pages read must not exceed the object's page count
	// (every fetch beyond that is a buffer hit on the same pages).
	if int(got.Reads) > stats.Pages {
		t.Errorf("whole-object read did %d physical reads, object spans %d pages", got.Reads, stats.Pages)
	}
	t.Logf("object pages=%d, fetches=%d, physical reads=%d", stats.Pages, got.Fetches, got.Reads)
}

// newVersionedStore returns a versioned store whose logical clock is
// exposed for snapshot-based property tests.
func newVersionedStore(t testing.TB) (*subtuple.Store, *int64) {
	t.Helper()
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	ts := new(int64)
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: true, Clock: func() int64 { *ts++; return *ts }})
	return st, ts
}

// Page-list gaps (§4.1): deleting enough members empties pages, which
// become gaps in the page list; later growth reuses the gaps, and
// existing Mini TIDs stay valid throughout.
func TestPageListGapsReused(t *testing.T) {
	tt := model.MustTableType(false,
		model.Attr{Name: "ID", Type: model.AtomicType(model.KindInt)},
		model.Attr{Name: "ITEMS", Type: model.TableOf(false,
			model.Attr{Name: "PAYLOAD", Type: model.AtomicType(model.KindString)})},
	)
	big := func(i int) model.Tuple {
		return model.Tuple{model.Str(fmt.Sprintf("payload-%04d-%s", i, string(make([]byte, 300))))}
	}
	items := model.NewRelation()
	for i := 0; i < 60; i++ { // ~20 KB of members: several pages
		items.Append(big(i))
	}
	st, _ := newTestStore(t, false)
	m := NewManager(st, SS3)
	ref, err := m.Insert(tt, model.Tuple{model.Int(1), items})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.ObjectStats(tt, ref)
	if before.Pages < 3 {
		t.Fatalf("object spans only %d pages; enlarge the fixture", before.Pages)
	}
	// Delete most members (descending positions keep indexes valid).
	for pos := 59; pos >= 5; pos-- {
		if err := m.DeleteMember(tt, ref, nil, 1, pos); err != nil {
			t.Fatalf("delete %d: %v", pos, err)
		}
	}
	after, _ := m.ObjectStats(tt, ref)
	if after.PageListGaps == 0 {
		t.Fatalf("no page-list gaps after mass deletion: %+v", after)
	}
	if after.PageListLen != before.PageListLen {
		t.Errorf("page list compacted (%d -> %d); gaps must stay open for Mini TID stability",
			before.PageListLen, after.PageListLen)
	}
	// Remaining members still readable (their Mini TIDs survived).
	got, err := m.Read(tt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].(*model.Table).Len() != 5 {
		t.Fatalf("members left = %d", got[1].(*model.Table).Len())
	}
	// Growth reuses the gaps: page-list length must not exceed the
	// original even after re-adding the bulk.
	for i := 0; i < 55; i++ {
		if err := m.InsertMember(tt, ref, nil, 1, -1, big(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	regrown, _ := m.ObjectStats(tt, ref)
	if regrown.PageListLen > before.PageListLen+1 {
		t.Errorf("page list grew from %d to %d despite gaps", before.PageListLen, regrown.PageListLen)
	}
	got, err = m.Read(tt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].(*model.Table).Len() != 60 {
		t.Errorf("members after regrow = %d", got[1].(*model.Table).Len())
	}
}

// Object-level walk-through-time: the atomic history of a subobject.
func TestHistoryAt(t *testing.T) {
	tt := testdata.DepartmentsType()
	st, _ := newVersionedStore(t)
	m := NewManager(st, SS3)
	ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, budget := range []int64{111, 222, 333} {
		_ = i
		if err := m.UpdateAtoms(tt, ref, []model.Value{model.Int(314), model.Int(56194), model.Int(budget)}); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := m.HistoryAt(tt, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("versions = %d, want 4", len(hist))
	}
	wantBudgets := []int64{333, 222, 111, 320000} // newest first
	for i, w := range wantBudgets {
		if got := int64(hist[i].Atoms[2].(model.Int)); got != w {
			t.Errorf("version %d budget = %d, want %d", i, got, w)
		}
	}
	// Nested level history.
	if err := m.UpdateAtoms(tt, ref, []model.Value{model.Int(17), model.Str("CGA-2")}, Step{Attr: 2, Pos: 0}); err != nil {
		t.Fatal(err)
	}
	ph, err := m.HistoryAt(tt, ref, Step{Attr: 2, Pos: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ph) != 2 || ph[0].Atoms[1].(model.Str) != "CGA-2" || ph[1].Atoms[1].(model.Str) != "CGA" {
		t.Errorf("project history = %v", ph)
	}
}
