package object

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// genType builds a random nested table type with bounded depth and
// fan-out.
func genType(rng *rand.Rand, depth int) *model.TableType {
	nAttrs := 1 + rng.Intn(4)
	attrs := make([]model.Attr, 0, nAttrs)
	for i := 0; i < nAttrs; i++ {
		name := fmt.Sprintf("A%d_%c", depth, 'A'+byte(i))
		if depth > 0 && rng.Intn(3) == 0 {
			attrs = append(attrs, model.Attr{
				Name: name,
				Type: model.Type{Kind: model.KindTable, Table: genType(rng, depth-1)},
			})
			continue
		}
		kinds := []model.Kind{model.KindInt, model.KindString, model.KindFloat, model.KindBool}
		attrs = append(attrs, model.Attr{Name: name, Type: model.AtomicType(kinds[rng.Intn(len(kinds))])})
	}
	return &model.TableType{Ordered: rng.Intn(2) == 0, Attrs: attrs}
}

// genTuple builds a random tuple conforming to the type.
func genTuple(rng *rand.Rand, tt *model.TableType, fanout int) model.Tuple {
	tup := make(model.Tuple, len(tt.Attrs))
	for i, a := range tt.Attrs {
		switch a.Type.Kind {
		case model.KindInt:
			tup[i] = model.Int(rng.Int63n(1000))
		case model.KindString:
			tup[i] = model.Str(fmt.Sprintf("s%d", rng.Intn(100)))
		case model.KindFloat:
			tup[i] = model.Float(float64(rng.Intn(100)) / 4)
		case model.KindBool:
			tup[i] = model.Bool(rng.Intn(2) == 0)
		case model.KindTable:
			n := rng.Intn(fanout + 1)
			tbl := &model.Table{Ordered: a.Type.Table.Ordered}
			for j := 0; j < n; j++ {
				tbl.Append(genTuple(rng, a.Type.Table, fanout-1))
			}
			tup[i] = tbl
		}
	}
	return tup
}

// TestPropertyRandomSchemasRoundTrip inserts random tuples of random
// nested schemas under every layout and checks exact round trips.
func TestPropertyRandomSchemasRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		tt := genType(rng, 3)
		if err := tt.Validate(); err != nil {
			t.Fatalf("generated invalid type: %v", err)
		}
		tups := make([]model.Tuple, 3)
		for i := range tups {
			tups[i] = genTuple(rng, tt, 4)
		}
		for _, layout := range []Layout{SS1, SS2, SS3} {
			st, _ := newTestStore(t, false)
			m := NewManager(st, layout)
			for i, tup := range tups {
				ref, err := m.Insert(tt, tup)
				if err != nil {
					t.Fatalf("trial %d %s insert %d: %v\ntype: %s", trial, layout, i, err, tt)
				}
				got, err := m.Read(tt, ref)
				if err != nil {
					t.Fatalf("trial %d %s read %d: %v\ntype: %s", trial, layout, i, err, tt)
				}
				if !model.TupleEqual(got, tup) {
					t.Fatalf("trial %d %s tuple %d mismatch\ntype: %s\n got %v\nwant %v",
						trial, layout, i, tt, got, tup)
				}
			}
		}
	}
}

// TestPropertyRandomMutations applies a random sequence of member
// inserts, member deletes and atom updates to a stored object and to
// an in-memory shadow tuple, checking equality after every step.
func TestPropertyRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		tt := genType(rng, 2)
		// Ensure at least one subtable so mutations have a target.
		if len(tt.TableIndexes()) == 0 {
			tt.Attrs = append(tt.Attrs, model.Attr{
				Name: "SUB_X",
				Type: model.TableOf(false, model.Attr{Name: "V", Type: model.AtomicType(model.KindInt)}),
			})
		}
		shadow := genTuple(rng, tt, 3)
		for _, layout := range []Layout{SS1, SS2, SS3} {
			st, _ := newTestStore(t, false)
			m := NewManager(st, layout)
			ref, err := m.Insert(tt, shadow.Clone())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, layout, err)
			}
			cur := shadow.Clone()
			for step := 0; step < 30; step++ {
				if err := mutateOnce(rng, m, tt, ref, cur); err != nil {
					t.Fatalf("trial %d %s step %d: %v\ntype %s", trial, layout, step, err, tt)
				}
				got, err := m.Read(tt, ref)
				if err != nil {
					t.Fatalf("trial %d %s step %d read: %v", trial, layout, step, err)
				}
				if !model.TupleEqual(got, cur) {
					t.Fatalf("trial %d %s step %d divergence\ntype %s\n got %v\nwant %v",
						trial, layout, step, tt, got, cur)
				}
			}
		}
	}
}

// mutateOnce picks a random level of the object and applies one of:
// insert member, delete member, update atoms — to both the store and
// the shadow tuple.
func mutateOnce(rng *rand.Rand, m *Manager, tt *model.TableType, ref Ref, shadow model.Tuple) error {
	// Walk to a random level.
	var steps []Step
	levelT := tt
	levelTup := shadow
	for {
		tis := levelT.TableIndexes()
		if len(tis) == 0 || rng.Intn(2) == 0 {
			break
		}
		attr := tis[rng.Intn(len(tis))]
		tbl := levelTup[attr].(*model.Table)
		if tbl.Len() == 0 || rng.Intn(3) == 0 {
			// Operate on this subtable itself.
			sub := levelT.Attrs[attr].Type.Table
			if tbl.Len() > 0 && rng.Intn(3) == 0 {
				pos := rng.Intn(tbl.Len())
				if err := m.DeleteMember(tt, ref, steps, attr, pos); err != nil {
					return fmt.Errorf("delete member: %w", err)
				}
				tbl.Tuples = append(tbl.Tuples[:pos], tbl.Tuples[pos+1:]...)
				return nil
			}
			member := genTuple(rng, sub, 2)
			pos := -1
			if tbl.Len() > 0 && rng.Intn(2) == 0 {
				pos = rng.Intn(tbl.Len() + 1)
			}
			if err := m.InsertMember(tt, ref, steps, attr, pos, member.Clone()); err != nil {
				return fmt.Errorf("insert member: %w", err)
			}
			if pos < 0 {
				tbl.Append(member)
			} else {
				tbl.Tuples = append(tbl.Tuples[:pos], append([]model.Tuple{member}, tbl.Tuples[pos:]...)...)
			}
			return nil
		}
		pos := rng.Intn(tbl.Len())
		steps = append(steps, Step{Attr: attr, Pos: pos})
		levelT = levelT.Attrs[attr].Type.Table
		levelTup = tbl.Tuples[pos]
	}
	// Update this level's atoms.
	idx := levelT.AtomicIndexes()
	vals := make([]model.Value, len(idx))
	for i, ai := range idx {
		switch levelT.Attrs[ai].Type.Kind {
		case model.KindInt:
			vals[i] = model.Int(rng.Int63n(5000))
		case model.KindString:
			vals[i] = model.Str(fmt.Sprintf("u%d", rng.Intn(500)))
		case model.KindFloat:
			vals[i] = model.Float(float64(rng.Intn(500)) / 8)
		case model.KindBool:
			vals[i] = model.Bool(rng.Intn(2) == 0)
		}
	}
	if err := m.UpdateAtoms(tt, ref, vals, steps...); err != nil {
		return fmt.Errorf("update atoms: %w", err)
	}
	for i, ai := range idx {
		levelTup[ai] = vals[i]
	}
	return nil
}

// TestPropertyVersionedMutationsASOF replays random mutations on a
// versioned store, snapshotting the shadow state at random instants,
// and verifies every snapshot with ReadAsOf afterwards.
func TestPropertyVersionedMutationsASOF(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	for trial := 0; trial < 6; trial++ {
		tt := genType(rng, 2)
		if len(tt.TableIndexes()) == 0 {
			tt.Attrs = append(tt.Attrs, model.Attr{
				Name: "SUB_X",
				Type: model.TableOf(false, model.Attr{Name: "V", Type: model.AtomicType(model.KindInt)}),
			})
		}
		st, ticks := newVersionedStore(t)
		m := NewManager(st, SS3)
		shadow := genTuple(rng, tt, 3)
		ref, err := m.Insert(tt, shadow.Clone())
		if err != nil {
			t.Fatal(err)
		}
		type snap struct {
			ts  int64
			tup model.Tuple
		}
		var snaps []snap
		for step := 0; step < 25; step++ {
			if err := mutateOnce(rng, m, tt, ref, shadow); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if rng.Intn(4) == 0 {
				snaps = append(snaps, snap{ts: *ticks, tup: shadow.Clone()})
			}
		}
		for i, s := range snaps {
			got, err := m.ReadAsOf(tt, ref, s.ts)
			if err != nil {
				t.Fatalf("trial %d snapshot %d: %v", trial, i, err)
			}
			if !model.TupleEqual(got, s.tup) {
				t.Fatalf("trial %d snapshot %d (ts %d) mismatch\n got %v\nwant %v",
					trial, i, s.ts, got, s.tup)
			}
		}
	}
}
