package object

import (
	"encoding/binary"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
)

// placeAtoms stores the data subtuple holding the level's atomic
// attribute values. Every (sub)object gets a data subtuple, even when
// it has no atomic attributes (an empty one) — this keeps hierarchical
// addresses uniform (§4.3 notes the need for a slightly modified
// scheme there; materializing the empty data subtuple is ours).
func placeAtoms(o *objCtx, tt *model.TableType, tup model.Tuple) (page.MiniTID, error) {
	payload, err := model.EncodeAtoms(model.Atoms(tt, tup))
	if err != nil {
		return page.NilMini, err
	}
	return o.place(payload)
}

// buildLevel stores the data subtuples and MD subtuples of one
// (sub)object according to the manager's layout and returns the
// object-node body:
//
//	SS1/SS3: [D mini][C mini per subtable]       (fixed length)
//	SS2:     [D mini] + per subtable: [count][member pointer ...]
//
// For SS1 and SS2 this body is also what gets stored as a complex
// subobject's own MD subtuple; for SS3 it is the per-member entry
// embedded in the parent subtable's MD subtuple.
func (m *Manager) buildLevel(o *objCtx, tt *model.TableType, tup model.Tuple) ([]byte, error) {
	d, err := placeAtoms(o, tt, tup)
	if err != nil {
		return nil, err
	}
	body := page.AppendMiniTID(nil, d)
	for _, ti := range tt.TableIndexes() {
		sub := tt.Attrs[ti].Type.Table
		tbl, _ := tup[ti].(*model.Table)
		switch m.layout {
		case SS1, SS3:
			mdMini, err := m.buildSubtableMD(o, sub, tbl)
			if err != nil {
				return nil, err
			}
			body = page.AppendMiniTID(body, mdMini)
		case SS2:
			body = binary.AppendUvarint(body, uint64(tbl.Len()))
			for _, member := range tbl.Tuples {
				ptr, err := m.buildMemberSS2(o, sub, member)
				if err != nil {
					return nil, err
				}
				body = page.AppendMiniTID(body, ptr)
			}
		}
	}
	return body, nil
}

// buildSubtableMD stores one subtable instance's MD subtuple (SS1 and
// SS3 only) and returns its Mini TID. The sequence of entries encodes
// the sorting order of ordered subtables (lists), as §4.1 prescribes.
func (m *Manager) buildSubtableMD(o *objCtx, sub *model.TableType, tbl *model.Table) (page.MiniTID, error) {
	body := binary.AppendUvarint(nil, uint64(tbl.Len()))
	for _, member := range tbl.Tuples {
		switch {
		case sub.Flat():
			// Flat subobject: one data subtuple, one D pointer.
			d, err := placeAtoms(o, sub, member)
			if err != nil {
				return page.NilMini, err
			}
			body = page.AppendMiniTID(body, d)
		case m.layout == SS1:
			// Complex subobject gets its own MD subtuple; the subtable
			// MD holds a C pointer to it.
			nodeBody, err := m.buildLevel(o, sub, member)
			if err != nil {
				return page.NilMini, err
			}
			c, err := o.place(nodeBody)
			if err != nil {
				return page.NilMini, err
			}
			body = page.AppendMiniTID(body, c)
		default: // SS3
			// The member's structural entry is embedded right here;
			// complex subobjects have no MD subtuple of their own.
			entry, err := m.buildLevel(o, sub, member)
			if err != nil {
				return page.NilMini, err
			}
			body = append(body, entry...)
		}
	}
	return o.place(body)
}

// buildMemberSS2 stores one member of a subtable under SS2 and
// returns the pointer recorded in the parent node: a D pointer to the
// data subtuple for flat members, a C pointer to the member's own
// (variable length) MD subtuple for complex members.
func (m *Manager) buildMemberSS2(o *objCtx, sub *model.TableType, member model.Tuple) (page.MiniTID, error) {
	if sub.Flat() {
		return placeAtoms(o, sub, member)
	}
	nodeBody, err := m.buildLevel(o, sub, member)
	if err != nil {
		return page.NilMini, err
	}
	return o.place(nodeBody)
}

// Insert stores the tuple as a new complex object and returns its
// reference (the TID of its root MD subtuple). The root MD subtuple
// is placed inside the object's own page set, so the whole object —
// structure and data — is clustered on its local address space.
func (m *Manager) Insert(tt *model.TableType, tup model.Tuple) (Ref, error) {
	if err := model.Conform(tt, tup); err != nil {
		return Ref{}, err
	}
	o := m.newCtx()
	body, err := m.buildLevel(o, tt, tup)
	if err != nil {
		return Ref{}, err
	}
	o.dirty = false
	mini, err := o.place(o.encodeEnvelope(body))
	if err != nil {
		return Ref{}, err
	}
	root, err := o.resolve(mini)
	if err != nil {
		return Ref{}, err
	}
	o.root = root
	if o.dirty {
		// Placing the root extended the page list; rewrite the
		// envelope so the list is complete.
		if err := m.st.Update(root, o.encodeEnvelope(body)); err != nil {
			return Ref{}, err
		}
	}
	return root, nil
}

// entrySize returns the fixed byte length of an SS3 member entry (or
// an SS1/SS3 object-node body) for the given level type: one D
// pointer plus one C pointer per subtable.
func entrySize(tt *model.TableType) int {
	return page.EncodedMiniTIDLen * (1 + len(tt.TableIndexes()))
}

// parseNode decodes an object-node body produced by buildLevel.
func (m *Manager) parseNode(tt *model.TableType, body []byte) (levelHandle, error) {
	r := &reader{b: body}
	h := levelHandle{d: r.mini()}
	nsub := len(tt.TableIndexes())
	switch m.layout {
	case SS1, SS3:
		h.subC = make([]page.MiniTID, nsub)
		for i := range h.subC {
			h.subC[i] = r.mini()
		}
	case SS2:
		h.groups = make([][]page.MiniTID, nsub)
		for i := range h.groups {
			n := r.count()
			// Each member pointer occupies EncodedMiniTIDLen bytes, so a
			// count beyond the remaining body is rot — reject it before
			// sizing the slice by it.
			if n > len(r.b)/page.EncodedMiniTIDLen {
				return levelHandle{}, dberr.Corruptf("object: member count %d exceeds node body", n)
			}
			g := make([]page.MiniTID, n)
			for j := range g {
				g[j] = r.mini()
			}
			h.groups[i] = g
		}
	}
	if r.err != nil {
		return levelHandle{}, r.err
	}
	if len(r.b) != 0 {
		return levelHandle{}, dberr.Corruptf("object: trailing bytes in node body")
	}
	return h, nil
}

// encodeNode re-serializes a handle back into a node body.
func (m *Manager) encodeNode(h levelHandle) []byte {
	body := page.AppendMiniTID(nil, h.d)
	switch m.layout {
	case SS1, SS3:
		for _, c := range h.subC {
			body = page.AppendMiniTID(body, c)
		}
	case SS2:
		for _, g := range h.groups {
			body = binary.AppendUvarint(body, uint64(len(g)))
			for _, ptr := range g {
				body = page.AppendMiniTID(body, ptr)
			}
		}
	}
	return body
}
