package object

import (
	"strings"

	"repro/internal/model"
)

// PathSet selects the parts of a complex object a read must
// materialize. It mirrors the schema tree: a node covers one nesting
// level, Subs holds the required subtables keyed by attribute index.
// The zero value (no flags, no subs) requests only the subtable
// membership of the level — enough to count members and to bind range
// variables over them — without touching any data subtuple.
//
// This is the unit of projection pushdown promised by §4.1: since all
// structural information lives in MD subtuples and all data in data
// subtuples, a read guided by a PathSet touches exactly the MD
// subtuples along the requested paths plus the data subtuples of the
// levels whose atoms are requested, and leaves every other subtree
// unread.
type PathSet struct {
	// All requests the complete subtree (atoms and every subtable,
	// recursively). Subs and Atoms are ignored when set.
	All bool
	// Atoms requests the atomic attribute values of this level (they
	// share one data subtuple, so they are fetched together).
	Atoms bool
	// Subs holds the required subtables, keyed by the attribute index
	// of the table-valued attribute. A missing key means the subtable
	// is not read at all: its members appear as an empty table.
	Subs map[int]*PathSet
}

// AllPaths returns a PathSet requesting the complete object — the
// materialize-everything read.
func AllPaths() *PathSet { return &PathSet{All: true} }

// allSet is the shared descent node used under an All parent.
var allSet = &PathSet{All: true}

// Descend returns the sub-PathSet for the table-valued attribute at
// index attr, creating it if absent. The new node starts as
// membership-only.
func (ps *PathSet) Descend(attr int) *PathSet {
	if ps.All {
		return allSet
	}
	if ps.Subs == nil {
		ps.Subs = make(map[int]*PathSet)
	}
	s := ps.Subs[attr]
	if s == nil {
		s = &PathSet{}
		ps.Subs[attr] = s
	}
	return s
}

// MarkAtoms requests this level's atomic attribute values.
func (ps *PathSet) MarkAtoms() {
	if !ps.All {
		ps.Atoms = true
	}
}

// MarkAll requests the complete subtree under this node.
func (ps *PathSet) MarkAll() {
	ps.All = true
	ps.Atoms = false
	ps.Subs = nil
}

// Describe renders the set against a schema for EXPLAIN output, e.g.
// "{atoms, PROJECTS: {MEMBERS: {atoms}}}"; "*" is the full object and
// "{members}" a membership-only level.
func (ps *PathSet) Describe(tt *model.TableType) string {
	if ps == nil {
		return "{}"
	}
	if ps.All {
		return "*"
	}
	var parts []string
	if ps.Atoms {
		parts = append(parts, "atoms")
	}
	for _, ti := range tt.TableIndexes() {
		sub, ok := ps.Subs[ti]
		if !ok {
			continue
		}
		parts = append(parts, tt.Attrs[ti].Name+": "+sub.Describe(tt.Attrs[ti].Type.Table))
	}
	if len(parts) == 0 {
		return "{members}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// --- lazy object handle ------------------------------------------------

// lazyNode caches the decoded state of one (sub)object level: its
// handle, its data subtuple once fetched, and its member nodes per
// subtable group once the subtable MD has been decoded.
type lazyNode struct {
	h       levelHandle
	atoms   []model.Value       // decoded data subtuple; nil until fetched
	members map[int][]*lazyNode // group index -> member nodes; nil until fetched
}

// Lazy is a lazy handle onto one stored complex object: opening it
// reads only the root MD subtuple; MD subtuples of subtables are
// decoded on demand and data subtuples are fetched only for the paths
// a Fetch requests. Decoded structure and data are cached, so staged
// fetches (predicate paths first, projection paths for surviving
// objects) never re-decode a subtuple. A Lazy holds no buffer pages
// between calls — every subtuple access pins and unpins inside the
// call — so an abandoned handle leaks nothing.
type Lazy struct {
	m    *Manager
	o    *objCtx
	tt   *model.TableType
	root *lazyNode
}

// OpenLazy opens a lazy handle on the object, reading only the root
// MD subtuple (asof 0 means current state).
func (m *Manager) OpenLazy(tt *model.TableType, ref Ref, asof int64) (*Lazy, error) {
	o, body, err := m.loadCtx(ref, asof)
	if err != nil {
		return nil, err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return nil, err
	}
	return &Lazy{m: m, o: o, tt: tt, root: &lazyNode{h: h}}, nil
}

// Type returns the object's schema.
func (l *Lazy) Type() *model.TableType { return l.tt }

// Fetch materializes the parts of the object selected by ps into a
// tuple of the full schema shape. Unrequested atomic attributes read
// as null and unrequested subtables as empty tables; requested
// subtable levels carry their true membership. A nil ps fetches the
// whole object.
func (l *Lazy) Fetch(ps *PathSet) (model.Tuple, error) {
	if ps == nil {
		ps = allSet
	}
	return l.fetchLevel(l.root, l.tt, ps)
}

func (l *Lazy) fetchLevel(n *lazyNode, tt *model.TableType, ps *PathSet) (model.Tuple, error) {
	var atoms []model.Value
	if ps.All || ps.Atoms {
		if n.atoms == nil {
			a, err := l.o.readAtoms(n.h.d)
			if err != nil {
				return nil, err
			}
			n.atoms = a
		}
		atoms = n.atoms
	}
	tis := tt.TableIndexes()
	subs := make([]*model.Table, len(tis))
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		var sps *PathSet
		if ps.All {
			sps = allSet
		} else {
			sps = ps.Subs[ti]
		}
		if sps == nil {
			subs[gi] = &model.Table{Ordered: sub.Ordered}
			continue
		}
		ms, err := l.memberNodes(n, sub, gi)
		if err != nil {
			return nil, err
		}
		tbl := &model.Table{Ordered: sub.Ordered}
		for _, mn := range ms {
			var mt model.Tuple
			if sub.Flat() {
				if sps.All || sps.Atoms {
					if mn.atoms == nil {
						a, err := l.o.readAtoms(mn.h.d)
						if err != nil {
							return nil, err
						}
						mn.atoms = a
					}
					mt, err = assemble(sub, mn.atoms, nil)
				} else {
					mt, err = assemble(sub, nil, nil) // membership only: all nulls
				}
			} else {
				mt, err = l.fetchLevel(mn, sub, sps)
			}
			if err != nil {
				return nil, err
			}
			tbl.Append(mt)
		}
		subs[gi] = tbl
	}
	return assemble(tt, atoms, subs)
}

// memberNodes decodes (once) the member handles of subtable group gi
// under node n.
func (l *Lazy) memberNodes(n *lazyNode, sub *model.TableType, gi int) ([]*lazyNode, error) {
	if ms, ok := n.members[gi]; ok {
		return ms, nil
	}
	hs, err := l.m.memberHandles(l.o, sub, n.h, gi)
	if err != nil {
		return nil, err
	}
	ms := make([]*lazyNode, len(hs))
	for i := range hs {
		ms[i] = &lazyNode{h: hs[i]}
	}
	if n.members == nil {
		n.members = make(map[int][]*lazyNode)
	}
	n.members[gi] = ms
	return ms, nil
}

// ReadPruned materializes only the parts of the object selected by ps
// (nil ps, or ps.All, reads everything — equivalent to ReadAsOf).
// This is the path-pruned read the access layer uses for projection
// and predicate pushdown.
func (m *Manager) ReadPruned(tt *model.TableType, ref Ref, asof int64, ps *PathSet) (model.Tuple, error) {
	if ps == nil || ps.All {
		return m.ReadAsOf(tt, ref, asof)
	}
	l, err := m.OpenLazy(tt, ref, asof)
	if err != nil {
		return nil, err
	}
	return l.Fetch(ps)
}
