package object

import (
	"fmt"

	"repro/internal/model"
)

// SalvageResult is the outcome of a best-effort read of a partially
// corrupt complex object.
type SalvageResult struct {
	// Tuple is the materialized object with every unreadable part
	// replaced: lost atomic values read as null, lost subtable members
	// are omitted. Nil when the root MD subtuple itself is unreadable
	// (nothing salvageable).
	Tuple model.Tuple
	// Lost describes each part that could not be read, as a
	// human-readable path plus the error.
	Lost []string
	// Complete reports that nothing was lost (the object read fully).
	Complete bool
}

// Salvage materializes as much of a complex object as remains
// readable. Unlike Read, it does not stop at the first corrupt
// subtuple: broken data subtuples yield null atoms, broken subtable
// MDs yield empty (or truncated) subtables, and every loss is
// recorded. The error return is non-nil only for faults outside the
// object (e.g. the store itself failing); corruption inside the
// object never fails the call.
func (m *Manager) Salvage(tt *model.TableType, ref Ref) (*SalvageResult, error) {
	res := &SalvageResult{}
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		res.Lost = append(res.Lost, fmt.Sprintf("root MD subtuple %v: %v", ref, err))
		return res, nil
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		res.Lost = append(res.Lost, fmt.Sprintf("root node of %v: %v", ref, err))
		return res, nil
	}
	res.Tuple = m.salvageLevel(o, tt, h, "", res)
	res.Complete = len(res.Lost) == 0
	return res, nil
}

// salvageLevel is readLevelH with every read fault degraded to a
// recorded loss instead of an error.
func (m *Manager) salvageLevel(o *objCtx, tt *model.TableType, h levelHandle, path string, res *SalvageResult) model.Tuple {
	atoms, err := o.readAtoms(h.d)
	if err != nil {
		res.Lost = append(res.Lost, fmt.Sprintf("data subtuple at %q: %v", path, err))
		atoms = nil // all attributes read as null
	}
	want := len(tt.AtomicIndexes())
	if len(atoms) > want {
		res.Lost = append(res.Lost, fmt.Sprintf("data subtuple at %q: %d atoms, schema wants %d", path, len(atoms), want))
		atoms = atoms[:want]
	}
	for len(atoms) < want {
		atoms = append(atoms, model.Null{})
	}
	tis := tt.TableIndexes()
	subs := make([]*model.Table, len(tis))
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		subPath := path + "/" + tt.Attrs[ti].Name
		tbl := &model.Table{Ordered: sub.Ordered}
		subs[gi] = tbl
		hs, err := m.memberHandles(o, sub, h, gi)
		if err != nil {
			res.Lost = append(res.Lost, fmt.Sprintf("subtable MD at %q: %v", subPath, err))
			continue
		}
		for i, mh := range hs {
			memberPath := fmt.Sprintf("%s[%d]", subPath, i)
			if sub.Flat() {
				matoms, err := o.readAtoms(mh.d)
				if err != nil {
					res.Lost = append(res.Lost, fmt.Sprintf("member %s: %v", memberPath, err))
					continue
				}
				mt, err := assemble(sub, matoms, nil)
				if err != nil {
					res.Lost = append(res.Lost, fmt.Sprintf("member %s: %v", memberPath, err))
					continue
				}
				tbl.Append(mt)
				continue
			}
			tbl.Append(m.salvageLevel(o, sub, mh, memberPath, res))
		}
	}
	tup := make(model.Tuple, len(tt.Attrs))
	ai, si := 0, 0
	for i, a := range tt.Attrs {
		if a.Type.Kind == model.KindTable {
			tup[i] = subs[si]
			si++
		} else {
			tup[i] = atoms[ai]
			ai++
		}
	}
	return tup
}
