// Package object implements the AIM-II complex-object manager of
// §4.1 of the paper: every tuple of an NF² table is stored as a
// complex object consisting of
//
//   - data subtuples, which hold the "first level" atomic attribute
//     values of the object and of each of its subobjects, and carry no
//     structural information at all; and
//   - a Mini Directory (MD): a tree of MD subtuples holding all the
//     structural information (D pointers to data subtuples, C pointers
//     to other MD subtuples), whose layout corresponds exactly to the
//     hierarchical structure of the object.
//
// Three alternative Mini Directory layouts are implemented, exactly
// the storage structures of Fig 6:
//
//   - SS1: one MD subtuple per subtable AND per complex subobject;
//   - SS2: one MD subtuple per complex subobject only;
//   - SS3: one MD subtuple per subtable only (AIM-II's choice).
//
// Every complex object owns a local address space: a page list stored
// in the root MD subtuple. All D and C pointers are Mini TIDs whose
// page component indexes this page list, so they are valid only
// inside the object, are smaller than full TIDs, and survive moving
// the whole object at page level. Page-list gaps left by deletions
// are reused but never closed, keeping existing Mini TIDs stable.
//
// Flat (1NF) tables do not use this package: they have no Mini
// Directories (§4.1) and are stored directly through the subtuple
// store (see internal/flat).
package object

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/dberr"
	"repro/internal/page"
	"repro/internal/subtuple"
)

// Layout selects the Mini Directory storage structure.
type Layout uint8

// The three storage structures of Fig 6.
const (
	SS1 Layout = 1 // MD subtuples for subtables and complex subobjects
	SS2 Layout = 2 // MD subtuples for complex subobjects only
	SS3 Layout = 3 // MD subtuples for subtables only (AIM-II default)
)

// String returns the paper's name of the layout.
func (l Layout) String() string {
	switch l {
	case SS1:
		return "SS1"
	case SS2:
		return "SS2"
	case SS3:
		return "SS3"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// Ref identifies a complex object: the TID of its root MD subtuple.
type Ref = page.TID

// ErrBadPath reports navigation along a path that does not exist in
// the object.
var ErrBadPath = errors.New("object: no such path in object")

// Manager stores and retrieves complex objects in one subtuple store.
type Manager struct {
	st     *subtuple.Store
	layout Layout
}

// NewManager creates a complex-object manager using the given Mini
// Directory layout.
func NewManager(st *subtuple.Store, layout Layout) *Manager {
	if layout < SS1 || layout > SS3 {
		panic("object: unknown layout")
	}
	return &Manager{st: st, layout: layout}
}

// Store returns the underlying subtuple store.
func (m *Manager) Store() *subtuple.Store { return m.st }

// Layout returns the manager's Mini Directory layout.
func (m *Manager) Layout() Layout { return m.layout }

// --- object context: page list and local addressing -----------------

// estimated per-record page overhead (slot entry + record headers).
const recOverhead = 32

// objCtx carries the state needed to work inside one complex object's
// local address space: its root TID, its page list, and a free-space
// cache so bulk builds do not re-probe every page per insert. The
// page-list scan semantics follow §4.1: to place a new subtuple, the
// pages already owned by the object are tried first; only when none
// has room is a new page allocated and appended to the list (reusing
// a gap if one exists).
type objCtx struct {
	m     *Manager
	root  page.TID // zero until the root MD subtuple is stored
	pages []uint32 // local page number -> segment page number; 0 = gap
	dirty bool     // page list changed since load
	free  map[int]int
	asof  int64 // read-as-of timestamp; 0 = current state
	// removedOn records local pages that lost subtuples, so reap can
	// turn fully emptied pages into page-list gaps (§4.1: "when a page
	// number is removed from the page list, the gap ... is not closed").
	removedOn map[int]bool
}

func (m *Manager) newCtx() *objCtx {
	return &objCtx{m: m, free: make(map[int]int), removedOn: make(map[int]bool)}
}

// loadCtx reads the root MD subtuple and decodes the envelope.
func (m *Manager) loadCtx(ref Ref, asof int64) (*objCtx, []byte, error) {
	var raw []byte
	var err error
	if asof != 0 {
		var ok bool
		raw, ok, err = m.st.ReadAsOf(ref, asof)
		if err == nil && !ok {
			return nil, nil, subtuple.ErrNotFound
		}
	} else {
		raw, err = m.st.Read(ref)
	}
	if err != nil {
		return nil, nil, err
	}
	ctx := m.newCtx()
	ctx.root = ref
	ctx.asof = asof
	body, err := ctx.decodeEnvelope(raw)
	if err != nil {
		return nil, nil, err
	}
	return ctx, body, nil
}

// envelope: [layout byte][pageCount uvarint][pageNo uint32 ...][body]
func (o *objCtx) encodeEnvelope(body []byte) []byte {
	b := make([]byte, 0, 8+4*len(o.pages)+len(body))
	b = append(b, byte(o.m.layout))
	b = binary.AppendUvarint(b, uint64(len(o.pages)))
	for _, pg := range o.pages {
		b = binary.LittleEndian.AppendUint32(b, pg)
	}
	return append(b, body...)
}

func (o *objCtx) decodeEnvelope(raw []byte) ([]byte, error) {
	if len(raw) < 2 {
		return nil, dberr.Corruptf("object: corrupt root MD subtuple")
	}
	if Layout(raw[0]) != o.m.layout {
		return nil, dberr.Corruptf("object: stored layout %s, manager uses %s", Layout(raw[0]), o.m.layout)
	}
	p := raw[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return nil, dberr.Corruptf("object: corrupt page list length")
	}
	p = p[sz:]
	if n > uint64(len(p))/4 { // n*4 could overflow; divide instead
		return nil, dberr.Corruptf("object: corrupt page list")
	}
	o.pages = make([]uint32, n)
	for i := range o.pages {
		o.pages[i] = binary.LittleEndian.Uint32(p)
		p = p[4:]
	}
	return p, nil
}

// resolve translates a Mini TID into a segment TID via the page list,
// the "local page number i must be translated into a real page
// number" step of §4.1.
func (o *objCtx) resolve(mt page.MiniTID) (page.TID, error) {
	if mt.Nil() {
		return page.TID{}, dberr.Corruptf("object: resolve of nil Mini TID")
	}
	if int(mt.Page) >= len(o.pages) || o.pages[mt.Page] == 0 {
		return page.TID{}, dberr.Corruptf("object: Mini TID %v outside local address space", mt)
	}
	return page.TID{Page: o.pages[mt.Page], Slot: mt.Slot}, nil
}

// read fetches a subtuple through a Mini TID, honoring the context's
// as-of timestamp.
func (o *objCtx) read(mt page.MiniTID) ([]byte, error) {
	t, err := o.resolve(mt)
	if err != nil {
		return nil, err
	}
	if o.asof != 0 {
		data, ok, err := o.m.st.ReadAsOf(t, o.asof)
		if err != nil {
			return nil, o.classify(t, err)
		}
		if !ok {
			return nil, subtuple.ErrNotFound
		}
		return data, nil
	}
	data, err := o.m.st.Read(t)
	if err != nil {
		return nil, o.classify(t, err)
	}
	return data, nil
}

// classify marks read failures inside the object's local address
// space as corruption: the page list and the MD pointers promised a
// record at t, so any shape of failure there (unallocated page,
// missing record aside) means the object structure lies.
func (o *objCtx) classify(t page.TID, err error) error {
	if dberr.IsCorrupt(err) || errors.Is(err, subtuple.ErrNotFound) {
		return err
	}
	return dberr.Corruptf("object: broken pointer to %v: %v", t, err)
}

// place stores a new subtuple inside the object's local address
// space: scan the page list for a page with room, otherwise allocate
// a new page and add it to the list (filling a gap if possible).
func (o *objCtx) place(data []byte) (page.MiniTID, error) {
	need := len(data) + recOverhead
	for i, pg := range o.pages {
		if pg == 0 {
			continue
		}
		free, known := o.free[i]
		if !known {
			var err error
			free, err = o.m.st.FreeOnPage(pg)
			if err != nil {
				return page.NilMini, err
			}
			o.free[i] = free
		}
		if free < need {
			continue
		}
		t, err := o.m.st.InsertOnPage(pg, data)
		if err == nil {
			o.free[i] = free - need
			return page.MiniTID{Page: uint16(i), Slot: t.Slot}, nil
		}
		if errors.Is(err, page.ErrNoSpace) {
			o.free[i] = 0
			continue
		}
		return page.NilMini, err
	}
	pg, err := o.m.st.AllocatePage()
	if err != nil {
		return page.NilMini, err
	}
	idx := -1
	for i, p := range o.pages {
		if p == 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		o.pages = append(o.pages, pg)
		idx = len(o.pages) - 1
	} else {
		o.pages[idx] = pg
	}
	if idx > 0xFFFE {
		return page.NilMini, fmt.Errorf("object: local address space exceeds %d pages", 0xFFFF)
	}
	o.dirty = true
	o.free[idx] = page.Size - recOverhead
	t, err := o.m.st.InsertOnPage(pg, data)
	if err != nil {
		return page.NilMini, err
	}
	o.free[idx] -= need
	return page.MiniTID{Page: uint16(idx), Slot: t.Slot}, nil
}

// update rewrites a subtuple in place (the store forwards within the
// segment if it grew beyond its page; the Mini TID stays valid).
func (o *objCtx) update(mt page.MiniTID, data []byte) error {
	t, err := o.resolve(mt)
	if err != nil {
		return err
	}
	return o.m.st.Update(t, data)
}

// remove deletes a subtuple of the object and remembers the local
// page so reap can drop it from the page list if it emptied.
func (o *objCtx) remove(mt page.MiniTID) error {
	t, err := o.resolve(mt)
	if err != nil {
		return err
	}
	if err := o.m.st.Delete(t); err != nil {
		return err
	}
	o.removedOn[int(mt.Page)] = true
	delete(o.free, int(mt.Page))
	return nil
}

// reap turns fully emptied local pages into page-list gaps. The gap
// positions are kept (never compacted) so existing Mini TIDs stay
// valid; place() reuses gaps for future page allocations. The
// segment page itself is abandoned (no segment-level free list in
// this prototype). The page holding the root MD subtuple is never
// reaped while in use.
func (o *objCtx) reap() error {
	for idx := range o.removedOn {
		if idx >= len(o.pages) || o.pages[idx] == 0 {
			continue
		}
		if o.pages[idx] == o.root.Page {
			continue // root MD subtuple lives here
		}
		empty, err := o.m.st.PageEmpty(o.pages[idx])
		if err != nil {
			return err
		}
		if empty {
			o.pages[idx] = 0
			o.dirty = true
		}
	}
	o.removedOn = make(map[int]bool)
	return nil
}

// flushRoot rewrites the root MD subtuple with the current page list
// and body.
func (o *objCtx) flushRoot(body []byte) error {
	return o.m.st.Update(o.root, o.encodeEnvelope(body))
}

// --- byte reader for MD bodies ---------------------------------------

type reader struct {
	b   []byte
	err error
}

func (r *reader) mini() page.MiniTID {
	if r.err != nil {
		return page.NilMini
	}
	m, err := page.DecodeMiniTID(r.b)
	if err != nil {
		r.err = err
		return page.NilMini
	}
	r.b = r.b[page.EncodedMiniTIDLen:]
	return m
}

func (r *reader) count() int {
	if r.err != nil {
		return 0
	}
	n, sz := binary.Uvarint(r.b)
	if sz <= 0 {
		r.err = dberr.Corruptf("object: corrupt MD subtuple count")
		return 0
	}
	r.b = r.b[sz:]
	return int(n)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return dberr.Corruptf("object: %d trailing bytes in MD subtuple", len(r.b))
	}
	return nil
}
