package object

import (
	"errors"
	"testing"

	"repro/internal/buffer"
	"repro/internal/dberr"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

// FuzzObjectDecode plants arbitrary bytes as a complex object's root
// MD subtuple — the image bit rot leaves behind — and reads it back
// through every layout. The contract: Read never panics and fails
// only with classified corruption (or not-found); Salvage never
// fails at all, it records losses.
func FuzzObjectDecode(f *testing.F) {
	tt := testdata.DepartmentsType()

	// Seed with a real root record of each layout so mutations explore
	// the interesting decode paths, not just the envelope guard.
	for _, l := range []Layout{SS1, SS2, SS3} {
		pool := buffer.NewPool(64)
		pool.Register(1, segment.NewMemStore())
		st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
		m := NewManager(st, l)
		ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
		if err != nil {
			f.Fatal(err)
		}
		raw, err := st.Read(ref)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(SS1), 0x00})
	f.Add([]byte{byte(SS3), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, l := range []Layout{SS1, SS2, SS3} {
			pool := buffer.NewPool(64)
			pool.Register(1, segment.NewMemStore())
			st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
			m := NewManager(st, l)
			ref, err := st.Insert(raw)
			if err != nil {
				continue // does not fit a record; nothing to plant
			}
			if _, err := m.Read(tt, ref); err != nil &&
				!dberr.IsCorrupt(err) && !errors.Is(err, subtuple.ErrNotFound) {
				t.Fatalf("layout %s: Read failed unclassified: %v", l, err)
			}
			res, err := m.Salvage(tt, ref)
			if err != nil {
				t.Fatalf("layout %s: Salvage must degrade, not fail: %v", l, err)
			}
			if res == nil {
				t.Fatalf("layout %s: nil salvage result", l)
			}
		}
	})
}
