package object

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
)

// giOf maps an attribute index to its position among the level's
// table-valued attributes.
func giOf(tt *model.TableType, attr int) (int, error) {
	if attr < 0 || attr >= len(tt.Attrs) || tt.Attrs[attr].Type.Kind != model.KindTable {
		return 0, fmt.Errorf("%w: attr %d is not a subtable", ErrBadPath, attr)
	}
	gi := 0
	for _, ti := range tt.TableIndexes() {
		if ti == attr {
			return gi, nil
		}
		gi++
	}
	return 0, fmt.Errorf("%w: attr %d is not a subtable", ErrBadPath, attr)
}

// UpdateAtoms overwrites the atomic attribute values of the
// (sub)object addressed by steps. Only the data subtuple is touched;
// the Mini Directory is not changed at all — the separation of
// structure and data at work.
func (m *Manager) UpdateAtoms(tt *model.TableType, ref Ref, vals []model.Value, steps ...Step) error {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return err
	}
	lt, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return err
	}
	idx := lt.AtomicIndexes()
	if len(vals) != len(idx) {
		return fmt.Errorf("object: %d atomic values, level has %d atomic attributes", len(vals), len(idx))
	}
	for i, ai := range idx {
		if model.IsNull(vals[i]) {
			continue
		}
		if vals[i].Kind() != lt.Attrs[ai].Type.Kind {
			return fmt.Errorf("object: attribute %q requires %s, got %s", lt.Attrs[ai].Name, lt.Attrs[ai].Type.Kind, vals[i].Kind())
		}
	}
	payload, err := model.EncodeAtoms(vals)
	if err != nil {
		return err
	}
	return o.update(lh.d, payload)
}

// InsertMember inserts a new member tuple into the subtable attr of
// the (sub)object addressed by steps, at position pos (-1 appends; for
// ordered subtables the position defines the list order). Only the
// affected subtable's structural information is rewritten.
func (m *Manager) InsertMember(tt *model.TableType, ref Ref, steps []Step, attr, pos int, member model.Tuple) error {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return err
	}
	rootBody := body
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return err
	}
	lt, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return err
	}
	gi, err := giOf(lt, attr)
	if err != nil {
		return err
	}
	sub := lt.Attrs[attr].Type.Table
	if err := model.Conform(sub, member); err != nil {
		return err
	}

	switch m.layout {
	case SS1, SS2:
		// Build the member and obtain the single pointer recorded in
		// the parent structure.
		var ptr page.MiniTID
		if sub.Flat() {
			ptr, err = placeAtoms(o, sub, member)
		} else {
			var nodeBody []byte
			nodeBody, err = m.buildLevel(o, sub, member)
			if err == nil {
				ptr, err = o.place(nodeBody)
			}
		}
		if err != nil {
			return err
		}
		if m.layout == SS1 {
			// Splice the pointer into the subtable MD subtuple.
			raw, err := o.read(lh.subC[gi])
			if err != nil {
				return err
			}
			r := &reader{b: raw}
			n := r.count()
			ptrs := make([]page.MiniTID, n)
			for i := range ptrs {
				ptrs[i] = r.mini()
			}
			if r.err != nil {
				return r.err
			}
			ptrs, err = spliceIn(ptrs, pos, ptr)
			if err != nil {
				return err
			}
			if err := o.update(lh.subC[gi], encodePtrList(ptrs)); err != nil {
				return err
			}
		} else {
			// SS2: the group lives inline in the parent node body.
			g, err := spliceIn(lh.groups[gi], pos, ptr)
			if err != nil {
				return err
			}
			lh.groups[gi] = g
			nb := m.encodeNode(lh)
			if lh.isRoot {
				rootBody = nb
				o.dirty = true
			} else if err := o.update(lh.self, nb); err != nil {
				return err
			}
		}
	case SS3:
		// Build the member's embedded entry and splice it into the
		// subtable MD subtuple.
		var entry []byte
		if sub.Flat() {
			d, err := placeAtoms(o, sub, member)
			if err != nil {
				return err
			}
			entry = page.AppendMiniTID(nil, d)
		} else {
			entry, err = m.buildLevel(o, sub, member)
			if err != nil {
				return err
			}
		}
		raw, err := o.read(lh.subC[gi])
		if err != nil {
			return err
		}
		n, sz := binary.Uvarint(raw)
		if sz <= 0 {
			return dberr.Corruptf("object: corrupt subtable MD")
		}
		es := len(entry)
		bodyBytes := raw[sz:]
		if pos < 0 {
			pos = int(n)
		}
		if pos > int(n) {
			return fmt.Errorf("%w: position %d of %d members", ErrBadPath, pos, n)
		}
		nb := binary.AppendUvarint(nil, n+1)
		nb = append(nb, bodyBytes[:pos*es]...)
		nb = append(nb, entry...)
		nb = append(nb, bodyBytes[pos*es:]...)
		if err := o.update(lh.subC[gi], nb); err != nil {
			return err
		}
	}
	if o.dirty {
		return o.flushRoot(rootBody)
	}
	return nil
}

func spliceIn(ptrs []page.MiniTID, pos int, ptr page.MiniTID) ([]page.MiniTID, error) {
	if pos < 0 {
		pos = len(ptrs)
	}
	if pos > len(ptrs) {
		return nil, fmt.Errorf("%w: position %d of %d members", ErrBadPath, pos, len(ptrs))
	}
	out := make([]page.MiniTID, 0, len(ptrs)+1)
	out = append(out, ptrs[:pos]...)
	out = append(out, ptr)
	out = append(out, ptrs[pos:]...)
	return out, nil
}

func encodePtrList(ptrs []page.MiniTID) []byte {
	b := binary.AppendUvarint(nil, uint64(len(ptrs)))
	for _, p := range ptrs {
		b = page.AppendMiniTID(b, p)
	}
	return b
}

// DeleteMember removes the member at position pos of subtable attr of
// the (sub)object addressed by steps, freeing all its subtuples.
func (m *Manager) DeleteMember(tt *model.TableType, ref Ref, steps []Step, attr, pos int) error {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return err
	}
	rootBody := body
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return err
	}
	lt, lh, err := m.locate(o, tt, h, steps)
	if err != nil {
		return err
	}
	gi, err := giOf(lt, attr)
	if err != nil {
		return err
	}
	sub := lt.Attrs[attr].Type.Table
	hs, err := m.memberHandles(o, sub, lh, gi)
	if err != nil {
		return err
	}
	if pos < 0 || pos >= len(hs) {
		return fmt.Errorf("%w: position %d of %d members", ErrBadPath, pos, len(hs))
	}
	mh := hs[pos]
	// Free the member's subtuples.
	if sub.Flat() {
		if err := o.remove(mh.d); err != nil {
			return err
		}
	} else {
		if err := m.freeLevel(o, sub, mh); err != nil {
			return err
		}
		if (m.layout == SS1 || m.layout == SS2) && !mh.self.Nil() {
			if err := o.remove(mh.self); err != nil {
				return err
			}
		}
	}
	// Remove the member's entry from the parent structure.
	switch m.layout {
	case SS1:
		raw, err := o.read(lh.subC[gi])
		if err != nil {
			return err
		}
		r := &reader{b: raw}
		n := r.count()
		ptrs := make([]page.MiniTID, 0, n-1)
		for i := 0; i < n; i++ {
			p := r.mini()
			if i != pos {
				ptrs = append(ptrs, p)
			}
		}
		if r.err != nil {
			return r.err
		}
		if err := o.update(lh.subC[gi], encodePtrList(ptrs)); err != nil {
			return err
		}
	case SS2:
		g := lh.groups[gi]
		lh.groups[gi] = append(append([]page.MiniTID(nil), g[:pos]...), g[pos+1:]...)
		nb := m.encodeNode(lh)
		if lh.isRoot {
			rootBody = nb
			o.dirty = true
		} else if err := o.update(lh.self, nb); err != nil {
			return err
		}
	case SS3:
		raw, err := o.read(lh.subC[gi])
		if err != nil {
			return err
		}
		n, sz := binary.Uvarint(raw)
		if sz <= 0 {
			return dberr.Corruptf("object: corrupt subtable MD")
		}
		es := entrySize(sub)
		if sub.Flat() {
			es = page.EncodedMiniTIDLen
		}
		bodyBytes := raw[sz:]
		nb := binary.AppendUvarint(nil, n-1)
		nb = append(nb, bodyBytes[:pos*es]...)
		nb = append(nb, bodyBytes[(pos+1)*es:]...)
		if err := o.update(lh.subC[gi], nb); err != nil {
			return err
		}
	}
	if err := o.reap(); err != nil {
		return err
	}
	if o.dirty {
		return o.flushRoot(rootBody)
	}
	return nil
}

// freeLevel deletes all subtuples reachable from the handle (data
// subtuples, subtable MDs and member nodes), excluding the node
// record of the handle itself.
func (m *Manager) freeLevel(o *objCtx, tt *model.TableType, h levelHandle) error {
	for gi, ti := range tt.TableIndexes() {
		sub := tt.Attrs[ti].Type.Table
		hs, err := m.memberHandles(o, sub, h, gi)
		if err != nil {
			return err
		}
		for _, mh := range hs {
			if sub.Flat() {
				if err := o.remove(mh.d); err != nil {
					return err
				}
				continue
			}
			if err := m.freeLevel(o, sub, mh); err != nil {
				return err
			}
			if (m.layout == SS1 || m.layout == SS2) && !mh.self.Nil() {
				if err := o.remove(mh.self); err != nil {
					return err
				}
			}
		}
		if m.layout == SS1 || m.layout == SS3 {
			if err := o.remove(h.subC[gi]); err != nil {
				return err
			}
		}
	}
	return o.remove(h.d)
}

// Delete removes the whole complex object: every data and MD subtuple
// including the root. In a versioned store the subtuples are
// tombstoned and the object remains readable with ReadAsOf.
func (m *Manager) Delete(tt *model.TableType, ref Ref) error {
	o, body, err := m.loadCtx(ref, 0)
	if err != nil {
		return err
	}
	h, err := m.rootHandle(tt, body)
	if err != nil {
		return err
	}
	if err := m.freeLevel(o, tt, h); err != nil {
		return err
	}
	return m.st.Delete(ref)
}
