package model

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dberr"
)

// EncodeAtoms serializes a list of atomic values into the byte payload
// of a data subtuple. The format is self-describing: a uvarint count
// followed by, per value, one kind tag byte (0 for null) and a
// kind-dependent payload. Ints and Times use zigzag varints, Floats 8
// little-endian bytes, Strings a uvarint length prefix.
func EncodeAtoms(vals []Value) ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(vals))
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for i, v := range vals {
		if IsNull(v) {
			buf = append(buf, 0)
			continue
		}
		switch x := v.(type) {
		case Int:
			buf = append(buf, byte(KindInt))
			buf = binary.AppendVarint(buf, int64(x))
		case Float:
			buf = append(buf, byte(KindFloat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(x)))
		case Str:
			buf = append(buf, byte(KindString))
			buf = binary.AppendUvarint(buf, uint64(len(x)))
			buf = append(buf, x...)
		case Bool:
			buf = append(buf, byte(KindBool))
			if x {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case Time:
			buf = append(buf, byte(KindTime))
			buf = binary.AppendVarint(buf, int64(x))
		default:
			return nil, fmt.Errorf("model: cannot encode value %d of kind %s as atom", i, v.Kind())
		}
	}
	return buf, nil
}

// DecodeAtoms parses a data-subtuple payload produced by EncodeAtoms.
func DecodeAtoms(data []byte) ([]Value, error) {
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, dberr.Corruptf("model: corrupt atom payload: bad count")
	}
	if n > uint64(len(data)) {
		return nil, dberr.Corruptf("model: corrupt atom payload: count %d exceeds payload", n)
	}
	vals := make([]Value, 0, n)
	p := data[off:]
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return nil, dberr.Corruptf("model: corrupt atom payload: truncated at value %d", i)
		}
		tag := Kind(p[0])
		p = p[1:]
		switch tag {
		case KindInvalid:
			vals = append(vals, Null{})
		case KindInt, KindTime:
			x, m := binary.Varint(p)
			if m <= 0 {
				return nil, dberr.Corruptf("model: corrupt atom payload: bad varint at value %d", i)
			}
			p = p[m:]
			if tag == KindInt {
				vals = append(vals, Int(x))
			} else {
				vals = append(vals, Time(x))
			}
		case KindFloat:
			if len(p) < 8 {
				return nil, dberr.Corruptf("model: corrupt atom payload: short float at value %d", i)
			}
			vals = append(vals, Float(math.Float64frombits(binary.LittleEndian.Uint64(p))))
			p = p[8:]
		case KindString:
			l, m := binary.Uvarint(p)
			if m <= 0 || uint64(len(p)-m) < l {
				return nil, dberr.Corruptf("model: corrupt atom payload: bad string at value %d", i)
			}
			vals = append(vals, Str(p[m:uint64(m)+l]))
			p = p[uint64(m)+l:]
		case KindBool:
			if len(p) < 1 {
				return nil, dberr.Corruptf("model: corrupt atom payload: short bool at value %d", i)
			}
			vals = append(vals, Bool(p[0] != 0))
			p = p[1:]
		default:
			return nil, dberr.Corruptf("model: corrupt atom payload: unknown kind tag %d at value %d", tag, i)
		}
	}
	if len(p) != 0 {
		return nil, dberr.Corruptf("model: corrupt atom payload: %d trailing bytes", len(p))
	}
	return vals, nil
}

// EncodeKeyValue serializes a single atomic value into an
// order-preserving byte string suitable as a B-tree key: for every
// pair of values of the same kind, bytes.Compare of the encodings
// agrees with Compare. Nulls sort first; Int and Float share one
// numeric encoding so cross-kind numeric comparisons work.
func EncodeKeyValue(v Value) ([]byte, error) {
	if IsNull(v) {
		return []byte{0}, nil
	}
	switch x := v.(type) {
	case Int:
		return appendOrderedFloat(nil, float64(x)), nil
	case Float:
		return appendOrderedFloat(nil, float64(x)), nil
	case Time:
		b := []byte{2}
		return binary.BigEndian.AppendUint64(b, uint64(int64(x))^(1<<63)), nil
	case Bool:
		if x {
			return []byte{3, 1}, nil
		}
		return []byte{3, 0}, nil
	case Str:
		return append([]byte{4}, x...), nil
	}
	return nil, fmt.Errorf("model: cannot encode %s as key", v.Kind())
}

// appendOrderedFloat encodes a float64 so that lexicographic byte
// order matches numeric order (standard sign-flip trick).
func appendOrderedFloat(b []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	b = append(b, 1)
	return binary.BigEndian.AppendUint64(b, bits)
}
