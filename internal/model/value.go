package model

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Value is an attribute value in the extended NF² data model: either
// an atomic value (Int, Float, String, Bool, Time, Null) or a Table.
type Value interface {
	// Kind returns the kind of the value. Null values report the kind
	// KindInvalid and must be tested with IsNull.
	Kind() Kind
	// String renders the value for display.
	String() string
}

// Int is an atomic integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Float is an atomic floating-point value.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

func (v Float) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// String_ would stutter; the atomic string value is called Str.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

func (v Str) String() string { return string(v) }

// Bool is an atomic boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

func (v Bool) String() string {
	if v {
		return "TRUE"
	}
	return "FALSE"
}

// Time is an atomic instant, stored with nanosecond precision in UTC.
type Time int64

// Kind implements Value.
func (Time) Kind() Kind { return KindTime }

func (v Time) String() string { return v.Time().Format(time.RFC3339Nano) }

// Time converts the value to a time.Time in UTC.
func (v Time) Time() time.Time { return time.Unix(0, int64(v)).UTC() }

// TimeOf converts a time.Time to a Time value.
func TimeOf(t time.Time) Time { return Time(t.UnixNano()) }

// Null is the atomic null value. It is a member of every atomic
// domain; table-valued attributes use an empty Table instead.
type Null struct{}

// Kind implements Value.
func (Null) Kind() Kind { return KindInvalid }

func (Null) String() string { return "NULL" }

// IsNull reports whether v is the null value (or a nil Value).
func IsNull(v Value) bool {
	if v == nil {
		return true
	}
	_, ok := v.(Null)
	return ok
}

// Tuple is one tuple (object or subobject) of a table: its attribute
// values in schema order. Components may be atomic values or *Table
// values for table-valued attributes.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	cp := make(Tuple, len(t))
	for i, v := range t {
		if tbl, ok := v.(*Table); ok {
			cp[i] = tbl.Clone()
		} else {
			cp[i] = v
		}
	}
	return cp
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		if v == nil {
			b.WriteString("NULL")
		} else if s, ok := v.(Str); ok {
			b.WriteString(strconv.Quote(string(s)))
		} else {
			b.WriteString(v.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Table is a table value: a collection of tuples that is either
// ordered (a list, tuple order significant) or unordered (a relation,
// tuple order irrelevant for equality).
type Table struct {
	Ordered bool
	Tuples  []Tuple
}

// NewRelation returns an unordered table value holding the given
// tuples.
func NewRelation(tuples ...Tuple) *Table { return &Table{Ordered: false, Tuples: tuples} }

// NewList returns an ordered table value holding the given tuples.
func NewList(tuples ...Tuple) *Table { return &Table{Ordered: true, Tuples: tuples} }

// Kind implements Value.
func (*Table) Kind() Kind { return KindTable }

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.Tuples) }

// Append adds tuples at the end of the table.
func (t *Table) Append(tuples ...Tuple) { t.Tuples = append(t.Tuples, tuples...) }

// Clone returns a deep copy of the table value.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	cp := &Table{Ordered: t.Ordered, Tuples: make([]Tuple, len(t.Tuples))}
	for i, tup := range t.Tuples {
		cp.Tuples[i] = tup.Clone()
	}
	return cp
}

// String renders the table with { } for relations and < > for lists,
// matching the notation of the paper's figures.
func (t *Table) String() string {
	open, close := "{", "}"
	if t.Ordered {
		open, close = "<", ">"
	}
	var b strings.Builder
	b.WriteString(open)
	for i, tup := range t.Tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tup.String())
	}
	b.WriteString(close)
	return b.String()
}

// Conform checks that the tuple matches the table type: correct arity,
// each component of the declared kind (or Null for atomic attributes),
// and subtables conforming recursively, including their Ordered flag.
func Conform(tt *TableType, tup Tuple) error {
	if len(tup) != len(tt.Attrs) {
		return fmt.Errorf("model: tuple has %d values, type %s has %d attributes", len(tup), tt, len(tt.Attrs))
	}
	for i, a := range tt.Attrs {
		v := tup[i]
		if a.Type.Kind == KindTable {
			tbl, ok := v.(*Table)
			if !ok || tbl == nil {
				return fmt.Errorf("model: attribute %q requires a table value, got %v", a.Name, v)
			}
			if tbl.Ordered != a.Type.Table.Ordered {
				return fmt.Errorf("model: attribute %q ordering mismatch (want ordered=%v)", a.Name, a.Type.Table.Ordered)
			}
			for j, sub := range tbl.Tuples {
				if err := Conform(a.Type.Table, sub); err != nil {
					return fmt.Errorf("model: attribute %q tuple %d: %w", a.Name, j, err)
				}
			}
			continue
		}
		if IsNull(v) {
			continue
		}
		if v.Kind() != a.Type.Kind {
			return fmt.Errorf("model: attribute %q requires %s, got %s value %v", a.Name, a.Type.Kind, v.Kind(), v)
		}
	}
	return nil
}

// Atoms extracts the atomic attribute values of the tuple, in
// declaration order. These are exactly the values stored in the
// tuple's data subtuple (§4.1).
func Atoms(tt *TableType, tup Tuple) []Value {
	idx := tt.AtomicIndexes()
	out := make([]Value, len(idx))
	for i, j := range idx {
		out[i] = tup[j]
	}
	return out
}

// Subtables extracts the table-valued attribute values of the tuple,
// in declaration order, paired with their attribute definitions.
func Subtables(tt *TableType, tup Tuple) []*Table {
	idx := tt.TableIndexes()
	out := make([]*Table, len(idx))
	for i, j := range idx {
		out[i], _ = tup[j].(*Table)
	}
	return out
}
