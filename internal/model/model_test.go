package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func deptType() *TableType {
	return MustTableType(false,
		Attr{Name: "DNO", Type: AtomicType(KindInt)},
		Attr{Name: "PROJECTS", Type: TableOf(false,
			Attr{Name: "PNO", Type: AtomicType(KindInt)},
			Attr{Name: "MEMBERS", Type: TableOf(false,
				Attr{Name: "EMPNO", Type: AtomicType(KindInt)})},
		)},
		Attr{Name: "BUDGET", Type: AtomicType(KindInt)},
	)
}

func TestTableTypeBasics(t *testing.T) {
	tt := deptType()
	if tt.Flat() {
		t.Error("nested type reported flat")
	}
	if d := tt.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	if got := tt.AtomicIndexes(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("AtomicIndexes = %v", got)
	}
	if got := tt.TableIndexes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("TableIndexes = %v", got)
	}
	if i := tt.AttrIndex("BUDGET"); i != 2 {
		t.Errorf("AttrIndex(BUDGET) = %d", i)
	}
	if i := tt.AttrIndex("NOPE"); i != -1 {
		t.Errorf("AttrIndex(NOPE) = %d", i)
	}
	if !tt.Equal(tt.Clone()) {
		t.Error("Clone not Equal")
	}
}

func TestTableTypeValidate(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
	}{
		{"duplicate", []Attr{{Name: "A", Type: AtomicType(KindInt)}, {Name: "A", Type: AtomicType(KindInt)}}},
		{"empty name", []Attr{{Name: "", Type: AtomicType(KindInt)}}},
		{"invalid type", []Attr{{Name: "A", Type: Type{}}}},
		{"nil subtable", []Attr{{Name: "A", Type: Type{Kind: KindTable}}}},
		{"nested dup", []Attr{{Name: "A", Type: TableOf(false,
			Attr{Name: "X", Type: AtomicType(KindInt)}, Attr{Name: "X", Type: AtomicType(KindInt)})}}},
	}
	for _, c := range cases {
		if _, err := NewTableType(false, c.attrs...); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestConform(t *testing.T) {
	tt := deptType()
	ok := Tuple{Int(1), NewRelation(Tuple{Int(2), NewRelation(Tuple{Int(3)})}), Int(4)}
	if err := Conform(tt, ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	bad := []Tuple{
		{Int(1)},                                     // arity
		{Int(1), NewRelation(), Str("x")},            // wrong atomic kind
		{Int(1), NewList(), Int(4)},                  // ordering mismatch
		{Int(1), Str("no table"), Int(4)},            // not a table
		{Int(1), NewRelation(Tuple{Int(2)}), Int(4)}, // inner arity
	}
	for i, tup := range bad {
		if err := Conform(tt, tup); err == nil {
			t.Errorf("bad tuple %d accepted", i)
		}
	}
	// Null is allowed for atomic attributes.
	withNull := Tuple{Null{}, NewRelation(), Int(4)}
	if err := Conform(tt, withNull); err != nil {
		t.Errorf("null rejected: %v", err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Str("b"), Str("a"), 1},
		{Float(1.5), Float(1.5), 0},
		{Int(2), Float(2.5), -1}, // numeric promotion
		{Float(3), Int(2), 1},
		{Bool(false), Bool(true), -1},
		{Null{}, Int(0), -1},
		{Int(0), Null{}, 1},
		{Null{}, Null{}, 0},
		{TimeOf(time.Unix(1, 0)), TimeOf(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(Str("x"), Int(1)); err == nil {
		t.Error("cross-kind compare succeeded")
	}
	if _, err := Compare(NewRelation(), NewRelation()); err == nil {
		t.Error("table compare succeeded")
	}
}

func TestTableEqualBagSemantics(t *testing.T) {
	a := NewRelation(Tuple{Int(1)}, Tuple{Int(2)})
	b := NewRelation(Tuple{Int(2)}, Tuple{Int(1)})
	if !TableEqual(a, b) {
		t.Error("unordered tables with same bag not equal")
	}
	al := NewList(Tuple{Int(1)}, Tuple{Int(2)})
	bl := NewList(Tuple{Int(2)}, Tuple{Int(1)})
	if TableEqual(al, bl) {
		t.Error("ordered tables with different order equal")
	}
	dup := NewRelation(Tuple{Int(1)}, Tuple{Int(1)})
	single := NewRelation(Tuple{Int(1)}, Tuple{Int(2)})
	if TableEqual(dup, single) {
		t.Error("different bags equal")
	}
}

func TestAtomsCodecRoundTrip(t *testing.T) {
	vals := []Value{Int(-42), Str("héllo"), Float(3.25), Bool(true), Null{}, TimeOf(time.Unix(123, 456))}
	enc, err := EncodeAtoms(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAtoms(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !AtomEqual(got[i], vals[i]) {
			t.Errorf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestAtomsCodecCorrupt(t *testing.T) {
	vals := []Value{Int(1), Str("abc")}
	enc, _ := EncodeAtoms(vals)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeAtoms(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeAtoms(append(enc, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// Property: EncodeAtoms/DecodeAtoms round-trips arbitrary int/string
// mixes.
func TestAtomsCodecQuick(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		var vals []Value
		for _, i := range ints {
			vals = append(vals, Int(i))
		}
		for _, s := range strs {
			vals = append(vals, Str(s))
		}
		enc, err := EncodeAtoms(vals)
		if err != nil {
			return false
		}
		got, err := DecodeAtoms(enc)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if !AtomEqual(got[i], vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EncodeKeyValue preserves ordering for ints.
func TestKeyEncodingOrderQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ka, _ := EncodeKeyValue(Int(a))
		kb, _ := EncodeKeyValue(Int(b))
		cmp, _ := Compare(Int(a), Int(b))
		return bytes.Compare(ka, kb) == cmp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderFloatInt(t *testing.T) {
	pairs := []struct{ a, b Value }{
		{Int(1), Float(1.5)},
		{Float(-2.5), Int(-2)},
		{Int(0), Float(0)},
		{Float(math.Inf(-1)), Int(math.MinInt64)},
		{Null{}, Int(math.MinInt64)},
		{Str("a"), Str("ab")},
		{Bool(false), Bool(true)},
	}
	for _, p := range pairs {
		ka, err := EncodeKeyValue(p.a)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := EncodeKeyValue(p.b)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(p.a, p.b)
		if err != nil {
			// Cross-class comparisons (Null vs Int etc.) order by tag.
			cmp = bytes.Compare(ka[:1], kb[:1])
		}
		if bytes.Compare(ka, kb) != cmp {
			t.Errorf("key order of %v vs %v diverges from Compare", p.a, p.b)
		}
	}
}

func TestFormatTable(t *testing.T) {
	tt := deptType()
	tbl := NewRelation(
		Tuple{Int(314), NewRelation(
			Tuple{Int(17), NewRelation(Tuple{Int(39582)}, Tuple{Int(56019)})},
			Tuple{Int(23), NewRelation(Tuple{Int(58912)})},
		), Int(320000)},
	)
	out := FormatTable("DEPARTMENTS", tt, tbl)
	for _, want := range []string{"{ DEPARTMENTS }", "DNO", "{ PROJECTS }", "PNO", "{ MEMBERS }", "EMPNO", "314", "17", "39582", "56019", "23", "58912", "320000"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Members of project 17 must appear before project 23's.
	if strings.Index(out, "56019") > strings.Index(out, "58912") {
		t.Errorf("nested rows out of order:\n%s", out)
	}
}

func TestTupleCloneDeep(t *testing.T) {
	orig := Tuple{Int(1), NewRelation(Tuple{Int(2)})}
	cp := orig.Clone()
	cp[1].(*Table).Tuples[0][0] = Int(99)
	if orig[1].(*Table).Tuples[0][0].(Int) != 2 {
		t.Error("Clone shares nested state")
	}
}

func TestValueStrings(t *testing.T) {
	if NewList(Tuple{Str("a")}).String() != `<("a")>` {
		t.Errorf("list rendering = %s", NewList(Tuple{Str("a")}).String())
	}
	if NewRelation().String() != "{}" {
		t.Errorf("empty relation = %s", NewRelation().String())
	}
	if Bool(true).String() != "TRUE" || (Null{}).String() != "NULL" {
		t.Error("atomic rendering wrong")
	}
}
