// Package model defines the extended NF² (Non First Normal Form) data
// model of the AIM-II prototype: atomic types, tuples, and tables whose
// attribute values may themselves be tables — either unordered
// (relations) or ordered (lists).
//
// Terminology follows the paper (Dadam et al., SIGMOD 1986, §2):
//
//   - "table" generalizes "relation" (unordered table) and "list"
//     (ordered table);
//   - a table in first normal form (all attributes atomic) is a "flat"
//     or "1NF" table;
//   - a tuple of an NF² table is a "complex object"; tuples of its
//     subtables are "subobjects", which are again complex or flat.
package model

import "fmt"

// Kind enumerates the kinds of attribute types in the extended NF²
// data model. All kinds except KindTable are atomic.
type Kind uint8

// The atomic kinds plus KindTable for table-valued (non-atomic)
// attributes.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime // an instant, stored as nanoseconds since the Unix epoch (UTC)
	KindTable
)

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindTime:
		return "TIME"
	case KindTable:
		return "TABLE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Atomic reports whether the kind is atomic (not table-valued).
func (k Kind) Atomic() bool { return k != KindTable && k != KindInvalid }

// Type describes the type of an attribute. For atomic attributes only
// Kind is set; for table-valued attributes Kind is KindTable and Table
// describes the subtable's structure.
type Type struct {
	Kind  Kind
	Table *TableType // non-nil iff Kind == KindTable
}

// AtomicType returns the Type for an atomic kind. It panics if k is
// KindTable or KindInvalid; subtable types must be built with TableOf.
func AtomicType(k Kind) Type {
	if !k.Atomic() {
		panic("model: AtomicType called with non-atomic kind " + k.String())
	}
	return Type{Kind: k}
}

// TableOf returns a table-valued Type with the given tuple structure.
// If ordered is true the table is a list, otherwise a relation.
func TableOf(ordered bool, attrs ...Attr) Type {
	return Type{Kind: KindTable, Table: &TableType{Ordered: ordered, Attrs: attrs}}
}

// String returns the DDL spelling of the type.
func (t Type) String() string {
	if t.Kind != KindTable {
		return t.Kind.String()
	}
	return t.Table.String()
}

// Equal reports whether two types are structurally identical,
// including ordering of subtables and attribute names.
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind != KindTable {
		return true
	}
	return t.Table.Equal(u.Table)
}

// Attr is one attribute (column) of a table type: a name plus a type
// that is either atomic or again a table.
type Attr struct {
	Name string
	Type Type
}

// String returns the DDL spelling "NAME TYPE" of the attribute.
func (a Attr) String() string { return a.Name + " " + a.Type.String() }

// TableType describes the structure of a table: whether it is ordered
// (a list) or unordered (a relation), and its attributes in declaration
// order. Attribute names must be unique within one TableType; nested
// levels form independent name scopes.
type TableType struct {
	Ordered bool
	Attrs   []Attr
}

// NewTableType builds a TableType and validates attribute-name
// uniqueness.
func NewTableType(ordered bool, attrs ...Attr) (*TableType, error) {
	tt := &TableType{Ordered: ordered, Attrs: attrs}
	if err := tt.Validate(); err != nil {
		return nil, err
	}
	return tt, nil
}

// MustTableType is NewTableType that panics on error; intended for
// statically known schemas in tests and fixtures.
func MustTableType(ordered bool, attrs ...Attr) *TableType {
	tt, err := NewTableType(ordered, attrs...)
	if err != nil {
		panic(err)
	}
	return tt
}

// Validate checks the table type recursively: at least implicit
// structure sanity, unique attribute names per level, and non-nil
// subtable types.
func (tt *TableType) Validate() error {
	seen := make(map[string]bool, len(tt.Attrs))
	for i, a := range tt.Attrs {
		if a.Name == "" {
			return fmt.Errorf("model: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("model: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Type.Kind {
		case KindInvalid:
			return fmt.Errorf("model: attribute %q has invalid type", a.Name)
		case KindTable:
			if a.Type.Table == nil {
				return fmt.Errorf("model: table-valued attribute %q has nil table type", a.Name)
			}
			if err := a.Type.Table.Validate(); err != nil {
				return fmt.Errorf("model: in subtable %q: %w", a.Name, err)
			}
		}
	}
	return nil
}

// AttrIndex returns the position of the named attribute, or -1.
func (tt *TableType) AttrIndex(name string) int {
	for i, a := range tt.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Attr returns the named attribute and whether it exists.
func (tt *TableType) Attr(name string) (Attr, bool) {
	if i := tt.AttrIndex(name); i >= 0 {
		return tt.Attrs[i], true
	}
	return Attr{}, false
}

// AtomicIndexes returns the positions of the atomic attributes, in
// declaration order. These are the values stored together in one data
// subtuple ("first level atomic attribute values", §4.1).
func (tt *TableType) AtomicIndexes() []int {
	var idx []int
	for i, a := range tt.Attrs {
		if a.Type.Kind != KindTable {
			idx = append(idx, i)
		}
	}
	return idx
}

// TableIndexes returns the positions of the table-valued attributes,
// in declaration order. These correspond to the subtables of a complex
// (sub)object and determine the "C" pointer groups of MD subtuples.
func (tt *TableType) TableIndexes() []int {
	var idx []int
	for i, a := range tt.Attrs {
		if a.Type.Kind == KindTable {
			idx = append(idx, i)
		}
	}
	return idx
}

// Flat reports whether the table type is in first normal form, i.e.
// all attributes are atomic. Flat tables are stored without Mini
// Directories (§4.1).
func (tt *TableType) Flat() bool {
	for _, a := range tt.Attrs {
		if a.Type.Kind == KindTable {
			return false
		}
	}
	return true
}

// Depth returns the nesting depth: 1 for a flat table, 1 + max depth
// of subtables otherwise.
func (tt *TableType) Depth() int {
	d := 1
	for _, a := range tt.Attrs {
		if a.Type.Kind == KindTable {
			if sub := a.Type.Table.Depth() + 1; sub > d {
				d = sub
			}
		}
	}
	return d
}

// Equal reports deep structural equality.
func (tt *TableType) Equal(other *TableType) bool {
	if tt == nil || other == nil {
		return tt == other
	}
	if tt.Ordered != other.Ordered || len(tt.Attrs) != len(other.Attrs) {
		return false
	}
	for i := range tt.Attrs {
		if tt.Attrs[i].Name != other.Attrs[i].Name || !tt.Attrs[i].Type.Equal(other.Attrs[i].Type) {
			return false
		}
	}
	return true
}

// String renders the table type in DDL-like form. Unordered tables
// (relations) use curly brackets, ordered tables (lists) use angle
// brackets, matching the paper's figures.
func (tt *TableType) String() string {
	open, close := "{", "}"
	if tt.Ordered {
		open, close = "<", ">"
	}
	s := open + " "
	for i, a := range tt.Attrs {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + " " + close
}

// Clone returns a deep copy of the table type.
func (tt *TableType) Clone() *TableType {
	if tt == nil {
		return nil
	}
	cp := &TableType{Ordered: tt.Ordered, Attrs: make([]Attr, len(tt.Attrs))}
	for i, a := range tt.Attrs {
		na := Attr{Name: a.Name, Type: Type{Kind: a.Type.Kind}}
		if a.Type.Kind == KindTable {
			na.Type.Table = a.Type.Table.Clone()
		}
		cp.Attrs[i] = na
	}
	return cp
}
