package model

import (
	"fmt"
	"sort"
)

// Compare orders two atomic values of the same kind. It returns
// -1, 0, +1. Null sorts before every non-null value; two nulls are
// equal. Comparing values of different non-null kinds is an error
// (the language layer coerces Int/Float before calling Compare).
func Compare(a, b Value) (int, error) {
	an, bn := IsNull(a), IsNull(b)
	switch {
	case an && bn:
		return 0, nil
	case an:
		return -1, nil
	case bn:
		return 1, nil
	}
	if a.Kind() == KindTable || b.Kind() == KindTable {
		return 0, fmt.Errorf("model: cannot compare table values")
	}
	// Numeric cross-kind comparison: promote Int to Float.
	if a.Kind() != b.Kind() {
		af, aok := toFloat(a)
		bf, bok := toFloat(b)
		if aok && bok {
			return cmpOrdered(af, bf), nil
		}
		return 0, fmt.Errorf("model: cannot compare %s with %s", a.Kind(), b.Kind())
	}
	switch av := a.(type) {
	case Int:
		return cmpOrdered(av, b.(Int)), nil
	case Float:
		return cmpOrdered(av, b.(Float)), nil
	case Str:
		return cmpOrdered(av, b.(Str)), nil
	case Time:
		return cmpOrdered(av, b.(Time)), nil
	case Bool:
		bb := b.(Bool)
		switch {
		case av == bb:
			return 0, nil
		case !bool(av):
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("model: cannot compare values of kind %s", a.Kind())
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	}
	return 0, false
}

func cmpOrdered[T int64 | float64 | string | Int | Float | Str | Time](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// AtomEqual reports whether two atomic values are equal under Compare
// semantics (nulls equal each other only).
func AtomEqual(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// ValueEqual reports deep equality of two values. Tables compare with
// list semantics when ordered and bag semantics when unordered.
func ValueEqual(a, b Value) bool {
	at, aIsT := a.(*Table)
	bt, bIsT := b.(*Table)
	if aIsT != bIsT {
		return false
	}
	if aIsT {
		return TableEqual(at, bt)
	}
	return AtomEqual(a, b)
}

// TupleEqual reports deep equality of two tuples.
func TupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ValueEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TableEqual reports equality of two table values. Ordered tables
// (lists) must match tuple-for-tuple in order; unordered tables
// (relations) are compared as bags via canonical sorting.
func TableEqual(a, b *Table) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Ordered != b.Ordered || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	if a.Ordered {
		for i := range a.Tuples {
			if !TupleEqual(a.Tuples[i], b.Tuples[i]) {
				return false
			}
		}
		return true
	}
	ak := canonicalKeys(a)
	bk := canonicalKeys(b)
	for i := range ak {
		if ak[i] != bk[i] {
			return false
		}
	}
	return true
}

func canonicalKeys(t *Table) []string {
	keys := make([]string, len(t.Tuples))
	for i, tup := range t.Tuples {
		keys[i] = CanonicalTuple(tup)
	}
	sort.Strings(keys)
	return keys
}

// CanonicalTuple renders a tuple to a canonical string usable as a map
// key for bag comparison and duplicate elimination. Unordered
// subtables are canonicalized by sorting their members' canonical
// forms, so two relations that are equal as sets of (recursively
// canonicalized) tuples produce the same key.
func CanonicalTuple(tup Tuple) string {
	s := "("
	for i, v := range tup {
		if i > 0 {
			s += "|"
		}
		s += canonicalValue(v)
	}
	return s + ")"
}

func canonicalValue(v Value) string {
	if IsNull(v) {
		return "∅"
	}
	tbl, ok := v.(*Table)
	if !ok {
		return v.Kind().String() + ":" + v.String()
	}
	keys := make([]string, len(tbl.Tuples))
	for i, tup := range tbl.Tuples {
		keys[i] = CanonicalTuple(tup)
	}
	if !tbl.Ordered {
		sort.Strings(keys)
	}
	open, close := "{", "}"
	if tbl.Ordered {
		open, close = "<", ">"
	}
	s := open
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k
	}
	return s + close
}
