package model

import (
	"strings"
)

// FormatTable renders an NF² table in the layout the paper's Tables
// 1-8 use: a hierarchical header (subtable columns carry their own
// nested header, with relations marked { } and lists < >) above the
// tuples, nested cells laid out inside their parent column.
func FormatTable(name string, tt *TableType, tbl *Table) string {
	cols := measureCols(tt, tbl.Tuples)
	var b strings.Builder
	title := decorate(name, tt.Ordered)
	b.WriteString(title)
	b.WriteByte('\n')

	headerLines := headerDepth(tt)
	header := make([]string, headerLines)
	renderHeader(cols, header, 0)
	total := 0
	for i, c := range cols {
		if i > 0 {
			total += 3
		}
		total += c.width
	}
	rule := strings.Repeat("-", total)
	b.WriteString(rule)
	b.WriteByte('\n')
	for _, l := range header {
		b.WriteString(strings.TrimRight(l, " "))
		b.WriteByte('\n')
	}
	b.WriteString(rule)
	b.WriteByte('\n')
	for i, tup := range tbl.Tuples {
		if i > 0 {
			b.WriteString(strings.Repeat("·", total))
			b.WriteByte('\n')
		}
		for _, l := range renderTuple(cols, tup) {
			b.WriteString(strings.TrimRight(l, " "))
			b.WriteByte('\n')
		}
	}
	b.WriteString(rule)
	b.WriteByte('\n')
	return b.String()
}

type colSpec struct {
	attr     Attr
	width    int
	children []*colSpec
}

func decorate(name string, ordered bool) string {
	if ordered {
		return "< " + name + " >"
	}
	return "{ " + name + " }"
}

func displayVal(v Value) string {
	if v == nil {
		return "NULL"
	}
	return v.String()
}

// measureCols computes column widths bottom-up over all tuples.
func measureCols(tt *TableType, tuples []Tuple) []*colSpec {
	cols := make([]*colSpec, len(tt.Attrs))
	for i, a := range tt.Attrs {
		c := &colSpec{attr: a}
		if a.Type.Kind == KindTable {
			var sub []Tuple
			for _, tup := range tuples {
				if t, ok := tup[i].(*Table); ok && t != nil {
					sub = append(sub, t.Tuples...)
				}
			}
			c.children = measureCols(a.Type.Table, sub)
			w := 0
			for j, ch := range c.children {
				if j > 0 {
					w += 3
				}
				w += ch.width
			}
			name := decorate(a.Name, a.Type.Table.Ordered)
			if len(name) > w {
				w = len(name)
				// Widen the last child so children fill the parent.
				if n := len(c.children); n > 0 {
					deficit := w
					for j, ch := range c.children {
						if j > 0 {
							deficit -= 3
						}
						if j < n-1 {
							deficit -= ch.width
						}
					}
					c.children[n-1].width = deficit
				}
			}
			c.width = w
		} else {
			w := len(a.Name)
			for _, tup := range tuples {
				if l := len(displayVal(tup[i])); l > w {
					w = l
				}
			}
			c.width = w
		}
		cols[i] = c
	}
	return cols
}

func headerDepth(tt *TableType) int { return tt.Depth() }

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// renderHeader fills lines[level:] with this level's attribute names
// and, below table attributes, their nested headers.
func renderHeader(cols []*colSpec, lines []string, level int) {
	for i, c := range cols {
		if i > 0 {
			for l := range lines[level:] {
				lines[level+l] += "   "
			}
		}
		name := c.attr.Name
		if c.attr.Type.Kind == KindTable {
			name = decorate(c.attr.Name, c.attr.Type.Table.Ordered)
		}
		start := len(lines[level])
		lines[level] += pad(name, c.width)
		if c.attr.Type.Kind == KindTable {
			// Align nested header lines under this column.
			for l := level + 1; l < len(lines); l++ {
				if len(lines[l]) < start {
					lines[l] += strings.Repeat(" ", start-len(lines[l]))
				}
			}
			sub := make([]string, len(lines)-level-1)
			renderHeader(c.children, sub, 0)
			for l, s := range sub {
				lines[level+1+l] += pad(s, c.width)
			}
		} else {
			for l := level + 1; l < len(lines); l++ {
				if len(lines[l]) < start {
					lines[l] += strings.Repeat(" ", start-len(lines[l]))
				}
				lines[l] += pad("", c.width)
			}
		}
	}
}

// renderTuple renders one tuple as a block of lines; nested tables
// stack their subtuples vertically inside the parent column.
func renderTuple(cols []*colSpec, tup Tuple) []string {
	cells := make([][]string, len(cols))
	height := 1
	for i, c := range cols {
		var block []string
		if c.attr.Type.Kind == KindTable {
			tbl, _ := tup[i].(*Table)
			if tbl != nil {
				for _, sub := range tbl.Tuples {
					block = append(block, renderTuple(c.children, sub)...)
				}
			}
			if len(block) == 0 {
				block = []string{pad("", c.width)}
			}
		} else {
			block = []string{pad(displayVal(tup[i]), c.width)}
		}
		for l := range block {
			block[l] = pad(block[l], c.width)
		}
		cells[i] = block
		if len(block) > height {
			height = len(block)
		}
	}
	lines := make([]string, height)
	for l := 0; l < height; l++ {
		for i, block := range cells {
			if i > 0 {
				lines[l] += "   "
			}
			if l < len(block) {
				lines[l] += block[l]
			} else {
				lines[l] += pad("", cols[i].width)
			}
		}
	}
	return lines
}
