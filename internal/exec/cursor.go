package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/subtuple"
)

// pipeline is the pull-based form of the nested-loop binding of range
// variables ("associate them with a loop which runs over all tuples
// of the relation they are bound to", §3): an odometer over the FROM
// items, advancing the innermost iterator first and reopening inner
// iterators whenever an outer binding moves. Stored tables are read
// through Runtime.OpenScan/OpenRef with the block's derived path
// sets, so objects are fetched pruned; path sources iterate the
// (already fetched) subtable of their outer binding. No buffer pages
// are held between next calls and close releases every open cursor,
// so an abandoned pipeline leaks nothing.
type pipeline struct {
	e     *Executor
	ctx   context.Context
	items []sql.FromItem
	scope *env
	cands map[int]*Candidates
	paths map[int]*object.PathSet // per FROM item; nil map = full reads

	iters     []fromIter
	started   bool
	exhausted bool
}

// fromIter is the live state of one FROM item's iterator.
type fromIter struct {
	open bool
	asof int64

	// Stored-table source: either a scan cursor or a candidate list.
	t        *catalog.Table
	sc       ScanCursor
	refs     []page.TID
	refi     int
	candMode bool

	// Path source: the subtable of the current outer binding.
	tbl  *model.Table
	mt   *model.TableType
	prov *provenance
	pos  int
}

func newPipeline(e *Executor, ctx context.Context, items []sql.FromItem, scope *env, cands map[int]*Candidates, paths map[int]*object.PathSet) *pipeline {
	return &pipeline{
		e: e, ctx: ctx, items: items, scope: scope, cands: cands, paths: paths,
		iters: make([]fromIter, len(items)),
	}
}

// next advances to the next complete binding of all range variables
// (bound into the pipeline's scope). It returns false when the
// iteration space is exhausted. The context is checked once per call
// — once per tuple binding, as before.
func (p *pipeline) next() (bool, error) {
	if p.exhausted {
		return false, nil
	}
	if err := p.ctx.Err(); err != nil {
		p.close()
		return false, err
	}
	var ok bool
	var err error
	if !p.started {
		p.started = true
		ok, err = p.fill(0)
	} else {
		ok, err = p.step(len(p.iters) - 1)
	}
	if err != nil || !ok {
		p.close()
	}
	return ok, err
}

// fill opens iterators i..n-1 in order and binds the first member of
// each; an empty iterator at level j backtracks to advance level j-1.
func (p *pipeline) fill(i int) (bool, error) {
	for ; i < len(p.iters); i++ {
		if err := p.openIter(i); err != nil {
			return false, err
		}
		ok, err := p.advance(i)
		if err != nil {
			return false, err
		}
		if !ok {
			p.closeIter(i)
			return p.step(i - 1)
		}
	}
	return true, nil
}

// step advances iterator i; when it is exhausted it closes it and
// moves outward, then refills the inner iterators.
func (p *pipeline) step(i int) (bool, error) {
	for ; i >= 0; i-- {
		ok, err := p.advance(i)
		if err != nil {
			return false, err
		}
		if ok {
			return p.fill(i + 1)
		}
		p.closeIter(i)
	}
	return false, nil
}

// openIter initializes iterator i against the current outer bindings.
func (p *pipeline) openIter(i int) error {
	it := &p.iters[i]
	fi := p.items[i]
	*it = fromIter{open: true}
	if fi.AsOf != nil {
		lit, ok := fi.AsOf.(*sql.Literal)
		if !ok {
			return fmt.Errorf("exec: ASOF requires a literal timestamp")
		}
		asof, err := p.e.RT.ParseTime(lit.Val)
		if err != nil {
			return err
		}
		it.asof = asof
	}
	if fi.Source.Table != "" {
		t, ok := p.e.RT.Table(fi.Source.Table)
		if !ok {
			return fmt.Errorf("exec: unknown table %q", fi.Source.Table)
		}
		if it.asof != 0 && !t.Versioned {
			return fmt.Errorf("exec: table %q is not versioned; ASOF unavailable", t.Name)
		}
		it.t = t
		if c := p.cands[i]; c != nil {
			it.candMode = true
			it.refs = c.Refs
			return nil
		}
		sc, err := p.e.RT.OpenScan(t, it.asof, p.paths[i])
		if err != nil {
			return err
		}
		it.sc = sc
		return nil
	}
	tbl, mt, prov, err := p.e.evalFromPath(fi.Source.Path, p.scope)
	if err != nil {
		return err
	}
	it.tbl = tbl // nil table (null subtable) yields no bindings
	it.mt = mt
	it.prov = prov
	return nil
}

// advance binds the next member of iterator i into the scope.
func (p *pipeline) advance(i int) (bool, error) {
	it := &p.iters[i]
	fi := p.items[i]
	if it.t != nil {
		if it.candMode {
			for it.refi < len(it.refs) {
				ref := it.refs[it.refi]
				it.refi++
				tup, err := p.e.RT.OpenRef(it.t, ref, it.asof, p.paths[i])
				if err != nil {
					if errors.Is(err, subtuple.ErrNotFound) {
						continue // candidate vanished between planning and execution
					}
					return false, err
				}
				p.scope.bind(fi.Var, &binding{tt: it.t.Type, tup: tup, tbl: it.t, ref: ref, asof: it.asof})
				return true, nil
			}
			return false, nil
		}
		ref, tup, ok, err := it.sc.Next()
		if err != nil || !ok {
			return false, err
		}
		p.scope.bind(fi.Var, &binding{tt: it.t.Type, tup: tup, tbl: it.t, ref: ref, asof: it.asof})
		return true, nil
	}
	if it.tbl == nil || it.pos >= len(it.tbl.Tuples) {
		return false, nil
	}
	pos := it.pos
	it.pos++
	b := &binding{tt: it.mt, tup: it.tbl.Tuples[pos]}
	if it.prov != nil {
		b.tbl = it.prov.tbl
		b.ref = it.prov.ref
		b.steps = append(append([]object.Step(nil), it.prov.steps...), object.Step{Attr: it.prov.attr, Pos: pos})
		b.asof = it.prov.asof
	}
	p.scope.bind(fi.Var, b)
	return true, nil
}

func (p *pipeline) closeIter(i int) {
	it := &p.iters[i]
	if it.sc != nil {
		it.sc.Close()
	}
	*it = fromIter{}
}

// close releases every open iterator; idempotent.
func (p *pipeline) close() {
	for i := range p.iters {
		if p.iters[i].open {
			p.closeIter(i)
		}
	}
	p.exhausted = true
}

// Cursor streams the result tuples of one select block: bindings come
// from a pipeline, each is filtered by WHERE, shaped by the result
// clause, and deduplicated under DISTINCT. ORDER BY forces a
// materialize-and-sort barrier on the first Next (sorting cannot
// stream), after which the sorted rows replay one at a time.
type Cursor struct {
	e     *Executor
	ctx   context.Context
	sel   *sql.Select
	tt    *model.TableType
	scope *env
	pipe  *pipeline
	seen  map[string]bool // DISTINCT filter
	plan  []string        // access-path description per FROM item

	sorted  []model.Tuple // ORDER BY buffer after the sort barrier
	sorti   int
	drained bool
	closed  bool
}

// OpenQuery opens a streaming cursor over a top-level select.
func (e *Executor) OpenQuery(ctx context.Context, sel *sql.Select) (*Cursor, error) {
	return e.OpenQueryArgs(ctx, sel, nil)
}

// OpenQueryArgs is OpenQuery with bound `?` parameter values.
func (e *Executor) OpenQueryArgs(ctx context.Context, sel *sql.Select, params []model.Value) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.openCursor(ctx, sel, rootEnv(params), true)
}

// --- bind-phase entry points -------------------------------------------
//
// The prepare path splits openCursor's per-execution work into a bind
// phase (schema inference and path-set derivation, run once when a
// statement is prepared) and an execute phase (OpenPrepared, run per
// execution with the precomputed artifacts). Access-path choice — the
// third bind product — lives in package plan, which builds on these.

// InferSelect computes the result schema of a top-level select
// (bind-phase half of openCursor).
func (e *Executor) InferSelect(sel *sql.Select) (*model.TableType, error) {
	return e.inferSelect(sel, newTypeEnv(nil))
}

// DeriveSelectPaths computes the projection-pushdown path sets of a
// top-level select's stored-table FROM items (bind-phase half of
// openCursor). nil means full object reads — either FullPaths is set
// or derivation could not prove a narrow fetch.
func (e *Executor) DeriveSelectPaths(sel *sql.Select) map[int]*object.PathSet {
	if e.FullPaths {
		return nil
	}
	return e.derivePaths(sel, newPathScope(nil))
}

// OpenPrepared opens a streaming cursor over a top-level select whose
// bind products — result schema, path sets, candidate lists — were
// computed ahead of time. It performs no inference, no path
// derivation and no access-path planning; the plan-cache hit path runs
// through here.
func (e *Executor) OpenPrepared(ctx context.Context, sel *sql.Select, tt *model.TableType, paths map[int]*object.PathSet, cands map[int]*Candidates, params []model.Value) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scope := rootEnv(params)
	return &Cursor{
		e: e, ctx: ctx, sel: sel, tt: tt, scope: scope,
		pipe: newPipeline(e, ctx, sel.From, scope, cands, paths),
		seen: make(map[string]bool),
		plan: describePlan(e, sel, cands, paths),
	}, nil
}

// openCursor prepares a cursor for a select block in an outer
// environment: infer the result schema, derive the required path set
// per stored-table variable, choose access paths, and set up the
// binding pipeline. No data is read until the first Next.
func (e *Executor) openCursor(ctx context.Context, sel *sql.Select, outer *env, planning bool) (*Cursor, error) {
	resultType, err := e.inferSelect(sel, typeEnvFrom(outer))
	if err != nil {
		return nil, err
	}
	var paths map[int]*object.PathSet
	if !e.FullPaths {
		paths = e.derivePaths(sel, throwawayScope(outer))
	}
	var cands map[int]*Candidates
	if planning && e.Plan != nil {
		cands = e.Plan(sel, e.RT)
		if e.Trace != nil {
			for i, c := range cands {
				if c != nil {
					e.Trace(fmt.Sprintf("from item %d (%s): %s (%d candidates)", i, sel.From[i].Var, c.Why, len(c.Refs)))
				}
			}
		}
	}
	scope := newEnv(outer)
	c := &Cursor{
		e: e, ctx: ctx, sel: sel, tt: resultType, scope: scope,
		pipe: newPipeline(e, ctx, sel.From, scope, cands, paths),
		seen: make(map[string]bool),
		plan: describePlan(e, sel, cands, paths),
	}
	return c, nil
}

// describePlan renders the chosen access path and fetch set of each
// FROM item for EXPLAIN output.
func describePlan(e *Executor, sel *sql.Select, cands map[int]*Candidates, paths map[int]*object.PathSet) []string {
	out := make([]string, len(sel.From))
	for i, fi := range sel.From {
		source := fi.Source.Table
		if source == "" {
			out[i] = fmt.Sprintf("%s IN %s: iterate subtable of outer binding", fi.Var, fi.Source.Path)
			continue
		}
		access := "full table scan"
		if c := cands[i]; c != nil {
			access = fmt.Sprintf("%s -> %d candidate object(s)", c.Why, len(c.Refs))
		}
		fetch := "*"
		if t, ok := e.RT.Table(source); ok && paths != nil {
			fetch = paths[i].Describe(t.Type)
		}
		out[i] = fmt.Sprintf("%s IN %s: %s, fetch %s", fi.Var, source, access, fetch)
	}
	return out
}

// Type returns the result schema.
func (c *Cursor) Type() *model.TableType { return c.tt }

// AccessPlan returns the access-path description of each FROM item.
func (c *Cursor) AccessPlan() []string { return c.plan }

// Next returns the next result tuple; false means the result is
// exhausted (or the cursor was closed). After an error the cursor is
// closed and every later Next returns false.
func (c *Cursor) Next() (model.Tuple, bool, error) {
	if c.closed {
		return nil, false, nil
	}
	if len(c.sel.OrderBy) > 0 {
		if !c.drained {
			if err := c.drainSorted(); err != nil {
				c.Close()
				return nil, false, err
			}
			c.drained = true
		}
		for c.sorti < len(c.sorted) {
			tup := c.sorted[c.sorti]
			c.sorti++
			if c.distinctDup(tup) {
				continue
			}
			return tup, true, nil
		}
		c.Close()
		return nil, false, nil
	}
	for {
		tup, ok, err := c.nextUnfiltered()
		if err != nil || !ok {
			c.Close()
			return nil, false, err
		}
		if c.distinctDup(tup) {
			continue
		}
		return tup, true, nil
	}
}

// distinctDup reports whether tup is a duplicate under DISTINCT.
func (c *Cursor) distinctDup(tup model.Tuple) bool {
	if !c.sel.Distinct {
		return false
	}
	key := model.CanonicalTuple(tup)
	if c.seen[key] {
		return true
	}
	c.seen[key] = true
	return false
}

// nextUnfiltered produces the next WHERE-surviving result tuple from
// the pipeline (no DISTINCT, no ordering).
func (c *Cursor) nextUnfiltered() (model.Tuple, bool, error) {
	for {
		ok, err := c.pipe.next()
		if err != nil || !ok {
			return nil, false, err
		}
		if c.sel.Where != nil {
			keep, err := c.e.evalCond(c.sel.Where, c.scope)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		tup, err := c.e.buildResult(c.ctx, c.sel, c.tt, c.scope)
		if err != nil {
			return nil, false, err
		}
		return tup, true, nil
	}
}

// drainSorted runs the pipeline to completion, evaluating the ORDER
// BY keys alongside each result tuple, and sorts.
func (c *Cursor) drainSorted() error {
	type keyed struct {
		tup  model.Tuple
		keys []model.Value
	}
	var rows []keyed
	for {
		tup, ok, err := c.nextUnfiltered()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := keyed{tup: tup}
		for _, ob := range c.sel.OrderBy {
			v, err := c.e.evalExpr(ob.Expr, c.scope)
			if err != nil {
				return err
			}
			a, err := v.asAtom()
			if err != nil {
				return err
			}
			k.keys = append(k.keys, a)
		}
		rows = append(rows, k)
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, ob := range c.sel.OrderBy {
			cm, err := model.Compare(rows[i].keys[k], rows[j].keys[k])
			if err != nil {
				sortErr = err
				return false
			}
			if cm != 0 {
				if ob.Desc {
					return cm > 0
				}
				return cm < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	c.sorted = make([]model.Tuple, len(rows))
	for i, r := range rows {
		c.sorted[i] = r.tup
	}
	return nil
}

// Close releases the cursor's resources (open scans). It is
// idempotent and never fails; no buffer pages survive it.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.pipe.close()
	c.sorted = nil
	return nil
}
