package exec

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/sql"
)

// Required-path derivation: before a select block opens its scans,
// the executor walks the block's entire expression tree (projections,
// WHERE, EXISTS/ALL chains, CONTAINS, COUNT, ORDER BY, nested
// sub-selects) and computes, per range variable over a stored table,
// the set of paths the block can possibly touch. The storage layer
// then fetches only those paths (object.PathSet); everything else in
// the object stays unread.
//
// Derivation is conservative: any construct whose access pattern
// cannot be proven narrow marks the whole subtree (MarkAll), and any
// analysis failure at all falls back to AllPaths for every variable
// of the block — wrong derivation must never be able to change query
// results, only forgo the pruning win.

// pathNode pairs a PathSet position with the schema level it
// describes.
type pathNode struct {
	ps *object.PathSet
	tt *model.TableType
}

// pathScope is a chained var → pathNode environment mirroring the
// executor's env chains (so shadowing behaves identically).
type pathScope struct {
	vars   map[string]pathNode
	parent *pathScope
}

func newPathScope(parent *pathScope) *pathScope {
	return &pathScope{vars: make(map[string]pathNode), parent: parent}
}

func (s *pathScope) lookup(name string) (pathNode, bool) {
	for c := s; c != nil; c = c.parent {
		if n, ok := c.vars[name]; ok {
			return n, true
		}
	}
	return pathNode{}, false
}

// derivePaths computes the PathSet of every FROM item of sel that
// ranges over a stored table, keyed by item index (variable names can
// be rebound within one FROM list, so the index is the stable key).
// outer supplies nodes for variables bound by enclosing blocks (for
// the top-level block these are throwaway nodes: the enclosing fetch
// already satisfied their requirements). On any analysis failure it
// returns nil and the caller reads full objects.
func (e *Executor) derivePaths(sel *sql.Select, outer *pathScope) map[int]*object.PathSet {
	scope := newPathScope(outer)
	roots := make(map[int]*object.PathSet)
	if err := e.deriveBlock(sel, scope, roots); err != nil {
		return nil
	}
	return roots
}

// throwawayScope builds an outer pathScope from an executor env: each
// already-bound variable gets a discard node (its tuple is already
// fetched; marks recorded against it have no effect).
func throwawayScope(en *env) *pathScope {
	s := newPathScope(nil)
	for c := en; c != nil; c = c.parent {
		for name, b := range c.vars {
			if _, shadowed := s.vars[name]; !shadowed {
				s.vars[name] = pathNode{ps: &object.PathSet{}, tt: b.tt}
			}
		}
	}
	return s
}

// deriveBlock binds sel's FROM variables into scope (recording fresh
// root nodes for stored tables into roots) and walks every expression
// of the block.
func (e *Executor) deriveBlock(sel *sql.Select, scope *pathScope, roots map[int]*object.PathSet) error {
	for i, fi := range sel.From {
		if fi.Source.Table != "" {
			t, ok := e.RT.Table(fi.Source.Table)
			if !ok {
				return fmt.Errorf("exec: unknown table %q", fi.Source.Table)
			}
			ps := &object.PathSet{}
			scope.vars[fi.Var] = pathNode{ps: ps, tt: t.Type}
			if roots != nil {
				roots[i] = ps
			}
			continue
		}
		n, atomic, err := e.walkPath(fi.Source.Path, scope)
		if err != nil {
			return err
		}
		if atomic {
			return fmt.Errorf("exec: FROM %s does not denote a table", fi.Source.Path)
		}
		// Iterating the subtable needs its membership, which Descend
		// along the walk already requested; the members' contents are
		// whatever the block marks through this variable.
		scope.vars[fi.Var] = n
	}
	if sel.Star {
		if len(sel.From) != 1 {
			return fmt.Errorf("exec: SELECT * requires exactly one FROM item")
		}
		if n, ok := scope.lookup(sel.From[0].Var); ok {
			n.ps.MarkAll()
		}
	}
	for _, item := range sel.Items {
		if item.Sub != nil {
			if err := e.deriveBlock(item.Sub, newPathScope(scope), nil); err != nil {
				return err
			}
			continue
		}
		if err := e.markExpr(item.Expr, scope); err != nil {
			return err
		}
	}
	if sel.Where != nil {
		if err := e.markExpr(sel.Where, scope); err != nil {
			return err
		}
	}
	for _, ob := range sel.OrderBy {
		if err := e.markExpr(ob.Expr, scope); err != nil {
			return err
		}
	}
	return nil
}

// walkPath descends a path expression through the PathSet tree. The
// returned node is the schema level the path ends at; atomic reports
// that the path terminated in an atomic attribute (whose level atoms
// have been marked). For a path ending at a table-valued attribute the
// node is that subtable's member level (membership requested, contents
// not yet); for one ending at a member tuple ([k] indexing, or the
// bare variable) it is likewise the member level.
func (e *Executor) walkPath(p *sql.PathExpr, scope *pathScope) (pathNode, bool, error) {
	n, ok := scope.lookup(p.Var)
	if !ok {
		return pathNode{}, false, fmt.Errorf("exec: unknown variable %q", p.Var)
	}
	for _, st := range p.Steps {
		if st.Name == "" {
			continue // [k]: member selection stays at this level
		}
		ai := n.tt.AttrIndex(st.Name)
		if ai < 0 {
			return pathNode{}, false, fmt.Errorf("exec: no attribute %q in %s", st.Name, n.tt)
		}
		attr := n.tt.Attrs[ai]
		if attr.Type.Kind != model.KindTable {
			// All atoms of a level share one data subtuple, so the whole
			// level's atom set is the fetch granularity.
			n.ps.MarkAtoms()
			return n, true, nil
		}
		n = pathNode{ps: n.ps.Descend(ai), tt: attr.Type.Table}
	}
	return n, false, nil
}

// markValuePath records a path used as a value: an atomic terminal
// needs its level's atoms; a terminal denoting a member tuple or a
// whole subtable may be compared, cloned or projected in full, so the
// subtree is fetched completely (flat levels need only their atoms).
func (e *Executor) markValuePath(p *sql.PathExpr, scope *pathScope) error {
	n, atomic, err := e.walkPath(p, scope)
	if err != nil {
		return err
	}
	if atomic {
		return nil
	}
	if n.tt != nil && n.tt.Flat() {
		n.ps.MarkAtoms()
	} else {
		n.ps.MarkAll()
	}
	return nil
}

// markExpr walks one expression, recording every path requirement.
func (e *Executor) markExpr(x sql.Expr, scope *pathScope) error {
	switch x := x.(type) {
	case nil:
		return nil
	case *sql.Literal:
		return nil
	case *sql.Param:
		return nil
	case *sql.PathExpr:
		return e.markValuePath(x, scope)
	case *sql.Unary:
		return e.markExpr(x.E, scope)
	case *sql.Binary:
		if err := e.markExpr(x.L, scope); err != nil {
			return err
		}
		return e.markExpr(x.R, scope)
	case *sql.Quant:
		inner := newPathScope(scope)
		if x.Source.Table != "" {
			// Quantification over a stored table scans it with full
			// tuples; the quantified variable imposes nothing on the
			// block's roots.
			t, ok := e.RT.Table(x.Source.Table)
			if !ok {
				return fmt.Errorf("exec: unknown table %q", x.Source.Table)
			}
			inner.vars[x.Var] = pathNode{ps: &object.PathSet{}, tt: t.Type}
		} else {
			n, atomic, err := e.walkPath(x.Source.Path, scope)
			if err != nil {
				return err
			}
			if atomic || n.tt == nil {
				return fmt.Errorf("exec: quantifier source %s is not a table", x.Source.Path)
			}
			inner.vars[x.Var] = n
		}
		return e.markExpr(x.Cond, inner)
	case *sql.Contains:
		return e.markExpr(x.Text, scope)
	case *sql.TNameOf:
		// Minting a tuple name needs provenance only, no data.
		return nil
	case *sql.Count:
		if p, ok := x.Arg.(*sql.PathExpr); ok {
			// COUNT needs only the subtable's membership.
			n, atomic, err := e.walkPath(p, scope)
			if err != nil {
				return err
			}
			if atomic || n.tt == nil {
				return fmt.Errorf("exec: COUNT requires a table-valued argument")
			}
			return nil
		}
		return e.markExpr(x.Arg, scope)
	}
	return fmt.Errorf("exec: cannot derive paths for %T", x)
}
