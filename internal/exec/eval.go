package exec

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/textindex"
)

// value is the result of evaluating an expression: either an atomic
// model.Value / *model.Table, or a member tuple selected by list
// indexing (x.AUTHORS[1]), which carries its level type.
type value struct {
	atom model.Value
	tup  model.Tuple
	tt   *model.TableType // schema of tup, or of atom when it is a *Table
}

func atomVal(v model.Value) value { return value{atom: v} }

func (v value) isTuple() bool { return v.tup != nil }

func (v value) isNull() bool { return !v.isTuple() && model.IsNull(v.atom) }

// asAtom coerces the value into an atomic model.Value for comparison
// and projection: single-attribute tuples unwrap to their value (the
// paper compares x.AUTHORS[1] directly with 'Jones').
func (v value) asAtom() (model.Value, error) {
	if !v.isTuple() {
		return v.atom, nil
	}
	if len(v.tup) == 1 {
		return v.tup[0], nil
	}
	return nil, fmt.Errorf("exec: tuple with %d attributes used as an atomic value", len(v.tup))
}

// evalExpr evaluates an expression in the environment.
func (e *Executor) evalExpr(x sql.Expr, en *env) (value, error) {
	switch x := x.(type) {
	case *sql.Literal:
		return atomVal(x.Val), nil
	case *sql.Param:
		v, ok := en.param(x.Ord)
		if !ok {
			return value{}, fmt.Errorf("exec: no value bound for parameter ?%d (use Prepare and pass arguments)", x.Ord)
		}
		return atomVal(v), nil
	case *sql.PathExpr:
		return e.evalPath(x, en)
	case *sql.Unary:
		return e.evalUnary(x, en)
	case *sql.Binary:
		return e.evalBinary(x, en)
	case *sql.Quant:
		ok, err := e.evalQuant(x, en)
		return atomVal(model.Bool(ok)), err
	case *sql.Contains:
		return e.evalContains(x, en)
	case *sql.TNameOf:
		b, ok := en.lookup(x.Var)
		if !ok {
			return value{}, fmt.Errorf("exec: unknown variable %q", x.Var)
		}
		if b.tbl == nil {
			return value{}, fmt.Errorf("exec: TNAME(%s): variable has no stored provenance", x.Var)
		}
		token, err := e.RT.TName(b.tbl, b.ref, b.steps)
		if err != nil {
			return value{}, err
		}
		return atomVal(model.Str(token)), nil
	case *sql.Count:
		v, err := e.evalExpr(x.Arg, en)
		if err != nil {
			return value{}, err
		}
		tbl, ok := v.atom.(*model.Table)
		if !ok {
			return value{}, fmt.Errorf("exec: COUNT requires a table-valued argument")
		}
		return atomVal(model.Int(int64(tbl.Len()))), nil
	}
	return value{}, fmt.Errorf("exec: cannot evaluate %T", x)
}

// evalPath walks a path expression from its variable binding.
func (e *Executor) evalPath(p *sql.PathExpr, en *env) (value, error) {
	b, ok := en.lookup(p.Var)
	if !ok {
		return value{}, fmt.Errorf("exec: unknown variable %q", p.Var)
	}
	cur := value{tup: b.tup, tt: b.tt}
	for _, st := range p.Steps {
		if cur.isNull() {
			return atomVal(model.Null{}), nil
		}
		if st.Name != "" {
			if !cur.isTuple() {
				return value{}, fmt.Errorf("exec: %s: attribute %q applied to a non-tuple (use [k] or a quantifier first)", p, st.Name)
			}
			ai := cur.tt.AttrIndex(st.Name)
			if ai < 0 {
				return value{}, fmt.Errorf("exec: %s: no attribute %q in %s", p, st.Name, cur.tt)
			}
			attr := cur.tt.Attrs[ai]
			v := cur.tup[ai]
			if attr.Type.Kind == model.KindTable {
				cur = value{atom: v, tt: attr.Type.Table}
			} else {
				cur = value{atom: v}
			}
			continue
		}
		// [k] step: 1-based member selection on a table value.
		tbl, ok := cur.atom.(*model.Table)
		if !ok || cur.isTuple() {
			return value{}, fmt.Errorf("exec: %s: [%d] applied to a non-table", p, st.Index)
		}
		if st.Index > tbl.Len() {
			return atomVal(model.Null{}), nil
		}
		cur = value{tup: tbl.Tuples[st.Index-1], tt: cur.tt}
	}
	return cur, nil
}

func (e *Executor) evalUnary(x *sql.Unary, en *env) (value, error) {
	v, err := e.evalExpr(x.E, en)
	if err != nil {
		return value{}, err
	}
	switch x.Op {
	case "NOT":
		b, err := truth(v)
		if err != nil {
			return value{}, err
		}
		return atomVal(model.Bool(!b)), nil
	case "-":
		a, err := v.asAtom()
		if err != nil {
			return value{}, err
		}
		switch n := a.(type) {
		case model.Int:
			return atomVal(model.Int(-n)), nil
		case model.Float:
			return atomVal(model.Float(-n)), nil
		case model.Null:
			return atomVal(model.Null{}), nil
		}
		return value{}, fmt.Errorf("exec: cannot negate %v", a)
	}
	return value{}, fmt.Errorf("exec: unknown unary %q", x.Op)
}

func (e *Executor) evalBinary(x *sql.Binary, en *env) (value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := e.evalExpr(x.L, en)
		if err != nil {
			return value{}, err
		}
		lb, err := truth(l)
		if err != nil {
			return value{}, err
		}
		// Short circuit.
		if x.Op == "AND" && !lb {
			return atomVal(model.Bool(false)), nil
		}
		if x.Op == "OR" && lb {
			return atomVal(model.Bool(true)), nil
		}
		r, err := e.evalExpr(x.R, en)
		if err != nil {
			return value{}, err
		}
		rb, err := truth(r)
		if err != nil {
			return value{}, err
		}
		return atomVal(model.Bool(rb)), nil
	case "=", "<>", "<", "<=", ">", ">=":
		l, err := e.evalExpr(x.L, en)
		if err != nil {
			return value{}, err
		}
		r, err := e.evalExpr(x.R, en)
		if err != nil {
			return value{}, err
		}
		la, err := l.asAtom()
		if err != nil {
			return value{}, err
		}
		ra, err := r.asAtom()
		if err != nil {
			return value{}, err
		}
		// Null comparisons are unknown -> false (two-valued with null
		// absorption).
		if model.IsNull(la) || model.IsNull(ra) {
			return atomVal(model.Bool(false)), nil
		}
		// Table values compare only under (in)equality, deeply.
		lt, lIsT := la.(*model.Table)
		rt, rIsT := ra.(*model.Table)
		if lIsT || rIsT {
			if !(lIsT && rIsT) || (x.Op != "=" && x.Op != "<>") {
				return value{}, fmt.Errorf("exec: invalid table comparison %s", x.Op)
			}
			eq := model.TableEqual(lt, rt)
			if x.Op == "<>" {
				eq = !eq
			}
			return atomVal(model.Bool(eq)), nil
		}
		c, err := model.Compare(la, ra)
		if err != nil {
			return value{}, err
		}
		var res bool
		switch x.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return atomVal(model.Bool(res)), nil
	case "+", "-", "*", "/":
		l, err := e.evalExpr(x.L, en)
		if err != nil {
			return value{}, err
		}
		r, err := e.evalExpr(x.R, en)
		if err != nil {
			return value{}, err
		}
		la, err := l.asAtom()
		if err != nil {
			return value{}, err
		}
		ra, err := r.asAtom()
		if err != nil {
			return value{}, err
		}
		return arith(x.Op, la, ra)
	}
	return value{}, fmt.Errorf("exec: unknown operator %q", x.Op)
}

func arith(op string, a, b model.Value) (value, error) {
	if model.IsNull(a) || model.IsNull(b) {
		return atomVal(model.Null{}), nil
	}
	ai, aInt := a.(model.Int)
	bi, bInt := b.(model.Int)
	if aInt && bInt {
		switch op {
		case "+":
			return atomVal(model.Int(ai + bi)), nil
		case "-":
			return atomVal(model.Int(ai - bi)), nil
		case "*":
			return atomVal(model.Int(ai * bi)), nil
		case "/":
			if bi == 0 {
				return value{}, fmt.Errorf("exec: division by zero")
			}
			return atomVal(model.Int(ai / bi)), nil
		}
	}
	af, aOK := toF(a)
	bf, bOK := toF(b)
	if !aOK || !bOK {
		if op == "+" {
			if as, ok := a.(model.Str); ok {
				if bs, ok := b.(model.Str); ok {
					return atomVal(as + bs), nil
				}
			}
		}
		return value{}, fmt.Errorf("exec: cannot apply %s to %v and %v", op, a, b)
	}
	switch op {
	case "+":
		return atomVal(model.Float(af + bf)), nil
	case "-":
		return atomVal(model.Float(af - bf)), nil
	case "*":
		return atomVal(model.Float(af * bf)), nil
	case "/":
		if bf == 0 {
			return value{}, fmt.Errorf("exec: division by zero")
		}
		return atomVal(model.Float(af / bf)), nil
	}
	return value{}, fmt.Errorf("exec: unknown operator %q", op)
}

func toF(v model.Value) (float64, bool) {
	switch x := v.(type) {
	case model.Int:
		return float64(x), true
	case model.Float:
		return float64(x), true
	}
	return 0, false
}

// truth converts a predicate result to a boolean; null is false.
func truth(v value) (bool, error) {
	if v.isNull() {
		return false, nil
	}
	a, err := v.asAtom()
	if err != nil {
		return false, err
	}
	b, ok := a.(model.Bool)
	if !ok {
		return false, fmt.Errorf("exec: predicate evaluated to %v, not a boolean", a)
	}
	return bool(b), nil
}

// evalQuant evaluates EXISTS/ALL over a subtable or stored table.
// ALL over an empty table is vacuously true; EXISTS false.
func (e *Executor) evalQuant(q *sql.Quant, en *env) (bool, error) {
	iterate := func(fn func(tt *model.TableType, tup model.Tuple) (bool, error)) (bool, error) {
		if q.Source.Table != "" {
			t, ok := e.RT.Table(q.Source.Table)
			if !ok {
				return false, fmt.Errorf("exec: unknown table %q", q.Source.Table)
			}
			stop := fmt.Errorf("stop")
			done := false
			var verdict bool
			err := e.RT.ScanTable(t, 0, func(_ page.TID, tup model.Tuple) error {
				halt, err := fn(t.Type, tup)
				if err != nil {
					return err
				}
				if halt {
					done = true
					verdict = true
					return stop
				}
				return nil
			})
			if err != nil && !done {
				return false, err
			}
			return verdict, nil
		}
		v, err := e.evalPath(q.Source.Path, en)
		if err != nil {
			return false, err
		}
		if v.isNull() {
			return false, nil
		}
		tbl, ok := v.atom.(*model.Table)
		if !ok {
			return false, fmt.Errorf("exec: quantifier source %s is not a table", q.Source.Path)
		}
		for _, tup := range tbl.Tuples {
			halt, err := fn(v.tt, tup)
			if err != nil {
				return false, err
			}
			if halt {
				return true, nil
			}
		}
		return false, nil
	}

	if q.All {
		allTrue := true
		_, err := iterate(func(tt *model.TableType, tup model.Tuple) (bool, error) {
			scope := newEnv(en)
			scope.bind(q.Var, &binding{tt: tt, tup: tup})
			ok, err := e.evalCond(q.Cond, scope)
			if err != nil {
				return false, err
			}
			if !ok {
				allTrue = false
				return true, nil // early out: one counterexample suffices
			}
			return false, nil
		})
		if err != nil {
			return false, err
		}
		return allTrue, nil
	}
	found, err := iterate(func(tt *model.TableType, tup model.Tuple) (bool, error) {
		scope := newEnv(en)
		scope.bind(q.Var, &binding{tt: tt, tup: tup})
		ok, err := e.evalCond(q.Cond, scope)
		if err != nil {
			return false, err
		}
		return ok, nil // early out on first witness
	})
	return found, err
}

func (e *Executor) evalCond(x sql.Expr, en *env) (bool, error) {
	v, err := e.evalExpr(x, en)
	if err != nil {
		return false, err
	}
	return truth(v)
}

func (e *Executor) evalContains(c *sql.Contains, en *env) (value, error) {
	v, err := e.evalExpr(c.Text, en)
	if err != nil {
		return value{}, err
	}
	if v.isNull() {
		return atomVal(model.Bool(false)), nil
	}
	a, err := v.asAtom()
	if err != nil {
		return value{}, err
	}
	s, ok := a.(model.Str)
	if !ok {
		return value{}, fmt.Errorf("exec: CONTAINS requires a string attribute")
	}
	return atomVal(model.Bool(textindex.Contains(string(s), c.Mask))), nil
}
