package exec

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sql"
)

// typeEnv tracks range-variable types for result schema inference.
type typeEnv struct {
	vars   map[string]*model.TableType
	parent *typeEnv
}

func newTypeEnv(parent *typeEnv) *typeEnv {
	return &typeEnv{vars: make(map[string]*model.TableType), parent: parent}
}

func (te *typeEnv) lookup(name string) (*model.TableType, bool) {
	for s := te; s != nil; s = s.parent {
		if tt, ok := s.vars[name]; ok {
			return tt, true
		}
	}
	return nil, false
}

// typeEnvFrom exposes the types of the bindings in a value env.
func typeEnvFrom(en *env) *typeEnv {
	te := newTypeEnv(nil)
	for s := en; s != nil; s = s.parent {
		for name, b := range s.vars {
			if _, shadowed := te.vars[name]; !shadowed {
				te.vars[name] = b.tt
			}
		}
	}
	return te
}

// inferred is the static type of an expression: an atomic kind, a
// table type, or a tuple type (the result of [k] indexing).
type inferred struct {
	kind  model.Kind
	table *model.TableType // when kind == KindTable
	tuple *model.TableType // when the expression denotes a member tuple
}

func (in inferred) isTuple() bool { return in.tuple != nil }

// atomKind coerces to an atomic kind (unwrapping single-attribute
// tuples) for result schema building.
func (in inferred) atomType() (model.Type, error) {
	if in.isTuple() {
		if len(in.tuple.Attrs) == 1 {
			return in.tuple.Attrs[0].Type, nil
		}
		return model.Type{}, fmt.Errorf("exec: tuple of %d attributes used as a value; select an attribute", len(in.tuple.Attrs))
	}
	if in.kind == model.KindTable {
		return model.Type{Kind: model.KindTable, Table: in.table}, nil
	}
	return model.Type{Kind: in.kind}, nil
}

// inferExpr computes the static type of an expression.
func (e *Executor) inferExpr(x sql.Expr, te *typeEnv) (inferred, error) {
	switch x := x.(type) {
	case *sql.Literal:
		if model.IsNull(x.Val) {
			return inferred{kind: model.KindString}, nil // null literal defaults to string
		}
		return inferred{kind: x.Val.Kind()}, nil
	case *sql.Param:
		// A placeholder's value type is unknown until execution; like
		// the null literal it defaults to string for schema purposes.
		return inferred{kind: model.KindString}, nil
	case *sql.PathExpr:
		return e.inferPath(x, te)
	case *sql.Unary:
		if x.Op == "NOT" {
			return inferred{kind: model.KindBool}, nil
		}
		return e.inferExpr(x.E, te)
	case *sql.Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return inferred{kind: model.KindBool}, nil
		}
		l, err := e.inferExpr(x.L, te)
		if err != nil {
			return inferred{}, err
		}
		r, err := e.inferExpr(x.R, te)
		if err != nil {
			return inferred{}, err
		}
		if l.kind == model.KindFloat || r.kind == model.KindFloat {
			return inferred{kind: model.KindFloat}, nil
		}
		if l.kind == model.KindString && x.Op == "+" {
			return inferred{kind: model.KindString}, nil
		}
		return inferred{kind: model.KindInt}, nil
	case *sql.Quant, *sql.Contains:
		return inferred{kind: model.KindBool}, nil
	case *sql.TNameOf:
		return inferred{kind: model.KindString}, nil
	case *sql.Count:
		return inferred{kind: model.KindInt}, nil
	}
	return inferred{}, fmt.Errorf("exec: cannot infer type of %T", x)
}

// inferPath types a path expression.
func (e *Executor) inferPath(p *sql.PathExpr, te *typeEnv) (inferred, error) {
	tt, ok := te.lookup(p.Var)
	if !ok {
		return inferred{}, fmt.Errorf("exec: unknown variable %q", p.Var)
	}
	cur := inferred{tuple: tt}
	for _, st := range p.Steps {
		if st.Name != "" {
			if !cur.isTuple() {
				return inferred{}, fmt.Errorf("exec: %s: attribute %q applied to a non-tuple", p, st.Name)
			}
			attr, ok := cur.tuple.Attr(st.Name)
			if !ok {
				return inferred{}, fmt.Errorf("exec: %s: no attribute %q in %s", p, st.Name, cur.tuple)
			}
			if attr.Type.Kind == model.KindTable {
				cur = inferred{kind: model.KindTable, table: attr.Type.Table}
			} else {
				cur = inferred{kind: attr.Type.Kind}
			}
			continue
		}
		if cur.kind != model.KindTable || cur.isTuple() {
			return inferred{}, fmt.Errorf("exec: %s: [%d] applied to a non-table", p, st.Index)
		}
		cur = inferred{tuple: cur.table}
	}
	return cur, nil
}

// sourceType resolves the element type of a FROM source.
func (e *Executor) sourceType(src sql.TableRef, te *typeEnv) (*model.TableType, error) {
	if src.Table != "" {
		t, ok := e.RT.Table(src.Table)
		if !ok {
			return nil, fmt.Errorf("exec: unknown table %q", src.Table)
		}
		return t.Type, nil
	}
	in, err := e.inferPath(src.Path, te)
	if err != nil {
		return nil, err
	}
	if in.kind != model.KindTable || in.isTuple() {
		return nil, fmt.Errorf("exec: FROM source %s is not a table", src.Path)
	}
	return in.table, nil
}

// inferSelect computes the result schema of a select block.
func (e *Executor) inferSelect(sel *sql.Select, outer *typeEnv) (*model.TableType, error) {
	te := newTypeEnv(outer)
	for _, fi := range sel.From {
		tt, err := e.sourceType(fi.Source, te)
		if err != nil {
			return nil, err
		}
		te.vars[fi.Var] = tt
	}
	ordered := e.selectOrdered(sel, te)
	if sel.Star {
		if len(sel.From) != 1 {
			return nil, fmt.Errorf("exec: SELECT * requires exactly one FROM item; list the attributes instead")
		}
		src := te.vars[sel.From[0].Var].Clone()
		src.Ordered = ordered
		return src, nil
	}
	var attrs []model.Attr
	for i, item := range sel.Items {
		name := item.ResultName()
		if name == "" {
			name = fmt.Sprintf("COL%d", i+1)
		}
		if item.Sub != nil {
			sub, err := e.inferSelect(item.Sub, te)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, model.Attr{Name: name, Type: model.Type{Kind: model.KindTable, Table: sub}})
			continue
		}
		in, err := e.inferExpr(item.Expr, te)
		if err != nil {
			return nil, err
		}
		typ, err := in.atomType()
		if err != nil {
			return nil, fmt.Errorf("exec: select item %d: %w", i+1, err)
		}
		attrs = append(attrs, model.Attr{Name: name, Type: typ})
	}
	return model.NewTableType(ordered, attrs...)
}

// selectOrdered decides whether the result is an ordered table: an
// explicit ORDER BY always orders, and a plain projection of a single
// ordered source preserves its order (so selecting from a list yields
// a list).
func (e *Executor) selectOrdered(sel *sql.Select, te *typeEnv) bool {
	if len(sel.OrderBy) > 0 {
		return true
	}
	if len(sel.From) == 1 {
		if tt, ok := te.lookup(sel.From[0].Var); ok && tt != nil {
			return tt.Ordered
		}
	}
	return false
}
