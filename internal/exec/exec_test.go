package exec_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/testdata"
	"repro/internal/tname"
)

func openDB(t testing.TB) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		if err := db.Insert("DEPARTMENTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateTable("REPORTS", testdata.ReportsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Reports().Tuples {
		if err := db.Insert("REPORTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func one(t *testing.T, db *engine.DB, q string) model.Value {
	t.Helper()
	tbl, _, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if tbl.Len() != 1 || len(tbl.Tuples[0]) != 1 {
		t.Fatalf("%s: expected one value, got %v", q, tbl)
	}
	return tbl.Tuples[0][0]
}

func TestArithmetic(t *testing.T) {
	db := openDB(t)
	cases := []struct {
		expr string
		want model.Value
	}{
		{`1 + 2 * 3`, model.Int(7)},
		{`(1 + 2) * 3`, model.Int(9)},
		{`7 / 2`, model.Int(3)},
		{`7.0 / 2`, model.Float(3.5)},
		{`x.BUDGET / 1000`, model.Int(320)},
		{`x.BUDGET - x.BUDGET`, model.Int(0)},
		{`-x.DNO`, model.Int(-314)},
		{`1.5 + 1`, model.Float(2.5)},
		{`'a' + 'b'`, model.Str("ab")},
	}
	for _, c := range cases {
		got := one(t, db, `SELECT `+c.expr+` FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
		if !model.AtomEqual(got, c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	if _, _, err := db.Query(`SELECT 1/0 FROM x IN DEPARTMENTS`); err == nil {
		t.Error("division by zero succeeded")
	}
	if _, _, err := db.Query(`SELECT 1 + 'x' FROM x IN DEPARTMENTS`); err == nil {
		t.Error("int + string succeeded")
	}
}

func TestNullSemantics(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE N (A INT, B STRING); INSERT INTO N VALUES (1, NULL), (NULL, 'x');`); err != nil {
		t.Fatal(err)
	}
	// Null comparisons are false, so neither = nor <> matches null.
	tbl, _, err := db.Query(`SELECT n.A FROM n IN N WHERE n.B = 'x'`)
	if err != nil || tbl.Len() != 1 {
		t.Fatalf("B='x': %v, %v", tbl, err)
	}
	tbl, _, _ = db.Query(`SELECT n.A FROM n IN N WHERE n.B <> 'x'`)
	if tbl.Len() != 0 {
		t.Errorf("B<>'x' matched null row: %v", tbl)
	}
	// Arithmetic over null yields null; nulls project through.
	tbl, _, err = db.Query(`SELECT n.A + 1 FROM n IN N`)
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for _, r := range tbl.Tuples {
		if model.IsNull(r[0]) {
			nulls++
		}
	}
	if nulls != 1 {
		t.Errorf("null arithmetic rows = %d, want 1", nulls)
	}
}

func TestBooleanLogicAndNot(t *testing.T) {
	db := openDB(t)
	tbl, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE NOT (x.DNO = 314) AND (x.BUDGET > 400000 OR x.DNO = 417)`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("rows = %v", tbl)
	}
	// Comparison chain operators.
	for _, q := range []string{
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO >= 314 AND x.DNO <= 314`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO < 315 AND x.DNO > 313`,
	} {
		tbl, _, err := db.Query(q)
		if err != nil || tbl.Len() != 1 {
			t.Errorf("%s: %v, %v", q, tbl, err)
		}
	}
}

func TestQuantifierOverStoredTable(t *testing.T) {
	db := openDB(t)
	// EXISTS over another stored table (semi-join).
	tbl, _, err := db.Query(`
SELECT r.REPNO FROM r IN REPORTS
WHERE EXISTS d IN DEPARTMENTS: d.BUDGET > 400000`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 { // condition holds once, so all reports qualify
		t.Errorf("rows = %d, want 3", tbl.Len())
	}
	tbl, _, err = db.Query(`
SELECT r.REPNO FROM r IN REPORTS
WHERE EXISTS d IN DEPARTMENTS: d.BUDGET > 99999999`)
	if err != nil || tbl.Len() != 0 {
		t.Errorf("unsatisfiable exists: %v, %v", tbl, err)
	}
}

func TestAllVacuousTruth(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`
CREATE TABLE E (ID INT, S TABLE OF (V INT));
INSERT INTO E VALUES (1, {});`); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := db.Query(`SELECT e.ID FROM e IN E WHERE ALL v IN e.S: v.V = 42`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Error("ALL over empty subtable not vacuously true")
	}
	tbl, _, err = db.Query(`SELECT e.ID FROM e IN E WHERE EXISTS v IN e.S: v.V = 42`)
	if err != nil || tbl.Len() != 0 {
		t.Error("EXISTS over empty subtable not false")
	}
}

func TestListIndexOutOfRangeIsNull(t *testing.T) {
	db := openDB(t)
	// Report 0179 has one author; AUTHORS[2] is null -> comparison false.
	tbl, _, err := db.Query(`
SELECT x.REPNO FROM x IN REPORTS WHERE x.AUTHORS[2].NAME = 'Jones'`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Errorf("out-of-range index matched: %v", tbl)
	}
	// Selecting it projects null.
	tbl, _, err = db.Query(`SELECT x.AUTHORS[2].NAME FROM x IN REPORTS WHERE x.REPNO = '0179'`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsNull(tbl.Tuples[0][0]) {
		t.Errorf("projected %v, want NULL", tbl.Tuples[0][0])
	}
}

func TestCountVariants(t *testing.T) {
	db := openDB(t)
	got := one(t, db, `SELECT COUNT(x.PROJECTS) FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if got.(model.Int) != 2 {
		t.Errorf("COUNT(PROJECTS) = %v", got)
	}
	if _, _, err := db.Query(`SELECT COUNT(x.DNO) FROM x IN DEPARTMENTS`); err == nil {
		t.Error("COUNT over atomic succeeded")
	}
}

func TestTableEqualityPredicate(t *testing.T) {
	db := openDB(t)
	// Departments whose EQUIP equals a literal-constructed table via a
	// nested query comparison: compare subtables of two vars.
	tbl, _, err := db.Query(`
SELECT x.DNO, y.DNO AS DNO2 FROM x IN DEPARTMENTS, y IN DEPARTMENTS
WHERE x.EQUIP = y.EQUIP AND x.DNO < y.DNO`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 { // all three EQUIP sets differ
		t.Errorf("equal EQUIP pairs = %v", tbl)
	}
	tbl, _, err = db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS, y IN DEPARTMENTS
WHERE x.PROJECTS = y.PROJECTS AND x.DNO = y.DNO AND x.DNO = 314`)
	if err != nil || tbl.Len() != 1 {
		t.Errorf("self table-equality: %v, %v", tbl, err)
	}
	if _, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.PROJECTS < x.PROJECTS`); err == nil {
		t.Error("table < table succeeded")
	}
}

func TestResultNameCollisionsAndAliases(t *testing.T) {
	db := openDB(t)
	// Duplicate derived names must be rejected (schema validation).
	if _, _, err := db.Query(`SELECT x.DNO, x.DNO FROM x IN DEPARTMENTS`); err == nil {
		t.Error("duplicate result attribute accepted")
	}
	// Aliases resolve the collision.
	tbl, tt, err := db.Query(`SELECT x.DNO, x.DNO AS DNO2 FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Attrs[1].Name != "DNO2" || tbl.Tuples[0][1].(model.Int) != 314 {
		t.Errorf("aliased result: %v %s", tbl, tt)
	}
	// Expressions get synthesized names.
	_, tt, err = db.Query(`SELECT x.DNO + 1 FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tt.Attrs[0].Name, "COL") {
		t.Errorf("synthesized name = %s", tt.Attrs[0].Name)
	}
}

func TestOrderByStringsAndMultipleKeys(t *testing.T) {
	db := openDB(t)
	tbl, _, err := db.Query(`
SELECT y.PNAME, x.DNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
ORDER BY y.PNAME ASC, x.DNO DESC`)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, tbl.Len())
	for i, r := range tbl.Tuples {
		names[i] = string(r[0].(model.Str))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("order violated: %v", names)
		}
	}
}

func TestSubtableOfSubtableFrom(t *testing.T) {
	db := openDB(t)
	// FROM with a positional path: the members of the first project of
	// each department.
	tbl, _, err := db.Query(`
SELECT z.EMPNO FROM x IN DEPARTMENTS, z IN x.PROJECTS[1].MEMBERS WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 { // CGA has 3 members
		t.Errorf("members of first project = %d, want 3", tbl.Len())
	}
	// DML through a positional FROM path keeps working.
	if _, err := db.Exec(`
DELETE z FROM x IN DEPARTMENTS, z IN x.PROJECTS[1].MEMBERS
WHERE x.DNO = 314 AND z.EMPNO = 69011`); err != nil {
		t.Fatal(err)
	}
	tbl, _, _ = db.Query(`
SELECT z.EMPNO FROM x IN DEPARTMENTS, z IN x.PROJECTS[1].MEMBERS WHERE x.DNO = 314`)
	if tbl.Len() != 2 {
		t.Errorf("after positional delete: %d members", tbl.Len())
	}
}

func TestDistinctOverNestedResults(t *testing.T) {
	db := openDB(t)
	// DISTINCT must canonicalize nested tables (bag semantics).
	tbl, _, err := db.Query(`
SELECT DISTINCT MEMBERS = (SELECT z.FUNCTION FROM z IN y.MEMBERS WHERE z.FUNCTION = 'Leader')
FROM x IN DEPARTMENTS, y IN x.PROJECTS`)
	if err != nil {
		t.Fatal(err)
	}
	// Every project has exactly one Leader, so one distinct value.
	if tbl.Len() != 1 {
		t.Errorf("distinct nested results = %d, want 1: %v", tbl.Len(), tbl)
	}
}

func TestInsertCoercions(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE C (F FLOAT, T TIME, S STRING)`); err != nil {
		t.Fatal(err)
	}
	// Int literal widens to float; string parses into time.
	if _, err := db.Exec(`INSERT INTO C VALUES (3, '1984-01-15', 'ok')`); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := db.Query(`SELECT c.F, c.T FROM c IN C`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Tuples[0][0].(model.Float) != 3.0 {
		t.Errorf("widened float = %v", tbl.Tuples[0][0])
	}
	if _, ok := tbl.Tuples[0][1].(model.Time); !ok {
		t.Errorf("time coercion = %T", tbl.Tuples[0][1])
	}
	if _, err := db.Exec(`INSERT INTO C VALUES ('nope', '1984-01-15', 'x')`); err == nil {
		t.Error("string into float accepted")
	}
}

func TestUpdateExpressionsReferencingRow(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`UPDATE x IN DEPARTMENTS SET BUDGET = x.BUDGET * 2 WHERE x.DNO = 314`); err != nil {
		t.Fatal(err)
	}
	got := one(t, db, `SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if got.(model.Int) != 640000 {
		t.Errorf("budget = %v", got)
	}
}

func TestDeleteAllMembersThenObject(t *testing.T) {
	db := openDB(t)
	// Delete every project of 314 in one statement (descending-pos
	// ordering inside the executor must keep positions valid).
	if _, err := db.Exec(`DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314`); err != nil {
		t.Fatal(err)
	}
	got := one(t, db, `SELECT COUNT(x.PROJECTS) FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if got.(model.Int) != 0 {
		t.Errorf("projects left = %v", got)
	}
}

func TestContainsRequiresString(t *testing.T) {
	db := openDB(t)
	if _, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO CONTAINS '*1*'`); err == nil {
		t.Error("CONTAINS over int succeeded")
	}
}

func TestCorrelatedSubquerySeesOuterVars(t *testing.T) {
	db := openDB(t)
	// The nested constructor references both the outer department and
	// the project variable.
	tbl, _, err := db.Query(`
SELECT y.PNO,
       SAMEDEPT = (SELECT z.PNO FROM z IN x.PROJECTS WHERE z.PNO <> y.PNO)
FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	for _, r := range tbl.Tuples {
		other := r[1].(*model.Table)
		if other.Len() != 1 {
			t.Errorf("project %v sees %d siblings, want 1", r[0], other.Len())
		}
	}
}

// TNAME() mints application tokens inside queries; the tokens resolve
// back to the bound (sub)objects.
func TestTNameFunction(t *testing.T) {
	db := openDB(t)
	tbl, tt, err := db.Query(`
SELECT y.PNO, TNAME(y) AS REF FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Attrs[1].Type.Kind != model.KindString {
		t.Fatalf("TNAME type = %s", tt.Attrs[1].Type)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	// The token resolves back through the t-name registry.
	mgr, _ := db.Manager("DEPARTMENTS")
	ct, _ := db.Catalog().Table("DEPARTMENTS")
	reg := tname.NewRegistry(mgr, ct.Type)
	for _, r := range tbl.Tuples {
		n, err := tname.Decode(string(r[1].(model.Str)))
		if err != nil {
			t.Fatal(err)
		}
		tup, err := reg.ResolveTuple(n)
		if err != nil {
			t.Fatal(err)
		}
		if !model.AtomEqual(tup[0], r[0]) {
			t.Errorf("token resolves to PNO %v, row says %v", tup[0], r[0])
		}
	}
	// TNAME over a derived (non-stored) variable fails cleanly.
	if _, _, err := db.Query(`
SELECT TNAME(m) FROM x IN DEPARTMENTS, m IN x.PROJECTS[1].MEMBERS WHERE x.DNO = 999`); err != nil {
		t.Fatalf("TNAME over positional path: %v", err)
	}
}

// Concurrent readers are safe; a writer serializes against them.
func TestConcurrentQueries(t *testing.T) {
	db := openDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				res, err := db.Exec(`SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Leader'`)
				if err != nil {
					errs <- err
					return
				}
				if res[0].Table.Len() != 3 {
					errs <- fmt.Errorf("rows = %d", res[0].Table.Len())
					return
				}
			}
		}()
	}
	// Interleave writers through the statement lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			if _, err := db.Exec(fmt.Sprintf(
				`UPDATE x IN DEPARTMENTS SET BUDGET = %d WHERE x.DNO = 314`, 100000+j)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
