// Package exec evaluates NF² SQL statements against stored tables.
// It implements the generalized SELECT-FROM-WHERE semantics of §3 of
// the paper — range variables over stored tables and over
// table-valued attributes at any nesting level, nested result
// construction (nest), flattening (unnest), EXISTS/ALL quantifiers,
// joins across nesting levels, list indexing, masked text search and
// ASOF time-version access — plus the DML operations (insert,
// update, delete of complex objects or arbitrary parts of them).
package exec

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/textindex"
)

// Runtime is the storage interface the executor runs against; the
// engine implements it. All reads accept an as-of timestamp (0 =
// current state).
type Runtime interface {
	// Table resolves a stored table by name.
	Table(name string) (*catalog.Table, bool)
	// ScanTable streams all tuples of a stored table with their
	// references (object root TIDs for complex tables, tuple TIDs for
	// flat ones).
	ScanTable(t *catalog.Table, asof int64, fn func(ref page.TID, tup model.Tuple) error) error
	// ReadRef materializes one tuple by reference.
	ReadRef(t *catalog.Table, ref page.TID, asof int64) (model.Tuple, error)
	// OpenScan opens a pull cursor over a stored table that fetches
	// only the paths in ps (nil = everything) of each object. The
	// cursor must hold no buffer pages between calls, so abandoning it
	// leaks nothing.
	OpenScan(t *catalog.Table, asof int64, ps *object.PathSet) (ScanCursor, error)
	// OpenRef reads one tuple by reference, fetching only the paths in
	// ps (nil = everything).
	OpenRef(t *catalog.Table, ref page.TID, asof int64, ps *object.PathSet) (model.Tuple, error)
	// Indexes returns the live value indexes of a table.
	Indexes(table string) []*index.Index
	// TextIndexes returns the live text indexes of a table.
	TextIndexes(table string) []*textindex.Index

	// InsertTuple adds a tuple to a stored table.
	InsertTuple(t *catalog.Table, tup model.Tuple) error
	// DeleteTuple removes a whole tuple/object.
	DeleteTuple(t *catalog.Table, ref page.TID) error
	// UpdateAtoms overwrites the atomic attributes of the (sub)object
	// addressed by steps (empty steps = the top level; for flat
	// tables vals covers all attributes).
	UpdateAtoms(t *catalog.Table, ref page.TID, steps []object.Step, vals []model.Value) error
	// InsertMember adds a member tuple to a subtable of an object.
	InsertMember(t *catalog.Table, ref page.TID, steps []object.Step, attr int, member model.Tuple) error
	// DeleteMember removes a subtable member.
	DeleteMember(t *catalog.Table, ref page.TID, steps []object.Step, attr, pos int) error

	// ParseTime converts an ASOF literal into a timestamp.
	ParseTime(v model.Value) (int64, error)
	// TName mints the tuple name (§4.3) of the (sub)object addressed
	// by ref and steps, as an opaque token.
	TName(t *catalog.Table, ref page.TID, steps []object.Step) (string, error)
}

// ScanCursor is a pull iterator over a stored table, produced by
// Runtime.OpenScan. Next returns false when the scan is exhausted;
// implementations pin buffer pages only inside a single Next call.
type ScanCursor interface {
	Next() (page.TID, model.Tuple, bool, error)
	Close() error
}

// Candidates restricts the scan of one FROM item to a pre-computed
// reference list (produced by the planner from index information).
type Candidates struct {
	Refs []page.TID
	// Why describes the access path for EXPLAIN output.
	Why string
}

// Planner chooses access paths for the top-level FROM items of a
// select; nil entries mean full scan. It may return nil entirely.
type Planner func(sel *sql.Select, rt Runtime) map[int]*Candidates

// Executor evaluates statements.
type Executor struct {
	RT   Runtime
	Plan Planner // optional
	// Trace, when non-nil, receives access-path decisions.
	Trace func(msg string)
	// FullPaths disables projection pushdown: every stored object is
	// fetched completely, as the pre-cursor executor did. It exists as
	// a verification aid (the property tests compare pruned against
	// full execution) and as an escape hatch.
	FullPaths bool
}

// New creates an executor over a runtime.
func New(rt Runtime) *Executor { return &Executor{RT: rt} }

// binding is the current value of one range variable, with the
// provenance needed for DML through the variable.
type binding struct {
	tt  *model.TableType
	tup model.Tuple

	// Stored provenance (zero when the tuple is derived data):
	tbl   *catalog.Table
	ref   page.TID
	steps []object.Step // navigation from the object root to tup
	// parentAttr/parentPos locate tup inside its parent subtable when
	// steps is non-empty (== last step).
	asof int64
}

// env is a chained variable scope. The root scope of a statement may
// carry the positional parameter values of a prepared execution;
// lookups walk the chain, so nested blocks and quantifier scopes see
// the same arguments.
type env struct {
	vars   map[string]*binding
	parent *env
	params []model.Value // bound `?` arguments (root scope only)
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[string]*binding), parent: parent}
}

// rootEnv creates a statement root scope carrying bound parameters.
func rootEnv(params []model.Value) *env {
	e := newEnv(nil)
	e.params = params
	return e
}

// param resolves a 1-based `?` ordinal against the scope chain.
func (e *env) param(ord int) (model.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if s.params != nil {
			if ord >= 1 && ord <= len(s.params) {
				return s.params[ord-1], true
			}
			return nil, false
		}
	}
	return nil, false
}

func (e *env) lookup(name string) (*binding, bool) {
	for s := e; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

func (e *env) bind(name string, b *binding) { e.vars[name] = b }

// ParseTimeValue is the default ASOF literal convention: Int values
// are raw timestamps (logical ticks or nanoseconds), Time values
// their instant, Str values dates in RFC3339, "2006-01-02 15:04:05"
// or "2006-01-02" form (interpreted in UTC).
func ParseTimeValue(v model.Value) (int64, error) {
	switch x := v.(type) {
	case model.Int:
		return int64(x), nil
	case model.Time:
		return int64(x), nil
	case model.Str:
		for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
			if t, err := time.Parse(layout, string(x)); err == nil {
				return t.UnixNano(), nil
			}
		}
		return 0, fmt.Errorf("exec: cannot parse timestamp %q", string(x))
	}
	return 0, fmt.Errorf("exec: cannot use %v as a timestamp", v)
}
