package exec

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/sql"
)

// coerceValue converts a literal expression (possibly a nested
// TupleLit/TableLit) into a model value of the expected type.
// Integers widen to floats and strings parse into times; an empty
// table literal matches either ordering.
func (e *Executor) coerceValue(x sql.Expr, typ model.Type, en *env) (model.Value, error) {
	if typ.Kind == model.KindTable {
		tl, ok := x.(*sql.TableLit)
		if !ok {
			return nil, fmt.Errorf("exec: expected a table literal for %s", typ)
		}
		if tl.Ordered != typ.Table.Ordered && len(tl.Rows) > 0 {
			return nil, fmt.Errorf("exec: ordering mismatch: literal %v, type %s", tl.Ordered, typ)
		}
		out := &model.Table{Ordered: typ.Table.Ordered}
		for _, row := range tl.Rows {
			tup, err := e.coerceTuple(row, typ.Table, en)
			if err != nil {
				return nil, err
			}
			out.Append(tup)
		}
		return out, nil
	}
	v, err := e.evalExpr(x, en)
	if err != nil {
		return nil, err
	}
	a, err := v.asAtom()
	if err != nil {
		return nil, err
	}
	return coerceAtom(a, typ.Kind)
}

func coerceAtom(a model.Value, k model.Kind) (model.Value, error) {
	if model.IsNull(a) {
		return model.Null{}, nil
	}
	if a.Kind() == k {
		return a, nil
	}
	switch k {
	case model.KindFloat:
		if i, ok := a.(model.Int); ok {
			return model.Float(float64(i)), nil
		}
	case model.KindTime:
		ts, err := ParseTimeValue(a)
		if err == nil {
			return model.Time(ts), nil
		}
	}
	return nil, fmt.Errorf("exec: cannot use %s value %v as %s", a.Kind(), a, k)
}

// coerceTuple converts a TupleLit into a tuple of the level type.
func (e *Executor) coerceTuple(x sql.Expr, tt *model.TableType, en *env) (model.Tuple, error) {
	tl, ok := x.(*sql.TupleLit)
	if !ok {
		return nil, fmt.Errorf("exec: expected a tuple literal")
	}
	if len(tl.Elems) != len(tt.Attrs) {
		return nil, fmt.Errorf("exec: tuple literal has %d values, type %s wants %d", len(tl.Elems), tt, len(tt.Attrs))
	}
	tup := make(model.Tuple, len(tt.Attrs))
	for i, attr := range tt.Attrs {
		v, err := e.coerceValue(tl.Elems[i], attr.Type, en)
		if err != nil {
			return nil, fmt.Errorf("exec: attribute %q: %w", attr.Name, err)
		}
		tup[i] = v
	}
	return tup, nil
}

// ExecInsert runs an INSERT statement, returning the number of
// inserted tuples/members.
func (e *Executor) ExecInsert(ctx context.Context, ins *sql.Insert) (int, error) {
	return e.ExecInsertArgs(ctx, ins, nil)
}

// ExecInsertArgs is ExecInsert with bound `?` parameter values.
func (e *Executor) ExecInsertArgs(ctx context.Context, ins *sql.Insert, params []model.Value) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ins.Table != "" {
		t, ok := e.RT.Table(ins.Table)
		if !ok {
			return 0, fmt.Errorf("exec: unknown table %q", ins.Table)
		}
		n := 0
		for _, row := range ins.Rows {
			tup, err := e.coerceTuple(row, t.Type, rootEnv(params))
			if err != nil {
				return n, err
			}
			if err := e.RT.InsertTuple(t, tup); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	// Subtable insert: INSERT INTO path FROM ... WHERE ... VALUES ...
	type target struct {
		tbl   *catalog.Table
		ref   page.TID
		steps []object.Step
		attr  int
		tt    *model.TableType
	}
	var targets []target
	scope := rootEnv(params)
	err := e.forEach(ctx, ins.From, scope, nil, func() error {
		if ins.Where != nil {
			ok, err := e.evalCond(ins.Where, scope)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		tbl, memberType, prov, err := e.evalFromPath(ins.Path, scope)
		if err != nil {
			return err
		}
		_ = tbl
		if prov == nil {
			return fmt.Errorf("exec: INSERT target %s is not updatable (no stored provenance)", ins.Path)
		}
		targets = append(targets, target{
			tbl: prov.tbl, ref: prov.ref,
			steps: append([]object.Step(nil), prov.steps...),
			attr:  prov.attr, tt: memberType,
		})
		return nil
	})
	if err != nil {
		return 0, err
	}
	targets = dedupeTargets(targets)
	n := 0
	for _, tg := range targets {
		for _, row := range ins.Rows {
			member, err := e.coerceTuple(row, tg.tt, rootEnv(params))
			if err != nil {
				return n, err
			}
			if err := e.RT.InsertMember(tg.tbl, tg.ref, tg.steps, tg.attr, member); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

func dedupeTargets[T any](ts []T) []T {
	seen := map[string]bool{}
	out := ts[:0]
	for _, t := range ts {
		k := fmt.Sprintf("%+v", t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// ExecDelete runs a DELETE statement: the target variable's bindings
// are collected during iteration and removed afterwards — whole
// objects when the variable ranges over a stored table, subtable
// members when it ranges over a subtable (deleting "arbitrary parts
// of complex objects", §4.1).
func (e *Executor) ExecDelete(ctx context.Context, del *sql.Delete) (int, error) {
	return e.ExecDeleteArgs(ctx, del, nil)
}

// ExecDeleteArgs is ExecDelete with bound `?` parameter values.
func (e *Executor) ExecDeleteArgs(ctx context.Context, del *sql.Delete, params []model.Value) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type victim struct {
		tbl   *catalog.Table
		ref   page.TID
		steps []object.Step
	}
	var victims []victim
	scope := rootEnv(params)
	err := e.forEach(ctx, del.From, scope, nil, func() error {
		if del.Where != nil {
			ok, err := e.evalCond(del.Where, scope)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		b, ok := scope.lookup(del.Var)
		if !ok {
			return fmt.Errorf("exec: DELETE variable %q is not bound", del.Var)
		}
		if b.tbl == nil {
			return fmt.Errorf("exec: DELETE target %q has no stored provenance", del.Var)
		}
		victims = append(victims, victim{tbl: b.tbl, ref: b.ref, steps: append([]object.Step(nil), b.steps...)})
		return nil
	})
	if err != nil {
		return 0, err
	}
	victims = dedupeTargets(victims)
	// Delete nested members before whole objects, and members of the
	// same subtable in descending position order so earlier positions
	// stay valid.
	sort.SliceStable(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if len(a.steps) != len(b.steps) {
			return len(a.steps) > len(b.steps)
		}
		for k := range a.steps {
			if a.steps[k].Pos != b.steps[k].Pos {
				return a.steps[k].Pos > b.steps[k].Pos
			}
		}
		return false
	})
	n := 0
	for _, v := range victims {
		if len(v.steps) == 0 {
			if err := e.RT.DeleteTuple(v.tbl, v.ref); err != nil {
				return n, err
			}
		} else {
			last := v.steps[len(v.steps)-1]
			parent := v.steps[:len(v.steps)-1]
			if err := e.RT.DeleteMember(v.tbl, v.ref, parent, last.Attr, last.Pos); err != nil {
				return n, err
			}
		}
		n++
	}
	return n, nil
}

// ExecUpdate runs an UPDATE statement against the atomic attributes
// of the target variable's level.
func (e *Executor) ExecUpdate(ctx context.Context, upd *sql.Update) (int, error) {
	return e.ExecUpdateArgs(ctx, upd, nil)
}

// ExecUpdateArgs is ExecUpdate with bound `?` parameter values.
func (e *Executor) ExecUpdateArgs(ctx context.Context, upd *sql.Update, params []model.Value) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type change struct {
		tbl   *catalog.Table
		ref   page.TID
		steps []object.Step
		vals  []model.Value
	}
	var changes []change
	scope := rootEnv(params)
	err := e.forEach(ctx, upd.From, scope, nil, func() error {
		if upd.Where != nil {
			ok, err := e.evalCond(upd.Where, scope)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		b, ok := scope.lookup(upd.Var)
		if !ok {
			return fmt.Errorf("exec: UPDATE variable %q is not bound", upd.Var)
		}
		if b.tbl == nil {
			return fmt.Errorf("exec: UPDATE target %q has no stored provenance", upd.Var)
		}
		// Current atomic values of the level, then apply SET clauses.
		atomIdx := b.tt.AtomicIndexes()
		vals := make([]model.Value, len(atomIdx))
		for i, ai := range atomIdx {
			vals[i] = b.tup[ai]
		}
		for _, set := range upd.Set {
			ai := b.tt.AttrIndex(set.Attr)
			if ai < 0 {
				return fmt.Errorf("exec: no attribute %q in %s", set.Attr, b.tt)
			}
			if b.tt.Attrs[ai].Type.Kind == model.KindTable {
				return fmt.Errorf("exec: SET %s: table-valued attributes are updated with INSERT INTO/DELETE on the subtable", set.Attr)
			}
			v, err := e.evalExpr(set.Expr, scope)
			if err != nil {
				return err
			}
			a, err := v.asAtom()
			if err != nil {
				return err
			}
			a, err = coerceAtom(a, b.tt.Attrs[ai].Type.Kind)
			if err != nil {
				return err
			}
			pos := 0
			for _, j := range atomIdx {
				if j == ai {
					vals[pos] = a
					break
				}
				pos++
			}
		}
		changes = append(changes, change{tbl: b.tbl, ref: b.ref, steps: append([]object.Step(nil), b.steps...), vals: vals})
		return nil
	})
	if err != nil {
		return 0, err
	}
	changes = dedupeTargets(changes)
	for _, c := range changes {
		if err := e.RT.UpdateAtoms(c.tbl, c.ref, c.steps, c.vals); err != nil {
			return 0, err
		}
	}
	return len(changes), nil
}
