package exec

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/sql"
)

// Query evaluates a top-level select and returns the result table
// with its inferred schema. The context is checked once per range
// variable binding, so cancellation and deadlines interrupt long
// scans promptly.
func (e *Executor) Query(ctx context.Context, sel *sql.Select) (*model.Table, *model.TableType, error) {
	return e.QueryArgs(ctx, sel, nil)
}

// QueryArgs is Query with bound `?` parameter values (positional,
// 1-based ordinals).
func (e *Executor) QueryArgs(ctx context.Context, sel *sql.Select, params []model.Value) (*model.Table, *model.TableType, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.selectIn(ctx, sel, rootEnv(params), true)
}

// selectIn evaluates a select block in an outer environment by
// opening a streaming cursor and draining it. planning enables index
// access paths (only sensible for blocks over stored tables).
func (e *Executor) selectIn(ctx context.Context, sel *sql.Select, outer *env, planning bool) (*model.Table, *model.TableType, error) {
	c, err := e.openCursor(ctx, sel, outer, planning)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	out := &model.Table{Ordered: c.tt.Ordered}
	for {
		tup, ok, err := c.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return out, c.tt, nil
		}
		out.Append(tup)
	}
}

// forEach performs the nested-loop binding of range variables: "a
// good mental model ... is to associate them with a loop which runs
// over all tuples of the relation they are bound to" (§3). It pulls
// complete bindings from a pipeline (full object reads — DML callers
// mutate through the bindings) and invokes body once per binding. The
// context is checked once per binding, so a cancelled scan stops
// within one tuple's worth of work, with no pages left pinned.
func (e *Executor) forEach(ctx context.Context, items []sql.FromItem, scope *env, cands map[int]*Candidates, body func() error) error {
	p := newPipeline(e, ctx, items, scope, cands, nil)
	defer p.close()
	for {
		ok, err := p.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := body(); err != nil {
			return err
		}
	}
}

// provenance describes where a FROM path's members live inside a
// stored object, enabling DML through the bound variable.
type provenance struct {
	tbl   *catalog.Table
	ref   page.TID
	steps []object.Step
	attr  int
	asof  int64
}

// evalFromPath evaluates a FROM path to the table to iterate, its
// member type, and — when the base variable is bound to a stored
// object and every traversal is positional — the provenance needed to
// mutate through the new variable.
func (e *Executor) evalFromPath(p *sql.PathExpr, scope *env) (*model.Table, *model.TableType, *provenance, error) {
	b, ok := scope.lookup(p.Var)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exec: unknown variable %q", p.Var)
	}
	cur := value{tup: b.tup, tt: b.tt}
	var prov *provenance
	if b.tbl != nil {
		prov = &provenance{tbl: b.tbl, ref: b.ref, steps: append([]object.Step(nil), b.steps...), asof: b.asof}
	}
	pendingAttr := -1 // table attribute awaiting a position
	for _, st := range p.Steps {
		if cur.isNull() {
			return nil, nil, nil, nil
		}
		if st.Name != "" {
			if !cur.isTuple() {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: attribute %q applied to a non-tuple", p, st.Name)
			}
			ai := cur.tt.AttrIndex(st.Name)
			if ai < 0 {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: no attribute %q in %s", p, st.Name, cur.tt)
			}
			attr := cur.tt.Attrs[ai]
			v := cur.tup[ai]
			if attr.Type.Kind == model.KindTable {
				pendingAttr = ai
				cur = value{atom: v, tt: attr.Type.Table}
			} else {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: %q is atomic", p, st.Name)
			}
			continue
		}
		tbl, ok := cur.atom.(*model.Table)
		if !ok {
			return nil, nil, nil, fmt.Errorf("exec: FROM %s: [%d] applied to a non-table", p, st.Index)
		}
		if st.Index > tbl.Len() {
			return nil, nil, nil, nil
		}
		if prov != nil && pendingAttr >= 0 {
			prov.steps = append(prov.steps, object.Step{Attr: pendingAttr, Pos: st.Index - 1})
		}
		pendingAttr = -1
		cur = value{tup: tbl.Tuples[st.Index-1], tt: cur.tt}
	}
	if cur.isTuple() || cur.atom == nil {
		return nil, nil, nil, fmt.Errorf("exec: FROM %s does not denote a table", p)
	}
	tbl, ok := cur.atom.(*model.Table)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exec: FROM %s does not denote a table", p)
	}
	if prov != nil {
		if pendingAttr < 0 {
			prov = nil // path did not end in an attribute traversal
		} else {
			prov.attr = pendingAttr
		}
	}
	return tbl, cur.tt, prov, nil
}

// buildResult constructs one result tuple for the current bindings.
func (e *Executor) buildResult(ctx context.Context, sel *sql.Select, rt *model.TableType, scope *env) (model.Tuple, error) {
	if sel.Star {
		b, _ := scope.lookup(sel.From[0].Var)
		return b.tup.Clone(), nil
	}
	tup := make(model.Tuple, len(sel.Items))
	for i, item := range sel.Items {
		if item.Sub != nil {
			sub, _, err := e.selectIn(ctx, item.Sub, scope, false)
			if err != nil {
				return nil, err
			}
			tup[i] = sub
			continue
		}
		v, err := e.evalExpr(item.Expr, scope)
		if err != nil {
			return nil, err
		}
		a, err := v.asAtom()
		if err != nil {
			return nil, err
		}
		if t, ok := a.(*model.Table); ok {
			a = t.Clone()
		}
		tup[i] = a
	}
	return tup, nil
}
