package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/subtuple"
)

// Query evaluates a top-level select and returns the result table
// with its inferred schema. The context is checked once per range
// variable binding, so cancellation and deadlines interrupt long
// scans promptly.
func (e *Executor) Query(ctx context.Context, sel *sql.Select) (*model.Table, *model.TableType, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.selectIn(ctx, sel, newEnv(nil), true)
}

// selectIn evaluates a select block in an outer environment.
// planning enables index access paths (only sensible for blocks over
// stored tables).
func (e *Executor) selectIn(ctx context.Context, sel *sql.Select, outer *env, planning bool) (*model.Table, *model.TableType, error) {
	resultType, err := e.inferSelect(sel, typeEnvFrom(outer))
	if err != nil {
		return nil, nil, err
	}
	var cands map[int]*Candidates
	if planning && e.Plan != nil {
		cands = e.Plan(sel, e.RT)
		if e.Trace != nil {
			for i, c := range cands {
				if c != nil {
					e.Trace(fmt.Sprintf("from item %d (%s): %s (%d candidates)", i, sel.From[i].Var, c.Why, len(c.Refs)))
				}
			}
		}
	}
	out := &model.Table{Ordered: resultType.Ordered}
	type keyed struct {
		tup  model.Tuple
		keys []model.Value
	}
	var rows []keyed
	scope := newEnv(outer)
	err = e.forEach(ctx, sel.From, 0, scope, cands, func() error {
		if sel.Where != nil {
			ok, err := e.evalCond(sel.Where, scope)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		tup, err := e.buildResult(ctx, sel, resultType, scope)
		if err != nil {
			return err
		}
		k := keyed{tup: tup}
		for _, ob := range sel.OrderBy {
			v, err := e.evalExpr(ob.Expr, scope)
			if err != nil {
				return err
			}
			a, err := v.asAtom()
			if err != nil {
				return err
			}
			k.keys = append(k.keys, a)
		}
		rows = append(rows, k)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(sel.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for k, ob := range sel.OrderBy {
				c, err := model.Compare(rows[i].keys[k], rows[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, nil, sortErr
		}
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		if sel.Distinct {
			key := model.CanonicalTuple(r.tup)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out.Append(r.tup)
	}
	return out, resultType, nil
}

// forEach performs the nested-loop binding of range variables: "a
// good mental model ... is to associate them with a loop which runs
// over all tuples of the relation they are bound to" (§3). The
// context is checked on every entry — once per tuple binding — so a
// cancelled scan stops within one tuple's worth of work, with no
// pages left pinned (scan callbacks run with their page unpinned).
func (e *Executor) forEach(ctx context.Context, items []sql.FromItem, i int, scope *env, cands map[int]*Candidates, body func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if i == len(items) {
		return body()
	}
	it := items[i]
	asof := int64(0)
	if it.AsOf != nil {
		lit, ok := it.AsOf.(*sql.Literal)
		if !ok {
			return fmt.Errorf("exec: ASOF requires a literal timestamp")
		}
		var err error
		asof, err = e.RT.ParseTime(lit.Val)
		if err != nil {
			return err
		}
	}
	if it.Source.Table != "" {
		t, ok := e.RT.Table(it.Source.Table)
		if !ok {
			return fmt.Errorf("exec: unknown table %q", it.Source.Table)
		}
		if asof != 0 && !t.Versioned {
			return fmt.Errorf("exec: table %q is not versioned; ASOF unavailable", t.Name)
		}
		visit := func(ref page.TID, tup model.Tuple) error {
			scope.bind(it.Var, &binding{tt: t.Type, tup: tup, tbl: t, ref: ref, asof: asof})
			return e.forEach(ctx, items, i+1, scope, cands, body)
		}
		if c := cands[i]; c != nil {
			for _, ref := range c.Refs {
				tup, err := e.RT.ReadRef(t, ref, asof)
				if err != nil {
					if errors.Is(err, subtuple.ErrNotFound) {
						continue // candidate vanished between planning and execution
					}
					return err
				}
				if err := visit(ref, tup); err != nil {
					return err
				}
			}
			return nil
		}
		return e.RT.ScanTable(t, asof, visit)
	}
	// Path source: a table-valued attribute of an outer variable.
	tbl, memberType, prov, err := e.evalFromPath(it.Source.Path, scope)
	if err != nil {
		return err
	}
	if tbl == nil {
		return nil // null subtable: no bindings
	}
	for pos, tup := range tbl.Tuples {
		b := &binding{tt: memberType, tup: tup}
		if prov != nil {
			b.tbl = prov.tbl
			b.ref = prov.ref
			b.steps = append(append([]object.Step(nil), prov.steps...), object.Step{Attr: prov.attr, Pos: pos})
			b.asof = prov.asof
		}
		scope.bind(it.Var, b)
		if err := e.forEach(ctx, items, i+1, scope, cands, body); err != nil {
			return err
		}
	}
	return nil
}

// provenance describes where a FROM path's members live inside a
// stored object, enabling DML through the bound variable.
type provenance struct {
	tbl   *catalog.Table
	ref   page.TID
	steps []object.Step
	attr  int
	asof  int64
}

// evalFromPath evaluates a FROM path to the table to iterate, its
// member type, and — when the base variable is bound to a stored
// object and every traversal is positional — the provenance needed to
// mutate through the new variable.
func (e *Executor) evalFromPath(p *sql.PathExpr, scope *env) (*model.Table, *model.TableType, *provenance, error) {
	b, ok := scope.lookup(p.Var)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exec: unknown variable %q", p.Var)
	}
	cur := value{tup: b.tup, tt: b.tt}
	var prov *provenance
	if b.tbl != nil {
		prov = &provenance{tbl: b.tbl, ref: b.ref, steps: append([]object.Step(nil), b.steps...), asof: b.asof}
	}
	pendingAttr := -1 // table attribute awaiting a position
	for _, st := range p.Steps {
		if cur.isNull() {
			return nil, nil, nil, nil
		}
		if st.Name != "" {
			if !cur.isTuple() {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: attribute %q applied to a non-tuple", p, st.Name)
			}
			ai := cur.tt.AttrIndex(st.Name)
			if ai < 0 {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: no attribute %q in %s", p, st.Name, cur.tt)
			}
			attr := cur.tt.Attrs[ai]
			v := cur.tup[ai]
			if attr.Type.Kind == model.KindTable {
				pendingAttr = ai
				cur = value{atom: v, tt: attr.Type.Table}
			} else {
				return nil, nil, nil, fmt.Errorf("exec: FROM %s: %q is atomic", p, st.Name)
			}
			continue
		}
		tbl, ok := cur.atom.(*model.Table)
		if !ok {
			return nil, nil, nil, fmt.Errorf("exec: FROM %s: [%d] applied to a non-table", p, st.Index)
		}
		if st.Index > tbl.Len() {
			return nil, nil, nil, nil
		}
		if prov != nil && pendingAttr >= 0 {
			prov.steps = append(prov.steps, object.Step{Attr: pendingAttr, Pos: st.Index - 1})
		}
		pendingAttr = -1
		cur = value{tup: tbl.Tuples[st.Index-1], tt: cur.tt}
	}
	if cur.isTuple() || cur.atom == nil {
		return nil, nil, nil, fmt.Errorf("exec: FROM %s does not denote a table", p)
	}
	tbl, ok := cur.atom.(*model.Table)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exec: FROM %s does not denote a table", p)
	}
	if prov != nil {
		if pendingAttr < 0 {
			prov = nil // path did not end in an attribute traversal
		} else {
			prov.attr = pendingAttr
		}
	}
	return tbl, cur.tt, prov, nil
}

// buildResult constructs one result tuple for the current bindings.
func (e *Executor) buildResult(ctx context.Context, sel *sql.Select, rt *model.TableType, scope *env) (model.Tuple, error) {
	if sel.Star {
		b, _ := scope.lookup(sel.From[0].Var)
		return b.tup.Clone(), nil
	}
	tup := make(model.Tuple, len(sel.Items))
	for i, item := range sel.Items {
		if item.Sub != nil {
			sub, _, err := e.selectIn(ctx, item.Sub, scope, false)
			if err != nil {
				return nil, err
			}
			tup[i] = sub
			continue
		}
		v, err := e.evalExpr(item.Expr, scope)
		if err != nil {
			return nil, err
		}
		a, err := v.asAtom()
		if err != nil {
			return nil, err
		}
		if t, ok := a.(*model.Table); ok {
			a = t.Clone()
		}
		tup[i] = a
	}
	return tup, nil
}
