// Package faultsim is a deterministic soft-fault injection harness
// for the storage stack: unlike its sibling crashsim, which kills the
// whole "machine", faultsim makes individual I/O operations fail and
// checks that the engine contains the damage at the statement
// boundary — transient bursts are absorbed by bounded retries, harder
// faults abort exactly one statement and roll it back, and the
// database keeps serving committed data without a reopen.
//
// The pieces:
//
//   - Injector counts I/O operations flowing through the wrappers and
//     fails the ones inside a seeded burst window (faultsim.go);
//   - WrapStore and WrapWAL interpose the injector between the engine
//     and a backing segment.Store / wal.File — typically a crashsim
//     Session, so a run can end with a power cut on top of the soft
//     faults (wrap.go);
//   - RunFaults drives one workload with a fault burst at a chosen
//     operation, comparing the live engine against a clean oracle
//     after every aborted statement, then kills the session and
//     re-verifies the crash-recovery invariants (harness.go).
package faultsim

import (
	"fmt"
	"strings"
	"sync"
)

// OpKind classifies the I/O operations the wrappers intercept; Arm
// takes a bitmask of kinds so a test can, for example, fault only the
// write side and leave concurrent readers untouched.
type OpKind uint32

const (
	// OpRead is a segment page read.
	OpRead OpKind = 1 << iota
	// OpWrite is a segment page write.
	OpWrite
	// OpSync is a segment sync.
	OpSync
	// OpWALWrite is a log append reaching the file.
	OpWALWrite
	// OpWALSync is a log sync.
	OpWALSync
	// OpWALRead is a log read (recovery and rollback replay).
	OpWALRead
)

// OpAll masks every intercepted operation.
const OpAll = OpRead | OpWrite | OpSync | OpWALWrite | OpWALSync | OpWALRead

// OpMutate masks the mutating operations only: the kinds a read-only
// statement never needs unless it evicts a dirty page.
const OpMutate = OpWrite | OpSync | OpWALWrite | OpWALSync

func (k OpKind) String() string {
	names := []struct {
		bit  OpKind
		name string
	}{
		{OpRead, "read"}, {OpWrite, "write"}, {OpSync, "sync"},
		{OpWALWrite, "walwrite"}, {OpWALSync, "walsync"}, {OpWALRead, "walread"},
	}
	var parts []string
	for _, n := range names {
		if k&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Error is an injected I/O fault. It implements
// segment.TransientError, so the engine's retry layer distinguishes
// bursts that should be absorbed from faults that must abort the
// statement.
type Error struct {
	// Kind is the faulted operation.
	Kind OpKind
	// Op is the 1-based position of the faulted operation in the
	// injector's sequence.
	Op int64
	// Persistent marks a fault the retry layer must not absorb.
	Persistent bool
}

func (e *Error) Error() string {
	kind := "transient"
	if e.Persistent {
		kind = "persistent"
	}
	return fmt.Sprintf("faultsim: injected %s %s fault at op %d", kind, e.Kind, e.Op)
}

// Transient reports whether bounded retries may absorb this fault.
func (e *Error) Transient() bool { return !e.Persistent }

// Injector fails the I/O operations inside an armed burst window.
// Operations are counted across every wrapper sharing the injector;
// the window covers positions [at, at+burst) of that sequence, and an
// operation in the window whose kind is in the mask fails. A freshly
// constructed injector is unarmed and merely counts.
type Injector struct {
	mu        sync.Mutex
	ops       int64
	at        int64 // 1-based window start; 0 = unarmed
	burst     int64
	transient bool
	mask      OpKind
	faults    int64
}

// NewInjector returns an unarmed injector.
func NewInjector() *Injector { return &Injector{} }

// Arm schedules a fault burst: the burst operations starting at the
// at-th (1-based) subsequent position of the op sequence fail, when
// their kind is in mask. transient selects whether the injected
// errors admit retry. at <= 0 disarms. Arm may be called while the
// engine is running; the window applies from the current position.
func (in *Injector) Arm(at, burst int64, transient bool, mask OpKind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if at <= 0 {
		in.at = 0
		return
	}
	in.at = at
	in.burst = burst
	in.transient = transient
	in.mask = mask
}

// step accounts one operation and decides whether it faults.
func (in *Injector) step(kind OpKind) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.at > 0 && in.ops >= in.at && in.ops < in.at+in.burst && in.mask&kind != 0 {
		in.faults++
		return &Error{Kind: kind, Op: in.ops, Persistent: !in.transient}
	}
	return nil
}

// Ops returns the number of operations observed so far.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Faults returns the number of operations failed so far.
func (in *Injector) Faults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}
