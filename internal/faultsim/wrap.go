package faultsim

import (
	"repro/internal/segment"
	"repro/internal/wal"
)

// WrapStore interposes the injector between the engine and a backing
// store: ReadPage, WritePage and Sync become fault points. The engine
// layers its retry wrapper on top, so the composition under test is
// retry(faultsim(backing store)).
func (in *Injector) WrapStore(st segment.Store) segment.Store {
	return &store{in: in, st: st}
}

type store struct {
	in *Injector
	st segment.Store
}

func (s *store) ReadPage(no uint32, buf []byte) error {
	if err := s.in.step(OpRead); err != nil {
		return err
	}
	return s.st.ReadPage(no, buf)
}

func (s *store) WritePage(no uint32, buf []byte) error {
	if err := s.in.step(OpWrite); err != nil {
		return err
	}
	return s.st.WritePage(no, buf)
}

func (s *store) Sync() error {
	if err := s.in.step(OpSync); err != nil {
		return err
	}
	return s.st.Sync()
}

func (s *store) PageCount() uint32 { return s.st.PageCount() }
func (s *store) Allocate() uint32  { return s.st.Allocate() }
func (s *store) Close() error      { return s.st.Close() }

// WrapWAL interposes the injector between the log and its backing
// file: Write, Sync and ReadAt become fault points. Seek and Truncate
// pass through — they are the rollback path's own tools, and faulting
// them would only test that a rollback can fail, which the poisoned
// fatalErr path covers directly.
func (in *Injector) WrapWAL(f wal.File) wal.File {
	return &file{in: in, f: f}
}

type file struct {
	in *Injector
	f  wal.File
}

func (w *file) Write(p []byte) (int, error) {
	if err := w.in.step(OpWALWrite); err != nil {
		return 0, err
	}
	return w.f.Write(p)
}

func (w *file) Sync() error {
	if err := w.in.step(OpWALSync); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *file) ReadAt(p []byte, off int64) (int, error) {
	if err := w.in.step(OpWALRead); err != nil {
		return 0, err
	}
	return w.f.ReadAt(p, off)
}

func (w *file) Seek(offset int64, whence int) (int64, error) {
	return w.f.Seek(offset, whence)
}

func (w *file) Truncate(size int64) error { return w.f.Truncate(size) }
func (w *file) Close() error              { return w.f.Close() }
