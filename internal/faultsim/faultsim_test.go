package faultsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/crashsim"
	"repro/internal/segment"
)

// TestSoftChaosMatrix sweeps seeded fault windows across the whole
// workload: for each workload seed it measures the total number of
// wrapped I/O operations, then arms bursts at operations striding
// that range — absorbed transient blips, statement-killing transient
// storms, and persistent failures — verifying statement containment
// against the oracle after every abort and finishing each run with a
// power cut plus full recovery audit.
func TestSoftChaosMatrix(t *testing.T) {
	iterations := 160
	if testing.Short() {
		iterations = 24
	}
	shapes := []struct {
		burst     int64
		transient bool
	}{
		{1, true}, {4, true}, {1, false}, {2, true},
		{5, true}, {1, false}, {7, true}, {3, true},
	}
	var total int64
	wseed := int64(-1)
	for i := 0; i < iterations; i++ {
		ws := int64(1 + i/8) // fresh workload every 8 fault points
		if ws != wseed {
			wseed = ws
			var err error
			total, err = TotalOps(wseed)
			if err != nil {
				t.Fatalf("workload %d probe: %v", wseed, err)
			}
			if total < 20 {
				t.Fatalf("workload %d issues only %d wrapped ops; harness miswired", wseed, total)
			}
		}
		at := 1 + (int64(i)*2654435761)%total
		sh := shapes[i%len(shapes)]
		if err := RunFaults(wseed, at, sh.burst, sh.transient); err != nil {
			t.Fatalf("workload %d at %d/%d burst %d transient %v: %v",
				wseed, at, total, sh.burst, sh.transient, err)
		}
	}
}

// TestInjectorWindow pins the window semantics: operations are
// counted across kinds, only masked kinds inside [at, at+burst)
// fault, and the errors carry the transient flag the retry layer
// keys on.
func TestInjectorWindow(t *testing.T) {
	in := NewInjector()
	in.Arm(3, 2, true, OpWrite)
	seq := []OpKind{OpRead, OpWrite, OpRead, OpWrite, OpWrite, OpWrite}
	var failed []int
	for i, k := range seq {
		if err := in.step(k); err != nil {
			failed = append(failed, i)
			if !segment.IsTransient(err) {
				t.Fatalf("op %d: armed transient, got %v", i, err)
			}
		}
	}
	// Window is ops 3..4 (1-based): op index 2 is an unmasked read
	// (consumes a slot without faulting), op index 3 is a masked write.
	if len(failed) != 1 || failed[0] != 3 {
		t.Fatalf("faulted ops %v, want [3]", failed)
	}
	if in.Ops() != int64(len(seq)) || in.Faults() != 1 {
		t.Fatalf("ops=%d faults=%d, want %d and 1", in.Ops(), in.Faults(), len(seq))
	}

	in = NewInjector()
	in.Arm(1, 1, false, OpAll)
	err := in.step(OpSync)
	if err == nil || segment.IsTransient(err) {
		t.Fatalf("persistent fault classified transient: %v", err)
	}
}

// Directed single points of the matrix, kept fast so `-short` runs
// still cover each regime: a burst the retries absorb invisibly, a
// persistent fault that must abort exactly one statement, and a
// transient storm long enough to exhaust the retry budget.
func TestDirectedFaults(t *testing.T) {
	total, err := TotalOps(5)
	if err != nil {
		t.Fatal(err)
	}
	at := total / 2
	for _, tc := range []struct {
		burst     int64
		transient bool
	}{
		{2, true},                // absorbed
		{1, false},               // persistent, aborts
		{MaxTransientBurst, true}, // retry budget exhausted, aborts, rollback drains the tail
	} {
		if err := RunFaults(5, at, tc.burst, tc.transient); err != nil {
			t.Fatalf("at %d burst %d transient %v: %v", at, tc.burst, tc.transient, err)
		}
	}
}

// TestConcurrentReadersDuringAbort runs reader goroutines against the
// engine while a writer repeatedly fails mid-INSERT under injected
// write-side faults and rolls back. Built for -race: it checks that
// statement rollback (which swaps the runtime structures under the
// exclusive statement lock) never races with concurrent queries, that
// readers only ever observe committed states (row counts are
// monotonic per observer), and that the final state matches the
// writer's successful inserts exactly.
func TestConcurrentReadersDuringAbort(t *testing.T) {
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	s := crashsim.NewDisk().Open(7, -1)
	inj := NewInjector()
	eng, err := openLive(s, inj, clock, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`CREATE TABLE EMP (ENO INT, NAME STRING, SAL INT)`); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 20; i++ {
		if _, err := eng.Exec(fmt.Sprintf(`INSERT INTO EMP VALUES (%d, 'SEED', %d)`, i, i)); err != nil {
			t.Fatal(err)
		}
		want++
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tbl, _, err := eng.Query(`SELECT x.ENO FROM x IN EMP`)
				if err != nil {
					// A reader can fail when evicting a dirty page runs
					// into the fault window; that must stay an error,
					// never a crash or a torn result.
					continue
				}
				if tbl.Len() < last {
					t.Errorf("reader saw row count drop %d -> %d: uncommitted or rolled-back state leaked", last, tbl.Len())
					return
				}
				last = tbl.Len()
			}
		}()
	}

	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	aborted := 0
	for i := 0; i < rounds; i++ {
		// Fault only the write side, a few operations ahead, so reader
		// page reads never fault directly. Bursts stay within
		// MaxTransientBurst so a failed statement always leaves enough
		// retry headroom for its own rollback, even when readers
		// consume window slots.
		burst, transient := int64(5), true
		if i%3 == 2 {
			burst, transient = 1, false
		}
		inj.Arm(inj.Ops()+2+int64(i%7), burst, transient, OpMutate)
		if _, err := eng.Exec(fmt.Sprintf(`INSERT INTO EMP VALUES (%d, 'W', %d)`, 1000+i, i)); err != nil {
			aborted++
		} else {
			want++
		}
	}
	inj.Arm(0, 0, false, 0)
	close(stop)
	wg.Wait()

	// One more insert after disarming: it heals any sticky log state a
	// racing reader left behind (first attempt may abort for that) and
	// proves the engine is still fully writable.
	if _, err := eng.Exec(`INSERT INTO EMP VALUES (999999, 'POST', 1)`); err != nil {
		if _, err := eng.Exec(`INSERT INTO EMP VALUES (999999, 'POST', 1)`); err != nil {
			t.Fatalf("post-fault insert failed twice: %v", err)
		}
	}
	want++

	tbl, _, err := eng.Query(`SELECT x.ENO FROM x IN EMP`)
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	if tbl.Len() != want {
		t.Fatalf("final row count %d, want %d (aborted %d of %d rounds)", tbl.Len(), want, aborted, rounds)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
