package faultsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/crashsim"
	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/wal"
)

// stmtCount is the length of the generated DML sequence per workload
// (the same seeded generator as the crash matrix).
const stmtCount = 40

// retryTries is the retry budget the harness configures. The burst
// arithmetic below depends on it: a transient burst shorter than
// retryTries is absorbed invisibly, a longer one fails the statement
// after retryTries faulted attempts and leaves at most
// retryTries-1 window operations to be drained by the rollback's own
// retries — so any transient burst up to 2*retryTries-1 must never
// poison the engine.
const retryTries = 4

// MaxTransientBurst is the longest transient burst RunFaults accepts:
// beyond 2*retryTries-1 the remainder of the window could exhaust the
// rollback's retries too, and a failed rollback legitimately poisons
// the database.
const MaxTransientBurst = 2*retryTries - 1

// openLive opens an engine whose every store and log operation flows
// through the injector before reaching the crashsim session, with the
// bounded-retry layer on top and a small pool so eviction steals
// uncommitted dirty pages mid-statement.
func openLive(s *crashsim.Session, inj *Injector, clock func() int64, pool int) (*engine.DB, error) {
	return engine.Open(engine.Options{
		PoolPages: pool,
		Clock:     clock,
		OpenStore: func(id segment.ID) (segment.Store, error) {
			st, err := s.OpenStore(id)
			if err != nil {
				return nil, err
			}
			return inj.WrapStore(st), nil
		},
		OpenWALFile: func() (wal.File, error) {
			f, err := s.OpenWALFile()
			if err != nil {
				return nil, err
			}
			return inj.WrapWAL(f), nil
		},
		Retry: segment.RetryPolicy{Tries: retryTries},
	})
}

// TotalOps runs the workload to completion with an unarmed injector
// and returns how many wrapped I/O operations it issues; the
// soft-chaos matrix sweeps fault windows across this range.
func TotalOps(wseed int64) (int64, error) {
	w := crashsim.NewWorkload(wseed, stmtCount)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	s := crashsim.NewDisk().Open(1, -1)
	inj := NewInjector()
	eng, err := openLive(s, inj, clock, 8)
	if err != nil {
		return 0, err
	}
	for _, stmt := range append(append([]string{}, w.Setup...), w.Stmts...) {
		if _, err := eng.Exec(stmt); err != nil {
			return 0, fmt.Errorf("faultsim: probe statement failed: %w\n%s", err, stmt)
		}
	}
	if err := eng.Close(); err != nil {
		return 0, err
	}
	return inj.Ops(), nil
}

// RunFaults executes one soft-chaos cycle: run the seeded workload
// with a fault burst armed at the at-th wrapped I/O operation, and
// check statement-level containment against a clean in-memory oracle
// executing the same statements:
//
//   - a statement that fails must leave the live engine exactly equal
//     to the oracle (which skips the failed statement) — without a
//     reopen;
//   - a transient burst shorter than the retry budget must be
//     absorbed: no open failure, no aborted statement;
//   - a burst hard enough to fail (persistent, or transient spanning
//     the whole retry budget) must surface somewhere — an aborted
//     statement or a failed open — never a wrong answer;
//   - after the workload the engine must still accept new statements.
//
// Finally the session is killed mid-flight (power cut on top of the
// soft faults), the disk settles with seeded torn/lost-write
// outcomes, and the recovered engine must pass every crash-recovery
// invariant and again equal the oracle.
func RunFaults(wseed, at, burst int64, transient bool) error {
	if transient && (burst < 1 || burst > MaxTransientBurst) {
		return fmt.Errorf("faultsim: transient burst %d out of range [1,%d]", burst, MaxTransientBurst)
	}
	if !transient && burst != 1 {
		// A persistent fault is never retried, so a window wider than
		// the faulted statement could also fail the rollback — which
		// correctly poisons the engine, but then there is no
		// containment left to verify.
		return fmt.Errorf("faultsim: persistent bursts must have length 1, got %d", burst)
	}

	w := crashsim.NewWorkload(wseed, stmtCount)
	all := append(append([]string{}, w.Setup...), w.Stmts...)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }

	// The oracle runs the statements the live engine manages to
	// commit, on a clean in-memory engine sharing the logical clock.
	oracle, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		return err
	}

	d := crashsim.NewDisk()
	s := d.Open(wseed*131+at, -1)
	inj := NewInjector()
	inj.Arm(at, burst, transient, OpAll)

	// The window can land inside the initial open (recovery I/O); a
	// failed open consumes at least one window operation, so retrying
	// a handful of times must get past it.
	var eng *engine.DB
	openFailed := false
	for attempt := 0; ; attempt++ {
		eng, err = openLive(s, inj, clock, 8)
		if err == nil {
			break
		}
		openFailed = true
		if inj.Faults() == 0 {
			return fmt.Errorf("faultsim: open failed without an injected fault: %w", err)
		}
		if attempt >= 4 {
			return fmt.Errorf("faultsim: open kept failing after the fault window: %w", err)
		}
	}

	aborted := 0
	for i, stmt := range all {
		if _, err := eng.Exec(stmt); err != nil {
			if inj.Faults() == 0 {
				return fmt.Errorf("faultsim: statement %d failed without an injected fault: %w\n%s", i, err, stmt)
			}
			aborted++
			// Containment: the failed statement must have been rolled
			// back completely, live, without a reopen.
			if diff := crashsim.CompareState(eng, oracle); diff != "" {
				return fmt.Errorf("faultsim: after aborting statement %d (%v) live state differs from oracle: %s", i, err, diff)
			}
			continue
		}
		if _, err := oracle.Exec(stmt); err != nil {
			return fmt.Errorf("faultsim: oracle rejected statement %d: %w\n%s", i, err, stmt)
		}
	}

	if transient && burst < retryTries && (openFailed || aborted > 0) {
		return fmt.Errorf("faultsim: transient burst %d < %d retries should have been absorbed (openFailed=%v aborted=%d)",
			burst, retryTries, openFailed, aborted)
	}
	if (!transient || burst >= retryTries) && inj.Faults() > 0 && !openFailed && aborted == 0 {
		return fmt.Errorf("faultsim: unabsorbable burst fired (%d faults) yet nothing failed", inj.Faults())
	}

	// The engine must remain fully usable after the faults: disarm and
	// run fresh DML. Early windows can abort the setup itself, so
	// recreate EMP if its CREATE was the victim.
	inj.Arm(0, 0, false, 0)
	post := []string{`INSERT INTO EMP VALUES (999999, 'POST', 1)`}
	if _, ok := eng.Catalog().Table("EMP"); !ok {
		post = append([]string{w.Setup[0]}, post...)
	}
	for _, stmt := range post {
		for _, e := range []*engine.DB{eng, oracle} {
			if _, err := e.Exec(stmt); err != nil {
				return fmt.Errorf("faultsim: post-fault statement failed: %w\n%s", err, stmt)
			}
		}
	}
	if diff := crashsim.CompareState(eng, oracle); diff != "" {
		return fmt.Errorf("faultsim: final live state differs from oracle: %s", diff)
	}

	// Power cut on top of the soft faults: every statement either
	// committed (synced) or rolled back, so the recovered state must
	// equal the oracle exactly, with every invariant intact.
	s.Kill()
	rs := d.Open(wseed*91+at+7, -1)
	eng2, err := engine.Open(engine.Options{
		PoolPages: 64, Clock: clock,
		OpenStore: rs.OpenStore, OpenWALFile: rs.OpenWALFile,
	})
	if err != nil {
		return fmt.Errorf("faultsim: recovery after kill failed: %w", err)
	}
	if err := crashsim.CheckInvariants(eng2); err != nil {
		return fmt.Errorf("faultsim: after kill and recovery: %w", err)
	}
	if diff := crashsim.CompareState(eng2, oracle); diff != "" {
		return fmt.Errorf("faultsim: recovered state differs from oracle: %s", diff)
	}
	return nil
}
