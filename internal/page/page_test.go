package page

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func newPage() *Page {
	p := View(make([]byte, Size))
	p.Init()
	return p
}

func TestInsertRead(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), {}, bytes.Repeat([]byte{7}, 100)}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Read(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %q want %q", s, got, recs[i])
		}
	}
}

func TestDeleteReusesSlot(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s0); err == nil {
		t.Error("read of deleted slot succeeded")
	}
	if p.Live(s0) {
		t.Error("deleted slot reported live")
	}
	s2, _ := p.Insert([]byte("c"))
	if s2 != s0 {
		t.Errorf("dead slot not reused: got %d want %d", s2, s0)
	}
	got, _ := p.Read(s1)
	if string(got) != "b" {
		t.Errorf("neighbor slot disturbed: %q", got)
	}
	if err := p.Delete(s0 + 100); err == nil {
		t.Error("delete of bogus slot succeeded")
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	p := newPage()
	s, _ := p.Insert(bytes.Repeat([]byte("x"), 50))
	other, _ := p.Insert([]byte("other"))
	if err := p.Update(s, []byte("small")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(s)
	if string(got) != "small" {
		t.Errorf("after shrink: %q", got)
	}
	big := bytes.Repeat([]byte("y"), 500)
	if err := p.Update(s, big); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, big) {
		t.Error("after grow: mismatch")
	}
	o, _ := p.Read(other)
	if string(o) != "other" {
		t.Errorf("other slot disturbed: %q", o)
	}
}

func TestUpdateNoSpace(t *testing.T) {
	p := newPage()
	s, err := p.Insert(bytes.Repeat([]byte("a"), 2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(bytes.Repeat([]byte("b"), 1900)); err != nil {
		t.Fatal(err)
	}
	err = p.Update(s, bytes.Repeat([]byte("c"), 2500))
	if err != ErrNoSpace {
		t.Fatalf("Update = %v, want ErrNoSpace", err)
	}
	// Original record must be intact after the failed grow.
	got, err := p.Read(s)
	if err != nil || len(got) != 2000 || got[0] != 'a' {
		t.Errorf("record damaged after failed update: len=%d err=%v", len(got), err)
	}
}

func TestInsertUntilFullThenCompact(t *testing.T) {
	p := newPage()
	var slots []uint16
	for {
		s, err := p.Insert(bytes.Repeat([]byte("z"), 64))
		if err == ErrNoSpace {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) < 50 {
		t.Fatalf("only %d records fit", len(slots))
	}
	// Delete every other record, then the freed space must be usable.
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	n := 0
	for {
		if _, err := p.Insert(bytes.Repeat([]byte("w"), 60)); err != nil {
			break
		}
		n++
	}
	if n < len(slots)/4 {
		t.Errorf("reclaimed space yielded only %d inserts", n)
	}
	// Survivors unharmed.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte("z"), 64)) {
			t.Fatalf("survivor %d damaged", slots[i])
		}
	}
}

func TestInsertAt(t *testing.T) {
	p := newPage()
	if err := p.InsertAt(3, []byte("three")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Errorf("NumSlots = %d, want 4", p.NumSlots())
	}
	got, err := p.Read(3)
	if err != nil || string(got) != "three" {
		t.Errorf("Read(3) = %q, %v", got, err)
	}
	for s := uint16(0); s < 3; s++ {
		if p.Live(s) {
			t.Errorf("slot %d unexpectedly live", s)
		}
	}
	if err := p.InsertAt(3, []byte("clash")); err == nil {
		t.Error("InsertAt occupied slot succeeded")
	}
	if err := p.InsertAt(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
}

func TestLSN(t *testing.T) {
	p := newPage()
	p.SetLSN(0xDEADBEEF01)
	if p.LSN() != 0xDEADBEEF01 {
		t.Error("LSN round trip failed")
	}
	s, _ := p.Insert([]byte("rec"))
	if p.LSN() != 0xDEADBEEF01 {
		t.Error("Insert clobbered LSN")
	}
	_ = s
}

func TestTIDEncoding(t *testing.T) {
	f := func(pg uint32, slot uint16) bool {
		b := AppendTID(nil, TID{Page: pg, Slot: slot})
		got, err := DecodeTID(b)
		return err == nil && got.Page == pg && got.Slot == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(pg, slot uint16) bool {
		b := AppendMiniTID(nil, MiniTID{Page: pg, Slot: slot})
		got, err := DecodeMiniTID(b)
		return err == nil && got.Page == pg && got.Slot == slot
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if _, err := DecodeTID([]byte{1, 2}); err == nil {
		t.Error("short TID accepted")
	}
	if EncodedMiniTIDLen >= EncodedTIDLen {
		t.Error("Mini TIDs must be smaller than TIDs (§4.1)")
	}
}

// Property: a random mix of operations never corrupts live records.
func TestPageOpsQuick(t *testing.T) {
	type op struct {
		Kind byte
		Size uint16
	}
	f := func(ops []op) bool {
		p := newPage()
		shadow := map[uint16][]byte{}
		seq := 0
		for _, o := range ops {
			size := int(o.Size % 512)
			switch o.Kind % 3 {
			case 0: // insert
				rec := bytes.Repeat([]byte{byte(seq)}, size)
				seq++
				s, err := p.Insert(rec)
				if err == ErrNoSpace {
					continue
				}
				if err != nil {
					return false
				}
				shadow[s] = rec
			case 1: // delete one existing
				for s := range shadow {
					if p.Delete(s) != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			case 2: // update one existing
				for s := range shadow {
					rec := bytes.Repeat([]byte{byte(seq)}, size)
					seq++
					err := p.Update(s, rec)
					if err == ErrNoSpace {
						break
					}
					if err != nil {
						return false
					}
					shadow[s] = rec
					break
				}
			}
		}
		for s, want := range shadow {
			got, err := p.Read(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViewPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("View accepted short buffer")
		}
	}()
	View(make([]byte, 10))
}

func ExampleTID_String() {
	fmt.Println(TID{Page: 3, Slot: 7})
	// Output: TID(3.7)
}
