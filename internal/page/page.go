// Package page implements fixed-size slotted pages and the two
// addressing units of the AIM-II storage layer (§4.1 of the paper):
//
//   - TID: a (page number, slot number) pair interpreted relative to
//     the beginning of a database segment, as in System R /As76/;
//   - MiniTID: a smaller (local page number, slot number) pair whose
//     page component is an index into the page list of a complex
//     object's local address space, not a segment page number.
//
// Records never change their slot number while they live on a page;
// in-page compaction moves record bytes but keeps slots stable, so
// TIDs and Mini TIDs stay valid, which the paper requires to keep
// Mini Directory pointers stable during DB processing.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/dberr"
)

// Size is the size of every database page in bytes.
const Size = 4096

// Header layout (bytes): LSN 8 | nslots 2 | freeStart 2 | freeEnd 2 |
// checksum 2. The slot directory grows forward from the header, record
// bodies grow backward from the end of the page.
const (
	headerSize = 16
	slotSize   = 4 // offset uint16 | length uint16

	offLSN       = 0
	offNumSlots  = 8
	offFreeStart = 10
	offFreeEnd   = 12
	offChecksum  = 14
)

// slot length value marking a dead (deleted) slot available for reuse.
const deadLen = 0xFFFF

// ErrNoSpace reports that a record does not fit on the page even
// after compaction.
var ErrNoSpace = errors.New("page: not enough free space")

// ErrBadSlot reports access through a slot that does not hold a
// record.
var ErrBadSlot = errors.New("page: no record at slot")

// TID addresses a record within a segment: page number relative to
// the segment start plus slot number. The zero TID is invalid (page 0
// slot 0 is never handed out; slot numbering starts at 0 but page
// numbering starts at 1).
type TID struct {
	Page uint32
	Slot uint16
}

// Nil reports whether the TID is the invalid zero value.
func (t TID) Nil() bool { return t.Page == 0 }

func (t TID) String() string { return fmt.Sprintf("TID(%d.%d)", t.Page, t.Slot) }

// EncodedTIDLen is the byte length of an encoded TID.
const EncodedTIDLen = 6

// AppendTID appends the 6-byte encoding of the TID.
func AppendTID(b []byte, t TID) []byte {
	b = binary.LittleEndian.AppendUint32(b, t.Page)
	return binary.LittleEndian.AppendUint16(b, t.Slot)
}

// DecodeTID reads a TID encoded by AppendTID.
func DecodeTID(b []byte) (TID, error) {
	if len(b) < EncodedTIDLen {
		return TID{}, dberr.Corruptf("page: short TID encoding")
	}
	return TID{Page: binary.LittleEndian.Uint32(b), Slot: binary.LittleEndian.Uint16(b[4:])}, nil
}

// MiniTID addresses a subtuple inside one complex object's local
// address space: Page is a position in the object's page list (the
// "local" page number i of the paper, which must be translated into a
// real page number via the page list), Slot the slot on that page.
// Mini TIDs are two bytes smaller than TIDs — the space saving in the
// Mini Directory that §4.1 points out.
type MiniTID struct {
	Page uint16 // index into the complex object's page list
	Slot uint16
}

// NilMini is the invalid Mini TID (page-list position 0xFFFF).
var NilMini = MiniTID{Page: 0xFFFF, Slot: 0xFFFF}

// Nil reports whether the Mini TID is invalid.
func (m MiniTID) Nil() bool { return m == NilMini }

func (m MiniTID) String() string { return fmt.Sprintf("mTID(%d.%d)", m.Page, m.Slot) }

// EncodedMiniTIDLen is the byte length of an encoded MiniTID.
const EncodedMiniTIDLen = 4

// AppendMiniTID appends the 4-byte encoding of the Mini TID.
func AppendMiniTID(b []byte, m MiniTID) []byte {
	b = binary.LittleEndian.AppendUint16(b, m.Page)
	return binary.LittleEndian.AppendUint16(b, m.Slot)
}

// DecodeMiniTID reads a MiniTID encoded by AppendMiniTID.
func DecodeMiniTID(b []byte) (MiniTID, error) {
	if len(b) < EncodedMiniTIDLen {
		return MiniTID{}, dberr.Corruptf("page: short MiniTID encoding")
	}
	return MiniTID{Page: binary.LittleEndian.Uint16(b), Slot: binary.LittleEndian.Uint16(b[2:])}, nil
}

// Page is a view over one fixed-size page buffer. It does not own the
// buffer; the buffer manager does.
type Page struct {
	b []byte
}

// View wraps an existing page buffer (len must be Size).
func View(b []byte) *Page {
	if len(b) != Size {
		panic(fmt.Sprintf("page: buffer length %d, want %d", len(b), Size))
	}
	return &Page{b: b}
}

// Init formats the buffer as an empty page.
func (p *Page) Init() {
	for i := range p.b {
		p.b[i] = 0
	}
	p.setU16(offNumSlots, 0)
	p.setU16(offFreeStart, headerSize)
	p.setU16(offFreeEnd, Size)
}

// Bytes returns the underlying buffer.
func (p *Page) Bytes() []byte { return p.b }

// LSN returns the page's log sequence number.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.b[offLSN:]) }

// SetLSN stores the page's log sequence number.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.b[offLSN:], lsn) }

func (p *Page) u16(off int) uint16       { return binary.LittleEndian.Uint16(p.b[off:]) }
func (p *Page) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.b[off:], v) }

// NumSlots returns the number of slot directory entries (live or
// dead).
func (p *Page) NumSlots() int { return int(p.u16(offNumSlots)) }

func (p *Page) slotOff(slot uint16) int { return headerSize + int(slot)*slotSize }

func (p *Page) slot(slot uint16) (off, length uint16) {
	so := p.slotOff(slot)
	return p.u16(so), p.u16(so + 2)
}

func (p *Page) setSlot(slot uint16, off, length uint16) {
	so := p.slotOff(slot)
	p.setU16(so, off)
	p.setU16(so+2, length)
}

// FreeSpace returns the number of bytes available for a new record
// including its slot entry, after compaction.
func (p *Page) FreeSpace() int {
	used := headerSize + p.NumSlots()*slotSize
	for s := 0; s < p.NumSlots(); s++ {
		_, l := p.slot(uint16(s))
		if l != deadLen {
			used += int(l)
		}
	}
	free := Size - used - slotSize // reserve room for one new slot entry
	if free < 0 {
		return 0
	}
	return free
}

// contiguousFree returns the bytes between the end of the slot
// directory and the start of the record area.
func (p *Page) contiguousFree() int {
	return int(p.u16(offFreeEnd)) - int(p.u16(offFreeStart))
}

// Insert stores the record on the page and returns its slot number,
// reusing a dead slot if one exists. It returns ErrNoSpace if the
// record cannot be placed even after compaction.
func (p *Page) Insert(rec []byte) (uint16, error) {
	// Find a reusable dead slot (keeps the directory small and makes
	// deleted slot numbers available again, like the page-list gaps of
	// §4.1).
	slot := uint16(p.NumSlots())
	newSlot := true
	for s := 0; s < p.NumSlots(); s++ {
		if _, l := p.slot(uint16(s)); l == deadLen {
			slot, newSlot = uint16(s), false
			break
		}
	}
	need := len(rec)
	if newSlot {
		need += slotSize
	}
	if p.FreeSpace()+slotSize < need {
		return 0, ErrNoSpace
	}
	if p.contiguousFree() < need {
		p.Compact()
	}
	if p.contiguousFree() < need {
		return 0, ErrNoSpace
	}
	if newSlot {
		p.setU16(offNumSlots, uint16(p.NumSlots()+1))
		p.setU16(offFreeStart, p.u16(offFreeStart)+slotSize)
	}
	end := p.u16(offFreeEnd)
	off := end - uint16(len(rec))
	copy(p.b[off:end], rec)
	p.setU16(offFreeEnd, off)
	p.setSlot(slot, off, uint16(len(rec)))
	return slot, nil
}

// InsertAt stores the record at a specific slot number, extending the
// slot directory as needed. Used by crash recovery to replay inserts
// deterministically. The slot must be dead or beyond the current
// directory.
func (p *Page) InsertAt(slot uint16, rec []byte) error {
	for int(slot) >= p.NumSlots() {
		if p.contiguousFree() < slotSize {
			p.Compact()
			if p.contiguousFree() < slotSize {
				return ErrNoSpace
			}
		}
		s := uint16(p.NumSlots())
		p.setSlot(s, 0, deadLen)
		p.setU16(offNumSlots, s+1)
		p.setU16(offFreeStart, p.u16(offFreeStart)+slotSize)
	}
	if _, l := p.slot(slot); l != deadLen {
		return fmt.Errorf("page: InsertAt slot %d occupied", slot)
	}
	if p.contiguousFree() < len(rec) {
		p.Compact()
		if p.contiguousFree() < len(rec) {
			return ErrNoSpace
		}
	}
	end := p.u16(offFreeEnd)
	off := end - uint16(len(rec))
	copy(p.b[off:end], rec)
	p.setU16(offFreeEnd, off)
	p.setSlot(slot, off, uint16(len(rec)))
	return nil
}

// Read returns the record stored at the slot. The returned slice
// aliases the page buffer and is only valid while the page is pinned.
func (p *Page) Read(slot uint16) ([]byte, error) {
	if int(slot) >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	off, l := p.slot(slot)
	if l == deadLen {
		return nil, ErrBadSlot
	}
	return p.b[off : off+l], nil
}

// Update replaces the record at the slot, in place when the new
// record is not larger, otherwise by re-placing it on the page
// (compacting if needed). The slot number never changes. Returns
// ErrNoSpace when the grown record no longer fits on this page; the
// caller must then relocate with a forwarding record.
func (p *Page) Update(slot uint16, rec []byte) error {
	if int(slot) >= p.NumSlots() {
		return ErrBadSlot
	}
	off, l := p.slot(slot)
	if l == deadLen {
		return ErrBadSlot
	}
	if len(rec) <= int(l) {
		copy(p.b[off:], rec)
		p.setSlot(slot, off, uint16(len(rec)))
		return nil
	}
	// Grow: free the old body, then place the new one.
	p.setSlot(slot, 0, deadLen)
	free := p.FreeSpace() + slotSize // our slot entry already exists
	if free < len(rec) {
		p.setSlot(slot, off, l) // restore
		return ErrNoSpace
	}
	if p.contiguousFree() < len(rec) {
		p.Compact()
	}
	end := p.u16(offFreeEnd)
	noff := end - uint16(len(rec))
	copy(p.b[noff:end], rec)
	p.setU16(offFreeEnd, noff)
	p.setSlot(slot, noff, uint16(len(rec)))
	return nil
}

// Delete removes the record at the slot, leaving a dead slot entry so
// other slot numbers stay stable.
func (p *Page) Delete(slot uint16) error {
	if int(slot) >= p.NumSlots() {
		return ErrBadSlot
	}
	if _, l := p.slot(slot); l == deadLen {
		return ErrBadSlot
	}
	p.setSlot(slot, 0, deadLen)
	return nil
}

// Empty reports whether the page holds no live records.
func (p *Page) Empty() bool {
	for s := 0; s < p.NumSlots(); s++ {
		if _, l := p.slot(uint16(s)); l != deadLen {
			return false
		}
	}
	return true
}

// Live reports whether the slot holds a record.
func (p *Page) Live(slot uint16) bool {
	if int(slot) >= p.NumSlots() {
		return false
	}
	_, l := p.slot(slot)
	return l != deadLen
}

// Compact slides all live record bodies to the end of the page,
// squeezing out holes from deletes and updates. Slot numbers are
// unchanged.
func (p *Page) Compact() {
	type live struct {
		slot uint16
		off  uint16
		len  uint16
	}
	var recs []live
	for s := 0; s < p.NumSlots(); s++ {
		off, l := p.slot(uint16(s))
		if l != deadLen {
			recs = append(recs, live{uint16(s), off, l})
		}
	}
	// Move highest-offset records first so copies never overlap
	// destructively.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1].off < recs[j].off; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
	end := uint16(Size)
	for _, r := range recs {
		noff := end - r.len
		copy(p.b[noff:end], p.b[r.off:r.off+r.len])
		p.setSlot(r.slot, noff, r.len)
		end = noff
	}
	p.setU16(offFreeEnd, end)
}

// Initialized reports whether the buffer holds a formatted slotted
// page (a freshly allocated, never-written page reads back as all
// zeros and must be Init'ed before use).
func (p *Page) Initialized() bool { return p.u16(offFreeEnd) != 0 }

// --- checksums (corruption detection) --------------------------------
//
// The spare header field carries a 16-bit fold of the CRC-32 of the
// whole page *and its identity* (segment id, page number). The buffer
// pool seals a page immediately before writing it back and verifies on
// every physical read, so three silent-corruption signatures surface
// as clean errors instead of wrong answers:
//
//   - a torn write (half old image, half new): body CRC mismatch;
//   - bit rot anywhere on the page: body CRC mismatch;
//   - a misdirected write (the image of page P landing at page Q's
//     offset): the CRC verifies against Q's identity and fails even
//     though the image itself is internally consistent.
//
// A stored checksum of zero means "unsealed". Since every image that
// leaves the buffer pool is sealed first, the only legitimate unsealed
// on-disk image is an all-zero page (allocated but never written
// back). A *nonzero* unsealed image — e.g. a sealed page whose
// checksum field alone rotted to zero — therefore fails verification;
// pre-PR this was silently accepted. An all-zero image still passes
// here, because the page layer cannot know whether the page was ever
// sealed; the buffer pool closes that last hole by cross-checking the
// pages recovery proved to hold committed data (see buffer.MarkSealed).

// checksumOf folds the CRC of the page image and its identity to 16
// bits, never returning the reserved "unsealed" value 0.
func (p *Page) checksumOf(seg uint16, no uint32) uint16 {
	var id [6]byte
	binary.LittleEndian.PutUint16(id[0:], seg)
	binary.LittleEndian.PutUint32(id[2:], no)
	crc := crc32.NewIEEE()
	crc.Write(id[:])
	crc.Write(p.b[:offChecksum])
	crc.Write([]byte{0, 0})
	crc.Write(p.b[offChecksum+2:])
	sum := crc.Sum32()
	c := uint16(sum) ^ uint16(sum>>16)
	if c == 0 {
		c = 0xFFFF
	}
	return c
}

// Seal stamps the page checksum, binding the image to its location;
// call just before the image leaves the buffer pool for the backing
// store.
func (p *Page) Seal(seg uint16, no uint32) { p.setU16(offChecksum, p.checksumOf(seg, no)) }

// Sealed reports whether the image carries a checksum.
func (p *Page) Sealed() bool { return p.u16(offChecksum) != 0 }

// ChecksumOK verifies a page image read from the backing store
// against the location it was read from.
func (p *Page) ChecksumOK(seg uint16, no uint32) bool {
	stored := p.u16(offChecksum)
	if stored == 0 {
		// Unsealed images are acceptable only as all-zero pages
		// (allocated, never written back). Anything else is a sealed
		// image whose checksum field itself was damaged.
		return p.IsZero()
	}
	return stored == p.checksumOf(seg, no)
}

// IsZero reports whether every byte of the image is zero — the state
// of an allocated page that was never written back.
func (p *Page) IsZero() bool {
	for _, b := range p.b {
		if b != 0 {
			return false
		}
	}
	return true
}

// Validate structurally checks the slot directory of an initialized
// page: header bounds, slot entries inside the record area, and no
// overlap of a record with the slot directory. It complements the
// checksum (which only proves the image matches what was written, not
// that what was written is well-formed) and is the scrubber's
// page-level cross-check.
func (p *Page) Validate() error {
	if !p.Initialized() {
		return nil // all-zero / unformatted: nothing to check
	}
	ns := p.NumSlots()
	freeStart := int(p.u16(offFreeStart))
	freeEnd := int(p.u16(offFreeEnd))
	dirEnd := headerSize + ns*slotSize
	if freeStart != dirEnd {
		return ErrBadStructure("freeStart does not match the slot directory end")
	}
	if freeEnd < freeStart || freeEnd > Size {
		return ErrBadStructure("free-space bounds out of range")
	}
	for s := 0; s < ns; s++ {
		off, l := p.slot(uint16(s))
		if l == deadLen {
			continue
		}
		if int(off) < freeEnd || int(off)+int(l) > Size {
			return ErrBadStructure("slot entry points outside the record area")
		}
	}
	return nil
}

// ErrBadStructure builds a typed structural-corruption error.
func ErrBadStructure(msg string) error {
	return dberr.Corruptf("page: bad structure: %s", msg)
}
