package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func openBig(t *testing.T, rows int) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`CREATE TABLE BIG (ID INT, NAME STRING)`)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, ";INSERT INTO BIG VALUES (%d, 'R%d')", i, i)
	}
	if _, err := db.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryContextPreCanceled: an already-canceled context fails the
// statement before it binds a single tuple, with no pages left
// pinned.
func TestQueryContextPreCanceled(t *testing.T) {
	db := openBig(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := db.QueryContext(ctx, `SELECT x.ID FROM x IN BIG`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := db.Pool().PinnedCount(); got != 0 {
		t.Fatalf("%d pages left pinned after canceled query", got)
	}
}

// TestQueryContextDeadlineMidScan: a short deadline interrupts a
// cross-join scan promptly — the iterator checks the context once per
// tuple binding — and leaves every page unpinned, with the engine
// fully usable afterwards.
func TestQueryContextDeadlineMidScan(t *testing.T) {
	db := openBig(t, 600)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	// 600x600 bindings: far more work than a millisecond.
	_, _, err := db.QueryContext(ctx, `SELECT x.ID FROM x IN BIG, y IN BIG WHERE x.ID = y.ID`)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v (after %v)", err, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: query ran %v past a 1ms deadline", elapsed)
	}
	if got := db.Pool().PinnedCount(); got != 0 {
		t.Fatalf("%d pages left pinned after deadline-exceeded query", got)
	}
	// The same query without a deadline still works.
	tbl, _, err := db.Query(`SELECT x.ID FROM x IN BIG, y IN BIG WHERE x.ID = y.ID`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 600 {
		t.Fatalf("%d join rows, want 600", tbl.Len())
	}
}

// TestExecContextCanceledDML: cancellation fails a mutating statement
// like any other error — it is rolled back, and the database keeps
// serving statements.
func TestExecContextCanceledDML(t *testing.T) {
	db := openBig(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, `DELETE x FROM x IN BIG WHERE x.ID >= 0`); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	tbl, _, err := db.Query(`SELECT x.ID FROM x IN BIG`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 50 {
		t.Fatalf("canceled DELETE removed rows: %d left, want 50", tbl.Len())
	}
	if got := db.Pool().PinnedCount(); got != 0 {
		t.Fatalf("%d pages left pinned", got)
	}
}
