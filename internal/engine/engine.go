// Package engine assembles the AIM-II DBMS prototype: buffer pool,
// write-ahead log, catalog, per-table subtuple stores, complex-object
// managers, flat stores, indexes, text indexes, and the NF² SQL
// executor with its access-path planner. It is the layer behind the
// public aim package.
package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/dberr"
	"repro/internal/exec"
	"repro/internal/flat"
	"repro/internal/index"
	"repro/internal/object"
	"repro/internal/plan"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/textindex"
	"repro/internal/wal"
)

// Options configures a database instance.
type Options struct {
	// Dir is the database directory; empty means a purely in-memory
	// database (no files, no WAL).
	Dir string
	// PoolPages is the buffer pool capacity in pages (default 1024).
	PoolPages int
	// PoolShards overrides the buffer pool's lock-stripe count (a
	// power of two; 0 derives it from PoolPages). Concurrency tests
	// and benchmarks use it to force sharding on small pools.
	PoolShards int
	// DisableWAL turns off logging even for on-disk databases.
	DisableWAL bool
	// DefaultLayout is the Mini Directory storage structure used for
	// new NF² tables unless CREATE TABLE overrides it (default SS3,
	// AIM-II's choice).
	DefaultLayout object.Layout
	// Clock supplies version timestamps for versioned tables; default
	// is wall-clock nanoseconds. Tests use logical clocks.
	Clock func() int64
	// OpenStore, when set, supplies the backing store of a segment
	// instead of the default file (Dir set) or memory store. Used by
	// the crash-simulation harness to inject faults and by alternative
	// storage backends.
	OpenStore func(id segment.ID) (segment.Store, error)
	// OpenWALFile, when set, supplies the backing file of the
	// write-ahead log instead of the default file under Dir. When set,
	// the WAL is enabled even for databases without a directory. A
	// single-file log never rolls segments and never recycles.
	OpenWALFile func() (wal.File, error)
	// OpenWALStorage, when set, supplies the segment-file namespace of
	// the write-ahead log instead of the default directory layout
	// under Dir. When set, the WAL is enabled even for databases
	// without a directory; takes precedence over OpenWALFile. Used by
	// the crash-simulation harness to make segment creation and
	// retirement crash points.
	OpenWALStorage func() (wal.Storage, error)
	// WALSegmentBytes bounds the size of one WAL segment file: the log
	// rolls to a new segment when a record would cross the bound, and
	// whole segments below the checkpoint horizon are retired by
	// WALCheckpoint. Zero means DefaultWALSegmentBytes; negative
	// disables rolling (one unbounded segment). Ignored for
	// single-file logs (OpenWALFile).
	WALSegmentBytes int64
	// CheckpointEvery starts a background goroutine that writes a
	// fuzzy checkpoint (flush dirty pages, log an OpCheckpoint record,
	// recycle dead segments) at this interval. Zero disables the
	// background checkpointer; WALCheckpoint can still be called
	// explicitly.
	CheckpointEvery time.Duration
	// GroupCommitWait is the longest a group-commit leader dallies for
	// stragglers before issuing the batch fsync. Zero means commits
	// only batch when they genuinely overlap (a lone committer never
	// waits); larger values trade single-writer latency for fewer
	// fsyncs under write-heavy concurrency.
	GroupCommitWait time.Duration
	// Retry bounds the automatic retries of transient store and log
	// faults (errors implementing segment.TransientError). The zero
	// value means segment.DefaultRetry; Tries: 1 disables retries.
	Retry segment.RetryPolicy
	// Replica opens the database as a WAL-shipping read replica: all
	// writes (DML, DDL, transactions) fail with ErrReadOnlyReplica, the
	// background checkpointer stays off (checkpoints mirror from the
	// primary's stream), and reads of versioned tables are pinned to
	// the replication visibility horizon (see replica.go). Requires a
	// write-ahead log. Reopening the same directory without Replica
	// promotes it to a standalone database.
	Replica bool
}

// DB is one database instance.
type DB struct {
	mu sync.Mutex
	// The engine's concurrency control is split into three locks so
	// that readers can stream result rows while a writer commits:
	//
	//   - applyMu serializes all storage mutation: implicit (auto-
	//     commit) DML statements, transaction commit application, DDL,
	//     and statement rollback. Exactly one writer touches pages at a
	//     time; readers never take it.
	//   - snapMu orders commit publication against snapshot
	//     acquisition: a writer holds it exclusively while its changes
	//     become visible (so every version it writes carries one
	//     timestamp), and Begin/read-snapshot acquisition samples the
	//     clock under the shared side. A snapshot therefore sits
	//     strictly before or strictly after any commit, never inside
	//     one.
	//   - healMu is the recovery barrier: every reader holds the shared
	//     side for the duration of one page-visiting call (a Rows.Next,
	//     a materializing query), and only statement rollback and DDL —
	//     the operations that rebuild pages or runtime structures under
	//     the readers' feet — take the exclusive side. A normal commit
	//     never does, which is what lets an open cursor keep streaming
	//     while a transaction commits.
	//
	// Lock order: applyMu ≻ snapMu and applyMu ≻ healMu; snapMu and
	// healMu are never held together.
	applyMu sync.Mutex
	snapMu  sync.RWMutex
	healMu  sync.RWMutex
	opts    Options
	pool    *buffer.Pool
	log     *wal.Log
	cat     *catalog.Catalog

	stores map[segment.ID]*subtuple.Store
	mgrs   map[string]*object.Manager
	flats  map[string]*flat.Store

	indexes     map[string][]*index.Index // by table
	indexByName map[string]*index.Index
	textIdx     map[string][]*textindex.Index
	textByName  map[string]*textindex.Index

	exec *exec.Executor

	// lastStmt holds the most recently finished statement's access
	// counters. Queries record it under the shared statement lock, so
	// it is an atomic pointer rather than a mutex-guarded field: the
	// hot path never serializes on statistics bookkeeping and Stats()
	// snapshots cannot tear.
	lastStmt atomic.Pointer[StmtStats]

	// quarMu guards the corruption-containment state: the set of
	// quarantined objects and the out-of-service (degraded) indexes.
	// See quarantine.go.
	quarMu   sync.Mutex
	quar     map[quarKey]*QuarantineError
	degraded map[string]string

	// fatalErr poisons the database after a failed statement rollback:
	// the live state can no longer be trusted, so every subsequent
	// statement returns this error until the database is reopened.
	// Guarded by fatalMu; use fatal()/setFatal.
	fatalMu  sync.RWMutex
	fatalErr error

	// Transaction manager state (see txn.go): the id counter, the
	// active-transaction registry, the in-flight write locks for
	// first-writer-wins conflict detection, and the commit stamps of
	// recently written objects (pruned whenever no transaction is
	// active). All guarded by txnMu.
	txnMu      sync.Mutex
	nextTxn    uint64
	activeTxns map[uint64]*Txn
	writeLocks map[wkey]uint64
	lastWrite  map[wkey]int64

	// applying is true while a transaction commit replays its buffered
	// ops through the runtime mutators; those calls must not re-enter
	// auto-commit conflict detection. stmtWrites collects the conflict
	// keys an auto-commit statement wrote, published to lastWrite when
	// the statement commits. Both are guarded by applyMu.
	applying   bool
	stmtWrites []wkey

	// Background checkpointer state (see ckpt.go): stop channel, done
	// channel, checkpoint counter and last failure.
	ckptStop    chan struct{}
	ckptDone    chan struct{}
	ckptAtEnd   uint64 // log end when the last checkpoint was written
	checkpoints atomic.Uint64
	ckptErr     atomic.Pointer[string]

	// netCtr is the network front end's counter block, created lazily
	// by NetCounters() when a server attaches (see netstats.go).
	netCtr atomic.Pointer[NetCounters]

	// replCtr is the replication counter block, created lazily by
	// ReplCounters() when a shipper or applier attaches (replstats.go).
	replCtr atomic.Pointer[ReplCounters]

	// epoch is the catalog epoch: every change to what a plan may have
	// bound against — DDL, index create/drop/rebuild, index
	// quarantine/degradation, runtime reload — bumps it, detaching
	// every cached plan (see plancache.go). The epoch is a freshness
	// mechanism, not the safety mechanism: a prepared plan re-resolves
	// its chosen indexes by name at execute time, so even a plan raced
	// by a bump can never touch a detached index.
	epoch atomic.Uint64
	// plans is the shared plan cache, keyed by normalized SQL.
	plans *planCache
}

// CatalogEpoch returns the current catalog epoch. A plan bound under
// an older epoch is stale and must be re-bound before use.
func (db *DB) CatalogEpoch() uint64 { return db.epoch.Load() }

// bumpEpoch advances the catalog epoch, lazily invalidating every
// cached plan.
func (db *DB) bumpEpoch() { db.epoch.Add(1) }

// fatal returns the poison error, if any.
func (db *DB) fatal() error {
	db.fatalMu.RLock()
	defer db.fatalMu.RUnlock()
	return db.fatalErr
}

func (db *DB) setFatal(err error) {
	db.fatalMu.Lock()
	db.fatalErr = err
	db.fatalMu.Unlock()
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	if opts.DefaultLayout == 0 {
		opts.DefaultLayout = object.SS3
	}
	if opts.Clock == nil {
		opts.Clock = func() int64 { return time.Now().UnixNano() }
	}
	// Snapshot isolation needs strictly increasing timestamps: a
	// snapshot sampled before a commit timestamp was allocated must
	// compare strictly smaller than it. Wrap the supplied clock so
	// every reading is strictly greater than the previous one. The
	// wrapper serializes calls under a mutex — Begin samples the clock
	// from concurrent goroutines, so this also relieves the supplied
	// clock (often a bare counter in tests) of being goroutine-safe.
	{
		base := opts.Clock
		var mu sync.Mutex
		var last int64
		opts.Clock = func() int64 {
			mu.Lock()
			defer mu.Unlock()
			t := base()
			if t <= last {
				t = last + 1
			}
			last = t
			return t
		}
	}
	if opts.Retry.Tries == 0 {
		opts.Retry = segment.DefaultRetry
	}
	pool := buffer.NewPool(opts.PoolPages)
	if opts.PoolShards > 0 {
		pool = buffer.NewPoolShards(opts.PoolPages, opts.PoolShards)
	}
	db := &DB{
		opts:        opts,
		pool:        pool,
		stores:      make(map[segment.ID]*subtuple.Store),
		mgrs:        make(map[string]*object.Manager),
		flats:       make(map[string]*flat.Store),
		indexes:     make(map[string][]*index.Index),
		indexByName: make(map[string]*index.Index),
		textIdx:     make(map[string][]*textindex.Index),
		textByName:  make(map[string]*textindex.Index),
		quar:        make(map[quarKey]*QuarantineError),
		degraded:    make(map[string]string),
		activeTxns:  make(map[uint64]*Txn),
		writeLocks:  make(map[wkey]uint64),
		lastWrite:   make(map[wkey]int64),
		plans:       newPlanCache(planCacheLimit),
	}
	if (opts.Dir != "" || opts.OpenWALFile != nil || opts.OpenWALStorage != nil) && !opts.DisableWAL {
		segBytes := opts.WALSegmentBytes
		if segBytes == 0 {
			segBytes = DefaultWALSegmentBytes
		}
		if segBytes < 0 {
			segBytes = 0
		}
		cfg := wal.Config{SegmentBytes: segBytes, Retry: opts.Retry}
		var log *wal.Log
		var err error
		switch {
		case opts.OpenWALStorage != nil:
			var st wal.Storage
			st, err = opts.OpenWALStorage()
			if err == nil {
				log, err = wal.OpenStorage(st, cfg)
			}
		case opts.OpenWALFile != nil:
			var f wal.File
			f, err = opts.OpenWALFile()
			if err == nil {
				log, err = wal.OpenFile(wal.WithRetry(f, opts.Retry))
			}
		default:
			log, err = wal.OpenDir(opts.Dir, cfg)
		}
		if err != nil {
			return nil, err
		}
		db.log = log
		db.pool.FlushHook = func(_ buffer.PageKey, lsn uint64) error {
			return log.EnsureDurable(lsn) // the write-ahead rule
		}
	}
	// Register the meta segment, then every segment the WAL mentions,
	// and recover.
	if err := db.registerSegment(catalog.MetaSegment, false); err != nil {
		return nil, err
	}
	if db.log != nil {
		// Only the replay tail's segments are needed before recovery;
		// everything else is attached from the catalog afterwards.
		segs := map[segment.ID]bool{}
		if err := db.log.ReplayTail(func(r wal.Record) error {
			if r.Seg != 0 {
				segs[r.Seg] = true
			}
			return nil
		}); err != nil {
			return nil, err
		}
		for id := range segs {
			if err := db.registerSegment(id, false); err != nil {
				return nil, err
			}
		}
		if err := subtuple.Recover(db.log, db.pool); err != nil {
			return nil, fmt.Errorf("engine: recovery failed: %w", err)
		}
		if err := db.sealHoles(); err != nil {
			return nil, err
		}
	}
	if opts.Replica {
		if err := db.replicaRecover(); err != nil {
			return nil, err
		}
	}
	if err := db.reloadRuntime(); err != nil {
		return nil, err
	}
	if db.log != nil && opts.CheckpointEvery > 0 && !opts.Replica {
		db.ckptStop = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.checkpointLoop(opts.CheckpointEvery)
	}
	return db, nil
}

// reloadRuntime (re)builds every in-memory runtime structure from the
// persistent state: the catalog, per-table managers and flat stores,
// and the memory-resident indexes. Open uses it to wire up a fresh
// database; statement abort uses it to discard the in-memory effects
// of a failed statement after the pages have been rolled back to the
// last commit.
func (db *DB) reloadRuntime() error {
	db.mgrs = make(map[string]*object.Manager)
	db.flats = make(map[string]*flat.Store)
	db.indexes = make(map[string][]*index.Index)
	db.indexByName = make(map[string]*index.Index)
	db.textIdx = make(map[string][]*textindex.Index)
	db.textByName = make(map[string]*textindex.Index)
	cat, err := catalog.Open(db.stores[catalog.MetaSegment])
	if err != nil {
		return err
	}
	db.cat = cat
	// Wire up every cataloged table and rebuild its indexes.
	for _, t := range cat.Tables() {
		if err := db.attachTable(t); err != nil {
			return err
		}
	}
	for _, t := range cat.Tables() {
		if db.opts.Replica {
			// A replica redoes page writes only; it never maintains the
			// memory-resident indexes, and its executor ignores them
			// (replicaRuntime). Promotion rebuilds them from base data.
			break
		}
		for _, def := range cat.Indexes(t.Name) {
			if err := db.buildIndex(def); err != nil {
				// Rebuilding from corrupt base data must not take the
				// whole database down: the index degrades to
				// out-of-service (queries fall back to base-table
				// scans) and aimdoctor can rebuild it later.
				if dberr.IsCorrupt(err) {
					db.noteDegraded(def.Name, err)
					continue
				}
				return err
			}
			db.clearDegraded(def.Name)
		}
	}
	db.exec = &exec.Executor{RT: (*runtime)(db), Plan: plan.Choose}
	// The whole runtime was just rebuilt; any plan bound before now may
	// reference stale structures.
	db.bumpEpoch()
	return nil
}

// registerSegment opens the backing store for a segment and creates
// its subtuple store. versioned applies to the subtuple store.
func (db *DB) registerSegment(id segment.ID, versioned bool) error {
	if _, ok := db.stores[id]; ok {
		return nil
	}
	var st segment.Store
	switch {
	case db.opts.OpenStore != nil:
		var err error
		st, err = db.opts.OpenStore(id)
		if err != nil {
			return err
		}
	case db.opts.Dir == "":
		st = segment.NewMemStore()
	default:
		var err error
		st, err = segment.OpenFileStore(filepath.Join(db.opts.Dir, fmt.Sprintf("seg_%d.dat", id)))
		if err != nil {
			return err
		}
	}
	// Transient faults from the backing store are absorbed by bounded
	// retries before they can fail a statement.
	st = segment.WithRetry(st, db.opts.Retry)
	db.pool.Register(id, st)
	db.stores[id] = subtuple.New(subtuple.Config{
		Pool:      db.pool,
		Seg:       id,
		Log:       db.log,
		Versioned: versioned,
		Clock:     db.opts.Clock,
	})
	return nil
}

// attachTable wires the runtime structures for a cataloged table.
func (db *DB) attachTable(t *catalog.Table) error {
	// The store may have been registered during recovery without the
	// versioned flag; recreate it with the right configuration.
	if st, ok := db.stores[t.Seg]; !ok || st.Versioned() != t.Versioned {
		if !ok {
			if err := db.registerSegment(t.Seg, t.Versioned); err != nil {
				return err
			}
		} else {
			db.stores[t.Seg] = subtuple.New(subtuple.Config{
				Pool: db.pool, Seg: t.Seg, Log: db.log,
				Versioned: t.Versioned, Clock: db.opts.Clock,
			})
		}
	}
	st := db.stores[t.Seg]
	if t.Kind == catalog.Flat {
		fs, err := flat.New(st, t.Type)
		if err != nil {
			return err
		}
		db.flats[t.Name] = fs
	} else {
		db.mgrs[t.Name] = object.NewManager(st, object.Layout(t.Layout))
	}
	return nil
}

// Catalog exposes the catalog (read-mostly).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool exposes the buffer pool (for statistics in experiments).
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Segments lists the registered segment IDs, the catalog's included
// (for sizing reports in experiments and benchmarks).
func (db *DB) Segments() []segment.ID {
	out := make([]segment.ID, 0, len(db.stores))
	for id := range db.stores {
		out = append(out, id)
	}
	return out
}

// Log exposes the write-ahead log (nil when logging is disabled);
// used by the crash-simulation invariant checker.
func (db *DB) Log() *wal.Log { return db.log }

// Manager returns the complex-object manager of an NF² table.
func (db *DB) Manager(table string) (*object.Manager, bool) {
	m, ok := db.mgrs[table]
	return m, ok
}

// FlatStore returns the store of a flat table.
func (db *DB) FlatStore(table string) (*flat.Store, bool) {
	f, ok := db.flats[table]
	return f, ok
}

// IndexByName returns a live index.
func (db *DB) IndexByName(name string) (*index.Index, bool) {
	ix, ok := db.indexByName[name]
	return ix, ok
}

// TextIndexByName returns a live text index.
func (db *DB) TextIndexByName(name string) (*textindex.Index, bool) {
	ti, ok := db.textByName[name]
	return ti, ok
}

// Now returns the current timestamp from the database clock.
func (db *DB) Now() int64 { return db.opts.Clock() }

// Commit appends a commit record and syncs the log; a no-op for
// in-memory databases. The SQL layer commits after every statement
// (the prototype is single-user with statement-level transactions).
func (db *DB) Commit() error {
	if db.log == nil {
		return nil
	}
	if db.opts.Replica {
		return ErrReadOnlyReplica
	}
	// The commit record carries a timestamp so a replica can publish a
	// visibility horizon covering every version this commit wrote (the
	// clock is strictly increasing: all of them are older).
	if _, err := db.log.Append(&wal.Record{Op: wal.OpCommit, Payload: wal.CommitPayload(0, db.opts.Clock())}); err != nil {
		return err
	}
	return db.log.Sync()
}

// Checkpoint flushes all dirty pages to the segment files. It does
// not write a WAL checkpoint record — the scrubber calls it from
// inside read barriers where the apply lock must not be taken; see
// WALCheckpoint (ckpt.go) for the recovery-bounding fuzzy checkpoint.
func (db *DB) Checkpoint() error { return db.pool.FlushAll() }

// Close checkpoints and closes the database.
func (db *DB) Close() error {
	if db.ckptStop != nil {
		close(db.ckptStop)
		<-db.ckptDone
		db.ckptStop = nil
	}
	if !db.opts.Replica {
		if err := db.Commit(); err != nil {
			return err
		}
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if db.log != nil {
		if err := db.log.Close(); err != nil {
			return err
		}
	}
	for _, st := range db.stores {
		if s := db.pool.Store(st.Segment()); s != nil {
			if err := s.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Runtime exposes the engine's executor runtime (used by planner
// tests and external tools that call plan.Choose directly).
func (db *DB) Runtime() exec.Runtime { return (*runtime)(db) }

// Executor exposes the SQL executor; experiment harnesses toggle its
// FullPaths flag to compare pruned against full-object execution.
func (db *DB) Executor() *exec.Executor { return db.exec }
