package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Rows is a streaming query cursor: result tuples are produced one
// Next at a time, with only the paths the query needs fetched from
// storage. Only the shared heal barrier is held per Next call — never
// for the cursor's lifetime — so an open (or abandoned) Rows never
// blocks writers, and writers (including transaction commits) never
// block readers. A cursor opened on the auto-commit path has
// read-committed-per-row semantics — a mutation committed between two
// Next calls can be visible to the second one; a cursor opened inside
// a transaction (Txn.QueryRows) reads versioned tables at the
// transaction's snapshot instead. No buffer pages are pinned between
// calls and none survive Close, so a Rows abandoned without Close
// leaks nothing (Close still should be called: it records the
// statement's access statistics).
//
// Close is idempotent and safe to call from a different goroutine than
// the one iterating: session teardown, context cancellation and server
// drain can all fire Close concurrently with an in-flight Next, and
// exactly one of them releases the cursor. A Close racing a Next
// blocks until that Next finishes (cancel the context first to make
// that prompt); it never frees the cursor under the iterator's feet.
type Rows struct {
	db   *DB
	text string
	tt   *model.TableType

	// mu serializes Next/Scan/Close/Err and guards every mutable field
	// below; see the teardown note above.
	mu     sync.Mutex
	cur    *exec.Cursor
	tup    model.Tuple
	err    error
	rows   int
	start  statsMark
	closed bool
}

// QueryRows runs one SELECT and returns a streaming cursor over its
// results.
func (db *DB) QueryRows(q string) (*Rows, error) {
	return db.QueryRowsContext(context.Background(), q)
}

// QueryRowsContext is QueryRows with cancellation: the context is
// checked once per Next call.
func (db *DB) QueryRowsContext(ctx context.Context, q string) (*Rows, error) {
	return db.queryRows(ctx, db.readExec(), q)
}

// queryRows opens a streaming cursor through the given executor (the
// DB's own, or a transaction's snapshot-reading one).
func (db *DB) queryRows(ctx context.Context, ex *exec.Executor, q string) (*Rows, error) {
	st, err := sql.ParseOne(q)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT, got %T", st)
	}
	return db.queryRowsSel(ctx, ex, sel, strings.TrimSpace(q), nil)
}

// QueryRowsStmt runs one already-parsed SELECT and returns a
// streaming cursor — the zero-reparse entry point for callers that
// hold a sql.Stmt (the REPL parses each input chunk exactly once).
func (db *DB) QueryRowsStmt(ctx context.Context, st sql.Stmt) (*Rows, error) {
	sel, ok := st.Statement.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT, got %T", st.Statement)
	}
	return db.queryRowsSel(ctx, db.readExec(), sel, st.Text, nil)
}

// QueryRowsStmt runs one already-parsed SELECT at the transaction's
// snapshot and returns a streaming cursor.
func (tx *Txn) QueryRowsStmt(ctx context.Context, st sql.Stmt) (*Rows, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	sel, ok := st.Statement.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT, got %T", st.Statement)
	}
	return tx.db.queryRowsSel(ctx, tx.exec, sel, st.Text, nil)
}

// queryRowsSel opens a streaming cursor over an already-parsed select
// with bound `?` parameter values — the zero-reparse path for
// transactions executing prepared statements (their snapshot-reading
// executor plans inline; cached candidate lists would not see the
// transaction's own buffered writes).
func (db *DB) queryRowsSel(ctx context.Context, ex *exec.Executor, sel *sql.Select, text string, params []model.Value) (*Rows, error) {
	db.healMu.RLock()
	if ferr := db.fatal(); ferr != nil {
		db.healMu.RUnlock()
		return nil, ferr
	}
	start := db.mark()
	var cur *exec.Cursor
	var err error
	func() {
		defer recoverPanic(text, &err)
		cur, err = ex.OpenQueryArgs(ctx, sel, params)
	}()
	db.healMu.RUnlock()
	if err != nil {
		return nil, db.healIfPanic(err)
	}
	return &Rows{db: db, cur: cur, text: text, tt: cur.Type(), start: start}, nil
}

// queryRowsPrepared opens a streaming cursor from a bound plan: no
// parse, no inference, no path derivation, no planner call — the
// plan's access choices are evaluated against the live indexes and
// the bound arguments, and the cursor reuses the cached result schema
// and path sets.
func (db *DB) queryRowsPrepared(ctx context.Context, prep *plan.Prepared, params []model.Value) (*Rows, error) {
	db.healMu.RLock()
	if ferr := db.fatal(); ferr != nil {
		db.healMu.RUnlock()
		return nil, ferr
	}
	start := db.mark()
	var cur *exec.Cursor
	var err error
	func() {
		defer recoverPanic(prep.Text, &err)
		ex := db.readExec()
		cands := prep.Candidates(ex.RT, params)
		cur, err = ex.OpenPrepared(ctx, prep.Sel, prep.ResultType, prep.Paths, cands, params)
	}()
	db.healMu.RUnlock()
	if err != nil {
		return nil, db.healIfPanic(err)
	}
	return &Rows{db: db, cur: cur, text: prep.Text, tt: cur.Type(), start: start}, nil
}

// healIfPanic repairs the engine after a panic recovered on the read
// path (leaked pins, partial in-memory state), like execOne does for
// materializing queries.
func (db *DB) healIfPanic(err error) error {
	var pe *PanicError
	if errors.As(err, &pe) {
		err = db.abort(err)
	}
	return err
}

// Next advances to the next result tuple. It returns false at the end
// of the result, on error (see Err) and after Close; the cursor closes
// itself in all three cases.
func (r *Rows) Next() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.err != nil {
		return false
	}
	r.db.healMu.RLock()
	if ferr := r.db.fatal(); ferr != nil {
		r.db.healMu.RUnlock()
		r.err = ferr
		r.closeLocked()
		return false
	}
	var tup model.Tuple
	var ok bool
	var err error
	func() {
		defer recoverPanic(r.text, &err)
		tup, ok, err = r.cur.Next()
	}()
	r.db.healMu.RUnlock()
	if err != nil {
		r.err = r.db.healIfPanic(err)
		r.closeLocked()
		return false
	}
	if !ok {
		r.closeLocked()
		return false
	}
	r.tup = tup
	r.rows++
	return true
}

// Tuple returns the current result tuple (valid after a true Next).
func (r *Rows) Tuple() model.Tuple {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tup
}

// Type returns the result schema.
func (r *Rows) Type() *model.TableType { return r.tt }

// Err returns the error that terminated the iteration, if any.
func (r *Rows) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Scan copies the current tuple's attributes into dest values, which
// must be *model.Value, *int64, *int, *float64, *string, *bool or
// **model.Table and match the result arity.
func (r *Rows) Scan(dest ...any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tup == nil {
		return fmt.Errorf("engine: Scan called without a successful Next")
	}
	if len(dest) != len(r.tup) {
		return fmt.Errorf("engine: Scan got %d destinations for %d attributes", len(dest), len(r.tup))
	}
	for i, d := range dest {
		v := r.tup[i]
		switch p := d.(type) {
		case *model.Value:
			*p = v
		case *int64:
			n, ok := v.(model.Int)
			if !ok {
				return fmt.Errorf("engine: Scan attribute %d: %T is not an INT", i, v)
			}
			*p = int64(n)
		case *int:
			n, ok := v.(model.Int)
			if !ok {
				return fmt.Errorf("engine: Scan attribute %d: %T is not an INT", i, v)
			}
			*p = int(n)
		case *float64:
			switch n := v.(type) {
			case model.Float:
				*p = float64(n)
			case model.Int:
				*p = float64(n)
			default:
				return fmt.Errorf("engine: Scan attribute %d: %T is not numeric", i, v)
			}
		case *string:
			s, ok := v.(model.Str)
			if !ok {
				return fmt.Errorf("engine: Scan attribute %d: %T is not a STRING", i, v)
			}
			*p = string(s)
		case *bool:
			b, ok := v.(model.Bool)
			if !ok {
				return fmt.Errorf("engine: Scan attribute %d: %T is not a BOOL", i, v)
			}
			*p = bool(b)
		case **model.Table:
			t, ok := v.(*model.Table)
			if !ok {
				return fmt.Errorf("engine: Scan attribute %d: %T is not a table", i, v)
			}
			*p = t
		default:
			return fmt.Errorf("engine: Scan destination %d has unsupported type %T", i, d)
		}
	}
	return nil
}

// Close ends the iteration, releases the cursor and records the
// statement's access statistics (LastStmtStats). Idempotent, and safe
// to call concurrently with Next (and with other Close calls) from
// any goroutine: exactly one caller performs the teardown.
func (r *Rows) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeLocked()
	return nil
}

// closeLocked is the single teardown path; the caller holds r.mu.
func (r *Rows) closeLocked() {
	if r.closed {
		return
	}
	r.closed = true
	r.db.healMu.RLock()
	r.cur.Close()
	stats := r.db.since(r.start)
	r.db.healMu.RUnlock()
	stats.Rows = r.rows
	r.db.noteStmtStats(stats)
}
