package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// TestTxnConcurrentSnapshots is the transactional stress test: 8
// reader transactions stream Examples 1-8 while 2 writer transactions
// commit and roll back budget updates on DEPARTMENTS. Each reader
// must observe one consistent committed snapshot for its whole
// lifetime — Example 1 repeated at the end of the transaction must
// equal Example 1 at the start, and the per-department budgets seen
// by Example 1 and Example 2 (two different plans over the same
// table) must agree. Run under -race this also asserts that commit
// publication, snapshot reads and cursor streaming are free of data
// races, and that no page stays pinned afterwards.
func TestTxnConcurrentSnapshots(t *testing.T) {
	db, err := core.OfficeWith(engine.Options{PoolPages: 64, PoolShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	queries := core.ExampleQueries()

	// stream materializes one query through the transaction's cursor.
	stream := func(tx *engine.Txn, text string) (*model.Table, *model.TableType, error) {
		rows, err := tx.QueryRows(text)
		if err != nil {
			return nil, nil, err
		}
		defer rows.Close()
		got := &model.Table{}
		for rows.Next() {
			got.Append(rows.Tuple())
		}
		return got, rows.Type(), rows.Err()
	}

	// budgetsOf extracts DNO -> BUDGET from an Example 1 or Example 2
	// result (both carry DNO at column 0 and BUDGET at column 3).
	budgetsOf := func(tbl *model.Table) map[int64]int64 {
		out := make(map[int64]int64, tbl.Len())
		for _, tup := range tbl.Tuples {
			out[int64(tup[0].(model.Int))] = int64(tup[3].(model.Int))
		}
		return out
	}

	const readers = 8
	const writers = 2
	const rounds = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				tx, err := db.Begin()
				if err != nil {
					t.Errorf("reader %d: begin: %v", r, err)
					return
				}
				first, tt, err := stream(tx, queries[0].Text)
				if err != nil {
					t.Errorf("reader %d: E1: %v", r, err)
					tx.Rollback()
					return
				}
				budgets := budgetsOf(first)
				for i := 1; i < len(queries); i++ {
					q := queries[(r+i)%len(queries)]
					if q.ID == "E1" {
						continue
					}
					tbl, _, err := stream(tx, q.Text)
					if err != nil {
						t.Errorf("reader %d: %s: %v", r, q.ID, err)
						tx.Rollback()
						return
					}
					if q.ID == "E2" {
						if got := budgetsOf(tbl); fmt.Sprint(got) != fmt.Sprint(budgets) {
							t.Errorf("reader %d: E2 budgets %v disagree with E1 budgets %v inside one snapshot", r, got, budgets)
							tx.Rollback()
							return
						}
					}
				}
				again, _, err := stream(tx, queries[0].Text)
				if err != nil {
					t.Errorf("reader %d: E1 again: %v", r, err)
					tx.Rollback()
					return
				}
				was := model.FormatTable("E1", tt, first)
				now := model.FormatTable("E1", tt, again)
				if was != now {
					t.Errorf("reader %d: snapshot drifted mid-transaction:\nfirst:\n%s\nagain:\n%s", r, was, now)
				}
				tx.Rollback()
			}
		}(r)
	}

	// Writers: each owns one department and alternates committed and
	// rolled-back budget updates on it. Disjoint departments, so a
	// write conflict would indicate a bookkeeping bug — except against
	// a stale lastWrite entry, which first-writer-wins legitimately
	// reports; those retry.
	dnos := []int64{314, 218}
	var commits atomic.Int64
	writerDone := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.Begin()
				if err != nil {
					t.Errorf("writer %d: begin: %v", w, err)
					return
				}
				stmt := fmt.Sprintf(`UPDATE x IN DEPARTMENTS SET BUDGET = %d WHERE x.DNO = %d`,
					100000+int64(w)*1000000+int64(i), dnos[w])
				if _, err := tx.Exec(stmt); err != nil {
					tx.Rollback()
					if errors.Is(err, engine.ErrWriteConflict) {
						continue
					}
					t.Errorf("writer %d: update: %v", w, err)
					return
				}
				if i%2 == 0 {
					if err := tx.Commit(); err != nil {
						if errors.Is(err, engine.ErrWriteConflict) {
							continue
						}
						t.Errorf("writer %d: commit: %v", w, err)
						return
					}
					commits.Add(1)
				} else {
					tx.Rollback()
				}
			}
		}(w)
	}
	go func() { wwg.Wait(); close(writerDone) }()

	// Wait for the readers; under a loaded scheduler the writers may
	// not have had a turn yet, so also wait for a few commits before
	// stopping everything.
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for commits.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-writerDone

	if commits.Load() == 0 {
		t.Error("writers committed nothing; the test did not exercise concurrent commits")
	}
	// Every transaction is finished: the final state is whatever the
	// last committed writer left, and nothing may remain pinned.
	tbl, _, err := db.Query(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if tbl.Len() != 3 {
		t.Errorf("DEPARTMENTS has %d rows after the storm, want 3", tbl.Len())
	}
	if got := db.Pool().PinnedCount(); got != 0 {
		t.Errorf("PinnedCount = %d after all transactions finished, want 0", got)
	}
}
