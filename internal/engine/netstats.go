package engine

import "sync/atomic"

// NetCounters are the network front end's live counters. The server
// (internal/netserver) increments them lock-free while sessions run;
// Stats() and the protocol INFO request read consistent snapshots.
// They live in the engine so that aim.Stats() can surface them next to
// the buffer, WAL and plan-cache counters without the aim package
// depending on the server.
//
// Monotonicity contract (asserted by the stats hammer test): every
// *Total counter and every shed/drain/kill counter only grows; the
// *Open/InFlight/QueueDepth gauges move both ways but never go
// negative.
type NetCounters struct {
	SessionsOpen  atomic.Int64  // currently open sessions
	SessionsPeak  atomic.Int64  // high-water mark of SessionsOpen
	SessionsTotal atomic.Uint64 // sessions ever admitted

	StmtsInFlight atomic.Int64  // statements currently executing
	StmtsTotal    atomic.Uint64 // statements ever started
	QueueDepth    atomic.Int64  // statements waiting for an execution slot
	QueueWaits    atomic.Uint64 // statements that had to queue before running

	ShedSessions atomic.Uint64 // connections refused by admission control
	ShedStmts    atomic.Uint64 // statements shed with ErrOverloaded
	Drained      atomic.Uint64 // sessions closed by graceful drain
	Killed       atomic.Uint64 // sessions torn down on error (dead peer, torn frame, timeout)
	Cancels      atomic.Uint64 // cancel frames honored

	BytesIn      atomic.Uint64 // payload bytes read from clients
	BytesOut     atomic.Uint64 // payload bytes written to clients
	RowsStreamed atomic.Uint64 // result rows sent over row streams
}

// NoteSessionOpen records an admitted session, maintaining the peak.
func (c *NetCounters) NoteSessionOpen() {
	c.SessionsTotal.Add(1)
	n := c.SessionsOpen.Add(1)
	for {
		peak := c.SessionsPeak.Load()
		if n <= peak || c.SessionsPeak.CompareAndSwap(peak, n) {
			return
		}
	}
}

// NetStats is a point-in-time snapshot of NetCounters.
type NetStats struct {
	SessionsOpen  int64
	SessionsPeak  int64
	SessionsTotal uint64

	StmtsInFlight int64
	StmtsTotal    uint64
	QueueDepth    int64
	QueueWaits    uint64

	ShedSessions uint64
	ShedStmts    uint64
	Drained      uint64
	Killed       uint64
	Cancels      uint64

	BytesIn      uint64
	BytesOut     uint64
	RowsStreamed uint64
}

// Snapshot reads the counters. Each field is read atomically; the
// snapshot as a whole is not a consistent cut, which is fine for
// monitoring counters.
func (c *NetCounters) Snapshot() NetStats {
	return NetStats{
		SessionsOpen:  c.SessionsOpen.Load(),
		SessionsPeak:  c.SessionsPeak.Load(),
		SessionsTotal: c.SessionsTotal.Load(),
		StmtsInFlight: c.StmtsInFlight.Load(),
		StmtsTotal:    c.StmtsTotal.Load(),
		QueueDepth:    c.QueueDepth.Load(),
		QueueWaits:    c.QueueWaits.Load(),
		ShedSessions:  c.ShedSessions.Load(),
		ShedStmts:     c.ShedStmts.Load(),
		Drained:       c.Drained.Load(),
		Killed:        c.Killed.Load(),
		Cancels:       c.Cancels.Load(),
		BytesIn:       c.BytesIn.Load(),
		BytesOut:      c.BytesOut.Load(),
		RowsStreamed:  c.RowsStreamed.Load(),
	}
}

// NetCounters returns the database's network counters, creating them
// on first use. The server attaches through here so that aim.Stats()
// and the INFO request observe the same counters.
func (db *DB) NetCounters() *NetCounters {
	if c := db.netCtr.Load(); c != nil {
		return c
	}
	fresh := &NetCounters{}
	if db.netCtr.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return db.netCtr.Load()
}

// NetStats snapshots the network counters; all-zero when no server has
// ever attached.
func (db *DB) NetStats() NetStats {
	if c := db.netCtr.Load(); c != nil {
		return c.Snapshot()
	}
	return NetStats{}
}
