package engine

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/segment"
	"repro/internal/wal"
)

// togglableWAL is an in-memory wal.File whose Write/Sync/Truncate can
// be made to fail on demand; the abort tests use it to fail a
// statement at precise points of its I/O sequence. The data survives
// the engine handle, so tests can "reopen" the same database.
type togglableWAL struct {
	data         []byte
	failWrite    int
	failSync     int
	failTruncate int
}

var errToggled = errors.New("togglableWAL: injected fault")

func (f *togglableWAL) Write(p []byte) (int, error) {
	if f.failWrite > 0 {
		f.failWrite--
		return 0, errToggled
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *togglableWAL) Sync() error {
	if f.failSync > 0 {
		f.failSync--
		return errToggled
	}
	return nil
}

func (f *togglableWAL) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *togglableWAL) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		return offset, nil
	case io.SeekEnd:
		return int64(len(f.data)) + offset, nil
	}
	return 0, fmt.Errorf("togglableWAL: unsupported whence %d", whence)
}

func (f *togglableWAL) Truncate(size int64) error {
	if f.failTruncate > 0 {
		f.failTruncate--
		return errToggled
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	return nil
}

func (f *togglableWAL) Close() error { return nil }

// faultDB is a WAL-backed in-memory database whose backing state
// outlives the engine handle.
type faultDB struct {
	walFile *togglableWAL
	stores  map[segment.ID]*segment.MemStore
}

func (fd *faultDB) open(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{
		OpenStore: func(id segment.ID) (segment.Store, error) {
			st := fd.stores[id]
			if st == nil {
				st = segment.NewMemStore()
				fd.stores[id] = st
			}
			return st, nil
		},
		OpenWALFile: func() (wal.File, error) { return fd.walFile, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func openFaultDB(t *testing.T) (*DB, *faultDB) {
	t.Helper()
	fd := &faultDB{walFile: &togglableWAL{}, stores: make(map[segment.ID]*segment.MemStore)}
	db := fd.open(t)
	if _, err := db.Exec(`CREATE TABLE EMP (ENO INT, NAME STRING, SAL INT);
		INSERT INTO EMP VALUES (1, 'A', 100);
		INSERT INTO EMP VALUES (2, 'B', 200)`); err != nil {
		t.Fatal(err)
	}
	return db, fd
}

func rowCount(t *testing.T, db *DB, table string) int {
	t.Helper()
	tbl, _, err := db.Query(`SELECT x.ENO FROM x IN ` + table)
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	return tbl.Len()
}

// TestCommitFailureRollsBack: the statement ran to completion but its
// commit sync failed — it must count as aborted: the row disappears,
// the engine stays usable, and a reopen over the same backing state
// agrees.
func TestCommitFailureRollsBack(t *testing.T) {
	db, fd := openFaultDB(t)
	fd.walFile.failSync = 1
	if _, err := db.Exec(`INSERT INTO EMP VALUES (3, 'C', 300)`); err == nil {
		t.Fatal("insert should have failed at commit")
	}
	if got := rowCount(t, db, "EMP"); got != 2 {
		t.Fatalf("%d rows after aborted insert, want 2", got)
	}
	if _, err := db.Exec(`INSERT INTO EMP VALUES (4, 'D', 400)`); err != nil {
		t.Fatalf("engine unusable after abort: %v", err)
	}
	if got := rowCount(t, db, "EMP"); got != 3 {
		t.Fatalf("%d rows after recovery insert, want 3", got)
	}
	// A fresh engine over the same log and stores must see the same
	// committed state: the aborted insert must not resurrect.
	db2 := fd.open(t)
	if got := rowCount(t, db2, "EMP"); got != 3 {
		t.Fatalf("%d rows after reopen, want 3", got)
	}
}

// TestMidStatementWALWriteFailureRollsBack fails the statement while
// it is still logging (a record larger than the append buffer forces
// a flush mid-Append), before any commit was attempted.
func TestMidStatementWALWriteFailureRollsBack(t *testing.T) {
	db, fd := openFaultDB(t)
	big := strings.Repeat("x", 8192)
	fd.walFile.failWrite = 1
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO EMP VALUES (3, '%s', 300)`, big)); err == nil {
		t.Fatal("insert should have failed mid-statement")
	}
	if got := rowCount(t, db, "EMP"); got != 2 {
		t.Fatalf("%d rows after aborted insert, want 2", got)
	}
	// The sticky bufio error from the failed flush must be gone.
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO EMP VALUES (3, '%s', 300)`, big)); err != nil {
		t.Fatalf("engine unusable after abort: %v", err)
	}
	if got := rowCount(t, db, "EMP"); got != 3 {
		t.Fatalf("%d rows, want 3", got)
	}
}

// TestPanicBecomesTaggedError: a panic inside statement execution
// surfaces as a *PanicError carrying the statement text, and the
// abort path heals the engine (reloadRuntime rebuilds the executor,
// which is how this induced nil-runtime panic self-repairs).
func TestPanicBecomesTaggedError(t *testing.T) {
	db, _ := openFaultDB(t)

	db.exec.RT = nil // next statement panics on a nil runtime
	_, _, err := db.Query(`SELECT x.ENO FROM x IN EMP`)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if !strings.Contains(pe.Error(), "SELECT x.ENO") {
		t.Fatalf("panic error does not carry the statement text: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack trace")
	}
	if got := rowCount(t, db, "EMP"); got != 2 {
		t.Fatalf("engine not healed after read-only panic: %d rows", got)
	}

	db.exec.RT = nil
	if _, err := db.Exec(`INSERT INTO EMP VALUES (3, 'C', 300)`); !errors.As(err, &pe) {
		t.Fatalf("want *PanicError from mutating statement, got %v", err)
	}
	if got := rowCount(t, db, "EMP"); got != 2 {
		t.Fatalf("%d rows after panicking insert, want 2", got)
	}
	if _, err := db.Exec(`INSERT INTO EMP VALUES (3, 'C', 300)`); err != nil {
		t.Fatalf("engine unusable after panic abort: %v", err)
	}
}

// TestRollbackFailurePoisons: when even the rollback fails, the
// database must refuse all further statements instead of serving a
// state it cannot trust — and a reopen over the same backing state
// must come back clean.
func TestRollbackFailurePoisons(t *testing.T) {
	db, fd := openFaultDB(t)
	fd.walFile.failSync = 1
	fd.walFile.failTruncate = 100 // rollback's log truncation fails too
	_, err := db.Exec(`INSERT INTO EMP VALUES (3, 'C', 300)`)
	if err == nil || !strings.Contains(err.Error(), "needs reopen") {
		t.Fatalf("want poisoning error, got %v", err)
	}
	if _, _, qerr := db.Query(`SELECT x.ENO FROM x IN EMP`); !errors.Is(qerr, db.fatalErr) {
		t.Fatalf("poisoned database served a query: %v", qerr)
	}
	if _, err2 := db.Exec(`INSERT INTO EMP VALUES (5, 'E', 500)`); !errors.Is(err2, db.fatalErr) {
		t.Fatalf("poisoned database accepted DML: %v", err2)
	}
	// Reopen resolves the failed statement like an in-doubt transaction
	// after a power cut: its commit record physically reached the log
	// (only the fsync acknowledgment failed) and the broken rollback
	// could not truncate it, so recovery legitimately replays it. The
	// user was told the statement's outcome is unreliable ("needs
	// reopen"); what is not negotiable is that the reopened database is
	// consistent and usable.
	fd.walFile.failTruncate = 0
	db2 := fd.open(t)
	if got := rowCount(t, db2, "EMP"); got != 3 {
		t.Fatalf("%d rows after reopen of poisoned database, want 3 (in-doubt insert resolved as committed)", got)
	}
	if _, err := db2.Exec(`INSERT INTO EMP VALUES (6, 'F', 600)`); err != nil {
		t.Fatalf("reopened database unusable: %v", err)
	}
	if got := rowCount(t, db2, "EMP"); got != 4 {
		t.Fatalf("%d rows, want 4", got)
	}
}
