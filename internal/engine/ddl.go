package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/textindex"
)

// TableOptions refine CREATE TABLE.
type TableOptions struct {
	Versioned bool
	Layout    object.Layout // 0 = database default
}

// CreateTable defines a new table. Flat (1NF) types are stored
// without Mini Directories; nested types as complex objects under the
// chosen storage structure.
func (db *DB) CreateTable(name string, tt *model.TableType, opts TableOptions) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := tt.Validate(); err != nil {
		return err
	}
	if _, exists := db.cat.Table(name); exists {
		return fmt.Errorf("engine: table %q already exists", name)
	}
	seg, err := db.cat.AllocateSegment()
	if err != nil {
		return err
	}
	layout := opts.Layout
	if layout == 0 {
		layout = db.opts.DefaultLayout
	}
	t := &catalog.Table{
		Name: name, Type: tt.Clone(), Seg: seg,
		Kind: catalog.Complex, Layout: uint8(layout), Versioned: opts.Versioned,
	}
	if tt.Flat() {
		t.Kind = catalog.Flat
	}
	if err := db.registerSegment(seg, opts.Versioned); err != nil {
		return err
	}
	if err := db.attachTable(t); err != nil {
		return err
	}
	if err := db.cat.AddTable(t); err != nil {
		return err
	}
	db.bumpEpoch()
	return nil
}

// DropTable removes a table, its data structures and its indexes.
// The segment's pages are abandoned (the prototype has no segment
// garbage collection).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("engine: no table %q", name)
	}
	if err := db.cat.DropTable(name); err != nil {
		return err
	}
	delete(db.mgrs, name)
	delete(db.flats, name)
	for _, ix := range db.indexes[name] {
		delete(db.indexByName, ix.Name)
	}
	delete(db.indexes, name)
	for _, ti := range db.textIdx[name] {
		delete(db.textByName, ti.Name)
	}
	delete(db.textIdx, name)
	_ = t
	db.bumpEpoch()
	return nil
}

// CreateIndex defines and builds a value index. using selects the
// address strategy (default HIERARCHICAL, AIM-II's conclusion in
// §4.2); DATA and ROOT exist to reproduce the paper's comparison.
func (db *DB) CreateIndex(name, table string, path []string, using string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	kind := index.Hierarchical
	switch strings.ToUpper(using) {
	case "", "HIERARCHICAL", "HIER":
		kind = index.Hierarchical
	case "ROOT":
		kind = index.RootTID
	case "DATA":
		kind = index.DataTID
	default:
		return fmt.Errorf("engine: unknown index strategy %q (DATA, ROOT or HIERARCHICAL)", using)
	}
	def := &catalog.IndexDef{Name: name, Table: table, Path: path, Kind: uint8(kind)}
	if err := db.cat.AddIndex(def); err != nil {
		return err
	}
	if err := db.buildIndex(def); err != nil {
		db.cat.DropIndex(name)
		return err
	}
	db.bumpEpoch()
	return nil
}

// CreateTextIndex defines and builds a word-fragment text index.
func (db *DB) CreateTextIndex(name, table string, path []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	def := &catalog.IndexDef{Name: name, Table: table, Path: path, Text: true}
	if err := db.cat.AddIndex(def); err != nil {
		return err
	}
	if err := db.buildIndex(def); err != nil {
		db.cat.DropIndex(name)
		return err
	}
	db.bumpEpoch()
	return nil
}

// DropIndex removes an index.
func (db *DB) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	def, ok := db.cat.Index(name)
	if !ok {
		return fmt.Errorf("engine: no index %q", name)
	}
	if err := db.cat.DropIndex(name); err != nil {
		return err
	}
	if def.Text {
		delete(db.textByName, name)
		list := db.textIdx[def.Table]
		for i, ti := range list {
			if ti.Name == name {
				db.textIdx[def.Table] = append(list[:i], list[i+1:]...)
				break
			}
		}
	} else {
		delete(db.indexByName, name)
		list := db.indexes[def.Table]
		for i, ix := range list {
			if ix.Name == name {
				db.indexes[def.Table] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	db.bumpEpoch()
	return nil
}

// buildIndex materializes an index definition from the table's data
// and registers it with the planner. Indexes are memory resident and
// rebuilt at startup — a deliberate prototype decision (cf. the
// deferred index maintenance work /DLPS85/ the paper cites).
func (db *DB) buildIndex(def *catalog.IndexDef) error {
	ix, ti, err := db.BuildShadowIndex(def)
	if err != nil {
		return err
	}
	if def.Text {
		db.textIdx[def.Table] = append(db.textIdx[def.Table], ti)
		db.textByName[def.Name] = ti
		return nil
	}
	db.indexes[def.Table] = append(db.indexes[def.Table], ix)
	db.indexByName[def.Name] = ix
	return nil
}

// BuildShadowIndex materializes an index definition from the table's
// base data without registering the result: exactly one of the two
// returns is non-nil (the text index for def.Text). The scrubber
// compares shadow against live to detect index/data divergence, and
// aimdoctor uses it to rebuild degraded indexes.
func (db *DB) BuildShadowIndex(def *catalog.IndexDef) (*index.Index, *textindex.Index, error) {
	t, ok := db.cat.Table(def.Table)
	if !ok {
		return nil, nil, fmt.Errorf("engine: no table %q", def.Table)
	}
	if def.Text {
		ti := textindex.New(def.Name, def.Table, def.Path)
		if err := db.forEachText(t, def.Path, func(text string, addr index.Addr) error {
			ti.Add(text, addr)
			return nil
		}); err != nil {
			return nil, nil, err
		}
		return nil, ti, nil
	}
	ix, err := index.New(index.Def{
		Name: def.Name, Table: def.Table, Path: def.Path, Kind: index.Kind(def.Kind),
	}, t.Type)
	if err != nil {
		return nil, nil, err
	}
	if t.Kind == catalog.Flat {
		fs := db.flats[t.Name]
		if err := fs.Scan(func(tid page.TID, tup model.Tuple) error {
			return ix.AddFlat(tid, tup, t.Type)
		}); err != nil {
			return nil, nil, err
		}
	} else {
		m := db.mgrs[t.Name]
		if err := db.dirScan(t, 0, func(ref page.TID) error {
			return ix.AddObject(m, t.Type, ref)
		}); err != nil {
			return nil, nil, err
		}
	}
	return ix, nil, nil
}

// RebuildIndex drops the live incarnation of a cataloged index and
// rebuilds it from base data, clearing any degradation record on
// success. aimdoctor's repair path uses it after quarantined objects
// have been salvaged or dropped.
func (db *DB) RebuildIndex(name string) error {
	def, ok := db.cat.Index(name)
	if !ok {
		return fmt.Errorf("engine: no index %q", name)
	}
	// Swap the incarnations under the heal barrier: aimdoctor (and
	// tests) rebuild while readers stream, and those readers resolve
	// indexes by name from the maps buildIndex rewrites. The barrier
	// order matches the statement path (healMu before db.mu).
	db.healMu.Lock()
	db.mu.Lock()
	db.detachIndex(name)
	err := db.buildIndex(def)
	db.mu.Unlock()
	db.healMu.Unlock()
	if err != nil {
		db.noteDegraded(name, err)
		db.bumpEpoch()
		return err
	}
	db.clearDegraded(name)
	db.bumpEpoch()
	return nil
}

// forEachText enumerates the occurrences of a text attribute across
// the whole table, producing the text and its hierarchical address.
func (db *DB) forEachText(t *catalog.Table, path []string, fn func(text string, addr index.Addr) error) error {
	if t.Kind == catalog.Flat {
		ai := t.Type.AttrIndex(path[0])
		if ai < 0 || len(path) != 1 {
			return fmt.Errorf("engine: bad text index path %v on flat table", path)
		}
		fs := db.flats[t.Name]
		return fs.Scan(func(tid page.TID, tup model.Tuple) error {
			if s, ok := tup[ai].(model.Str); ok {
				return fn(string(s), index.Addr{TID: tid})
			}
			return nil
		})
	}
	tablePath, _, atomPos, kind, err := index.ResolvePath(t.Type, path)
	if err != nil {
		return err
	}
	if kind != model.KindString {
		return fmt.Errorf("engine: text index requires a STRING attribute, got %s", kind)
	}
	m := db.mgrs[t.Name]
	return db.dirScan(t, 0, func(ref page.TID) error {
		return m.EnumLevel(t.Type, ref, tablePath, func(dpath []page.MiniTID, atoms []model.Value) error {
			if atomPos >= len(atoms) {
				return nil // attribute added after this subtuple was written
			}
			if s, ok := atoms[atomPos].(model.Str); ok {
				return fn(string(s), index.Addr{TID: ref, Path: append([]page.MiniTID(nil), dpath...)})
			}
			return nil
		})
	})
}

// forEachTextOfObject enumerates text occurrences of one object (for
// incremental maintenance).
func (db *DB) forEachTextOfObject(t *catalog.Table, ref page.TID, path []string, fn func(text string, addr index.Addr) error) error {
	tablePath, _, atomPos, _, err := index.ResolvePath(t.Type, path)
	if err != nil {
		return err
	}
	m := db.mgrs[t.Name]
	return m.EnumLevel(t.Type, ref, tablePath, func(dpath []page.MiniTID, atoms []model.Value) error {
		if atomPos >= len(atoms) {
			return nil
		}
		if s, ok := atoms[atomPos].(model.Str); ok {
			return fn(string(s), index.Addr{TID: ref, Path: append([]page.MiniTID(nil), dpath...)})
		}
		return nil
	})
}

// AlterTableAdd appends a new atomic attribute at the end of the
// level addressed by path (last component = new attribute name).
// Existing tuples read the attribute as null; no stored data is
// rewritten. Appending keeps every existing attribute position — and
// therefore every Mini Directory layout, data subtuple and index —
// valid, which is why only trailing atomic additions are supported.
func (db *DB) AlterTableAdd(table string, path []string, typ model.Type) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if typ.Kind == model.KindTable || !typ.Kind.Atomic() {
		return fmt.Errorf("engine: ALTER TABLE ADD supports atomic attributes only")
	}
	if len(path) == 0 {
		return fmt.Errorf("engine: empty attribute path")
	}
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	newType := t.Type.Clone()
	level := newType
	for _, name := range path[:len(path)-1] {
		ai := level.AttrIndex(name)
		if ai < 0 {
			return fmt.Errorf("engine: no attribute %q in %s", name, level)
		}
		if level.Attrs[ai].Type.Kind != model.KindTable {
			return fmt.Errorf("engine: %q is not a subtable", name)
		}
		level = level.Attrs[ai].Type.Table
	}
	attrName := path[len(path)-1]
	if level.AttrIndex(attrName) >= 0 {
		return fmt.Errorf("engine: attribute %q already exists", attrName)
	}
	level.Attrs = append(level.Attrs, model.Attr{Name: attrName, Type: typ})
	if err := newType.Validate(); err != nil {
		return err
	}
	t.Type = newType
	if err := db.cat.UpdateTable(t); err != nil {
		return err
	}
	// Flat stores cache the type; rewire.
	if err := db.attachTable(t); err != nil {
		return err
	}
	db.bumpEpoch()
	return nil
}
