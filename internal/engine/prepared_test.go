package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Re-executing a PreparedStmt performs zero parser and zero planner
// work: parse happened once in Prepare, bind once per catalog epoch,
// and every subsequent execution reuses both.
func TestPreparedZeroParsePlanWork(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	ps, err := db.Prepare(`SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`)
	if err != nil {
		t.Fatal(err)
	}
	// First execution settles any lazy work.
	if _, _, err := ps.Query(model.Int(314)); err != nil {
		t.Fatal(err)
	}

	parsed0 := sql.StatementsParsed()
	prepares0 := plan.PrepareCount()
	chooses0 := plan.ChooseCount()
	for i := 0; i < 50; i++ {
		dno := model.Int([]int64{314, 218, 417}[i%3])
		tbl, _, err := ps.Query(dno)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != 1 || tbl.Tuples[0][0] != dno {
			t.Fatalf("iteration %d: got %v for DNO %v", i, tbl.Tuples, dno)
		}
	}
	if d := sql.StatementsParsed() - parsed0; d != 0 {
		t.Errorf("re-execution parsed %d statement(s), want 0", d)
	}
	if d := plan.PrepareCount() - prepares0; d != 0 {
		t.Errorf("re-execution ran the bind phase %d time(s), want 0", d)
	}
	if d := plan.ChooseCount() - chooses0; d != 0 {
		t.Errorf("re-execution ran the inline planner %d time(s), want 0", d)
	}

	// The plan actually uses the index (not a full scan that happens
	// to be correct).
	lines, _, err := ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "DEPT_DNO") {
		t.Errorf("prepared plan does not use DEPT_DNO:\n%s", strings.Join(lines, "\n"))
	}
}

// Two PreparedStmts over the same normalized SQL share one cached
// plan: the second Prepare is a cache hit, and executing it (a plan
// bound from a different parse's AST) produces the same rows.
func TestPreparedPlanCacheSharing(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`
	ps1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	hits0 := db.PlanCacheStats().Hits
	// Different surface text, same normalized SQL.
	ps2, err := db.Prepare("SELECT x.DNO,\n   x.MGRNO  FROM x IN DEPARTMENTS WHERE x.DNO=?")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.PlanCacheStats().Hits; got != hits0+1 {
		t.Errorf("second Prepare: cache hits = %d, want %d", got, hits0+1)
	}
	for _, ps := range []*PreparedStmt{ps1, ps2} {
		tbl, _, err := ps.Query(model.Int(218))
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != 1 || tbl.Tuples[0][0] != model.Int(218) {
			t.Fatalf("shared-plan query returned %v", tbl.Tuples)
		}
	}
	// The shared plan must still drive the index, not fall back to a
	// scan because the ASTs differ.
	lines, fromCache, err := ps2.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !fromCache {
		t.Errorf("ps2 plan should have come from the shared cache")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "DEPT_DNO") {
		t.Errorf("shared plan does not use DEPT_DNO:\n%s", strings.Join(lines, "\n"))
	}
}

// DDL bumps the catalog epoch: the next execution of an existing
// PreparedStmt transparently re-binds (counted as a cache
// invalidation) and keeps returning correct results.
func TestPreparedDDLInvalidates(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	ps, err := db.Prepare(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Query(model.Int(314)); err != nil {
		t.Fatal(err)
	}
	// Before the index exists the plan is a full scan.
	lines, _, err := ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "full table scan") {
		t.Fatalf("pre-index plan should be a scan:\n%s", strings.Join(lines, "\n"))
	}

	epoch0 := db.CatalogEpoch()
	inv0 := db.PlanCacheStats().Invalidations
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	if db.CatalogEpoch() == epoch0 {
		t.Fatalf("CreateIndex did not bump the catalog epoch")
	}

	// Re-execution re-binds and picks up the new index.
	tbl, _, err := ps.Query(model.Int(314))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("post-DDL query returned %d rows, want 1", tbl.Len())
	}
	lines, _, err = ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "DEPT_DNO") {
		t.Errorf("post-DDL plan does not use the new index:\n%s", strings.Join(lines, "\n"))
	}
	if got := db.PlanCacheStats().Invalidations; got <= inv0 {
		t.Errorf("invalidations = %d, want > %d", got, inv0)
	}

	// Unrelated DDL invalidates too (the epoch is coarse by design)
	// and execution stays correct.
	if _, err := db.Exec(`CREATE TABLE SCRATCH (N INT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _, err = ps.Query(model.Int(218))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Tuples[0][0] != model.Int(218) {
		t.Fatalf("post-CREATE TABLE query returned %v", tbl.Tuples)
	}
}

// A degraded (quarantined) index detaches cached plans: the next
// execution re-binds to a plan that no longer names the index, and a
// stale plan never touches it — results stay correct throughout.
func TestPreparedQuarantinedIndexInvalidates(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	ps, err := db.Prepare(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = ?`)
	if err != nil {
		t.Fatal(err)
	}
	lines, _, err := ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "DEPT_DNO") {
		t.Fatalf("plan should use DEPT_DNO before degradation:\n%s", strings.Join(lines, "\n"))
	}

	db.DegradeIndex("DEPT_DNO", dberr.Corruptf("test: injected corruption"))

	// Execution after the degradation: correct rows via a widened plan.
	tbl, _, err := ps.Query(model.Int(314))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Tuples[0][0] != model.Int(314) {
		t.Fatalf("post-degrade query returned %v", tbl.Tuples)
	}
	lines, _, err = ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if strings.Contains(joined, "DEPT_DNO") {
		t.Errorf("plan still names the quarantined index:\n%s", joined)
	}
	if !strings.Contains(joined, "full table scan") {
		t.Errorf("post-degrade plan should be a scan:\n%s", joined)
	}

	// Rebuilding restores the index and the plan follows.
	if err := db.RebuildIndex("DEPT_DNO"); err != nil {
		t.Fatal(err)
	}
	lines, _, err = ps.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "DEPT_DNO") {
		t.Errorf("plan does not return to the rebuilt index:\n%s", strings.Join(lines, "\n"))
	}
}

// Prepared DML: placeholders in INSERT values, UPDATE SET/WHERE and
// DELETE WHERE, re-executed with different arguments.
func TestPreparedDML(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE NOTES (ID INT, BODY STRING)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO NOTES VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ins.Exec(model.Int(i), model.Str(fmt.Sprintf("note-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	upd, err := db.Prepare(`UPDATE x IN NOTES SET BODY = ? WHERE x.ID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := upd.Exec(model.Str("edited"), model.Int(2)); err != nil || res.Count != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	del, err := db.Prepare(`DELETE x FROM x IN NOTES WHERE x.ID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := del.Exec(model.Int(1)); err != nil || res.Count != 1 {
		t.Fatalf("delete: %v %v", res, err)
	}
	tbl, _, err := db.Query(`SELECT n.ID, n.BODY FROM n IN NOTES WHERE n.ID = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Tuples[0][1] != model.Str("edited") {
		t.Fatalf("after DML: %v", tbl.Tuples)
	}
}

// Argument-count mismatches fail before touching the engine.
func TestPreparedArgCount(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	ps, err := db.Prepare(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = ? AND x.BUDGET > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", ps.NumParams())
	}
	if _, err := ps.Exec(model.Int(1)); err == nil {
		t.Fatal("Exec with 1 of 2 args should fail")
	}
	if _, err := ps.Exec(model.Int(1), model.Int(2), model.Int(3)); err == nil {
		t.Fatal("Exec with 3 of 2 args should fail")
	}
	if _, err := db.Prepare(`BEGIN`); err == nil {
		t.Fatal("Prepare(BEGIN) should fail")
	}
}

// Property matrix: prepared execution with bound arguments is
// observationally identical to unprepared execution with the literals
// inlined, over seeded random nested schemas and values.
func TestPreparedMatchesUnpreparedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 5; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			runPreparedMatrixRound(t, rand.New(rand.NewSource(int64(100+round))), rng.Intn(2) == 0)
		})
	}
}

// runPreparedMatrixRound builds one random two-level schema in two
// identical databases, then drives the prepared API against one and
// the literal-inlined unprepared API against the other; after every
// statement both databases must agree exactly.
func runPreparedMatrixRound(t *testing.T, rng *rand.Rand, indexed bool) {
	open := func() *DB {
		ts := int64(0)
		db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	dbP, dbU := open(), open()
	defer dbP.Close()
	defer dbU.Close()

	schema := `CREATE TABLE T (K INT, NAME STRING, KIDS TABLE OF (N INT, TAG STRING), W INT)`
	for _, db := range []*DB{dbP, dbU} {
		if _, err := db.Exec(schema); err != nil {
			t.Fatal(err)
		}
		if indexed {
			if err := db.CreateIndex("T_K", "T", []string{"K"}, "HIERARCHICAL"); err != nil {
				t.Fatal(err)
			}
			if err := db.CreateIndex("T_KID_N", "T", []string{"KIDS", "N"}, "HIERARCHICAL"); err != nil {
				t.Fatal(err)
			}
		}
	}

	tags := []string{"red", "green", "blue", "amber"}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}

	ins, err := dbP.Prepare(`INSERT INTO T VALUES (?, ?, {}, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := 5 + rng.Intn(10)
	for i := 0; i < rows; i++ {
		k := model.Int(rng.Intn(8))
		name := names[rng.Intn(len(names))]
		w := model.Int(rng.Intn(1000))
		if _, err := ins.Exec(k, model.Str(name), w); err != nil {
			t.Fatal(err)
		}
		if _, err := dbU.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s', {}, %d)`, k, name, w)); err != nil {
			t.Fatal(err)
		}
		// Grow the nested level through both APIs too.
		kids := rng.Intn(3)
		insKid, err := dbP.Prepare(`INSERT INTO x.KIDS FROM x IN T WHERE x.K = ? AND x.NAME = ? VALUES (?, ?)`)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < kids; j++ {
			n := model.Int(rng.Intn(5))
			tag := tags[rng.Intn(len(tags))]
			if _, err := insKid.Exec(k, model.Str(name), n, model.Str(tag)); err != nil {
				t.Fatal(err)
			}
			if _, err := dbU.Exec(fmt.Sprintf(
				`INSERT INTO x.KIDS FROM x IN T WHERE x.K = %d AND x.NAME = '%s' VALUES (%d, '%s')`, k, name, n, tag)); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := []struct {
		sql     string
		argf    func() []model.Value
		inlinef func(args []model.Value) string
	}{
		{
			sql:  `SELECT x.K, x.NAME, x.W FROM x IN T WHERE x.K = ?`,
			argf: func() []model.Value { return []model.Value{model.Int(rng.Intn(8))} },
			inlinef: func(a []model.Value) string {
				return fmt.Sprintf(`SELECT x.K, x.NAME, x.W FROM x IN T WHERE x.K = %d`, a[0])
			},
		},
		{
			sql:  `SELECT x.K, x.W FROM x IN T WHERE x.W < ?`,
			argf: func() []model.Value { return []model.Value{model.Int(rng.Intn(1000))} },
			inlinef: func(a []model.Value) string {
				return fmt.Sprintf(`SELECT x.K, x.W FROM x IN T WHERE x.W < %d`, a[0])
			},
		},
		{
			sql:  `SELECT x.K, x.NAME FROM x IN T WHERE EXISTS y IN x.KIDS: y.N = ?`,
			argf: func() []model.Value { return []model.Value{model.Int(rng.Intn(5))} },
			inlinef: func(a []model.Value) string {
				return fmt.Sprintf(`SELECT x.K, x.NAME FROM x IN T WHERE EXISTS y IN x.KIDS: y.N = %d`, a[0])
			},
		},
		{
			sql: `SELECT x.K, KIDS = (SELECT y.N, y.TAG FROM y IN x.KIDS WHERE y.TAG = ?) FROM x IN T WHERE x.K >= ?`,
			argf: func() []model.Value {
				return []model.Value{model.Str(tags[rng.Intn(len(tags))]), model.Int(rng.Intn(8))}
			},
			inlinef: func(a []model.Value) string {
				return fmt.Sprintf(
					`SELECT x.K, KIDS = (SELECT y.N, y.TAG FROM y IN x.KIDS WHERE y.TAG = '%s') FROM x IN T WHERE x.K >= %d`,
					a[0], a[1])
			},
		},
	}
	for qi, q := range queries {
		ps, err := dbP.Prepare(q.sql)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		for rep := 0; rep < 4; rep++ {
			args := q.argf()
			gotP, ttP, err := ps.Query(args...)
			if err != nil {
				t.Fatalf("query %d prepared: %v", qi, err)
			}
			gotU, ttU, err := dbU.Query(q.inlinef(args))
			if err != nil {
				t.Fatalf("query %d unprepared: %v", qi, err)
			}
			if !ttP.Equal(ttU) {
				t.Fatalf("query %d args %v: schema mismatch: %s vs %s", qi, args, ttP, ttU)
			}
			if !model.TableEqual(gotP, gotU) {
				t.Fatalf("query %d args %v: prepared and unprepared disagree:\n%s\n%s",
					qi, args,
					model.FormatTable("prepared", ttP, gotP),
					model.FormatTable("unprepared", ttU, gotU))
			}
		}
	}

	// Final state check: both databases hold identical data.
	finP, ttP, err := dbP.Query(`SELECT * FROM x IN T`)
	if err != nil {
		t.Fatal(err)
	}
	finU, ttU, err := dbU.Query(`SELECT * FROM x IN T`)
	if err != nil {
		t.Fatal(err)
	}
	if !ttP.Equal(ttU) || !model.TableEqual(finP, finU) {
		t.Fatalf("final states diverge:\n%s\n%s",
			model.FormatTable("prepared", ttP, finP),
			model.FormatTable("unprepared", ttU, finU))
	}
}

// Concurrent Prepare/execute against concurrent DDL and index
// degradation: no stale plan output, no lost updates to the cache,
// and (under -race) no data races.
func TestPreparedConcurrentDDL(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT x.DNO, x.MGRNO FROM x IN DEPARTMENTS WHERE x.DNO = ?`
	want := map[model.Int]model.Int{314: 56194, 218: 71349, 417: 91093}

	stop := make(chan struct{})
	var wg, warm sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		warm.Add(1)
		go func(c int) {
			defer wg.Done()
			warmed := false
			defer func() {
				if !warmed {
					warm.Done()
				}
			}()
			dnos := []model.Int{314, 218, 417}
			for i := 0; ; i++ {
				if i > 0 && !warmed {
					// First Prepare+executions done; let the churn start.
					warmed = true
					warm.Done()
				}
				select {
				case <-stop:
					return
				default:
				}
				ps, err := db.Prepare(q)
				if err != nil {
					errCh <- err
					return
				}
				for j := 0; j < 10; j++ {
					dno := dnos[(i+j)%len(dnos)]
					tbl, _, err := ps.QueryContext(context.Background(), dno)
					if err != nil {
						errCh <- err
						return
					}
					if tbl.Len() != 1 || tbl.Tuples[0][1] != want[dno] {
						errCh <- fmt.Errorf("client %d: DNO %v returned %v", c, dno, tbl.Tuples)
						return
					}
				}
			}
		}(c)
	}
	// Churn the catalog: create/drop an unrelated table, degrade and
	// rebuild the index the queries want to use.
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Wait until every client has bound and executed at least once,
		// so the churn is guaranteed to invalidate live plans.
		warm.Wait()
		for i := 0; i < 25; i++ {
			if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE CHURN%d (N INT)`, i)); err != nil {
				errCh <- err
				return
			}
			db.DegradeIndex("DEPT_DNO", dberr.Corruptf("test: churn"))
			if err := db.RebuildIndex("DEPT_DNO"); err != nil {
				errCh <- err
				return
			}
			if _, err := db.Exec(fmt.Sprintf(`DROP TABLE CHURN%d`, i)); err != nil {
				errCh <- err
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Deterministic invalidation check: bind once more (the cache now
	// holds a plan), bump the epoch with one more DDL, and re-execute —
	// the stale entry must be evicted and counted.
	ps, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE CHURN_FINAL (N INT)`); err != nil {
		t.Fatal(err)
	}
	inv0 := db.PlanCacheStats().Invalidations
	if tbl, _, err := ps.Query(model.Int(314)); err != nil || tbl.Len() != 1 {
		t.Fatalf("post-churn query: %v (%d rows)", err, tbl.Len())
	}
	if s := db.PlanCacheStats(); s.Invalidations <= inv0 {
		t.Errorf("final DDL produced no plan-cache invalidation: %+v", s)
	}
}

// Prepared statements inside transactions: arguments bind against the
// transaction's snapshot-reading executor, writes stay buffered until
// commit, and a prepared read inside the transaction sees them.
func TestPreparedInTransaction(t *testing.T) {
	db := openOffice(t)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE LOG (ID INT, MSG STRING)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO LOG VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := db.Prepare(`SELECT l.ID, l.MSG FROM l IN LOG WHERE l.ID = ?`)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := tx.ExecPrepared(ctx, ins, model.Int(1), model.Str("inside")); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own buffered write through the prepared
	// select...
	rows, err := tx.QueryRowsPrepared(ctx, sel, model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("tx sees %d rows, want 1", n)
	}
	// ...while the outside world does not, until commit.
	tbl, _, err := sel.Query(model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("uncommitted write visible outside: %v", tbl.Tuples)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl, _, err = sel.Query(model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Tuples[0][1] != model.Str("inside") {
		t.Fatalf("after commit: %v", tbl.Tuples)
	}
}
