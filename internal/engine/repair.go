package engine

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
)

// sealHoles formats every allocated-but-uninitialized durable page as
// a sealed empty page. It runs right after WAL recovery: by then
// every page holding committed data has been rebuilt from the log, so
// a remaining all-zero in-range page can only be a hole left by an
// aborted allocation — legitimate free space. Sealing the holes
// establishes the invariant that no in-range page is uninitialized at
// rest, which makes a page that later READS back zeroed an
// unambiguous sign of lost content (see the uninitialized-page checks
// in subtuple reads and scans) instead of something a scan may
// silently skip.
func (db *DB) sealHoles() error {
	for id := range db.stores {
		st := db.pool.Store(id)
		if st == nil {
			continue
		}
		buf := make([]byte, page.Size)
		for no := uint32(1); no <= st.PageCount(); no++ {
			if err := st.ReadPage(no, buf); err != nil {
				return fmt.Errorf("engine: seal holes: read %d.%d: %w", id, no, err)
			}
			if !allZero(buf) {
				continue
			}
			p := page.View(buf)
			p.Init()
			p.Seal(uint16(id), no)
			if err := st.WritePage(no, buf); err != nil {
				return fmt.Errorf("engine: seal holes: write %d.%d: %w", id, no, err)
			}
			db.pool.MarkSealed(buffer.PageKey{Seg: id, Page: no})
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Repair primitives used by aimdoctor. They bypass the per-statement
// index maintenance on purpose: a corrupt object cannot be read for
// entry withdrawal, so the doctor drops/replaces objects raw and
// rebuilds the affected indexes afterwards (RebuildIndex).

// SalvageObject reads as much of a complex object as remains readable
// (see object.Manager.Salvage). For flat tables the tuple either
// decodes or it does not — the result is all-or-nothing.
func (db *DB) SalvageObject(table string, ref page.TID) (*object.SalvageResult, error) {
	t, ok := db.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", table)
	}
	if t.Kind == catalog.Flat {
		tup, err := db.flats[table].Read(ref)
		if err != nil {
			return &object.SalvageResult{Lost: []string{fmt.Sprintf("tuple %v: %v", ref, err)}}, nil
		}
		return &object.SalvageResult{Tuple: tup, Complete: true}, nil
	}
	return db.mgrs[table].Salvage(t.Type, ref)
}

// DropCorruptObject removes an unreadable object from the table — the
// directory entry for complex tables, the record slot for flat ones —
// without the usual read-back index maintenance, and lifts its
// quarantine entry. Callers must rebuild the table's indexes
// afterwards; the object's own subtuples are abandoned in place (the
// prototype has no segment-level free list, cf. objCtx.reap).
func (db *DB) DropCorruptObject(table string, ref page.TID) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if t.Kind == catalog.Flat {
		if err := db.flats[table].Delete(ref); err != nil {
			return err
		}
	} else {
		if err := db.dirRemove(t, ref); err != nil {
			return err
		}
	}
	db.Unquarantine(table, ref)
	return nil
}

// ReplaceObject swaps a corrupt object for a (typically salvaged)
// replacement tuple: the old object is dropped raw and the tuple
// inserted as a fresh object with a new reference, which is returned.
// Callers must rebuild the table's indexes afterwards.
func (db *DB) ReplaceObject(table string, ref page.TID, tup model.Tuple) (page.TID, error) {
	t, ok := db.cat.Table(table)
	if !ok {
		return page.TID{}, fmt.Errorf("engine: no table %q", table)
	}
	if err := db.DropCorruptObject(table, ref); err != nil {
		return page.TID{}, err
	}
	if t.Kind == catalog.Flat {
		return db.flats[table].Insert(tup)
	}
	m := db.mgrs[table]
	newRef, err := m.Insert(t.Type, tup)
	if err != nil {
		return page.TID{}, err
	}
	if err := db.dirAdd(t, newRef); err != nil {
		return page.TID{}, err
	}
	return newRef, nil
}
