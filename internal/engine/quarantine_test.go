package engine

import (
	"errors"
	"testing"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
)

// A quarantined object fails every access with the typed error while
// the rest of the table — and every other table — keeps being served.
func TestQuarantineContainsObject(t *testing.T) {
	db := openOffice(t)
	tbl, _ := db.Catalog().Table("DEPARTMENTS")
	refs, err := db.Refs("DEPARTMENTS")
	if err != nil || len(refs) < 2 {
		t.Fatalf("refs: %v %v", refs, err)
	}
	bad := refs[0]
	db.QuarantineObject("DEPARTMENTS", bad, dberr.Corruptf("test: injected"))

	// Point read of the quarantined object: typed failure.
	if _, err := db.ReadRef(tbl, bad, 0); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("ReadRef(bad) = %v, want ErrQuarantined", err)
	} else if !dberr.IsCorrupt(err) {
		t.Fatalf("quarantine error should unwrap to dberr.ErrCorrupt, got %v", err)
	}
	// Point read of a healthy sibling: fine.
	if _, err := db.ReadRef(tbl, refs[1], 0); err != nil {
		t.Fatalf("ReadRef(healthy) = %v", err)
	}
	// A scan that would include the object fails loudly — never a
	// silently shortened result.
	if _, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS`); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("scan over quarantined object = %v, want ErrQuarantined", err)
	}
	// Other tables are untouched.
	if _, _, err := db.Query(`SELECT x.EMPNO FROM x IN EMPLOYEES_1NF`); err != nil {
		t.Fatalf("other table: %v", err)
	}
	// DML against the quarantined object fails fast.
	if err := db.Delete("DEPARTMENTS", bad); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Delete(bad) = %v, want ErrQuarantined", err)
	}

	// Listing and lifting.
	qs := db.Quarantined()
	if len(qs) != 1 || qs[0].Ref != bad || qs[0].Table != "DEPARTMENTS" {
		t.Fatalf("Quarantined() = %+v", qs)
	}
	db.Unquarantine("DEPARTMENTS", bad)
	if _, err := db.ReadRef(tbl, bad, 0); err != nil {
		t.Fatalf("after Unquarantine: %v", err)
	}
}

// A quarantined directory (zero ref) blocks scans but not point reads.
func TestQuarantineDirectoryBlocksScansOnly(t *testing.T) {
	db := openOffice(t)
	tbl, _ := db.Catalog().Table("DEPARTMENTS")
	refs, _ := db.Refs("DEPARTMENTS")
	db.QuarantineObject("DEPARTMENTS", page.TID{}, dberr.Corruptf("test: dir chunk"))

	if _, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS`); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("scan = %v, want ErrQuarantined", err)
	}
	if _, err := db.ReadRef(tbl, refs[0], 0); err != nil {
		t.Fatalf("point read under dir quarantine: %v", err)
	}
}

// A degraded index disappears from the planner's view; queries fall
// back to base-table scans with identical results.
func TestDegradedIndexFallsBackToScan(t *testing.T) {
	db := openOffice(t)
	if _, err := db.Exec(`CREATE INDEX DNO_IX ON DEPARTMENTS (DNO)`); err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 218`)
	if err != nil {
		t.Fatal(err)
	}
	db.DegradeIndex("DNO_IX", dberr.Corruptf("test: rebuilt from rot"))
	if _, ok := db.IndexByName("DNO_IX"); ok {
		t.Fatal("degraded index still registered")
	}
	if reasons := db.DegradedIndexes(); reasons["DNO_IX"] == "" {
		t.Fatalf("DegradedIndexes() = %v", reasons)
	}
	got, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 218`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(got, want) {
		t.Fatal("degraded-index fallback changed the result")
	}
}
