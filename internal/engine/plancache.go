package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// planCacheLimit bounds the shared plan cache. Eviction is LRU; the
// limit exists to keep a workload of many distinct statements from
// growing the cache without bound, not as a tuning knob.
const planCacheLimit = 256

// planCache is the shared statement-plan cache: normalized SQL text →
// bound plan. Every entry carries the catalog epoch it was bound
// under; a lookup whose entry is stale (epoch behind the live one)
// evicts it and counts an invalidation — DDL and index changes do not
// walk the cache, they just bump the epoch (see DB.bumpEpoch). Cached
// plans are immutable and shared: a hit hands out the same *Prepared
// to any number of concurrent executions.
type planCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*plan.Prepared
	order   []string // LRU order, least recent first

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func newPlanCache(limit int) *planCache {
	return &planCache{limit: limit, entries: make(map[string]*plan.Prepared)}
}

// get returns the cached plan for key if it was bound under exactly
// the given epoch. A stale entry is evicted and counted as an
// invalidation (plus the miss).
func (c *planCache) get(key string, epoch uint64) (*plan.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	if p.Epoch != epoch {
		delete(c.entries, key)
		c.removeOrder(key)
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.touch(key)
	c.hits.Add(1)
	return p, true
}

// put stores a freshly bound plan, evicting the least recently used
// entry when full. An existing entry for the same key is replaced
// (last bind wins; both were bound under the same epoch or the older
// one is stale anyway).
func (c *planCache) put(key string, p *plan.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = p
		c.touch(key)
		return
	}
	if len(c.entries) >= c.limit {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = p
	c.order = append(c.order, key)
}

// touch moves key to the most-recently-used end.
func (c *planCache) touch(key string) {
	c.removeOrder(key)
	c.order = append(c.order, key)
}

func (c *planCache) removeOrder(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// len returns the current number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// PlanCacheStats reports the shared plan cache's counters.
type PlanCacheStats struct {
	// Hits counts lookups served by a cached, epoch-current plan
	// (parse and bind both skipped for that execution).
	Hits uint64
	// Misses counts lookups that had to bind (including those caused
	// by invalidations).
	Misses uint64
	// Invalidations counts cached plans discarded because the catalog
	// epoch moved under them (DDL, index create/drop, quarantine).
	Invalidations uint64
	// Entries is the current number of cached plans.
	Entries int
}

// PlanCacheStats returns a snapshot of the plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          db.plans.hits.Load(),
		Misses:        db.plans.misses.Load(),
		Invalidations: db.plans.invalidations.Load(),
		Entries:       db.plans.len(),
	}
}
