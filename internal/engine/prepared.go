package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
)

// PreparedStmt is one statement parsed and bound ahead of execution.
// Re-executing it performs no parser and (while the catalog epoch
// holds) no planner work: the parse happened once in Prepare, and the
// bind products — result schema, required path sets, access-path
// choices — come from the statement's own last bind or the shared
// plan cache. When DDL, an index change or an index degradation bumps
// the catalog epoch, the next execution transparently re-binds from
// the kept AST (still no re-parse).
//
// A PreparedStmt is safe for concurrent use: the bound plan is
// immutable and swapped atomically under a mutex.
type PreparedStmt struct {
	db  *DB
	st  sql.Stmt
	key string // normalized SQL — the plan-cache key

	mu        sync.Mutex
	plan      *plan.Prepared
	fromCache bool // last bind was served by the shared cache
}

// Prepare parses one statement (which may contain `?` placeholders)
// and binds its plan. Binding errors — unknown tables, type errors —
// surface here, not at execution. BEGIN/COMMIT/ROLLBACK cannot be
// prepared.
func (db *DB) Prepare(q string) (*PreparedStmt, error) {
	st, err := sql.ParseOneStmt(q)
	if err != nil {
		return nil, err
	}
	switch st.Statement.(type) {
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return nil, fmt.Errorf("engine: cannot prepare a transaction-control statement")
	}
	key, err := sql.Normalize(st.Text)
	if err != nil {
		return nil, err
	}
	ps := &PreparedStmt{db: db, st: st, key: key}
	if _, err := ps.bind(); err != nil {
		return nil, err
	}
	return ps, nil
}

// Text returns the statement's original SQL text.
func (ps *PreparedStmt) Text() string { return ps.st.Text }

// NumParams returns the number of `?` placeholders.
func (ps *PreparedStmt) NumParams() int { return ps.st.Params }

// Stmt returns the parsed statement (shared; do not mutate).
func (ps *PreparedStmt) Stmt() sql.Statement { return ps.st.Statement }

// bind returns a plan bound under the current catalog epoch: the
// statement's own last plan when still current (the hot path — one
// atomic epoch load and a pointer compare), else the shared cache,
// else a fresh bind (which populates the cache). The epoch is read
// and the bind performed under the shared heal barrier — DDL takes
// the exclusive side, so the (epoch, catalog) pair is consistent.
func (ps *PreparedStmt) bind() (*plan.Prepared, error) {
	db := ps.db
	db.healMu.RLock()
	defer db.healMu.RUnlock()
	if err := db.fatal(); err != nil {
		return nil, err
	}
	epoch := db.epoch.Load()
	ps.mu.Lock()
	if p := ps.plan; p != nil && p.Epoch == epoch {
		ps.mu.Unlock()
		return p, nil
	}
	ps.mu.Unlock()
	p, cached, err := db.planFor(ps.st, ps.key, epoch)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	ps.plan = p
	ps.fromCache = cached
	ps.mu.Unlock()
	return p, nil
}

// planFor serves a plan for the statement under the given epoch from
// the shared cache, binding (and caching) on a miss. Caller holds
// healMu shared.
func (db *DB) planFor(st sql.Stmt, key string, epoch uint64) (*plan.Prepared, bool, error) {
	if p, ok := db.plans.get(key, epoch); ok {
		return p, true, nil
	}
	p, err := plan.Prepare(st, key, db.exec, epoch)
	if err != nil {
		return nil, false, err
	}
	db.plans.put(key, p)
	return p, false, nil
}

// checkArgs validates the argument count against the statement's
// placeholder count.
func (ps *PreparedStmt) checkArgs(args []model.Value) error {
	if len(args) != ps.st.Params {
		return fmt.Errorf("engine: statement wants %d argument(s), got %d", ps.st.Params, len(args))
	}
	return nil
}

// Exec runs the prepared statement with the given arguments (one per
// `?`, in order) and commits it, like DB.Exec does for a one-shot
// statement.
func (ps *PreparedStmt) Exec(args ...model.Value) (Result, error) {
	return ps.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation.
func (ps *PreparedStmt) ExecContext(ctx context.Context, args ...model.Value) (Result, error) {
	if err := ps.checkArgs(args); err != nil {
		return Result{}, err
	}
	prep, err := ps.bind()
	if err != nil {
		return Result{}, err
	}
	return ps.db.execOneArgs(ctx, ps.st.Statement, ps.st.Text, args, prep)
}

// Query runs the prepared statement (which must be a SELECT) with the
// given arguments and materializes the result.
func (ps *PreparedStmt) Query(args ...model.Value) (*model.Table, *model.TableType, error) {
	return ps.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation.
func (ps *PreparedStmt) QueryContext(ctx context.Context, args ...model.Value) (*model.Table, *model.TableType, error) {
	if _, ok := ps.st.Statement.(*sql.Select); !ok {
		return nil, nil, fmt.Errorf("engine: Query requires a SELECT, got %T", ps.st.Statement)
	}
	res, err := ps.ExecContext(ctx, args...)
	if err != nil {
		return nil, nil, err
	}
	return res.Table, res.Type, nil
}

// QueryRows runs the prepared SELECT with the given arguments and
// returns a streaming cursor over its results.
func (ps *PreparedStmt) QueryRows(args ...model.Value) (*Rows, error) {
	return ps.QueryRowsContext(context.Background(), args...)
}

// QueryRowsContext is QueryRows with cancellation.
func (ps *PreparedStmt) QueryRowsContext(ctx context.Context, args ...model.Value) (*Rows, error) {
	if err := ps.checkArgs(args); err != nil {
		return nil, err
	}
	prep, err := ps.bind()
	if err != nil {
		return nil, err
	}
	if prep.Sel == nil {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT, got %T", ps.st.Statement)
	}
	return ps.db.queryRowsPrepared(ctx, prep, args)
}

// Explain renders the bound plan's access paths and fetch sets
// without executing anything, and reports whether the plan was served
// by the shared cache (false: this statement's own bind, or a fresh
// bind after an invalidation).
func (ps *PreparedStmt) Explain() (lines []string, fromCache bool, err error) {
	prep, err := ps.bind()
	if err != nil {
		return nil, false, err
	}
	ps.mu.Lock()
	fromCache = ps.fromCache
	ps.mu.Unlock()
	return prep.Describe(), fromCache, nil
}
