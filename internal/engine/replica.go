package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/plan"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/textindex"
	"repro/internal/wal"
)

// ErrReadOnlyReplica is returned for any write attempted on a read
// replica (Options.Replica): DML, DDL, and explicit transactions. The
// replica's state is entirely a function of the primary's shipped WAL;
// a local write would fork the two histories.
var ErrReadOnlyReplica = errors.New("engine: read replica is read-only")

// --- replica reads -------------------------------------------------------

// replicaRuntime is the storage interface a replica's queries run
// against. Reads of versioned tables are pinned to the replication
// visibility horizon — the commit timestamp of the last fully applied
// group — so a query (or an open cursor) observes one consistent
// committed snapshot even while the applier publishes newer commits
// under it. Explicit ASOF reads keep their user-specified instant, as
// everywhere else; reads of non-versioned tables see latest applied
// state, like a primary reader racing a committing writer.
//
// Indexes are nil: the applier redoes page writes only, so the
// memory-resident indexes a primary maintains do not exist here and
// every query falls back to base-table scans (promotion rebuilds them;
// see RestoreSnapshot and the failover drill in internal/replsim).
type replicaRuntime struct {
	*runtime
	ts int64
}

func (r *replicaRuntime) pin(t *catalog.Table, asof int64) int64 {
	if asof != 0 || !t.Versioned || r.ts == 0 {
		return asof
	}
	return r.ts
}

func (r *replicaRuntime) ScanTable(t *catalog.Table, asof int64, fn func(ref page.TID, tup model.Tuple) error) error {
	return r.runtime.ScanTable(t, r.pin(t, asof), fn)
}

func (r *replicaRuntime) ReadRef(t *catalog.Table, ref page.TID, asof int64) (model.Tuple, error) {
	return r.runtime.ReadRef(t, ref, r.pin(t, asof))
}

func (r *replicaRuntime) OpenScan(t *catalog.Table, asof int64, ps *object.PathSet) (exec.ScanCursor, error) {
	return r.runtime.OpenScan(t, r.pin(t, asof), ps)
}

func (r *replicaRuntime) OpenRef(t *catalog.Table, ref page.TID, asof int64, ps *object.PathSet) (model.Tuple, error) {
	return r.runtime.OpenRef(t, ref, r.pin(t, asof), ps)
}

func (r *replicaRuntime) Indexes(string) []*index.Index { return nil }

func (r *replicaRuntime) TextIndexes(string) []*textindex.Index { return nil }

// readExec returns the executor a read statement should run through:
// the database's own on a primary, and on a replica a fresh executor
// whose runtime pins this statement (or cursor) to the visibility
// horizon sampled now. Sampling once per call is what makes an open
// cursor snapshot-stable across concurrently applied groups.
func (db *DB) readExec() *exec.Executor {
	if !db.opts.Replica {
		return db.exec
	}
	base := db.exec
	return &exec.Executor{
		RT:        &replicaRuntime{runtime: (*runtime)(db), ts: db.ReplCounters().VisibleTS.Load()},
		Plan:      plan.Choose,
		Trace:     base.Trace,
		FullPaths: base.FullPaths,
	}
}

// --- replica apply -------------------------------------------------------

// ReplicaApply applies one commit-terminated WAL group shipped from
// the primary: raw holds the group's verbatim bytes starting at global
// offset start (which must equal the replica log's end — the stream is
// byte-contiguous), recs their decoded form, and the last record is
// the terminator (OpCommit or OpCheckpoint). The group's bytes are
// mirrored into the replica's log first (the write-ahead rule), then
// redone onto the pages; a crash between the two replays the group
// from the mirrored log on reopen.
//
// Groups that touch the catalog's meta segment (DDL) — or, defensively,
// a segment the replica has not seen — rebuild the runtime under the
// heal barrier, exactly like primary-side DDL. Plain commit groups
// apply without the barrier, so open cursors keep streaming.
func (db *DB) ReplicaApply(start uint64, raw []byte, recs []wal.Record) error {
	if !db.opts.Replica {
		return errors.New("engine: ReplicaApply on a non-replica database")
	}
	if len(recs) == 0 {
		return nil
	}
	term := recs[len(recs)-1]
	if term.Op != wal.OpCommit && term.Op != wal.OpCheckpoint {
		return fmt.Errorf("engine: shipped group ends with op %d, not a commit horizon", term.Op)
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if err := db.fatal(); err != nil {
		return err
	}
	meta := false
	for _, r := range recs {
		if r.Seg == 0 {
			continue
		}
		if r.Seg == catalog.MetaSegment {
			meta = true
			break
		}
		if _, ok := db.stores[r.Seg]; !ok {
			meta = true
			break
		}
	}
	if meta {
		db.healMu.Lock()
		defer db.healMu.Unlock()
	}
	apply := func(rs []wal.Record) error {
		for _, r := range rs {
			if r.Seg != 0 {
				if _, ok := db.stores[r.Seg]; !ok {
					if err := db.registerSegment(r.Seg, false); err != nil {
						return err
					}
				}
			}
			if err := subtuple.ApplyShipped(db.pool, r); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	switch term.Op {
	case wal.OpCommit:
		if err = db.log.MirrorAppend(start, raw); err == nil {
			err = apply(recs)
		}
	case wal.OpCheckpoint:
		// Everything before the checkpoint record mirrors and applies
		// like a plain group; then all pages are flushed so the
		// checkpoint is locally honest (recovery from it must not need
		// older history), and the record itself rolls the mirrored log
		// onto a fresh segment, allowing the dead ones to retire.
		termStart := term.LSN - 1
		pre := raw[:termStart-start]
		if len(pre) > 0 {
			err = db.log.MirrorAppend(start, pre)
		}
		if err == nil {
			err = apply(recs[:len(recs)-1])
		}
		if err == nil {
			err = db.pool.FlushAll()
		}
		if err == nil {
			err = db.log.MirrorCheckpoint(termStart, raw[termStart-start:])
		}
		if err == nil {
			_, err = db.log.Recycle()
		}
	}
	if err != nil {
		// A half-applied group leaves pages the next group cannot build
		// on; poison the handle like a failed rollback would.
		db.setFatal(fmt.Errorf("engine: replica apply at %d: %w", start, err))
		return err
	}
	if meta {
		if err := db.reloadRuntime(); err != nil {
			db.setFatal(fmt.Errorf("engine: replica reload at %d: %w", start, err))
			return err
		}
	}
	ctr := db.ReplCounters()
	ctr.AppliedLSN.Store(start + uint64(len(raw)))
	ctr.GroupsApplied.Add(1)
	if term.Op == wal.OpCommit {
		if _, ts, ok := wal.DecodeCommitPayload(term.Payload); ok && ts > 0 {
			ctr.NoteVisible(ts)
		}
	}
	return nil
}

// --- snapshots -----------------------------------------------------------

// ReplSnapSeg is one data segment's pages in a replication snapshot.
type ReplSnapSeg struct {
	ID    segment.ID
	Pages uint32
	Data  []byte // Pages * page.Size verbatim bytes, page 1 first
}

// ReplSnapshot is a checkpoint-consistent copy of the database: every
// segment's pages plus the WAL tail from the checkpoint the pages are
// consistent with. Restoring it (RestoreSnapshot) and replaying yields
// a byte-identical replica positioned at WALEnd. The snapshot is
// memory-resident — a deliberate prototype simplification; segment
// sizes here are bounded by the experiments, not production data.
type ReplSnapshot struct {
	Segs    []ReplSnapSeg
	WALBase uint64 // global offset of the first tail byte
	WAL     []byte // the checkpoint tail, [WALBase, WALEnd)
}

// WALEnd returns the offset replication resumes from after restore.
func (s *ReplSnapshot) WALEnd() uint64 { return s.WALBase + uint64(len(s.WAL)) }

// ReplicaSnapshot produces a snapshot for bootstrapping a follower. It
// checkpoints first (bounding the shipped tail), then under the apply
// lock flushes and reads every page — between statements, so the pages
// and the tail form exactly the state recovery reproduces.
func (db *DB) ReplicaSnapshot() (*ReplSnapshot, error) {
	if db.log == nil {
		return nil, errors.New("engine: replication requires a write-ahead log")
	}
	if db.opts.Replica {
		return nil, errors.New("engine: cascading replication is not supported")
	}
	if err := db.WALCheckpoint(); err != nil {
		return nil, err
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if err := db.fatal(); err != nil {
		return nil, err
	}
	if err := db.pool.FlushAll(); err != nil {
		return nil, err
	}
	if err := db.log.Sync(); err != nil {
		return nil, err
	}
	snap := &ReplSnapshot{WALBase: db.log.TailStart()}
	if end := db.log.SyncedThrough(); end > snap.WALBase {
		tail, err := db.log.ReadDurable(snap.WALBase, end)
		if err != nil {
			return nil, err
		}
		snap.WAL = tail
	}
	ids := make([]segment.ID, 0, len(db.stores))
	for id := range db.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := db.pool.Store(id)
		if st == nil {
			continue
		}
		n := st.PageCount()
		data := make([]byte, int(n)*page.Size)
		for p := uint32(1); p <= n; p++ {
			if err := st.ReadPage(p, data[int(p-1)*page.Size:int(p)*page.Size]); err != nil {
				return nil, fmt.Errorf("engine: snapshot read seg %d page %d: %w", id, p, err)
			}
		}
		snap.Segs = append(snap.Segs, ReplSnapSeg{ID: id, Pages: n, Data: data})
	}
	db.ReplCounters().SnapshotsServed.Add(1)
	return snap, nil
}

// RestoreSnapshot materializes a snapshot into dir, replacing any
// database already there: segment files are written verbatim (page
// LSNs and checksums travel with the bytes) and the WAL tail becomes
// the single retained log segment, named for its global base so the
// offsets keep meaning across the wire. Opening dir afterwards — with
// Options.Replica to keep following, or without to promote the
// follower to a standalone primary — runs ordinary recovery over it.
func RestoreSnapshot(dir string, snap *ReplSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".log") || (strings.HasPrefix(name, "seg_") && strings.HasSuffix(name, ".dat")) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	for _, s := range snap.Segs {
		if len(s.Data) != int(s.Pages)*page.Size {
			return fmt.Errorf("engine: snapshot seg %d: %d bytes for %d pages", s.ID, len(s.Data), s.Pages)
		}
		st, err := segment.OpenFileStore(filepath.Join(dir, fmt.Sprintf("seg_%d.dat", s.ID)))
		if err != nil {
			return err
		}
		for p := uint32(1); p <= s.Pages; p++ {
			if err := st.WritePage(p, s.Data[int(p-1)*page.Size:int(p)*page.Size]); err != nil {
				st.Close()
				return err
			}
		}
		if err := st.Sync(); err != nil {
			st.Close()
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, wal.SegFileName(snap.WALBase)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snap.WAL); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replicaRecover initializes the replica-side counters from the
// recovered log: the applied horizon is the log's end (recovery
// truncated any torn or uncommitted suffix) and the visibility horizon
// is the newest commit timestamp in the retained tail.
func (db *DB) replicaRecover() error {
	if db.log == nil {
		return errors.New("engine: Options.Replica requires a write-ahead log")
	}
	ctr := db.ReplCounters()
	ctr.Role.Store(RoleReplica)
	var vis int64
	if err := db.log.ReplayTail(func(r wal.Record) error {
		if r.Op == wal.OpCommit {
			if _, ts, ok := wal.DecodeCommitPayload(r.Payload); ok && ts > vis {
				vis = ts
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if vis > 0 {
		ctr.NoteVisible(vis)
	}
	ctr.AppliedLSN.Store(db.log.End())
	return nil
}
