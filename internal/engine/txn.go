package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/wal"
)

// Transaction errors.
var (
	// ErrWriteConflict reports first-writer-wins conflict detection: the
	// object a transaction tried to write was modified by another
	// transaction that is still active or that committed after this
	// transaction's snapshot was taken. The losing transaction should be
	// rolled back and retried.
	ErrWriteConflict = errors.New("engine: write conflict: object modified by a concurrent transaction")
	// ErrTxnDone reports an operation on a committed or rolled-back
	// transaction.
	ErrTxnDone = errors.New("engine: transaction already committed or rolled back")
	// ErrTxnDDL reports a DDL statement inside an explicit transaction;
	// schema changes are auto-commit only.
	ErrTxnDDL = errors.New("engine: DDL statements are not allowed inside a transaction")
)

// wkey identifies one write-conflict unit: a whole stored object (or
// flat tuple) of one table. Conflict detection is at object
// granularity — two transactions updating different subtuples of the
// same complex object still conflict.
type wkey struct {
	table string
	ref   page.TID
}

// synthBase is the first synthetic page number handed to refs of
// tuples inserted inside a transaction but not yet applied. Real
// segments are orders of magnitude smaller, so the ranges cannot
// collide; the synthetic refs are translated to real TIDs at commit.
const synthBase uint32 = 1 << 31

// txOpKind enumerates the buffered logical operations.
type txOpKind uint8

const (
	opInsert txOpKind = iota + 1
	opDelete
	opUpdateAtoms
	opInsertMember
	opDeleteMember
)

// txOp is one buffered write. A transaction mutates no storage until
// commit: its statements append ops here and maintain the pending
// read-your-own-writes images; Commit replays the ops against the
// engine under the apply lock.
type txOp struct {
	kind  txOpKind
	table string
	ref   page.TID // synthetic for tuples inserted by this transaction
	steps []object.Step
	attr  int
	pos   int
	vals  []model.Value
	tup   model.Tuple
}

// pendingObj is the transaction-local image of one written object:
// what this transaction's own reads see. Values are immutable once
// stored (writers replace the whole entry), so statement-level
// rollback can snapshot the map shallowly.
type pendingObj struct {
	tup      model.Tuple // nil when deleted
	deleted  bool
	inserted bool // created by this transaction (synthetic ref)
}

// Txn is one multi-statement transaction running under snapshot
// isolation. Reads of versioned tables see the database exactly as of
// the transaction's begin timestamp (plus the transaction's own
// writes); writes are buffered and applied atomically at Commit, all
// stamped with one commit timestamp. Unversioned tables keep no
// history, so reads of them inside a transaction see the current
// committed state (still never another transaction's uncommitted
// writes); their writes get the same buffering, conflict detection
// and atomic commit as versioned ones.
//
// A Txn is not safe for concurrent use by multiple goroutines.
type Txn struct {
	db     *DB
	id     uint64
	snapTS int64
	done   bool

	exec    *exec.Executor
	ops     []txOp
	pending map[wkey]*pendingObj
	order   []wkey // insertion order of pending keys, for stable scans
	locked  map[wkey]bool
	synth   uint32
}

// Begin starts a transaction. The snapshot timestamp is sampled under
// the shared side of snapMu, so it can never land inside another
// transaction's commit window.
func (db *DB) Begin() (*Txn, error) {
	db.healMu.RLock()
	defer db.healMu.RUnlock()
	if err := db.fatal(); err != nil {
		return nil, err
	}
	if db.opts.Replica {
		return nil, ErrReadOnlyReplica
	}
	db.snapMu.RLock()
	ts := db.opts.Clock()
	db.snapMu.RUnlock()
	tx := &Txn{
		db:      db,
		snapTS:  ts,
		pending: make(map[wkey]*pendingObj),
		locked:  make(map[wkey]bool),
	}
	tx.exec = &exec.Executor{RT: &txnRuntime{tx: tx}, Plan: plan.Choose}
	db.txnMu.Lock()
	db.nextTxn++
	tx.id = db.nextTxn
	db.activeTxns[tx.id] = tx
	db.txnMu.Unlock()
	return tx, nil
}

// ID returns the transaction's id (stamped into every version it
// creates and into its WAL commit record).
func (tx *Txn) ID() uint64 { return tx.id }

// SnapshotTS returns the transaction's begin (snapshot) timestamp.
func (tx *Txn) SnapshotTS() int64 { return tx.snapTS }

// registerWrite claims the conflict unit for this transaction:
// first-writer-wins, detected immediately (no waiting). It fails with
// ErrWriteConflict when another active transaction holds the object's
// write lock, or when a transaction committed a write to the object
// after this transaction's snapshot.
func (tx *Txn) registerWrite(k wkey) error {
	if tx.locked[k] {
		return nil
	}
	db := tx.db
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if holder, held := db.writeLocks[k]; held && holder != tx.id {
		return fmt.Errorf("%w (object %v of %s, held by transaction %d)", ErrWriteConflict, k.ref, k.table, holder)
	}
	if ts, ok := db.lastWrite[k]; ok && ts > tx.snapTS {
		return fmt.Errorf("%w (object %v of %s, committed at %d after snapshot %d)", ErrWriteConflict, k.ref, k.table, ts, tx.snapTS)
	}
	db.writeLocks[k] = tx.id
	tx.locked[k] = true
	return nil
}

// finish unregisters the transaction and releases its write locks.
// committed carries the commit timestamp to stamp into lastWrite (0
// for rollback). When the last active transaction finishes, the
// commit-stamp map is pruned — no snapshot can be older than any
// transaction that begins afterwards.
func (tx *Txn) finish(commitTS int64) {
	db := tx.db
	db.txnMu.Lock()
	for k := range tx.locked {
		if db.writeLocks[k] == tx.id {
			delete(db.writeLocks, k)
		}
		if commitTS != 0 {
			db.lastWrite[k] = commitTS
		}
	}
	delete(db.activeTxns, tx.id)
	if len(db.activeTxns) == 0 {
		db.lastWrite = make(map[wkey]int64)
	}
	db.txnMu.Unlock()
	tx.done = true
}

// Rollback discards the transaction: its buffered writes never touched
// storage, so this is pure bookkeeping. Idempotent after Commit in the
// database/sql style: rolling back a finished transaction returns
// ErrTxnDone.
func (tx *Txn) Rollback() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.finish(0)
	return nil
}

// Commit applies the transaction's buffered writes atomically and
// makes them durable. All versions written carry the transaction's id
// and one commit timestamp, taken under the exclusive side of snapMu —
// a concurrent snapshot sees either none or all of the transaction.
// On an apply error the engine rolls back to the last commit (the
// standard statement-abort path) and the transaction fails.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	db := tx.db
	if len(tx.ops) == 0 {
		// Read-only transaction: nothing to apply or log.
		tx.finish(0)
		return nil
	}
	db.applyMu.Lock()
	if err := db.fatal(); err != nil {
		db.applyMu.Unlock()
		tx.finish(0)
		return err
	}

	db.applying = true
	db.snapMu.Lock()
	commitTS := db.opts.Clock()
	for _, st := range db.stores {
		st.SetApply(tx.id, commitTS)
	}
	err := db.applyOps(tx)
	var end, epoch uint64
	if err == nil {
		end, epoch, err = db.appendTxnCommit(tx.id, commitTS)
	}
	for _, st := range db.stores {
		st.ClearApply()
	}
	db.snapMu.Unlock()
	db.applying = false

	if err != nil {
		// The partial application is wiped by rolling back to the last
		// WAL commit. (Between releasing snapMu and the rollback taking
		// the heal barrier there is a small window in which a new
		// snapshot could glimpse the doomed writes; the failure path
		// trades that edge for a deadlock-free lock order.)
		err = db.abortLocked(fmt.Errorf("engine: transaction %d commit: %w", tx.id, err))
		db.applyMu.Unlock()
		tx.finish(0)
		return err
	}
	db.applyMu.Unlock()
	// Establish durability outside the apply lock (group commit): the
	// transaction's effects are visible, but it is acknowledged only
	// once its commit record is on disk.
	if derr := db.waitCommitDurable(end, epoch); derr != nil {
		lost, aerr := db.abandonCommit(end)
		if lost {
			if aerr != nil {
				derr = fmt.Errorf("%v (discarding the record: %v)", derr, aerr)
			}
			err := db.abort(fmt.Errorf("engine: transaction %d commit: %w", tx.id, derr))
			tx.finish(0)
			return err
		}
		// An overlapping sync made the record durable after all.
	}
	tx.finish(commitTS)
	return nil
}

// applyOps replays the transaction's buffered writes against the
// storage layer (with index maintenance), translating synthetic refs
// of tuples the transaction inserted to the real TIDs they receive.
// Ops that target a synthetic ref are skipped: the insert applies the
// final pending image, which already folds them in, and inserts of
// objects deleted again before commit are elided entirely.
func (db *DB) applyOps(tx *Txn) error {
	for _, op := range tx.ops {
		k := wkey{op.table, op.ref}
		if op.ref.Page >= synthBase {
			if op.kind != opInsert {
				continue
			}
			p := tx.pending[k]
			if p == nil || p.deleted {
				continue
			}
			if _, err := db.insertTuple(op.table, p.tup); err != nil {
				return err
			}
			continue
		}
		var err error
		switch op.kind {
		case opDelete:
			err = db.Delete(op.table, op.ref)
		case opUpdateAtoms:
			err = db.UpdateAtoms(op.table, op.ref, op.steps, op.vals)
		case opInsertMember:
			err = db.InsertMember(op.table, op.ref, op.steps, op.attr, op.tup)
		case opDeleteMember:
			err = db.DeleteMember(op.table, op.ref, op.steps, op.attr, op.pos)
		default:
			err = fmt.Errorf("engine: unknown buffered op %d", op.kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// appendTxnCommit appends the transaction's commit record (carrying
// the id and commit timestamp) without forcing the log; the caller
// establishes durability with waitCommitDurable after releasing its
// locks. A no-op without a WAL.
func (db *DB) appendTxnCommit(txn uint64, ts int64) (end, epoch uint64, err error) {
	if db.log == nil {
		return 0, 0, nil
	}
	return db.log.AppendCommit(wal.CommitPayload(txn, ts))
}

// autoConflict enrolls an auto-commit DML write in first-writer-wins
// conflict detection. The runtime mutators call it before touching the
// object (skipped while a transaction commit replays its own buffered
// ops — the transaction already holds those locks). An object
// write-locked by an active transaction fails the statement with
// ErrWriteConflict immediately; otherwise the key is collected so the
// statement's commit can stamp it into lastWrite, where transactions
// with older snapshots will find it.
func (db *DB) autoConflict(table string, ref page.TID) error {
	if db.applying {
		return nil
	}
	k := wkey{table, ref}
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	if holder, held := db.writeLocks[k]; held {
		return fmt.Errorf("%w (object %v of %s, held by transaction %d)", ErrWriteConflict, k.ref, k.table, holder)
	}
	db.stmtWrites = append(db.stmtWrites, k)
	return nil
}

// publishStmtWrites stamps the objects a successful auto-commit
// statement wrote into lastWrite, under the statement's exclusive
// snapMu — a transaction whose snapshot predates this commit will
// conflict if it later writes one of them. With no transaction active
// the stamps are skipped: no snapshot old enough to race can exist
// (Begin samples its timestamp after snapMu is released), and finish
// would only have to prune them again.
func (db *DB) publishStmtWrites() {
	if len(db.stmtWrites) == 0 {
		return
	}
	db.txnMu.Lock()
	if len(db.activeTxns) > 0 {
		ts := db.opts.Clock()
		for _, k := range db.stmtWrites {
			db.lastWrite[k] = ts
		}
	}
	db.txnMu.Unlock()
	db.stmtWrites = db.stmtWrites[:0]
}

// --- statement surface --------------------------------------------------

// Exec parses and runs a script of statements inside the transaction.
// DML buffers; queries see the snapshot plus the transaction's own
// writes. A failing statement rolls back only that statement's
// buffered effects — the transaction stays usable.
func (tx *Txn) Exec(script string) ([]Result, error) {
	return tx.ExecContext(context.Background(), script)
}

// ExecContext is Exec with cancellation.
func (tx *Txn) ExecContext(ctx context.Context, script string) ([]Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, st := range stmts {
		res, err := tx.execOne(ctx, st.Statement, st.Text)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Query runs one SELECT at the transaction's snapshot.
func (tx *Txn) Query(q string) (*model.Table, *model.TableType, error) {
	st, err := sql.ParseOne(q)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, nil, fmt.Errorf("engine: Query requires a SELECT, got %T", st)
	}
	res, err := tx.execOne(context.Background(), sel, strings.TrimSpace(q))
	if err != nil {
		return nil, nil, err
	}
	return res.Table, res.Type, nil
}

// QueryRows runs one SELECT at the transaction's snapshot and returns
// a streaming cursor. The cursor stays consistent even if other
// transactions commit while it is open — it reads the version chains
// as of the snapshot timestamp.
func (tx *Txn) QueryRows(q string) (*Rows, error) {
	return tx.QueryRowsContext(context.Background(), q)
}

// QueryRowsContext is QueryRows with cancellation.
func (tx *Txn) QueryRowsContext(ctx context.Context, q string) (*Rows, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	return tx.db.queryRows(ctx, tx.exec, q)
}

// ExecStmtContext runs one already-parsed statement inside the
// transaction (the zero-reparse entry point mirroring
// DB.ExecStmtContext).
func (tx *Txn) ExecStmtContext(ctx context.Context, st sql.Stmt) (Result, error) {
	return tx.execOne(ctx, st.Statement, st.Text)
}

// ExecPrepared runs a prepared statement inside the transaction with
// the given arguments. The parse is reused; the plan's cached
// candidate lists are NOT — index entries reflect committed state,
// not the snapshot plus the transaction's buffered writes, so the
// statement executes through the transaction's own snapshot-reading
// executor (which plans inline against the transaction runtime; that
// runtime exposes no indexes and every scan is a full snapshot scan).
func (tx *Txn) ExecPrepared(ctx context.Context, ps *PreparedStmt, args ...model.Value) (Result, error) {
	if err := ps.checkArgs(args); err != nil {
		return Result{}, err
	}
	return tx.execOneArgs(ctx, ps.st.Statement, ps.st.Text, args)
}

// QueryRowsPrepared runs a prepared SELECT inside the transaction and
// returns a streaming cursor at the transaction's snapshot.
func (tx *Txn) QueryRowsPrepared(ctx context.Context, ps *PreparedStmt, args ...model.Value) (*Rows, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	if err := ps.checkArgs(args); err != nil {
		return nil, err
	}
	sel, ok := ps.st.Statement.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: QueryRows requires a SELECT, got %T", ps.st.Statement)
	}
	return tx.db.queryRowsSel(ctx, tx.exec, sel, ps.st.Text, args)
}

// execOne runs one parsed statement inside the transaction.
func (tx *Txn) execOne(ctx context.Context, st sql.Statement, text string) (Result, error) {
	return tx.execOneArgs(ctx, st, text, nil)
}

// execOneArgs is execOne with bound `?` parameter values.
func (tx *Txn) execOneArgs(ctx context.Context, st sql.Statement, text string, params []model.Value) (Result, error) {
	if tx.done {
		return Result{}, ErrTxnDone
	}
	db := tx.db
	db.healMu.RLock()
	defer db.healMu.RUnlock()
	if err := db.fatal(); err != nil {
		return Result{}, err
	}
	// Statement-level rollback: snapshot the buffered state so a failed
	// statement discards only its own ops (pendingObj values are
	// immutable, so a shallow map copy suffices).
	opsMark := len(tx.ops)
	savedPending := make(map[wkey]*pendingObj, len(tx.pending))
	for k, v := range tx.pending {
		savedPending[k] = v
	}
	savedOrder := append([]wkey(nil), tx.order...)

	res, err := tx.runStmt(ctx, st, text, params)
	if err != nil {
		tx.ops = tx.ops[:opsMark]
		tx.pending = savedPending
		tx.order = savedOrder
		var pe *PanicError
		if errors.As(err, &pe) {
			// The statement only read committed pages and buffered
			// in-memory writes, but a recovered panic may still have
			// leaked pins; heal like the auto-commit read path does.
			db.healMu.RUnlock()
			err = db.abort(err)
			db.healMu.RLock()
		}
		return Result{}, err
	}
	return res, nil
}

func (tx *Txn) runStmt(ctx context.Context, st sql.Statement, text string, params []model.Value) (res Result, err error) {
	defer recoverPanic(text, &err)
	switch st := st.(type) {
	case *sql.Select:
		tbl, tt, err := tx.exec.QueryArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: tbl, Type: tt, Count: tbl.Len()}, nil
	case *sql.Insert:
		n, err := tx.exec.ExecInsertArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) inserted", n)}, nil
	case *sql.Delete:
		n, err := tx.exec.ExecDeleteArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) deleted", n)}, nil
	case *sql.Update:
		n, err := tx.exec.ExecUpdateArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) updated", n)}, nil
	case *sql.Begin:
		return Result{}, fmt.Errorf("engine: transactions do not nest")
	case *sql.Commit, *sql.Rollback:
		return Result{}, fmt.Errorf("engine: use Txn.Commit/Txn.Rollback to end a transaction")
	case *sql.CreateTable, *sql.DropTable, *sql.CreateIndex, *sql.DropIndex, *sql.AlterTableAdd:
		return Result{}, ErrTxnDDL
	case *sql.ShowTables, *sql.Describe, *sql.Explain:
		// Catalog inspection reads current metadata; harmless in a
		// transaction. Delegate to the auto-commit reader path.
		return tx.db.execStmtLocked(ctx, st)
	}
	return Result{}, fmt.Errorf("engine: unsupported statement %T in transaction", st)
}

// newSynthRef mints a transaction-local ref for an inserted tuple.
func (tx *Txn) newSynthRef() page.TID {
	tx.synth++
	return page.TID{Page: synthBase + tx.synth}
}

// visibleTS returns the as-of timestamp transaction reads of a table
// use: the caller's explicit ASOF if given, else the snapshot
// timestamp for versioned tables, else 0 (current state — unversioned
// tables keep no history to read).
func (tx *Txn) visibleTS(t *catalog.Table, asof int64) int64 {
	if asof != 0 {
		return asof
	}
	if t.Versioned {
		return tx.snapTS
	}
	return 0
}
