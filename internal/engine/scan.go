package engine

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/dberr"
	"repro/internal/exec"
	"repro/internal/flat"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/subtuple"
)

// Cursor-based table access: the pull counterpart of ScanTable. A
// cursor pins buffer pages only inside a single Next call, so an
// abandoned cursor (one never Closed) holds no pool resources — the
// pinned-page invariant the statement layer relies on.

// OpenScan implements exec.Runtime: it opens a pull cursor over the
// table, fetching only the paths in ps of each complex object (nil =
// full objects; flat tables are one data subtuple and ignore ps).
func (r *runtime) OpenScan(t *catalog.Table, asof int64, ps *object.PathSet) (exec.ScanCursor, error) {
	return r.db().OpenScan(t, asof, ps)
}

// OpenRef implements exec.Runtime.
func (r *runtime) OpenRef(t *catalog.Table, ref page.TID, asof int64, ps *object.PathSet) (model.Tuple, error) {
	return r.db().OpenRef(t, ref, asof, ps)
}

// OpenScan opens a streaming cursor over a table (see runtime.OpenScan).
func (db *DB) OpenScan(t *catalog.Table, asof int64, ps *object.PathSet) (exec.ScanCursor, error) {
	if err := db.quarCheck(t.Name, page.TID{}); err != nil {
		return nil, err
	}
	if t.Kind == catalog.Flat {
		fc, err := db.flats[t.Name].NewCursor(asof)
		if err != nil {
			return nil, err
		}
		return &flatCursor{db: db, table: t.Name, c: fc}, nil
	}
	return &objectCursor{db: db, t: t, m: db.mgrs[t.Name], asof: asof, ps: ps,
		dir: dirCursor{st: db.stores[t.Seg], cur: t.DirHead, asof: asof}}, nil
}

// OpenRef reads one tuple by reference, pruned to ps.
func (db *DB) OpenRef(t *catalog.Table, ref page.TID, asof int64, ps *object.PathSet) (model.Tuple, error) {
	if t.Kind == catalog.Flat {
		return db.ReadRef(t, ref, asof)
	}
	if err := db.quarCheck(t.Name, ref); err != nil {
		return nil, err
	}
	tup, err := db.mgrs[t.Name].ReadPruned(t.Type, ref, asof, ps)
	return tup, db.guardRead(t.Name, ref, err)
}

// flatCursor adapts a flat-store cursor to exec.ScanCursor.
type flatCursor struct {
	db    *DB
	table string
	c     *flat.Cursor
}

func (fc *flatCursor) Next() (page.TID, model.Tuple, bool, error) {
	tid, tup, ok, err := fc.c.Next()
	if err != nil {
		return page.TID{}, nil, false, fc.db.guardRead(fc.table, page.TID{}, err)
	}
	if ok {
		if err := fc.db.quarCheck(fc.table, tid); err != nil {
			return page.TID{}, nil, false, err
		}
	}
	return tid, tup, ok, nil
}
func (fc *flatCursor) Close() error { return fc.c.Close() }

// objectCursor streams the complex objects of a table: a lazy walk of
// the directory chunk chain supplies the roots, each fetched pruned.
// Because the statement lock may be released between Next calls (the
// public Rows cursor acquires it per call), an object listed in a
// chunk can vanish before it is read; such objects are skipped —
// read-committed-per-row semantics.
type objectCursor struct {
	db   *DB
	t    *catalog.Table
	m    *object.Manager
	asof int64
	ps   *object.PathSet
	dir  dirCursor
}

func (oc *objectCursor) Next() (page.TID, model.Tuple, bool, error) {
	for {
		ref, ok, err := oc.dir.next()
		if err != nil {
			// Chunk-chain corruption quarantines the table's scans.
			return page.TID{}, nil, false, oc.db.guardDir(oc.t.Name, err)
		}
		if !ok {
			return page.TID{}, nil, false, nil
		}
		if err := oc.db.quarCheck(oc.t.Name, ref); err != nil {
			return page.TID{}, nil, false, err
		}
		tup, err := oc.m.ReadPruned(oc.t.Type, ref, oc.asof, oc.ps)
		if err != nil {
			if dberr.IsCorrupt(err) {
				// A broken object must fail the scan loudly, never read
				// as "absent at asof" or "deleted meanwhile".
				return page.TID{}, nil, false, oc.db.guardRead(oc.t.Name, ref, err)
			}
			if oc.asof != 0 || errors.Is(err, subtuple.ErrNotFound) {
				continue // nonexistent at asof, or deleted since the chunk was read
			}
			return page.TID{}, nil, false, err
		}
		return ref, tup, true, nil
	}
}

func (oc *objectCursor) Close() error {
	oc.dir.done = true
	return nil
}

// dirCursor walks the directory chunk chain lazily, one chunk per
// load: chunk next pointers never change after creation, so the chain
// can be followed without holding anything across calls. Objects
// added after the cursor started (always at a new head chunk) are not
// seen; removals from an already-read chunk are handled by the
// caller's skip-on-ErrNotFound.
type dirCursor struct {
	st   *subtuple.Store
	cur  page.TID
	asof int64
	refs []page.TID
	i    int
	done bool
}

func (dc *dirCursor) next() (page.TID, bool, error) {
	for {
		if dc.done {
			return page.TID{}, false, nil
		}
		if dc.i < len(dc.refs) {
			r := dc.refs[dc.i]
			dc.i++
			return r, true, nil
		}
		if dc.cur.Nil() {
			dc.done = true
			return page.TID{}, false, nil
		}
		if err := dc.loadChunk(); err != nil {
			return page.TID{}, false, err
		}
	}
}

// loadChunk reads the chunk at dc.cur and advances the chain,
// mirroring dirScan's ASOF handling: a chunk that did not exist at
// asof still has its (immutable) next pointer followed, but its refs
// are skipped.
func (dc *dirCursor) loadChunk() error {
	var raw []byte
	var err error
	skip := false
	if dc.asof != 0 {
		var ok bool
		raw, ok, err = dc.st.ReadAsOf(dc.cur, dc.asof)
		if err != nil {
			return err
		}
		if !ok {
			raw, err = dc.st.Read(dc.cur)
			if err != nil {
				return err
			}
			skip = true
		}
	} else {
		raw, err = dc.st.Read(dc.cur)
		if err != nil {
			return err
		}
	}
	next, refs, err := decodeDirChunk(raw)
	if err != nil {
		return err
	}
	dc.cur = next
	dc.i = 0
	if skip {
		dc.refs = nil
	} else {
		dc.refs = refs
	}
	return nil
}

// --- per-statement access statistics ------------------------------------

// StmtStats are the physical access counters of one statement: buffer
// pool activity plus the number of subtuples decoded. They make the
// projection-pushdown win observable per query (EXPLAIN prints them).
type StmtStats struct {
	// Fetches is the number of page pin requests (logical accesses).
	Fetches uint64
	// Hits is how many fetches were served from the pool.
	Hits uint64
	// Reads is the number of physical page reads.
	Reads uint64
	// Decoded is the number of subtuple records decoded.
	Decoded uint64
	// Rows is the number of result rows produced (queries only).
	Rows int
}

func (s StmtStats) String() string {
	return fmt.Sprintf("pages fetched %d (hits %d, physical reads %d), subtuples decoded %d, rows %d",
		s.Fetches, s.Hits, s.Reads, s.Decoded, s.Rows)
}

// statsMark is a snapshot of the cumulative counters at a point in
// time; subtracting two marks yields a StmtStats delta.
type statsMark struct {
	fetches, hits, reads, decoded uint64
}

// mark snapshots the cumulative access counters.
func (db *DB) mark() statsMark {
	bs := db.pool.Stats()
	return statsMark{fetches: bs.Fetches, hits: bs.Hits, reads: bs.Reads, decoded: db.DecodeCount()}
}

// since computes the per-statement counters accumulated after m.
func (db *DB) since(m statsMark) StmtStats {
	n := db.mark()
	return StmtStats{
		Fetches: n.fetches - m.fetches,
		Hits:    n.hits - m.hits,
		Reads:   n.reads - m.reads,
		Decoded: n.decoded - m.decoded,
	}
}

// DecodeCount sums the subtuple records decoded across all stores
// since the engine was opened.
func (db *DB) DecodeCount() uint64 {
	var n uint64
	for _, st := range db.stores {
		n += st.DecodeCount()
	}
	return n
}

// noteStmtStats records the counters of the most recently finished
// statement (retrievable with LastStmtStats). Lock-free: concurrent
// readers publish whole snapshots, so a reader never sees a torn mix
// of two statements' counters.
func (db *DB) noteStmtStats(s StmtStats) {
	db.lastStmt.Store(&s)
}

// LastStmtStats returns the access counters of the most recently
// completed statement (for queries consumed through a Rows cursor,
// the statement completes at Close).
func (db *DB) LastStmtStats() StmtStats {
	if s := db.lastStmt.Load(); s != nil {
		return *s
	}
	return StmtStats{}
}
