package engine

import "sync/atomic"

// Replication roles, carried in ReplCounters.Role.
const (
	RoleNone    int32 = iota // no replication activity yet
	RolePrimary              // this database has served a replication stream
	RoleReplica              // this database is a read replica applying a stream
)

// ReplCounters are the live replication counters. On a primary the
// shipper sessions (internal/netserver) maintain the follower-facing
// block; on a replica the applier (internal/repl) maintains the
// apply-side block. They live in the engine for the same reason
// NetCounters do: aim.Stats() surfaces them without depending on the
// server or the follower.
type ReplCounters struct {
	Role atomic.Int32

	// Primary side.
	FollowersOpen   atomic.Int64  // replication streams currently open
	FollowersTotal  atomic.Uint64 // replication streams ever started
	SnapshotsServed atomic.Uint64 // checkpoint snapshots shipped
	BatchesShipped  atomic.Uint64 // non-empty WAL batches shipped
	BytesShipped    atomic.Uint64 // WAL bytes shipped (batches only)
	ShippedLSN      atomic.Uint64 // highest offset any follower was shipped through

	// Replica side.
	AppliedLSN     atomic.Uint64 // offset one past the last applied group
	PrimaryEnd     atomic.Uint64 // primary's durable horizon, from the last batch
	VisibleTS      atomic.Int64  // commit timestamp replica reads are pinned to
	GroupsApplied  atomic.Uint64 // commit-terminated groups applied
	Reconnects     atomic.Uint64 // times the follower re-dialed the primary
	SnapshotsTaken atomic.Uint64 // full snapshot re-seeds (bootstrap + recycled fallback)
}

// NoteShipped advances the shipped high-water mark.
func (c *ReplCounters) NoteShipped(end uint64) {
	for {
		cur := c.ShippedLSN.Load()
		if end <= cur || c.ShippedLSN.CompareAndSwap(cur, end) {
			return
		}
	}
}

// NoteVisible advances the replica's visible commit timestamp.
func (c *ReplCounters) NoteVisible(ts int64) {
	for {
		cur := c.VisibleTS.Load()
		if ts <= cur || c.VisibleTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// ReplStats is a point-in-time snapshot of ReplCounters. LagBytes is
// the replica's apply lag against the primary's last reported durable
// horizon (zero on a primary, and while fully caught up).
type ReplStats struct {
	Role string

	FollowersOpen   int64
	FollowersTotal  uint64
	SnapshotsServed uint64
	BatchesShipped  uint64
	BytesShipped    uint64
	ShippedLSN      uint64

	AppliedLSN     uint64
	PrimaryEnd     uint64
	LagBytes       uint64
	VisibleTS      int64
	GroupsApplied  uint64
	Reconnects     uint64
	SnapshotsTaken uint64
}

// Snapshot reads the counters. Each field is read atomically; the
// snapshot as a whole is not a consistent cut, which is fine for
// monitoring counters.
func (c *ReplCounters) Snapshot() ReplStats {
	s := ReplStats{
		FollowersOpen:   c.FollowersOpen.Load(),
		FollowersTotal:  c.FollowersTotal.Load(),
		SnapshotsServed: c.SnapshotsServed.Load(),
		BatchesShipped:  c.BatchesShipped.Load(),
		BytesShipped:    c.BytesShipped.Load(),
		ShippedLSN:      c.ShippedLSN.Load(),
		AppliedLSN:      c.AppliedLSN.Load(),
		PrimaryEnd:      c.PrimaryEnd.Load(),
		VisibleTS:       c.VisibleTS.Load(),
		GroupsApplied:   c.GroupsApplied.Load(),
		Reconnects:      c.Reconnects.Load(),
		SnapshotsTaken:  c.SnapshotsTaken.Load(),
	}
	switch c.Role.Load() {
	case RolePrimary:
		s.Role = "primary"
	case RoleReplica:
		s.Role = "replica"
	default:
		s.Role = "none"
	}
	if s.PrimaryEnd > s.AppliedLSN {
		s.LagBytes = s.PrimaryEnd - s.AppliedLSN
	}
	return s
}

// ReplCounters returns the database's replication counters, creating
// them on first use; the shipper and the follower applier attach
// through here so Stats() observes the same counters.
func (db *DB) ReplCounters() *ReplCounters {
	if c := db.replCtr.Load(); c != nil {
		return c
	}
	fresh := &ReplCounters{}
	if db.replCtr.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return db.replCtr.Load()
}

// ReplStats snapshots the replication counters; all-zero (role "none")
// when no replication has ever happened.
func (db *DB) ReplStats() ReplStats {
	if c := db.replCtr.Load(); c != nil {
		return c.Snapshot()
	}
	return ReplStats{Role: "none"}
}
