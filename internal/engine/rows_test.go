package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/object"
)

// drainRows consumes a streaming cursor into a table.
func drainRows(t *testing.T, r *Rows) *model.Table {
	t.Helper()
	out := &model.Table{Ordered: r.Type().Ordered}
	for r.Next() {
		out.Append(r.Tuple())
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// The paper's Examples 1-8 (and Fig 5) must produce identical results
// through the streaming cursor and the materializing API.
var exampleQueries = []string{
	`SELECT * FROM x IN DEPARTMENTS`,
	`SELECT x.DNO, x.MGRNO,
	       PROJECTS = (SELECT y.PNO, y.PNAME,
	                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
	                   FROM y IN x.PROJECTS),
	       x.BUDGET,
	       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
	FROM x IN DEPARTMENTS`,
	`SELECT x.DNO, x.MGRNO,
	       PROJECTS = (SELECT y.PNO, y.PNAME,
	                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
	                                     FROM z IN MEMBERS_1NF
	                                     WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
	                   FROM y IN PROJECTS_1NF
	                   WHERE y.DNO = x.DNO),
	       x.BUDGET,
	       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO)
	FROM x IN DEPARTMENTS_1NF`,
	`SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
	FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`,
	`SELECT x.DNO, x.MGRNO, x.BUDGET
	FROM x IN DEPARTMENTS
	WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`,
	`SELECT x.DNO, x.MGRNO, x.BUDGET
	FROM x IN DEPARTMENTS
	WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS: z.FUNCTION = 'Consultant'`,
	`SELECT x.DNO, x.MGRNO,
	       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
	                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
	                    WHERE u.EMPNO = z.EMPNO)
	FROM x IN DEPARTMENTS`,
	`SELECT x.DNO, m.LNAME, m.SEX,
	       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, z.FUNCTION
	                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
	                    WHERE u.EMPNO = z.EMPNO)
	FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF
	WHERE m.EMPNO = x.MGRNO`,
	`SELECT x.AUTHORS, x.TITLE
	FROM x IN REPORTS
	WHERE x.AUTHORS[1].NAME = 'Jones'`,
	`SELECT DISTINCT z.FUNCTION
	FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
	ORDER BY z.FUNCTION`,
	`SELECT x.DNO, COUNT(x.PROJECTS) AS NPROJ FROM x IN DEPARTMENTS ORDER BY x.DNO DESC`,
}

func TestExamplesStreamEqualMaterialized(t *testing.T) {
	db := openOffice(t)
	for i, q := range exampleQueries {
		want, wt, err := db.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		rows, err := db.QueryRows(q)
		if err != nil {
			t.Fatalf("QueryRows %d: %v", i, err)
		}
		if !rows.Type().Equal(wt) {
			t.Errorf("query %d: streamed schema %s, want %s", i, rows.Type(), wt)
		}
		got := drainRows(t, rows)
		if !model.TableEqual(got, want) {
			t.Errorf("query %d: streamed result differs from materialized:\n%s\nvs\n%s",
				i, model.FormatTable("streamed", rows.Type(), got), model.FormatTable("materialized", wt, want))
		}
	}
}

// No buffer pages may remain pinned between Next calls, after
// exhaustion, or — the regression this guards against — when a cursor
// is abandoned mid-iteration without Close.
func TestRowsPinNoLeak(t *testing.T) {
	db := openOffice(t)
	rows, err := db.QueryRows(`SELECT x.DNO, y.PNO FROM x IN DEPARTMENTS, y IN x.PROJECTS`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if got := db.pool.PinnedCount(); got != 0 {
			t.Fatalf("pinned pages between Next calls = %d, want 0", got)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows streamed")
	}
	if got := db.pool.PinnedCount(); got != 0 {
		t.Fatalf("pinned pages after exhaustion = %d, want 0", got)
	}
}

// An abandoned cursor — iteration stopped by context cancellation,
// then never Closed — must leave zero pinned pages and must not block
// later mutating statements (which take the statement lock
// exclusively).
func TestRowsAbandonedAfterCancel(t *testing.T) {
	db := openOffice(t)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRowsContext(ctx, `SELECT x.DNO, y.PNO, z.EMPNO
		FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("first Next failed:", rows.Err())
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next succeeded after cancel")
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// Abandon: no Close. The cursor must hold nothing.
	if got := db.pool.PinnedCount(); got != 0 {
		t.Fatalf("pinned pages after abandoned cursor = %d, want 0", got)
	}
	// A writer must be able to proceed (no lock held by the cursor).
	if _, err := db.Exec(`INSERT INTO DEPARTMENTS VALUES (999, 1, {}, 5, {})`); err != nil {
		t.Fatalf("writer blocked after abandoned cursor: %v", err)
	}
}

// Close records the statement's access counters.
func TestRowsRecordsStats(t *testing.T) {
	db := openOffice(t)
	rows, err := db.QueryRows(`SELECT x.DNO FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	got := drainRows(t, rows)
	s := db.LastStmtStats()
	if s.Rows != got.Len() {
		t.Errorf("LastStmtStats.Rows = %d, want %d", s.Rows, got.Len())
	}
	if s.Fetches == 0 || s.Decoded == 0 {
		t.Errorf("LastStmtStats = %+v, want nonzero Fetches and Decoded", s)
	}
}

// EXPLAIN executes the query and reports both the fetch sets and the
// measured physical access counters.
func TestExplainReportsPathsAndCounters(t *testing.T) {
	db := openOffice(t)
	res, err := db.Exec(`EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.EQUIP: y.QU > 1`)
	if err != nil {
		t.Fatal(err)
	}
	msg := res[0].Message
	for _, want := range []string{"x IN DEPARTMENTS", "fetch", "EQUIP", "pages fetched", "subtuples decoded", "rows 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, msg)
		}
	}
	// The narrow query must not fetch the untouched PROJECTS subtree.
	if strings.Contains(msg, "PROJECTS") {
		t.Errorf("EXPLAIN fetch set includes unreferenced PROJECTS:\n%s", msg)
	}
}

// --- property test: streamed/pruned == materialized/full ----------------

// genType builds a random nested table type: every level has at least
// one atomic attribute, inner levels are randomly relations or lists.
func genType(rnd *rand.Rand, depth int, prefix string) *model.TableType {
	nAtoms := 1 + rnd.Intn(3)
	var attrs []model.Attr
	for i := 0; i < nAtoms; i++ {
		k := model.KindInt
		if rnd.Intn(2) == 0 {
			k = model.KindString
		}
		attrs = append(attrs, model.Attr{Name: fmt.Sprintf("%sA%d", prefix, i), Type: model.AtomicType(k)})
	}
	if depth > 0 {
		nSubs := 1 + rnd.Intn(2)
		for i := 0; i < nSubs; i++ {
			sub := genType(rnd, depth-1-rnd.Intn(depth), fmt.Sprintf("%sS%d", prefix, i))
			sub.Ordered = rnd.Intn(3) == 0
			attrs = append(attrs, model.Attr{Name: fmt.Sprintf("%sS%d", prefix, i), Type: model.Type{Kind: model.KindTable, Table: sub}})
		}
	}
	tt, err := model.NewTableType(false, attrs...)
	if err != nil {
		panic(err)
	}
	return tt
}

// genTuple builds a random tuple of tt (small subtables, occasional
// nulls and empties).
func genTuple(rnd *rand.Rand, tt *model.TableType) model.Tuple {
	tup := make(model.Tuple, len(tt.Attrs))
	for i, a := range tt.Attrs {
		if a.Type.Kind == model.KindTable {
			n := rnd.Intn(4) // 0 = empty subtable
			sub := &model.Table{Ordered: a.Type.Table.Ordered}
			for j := 0; j < n; j++ {
				sub.Append(genTuple(rnd, a.Type.Table))
			}
			tup[i] = sub
			continue
		}
		switch {
		case rnd.Intn(10) == 0:
			tup[i] = model.Null{}
		case a.Type.Kind == model.KindInt:
			tup[i] = model.Int(rnd.Intn(100))
		default:
			tup[i] = model.Str(fmt.Sprintf("v%d", rnd.Intn(50)))
		}
	}
	return tup
}

// genQueries derives a handful of queries from a random schema: full
// retrieval, narrow projections, COUNT, EXISTS over a subtable, and
// iteration into the first subtable.
func genQueries(tt *model.TableType) []string {
	var atomName, subName, subAtom string
	for _, a := range tt.Attrs {
		if a.Type.Kind != model.KindTable && atomName == "" {
			atomName = a.Name
		}
		if a.Type.Kind == model.KindTable && subName == "" {
			subName = a.Name
			for _, sa := range a.Type.Table.Attrs {
				if sa.Type.Kind != model.KindTable {
					subAtom = sa.Name
					break
				}
			}
		}
	}
	qs := []string{
		`SELECT * FROM x IN T`,
		fmt.Sprintf(`SELECT x.%s FROM x IN T`, atomName),
		fmt.Sprintf(`SELECT DISTINCT x.%s FROM x IN T ORDER BY x.%s`, atomName, atomName),
	}
	if subName != "" {
		qs = append(qs,
			fmt.Sprintf(`SELECT x.%s, COUNT(x.%s) AS N FROM x IN T`, atomName, subName),
			fmt.Sprintf(`SELECT x.%s, y.%s FROM x IN T, y IN x.%s`, atomName, subAtom, subName),
			fmt.Sprintf(`SELECT x.%s FROM x IN T WHERE EXISTS y IN x.%s: y.%s = y.%s`,
				atomName, subName, subAtom, subAtom),
			fmt.Sprintf(`SELECT x.%s, SUB = (SELECT y.%s FROM y IN x.%s) FROM x IN T`,
				atomName, subAtom, subName),
		)
	}
	return qs
}

// TestStreamedMatchesMaterializedRandom is the property test: for
// random nested schemas and data, under each of the three storage
// structures, every derived query must return the same result through
// the pruned streaming path as through full-object execution
// (Executor.FullPaths, the pre-cursor behavior).
func TestStreamedMatchesMaterializedRandom(t *testing.T) {
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		t.Run(layout.String(), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(layout) * 7919))
			for round := 0; round < 5; round++ {
				tt := genType(rnd, 2, "")
				db, err := Open(Options{DefaultLayout: layout})
				if err != nil {
					t.Fatal(err)
				}
				if err := db.CreateTable("T", tt, TableOptions{}); err != nil {
					t.Fatal(err)
				}
				nTup := 1 + rnd.Intn(6)
				for i := 0; i < nTup; i++ {
					if err := db.Insert("T", genTuple(rnd, tt)); err != nil {
						t.Fatalf("round %d: insert: %v", round, err)
					}
				}
				for _, q := range genQueries(tt) {
					db.exec.FullPaths = true
					want, wt, err := db.Query(q)
					if err != nil {
						t.Fatalf("round %d, full %q: %v", round, q, err)
					}
					db.exec.FullPaths = false
					rows, err := db.QueryRows(q)
					if err != nil {
						t.Fatalf("round %d, pruned %q: %v", round, q, err)
					}
					got := drainRows(t, rows)
					if !wt.Equal(rows.Type()) {
						t.Errorf("round %d, %q: schema %s vs %s", round, q, rows.Type(), wt)
					}
					if !model.TableEqual(got, want) {
						t.Errorf("round %d, %q (schema %s): pruned streaming differs from full:\n%s\nvs\n%s",
							round, q, tt, model.FormatTable("pruned", wt, got), model.FormatTable("full", wt, want))
					}
					if got := db.pool.PinnedCount(); got != 0 {
						t.Fatalf("round %d, %q: %d pages left pinned", round, q, got)
					}
				}
				db.Close()
			}
		})
	}
}

// Two cursors iterating concurrently with a writer mutating the same
// table must stay internally consistent (run under -race): each row is
// read under the shared statement lock, so a cursor sees only
// committed states, though which ones is timing-dependent.
func TestConcurrentCursorsWithWriter(t *testing.T) {
	db := openOffice(t)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				rows, err := db.QueryRows(`SELECT x.DNO, x.BUDGET, COUNT(x.PROJECTS) AS N FROM x IN DEPARTMENTS`)
				if err != nil {
					errs <- err
					return
				}
				for rows.Next() {
					if len(rows.Tuple()) != 3 {
						errs <- fmt.Errorf("malformed row %v", rows.Tuple())
						rows.Close()
						return
					}
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				rows.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			stmt := fmt.Sprintf(`UPDATE x IN DEPARTMENTS SET BUDGET = %d WHERE x.DNO = 314`, 100000+i)
			if _, err := db.Exec(stmt); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := db.pool.PinnedCount(); got != 0 {
		t.Fatalf("%d pages left pinned", got)
	}
}
