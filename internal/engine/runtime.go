package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/dberr"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/textindex"
	"repro/internal/tname"
)

// runtime adapts DB to the executor's Runtime interface.
type runtime DB

func (r *runtime) db() *DB { return (*DB)(r) }

// Table implements exec.Runtime.
func (r *runtime) Table(name string) (*catalog.Table, bool) { return r.db().cat.Table(name) }

// ScanTable implements exec.Runtime.
func (r *runtime) ScanTable(t *catalog.Table, asof int64, fn func(ref page.TID, tup model.Tuple) error) error {
	return r.db().ScanTable(t, asof, fn)
}

// ReadRef implements exec.Runtime.
func (r *runtime) ReadRef(t *catalog.Table, ref page.TID, asof int64) (model.Tuple, error) {
	return r.db().ReadRef(t, ref, asof)
}

// Indexes implements exec.Runtime.
func (r *runtime) Indexes(table string) []*index.Index { return r.db().indexes[table] }

// TextIndexes implements exec.Runtime.
func (r *runtime) TextIndexes(table string) []*textindex.Index { return r.db().textIdx[table] }

// InsertTuple implements exec.Runtime.
func (r *runtime) InsertTuple(t *catalog.Table, tup model.Tuple) error {
	return r.db().Insert(t.Name, tup)
}

// DeleteTuple implements exec.Runtime.
func (r *runtime) DeleteTuple(t *catalog.Table, ref page.TID) error {
	return r.db().Delete(t.Name, ref)
}

// UpdateAtoms implements exec.Runtime.
func (r *runtime) UpdateAtoms(t *catalog.Table, ref page.TID, steps []object.Step, vals []model.Value) error {
	return r.db().UpdateAtoms(t.Name, ref, steps, vals)
}

// InsertMember implements exec.Runtime.
func (r *runtime) InsertMember(t *catalog.Table, ref page.TID, steps []object.Step, attr int, member model.Tuple) error {
	return r.db().InsertMember(t.Name, ref, steps, attr, member)
}

// DeleteMember implements exec.Runtime.
func (r *runtime) DeleteMember(t *catalog.Table, ref page.TID, steps []object.Step, attr, pos int) error {
	return r.db().DeleteMember(t.Name, ref, steps, attr, pos)
}

// ParseTime implements exec.Runtime.
func (r *runtime) ParseTime(v model.Value) (int64, error) { return exec.ParseTimeValue(v) }

// TName implements exec.Runtime: it mints a tuple name for the
// (sub)object a query variable is bound to.
func (r *runtime) TName(t *catalog.Table, ref page.TID, steps []object.Step) (string, error) {
	db := r.db()
	m, ok := db.mgrs[t.Name]
	if !ok {
		return "", fmt.Errorf("engine: TNAME requires an NF² table, %q is flat", t.Name)
	}
	reg := tname.NewRegistry(m, t.Type)
	n, err := reg.SubobjectName(ref, steps...)
	if err != nil {
		return "", err
	}
	return n.Encode(), nil
}

// --- public data access ------------------------------------------------

// ScanTable streams all tuples of a table with their references,
// optionally as of an instant. Hitting a corrupt or quarantined
// object fails the scan with a typed *QuarantineError — never a
// silently shortened result.
func (db *DB) ScanTable(t *catalog.Table, asof int64, fn func(ref page.TID, tup model.Tuple) error) error {
	if err := db.quarCheck(t.Name, page.TID{}); err != nil {
		return err
	}
	if t.Kind == catalog.Flat {
		fs := db.flats[t.Name]
		if asof == 0 {
			return db.guardRead(t.Name, page.TID{}, fs.Scan(func(tid page.TID, tup model.Tuple) error {
				if err := db.quarCheck(t.Name, tid); err != nil {
					return err
				}
				return fn(tid, tup)
			}))
		}
		return db.guardRead(t.Name, page.TID{}, fs.Subtuples().ScanAsOf(asof, func(tid page.TID, raw []byte) error {
			if err := db.quarCheck(t.Name, tid); err != nil {
				return err
			}
			vals, err := model.DecodeAtoms(raw)
			if err != nil {
				return db.guardRead(t.Name, tid, err)
			}
			if len(vals) > len(t.Type.Attrs) {
				return db.guardRead(t.Name, tid,
					dberr.Corruptf("engine: stored tuple has %d values, schema %d", len(vals), len(t.Type.Attrs)))
			}
			// Versions written before an ALTER TABLE ADD are shorter;
			// the new attributes read as null.
			for len(vals) < len(t.Type.Attrs) {
				vals = append(vals, model.Null{})
			}
			return fn(tid, model.Tuple(vals))
		}))
	}
	m := db.mgrs[t.Name]
	return db.guardDir(t.Name, db.dirScan(t, asof, func(ref page.TID) error {
		if err := db.quarCheck(t.Name, ref); err != nil {
			return err
		}
		tup, err := m.ReadAsOf(t.Type, ref, asof)
		if err != nil {
			if dberr.IsCorrupt(err) {
				// A broken object must not read as "absent at asof".
				return db.guardRead(t.Name, ref, err)
			}
			if asof != 0 {
				return nil // object did not exist at asof
			}
			return err
		}
		return fn(ref, tup)
	}))
}

// ReadRef materializes one tuple by reference.
func (db *DB) ReadRef(t *catalog.Table, ref page.TID, asof int64) (model.Tuple, error) {
	if err := db.quarCheck(t.Name, ref); err != nil {
		return nil, err
	}
	if t.Kind == catalog.Flat {
		fs := db.flats[t.Name]
		if asof == 0 {
			tup, err := fs.Read(ref)
			return tup, db.guardRead(t.Name, ref, err)
		}
		tup, ok, err := fs.ReadAsOf(ref, asof)
		if err != nil {
			return nil, db.guardRead(t.Name, ref, err)
		}
		if !ok {
			return nil, fmt.Errorf("engine: tuple %v did not exist at %d", ref, asof)
		}
		return tup, nil
	}
	tup, err := db.mgrs[t.Name].ReadAsOf(t.Type, ref, asof)
	return tup, db.guardRead(t.Name, ref, err)
}

// Refs returns the object references of a complex table (or tuple
// TIDs of a flat one).
func (db *DB) Refs(table string) ([]page.TID, error) {
	t, ok := db.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", table)
	}
	var refs []page.TID
	if t.Kind == catalog.Flat {
		err := db.flats[table].Scan(func(tid page.TID, _ model.Tuple) error {
			refs = append(refs, tid)
			return nil
		})
		return refs, db.guardRead(table, page.TID{}, err)
	}
	err := db.dirScan(t, 0, func(ref page.TID) error {
		refs = append(refs, ref)
		return nil
	})
	return refs, db.guardDir(table, err)
}

// --- DML with index maintenance -----------------------------------------

// Insert adds a tuple to a table, maintaining all indexes.
func (db *DB) Insert(table string, tup model.Tuple) error {
	_, err := db.insertTuple(table, tup)
	return err
}

// insertTuple is Insert returning the new tuple's reference (the
// transaction apply path needs it to translate synthetic refs).
func (db *DB) insertTuple(table string, tup model.Tuple) (page.TID, error) {
	t, ok := db.cat.Table(table)
	if !ok {
		return page.TID{}, fmt.Errorf("engine: no table %q", table)
	}
	if err := model.Conform(t.Type, tup); err != nil {
		return page.TID{}, err
	}
	if t.Kind == catalog.Flat {
		tid, err := db.flats[table].Insert(tup)
		if err != nil {
			return page.TID{}, err
		}
		for _, ix := range db.indexes[table] {
			if err := ix.AddFlat(tid, tup, t.Type); err != nil {
				return page.TID{}, err
			}
		}
		for _, ti := range db.textIdx[table] {
			ai := t.Type.AttrIndex(ti.Path[0])
			if s, ok := tup[ai].(model.Str); ok {
				ti.Add(string(s), index.Addr{TID: tid})
			}
		}
		return tid, nil
	}
	m := db.mgrs[table]
	ref, err := m.Insert(t.Type, tup)
	if err != nil {
		return page.TID{}, err
	}
	if err := db.dirAdd(t, ref); err != nil {
		return page.TID{}, db.guardDir(table, err)
	}
	return ref, db.guardRead(table, ref, db.indexObject(t, ref, true))
}

// indexObject adds (or removes) one object's entries in all indexes.
func (db *DB) indexObject(t *catalog.Table, ref page.TID, add bool) error {
	m := db.mgrs[t.Name]
	for _, ix := range db.indexes[t.Name] {
		var err error
		if add {
			err = ix.AddObject(m, t.Type, ref)
		} else {
			err = ix.RemoveObject(m, t.Type, ref)
		}
		if err != nil {
			return err
		}
	}
	for _, ti := range db.textIdx[t.Name] {
		err := db.forEachTextOfObject(t, ref, ti.Path, func(text string, addr index.Addr) error {
			if add {
				ti.Add(text, addr)
			} else {
				ti.Remove(text, addr)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a tuple/object by reference, maintaining indexes.
func (db *DB) Delete(table string, ref page.TID) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if err := db.quarCheck(table, ref); err != nil {
		return err
	}
	if err := db.autoConflict(table, ref); err != nil {
		return err
	}
	if t.Kind == catalog.Flat {
		fs := db.flats[table]
		tup, err := fs.Read(ref)
		if err != nil {
			return db.guardRead(table, ref, err)
		}
		for _, ix := range db.indexes[table] {
			if err := ix.RemoveFlat(ref, tup, t.Type); err != nil {
				return err
			}
		}
		for _, ti := range db.textIdx[table] {
			ai := t.Type.AttrIndex(ti.Path[0])
			if s, ok := tup[ai].(model.Str); ok {
				ti.Remove(string(s), index.Addr{TID: ref})
			}
		}
		return fs.Delete(ref)
	}
	if err := db.indexObject(t, ref, false); err != nil {
		return db.guardRead(table, ref, err)
	}
	if err := db.dirRemove(t, ref); err != nil {
		return db.guardDir(table, err)
	}
	return db.guardRead(table, ref, db.mgrs[table].Delete(t.Type, ref))
}

// UpdateAtoms overwrites the atomic attributes of the (sub)object
// addressed by steps (for flat tables vals covers all attributes).
func (db *DB) UpdateAtoms(table string, ref page.TID, steps []object.Step, vals []model.Value) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if err := db.quarCheck(table, ref); err != nil {
		return err
	}
	if err := db.autoConflict(table, ref); err != nil {
		return err
	}
	if t.Kind == catalog.Flat {
		fs := db.flats[table]
		old, err := fs.Read(ref)
		if err != nil {
			return db.guardRead(table, ref, err)
		}
		for _, ix := range db.indexes[table] {
			if err := ix.RemoveFlat(ref, old, t.Type); err != nil {
				return err
			}
		}
		for _, ti := range db.textIdx[table] {
			ai := t.Type.AttrIndex(ti.Path[0])
			if s, ok := old[ai].(model.Str); ok {
				ti.Remove(string(s), index.Addr{TID: ref})
			}
		}
		if err := fs.Update(ref, model.Tuple(vals)); err != nil {
			return err
		}
		for _, ix := range db.indexes[table] {
			if err := ix.AddFlat(ref, model.Tuple(vals), t.Type); err != nil {
				return err
			}
		}
		for _, ti := range db.textIdx[table] {
			ai := t.Type.AttrIndex(ti.Path[0])
			if s, ok := vals[ai].(model.Str); ok {
				ti.Add(string(s), index.Addr{TID: ref})
			}
		}
		return nil
	}
	// Conservative index maintenance: withdraw the object's entries,
	// mutate, re-add.
	if err := db.indexObject(t, ref, false); err != nil {
		return db.guardRead(table, ref, err)
	}
	m := db.mgrs[table]
	if err := m.UpdateAtoms(t.Type, ref, vals, steps...); err != nil {
		db.indexObject(t, ref, true)
		return db.guardRead(table, ref, err)
	}
	return db.guardRead(table, ref, db.indexObject(t, ref, true))
}

// InsertMember adds a member to a subtable of a stored object.
func (db *DB) InsertMember(table string, ref page.TID, steps []object.Step, attr int, member model.Tuple) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if t.Kind != catalog.Complex {
		return fmt.Errorf("engine: table %q is flat; subtable DML needs an NF² table", table)
	}
	if err := db.quarCheck(table, ref); err != nil {
		return err
	}
	if err := db.autoConflict(table, ref); err != nil {
		return err
	}
	if err := db.indexObject(t, ref, false); err != nil {
		return db.guardRead(table, ref, err)
	}
	m := db.mgrs[table]
	if err := m.InsertMember(t.Type, ref, steps, attr, -1, member); err != nil {
		db.indexObject(t, ref, true)
		return db.guardRead(table, ref, err)
	}
	return db.guardRead(table, ref, db.indexObject(t, ref, true))
}

// DeleteMember removes a member of a subtable of a stored object.
func (db *DB) DeleteMember(table string, ref page.TID, steps []object.Step, attr, pos int) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if t.Kind != catalog.Complex {
		return fmt.Errorf("engine: table %q is flat; subtable DML needs an NF² table", table)
	}
	if err := db.quarCheck(table, ref); err != nil {
		return err
	}
	if err := db.autoConflict(table, ref); err != nil {
		return err
	}
	if err := db.indexObject(t, ref, false); err != nil {
		return db.guardRead(table, ref, err)
	}
	m := db.mgrs[table]
	if err := m.DeleteMember(t.Type, ref, steps, attr, pos); err != nil {
		db.indexObject(t, ref, true)
		return db.guardRead(table, ref, err)
	}
	return db.guardRead(table, ref, db.indexObject(t, ref, true))
}

// RegisterImported adds an already-stored object (e.g. one imported
// from a page-level checkout) to the table's directory and indexes.
func (db *DB) RegisterImported(t *catalog.Table, ref page.TID) error {
	if err := db.dirAdd(t, ref); err != nil {
		return err
	}
	return db.indexObject(t, ref, true)
}
