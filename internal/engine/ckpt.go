package engine

import (
	"time"

	"repro/internal/wal"
)

// DefaultWALSegmentBytes is the segment-file size bound when
// Options.WALSegmentBytes is zero: 4 MiB keeps segment counts small
// while letting checkpoints retire history in useful chunks.
const DefaultWALSegmentBytes = 4 << 20

// WALCheckpoint writes a fuzzy checkpoint and retires dead log
// history: flush every dirty page (through the FlushHook, so the
// write-ahead rule syncs the log first), log a durable OpCheckpoint
// record carrying the durable-LSN horizon and the open-transaction
// table, and recycle the WAL segments recovery can no longer need.
// After it returns, reopening the database replays only the records
// from this checkpoint onward.
//
// It runs under the apply lock, so it sits between statements: every
// record already in the log belongs to a completed statement, which
// is exactly what lets recovery treat the checkpoint as a commit
// horizon. Open transactions don't interfere — their writes are
// buffered in memory, not in pages or the log. Readers keep streaming
// throughout (the heal barrier is not taken).
func (db *DB) WALCheckpoint() error {
	if db.log == nil || db.opts.Replica {
		// A replica's checkpoints mirror from the primary's stream
		// (ReplicaApply); writing its own would fork the logs. Flushing
		// pages is still useful and safe.
		return db.pool.FlushAll()
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if err := db.fatal(); err != nil {
		return err
	}
	if db.log.End() == db.ckptAtEnd {
		return nil // nothing logged since the last checkpoint
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	info := wal.CheckpointInfo{
		Durable:  db.log.SyncedThrough(),
		OpenTxns: db.openTxnIDs(),
	}
	if _, err := db.log.WriteCheckpoint(info); err != nil {
		return err
	}
	db.ckptAtEnd = db.log.End()
	db.checkpoints.Add(1)
	if _, err := db.log.Recycle(); err != nil {
		return err
	}
	return nil
}

// checkpointLoop is the background checkpointer started by Open when
// Options.CheckpointEvery > 0; Close stops it before tearing down.
func (db *DB) checkpointLoop(every time.Duration) {
	defer close(db.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-db.ckptStop:
			return
		case <-t.C:
			if err := db.WALCheckpoint(); err != nil {
				msg := err.Error()
				db.ckptErr.Store(&msg)
			}
		}
	}
}

// openTxnIDs snapshots the ids of the open transactions.
func (db *DB) openTxnIDs() []uint64 {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	ids := make([]uint64, 0, len(db.activeTxns))
	for id := range db.activeTxns {
		ids = append(ids, id)
	}
	return ids
}

// WALStats reports the durability subsystem's counters.
type WALStats struct {
	// Segments is the number of retained WAL segment files.
	Segments int
	// CheckpointLSN is the LSN of the last durable checkpoint record
	// (0: none yet).
	CheckpointLSN uint64
	// TailStart is the byte offset recovery would replay from; End is
	// the current append position. End - TailStart bounds the replay
	// work of a reopen.
	TailStart uint64
	End       uint64
	// Syncs counts log fsyncs; under group commit it grows slower than
	// the commit count.
	Syncs uint64
	// Checkpoints counts completed WALCheckpoint calls on this handle.
	Checkpoints uint64
	// LastCheckpointError is the most recent background checkpoint
	// failure ("" when none).
	LastCheckpointError string
}

// WALStats returns the durability counters; zero when logging is off.
func (db *DB) WALStats() WALStats {
	if db.log == nil {
		return WALStats{}
	}
	s := WALStats{
		Segments:      db.log.SegmentCount(),
		CheckpointLSN: db.log.CheckpointLSN(),
		TailStart:     db.log.TailStart(),
		End:           db.log.End(),
		Syncs:         db.log.Syncs(),
		Checkpoints:   db.checkpoints.Load(),
	}
	if msg := db.ckptErr.Load(); msg != nil {
		s.LastCheckpointError = *msg
	}
	return s
}

// appendCommit appends the commit record for a finished statement or
// transaction without syncing; the caller releases its locks and then
// establishes durability with waitCommitDurable, so overlapping
// committers share one fsync.
func (db *DB) appendCommit(payload []byte) (end, epoch uint64, err error) {
	if db.log == nil {
		return 0, 0, nil
	}
	return db.log.AppendCommit(payload)
}

// waitCommitDurable blocks until the commit appended at end is
// durable (group commit). A wal.ErrCommitLost return means the record
// was cut by a concurrent rollback before it could be synced.
func (db *DB) waitCommitDurable(end, epoch uint64) error {
	if db.log == nil {
		return nil
	}
	return db.log.WaitDurable(end, epoch, db.opts.GroupCommitWait)
}

// abandonCommit resolves a commit whose durability wait failed:
// lost=false means an overlapping sync made it durable after all and
// the caller must report success; lost=true means the record is cut
// and the caller must roll back.
func (db *DB) abandonCommit(end uint64) (lost bool, err error) {
	if db.log == nil {
		return false, nil
	}
	return db.log.AbandonCommit(end)
}
