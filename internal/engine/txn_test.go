package engine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/model"
)

// openBank opens an in-memory database (deterministic clock) with a
// small versioned flat table for the isolation-anomaly tests:
// ACCOUNTS(ID INT, BAL INT) with rows (1,100) and (2,200).
func openBank(t testing.TB) *DB {
	t.Helper()
	ts := int64(0)
	db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE TABLE ACCOUNTS (ID INT, BAL INT) VERSIONED`)
	mustExec(t, db, `INSERT INTO ACCOUNTS VALUES (1, 100), (2, 200)`)
	return db
}

func mustExec(t testing.TB, db *DB, script string) {
	t.Helper()
	if _, err := db.Exec(script); err != nil {
		t.Fatalf("exec %q: %v", script, err)
	}
}

// queryier is the common read surface of *DB and *Txn.
type queryier interface {
	Query(q string) (*model.Table, *model.TableType, error)
}

// balance reads the balance of one account through q (a *DB or a
// *Txn), failing the test if the account is missing or duplicated.
func balance(t testing.TB, q queryier, id int) int64 {
	t.Helper()
	tbl, _, err := q.Query(fmt.Sprintf(`SELECT x.BAL FROM x IN ACCOUNTS WHERE x.ID = %d`, id))
	if err != nil {
		t.Fatalf("balance(%d): %v", id, err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("balance(%d): %d rows, want 1", id, tbl.Len())
	}
	return int64(tbl.Tuples[0][0].(model.Int))
}

// balances reads all (ID, BAL) pairs in ID order.
func balances(t testing.TB, q queryier) map[int64]int64 {
	t.Helper()
	tbl, _, err := q.Query(`SELECT x.ID, x.BAL FROM x IN ACCOUNTS`)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]int64, tbl.Len())
	for _, tup := range tbl.Tuples {
		out[int64(tup[0].(model.Int))] = int64(tup[1].(model.Int))
	}
	return out
}

// TestTxnDirtyRead: uncommitted writes are invisible to every other
// reader — plain statements, and transactions begun before or after
// the write — until COMMIT publishes them atomically.
func TestTxnDirtyRead(t *testing.T) {
	db := openBank(t)

	before, err := db.Begin() // snapshot taken before the writer even starts
	if err != nil {
		t.Fatal(err)
	}
	defer before.Rollback()

	writer, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(`UPDATE x IN ACCOUNTS SET BAL = 999 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own write...
	if got := balance(t, writer, 1); got != 999 {
		t.Errorf("writer reads own write: BAL = %d, want 999", got)
	}
	// ...but nobody else does.
	if got := balance(t, db, 1); got != 100 {
		t.Errorf("dirty read through auto-commit statement: BAL = %d, want 100", got)
	}
	if got := balance(t, before, 1); got != 100 {
		t.Errorf("dirty read in pre-existing transaction: BAL = %d, want 100", got)
	}
	after, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer after.Rollback()
	if got := balance(t, after, 1); got != 100 {
		t.Errorf("dirty read in transaction begun mid-write: BAL = %d, want 100", got)
	}

	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// Commit publishes to new readers; old snapshots stay put.
	if got := balance(t, db, 1); got != 999 {
		t.Errorf("after commit: BAL = %d, want 999", got)
	}
	if got := balance(t, before, 1); got != 100 {
		t.Errorf("snapshot moved under pre-existing transaction: BAL = %d, want 100", got)
	}
	if got := balance(t, after, 1); got != 100 {
		t.Errorf("snapshot moved under mid-write transaction: BAL = %d, want 100", got)
	}
}

// TestTxnNonRepeatableRead: a transaction re-reading a value it has
// already read gets the same answer even after a concurrent
// transaction commits a new version of it.
func TestTxnNonRepeatableRead(t *testing.T) {
	db := openBank(t)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	first := balance(t, tx, 2)

	other, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Exec(`UPDATE x IN ACCOUNTS SET BAL = 250 WHERE x.ID = 2`); err != nil {
		t.Fatal(err)
	}
	if err := other.Commit(); err != nil {
		t.Fatal(err)
	}

	if again := balance(t, tx, 2); again != first {
		t.Errorf("non-repeatable read: first %d, then %d", first, again)
	}
	// Phantom flavor: the row count is stable too, even after a
	// committed concurrent INSERT.
	ins, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(`INSERT INTO ACCOUNTS VALUES (3, 300)`); err != nil {
		t.Fatal(err)
	}
	if err := ins.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balances(t, tx); len(got) != 2 {
		t.Errorf("phantom: transaction sees %d accounts, want 2", len(got))
	}
	if got := balances(t, db); len(got) != 3 {
		t.Errorf("committed insert lost: %d accounts, want 3", len(got))
	}
}

// TestTxnLostUpdate: first-writer-wins. A write to an object another
// active transaction has already written fails immediately with
// ErrWriteConflict; so does a write to an object a transaction
// committed after this transaction's snapshot. No update is silently
// overwritten.
func TestTxnLostUpdate(t *testing.T) {
	db := openBank(t)

	// Concurrent-writer variant: t2 hits t1's write lock.
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec(`UPDATE x IN ACCOUNTS SET BAL = 110 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	_, err = t2.Exec(`UPDATE x IN ACCOUNTS SET BAL = 120 WHERE x.ID = 1`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("concurrent write to locked object: err = %v, want ErrWriteConflict", err)
	}
	// The failed statement rolled back by itself; t2 stays usable on
	// other objects.
	if _, err := t2.Exec(`UPDATE x IN ACCOUNTS SET BAL = 220 WHERE x.ID = 2`); err != nil {
		t.Fatalf("t2 after conflict on another object: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, db, 1); got != 110 {
		t.Errorf("BAL(1) = %d, want 110 (t1's write)", got)
	}
	if got := balance(t, db, 2); got != 220 {
		t.Errorf("BAL(2) = %d, want 220 (t2's write)", got)
	}

	// Committed-after-snapshot variant: t3's snapshot predates t4's
	// commit, so t3's later write to the same object must fail even
	// though the lock is free again.
	t3, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer t3.Rollback()
	t4, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t4.Exec(`UPDATE x IN ACCOUNTS SET BAL = 130 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err = t3.Exec(`UPDATE x IN ACCOUNTS SET BAL = 140 WHERE x.ID = 1`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("write after a conflicting commit: err = %v, want ErrWriteConflict", err)
	}
	if got := balance(t, db, 1); got != 130 {
		t.Errorf("BAL(1) = %d, want 130 (no lost update)", got)
	}
}

// TestTxnReadYourOwnWrites: inserts, updates and deletes buffered by a
// transaction are visible to its own queries — and vanish without a
// trace on rollback.
func TestTxnReadYourOwnWrites(t *testing.T) {
	db := openBank(t)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO ACCOUNTS VALUES (7, 700)`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE x IN ACCOUNTS SET BAL = 101 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE x FROM x IN ACCOUNTS WHERE x.ID = 2`); err != nil {
		t.Fatal(err)
	}
	got := balances(t, tx)
	want := map[int64]int64{1: 101, 7: 700}
	if len(got) != len(want) || got[1] != want[1] || got[7] != want[7] {
		t.Errorf("transaction's own view = %v, want %v", got, want)
	}
	// A buffered insert can be updated and deleted again in-place.
	if _, err := tx.Exec(`UPDATE x IN ACCOUNTS SET BAL = 777 WHERE x.ID = 7`); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, tx, 7); got != 777 {
		t.Errorf("update of own insert: BAL = %d, want 777", got)
	}

	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	got = balances(t, db)
	if len(got) != 2 || got[1] != 100 || got[2] != 200 {
		t.Errorf("after rollback = %v, want the untouched {1:100 2:200}", got)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("second rollback: err = %v, want ErrTxnDone", err)
	}
	if _, err := tx.Exec(`INSERT INTO ACCOUNTS VALUES (8, 800)`); !errors.Is(err, ErrTxnDone) {
		t.Errorf("exec after rollback: err = %v, want ErrTxnDone", err)
	}
}

// TestTxnSnapshotStableASOF: explicit ASOF reads are historical and
// pin their own timestamp — inside a transaction they bypass both the
// snapshot and the transaction's buffered writes, and they keep
// returning the same rows while concurrent writers commit.
func TestTxnSnapshotStableASOF(t *testing.T) {
	db := openBank(t)
	t0 := db.Now() // after the seed inserts

	// Commit a change, snapshot a reader, commit another change.
	w1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Exec(`UPDATE x IN ACCOUNTS SET BAL = 111 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := db.Now()

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec(`UPDATE x IN ACCOUNTS SET BAL = -1 WHERE x.ID = 2`); err != nil {
		t.Fatal(err)
	}

	w2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Exec(`UPDATE x IN ACCOUNTS SET BAL = 122 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}

	asof := func(q queryier, ts int64) int64 {
		t.Helper()
		tbl, _, err := q.Query(fmt.Sprintf(`SELECT x.BAL FROM x IN ACCOUNTS ASOF %d WHERE x.ID = 1`, ts))
		if err != nil {
			t.Fatalf("ASOF %d: %v", ts, err)
		}
		if tbl.Len() != 1 {
			t.Fatalf("ASOF %d: %d rows, want 1", ts, tbl.Len())
		}
		return int64(tbl.Tuples[0][0].(model.Int))
	}
	// Historical reads agree whether issued inside or outside the
	// transaction, at every pinned point in time.
	for _, q := range []queryier{db, tx} {
		if got := asof(q, t0); got != 100 {
			t.Errorf("ASOF t0: BAL = %d, want 100", got)
		}
		if got := asof(q, t1); got != 111 {
			t.Errorf("ASOF t1: BAL = %d, want 111", got)
		}
	}
	// The transaction's snapshot read of ID=1 still predates both its
	// own snapshot-invisible future and w2's commit.
	if got := balance(t, tx, 1); got != 111 {
		t.Errorf("snapshot read during concurrent commits: BAL = %d, want 111", got)
	}
	// ASOF inside the transaction does not see the transaction's own
	// buffered (uncommitted) write either: it is a historical read.
	tbl, _, err := tx.Query(fmt.Sprintf(`SELECT x.BAL FROM x IN ACCOUNTS ASOF %d WHERE x.ID = 2`, t1))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || int64(tbl.Tuples[0][0].(model.Int)) != 200 {
		t.Errorf("ASOF sees buffered write: %v, want [200]", tbl.Tuples)
	}
}

// TestTxnDDLRejected: schema changes are auto-commit only.
func TestTxnDDLRejected(t *testing.T) {
	db := openBank(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec(`CREATE TABLE T2 (A INT)`); !errors.Is(err, ErrTxnDDL) {
		t.Errorf("CREATE TABLE in txn: err = %v, want ErrTxnDDL", err)
	}
	if _, err := tx.Exec(`DROP TABLE ACCOUNTS`); !errors.Is(err, ErrTxnDDL) {
		t.Errorf("DROP TABLE in txn: err = %v, want ErrTxnDDL", err)
	}
}

// TestTxnHierarchicalWrites: the buffered-write machinery covers the
// NF² surface too — subtable member inserts/deletes and atom updates
// inside a complex versioned object, with read-your-own-writes on the
// nested view and snapshot isolation for everyone else.
func TestTxnHierarchicalWrites(t *testing.T) {
	ts := int64(0)
	db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE DEPTS (DNO INT, PROJECTS TABLE OF (PNO INT, PNAME STRING)) VERSIONED`)
	mustExec(t, db, `INSERT INTO DEPTS VALUES (1, {(10, 'alpha')})`)

	count := func(q queryier) int {
		t.Helper()
		tbl, _, err := q.Query(`SELECT x.DNO, y.PNO FROM x IN DEPTS, y IN x.PROJECTS`)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Len()
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO x.PROJECTS FROM x IN DEPTS WHERE x.DNO = 1 VALUES (11, 'beta')`); err != nil {
		t.Fatal(err)
	}
	if got := count(tx); got != 2 {
		t.Errorf("member insert invisible to own transaction: %d members, want 2", got)
	}
	if got := count(db); got != 1 {
		t.Errorf("member insert leaked before commit: %d members, want 1", got)
	}
	if _, err := tx.Exec(`UPDATE y FROM x IN DEPTS, y IN x.PROJECTS SET PNAME = 'gamma' WHERE y.PNO = 10`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := db.Query(`SELECT y.PNAME FROM x IN DEPTS, y IN x.PROJECTS WHERE y.PNO = 10`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || string(tbl.Tuples[0][0].(model.Str)) != "gamma" {
		t.Errorf("nested atom update lost: %v, want [gamma]", tbl.Tuples)
	}
	if got := count(db); got != 2 {
		t.Errorf("after commit: %d members, want 2", got)
	}
}

// TestAutoCommitWriteConflict: auto-commit statements are first-class
// participants in first-writer-wins conflict detection. An auto-commit
// write to an object a transaction holds the write lock on fails with
// ErrWriteConflict, and an auto-commit commit stamps the object's
// last-write timestamp so an older-snapshot transaction writing it
// afterwards conflicts too.
func TestAutoCommitWriteConflict(t *testing.T) {
	db := openBank(t)

	// Lock-held variant: t1's buffered write blocks the auto-commit.
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec(`UPDATE x IN ACCOUNTS SET BAL = 110 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec(`UPDATE x IN ACCOUNTS SET BAL = 120 WHERE x.ID = 1`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("auto-commit write to locked object: err = %v, want ErrWriteConflict", err)
	}
	// The failed statement rolled back; the database stays usable and
	// other objects stay writable.
	if _, err := db.Exec(`UPDATE x IN ACCOUNTS SET BAL = 220 WHERE x.ID = 2`); err != nil {
		t.Fatalf("auto-commit on another object after conflict: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, db, 1); got != 110 {
		t.Errorf("BAL(1) = %d, want 110 (t1's write, auto-commit rolled back)", got)
	}
	if got := balance(t, db, 2); got != 220 {
		t.Errorf("BAL(2) = %d, want 220", got)
	}

	// Committed-after-snapshot variant: the auto-commit stamps the
	// object's last write, so t2 (whose snapshot predates it) must not
	// silently overwrite it even though no lock is held anymore.
	t2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Rollback()
	if _, err := db.Exec(`UPDATE x IN ACCOUNTS SET BAL = 130 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	_, err = t2.Exec(`UPDATE x IN ACCOUNTS SET BAL = 140 WHERE x.ID = 1`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("txn write after conflicting auto-commit: err = %v, want ErrWriteConflict", err)
	}
	if got := balance(t, db, 1); got != 130 {
		t.Errorf("BAL(1) = %d, want 130 (no lost update)", got)
	}
}

// TestTxnUnversionedCurrentCommitted pins the documented semantics of
// reading an unversioned table inside a transaction: no history is
// kept, so the read sees the current committed state — later commits
// by others become visible mid-transaction — but never another
// transaction's uncommitted writes.
func TestTxnUnversionedCurrentCommitted(t *testing.T) {
	db := openBank(t)
	mustExec(t, db, `CREATE TABLE PLAIN (ID INT, V INT)`)
	mustExec(t, db, `INSERT INTO PLAIN VALUES (1, 10)`)

	readV := func(q queryier) int64 {
		t.Helper()
		tbl, _, err := q.Query(`SELECT x.V FROM x IN PLAIN WHERE x.ID = 1`)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != 1 {
			t.Fatalf("PLAIN id 1: %d rows, want 1", tbl.Len())
		}
		return int64(tbl.Tuples[0][0].(model.Int))
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if got := readV(tx); got != 10 {
		t.Fatalf("initial read: V = %d, want 10", got)
	}

	// A committed auto-commit update is visible to the open
	// transaction: unversioned tables read current-committed, not the
	// snapshot.
	mustExec(t, db, `UPDATE x IN PLAIN SET V = 20 WHERE x.ID = 1`)
	if got := readV(tx); got != 20 {
		t.Errorf("after concurrent commit: V = %d, want 20 (current committed)", got)
	}

	// Another transaction's uncommitted write stays invisible.
	t2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(`UPDATE x IN PLAIN SET V = 30 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if got := readV(tx); got != 20 {
		t.Errorf("dirty read of unversioned table: V = %d, want 20", got)
	}
	if err := t2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := readV(tx); got != 20 {
		t.Errorf("after rollback: V = %d, want 20", got)
	}

	// Versioned tables in the same transaction still read the
	// snapshot: the bank balances predate the transaction, so a
	// concurrent auto-commit update stays invisible.
	mustExec(t, db, `UPDATE x IN ACCOUNTS SET BAL = 150 WHERE x.ID = 1`)
	if got := balance(t, tx, 1); got != 100 {
		t.Errorf("versioned read inside txn: BAL(1) = %d, want 100 (snapshot)", got)
	}
	if got := balance(t, db, 1); got != 150 {
		t.Errorf("versioned read outside txn: BAL(1) = %d, want 150", got)
	}
}
