package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/testdata"
)

// openOffice opens an in-memory database loaded with the paper's
// office fixtures: Table 5 (DEPARTMENTS), Table 6 (REPORTS), Tables
// 1-4 (the 1NF decomposition) and Table 8 (EMPLOYEES_1NF).
func openOffice(t testing.TB) *DB {
	t.Helper()
	ts := int64(0)
	db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	load := func(name string, tt *model.TableType, data *model.Table, opts TableOptions) {
		if err := db.CreateTable(name, tt, opts); err != nil {
			t.Fatal(err)
		}
		for _, tup := range data.Tuples {
			if err := db.Insert(name, tup); err != nil {
				t.Fatalf("insert into %s: %v", name, err)
			}
		}
	}
	load("DEPARTMENTS", testdata.DepartmentsType(), testdata.Departments(), TableOptions{Versioned: true})
	load("REPORTS", testdata.ReportsType(), testdata.Reports(), TableOptions{})
	load("DEPARTMENTS_1NF", testdata.DepartmentsFlatType(), testdata.DepartmentsFlat(), TableOptions{})
	load("PROJECTS_1NF", testdata.ProjectsFlatType(), testdata.ProjectsFlat(), TableOptions{})
	load("MEMBERS_1NF", testdata.MembersFlatType(), testdata.MembersFlat(), TableOptions{})
	load("EQUIP_1NF", testdata.EquipFlatType(), testdata.EquipFlat(), TableOptions{})
	load("EMPLOYEES_1NF", testdata.EmployeesType(), testdata.Employees(), TableOptions{})
	return db
}

func intCol(t *testing.T, tbl *model.Table, col int) []int64 {
	t.Helper()
	var out []int64
	for _, tup := range tbl.Tuples {
		out = append(out, int64(tup[col].(model.Int)))
	}
	return out
}

// Example 1: SELECT * retrieves the stored NF² table unchanged.
func TestExample1SelectStar(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`SELECT * FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(testdata.DepartmentsType()) {
		t.Errorf("schema mismatch: %s", tt)
	}
	if !model.TableEqual(got, testdata.Departments()) {
		t.Errorf("SELECT * differs from Table 5:\n%s", model.FormatTable("got", tt, got))
	}
}

// Example 2 / Fig 2: explicit result structure reproduces Table 5.
func TestExample2ExplicitStructure(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(testdata.DepartmentsType()) {
		t.Errorf("inferred schema mismatch:\n got %s\nwant %s", tt, testdata.DepartmentsType())
	}
	if !model.TableEqual(got, testdata.Departments()) {
		t.Error("explicit-structure query differs from Table 5")
	}
}

// Example 3 / Fig 3: the nest operation builds Table 5 from the four
// 1NF tables.
func TestExample3Nest(t *testing.T) {
	db := openOffice(t)
	got, _, err := db.Query(`
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS_1NF
                                     WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                   FROM y IN PROJECTS_1NF
                   WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS_1NF`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(got, testdata.Departments()) {
		t.Error("nest of Tables 1-4 differs from Table 5")
	}
}

// Example 4: the unnest produces Table 7, and the equivalent 3-way
// flat join produces the same rows.
func TestExample4Unnest(t *testing.T) {
	db := openOffice(t)
	nf2, _, err := db.Query(`
SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(nf2, testdata.Unnested()) {
		t.Error("unnest differs from Table 7")
	}
	flatJoin, _, err := db.Query(`
SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS_1NF, y IN PROJECTS_1NF, z IN MEMBERS_1NF
WHERE x.DNO = y.DNO AND y.PNO = z.PNO AND y.DNO = z.DNO`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(nf2, flatJoin) {
		t.Error("hierarchical unnest and flat 3-way join disagree")
	}
}

// Example 5: EXISTS over EQUIP — departments using a PC/AT.
func TestExample5Exists(t *testing.T) {
	db := openOffice(t)
	got, _, err := db.Query(`
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`)
	if err != nil {
		t.Fatal(err)
	}
	dnos := intCol(t, got, 0)
	if len(dnos) != 2 || !(dnos[0] == 314 && dnos[1] == 218 || dnos[0] == 218 && dnos[1] == 314) {
		t.Errorf("departments with PC/AT = %v, want {314, 218}", dnos)
	}
}

// Example 6: two chained ALL quantifiers; the result is empty for the
// paper's data ("there is no department which fulfills the
// condition").
func TestExample6All(t *testing.T) {
	db := openOffice(t)
	got, _, err := db.Query(`
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("expected empty result, got %v", got)
	}
}

// Example 7 / Fig 4: join between MEMBERS (inside DEPARTMENTS) and
// the flat EMPLOYEES_1NF table — join attributes on different
// nesting levels.
func TestExample7JoinAcrossLevels(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`
SELECT x.DNO, x.MGRNO,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("departments = %d", got.Len())
	}
	for _, dept := range got.Tuples {
		emps := dept[2].(*model.Table)
		if emps.Len() == 0 {
			t.Errorf("department %v has no joined employees", dept[0])
		}
		for _, e := range emps.Tuples {
			if model.IsNull(e[1]) {
				t.Errorf("employee %v missing name", e[0])
			}
		}
	}
	// Department 314 has 7 members; each must join exactly one
	// employee tuple.
	for _, dept := range got.Tuples {
		if dept[0].(model.Int) == 314 {
			if n := dept[2].(*model.Table).Len(); n != 7 {
				t.Errorf("dept 314 joined %d employees, want 7", n)
			}
		}
	}
	_ = tt
}

// Fig 5: two joins — retrieve the manager's name and sex instead of
// the manager number.
func TestFig5TwoJoins(t *testing.T) {
	db := openOffice(t)
	got, _, err := db.Query(`
SELECT x.DNO, m.LNAME, m.SEX,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF
WHERE m.EMPNO = x.MGRNO`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("rows = %d", got.Len())
	}
	for _, row := range got.Tuples {
		if row[0].(model.Int) == 314 && row[1].(model.Str) != "Schmidt" {
			t.Errorf("manager of 314 = %v, want Schmidt", row[1])
		}
	}
}

// Example 8: list indexing — reports whose first author is Jones.
func TestExample8ListIndexing(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`
SELECT x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.AUTHORS[1].NAME = 'Jones'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("reports = %d, want 1", got.Len())
	}
	// The result is not flat: AUTHORS stays a (ordered) table.
	a, _ := tt.Attr("AUTHORS")
	if a.Type.Kind != model.KindTable || !a.Type.Table.Ordered {
		t.Errorf("AUTHORS result type = %s", a.Type)
	}
	// The paper's short form compares the single-attribute tuple
	// directly with the atom.
	got2, _, err := db.Query(`
SELECT x.AUTHORS, x.TITLE FROM x IN REPORTS WHERE x.AUTHORS[1] = 'Jones'`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(got, got2) {
		t.Error("tuple-vs-atom comparison disagrees with attribute form")
	}
}

// §5: masked text search with CONTAINS, with and without text index.
func TestTextContains(t *testing.T) {
	db := openOffice(t)
	if _, err := db.Exec(`
INSERT INTO REPORTS VALUES
 ('0300', <('Jones'), ('Meyer')>, 'Minicomputer Performance for Computational Workloads', {('Performance', 0.8)}),
 ('0301', <('Racey')>, 'Computer Networks', {('Networks', 0.9)})`); err != nil {
		t.Fatal(err)
	}
	q := `
SELECT x.REPNO, x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.TITLE CONTAINS '*comput*'
  AND EXISTS y IN x.AUTHORS: y.NAME = 'Jones'`
	scan, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Len() != 1 || scan.Tuples[0][0].(model.Str) != "0300" {
		t.Fatalf("text query = %v", scan)
	}
	// With a text index the same query must return the same result.
	if err := db.CreateTextIndex("rep_title", "REPORTS", []string{"TITLE"}); err != nil {
		t.Fatal(err)
	}
	indexed, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(scan, indexed) {
		t.Error("text-indexed query disagrees with scan")
	}
}

// §5: ASOF time-version query — the projects department 314 had
// before a deletion.
func TestASOFQuery(t *testing.T) {
	db := openOffice(t)
	before := db.Now()
	if _, err := db.Exec(`DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23`); err != nil {
		t.Fatal(err)
	}
	cur, _, err := db.Query(`
SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != 1 {
		t.Fatalf("current projects of 314 = %d, want 1", cur.Len())
	}
	old, _, err := db.Query(fmt.Sprintf(`
SELECT y.PNO, y.PNAME FROM x IN DEPARTMENTS ASOF %d, y IN x.PROJECTS WHERE x.DNO = 314`, before))
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 2 {
		t.Fatalf("ASOF projects of 314 = %d, want 2", old.Len())
	}
}

// DML: subtable insert, update, delete through SQL.
func TestSubtableDML(t *testing.T) {
	db := openOffice(t)
	if _, err := db.Exec(`
INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE y.PNO = 17 VALUES (11111, 'Consultant')`); err != nil {
		t.Fatal(err)
	}
	got, _, _ := db.MustQueryPair(`
SELECT z.EMPNO FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE y.PNO = 17`)
	if got.Len() != 4 {
		t.Fatalf("members of 17 after insert = %d, want 4", got.Len())
	}
	if _, err := db.Exec(`UPDATE x IN DEPARTMENTS SET BUDGET = 999999 WHERE x.DNO = 218`); err != nil {
		t.Fatal(err)
	}
	b, _, _ := db.MustQueryPair(`SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 218`)
	if b.Tuples[0][0].(model.Int) != 999999 {
		t.Errorf("budget = %v", b.Tuples[0][0])
	}
	// Update a nested level.
	if _, err := db.Exec(`
UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
SET FUNCTION = 'Manager' WHERE z.EMPNO = 39582`); err != nil {
		t.Fatal(err)
	}
	f, _, _ := db.MustQueryPair(`
SELECT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE z.EMPNO = 39582`)
	if f.Tuples[0][0].(model.Str) != "Manager" {
		t.Errorf("function = %v", f.Tuples[0][0])
	}
	// Delete a member and a whole department.
	if _, err := db.Exec(`DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS WHERE z.EMPNO = 11111`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 417`); err != nil {
		t.Fatal(err)
	}
	d, _, _ := db.MustQueryPair(`SELECT x.DNO FROM x IN DEPARTMENTS`)
	if d.Len() != 2 {
		t.Errorf("departments after delete = %d", d.Len())
	}
}

// Index-backed queries must agree with full scans, for every address
// strategy that can locate objects.
func TestIndexedQueriesAgreeWithScan(t *testing.T) {
	for _, using := range []string{"HIERARCHICAL", "ROOT"} {
		t.Run(using, func(t *testing.T) {
			db := openOffice(t)
			scan, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.CreateIndex("fn", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, using); err != nil {
				t.Fatal(err)
			}
			indexed, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
			if err != nil {
				t.Fatal(err)
			}
			if !model.TableEqual(scan, indexed) {
				t.Errorf("indexed result differs from scan:\nscan %v\nindexed %v", scan, indexed)
			}
			dnos := intCol(t, indexed, 0)
			if len(dnos) != 2 {
				t.Errorf("departments with consultants = %v, want 314 and 218", dnos)
			}
		})
	}
}

// Index maintenance across DML.
func TestIndexMaintenance(t *testing.T) {
	db := openOffice(t)
	if err := db.CreateIndex("fn", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`
	before, _, _ := db.MustQueryPair(q)
	if before.Len() != 2 {
		t.Fatalf("before = %d", before.Len())
	}
	// Give department 417 a consultant.
	if _, err := db.Exec(`
INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE y.PNO = 37 VALUES (77777, 'Consultant')`); err != nil {
		t.Fatal(err)
	}
	after, _, _ := db.MustQueryPair(q)
	if after.Len() != 3 {
		t.Errorf("after insert = %d, want 3", after.Len())
	}
	// Remove all consultants from 218 (project 25 has two).
	if _, err := db.Exec(`
DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
WHERE x.DNO = 218 AND z.FUNCTION = 'Consultant'`); err != nil {
		t.Fatal(err)
	}
	after2, _, _ := db.MustQueryPair(q)
	if after2.Len() != 2 {
		t.Errorf("after delete = %d, want 2", after2.Len())
	}
}

// ORDER BY, DISTINCT and COUNT.
func TestOrderDistinctCount(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`
SELECT x.DNO, COUNT(x.PROJECTS) AS NPROJ FROM x IN DEPARTMENTS ORDER BY x.BUDGET DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Ordered {
		t.Error("ORDER BY result is not a list")
	}
	dnos := intCol(t, got, 0)
	if dnos[0] != 218 || dnos[1] != 417 || dnos[2] != 314 {
		t.Errorf("budget order = %v", dnos)
	}
	fns, _, err := db.Query(`
SELECT DISTINCT z.FUNCTION FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
	if err != nil {
		t.Fatal(err)
	}
	if fns.Len() != 4 { // Leader, Consultant, Secretary, Staff
		t.Errorf("distinct functions = %d: %v", fns.Len(), fns)
	}
}

// SQL DDL round trip: create, insert, query, reopen from disk.
func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
CREATE TABLE DEPARTMENTS (
  DNO INT, MGRNO INT,
  PROJECTS TABLE OF (PNO INT, PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
);
INSERT INTO DEPARTMENTS VALUES
 (314, 56194, {(17, 'CGA', {(39582, 'Leader'), (56019, 'Consultant')})}, 320000, {(2, '3278')});
CREATE INDEX fn ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING HIERARCHICAL;
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, _, err := db2.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0][0].(model.Int) != 314 {
		t.Errorf("after reopen: %v", got)
	}
}

// Crash recovery: committed statements survive a crash (buffer pool
// dropped without flushing).
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
CREATE TABLE NOTES (ID INT, BODY STRING);
INSERT INTO NOTES VALUES (1, 'survives');
`); err != nil {
		t.Fatal(err)
	}
	// Crash: drop buffers, close only the files.
	db.pool.InvalidateAll()
	db.log.Close()
	for _, st := range db.stores {
		db.pool.Store(st.Segment()).Close()
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, _, err := db2.Query(`SELECT n.ID, n.BODY FROM n IN NOTES`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0][1].(model.Str) != "survives" {
		t.Errorf("after crash recovery: %v", got)
	}
}

// Layout option via SQL.
func TestCreateTableLayouts(t *testing.T) {
	db := openOffice(t)
	for _, l := range []string{"SS1", "SS2", "SS3"} {
		stmt := fmt.Sprintf(`CREATE TABLE T_%s (A INT, B TABLE OF (C INT)) LAYOUT %s`, l, l)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO T_%s VALUES (1, {(2), (3)})`, l)); err != nil {
			t.Fatal(err)
		}
		got, _, err := db.Query(fmt.Sprintf(`SELECT t.A, COUNT(t.B) FROM t IN T_%s`, l))
		if err != nil {
			t.Fatal(err)
		}
		if got.Tuples[0][1].(model.Int) != 2 {
			t.Errorf("%s: count = %v", l, got.Tuples[0][1])
		}
		mgr, _ := db.Manager("T_" + l)
		want := map[string]object.Layout{"SS1": object.SS1, "SS2": object.SS2, "SS3": object.SS3}[l]
		if mgr.Layout() != want {
			t.Errorf("layout = %s, want %s", mgr.Layout(), want)
		}
	}
}

// MustQueryPair adapts MustQuery for tests wanting (table, type, nil).
func (db *DB) MustQueryPair(q string) (*model.Table, *model.TableType, error) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	return tbl, tt, err
}

// EXPLAIN reports access paths without executing.
func TestExplain(t *testing.T) {
	db := openOffice(t)
	res, err := db.Exec(`EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE EXISTS p IN x.PROJECTS EXISTS z IN p.MEMBERS: z.FUNCTION = 'Consultant'`)
	if err != nil {
		t.Fatal(err)
	}
	msg := res[0].Message
	if !strings.Contains(msg, "full table scan") || !strings.Contains(msg, "iterate subtable") {
		t.Errorf("explain without index:\n%s", msg)
	}
	if err := db.CreateIndex("fn", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec(`EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS p IN x.PROJECTS EXISTS z IN p.MEMBERS: z.FUNCTION = 'Consultant'`)
	if err != nil {
		t.Fatal(err)
	}
	msg = res[0].Message
	if !strings.Contains(msg, "index fn") || !strings.Contains(msg, "candidate object") {
		t.Errorf("explain with index:\n%s", msg)
	}
	// Dropping the index reverts the plan to a scan.
	if err := db.DropIndex("fn"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Exec(`EXPLAIN SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS p IN x.PROJECTS EXISTS z IN p.MEMBERS: z.FUNCTION = 'Consultant'`)
	if !strings.Contains(res[0].Message, "full table scan") {
		t.Errorf("explain after drop:\n%s", res[0].Message)
	}
}

// SHOW TABLES and DESCRIBE.
func TestShowDescribe(t *testing.T) {
	db := openOffice(t)
	res, err := db.Exec(`SHOW TABLES`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Table.Len() != 7 {
		t.Errorf("SHOW TABLES rows = %d", res[0].Table.Len())
	}
	res, err = db.Exec(`DESCRIBE DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Message, "PROJECTS") || !strings.Contains(res[0].Message, "{") {
		t.Errorf("DESCRIBE = %s", res[0].Message)
	}
	if _, err := db.Exec(`DESCRIBE NOPE`); err == nil {
		t.Error("DESCRIBE of missing table succeeded")
	}
}

// ASOF against an unversioned table must fail loudly.
func TestASOFRequiresVersioned(t *testing.T) {
	db := openOffice(t)
	if _, _, err := db.Query(`SELECT x.EMPNO FROM x IN EMPLOYEES_1NF ASOF 1`); err == nil {
		t.Error("ASOF on unversioned table succeeded")
	}
}

// Statement-level error surfaces cleanly and leaves the db usable.
func TestErrorsLeaveDBUsable(t *testing.T) {
	db := openOffice(t)
	bad := []string{
		`SELECT x.NOPE FROM x IN DEPARTMENTS`,
		`SELECT * FROM x IN MISSING_TABLE`,
		`SELECT x.DNO, y.PNO FROM x IN DEPARTMENTS, y IN x.BUDGET`, // atomic in FROM
		`INSERT INTO DEPARTMENTS VALUES (1)`,                       // arity
		`INSERT INTO DEPARTMENTS VALUES ('x', 1, {}, 1, {})`,       // type
		`UPDATE x IN DEPARTMENTS SET PROJECTS = 1 WHERE x.DNO = 314`,
		`CREATE TABLE DEPARTMENTS (A INT)`,                // duplicate
		`CREATE INDEX i1 ON DEPARTMENTS (PROJECTS)`,       // subtable path
		`CREATE INDEX i2 ON DEPARTMENTS (NOPE)`,           // missing attr
		`CREATE TEXT INDEX t1 ON DEPARTMENTS (DNO)`,       // non-string
		`SELECT * FROM x IN DEPARTMENTS, y IN x.PROJECTS`, // star multi-var
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("accepted bad statement %q", q)
		}
	}
	// Still healthy.
	got, _, err := db.Query(`SELECT x.DNO FROM x IN DEPARTMENTS`)
	if err != nil || got.Len() != 3 {
		t.Fatalf("db unusable after errors: %v, %v", got, err)
	}
}

// Subtable iteration over an ordered list preserves order through SQL.
func TestOrderedIterationThroughSQL(t *testing.T) {
	db := openOffice(t)
	got, tt, err := db.Query(`SELECT a.NAME FROM x IN REPORTS, a IN x.AUTHORS WHERE x.REPNO = '0189'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tuples[0][0].(model.Str) != "Tilda" || got.Tuples[1][0].(model.Str) != "Abraham" {
		t.Errorf("author order = %v", got)
	}
	_ = tt
}

// ALTER TABLE ADD: schema evolution with null back-fill, at the top
// level, in nested levels, and on flat tables.
func TestAlterTableAdd(t *testing.T) {
	db := openOffice(t)
	if _, err := db.Exec(`ALTER TABLE DEPARTMENTS ADD LOCATION STRING`); err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Query(`SELECT x.DNO, x.LOCATION FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsNull(got.Tuples[0][1]) {
		t.Errorf("pre-existing tuple's new attribute = %v, want NULL", got.Tuples[0][1])
	}
	// New attribute is writable.
	if _, err := db.Exec(`UPDATE x IN DEPARTMENTS SET LOCATION = 'Heidelberg' WHERE x.DNO = 314`); err != nil {
		t.Fatal(err)
	}
	got, _, _ = db.MustQueryPair(`SELECT x.LOCATION FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if got.Tuples[0][0].(model.Str) != "Heidelberg" {
		t.Errorf("location = %v", got.Tuples[0][0])
	}
	// Nested level.
	if _, err := db.Exec(`ALTER TABLE DEPARTMENTS ADD PROJECTS.STATUS STRING`); err != nil {
		t.Fatal(err)
	}
	got, _, err = db.Query(`SELECT y.PNO, y.STATUS FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 17`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsNull(got.Tuples[0][1]) {
		t.Errorf("nested new attribute = %v", got.Tuples[0][1])
	}
	if _, err := db.Exec(`
UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS SET STATUS = 'active' WHERE y.PNO = 17`); err != nil {
		t.Fatal(err)
	}
	// Flat table.
	if _, err := db.Exec(`ALTER TABLE EMPLOYEES_1NF ADD PHONE STRING`); err != nil {
		t.Fatal(err)
	}
	got, _, err = db.Query(`SELECT e.LNAME, e.PHONE FROM e IN EMPLOYEES_1NF WHERE e.EMPNO = 56194`)
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsNull(got.Tuples[0][1]) {
		t.Errorf("flat new attribute = %v", got.Tuples[0][1])
	}
	// New inserts must supply the new attribute.
	if _, err := db.Exec(`INSERT INTO EMPLOYEES_1NF VALUES (1, 'New', 'Guy', 'male', '555')`); err != nil {
		t.Fatal(err)
	}
	// Errors.
	for _, q := range []string{
		`ALTER TABLE DEPARTMENTS ADD DNO INT`,    // duplicate
		`ALTER TABLE DEPARTMENTS ADD NOPE.X INT`, // bad path
		`ALTER TABLE DEPARTMENTS ADD DNO.X INT`,  // through atomic
		`ALTER TABLE MISSING ADD A INT`,          // no table
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	// The altered schema persists and old objects stay readable.
	whole, _, err := db.Query(`SELECT * FROM x IN DEPARTMENTS`)
	if err != nil || whole.Len() != 3 {
		t.Fatalf("full read after alters: %v, %v", whole, err)
	}
}

// ALTER persists across reopen.
func TestAlterPersists(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
CREATE TABLE T (A INT, S TABLE OF (B INT));
INSERT INTO T VALUES (1, {(2)});
ALTER TABLE T ADD C STRING;
ALTER TABLE T ADD S.D INT;
`); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, _, err := db2.Query(`SELECT t.A, t.C, s.B, s.D FROM t IN T, s IN t.S`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !model.IsNull(got.Tuples[0][1]) || !model.IsNull(got.Tuples[0][3]) {
		t.Errorf("after reopen: %v", got)
	}
}

// An index created on an attribute added by ALTER over pre-existing
// data treats the missing values as null and stays consistent as the
// attribute gets populated.
func TestIndexOnAlteredAttribute(t *testing.T) {
	db := openOffice(t)
	if _, err := db.Exec(`ALTER TABLE DEPARTMENTS ADD PROJECTS.STATUS STRING`); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("st", "DEPARTMENTS", []string{"PROJECTS", "STATUS"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS: y.STATUS = 'active'`)
	if err != nil || got.Len() != 0 {
		t.Fatalf("before population: %v, %v", got, err)
	}
	if _, err := db.Exec(`
UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS SET STATUS = 'active' WHERE y.PNO = 25`); err != nil {
		t.Fatal(err)
	}
	got, _, err = db.Query(`
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS: y.STATUS = 'active'`)
	if err != nil || got.Len() != 1 || got.Tuples[0][0].(model.Int) != 218 {
		t.Fatalf("after population: %v, %v", got, err)
	}
}

// Flat-table DML through SQL maintains flat indexes and text indexes.
func TestFlatDMLWithIndexes(t *testing.T) {
	db := openOffice(t)
	if err := db.CreateIndex("lname", "EMPLOYEES_1NF", []string{"LNAME"}, "DATA"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT e.EMPNO FROM e IN EMPLOYEES_1NF WHERE e.LNAME = 'Schmidt'`
	before, _, _ := db.MustQueryPair(q)
	if before.Len() != 1 {
		t.Fatalf("before = %d", before.Len())
	}
	if _, err := db.Exec(`UPDATE e IN EMPLOYEES_1NF SET LNAME = 'Schmitt' WHERE e.EMPNO = 56194`); err != nil {
		t.Fatal(err)
	}
	after, _, _ := db.MustQueryPair(q)
	if after.Len() != 0 {
		t.Errorf("index kept stale entry after flat update")
	}
	renamed, _, _ := db.MustQueryPair(`SELECT e.EMPNO FROM e IN EMPLOYEES_1NF WHERE e.LNAME = 'Schmitt'`)
	if renamed.Len() != 1 {
		t.Errorf("updated entry missing from index")
	}
	if _, err := db.Exec(`DELETE e FROM e IN EMPLOYEES_1NF WHERE e.EMPNO = 56194`); err != nil {
		t.Fatal(err)
	}
	gone, _, _ := db.MustQueryPair(`SELECT e.EMPNO FROM e IN EMPLOYEES_1NF WHERE e.LNAME = 'Schmitt'`)
	if gone.Len() != 0 {
		t.Errorf("deleted tuple still indexed")
	}
	if _, err := db.Exec(`INSERT INTO EMPLOYEES_1NF VALUES (77, 'Schmitt', 'Neu', 'male')`); err != nil {
		t.Fatal(err)
	}
	back, _, _ := db.MustQueryPair(`SELECT e.EMPNO FROM e IN EMPLOYEES_1NF WHERE e.LNAME = 'Schmitt'`)
	if back.Len() != 1 {
		t.Errorf("fresh insert not indexed")
	}
}

// Versioned FLAT tables answer ASOF scans.
func TestFlatVersionedASOF(t *testing.T) {
	ts := int64(0)
	db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE V (A INT, B STRING) VERSIONED`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO V VALUES (1, 'one'), (2, 'two')`); err != nil {
		t.Fatal(err)
	}
	mark := ts
	if _, err := db.Exec(`UPDATE v IN V SET B = 'ONE' WHERE v.A = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE v FROM v IN V WHERE v.A = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO V VALUES (3, 'three')`); err != nil {
		t.Fatal(err)
	}
	old, _, err := db.Query(fmt.Sprintf(`SELECT v.A, v.B FROM v IN V ASOF %d ORDER BY v.A`, mark))
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 2 || old.Tuples[0][1].(model.Str) != "one" || old.Tuples[1][0].(model.Int) != 2 {
		t.Errorf("flat ASOF = %v", old)
	}
	cur, _, _ := db.MustQueryPair(`SELECT v.A FROM v IN V ORDER BY v.A`)
	if cur.Len() != 2 { // 1 and 3
		t.Errorf("current = %v", cur)
	}
}

// DROP TABLE removes everything and frees the name for reuse.
func TestDropTableAndRecreate(t *testing.T) {
	db := openOffice(t)
	if err := db.CreateIndex("fn", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DROP TABLE DEPARTMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(`SELECT * FROM x IN DEPARTMENTS`); err == nil {
		t.Error("query against dropped table succeeded")
	}
	if _, ok := db.IndexByName("fn"); ok {
		t.Error("index survived table drop")
	}
	if _, err := db.Exec(`CREATE TABLE DEPARTMENTS (DNO INT)`); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO DEPARTMENTS VALUES (1)`); err != nil {
		t.Fatal(err)
	}
}

// Checkpoint flushes; buffer stats reflect the write-back.
func TestCheckpointWritesBack(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE T (A INT); INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	db.Pool().ResetStats()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.Pool().Stats().Writes == 0 {
		t.Error("checkpoint wrote nothing")
	}
}

// Regression: ASOF scans must still see versions written before an
// ALTER TABLE ADD (they have fewer atoms than the current schema).
func TestFlatASOFAfterAlter(t *testing.T) {
	ts := int64(0)
	db, err := Open(Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE V (A INT) VERSIONED; INSERT INTO V VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	mark := ts
	if _, err := db.Exec(`ALTER TABLE V ADD B STRING`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO V VALUES (2, 'post-alter')`); err != nil {
		t.Fatal(err)
	}
	old, _, err := db.Query(fmt.Sprintf(`SELECT v.A, v.B FROM v IN V ASOF %d`, mark))
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 || old.Tuples[0][0].(model.Int) != 1 || !model.IsNull(old.Tuples[0][1]) {
		t.Errorf("ASOF after ALTER = %v", old)
	}
	cur, _, _ := db.MustQueryPair(`SELECT v.A FROM v IN V`)
	if cur.Len() != 2 {
		t.Errorf("current rows = %d", cur.Len())
	}
}
