package engine

import (
	"fmt"
	"runtime/debug"

	"repro/internal/subtuple"
)

// PanicError is a panic recovered at the statement boundary and
// surfaced as an error, tagged with the statement that triggered it.
// The engine converts executor/storage panics into PanicErrors so an
// internal invariant violation fails one statement instead of the
// process.
type PanicError struct {
	// Stmt is the statement's source text (or its Go type when the
	// source is unavailable).
	Stmt string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic executing %q: %v", e.Stmt, e.Value)
}

// rollbackStmt restores the committed state on the live engine after
// a failed statement, reusing the crash-recovery machinery without a
// reopen:
//
//  1. discard the unflushed WAL tail (which also clears any sticky
//     error a failed flush left in the buffered writer);
//  2. drop every buffered frame — the statement's uncommitted dirty
//     pages and any pins leaked by a recovered panic;
//  3. run log recovery on the live pool: truncate the log at the last
//     commit, wipe untrusted page images (including uncommitted pages
//     stolen to disk by eviction), redo committed operations;
//  4. reload the catalog and rebuild the in-memory runtime structures
//     (managers, flat stores, memory-resident indexes).
//
// Because every successful statement ends with a synced commit
// record, everything after the last commit belongs to the failed
// statement and nothing before it can be lost.
//
// Without a WAL the rollback is best-effort: buffered page effects of
// the failed statement cannot be undone, but the runtime structures
// are still reloaded so the session stays internally consistent.
// Callers must hold applyMu and healMu exclusively.
func (db *DB) rollbackStmt() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		if err := db.log.DiscardUnflushed(); err != nil {
			return fmt.Errorf("engine: discard WAL buffer: %w", err)
		}
		db.pool.InvalidateAll()
		// Recovery rewrites every page holding committed data from its
		// full WAL history, repairing the images any quarantine entries
		// were observed on; drop them and let reads re-detect whatever
		// recovery could not cure (WAL-less databases keep theirs).
		db.ClearQuarantine()
		if err := subtuple.Recover(db.log, db.pool); err != nil {
			return fmt.Errorf("engine: replay to last commit: %w", err)
		}
		// The aborted statement may have allocated pages it never wrote
		// durably; seal those holes so later scans can tell legitimate
		// free pages from zeroed-out committed ones.
		if err := db.sealHoles(); err != nil {
			return err
		}
	}
	return db.reloadRuntime()
}

// abortLocked handles a failed mutating statement (or transaction
// apply): it rolls the engine back to the last WAL commit and, if even
// that fails, poisons the database so later statements fail fast
// instead of running on corrupt state. The caller must hold applyMu
// (and neither snapMu nor healMu); abortLocked takes the healMu
// barrier itself, so every in-flight reader drains before the buffer
// pool is invalidated and the runtime reloaded.
func (db *DB) abortLocked(stmtErr error) error {
	db.healMu.Lock()
	defer db.healMu.Unlock()
	if rbErr := db.rollbackStmt(); rbErr != nil {
		ferr := fmt.Errorf("engine: statement rollback failed, database needs reopen: %v (statement error: %w)", rbErr, stmtErr)
		db.setFatal(ferr)
		return ferr
	}
	return stmtErr
}

// abort is abortLocked for callers that do not yet hold applyMu (the
// read paths healing after a recovered panic).
func (db *DB) abort(stmtErr error) error {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	return db.abortLocked(stmtErr)
}

// recoverPanic converts a recovered panic into a PanicError; install
// it with defer around statement execution.
func recoverPanic(text string, err *error) {
	if p := recover(); p != nil {
		*err = &PanicError{Stmt: text, Value: p, Stack: debug.Stack()}
	}
}
