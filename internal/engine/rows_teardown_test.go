package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// openKV creates a database with a small table and enough rows to keep
// a cursor busy.
func openKV(t *testing.T, rows int) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE KV (K INT, V INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO KV VALUES (` + itoa(i) + `, ` + itoa(i*10) + `)`); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRowsConcurrentCloseDuringNext is the double-teardown regression:
// session teardown, context cancellation and drain can all fire Close
// on one Rows concurrently with the iterating goroutine. Exactly one
// teardown must run, Close must be idempotent, and no buffer pages may
// stay pinned on any interleaving.
func TestRowsConcurrentCloseDuringNext(t *testing.T) {
	db := openKV(t, 200)
	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.QueryRowsContext(ctx, `SELECT x.K, x.V FROM x IN KV`)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		// The iterator.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rows.Next() {
			}
		}()
		// Three concurrent teardown paths: cancellation, session
		// teardown, drain.
		wg.Add(3)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); rows.Close() }()
		go func() { defer wg.Done(); rows.Close() }()
		wg.Wait()
		rows.Close() // and once more after everything settled
		if err := rows.Err(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: unexpected iteration error: %v", round, err)
		}
		if n := db.Pool().PinnedCount(); n != 0 {
			t.Fatalf("round %d: %d pages still pinned after teardown", round, n)
		}
		cancel()
	}
}

// TestRowsCloseIdempotentAfterExhaustion: a cursor that closed itself
// at end-of-result must tolerate any number of further Closes.
func TestRowsCloseIdempotentAfterExhaustion(t *testing.T) {
	db := openKV(t, 5)
	rows, err := db.QueryRows(`SELECT x.K FROM x IN KV`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if n != 5 {
		t.Fatalf("got %d rows, want 5", n)
	}
	for i := 0; i < 3; i++ {
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
	if n := db.Pool().PinnedCount(); n != 0 {
		t.Fatalf("%d pages still pinned", n)
	}
}

// TestNetCountersMonotonic hammers the counter block from many
// goroutines and asserts the monotonicity contract under -race: totals
// only grow, gauges never go negative, and the peak tracks the gauge.
func TestNetCountersMonotonic(t *testing.T) {
	db := openKV(t, 1)
	ctr := db.NetCounters()
	if ctr != db.NetCounters() {
		t.Fatal("NetCounters not stable across calls")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctr.NoteSessionOpen()
				ctr.StmtsTotal.Add(1)
				ctr.StmtsInFlight.Add(1)
				ctr.BytesIn.Add(17)
				ctr.BytesOut.Add(23)
				ctr.RowsStreamed.Add(3)
				ctr.StmtsInFlight.Add(-1)
				ctr.SessionsOpen.Add(-1)
			}
		}()
	}
	var last NetStats
	for i := 0; i < 2000; i++ {
		s := db.NetStats()
		if s.SessionsTotal < last.SessionsTotal || s.StmtsTotal < last.StmtsTotal ||
			s.BytesIn < last.BytesIn || s.BytesOut < last.BytesOut ||
			s.RowsStreamed < last.RowsStreamed || s.SessionsPeak < last.SessionsPeak {
			t.Fatalf("counter went backwards: %+v -> %+v", last, s)
		}
		if s.SessionsOpen < 0 || s.StmtsInFlight < 0 || s.QueueDepth < 0 {
			t.Fatalf("gauge went negative: %+v", s)
		}
		if s.SessionsPeak < s.SessionsOpen {
			t.Fatalf("peak %d below gauge %d", s.SessionsPeak, s.SessionsOpen)
		}
		last = s
	}
	close(stop)
	wg.Wait()
}
