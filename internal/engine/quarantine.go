package engine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/dberr"
	"repro/internal/flat"
	"repro/internal/page"
)

// Object quarantine: corruption containment at the object granularity.
//
// When a read hits a corrupt page, subtuple, or Mini-Directory node,
// the engine records the affected object (its root reference — the
// Mini-Directory entry — for complex tables, the tuple TID for flat
// ones) in the quarantine set and returns a typed *QuarantineError.
// Later statements touching the same object fail fast with the same
// error instead of re-reading rotten pages; every other object — in
// the same table and in every other table — keeps being served. A
// corrupt directory chunk quarantines the table's scans (Ref zero)
// while point reads by reference stay available.
//
// Quarantine entries are observations about the durable state, so
// they survive statement aborts and runtime reloads — except that a
// successful rollback replays the full WAL history over every page
// holding committed data, which repairs the images the entries were
// observed on; rollbackStmt therefore clears the set and lets reads
// re-detect whatever recovery could not cure. aimdoctor repair and
// scrub re-verification clear entries explicitly once an object is
// salvaged or dropped.

// ErrQuarantined is the sentinel matched by errors.Is for every
// *QuarantineError.
var ErrQuarantined = errors.New("engine: object quarantined")

// QuarantineError reports that a statement touched a quarantined
// object. It unwraps to both ErrQuarantined and (through Reason) the
// dberr.ErrCorrupt sentinel.
type QuarantineError struct {
	// Table is the table holding the object.
	Table string
	// Ref is the object's root reference (tuple TID for flat tables);
	// the zero TID means the table's directory itself is corrupt, which
	// quarantines table scans but not point reads.
	Ref page.TID
	// Reason is the corruption error observed when the object was
	// quarantined.
	Reason error
}

func (e *QuarantineError) Error() string {
	if e.Ref.Nil() {
		return fmt.Sprintf("engine: directory of table %s quarantined: %v", e.Table, e.Reason)
	}
	return fmt.Sprintf("engine: object %s %v quarantined: %v", e.Table, e.Ref, e.Reason)
}

// Is matches the ErrQuarantined sentinel.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// Unwrap exposes the observed corruption to errors.Is/As.
func (e *QuarantineError) Unwrap() error { return e.Reason }

type quarKey struct {
	table string
	ref   page.TID
}

// quarantine records the object as quarantined (first observation
// wins) and returns the entry to fail the statement with.
func (db *DB) quarantine(table string, ref page.TID, reason error) *QuarantineError {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	k := quarKey{table, ref}
	if q, ok := db.quar[k]; ok {
		return q
	}
	q := &QuarantineError{Table: table, Ref: ref, Reason: reason}
	db.quar[k] = q
	return q
}

// quarCheck fails fast if the object (or, via the zero ref, the whole
// table's directory) is quarantined.
func (db *DB) quarCheck(table string, ref page.TID) error {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	if q, ok := db.quar[quarKey{table, ref}]; ok {
		return q
	}
	return nil
}

// quarCheckScan is quarCheck for table scans, which a quarantined
// directory also blocks.
func (db *DB) quarCheckScan(table string, ref page.TID) error {
	if err := db.quarCheck(table, page.TID{}); err != nil {
		return err
	}
	return db.quarCheck(table, ref)
}

// guardRead converts a corruption error from a read of the given
// object into its quarantine entry; other errors pass through. A
// flat.TupleError pins the quarantine to the tuple it names.
func (db *DB) guardRead(table string, ref page.TID, err error) error {
	if err == nil {
		return err
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		return err // already typed
	}
	var te *flat.TupleError
	if errors.As(err, &te) {
		return db.quarantine(table, te.TID, err)
	}
	if dberr.IsCorrupt(err) {
		return db.quarantine(table, ref, err)
	}
	return err
}

// guardDir converts a corruption error from the table's directory
// chain into a table-level quarantine entry (zero ref).
func (db *DB) guardDir(table string, err error) error {
	if err == nil {
		return nil
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		return err
	}
	if dberr.IsCorrupt(err) {
		return db.quarantine(table, page.TID{}, err)
	}
	return err
}

// QuarantineObject records an externally detected fault (the scrubber
// and aimdoctor use this) and returns the typed error future reads of
// the object will fail with.
func (db *DB) QuarantineObject(table string, ref page.TID, reason error) *QuarantineError {
	return db.quarantine(table, ref, reason)
}

// Unquarantine drops one quarantine entry (after the object was
// repaired, salvaged, or dropped).
func (db *DB) Unquarantine(table string, ref page.TID) {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	delete(db.quar, quarKey{table, ref})
}

// ClearQuarantine empties the quarantine set; statement rollback calls
// it after recovery has rebuilt every page holding committed data, so
// reads re-detect any fault recovery could not cure.
func (db *DB) ClearQuarantine() {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	db.quar = make(map[quarKey]*QuarantineError)
}

// Quarantined lists the current quarantine entries, sorted by table
// and reference.
func (db *DB) Quarantined() []*QuarantineError {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	out := make([]*QuarantineError, 0, len(db.quar))
	for _, q := range db.quar {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		if out[i].Ref.Page != out[j].Ref.Page {
			return out[i].Ref.Page < out[j].Ref.Page
		}
		return out[i].Ref.Slot < out[j].Ref.Slot
	})
	return out
}

// --- index degradation --------------------------------------------------

// DegradeIndex takes a live index out of service: it is removed from
// the planner's view (queries fall back to base-table scans — slower,
// never wrong) while its catalog definition stays, so aimdoctor or the
// next successful runtime reload can rebuild it.
func (db *DB) DegradeIndex(name string, reason error) {
	db.quarMu.Lock()
	db.degraded[name] = reason.Error()
	db.quarMu.Unlock()
	// Detach under the heal barrier: readers resolve indexes by name
	// from the live maps while holding the shared side, and the
	// scrubber calls in here concurrently with running queries.
	db.healMu.Lock()
	db.mu.Lock()
	db.detachIndex(name)
	db.mu.Unlock()
	db.healMu.Unlock()
	// Cached plans may have chosen this index; detach them all. (They
	// could not have used it anyway — execute-time resolution is by
	// name against the live maps — but re-binding promptly restores
	// index access paths for whatever indexes remain.)
	db.bumpEpoch()
}

// degradeIndexLocked is DegradeIndex for callers inside reloadRuntime,
// where the index was never attached.
func (db *DB) noteDegraded(name string, reason error) {
	db.quarMu.Lock()
	db.degraded[name] = reason.Error()
	db.quarMu.Unlock()
	db.bumpEpoch()
}

// clearDegraded forgets a degradation record (the index was rebuilt).
func (db *DB) clearDegraded(name string) {
	db.quarMu.Lock()
	delete(db.degraded, name)
	db.quarMu.Unlock()
	db.bumpEpoch()
}

// DegradedIndexes returns the names of out-of-service indexes mapped
// to the reason each was degraded.
func (db *DB) DegradedIndexes() map[string]string {
	db.quarMu.Lock()
	defer db.quarMu.Unlock()
	out := make(map[string]string, len(db.degraded))
	for k, v := range db.degraded {
		out[k] = v
	}
	return out
}

// detachIndex removes a live index (value or text) from the runtime
// maps without touching its catalog definition.
func (db *DB) detachIndex(name string) {
	if ix, ok := db.indexByName[name]; ok {
		delete(db.indexByName, name)
		list := db.indexes[ix.Def.Table]
		for i, other := range list {
			if other == ix {
				db.indexes[ix.Def.Table] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	if ti, ok := db.textByName[name]; ok {
		delete(db.textByName, name)
		list := db.textIdx[ti.Table]
		for i, other := range list {
			if other == ti {
				db.textIdx[ti.Table] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// --- helpers for external integrity tooling -----------------------------

// Tables lists the cataloged tables (sorted by name, like
// catalog.Tables).
func (db *DB) Tables() []*catalog.Table { return db.cat.Tables() }

// View runs fn with mutations excluded (applyMu) while participating
// as a reader in the heal barrier, so fn sees a statement-consistent
// database while queries keep running and mutating statements wait.
// The online scrubber uses it.
func (db *DB) View(fn func() error) error {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	db.healMu.RLock()
	defer db.healMu.RUnlock()
	if err := db.fatal(); err != nil {
		return err
	}
	return fn()
}
