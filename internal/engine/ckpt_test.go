package engine

import (
	"fmt"
	"repro/internal/model"
	"testing"
)

// TestOpenTxnSurvivesCheckpointRecycle: a checkpoint taken while a
// transaction is open must not strand it — the transaction's writes
// are buffered in memory, so the checkpoint horizon only covers
// completed statements, recycling retires pre-checkpoint segments
// safely, and the later commit lands in the retained tail and
// survives a reopen.
func TestOpenTxnSurvivesCheckpointRecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE LEDGER (ID INT, V INT) VERSIONED`)
	mustExec(t, db, `INSERT INTO LEDGER VALUES (1, 10)`)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE x IN LEDGER SET V = 11 WHERE x.ID = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO LEDGER VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}

	// Enough auto-commit traffic to roll several 4KB segments, then a
	// checkpoint: recycling must retire the pre-checkpoint history even
	// though tx is still open.
	for i := 0; i < 40; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO LEDGER VALUES (%d, %d)`, 1000+i, i))
	}
	before := db.WALStats()
	if before.Segments < 2 {
		t.Fatalf("workload did not roll the log: %d segments", before.Segments)
	}
	if err := db.WALCheckpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.WALStats()
	if after.CheckpointLSN == 0 {
		t.Fatal("checkpoint did not register")
	}
	if after.Segments >= before.Segments {
		t.Fatalf("recycle retired nothing: %d segments before, %d after", before.Segments, after.Segments)
	}

	if err := tx.Commit(); err != nil {
		t.Fatalf("commit across checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir, WALSegmentBytes: 4096})
	if err != nil {
		t.Fatalf("reopen after recycle: %v", err)
	}
	defer db2.Close()
	tbl, _, err := db2.Query(`SELECT x.V FROM x IN LEDGER WHERE x.ID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || int64(tbl.Tuples[0][0].(model.Int)) != 11 {
		t.Fatalf("txn update lost across checkpoint+reopen: %v", tbl.Tuples)
	}
	tbl, _, err = db2.Query(`SELECT x.V FROM x IN LEDGER WHERE x.ID = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || int64(tbl.Tuples[0][0].(model.Int)) != 20 {
		t.Fatalf("txn insert lost across checkpoint+reopen: %v", tbl.Tuples)
	}
}
