package engine_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// TestConcurrentReadersEquivalence is the end-to-end stress test of
// the sharded read path: 8 goroutines stream Examples 1-8 through
// QueryRows while a writer mutates an unrelated scratch table and a
// monitor hammers the lock-free statistics. Every streamed result
// must equal the serial oracle computed up front — the office tables
// are never written, so concurrency must not be observable in any
// result — and the pool must end with zero pinned pages.
func TestConcurrentReadersEquivalence(t *testing.T) {
	db, err := core.OfficeWith(engine.Options{PoolPages: 64, PoolShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	queries := core.ExampleQueries()
	oracle := make(map[string]string, len(queries))
	for _, q := range queries {
		tbl, tt, err := db.Query(q.Text)
		if err != nil {
			t.Fatalf("%s oracle: %v", q.ID, err)
		}
		oracle[q.ID] = model.FormatTable(q.ID, tt, tbl)
	}

	if _, err := db.Exec(`CREATE TABLE SCRATCH (ID INT, NOTE STRING)`); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const rounds = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: each streams every example query `rounds` times,
	// starting at a different offset so distinct plans overlap.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds*len(queries); i++ {
				q := queries[(r+i)%len(queries)]
				rows, err := db.QueryRows(q.Text)
				if err != nil {
					t.Errorf("reader %d %s: %v", r, q.ID, err)
					return
				}
				got := &model.Table{}
				for rows.Next() {
					got.Append(rows.Tuple())
				}
				if err := rows.Err(); err != nil {
					t.Errorf("reader %d %s: stream failed: %v", r, q.ID, err)
					return
				}
				rows.Close()
				if s := model.FormatTable(q.ID, rows.Type(), got); s != oracle[q.ID] {
					t.Errorf("reader %d: %s result diverged from serial oracle under concurrency:\ngot:\n%s\nwant:\n%s",
						r, q.ID, s, oracle[q.ID])
					return
				}
			}
		}(r)
	}

	// Writer: churns the scratch table only. Office-table reads must
	// not observe it.
	var writes atomic.Int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO SCRATCH VALUES (%d, 'w')`, i)); err != nil {
				t.Errorf("writer insert %d: %v", i, err)
				return
			}
			if i >= 8 {
				if _, err := db.Exec(fmt.Sprintf(`DELETE s FROM s IN SCRATCH WHERE s.ID = %d`, i-8)); err != nil {
					t.Errorf("writer delete %d: %v", i-8, err)
					return
				}
			}
			writes.Add(1)
		}
	}()

	// Monitor: reads the lock-free pool and statement statistics while
	// everything above is in flight (-race is the assertion here).
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := db.Pool().Stats()
			if s.Fetches < last {
				t.Errorf("pool Fetches went backwards: %d after %d", s.Fetches, last)
				return
			}
			last = s.Fetches
			_ = db.LastStmtStats()
			_ = db.Pool().PinnedCount()
		}
	}()

	// Wait for the readers; under a loaded scheduler the writer may
	// not have had a turn yet, so also wait for it to commit at least
	// a few statements before stopping everything.
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for writes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-writerDone
	<-monitorDone

	if writes.Load() == 0 {
		t.Error("writer made no progress")
	}
	if got := db.Pool().PinnedCount(); got != 0 {
		t.Errorf("PinnedCount = %d after all statements finished, want 0", got)
	}
}
