package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/wal"
)

// Result is the outcome of one statement.
type Result struct {
	// Table and Type are set for queries.
	Table *model.Table
	Type  *model.TableType
	// Count is the number of affected tuples for DML.
	Count int
	// Message describes DDL outcomes.
	Message string
}

// Exec parses and runs a script of semicolon-separated statements.
// Outside an explicit transaction each statement auto-commits; a
// BEGIN ... COMMIT/ROLLBACK bracket inside the script runs its
// statements as one snapshot-isolated transaction.
func (db *DB) Exec(script string) ([]Result, error) {
	return db.ExecContext(context.Background(), script)
}

// ExecContext is Exec with cancellation: long scans check the context
// once per tuple binding, so cancellation and deadlines fail the
// current statement promptly (and, for mutating statements, roll it
// back like any other statement failure). A script that ends with a
// transaction still open rolls it back and reports an error.
func (db *DB) ExecContext(ctx context.Context, script string) ([]Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var results []Result
	var tx *Txn
	defer func() {
		if tx != nil {
			tx.Rollback()
		}
	}()
	for _, st := range stmts {
		switch st.Statement.(type) {
		case *sql.Begin:
			if tx != nil {
				return results, fmt.Errorf("engine: BEGIN inside an open transaction (transactions do not nest)")
			}
			if tx, err = db.Begin(); err != nil {
				return results, err
			}
			results = append(results, Result{Message: "transaction started"})
			continue
		case *sql.Commit:
			if tx == nil {
				return results, fmt.Errorf("engine: COMMIT without BEGIN")
			}
			t := tx
			tx = nil
			if err := t.Commit(); err != nil {
				return results, err
			}
			results = append(results, Result{Message: "transaction committed"})
			continue
		case *sql.Rollback:
			if tx == nil {
				return results, fmt.Errorf("engine: ROLLBACK without BEGIN")
			}
			tx.Rollback()
			tx = nil
			results = append(results, Result{Message: "transaction rolled back"})
			continue
		}
		var res Result
		if tx != nil {
			res, err = tx.execOne(ctx, st.Statement, st.Text)
		} else {
			res, err = db.execOne(ctx, st.Statement, st.Text)
		}
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	if tx != nil {
		tx.Rollback()
		tx = nil
		return results, fmt.Errorf("engine: script ended with an open transaction (missing COMMIT or ROLLBACK); rolled back")
	}
	return results, nil
}

// Query runs a single SELECT and returns its result table and schema.
// Queries may run concurrently with each other; mutating statements
// are serialized by ExecStmt.
func (db *DB) Query(q string) (*model.Table, *model.TableType, error) {
	return db.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation.
func (db *DB) QueryContext(ctx context.Context, q string) (*model.Table, *model.TableType, error) {
	st, err := sql.ParseOne(q)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, nil, fmt.Errorf("engine: Query requires a SELECT, got %T", st)
	}
	res, err := db.execOne(ctx, sel, strings.TrimSpace(q))
	if err != nil {
		return nil, nil, err
	}
	return res.Table, res.Type, nil
}

// MustQuery is Query for tests and examples; it panics on error.
func (db *DB) MustQuery(q string) (*model.Table, *model.TableType) {
	tbl, tt, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	return tbl, tt
}

// ExecStmt runs (and commits) one parsed statement.
func (db *DB) ExecStmt(st sql.Statement) (Result, error) {
	return db.execOne(context.Background(), st, fmt.Sprintf("%T", st))
}

// ExecStmtContext runs (and commits) one already-parsed statement —
// the zero-reparse entry point for callers that hold a sql.Stmt (the
// REPL parses each input chunk exactly once and executes through
// here). BEGIN/COMMIT/ROLLBACK are rejected like in execOne; bracket
// handling belongs to the caller (see ExecContext for the script
// form).
func (db *DB) ExecStmtContext(ctx context.Context, st sql.Stmt) (Result, error) {
	return db.execOne(ctx, st.Statement, st.Text)
}

// execOne runs one auto-commit statement with full fault containment:
// read-only statements hold only the shared heal barrier, so any
// number can stream concurrently (even while a transaction commits);
// mutating statements serialize on applyMu, commit on success, and
// roll back to the pre-statement state on any error or recovered
// panic — the next statement sees only committed data, without a
// reopen.
func (db *DB) execOne(ctx context.Context, st sql.Statement, text string) (Result, error) {
	return db.execOneArgs(ctx, st, text, nil, nil)
}

// execOneArgs is execOne with bound `?` parameter values and an
// optional pre-bound plan (the prepared-statement path: when prep is
// non-nil and current, selects execute its cached bind products
// instead of re-inferring and re-planning).
func (db *DB) execOneArgs(ctx context.Context, st sql.Statement, text string, params []model.Value, prep *plan.Prepared) (Result, error) {
	readOnly := false
	switch st.(type) {
	case *sql.Select, *sql.Explain, *sql.ShowTables, *sql.Describe:
		readOnly = true
	}
	if readOnly {
		db.healMu.RLock()
		if err := db.fatal(); err != nil {
			db.healMu.RUnlock()
			return Result{}, err
		}
		start := db.mark()
		res, err := db.runStmtArgs(ctx, st, text, params, prep)
		// Snapshot the counters before releasing the barrier: since
		// walks the per-table stores, which DDL replaces under the
		// exclusive side.
		var s StmtStats
		if err == nil {
			s = db.since(start)
		}
		db.healMu.RUnlock()
		var pe *PanicError
		if errors.As(err, &pe) {
			// A recovered panic may have leaked pins or left partial
			// in-memory state even though the statement read nothing;
			// heal under the exclusive barrier.
			err = db.abort(err)
		}
		if err == nil {
			s.Rows = res.Count
			db.noteStmtStats(s)
		}
		return res, err
	}
	if db.opts.Replica {
		return Result{}, fmt.Errorf("engine: %T: %w", st, ErrReadOnlyReplica)
	}
	switch st.(type) {
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return Result{}, fmt.Errorf("engine: BEGIN/COMMIT/ROLLBACK take effect inside Exec scripts or via DB.Begin")
	}
	ddl := false
	switch st.(type) {
	case *sql.CreateTable, *sql.DropTable, *sql.CreateIndex, *sql.DropIndex, *sql.AlterTableAdd:
		ddl = true
	}
	db.applyMu.Lock()
	if err := db.fatal(); err != nil {
		db.applyMu.Unlock()
		return Result{}, err
	}
	start := db.mark()
	var res Result
	var err error
	if ddl {
		// DDL rewrites the in-memory runtime (managers, stores, index
		// maps) that readers traverse without page latches, so it
		// drains them via the heal barrier. New transactions cannot
		// begin either — Begin samples its snapshot under the shared
		// side of the same barrier. DDL commits synchronously: it is
		// rare enough that joining a group-commit batch buys nothing.
		db.healMu.Lock()
		res, err = db.runStmtArgs(ctx, st, text, params, prep)
		if err == nil {
			if cerr := db.Commit(); cerr != nil {
				err = fmt.Errorf("engine: commit: %w", cerr)
			}
		}
		db.healMu.Unlock()
		if err != nil {
			err = db.abortLocked(err)
			db.applyMu.Unlock()
			return Result{}, err
		}
		s := db.since(start)
		s.Rows = res.Count
		db.applyMu.Unlock()
		db.noteStmtStats(s)
		return res, nil
	}
	// DML mutates latched pages only; concurrent cursors keep
	// streaming. snapMu is held across statement plus commit-record
	// append so a transaction snapshot never lands inside the
	// statement's write window.
	db.stmtWrites = db.stmtWrites[:0]
	var end, epoch uint64
	db.snapMu.Lock()
	res, err = db.runStmtArgs(ctx, st, text, params, prep)
	if err == nil {
		// The commit record is appended while the statement's locks are
		// held but synced only after they drop, so overlapping
		// committers share one fsync (group commit). A failed append
		// aborts the statement like any other error. The record carries
		// a timestamp sampled under snapMu: every version the statement
		// wrote is strictly older, so a replica that applies this group
		// can publish the timestamp as its visibility horizon.
		end, epoch, err = db.appendCommit(wal.CommitPayload(0, db.opts.Clock()))
		if err != nil {
			err = fmt.Errorf("engine: commit: %w", err)
		} else {
			db.publishStmtWrites()
		}
	}
	db.snapMu.Unlock()
	if err != nil {
		err = db.abortLocked(err)
		db.applyMu.Unlock()
		return Result{}, err
	}
	s := db.since(start)
	s.Rows = res.Count
	db.applyMu.Unlock()
	// Establish durability outside the apply lock. The statement's
	// effects are already visible to readers, but it is acknowledged
	// only once its commit record is on disk.
	if derr := db.waitCommitDurable(end, epoch); derr != nil {
		lost, aerr := db.abandonCommit(end)
		if lost {
			if aerr != nil {
				derr = fmt.Errorf("%v (discarding the record: %v)", derr, aerr)
			}
			return Result{}, db.abort(fmt.Errorf("engine: commit: %w", derr))
		}
		// An overlapping sync made the record durable after all: the
		// commit stands.
	}
	db.noteStmtStats(s)
	return res, nil
}

// runStmtArgs executes one statement, converting panics into errors
// tagged with the statement text.
func (db *DB) runStmtArgs(ctx context.Context, st sql.Statement, text string, params []model.Value, prep *plan.Prepared) (res Result, err error) {
	defer recoverPanic(text, &err)
	return db.execStmtArgs(ctx, st, params, prep)
}

// execStmtLocked dispatches one statement without parameters (the
// unprepared path; transactions also route their catalog-inspection
// statements through it).
func (db *DB) execStmtLocked(ctx context.Context, st sql.Statement) (Result, error) {
	return db.execStmtArgs(ctx, st, nil, nil)
}

func (db *DB) execStmtArgs(ctx context.Context, st sql.Statement, params []model.Value, prep *plan.Prepared) (Result, error) {
	switch st := st.(type) {
	case *sql.Select:
		// A cached plan may have been bound from a different parse of
		// the same normalized SQL; its own AST is the one its path sets
		// and access choices were derived from, so execute that one.
		if prep != nil && prep.Sel != nil {
			return db.runPreparedSelect(ctx, prep, params)
		}
		tbl, tt, err := db.readExec().QueryArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: tbl, Type: tt, Count: tbl.Len()}, nil
	case *sql.CreateTable:
		var layout object.Layout
		switch st.Layout {
		case "":
		case "SS1":
			layout = object.SS1
		case "SS2":
			layout = object.SS2
		case "SS3":
			layout = object.SS3
		default:
			return Result{}, fmt.Errorf("engine: unknown layout %q", st.Layout)
		}
		if err := db.CreateTable(st.Name, st.Type, TableOptions{Versioned: st.Versioned, Layout: layout}); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil
	case *sql.DropTable:
		if err := db.DropTable(st.Name); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("table %s dropped", st.Name)}, nil
	case *sql.CreateIndex:
		if st.Text {
			if err := db.CreateTextIndex(st.Name, st.Table, st.Path); err != nil {
				return Result{}, err
			}
			return Result{Message: fmt.Sprintf("text index %s created", st.Name)}, nil
		}
		if err := db.CreateIndex(st.Name, st.Table, st.Path, st.Using); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("index %s created", st.Name)}, nil
	case *sql.DropIndex:
		if err := db.DropIndex(st.Name); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("index %s dropped", st.Name)}, nil
	case *sql.Insert:
		n, err := db.exec.ExecInsertArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) inserted", n)}, nil
	case *sql.Delete:
		n, err := db.exec.ExecDeleteArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) deleted", n)}, nil
	case *sql.Update:
		n, err := db.exec.ExecUpdateArgs(ctx, st, params)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: n, Message: fmt.Sprintf("%d tuple(s) updated", n)}, nil
	case *sql.AlterTableAdd:
		if err := db.AlterTableAdd(st.Table, st.Path, st.Type); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("table %s altered", st.Table)}, nil
	case *sql.Explain:
		return db.explainArgs(ctx, st.Sel, params, prep)
	case *sql.ShowTables:
		tt := model.MustTableType(false,
			model.Attr{Name: "NAME", Type: model.AtomicType(model.KindString)},
			model.Attr{Name: "KIND", Type: model.AtomicType(model.KindString)},
			model.Attr{Name: "LAYOUT", Type: model.AtomicType(model.KindString)},
			model.Attr{Name: "VERSIONED", Type: model.AtomicType(model.KindBool)},
		)
		tbl := model.NewRelation()
		for _, t := range db.cat.Tables() {
			kind, layout := "FLAT", ""
			if t.Kind == catalog.Complex {
				kind = "NF2"
				layout = object.Layout(t.Layout).String()
			}
			tbl.Append(model.Tuple{
				model.Str(t.Name), model.Str(kind), model.Str(layout), model.Bool(t.Versioned),
			})
		}
		return Result{Table: tbl, Type: tt, Count: tbl.Len()}, nil
	case *sql.Describe:
		t, ok := db.cat.Table(st.Name)
		if !ok {
			return Result{}, fmt.Errorf("engine: no table %q", st.Name)
		}
		return Result{Message: t.Type.String()}, nil
	}
	return Result{}, fmt.Errorf("engine: unsupported statement %T", st)
}

// explainArgs reports the access path and fetch set per FROM item of
// a query, then actually runs it through the streaming cursor
// (results discarded) and appends the measured physical access
// counters — pages fetched, buffer hits, physical reads, subtuples
// decoded.
func (db *DB) explainArgs(ctx context.Context, sel *sql.Select, params []model.Value, prep *plan.Prepared) (Result, error) {
	start := db.mark()
	cur, err := db.openSelect(ctx, sel, params, prep)
	if err != nil {
		return Result{}, err
	}
	defer cur.Close()
	rows := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return Result{}, err
		}
		if !ok {
			break
		}
		rows++
	}
	cur.Close()
	stats := db.since(start)
	stats.Rows = rows
	var b strings.Builder
	for _, line := range cur.AccessPlan() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString(stats.String())
	return Result{Message: b.String(), Count: rows}, nil
}

// openSelect opens the streaming cursor for a select: through the
// prepared plan's cached bind products when one is supplied (running
// the plan's own AST — the one its path sets and access choices were
// derived from), else through the full open path.
func (db *DB) openSelect(ctx context.Context, sel *sql.Select, params []model.Value, prep *plan.Prepared) (*exec.Cursor, error) {
	ex := db.readExec()
	if prep != nil && prep.Sel != nil {
		cands := prep.Candidates(ex.RT, params)
		return ex.OpenPrepared(ctx, prep.Sel, prep.ResultType, prep.Paths, cands, params)
	}
	return ex.OpenQueryArgs(ctx, sel, params)
}

// runPreparedSelect materializes a prepared select: the plan's access
// choices are evaluated against the live indexes and the bound
// arguments, and the cursor runs with the cached result schema and
// path sets — no inference, no path derivation, no planner call.
func (db *DB) runPreparedSelect(ctx context.Context, prep *plan.Prepared, params []model.Value) (Result, error) {
	cur, err := db.openSelect(ctx, prep.Sel, params, prep)
	if err != nil {
		return Result{}, err
	}
	defer cur.Close()
	out := &model.Table{Ordered: cur.Type().Ordered}
	for {
		tup, ok, err := cur.Next()
		if err != nil {
			return Result{}, err
		}
		if !ok {
			break
		}
		out.Append(tup)
	}
	return Result{Table: out, Type: cur.Type(), Count: out.Len()}, nil
}
