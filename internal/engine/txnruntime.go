package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/subtuple"
	"repro/internal/textindex"
)

// txnRuntime is the storage interface a transaction's executor runs
// against. Reads of versioned tables are redirected to the
// transaction's snapshot timestamp (the ordinary ASOF version-chain
// walk — snapshot isolation costs nothing the time-travel machinery
// does not already pay), overlaid with the transaction's own buffered
// writes; writes go to the buffer instead of storage. Explicit ASOF
// reads keep their user-specified instant and skip the overlay: they
// are historical queries, not reads of the transaction's world.
type txnRuntime struct {
	tx *Txn
}

// Table implements exec.Runtime.
func (rt *txnRuntime) Table(name string) (*catalog.Table, bool) { return rt.tx.db.cat.Table(name) }

// Indexes implements exec.Runtime. Transactions read through full
// scans only: index entries reflect current committed state, not the
// snapshot, and know nothing of the transaction's buffered writes.
func (rt *txnRuntime) Indexes(string) []*index.Index { return nil }

// TextIndexes implements exec.Runtime (nil for the same reason as
// Indexes).
func (rt *txnRuntime) TextIndexes(string) []*textindex.Index { return nil }

// ParseTime implements exec.Runtime.
func (rt *txnRuntime) ParseTime(v model.Value) (int64, error) { return exec.ParseTimeValue(v) }

// TName implements exec.Runtime.
func (rt *txnRuntime) TName(t *catalog.Table, ref page.TID, steps []object.Step) (string, error) {
	if ref.Page >= synthBase {
		return "", fmt.Errorf("engine: TNAME of a tuple inserted in this transaction is unavailable before commit")
	}
	return (*runtime)(rt.tx.db).TName(t, ref, steps)
}

// ScanTable implements exec.Runtime: the committed snapshot with the
// transaction's deletes filtered, updates substituted, and inserts
// appended.
func (rt *txnRuntime) ScanTable(t *catalog.Table, asof int64, fn func(ref page.TID, tup model.Tuple) error) error {
	tx := rt.tx
	overlay := asof == 0
	err := tx.db.ScanTable(t, tx.visibleTS(t, asof), func(ref page.TID, tup model.Tuple) error {
		if overlay {
			if p, ok := tx.pending[wkey{t.Name, ref}]; ok {
				if p.deleted {
					return nil
				}
				return fn(ref, p.tup.Clone())
			}
		}
		return fn(ref, tup)
	})
	if err != nil || !overlay {
		return err
	}
	return tx.scanPendingInserts(t, fn)
}

// scanPendingInserts streams the transaction's not-yet-committed
// inserts into a table, in insertion order.
func (tx *Txn) scanPendingInserts(t *catalog.Table, fn func(ref page.TID, tup model.Tuple) error) error {
	for _, k := range tx.order {
		if k.table != t.Name || k.ref.Page < synthBase {
			continue
		}
		p := tx.pending[k]
		if p == nil || p.deleted {
			continue
		}
		if err := fn(k.ref, p.tup.Clone()); err != nil {
			return err
		}
	}
	return nil
}

// ReadRef implements exec.Runtime.
func (rt *txnRuntime) ReadRef(t *catalog.Table, ref page.TID, asof int64) (model.Tuple, error) {
	tx := rt.tx
	if asof == 0 {
		if p, ok := tx.pending[wkey{t.Name, ref}]; ok {
			if p.deleted {
				return nil, subtuple.ErrNotFound
			}
			return p.tup.Clone(), nil
		}
		if ref.Page >= synthBase {
			return nil, subtuple.ErrNotFound
		}
	}
	return tx.db.ReadRef(t, ref, tx.visibleTS(t, asof))
}

// OpenRef implements exec.Runtime. Buffered images are returned whole;
// projection pruning is an optimization for stored objects only.
func (rt *txnRuntime) OpenRef(t *catalog.Table, ref page.TID, asof int64, ps *object.PathSet) (model.Tuple, error) {
	tx := rt.tx
	if asof == 0 {
		if p, ok := tx.pending[wkey{t.Name, ref}]; ok {
			if p.deleted {
				return nil, subtuple.ErrNotFound
			}
			return p.tup.Clone(), nil
		}
		if ref.Page >= synthBase {
			return nil, subtuple.ErrNotFound
		}
	}
	return tx.db.OpenRef(t, ref, tx.visibleTS(t, asof), ps)
}

// OpenScan implements exec.Runtime: the stored-table cursor wrapped
// with the transaction's overlay.
func (rt *txnRuntime) OpenScan(t *catalog.Table, asof int64, ps *object.PathSet) (exec.ScanCursor, error) {
	tx := rt.tx
	overlay := asof == 0
	under, err := tx.db.OpenScan(t, tx.visibleTS(t, asof), ps)
	if err != nil {
		return nil, err
	}
	if !overlay {
		return under, nil
	}
	// Snapshot the synthetic refs now; entries stay in tx.order for the
	// transaction's lifetime, and deletes are re-checked per Next.
	var pend []page.TID
	for _, k := range tx.order {
		if k.table == t.Name && k.ref.Page >= synthBase {
			pend = append(pend, k.ref)
		}
	}
	return &txnScanCursor{tx: tx, t: t, under: under, pend: pend}, nil
}

// txnScanCursor overlays a transaction's buffered writes onto a
// stored-table cursor: committed tuples stream through (substituted or
// suppressed when the transaction wrote them), then the transaction's
// own inserts follow.
type txnScanCursor struct {
	tx    *Txn
	t     *catalog.Table
	under exec.ScanCursor // nil once exhausted
	pend  []page.TID
	i     int
}

func (c *txnScanCursor) Next() (page.TID, model.Tuple, bool, error) {
	for c.under != nil {
		ref, tup, ok, err := c.under.Next()
		if err != nil {
			return page.TID{}, nil, false, err
		}
		if !ok {
			c.under.Close()
			c.under = nil
			break
		}
		if p, hit := c.tx.pending[wkey{c.t.Name, ref}]; hit {
			if p.deleted {
				continue
			}
			return ref, p.tup.Clone(), true, nil
		}
		return ref, tup, true, nil
	}
	for c.i < len(c.pend) {
		ref := c.pend[c.i]
		c.i++
		p := c.tx.pending[wkey{c.t.Name, ref}]
		if p == nil || p.deleted {
			continue
		}
		return ref, p.tup.Clone(), true, nil
	}
	return page.TID{}, nil, false, nil
}

func (c *txnScanCursor) Close() error {
	if c.under != nil {
		err := c.under.Close()
		c.under = nil
		return err
	}
	return nil
}

// --- buffered writes ----------------------------------------------------

// setPending records the new image of one object, keeping insertion
// order for stable scans. Entries are replaced whole, never mutated:
// statement-level rollback restores a shallow copy of the map.
func (tx *Txn) setPending(k wkey, p *pendingObj) {
	if _, ok := tx.pending[k]; !ok {
		tx.order = append(tx.order, k)
	}
	tx.pending[k] = p
}

// baseImage returns a private copy of the object's current image in
// this transaction: the buffered one if the transaction wrote it, else
// the committed image at the snapshot.
func (tx *Txn) baseImage(t *catalog.Table, k wkey) (model.Tuple, error) {
	if p, ok := tx.pending[k]; ok {
		if p.deleted {
			return nil, subtuple.ErrNotFound
		}
		return p.tup.Clone(), nil
	}
	if k.ref.Page >= synthBase {
		return nil, subtuple.ErrNotFound
	}
	tup, err := tx.db.ReadRef(t, k.ref, tx.visibleTS(t, 0))
	if err != nil {
		return nil, err
	}
	return tup.Clone(), nil
}

// wasInserted reports whether the pending entry (if any) belongs to a
// tuple this transaction created.
func (tx *Txn) wasInserted(k wkey) bool {
	p := tx.pending[k]
	return p != nil && p.inserted
}

// InsertTuple implements exec.Runtime: the tuple gets a synthetic ref
// and lives in the buffer until commit. A brand-new tuple cannot
// conflict with anything, so no write lock is taken.
func (rt *txnRuntime) InsertTuple(t *catalog.Table, tup model.Tuple) error {
	tx := rt.tx
	if err := model.Conform(t.Type, tup); err != nil {
		return err
	}
	ref := tx.newSynthRef()
	k := wkey{t.Name, ref}
	tx.setPending(k, &pendingObj{tup: tup.Clone(), inserted: true})
	tx.ops = append(tx.ops, txOp{kind: opInsert, table: t.Name, ref: ref})
	return nil
}

// DeleteTuple implements exec.Runtime.
func (rt *txnRuntime) DeleteTuple(t *catalog.Table, ref page.TID) error {
	tx := rt.tx
	k := wkey{t.Name, ref}
	if ref.Page >= synthBase {
		if _, err := tx.baseImage(t, k); err != nil {
			return err
		}
		// Deleting a tuple inserted in this transaction elides the
		// insert at commit; no stored object is touched.
		tx.setPending(k, &pendingObj{deleted: true, inserted: true})
		return nil
	}
	if err := tx.registerWrite(k); err != nil {
		return err
	}
	if _, err := tx.baseImage(t, k); err != nil {
		return err
	}
	tx.setPending(k, &pendingObj{deleted: true})
	tx.ops = append(tx.ops, txOp{kind: opDelete, table: t.Name, ref: ref})
	return nil
}

// UpdateAtoms implements exec.Runtime.
func (rt *txnRuntime) UpdateAtoms(t *catalog.Table, ref page.TID, steps []object.Step, vals []model.Value) error {
	tx := rt.tx
	k := wkey{t.Name, ref}
	if ref.Page < synthBase {
		if err := tx.registerWrite(k); err != nil {
			return err
		}
	}
	img, err := tx.baseImage(t, k)
	if err != nil {
		return err
	}
	if err := applyUpdateAtoms(t, img, steps, vals); err != nil {
		return err
	}
	tx.setPending(k, &pendingObj{tup: img, inserted: tx.wasInserted(k)})
	if ref.Page < synthBase {
		tx.ops = append(tx.ops, txOp{
			kind: opUpdateAtoms, table: t.Name, ref: ref,
			steps: append([]object.Step(nil), steps...),
			vals:  append([]model.Value(nil), vals...),
		})
	}
	return nil
}

// InsertMember implements exec.Runtime.
func (rt *txnRuntime) InsertMember(t *catalog.Table, ref page.TID, steps []object.Step, attr int, member model.Tuple) error {
	tx := rt.tx
	k := wkey{t.Name, ref}
	if ref.Page < synthBase {
		if err := tx.registerWrite(k); err != nil {
			return err
		}
	}
	img, err := tx.baseImage(t, k)
	if err != nil {
		return err
	}
	if err := applyInsertMember(t, img, steps, attr, member); err != nil {
		return err
	}
	tx.setPending(k, &pendingObj{tup: img, inserted: tx.wasInserted(k)})
	if ref.Page < synthBase {
		tx.ops = append(tx.ops, txOp{
			kind: opInsertMember, table: t.Name, ref: ref,
			steps: append([]object.Step(nil), steps...),
			attr:  attr, tup: member.Clone(),
		})
	}
	return nil
}

// DeleteMember implements exec.Runtime.
func (rt *txnRuntime) DeleteMember(t *catalog.Table, ref page.TID, steps []object.Step, attr, pos int) error {
	tx := rt.tx
	k := wkey{t.Name, ref}
	if ref.Page < synthBase {
		if err := tx.registerWrite(k); err != nil {
			return err
		}
	}
	img, err := tx.baseImage(t, k)
	if err != nil {
		return err
	}
	if err := applyDeleteMember(t, img, steps, attr, pos); err != nil {
		return err
	}
	tx.setPending(k, &pendingObj{tup: img, inserted: tx.wasInserted(k)})
	if ref.Page < synthBase {
		tx.ops = append(tx.ops, txOp{
			kind: opDeleteMember, table: t.Name, ref: ref,
			steps: append([]object.Step(nil), steps...),
			attr:  attr, pos: pos,
		})
	}
	return nil
}

// --- logical DML on buffered images -------------------------------------
//
// These mirror the semantics of the storage-level mutations
// (object.Manager and flat.Store) on in-memory tuples, so a
// transaction's reads of its own writes agree exactly with what commit
// will apply.

// navigate descends a tuple image along steps, returning the addressed
// (sub)tuple and its level's type.
func navigate(tt *model.TableType, tup model.Tuple, steps []object.Step) (model.Tuple, *model.TableType, error) {
	cur, lt := tup, tt
	for _, s := range steps {
		if s.Attr < 0 || s.Attr >= len(lt.Attrs) || lt.Attrs[s.Attr].Type.Kind != model.KindTable {
			return nil, nil, fmt.Errorf("engine: step attribute %d is not a subtable", s.Attr)
		}
		sub, ok := cur[s.Attr].(*model.Table)
		if !ok {
			return nil, nil, fmt.Errorf("engine: subtable attribute %d is null", s.Attr)
		}
		if s.Pos < 0 || s.Pos >= len(sub.Tuples) {
			return nil, nil, fmt.Errorf("engine: member position %d out of range (%d members)", s.Pos, len(sub.Tuples))
		}
		cur = sub.Tuples[s.Pos]
		lt = lt.Attrs[s.Attr].Type.Table
	}
	return cur, lt, nil
}

// applyUpdateAtoms overwrites the atomic attributes of the level at
// steps in place. For flat tables vals covers all attributes; for
// complex ones it matches the level's AtomicIndexes order. Nulls
// overwrite, as in the stored form.
func applyUpdateAtoms(t *catalog.Table, img model.Tuple, steps []object.Step, vals []model.Value) error {
	if t.Kind == catalog.Flat {
		if len(vals) != len(img) {
			return fmt.Errorf("engine: update has %d values, tuple %d attributes", len(vals), len(img))
		}
		copy(img, vals)
		return nil
	}
	cur, lt, err := navigate(t.Type, img, steps)
	if err != nil {
		return err
	}
	ai := lt.AtomicIndexes()
	if len(vals) != len(ai) {
		return fmt.Errorf("engine: update has %d values, level has %d atomic attributes", len(vals), len(ai))
	}
	for j, i := range ai {
		cur[i] = vals[j]
	}
	return nil
}

// applyInsertMember appends a member to the subtable at steps/attr.
func applyInsertMember(t *catalog.Table, img model.Tuple, steps []object.Step, attr int, member model.Tuple) error {
	cur, lt, err := navigate(t.Type, img, steps)
	if err != nil {
		return err
	}
	if attr < 0 || attr >= len(lt.Attrs) || lt.Attrs[attr].Type.Kind != model.KindTable {
		return fmt.Errorf("engine: attribute %d is not a subtable", attr)
	}
	st := lt.Attrs[attr].Type.Table
	if err := model.Conform(st, member); err != nil {
		return err
	}
	sub, ok := cur[attr].(*model.Table)
	if !ok {
		sub = &model.Table{Ordered: st.Ordered}
		cur[attr] = sub
	}
	sub.Append(member.Clone())
	return nil
}

// applyDeleteMember removes the member at pos of the subtable at
// steps/attr.
func applyDeleteMember(t *catalog.Table, img model.Tuple, steps []object.Step, attr, pos int) error {
	cur, lt, err := navigate(t.Type, img, steps)
	if err != nil {
		return err
	}
	if attr < 0 || attr >= len(lt.Attrs) || lt.Attrs[attr].Type.Kind != model.KindTable {
		return fmt.Errorf("engine: attribute %d is not a subtable", attr)
	}
	sub, ok := cur[attr].(*model.Table)
	if !ok || pos < 0 || pos >= len(sub.Tuples) {
		return fmt.Errorf("engine: member position %d out of range", pos)
	}
	sub.Tuples = append(sub.Tuples[:pos], sub.Tuples[pos+1:]...)
	return nil
}
