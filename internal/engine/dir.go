package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/dberr"
	"repro/internal/page"
	"repro/internal/subtuple"
)

// The object directory is the persistent list of root MD subtuple
// TIDs of a complex table: a chain of chunk subtuples stored in the
// table's own segment, each holding up to dirChunkCap entries. For
// versioned tables the chunks are versioned like all other subtuples,
// so an ASOF scan of the table sees the membership as of that
// instant.

const dirChunkCap = 400

// chunk payload: next TID (6) | count uvarint | TID...
func encodeDirChunk(next page.TID, refs []page.TID) []byte {
	b := page.AppendTID(nil, next)
	b = binary.AppendUvarint(b, uint64(len(refs)))
	for _, r := range refs {
		b = page.AppendTID(b, r)
	}
	return b
}

func decodeDirChunk(raw []byte) (next page.TID, refs []page.TID, err error) {
	next, err = page.DecodeTID(raw)
	if err != nil {
		return
	}
	p := raw[page.EncodedTIDLen:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		err = dberr.Corruptf("engine: corrupt directory chunk")
		return
	}
	p = p[sz:]
	refs = make([]page.TID, 0, n)
	for i := uint64(0); i < n; i++ {
		var r page.TID
		r, err = page.DecodeTID(p)
		if err != nil {
			return
		}
		refs = append(refs, r)
		p = p[page.EncodedTIDLen:]
	}
	return
}

// setDirHead publishes a new directory head via copy-on-write: the
// caller's *catalog.Table may be shared with concurrent readers that
// traverse it without locks, so the Table struct is never mutated in
// place — a copy carries the new head into the catalog. Readers with
// the stale pointer see the old head, which stays a valid chain start
// (new heads link to old ones and next pointers never change).
func (db *DB) setDirHead(t *catalog.Table, head page.TID) error {
	t2 := *t
	t2.DirHead = head
	return db.cat.UpdateTable(&t2)
}

// dirAdd registers a new object root in the table's directory.
func (db *DB) dirAdd(t *catalog.Table, ref page.TID) error {
	st := db.stores[t.Seg]
	if t.DirHead.Nil() {
		head, err := st.Insert(encodeDirChunk(page.TID{}, []page.TID{ref}))
		if err != nil {
			return err
		}
		return db.setDirHead(t, head)
	}
	raw, err := st.Read(t.DirHead)
	if err != nil {
		return err
	}
	next, refs, err := decodeDirChunk(raw)
	if err != nil {
		return err
	}
	if len(refs) < dirChunkCap {
		refs = append(refs, ref)
		return st.Update(t.DirHead, encodeDirChunk(next, refs))
	}
	// Head chunk full: start a new head pointing at the old one.
	head, err := st.Insert(encodeDirChunk(t.DirHead, []page.TID{ref}))
	if err != nil {
		return err
	}
	return db.setDirHead(t, head)
}

// dirRemove withdraws an object root from the directory.
func (db *DB) dirRemove(t *catalog.Table, ref page.TID) error {
	st := db.stores[t.Seg]
	cur := t.DirHead
	for !cur.Nil() {
		raw, err := st.Read(cur)
		if err != nil {
			return err
		}
		next, refs, err := decodeDirChunk(raw)
		if err != nil {
			return err
		}
		for i, r := range refs {
			if r == ref {
				refs = append(refs[:i], refs[i+1:]...)
				return st.Update(cur, encodeDirChunk(next, refs))
			}
		}
		cur = next
	}
	return fmt.Errorf("engine: object %v not in directory of %s", ref, t.Name)
}

// dirScan streams the object roots, optionally as of an instant.
func (db *DB) dirScan(t *catalog.Table, asof int64, fn func(ref page.TID) error) error {
	st := db.stores[t.Seg]
	cur := t.DirHead
	for !cur.Nil() {
		var raw []byte
		var err error
		skip := false
		if asof != 0 {
			var ok bool
			raw, ok, err = st.ReadAsOf(cur, asof)
			if err != nil {
				return err
			}
			if !ok {
				// The chunk did not exist at asof, but older chunks
				// further down the chain may have; chunk next pointers
				// never change after creation, so read the current
				// version just to follow the chain.
				raw, err = st.Read(cur)
				if err != nil {
					return err
				}
				skip = true
			}
		} else {
			raw, err = st.Read(cur)
			if err != nil {
				return err
			}
		}
		next, refs, err := decodeDirChunk(raw)
		if err != nil {
			return err
		}
		if !skip {
			for _, r := range refs {
				if err := fn(r); err != nil {
					return err
				}
			}
		}
		cur = next
	}
	return nil
}

var _ = subtuple.ErrNotFound
