// Package txsim is a deterministic transaction-interleaving simulator
// for the engine's snapshot isolation. From a seed it generates a
// schedule of BEGIN / read / write / COMMIT / ROLLBACK steps across
// several logical transactions over the office DEPARTMENTS table and
// executes the schedule — single-threaded, so the interleaving is
// exactly reproducible — against two implementations at once:
//
//   - the real engine, through the public transaction API;
//   - a few dozen lines of oracle that model snapshot isolation
//     directly (committed map, per-transaction snapshot view,
//     first-writer-wins locks, commit timestamps).
//
// Every observable outcome — each value read, each affected-row
// count, each ErrWriteConflict, each commit — is compared between
// the two, and the final committed state is compared in full. A
// divergence fails with the seed and step number, which replay the
// schedule exactly.
package txsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// Config parameterizes one simulation run.
type Config struct {
	Seed    int64
	Steps   int // schedule length (default 50)
	MaxTxns int // max concurrently open transactions (default 4)
}

// Result counts what one run exercised. Checks is the number of
// engine-vs-oracle comparison points (the matrix currency).
type Result struct {
	Steps     int
	Reads     int
	Writes    int
	Conflicts int
	Commits   int
	Rollbacks int
	Checks    int
}

// txState is one open logical transaction: the engine handle plus the
// oracle's view of it.
type txState struct {
	tx      *engine.Txn
	snap    int64           // oracle logical snapshot time
	view    map[int64]int64 // DNO -> BUDGET as this txn sees it (snapshot + own writes)
	own     map[int64]bool  // DNOs inserted by this txn (writes to them take no lock)
	lock    map[int64]bool  // conflict units this txn holds
	touched map[int64]bool  // DNOs this txn wrote (only these publish at commit)
}

type sim struct {
	db  *engine.DB
	rng *rand.Rand
	res Result

	// Oracle state.
	committed  map[int64]int64 // DNO -> BUDGET, committed
	lastWrite  map[int64]int64 // DNO -> commit time of last committed write
	writeLocks map[int64]int   // DNO -> slot of the holder
	clock      int64
	txns       []*txState // fixed slots; nil = free
	nextDNO    int64      // fresh DNOs for inserts, never reused
}

// Run executes one seeded simulation and reports what it checked. A
// non-nil error is an engine/oracle divergence (or an unexpected
// engine failure) and carries the seed and step for replay.
func Run(cfg Config) (Result, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 50
	}
	if cfg.MaxTxns == 0 {
		cfg.MaxTxns = 4
	}
	db, err := core.Office()
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	s := &sim{
		db:         db,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		committed:  map[int64]int64{},
		lastWrite:  map[int64]int64{},
		writeLocks: map[int64]int{},
		txns:       make([]*txState, cfg.MaxTxns),
		nextDNO:    1000,
	}
	// Seed the oracle with the fixture departments.
	tbl, _, err := db.Query(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS`)
	if err != nil {
		return s.res, err
	}
	for _, tup := range tbl.Tuples {
		s.committed[int64(tup[0].(model.Int))] = int64(tup[1].(model.Int))
	}

	fail := func(step int, format string, a ...any) (Result, error) {
		return s.res, fmt.Errorf("seed %d step %d: %s", cfg.Seed, step, fmt.Sprintf(format, a...))
	}
	for step := 0; step < cfg.Steps; step++ {
		s.res.Steps++
		if err := s.step(); err != nil {
			return fail(step, "%v", err)
		}
	}
	// Drain: roll back whatever is still open, then compare the full
	// committed state.
	for i, t := range s.txns {
		if t != nil {
			t.tx.Rollback()
			s.release(i)
			s.txns[i] = nil
		}
	}
	got := map[int64]int64{}
	tbl, _, err = db.Query(`SELECT x.DNO, x.BUDGET FROM x IN DEPARTMENTS`)
	if err != nil {
		return s.res, err
	}
	for _, tup := range tbl.Tuples {
		got[int64(tup[0].(model.Int))] = int64(tup[1].(model.Int))
	}
	if len(got) != len(tbl.Tuples) {
		return fail(cfg.Steps, "engine holds duplicate DNOs: %d rows, %d distinct", len(tbl.Tuples), len(got))
	}
	s.res.Checks++
	if fmt.Sprint(sorted(got)) != fmt.Sprint(sorted(s.committed)) {
		return fail(cfg.Steps, "final state diverged:\nengine: %v\noracle: %v", sorted(got), sorted(s.committed))
	}
	return s.res, nil
}

// sorted renders a DNO->BUDGET map in DNO order for comparison.
func sorted(m map[int64]int64) []string {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%d=%d", k, m[k])
	}
	return out
}

// step executes one schedule step.
func (s *sim) step() error {
	switch n := s.rng.Intn(100); {
	case n < 15:
		return s.begin()
	case n < 40:
		return s.read()
	case n < 60:
		return s.update()
	case n < 70:
		return s.insert()
	case n < 78:
		return s.delete()
	case n < 90:
		return s.commit()
	default:
		return s.rollback()
	}
}

// pick returns a random open transaction slot, or -1.
func (s *sim) pick() int {
	var open []int
	for i, t := range s.txns {
		if t != nil {
			open = append(open, i)
		}
	}
	if len(open) == 0 {
		return -1
	}
	return open[s.rng.Intn(len(open))]
}

// candidate returns a DNO to operate on: usually one the transaction
// can see, sometimes one it cannot (deleted, uncommitted elsewhere,
// or plain absent) so misses are exercised too.
func (s *sim) candidate(t *txState) int64 {
	var pool []int64
	for dno := range t.view {
		pool = append(pool, dno)
	}
	for dno := range s.committed {
		pool = append(pool, dno) // duplicates just skew the odds
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	if len(pool) == 0 || s.rng.Intn(10) == 0 {
		return 999 // never exists
	}
	return pool[s.rng.Intn(len(pool))]
}

func (s *sim) begin() error {
	free := -1
	for i, t := range s.txns {
		if t == nil {
			free = i
			break
		}
	}
	if free < 0 {
		return s.read()
	}
	tx, err := s.db.Begin()
	if err != nil {
		return fmt.Errorf("begin: %v", err)
	}
	s.clock++
	view := make(map[int64]int64, len(s.committed))
	for k, v := range s.committed {
		view[k] = v
	}
	s.txns[free] = &txState{
		tx:      tx,
		snap:    s.clock,
		view:    view,
		own:     map[int64]bool{},
		lock:    map[int64]bool{},
		touched: map[int64]bool{},
	}
	return nil
}

// read compares one budget lookup — through a transaction when one is
// open, through the auto-commit path otherwise.
func (s *sim) read() error {
	i := s.pick()
	var got *model.Table
	var err error
	var want []int64
	var who string
	if i < 0 || s.rng.Intn(8) == 0 {
		// Auto-commit read: current committed state.
		dno := s.candidateCommitted()
		got, _, err = s.db.Query(query(dno))
		if v, ok := s.committed[dno]; ok {
			want = []int64{v}
		}
		who = fmt.Sprintf("auto-commit read DNO %d", dno)
	} else {
		t := s.txns[i]
		dno := s.candidate(t)
		got, _, err = t.tx.Query(query(dno))
		if v, ok := t.view[dno]; ok {
			want = []int64{v}
		}
		who = fmt.Sprintf("txn %d read DNO %d", i, dno)
	}
	if err != nil {
		return fmt.Errorf("%s: %v", who, err)
	}
	var have []int64
	for _, tup := range got.Tuples {
		have = append(have, int64(tup[0].(model.Int)))
	}
	s.res.Reads++
	s.res.Checks++
	if fmt.Sprint(have) != fmt.Sprint(want) {
		return fmt.Errorf("%s: engine %v, oracle %v", who, have, want)
	}
	return nil
}

func (s *sim) candidateCommitted() int64 {
	var pool []int64
	for dno := range s.committed {
		pool = append(pool, dno)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	if len(pool) == 0 || s.rng.Intn(10) == 0 {
		return 999
	}
	return pool[s.rng.Intn(len(pool))]
}

func query(dno int64) string {
	return fmt.Sprintf(`SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = %d`, dno)
}

// tryLock consults the oracle's conflict rule for a write by slot i
// to dno: nil means the write may proceed (and the lock is now held).
func (s *sim) tryLock(i int, dno int64) error {
	t := s.txns[i]
	if t.own[dno] || t.lock[dno] {
		return nil
	}
	if holder, held := s.writeLocks[dno]; held && holder != i {
		return engine.ErrWriteConflict
	}
	if ts, ok := s.lastWrite[dno]; ok && ts > t.snap {
		return engine.ErrWriteConflict
	}
	s.writeLocks[dno] = i
	t.lock[dno] = true
	return nil
}

// update writes a fresh budget to a candidate DNO and compares the
// outcome: affected count on success, ErrWriteConflict on a conflict.
func (s *sim) update() error {
	i := s.pick()
	if i < 0 {
		return s.begin()
	}
	t := s.txns[i]
	dno := s.candidate(t)
	s.clock++
	val := 1_000_000 + s.clock
	_, visible := t.view[dno]
	var wantErr error
	if visible {
		wantErr = s.tryLock(i, dno)
	}
	res, err := t.tx.Exec(fmt.Sprintf(`UPDATE x IN DEPARTMENTS SET BUDGET = %d WHERE x.DNO = %d`, val, dno))
	s.res.Writes++
	s.res.Checks++
	if wantErr != nil {
		s.res.Conflicts++
		if !errors.Is(err, engine.ErrWriteConflict) {
			return fmt.Errorf("txn %d update DNO %d: engine err %v, oracle wants ErrWriteConflict", i, dno, err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("txn %d update DNO %d: %v", i, dno, err)
	}
	wantCount := 0
	if visible {
		wantCount = 1
		t.view[dno] = val
		t.touched[dno] = true
	}
	if len(res) != 1 || res[0].Count != wantCount {
		return fmt.Errorf("txn %d update DNO %d: engine affected %v, oracle wants %d", i, dno, res, wantCount)
	}
	return nil
}

// insert adds a fresh department (never-reused DNO, empty subtables).
func (s *sim) insert() error {
	i := s.pick()
	if i < 0 {
		return s.begin()
	}
	t := s.txns[i]
	s.nextDNO++
	s.clock++
	dno, val := s.nextDNO, 500_000+s.clock
	_, err := t.tx.Exec(fmt.Sprintf(`INSERT INTO DEPARTMENTS VALUES (%d, 0, {}, %d, {})`, dno, val))
	s.res.Writes++
	s.res.Checks++
	if err != nil {
		return fmt.Errorf("txn %d insert DNO %d: %v", i, dno, err)
	}
	t.view[dno] = val
	t.own[dno] = true
	t.touched[dno] = true
	return nil
}

// delete removes a candidate DNO, with the same conflict rule as
// update.
func (s *sim) delete() error {
	i := s.pick()
	if i < 0 {
		return s.begin()
	}
	t := s.txns[i]
	dno := s.candidate(t)
	_, visible := t.view[dno]
	var wantErr error
	if visible {
		wantErr = s.tryLock(i, dno)
	}
	res, err := t.tx.Exec(fmt.Sprintf(`DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = %d`, dno))
	s.res.Writes++
	s.res.Checks++
	if wantErr != nil {
		s.res.Conflicts++
		if !errors.Is(err, engine.ErrWriteConflict) {
			return fmt.Errorf("txn %d delete DNO %d: engine err %v, oracle wants ErrWriteConflict", i, dno, err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("txn %d delete DNO %d: %v", i, dno, err)
	}
	wantCount := 0
	if visible {
		wantCount = 1
		delete(t.view, dno)
		t.touched[dno] = true
		// An own-insert deleted again before commit is elided: it
		// must not resurface at commit.
		delete(t.own, dno)
	}
	if len(res) != 1 || res[0].Count != wantCount {
		return fmt.Errorf("txn %d delete DNO %d: engine affected %v, oracle wants %d", i, dno, res, wantCount)
	}
	return nil
}

// commit publishes slot i's view (when one is open; otherwise begins).
func (s *sim) commit() error {
	i := s.pick()
	if i < 0 {
		return s.begin()
	}
	t := s.txns[i]
	err := t.tx.Commit()
	s.res.Commits++
	s.res.Checks++
	if err != nil {
		return fmt.Errorf("txn %d commit: %v", i, err)
	}
	s.clock++
	// The oracle publishes only the DNOs the transaction wrote: the
	// rest of its view is a stale snapshot and must not clobber what
	// other transactions committed meanwhile (first-writer-wins
	// guarantees the touched set is disjoint from theirs).
	for dno := range t.touched {
		if v, ok := t.view[dno]; ok {
			s.committed[dno] = v
		} else {
			delete(s.committed, dno)
		}
	}
	for dno := range t.lock {
		s.lastWrite[dno] = s.clock
	}
	s.release(i)
	s.txns[i] = nil
	return nil
}

func (s *sim) rollback() error {
	i := s.pick()
	if i < 0 {
		return s.begin()
	}
	if err := s.txns[i].tx.Rollback(); err != nil {
		return fmt.Errorf("txn %d rollback: %v", i, err)
	}
	s.res.Rollbacks++
	s.release(i)
	s.txns[i] = nil
	return nil
}

// release frees slot i's oracle write locks.
func (s *sim) release(i int) {
	for dno := range s.txns[i].lock {
		if s.writeLocks[dno] == i {
			delete(s.writeLocks, dno)
		}
	}
}
