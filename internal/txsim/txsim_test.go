package txsim

import (
	"flag"
	"testing"
)

// -txsim.seed reruns one schedule for debugging a reported
// divergence; 0 (the default) runs the whole matrix.
var seedFlag = flag.Int64("txsim.seed", 0, "replay a single txsim seed")

// TestMatrix is the isolation-anomaly matrix: a battery of seeded
// deterministic schedules, each interleaving up to 4 transactions
// over the office DEPARTMENTS table and comparing every observable
// outcome (reads, affected counts, write conflicts, commits, final
// state) against the snapshot-isolation oracle. The matrix must
// produce at least 200 comparison points, and among them committed
// writes and detected conflicts — a schedule mix that never
// conflicts or never commits would prove nothing.
func TestMatrix(t *testing.T) {
	if *seedFlag != 0 {
		res, err := Run(Config{Seed: *seedFlag})
		t.Logf("seed %d: %+v", *seedFlag, res)
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	var total Result
	const seeds = 12
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("replay with: go test ./internal/txsim -run TestMatrix -txsim.seed=%d\n%v", seed, err)
		}
		total.Steps += res.Steps
		total.Reads += res.Reads
		total.Writes += res.Writes
		total.Conflicts += res.Conflicts
		total.Commits += res.Commits
		total.Rollbacks += res.Rollbacks
		total.Checks += res.Checks
	}
	t.Logf("matrix over seeds 1..%d: %+v", seeds, total)
	if total.Checks < 200 {
		t.Errorf("matrix produced %d comparison points, want >= 200", total.Checks)
	}
	if total.Conflicts == 0 {
		t.Error("matrix detected no write conflicts; the schedules are too tame")
	}
	if total.Commits == 0 || total.Rollbacks == 0 {
		t.Errorf("matrix needs both commits (%d) and rollbacks (%d)", total.Commits, total.Rollbacks)
	}
}
