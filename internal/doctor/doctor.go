// Package doctor implements the repair engine behind the aimdoctor
// tool: scan (quick structural audit), verify (full audit including
// index cross-checks), and repair.
//
// Repair strategy, in order of preference:
//
//  1. WAL redo. Opening the database replays the full page history,
//     which rebuilds every page holding committed data — the only
//     repair that recovers data exactly. Databases with a WAL
//     normally come back bit-perfect from this step alone.
//  2. Salvage. Objects that are still broken after redo are read
//     tolerantly (object.Manager.Salvage): the readable parts are
//     re-inserted as a replacement object, the lost parts reported.
//  3. Amputate. Objects with nothing salvageable are dropped; durable
//     pages that remain corrupt after the objects on them were
//     dropped or replaced are reformatted empty so scans stop
//     tripping over them. Both are reported data loss — visible,
//     never silent.
//
// Afterwards every index is rebuilt from the (now consistent) base
// data and the database is re-scrubbed to prove the repair took.
package doctor

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/page"
	"repro/internal/scrub"
	"repro/internal/segment"
)

// Action is one repair step the doctor performed (or failed to).
type Action struct {
	// Op is the action kind: "replace" (salvaged object re-inserted),
	// "drop" (object removed), "amputate-page" (corrupt page
	// reformatted empty), "adopt-page" (intact page resealed with an
	// LSN inside the current log after the original WAL was lost),
	// "rebuild-index", or "failed".
	Op     string `json:"op"`
	Table  string `json:"table,omitempty"`
	Ref    string `json:"ref,omitempty"`
	NewRef string `json:"new_ref,omitempty"`
	Index  string `json:"index,omitempty"`
	Seg    uint16 `json:"seg,omitempty"`
	Page   uint32 `json:"page,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Report is the machine-readable result of a doctor run.
type Report struct {
	Mode string `json:"mode"`
	// Scrub is the audit that drove the run (for repair: the state
	// found before repairing).
	Scrub *scrub.Report `json:"scrub"`
	// Actions lists what repair did; empty for scan/verify.
	Actions []Action `json:"actions,omitempty"`
	// PostScrub proves the repair took (repair mode only).
	PostScrub *scrub.Report `json:"post_scrub,omitempty"`
	// Healthy is the verdict: no findings in the (final) scrub.
	Healthy bool `json:"healthy"`
}

// Scan opens the database and runs the quick audit (no index
// cross-check), closing it again.
func Scan(opts engine.Options) (*Report, error) {
	return run(opts, "scan", func(db *engine.DB) (*Report, error) {
		r, err := scrub.Run(db, scrub.Options{SkipIndexes: true})
		if err != nil {
			return nil, err
		}
		return &Report{Mode: "scan", Scrub: r, Healthy: r.Clean}, nil
	})
}

// Verify opens the database and runs the full audit, including the
// index-vs-base-data cross-check.
func Verify(opts engine.Options) (*Report, error) {
	return run(opts, "verify", func(db *engine.DB) (*Report, error) {
		r, err := scrub.Run(db, scrub.Options{})
		if err != nil {
			return nil, err
		}
		return &Report{Mode: "verify", Scrub: r, Healthy: r.Clean}, nil
	})
}

// Repair opens the database (which replays the WAL — repair step 1),
// repairs what remains broken, and closes it.
func Repair(opts engine.Options) (*Report, error) {
	return run(opts, "repair", RepairDB)
}

func run(opts engine.Options, mode string, fn func(*engine.DB) (*Report, error)) (*Report, error) {
	db, err := engine.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("doctor: open: %w", err)
	}
	rep, ferr := fn(db)
	if cerr := db.Close(); ferr == nil && cerr != nil {
		ferr = fmt.Errorf("doctor: close after %s: %w", mode, cerr)
	}
	return rep, ferr
}

// RepairDB repairs an already-open database in place (the WAL redo of
// step 1 must have happened at its Open). Exposed for harnesses that
// inject faulty stores.
func RepairDB(db *engine.DB) (*Report, error) {
	rep := &Report{Mode: "repair"}
	pre, err := scrub.Run(db, scrub.Options{Quarantine: true})
	if err != nil {
		return nil, err
	}
	rep.Scrub = pre

	// Step 2: salvage or drop every quarantined object. The scrub just
	// quarantined everything that fails to materialize; guards may have
	// added more before the doctor ran.
	for _, q := range db.Quarantined() {
		if q.Ref.Nil() {
			// The table's directory chain itself is broken and the WAL
			// could not rebuild it; its objects are unreachable.
			rep.Actions = append(rep.Actions, Action{Op: "failed", Table: q.Table,
				Detail: fmt.Sprintf("object directory unrecoverable: %v", q.Reason)})
			continue
		}
		res, err := db.SalvageObject(q.Table, q.Ref)
		if err != nil {
			rep.Actions = append(rep.Actions, Action{Op: "failed", Table: q.Table, Ref: q.Ref.String(),
				Detail: fmt.Sprintf("salvage: %v", err)})
			continue
		}
		if res.Tuple == nil {
			if err := db.DropCorruptObject(q.Table, q.Ref); err != nil {
				rep.Actions = append(rep.Actions, Action{Op: "failed", Table: q.Table, Ref: q.Ref.String(),
					Detail: fmt.Sprintf("drop: %v", err)})
				continue
			}
			rep.Actions = append(rep.Actions, Action{Op: "drop", Table: q.Table, Ref: q.Ref.String(),
				Detail: "nothing salvageable: " + strings.Join(res.Lost, "; ")})
			continue
		}
		newRef, err := db.ReplaceObject(q.Table, q.Ref, res.Tuple)
		if err != nil {
			rep.Actions = append(rep.Actions, Action{Op: "failed", Table: q.Table, Ref: q.Ref.String(),
				Detail: fmt.Sprintf("replace: %v", err)})
			continue
		}
		detail := "fully salvaged"
		if !res.Complete {
			detail = "partially salvaged, lost: " + strings.Join(res.Lost, "; ")
		}
		rep.Actions = append(rep.Actions, Action{Op: "replace", Table: q.Table,
			Ref: q.Ref.String(), NewRef: newRef.String(), Detail: detail})
	}

	// Make the logical repairs durable BEFORE raw page surgery: the
	// drops/replacements live in dirty buffer frames, and the cache
	// invalidation below would discard them.
	if err := db.Commit(); err != nil {
		return rep, fmt.Errorf("doctor: commit salvage: %w", err)
	}
	if err := db.Checkpoint(); err != nil {
		return rep, fmt.Errorf("doctor: checkpoint salvage: %w", err)
	}

	// Step 3: amputate pages that are still corrupt now that the
	// objects living on them are dropped or replaced. Reformatting
	// loses whatever the page held (reported); with a WAL this step is
	// normally idle because redo healed every page at open.
	seen := make(map[[2]uint32]bool)
	for _, f := range pre.Findings {
		if f.Kind != scrub.PageChecksum && f.Kind != scrub.PageStructure && f.Kind != scrub.PageLSN {
			continue
		}
		if seen[[2]uint32{uint32(f.Seg), f.Page}] {
			continue
		}
		seen[[2]uint32{uint32(f.Seg), f.Page}] = true
		if stillCorrupt(db, f.Seg, f.Page) {
			if err := amputatePage(db, f.Seg, f.Page); err != nil {
				rep.Actions = append(rep.Actions, Action{Op: "failed", Seg: f.Seg, Page: f.Page,
					Detail: fmt.Sprintf("amputate: %v", err)})
				continue
			}
			rep.Actions = append(rep.Actions, Action{Op: "amputate-page", Seg: f.Seg, Page: f.Page,
				Detail: "reformatted empty; prior content (and any version history on it) lost"})
			continue
		}
		// The page itself is intact; if its LSN points beyond the log's
		// end the original WAL was lost or replaced. Adopt the page into
		// the current log: keep its content, clamp its LSN.
		adopted, err := adoptPage(db, f.Seg, f.Page)
		if err != nil {
			rep.Actions = append(rep.Actions, Action{Op: "failed", Seg: f.Seg, Page: f.Page,
				Detail: fmt.Sprintf("adopt: %v", err)})
			continue
		}
		if adopted {
			rep.Actions = append(rep.Actions, Action{Op: "adopt-page", Seg: f.Seg, Page: f.Page,
				Detail: "content kept; LSN from a lost log reset into the current log"})
		}
	}
	if len(rep.Actions) > 0 {
		// Amputation and raw drops invalidate cached frames and leave
		// stale index entries; drop the cache and rebuild every index
		// from the repaired base data.
		db.Pool().InvalidateAll()
		for _, t := range db.Tables() {
			for _, def := range db.Catalog().Indexes(t.Name) {
				if err := db.RebuildIndex(def.Name); err != nil {
					rep.Actions = append(rep.Actions, Action{Op: "failed", Table: t.Name, Index: def.Name,
						Detail: fmt.Sprintf("rebuild: %v", err)})
					continue
				}
				rep.Actions = append(rep.Actions, Action{Op: "rebuild-index", Table: t.Name, Index: def.Name})
			}
		}
	}
	if err := db.Commit(); err != nil {
		return rep, fmt.Errorf("doctor: commit repairs: %w", err)
	}
	if err := db.Checkpoint(); err != nil {
		return rep, fmt.Errorf("doctor: checkpoint repairs: %w", err)
	}

	// Lift quarantine entries the repair resolved, then prove the
	// repair took with a full re-audit.
	db.ClearQuarantine()
	post, err := scrub.Run(db, scrub.Options{Quarantine: true})
	if err != nil {
		return rep, err
	}
	rep.PostScrub = post
	rep.Healthy = post.Clean
	return rep, nil
}

// stillCorrupt re-reads the durable page image and reports whether it
// still fails verification (the logical repair may have rewritten it).
func stillCorrupt(db *engine.DB, seg uint16, no uint32) bool {
	st := db.Pool().Store(segment.ID(seg))
	if st == nil {
		return false
	}
	buf := make([]byte, page.Size)
	if err := st.ReadPage(no, buf); err != nil {
		return true
	}
	p := page.View(buf)
	return !p.ChecksumOK(seg, no) || p.Validate() != nil
}

// amputatePage reformats a durable page as empty and seals it under
// its own identity, so scans and recovery treat it as an initialized
// page with no records.
func amputatePage(db *engine.DB, seg uint16, no uint32) error {
	st := db.Pool().Store(segment.ID(seg))
	if st == nil {
		return fmt.Errorf("segment %d has no store", seg)
	}
	buf := make([]byte, page.Size)
	p := page.View(buf)
	p.Init()
	p.Seal(seg, no)
	if err := st.WritePage(no, buf); err != nil {
		return err
	}
	return st.Sync()
}

// adoptPage reseals an intact durable page whose LSN lies beyond the
// current log's end (its original WAL is gone) with the log-end LSN,
// so recovery and the scrubber accept it as applied history. Returns
// false when the page needs no adoption.
func adoptPage(db *engine.DB, seg uint16, no uint32) (bool, error) {
	if db.Log() == nil {
		return false, nil
	}
	st := db.Pool().Store(segment.ID(seg))
	if st == nil {
		return false, fmt.Errorf("segment %d has no store", seg)
	}
	buf := make([]byte, page.Size)
	if err := st.ReadPage(no, buf); err != nil {
		return false, err
	}
	p := page.View(buf)
	end := db.Log().End()
	if p.LSN() <= end {
		return false, nil
	}
	p.SetLSN(end)
	p.Seal(seg, no)
	if err := st.WritePage(no, buf); err != nil {
		return false, err
	}
	return true, st.Sync()
}

// FormatText renders a report for terminal consumption (the JSON form
// is just the Report struct marshalled).
func FormatText(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "aimdoctor %s: ", r.Mode)
	if r.Healthy {
		b.WriteString("database is healthy\n")
	} else {
		b.WriteString("problems found\n")
	}
	sc := r.Scrub
	fmt.Fprintf(&b, "  scanned: %d pages, %d tables, %d objects, %d flat tuples, %d indexes\n",
		sc.PagesScanned, sc.TablesChecked, sc.ObjectsChecked, sc.TuplesChecked, sc.IndexesChecked)
	for _, f := range sc.Findings {
		b.WriteString("  finding: " + formatFinding(f) + "\n")
	}
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  action: %s", a.Op)
		if a.Table != "" {
			b.WriteString(" " + a.Table)
		}
		if a.Ref != "" {
			b.WriteString(" " + a.Ref)
		}
		if a.Index != "" {
			b.WriteString(" index " + a.Index)
		}
		if a.Page != 0 {
			fmt.Fprintf(&b, " page %d.%d", a.Seg, a.Page)
		}
		if a.Detail != "" {
			b.WriteString(": " + a.Detail)
		}
		b.WriteString("\n")
	}
	if r.PostScrub != nil {
		if r.PostScrub.Clean {
			b.WriteString("  post-repair audit: clean\n")
		} else {
			fmt.Fprintf(&b, "  post-repair audit: %d findings remain\n", len(r.PostScrub.Findings))
			for _, f := range r.PostScrub.Findings {
				b.WriteString("    " + formatFinding(f) + "\n")
			}
		}
	}
	return b.String()
}

func formatFinding(f scrub.Finding) string {
	var parts []string
	parts = append(parts, string(f.Kind))
	if f.Table != "" {
		parts = append(parts, f.Table)
	}
	if f.Ref != "" {
		parts = append(parts, f.Ref)
	}
	if f.Index != "" {
		parts = append(parts, "index "+f.Index)
	}
	if f.Page != 0 {
		parts = append(parts, "page "+strconv.Itoa(int(f.Seg))+"."+strconv.Itoa(int(f.Page)))
	}
	return strings.Join(parts, " ") + ": " + f.Detail
}
