package doctor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/page"
	"repro/internal/testdata"
)

// buildDisk creates an on-disk database with one complex and one flat
// table plus an index, closes it, and returns the DEPARTMENTS segment
// id for targeted corruption.
func buildDisk(t *testing.T, dir string, disableWAL bool) int {
	t.Helper()
	ts := int64(0)
	db, err := engine.Open(engine.Options{Dir: dir, DisableWAL: disableWAL,
		Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		if err := db.Insert("DEPARTMENTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateTable("EMPLOYEES_1NF", testdata.EmployeesType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Employees().Tuples {
		if err := db.Insert("EMPLOYEES_1NF", tup); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX ENO_IX ON EMPLOYEES_1NF (EMPNO)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Table("DEPARTMENTS")
	seg := int(tbl.Seg)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return seg
}

// rot flips a byte in the middle of a durable page image on disk.
func rot(t *testing.T, dir string, seg, pageNo int) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("seg_%d.dat", seg))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pageNo-1)*page.Size + 100
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// deptNames scans DEPARTMENTS and returns the sorted DNO column.
func deptNames(t *testing.T, dir string, disableWAL bool) []string {
	t.Helper()
	db, err := engine.Open(engine.Options{Dir: dir, DisableWAL: disableWAL})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, _, err := db.Query(`SELECT d.DNO FROM d IN DEPARTMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tup := range res.Tuples {
		names = append(names, fmt.Sprint(tup[0]))
	}
	sort.Strings(names)
	return names
}

func oracleDeptNames(tt *testing.T) []string {
	dt := testdata.DepartmentsType()
	di := dt.AttrIndex("DNO")
	var names []string
	for _, tup := range testdata.Departments().Tuples {
		names = append(names, fmt.Sprint(tup[di]))
	}
	sort.Strings(names)
	return names
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A freshly built database verifies healthy.
func TestDoctorVerifyClean(t *testing.T) {
	dir := t.TempDir()
	buildDisk(t, dir, false)
	rep, err := Verify(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("clean database reported unhealthy: %s", FormatText(rep))
	}
	if rep.Scrub.PagesScanned == 0 || rep.Scrub.IndexesChecked == 0 {
		t.Fatalf("coverage counters: %+v", rep.Scrub)
	}
}

// With a WAL, repair step 1 (redo at open) rebuilds the rotten page
// exactly: repair reports healthy and the data equals the oracle.
func TestDoctorRepairHealsFromWAL(t *testing.T) {
	dir := t.TempDir()
	seg := buildDisk(t, dir, false)
	rot(t, dir, seg, 1)

	rep, err := Repair(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("repair did not heal: %s", FormatText(rep))
	}
	// Redo healed the page before the scrub ran, so no destructive
	// action may have been taken.
	for _, a := range rep.Actions {
		if a.Op == "drop" || a.Op == "amputate-page" {
			t.Fatalf("destructive action despite WAL: %+v", a)
		}
	}
	if got, want := deptNames(t, dir, false), oracleDeptNames(t); !eq(got, want) {
		t.Fatalf("post-repair data diverges from oracle: %v != %v", got, want)
	}
}

// A database whose WAL file vanished (lost volume, overzealous
// cleanup) has intact pages stamped with LSNs from the lost log.
// Repair must adopt those pages into the fresh log — content kept,
// nothing dropped — and converge to healthy.
func TestDoctorRepairAfterWALLoss(t *testing.T) {
	dir := t.TempDir()
	buildDisk(t, dir, false)
	if err := os.Remove(filepath.Join(dir, "wal.log")); err != nil {
		t.Fatal(err)
	}

	pre, err := Verify(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Healthy {
		t.Fatal("verify missed the future LSNs after WAL loss")
	}

	rep, err := Repair(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("repair did not converge after WAL loss: %s", FormatText(rep))
	}
	adopted := false
	for _, a := range rep.Actions {
		switch a.Op {
		case "adopt-page":
			adopted = true
		case "drop", "amputate-page", "replace", "failed":
			t.Fatalf("destructive action on intact pages: %+v", a)
		}
	}
	if !adopted {
		t.Fatalf("no page adopted: %s", FormatText(rep))
	}
	if got, want := deptNames(t, dir, false), oracleDeptNames(t); !eq(got, want) {
		t.Fatalf("post-repair data diverges from oracle: %v != %v", got, want)
	}
}

// Without a WAL the rot is permanent: repair must fall back to
// salvage/drop/amputate, report the loss, and still end healthy.
func TestDoctorRepairWithoutWAL(t *testing.T) {
	dir := t.TempDir()
	seg := buildDisk(t, dir, true)
	rot(t, dir, seg, 1)

	rep, err := Repair(engine.Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("repair did not converge: %s", FormatText(rep))
	}
	if rep.Scrub.Clean {
		t.Fatal("pre-repair scrub missed the rot")
	}
	if len(rep.Actions) == 0 {
		t.Fatal("no-WAL repair took no actions")
	}
	// Whatever survived must be scannable without errors, and the
	// report must have declared any loss.
	got := deptNames(t, dir, true)
	want := oracleDeptNames(t)
	if len(got) > len(want) {
		t.Fatalf("repair invented rows: %v", got)
	}
	if eq(got, want) {
		return // everything salvaged — fine too
	}
	loss := false
	for _, a := range rep.Actions {
		if a.Op == "drop" || a.Op == "amputate-page" || a.Op == "replace" || a.Op == "failed" {
			loss = true
		}
	}
	if !loss {
		t.Fatalf("rows missing (%v vs %v) but no loss reported: %s", got, want, FormatText(rep))
	}
}
