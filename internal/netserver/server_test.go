package netserver

import (
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/aimnet"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/netproto"
)

// startServer boots an in-memory engine with a seeded table and a
// server over it.
func startServer(t *testing.T, rows int, opts Options) (*Server, *engine.DB) {
	t.Helper()
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE KV (K INT, V INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO KV VALUES (` + strconv.Itoa(i) + `, ` + strconv.Itoa(i*10) + `)`); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, db
}

func dial(t *testing.T, srv *Server) *aimnet.Conn {
	t.Helper()
	c, err := aimnet.Dial(srv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestExecAndStreamRoundTrip(t *testing.T) {
	srv, db := startServer(t, 50, Options{})
	c := dial(t, srv)
	ctx := context.Background()

	res, err := c.Exec(ctx, `INSERT INTO KV VALUES (1000, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Count != 1 {
		t.Fatalf("unexpected exec result: %+v", res)
	}

	// Stream and compare against the in-process oracle.
	rows, err := c.Query(ctx, `SELECT x.K, x.V FROM x IN KV ORDER BY x.K`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		got = append(got, rows.Tuple().String())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()

	oracle, _, err := db.Query(`SELECT x.K, x.V FROM x IN KV ORDER BY x.K`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != oracle.Len() {
		t.Fatalf("streamed %d rows, oracle has %d", len(got), oracle.Len())
	}
	for i, tup := range oracle.Tuples {
		if got[i] != tup.String() {
			t.Fatalf("row %d: got %s, oracle %s", i, got[i], tup)
		}
	}
	if n := db.Pool().PinnedCount(); n != 0 {
		t.Fatalf("%d pages pinned after stream", n)
	}
}

func TestSmallWindowFlowControl(t *testing.T) {
	srv, _ := startServer(t, 300, Options{})
	c, err := aimnet.Dial(srv.Addr(), aimnet.Options{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), `SELECT x.K FROM x IN KV`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n != 300 {
		t.Fatalf("got %d rows, want 300", n)
	}
}

func TestPreparedStatementsOverWire(t *testing.T) {
	srv, _ := startServer(t, 10, Options{})
	c := dial(t, srv)
	ctx := context.Background()

	ins, err := c.Prepare(ctx, `INSERT INTO KV VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 || ins.IsSelect() {
		t.Fatalf("bad prepared meta: %d params, select=%v", ins.NumParams(), ins.IsSelect())
	}
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(ctx, model.Int(int64(2000+i)), model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := c.Prepare(ctx, `SELECT x.K FROM x IN KV WHERE x.K >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query(ctx, model.Int(2000))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 5 {
		t.Fatalf("got %d rows, want 5", n)
	}
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(ctx, model.Int(1), model.Int(1)); err == nil {
		t.Fatal("exec on closed statement succeeded")
	}
}

func TestWriteConflictRoundTrips(t *testing.T) {
	srv, _ := startServer(t, 5, Options{})
	c1, c2 := dial(t, srv), dial(t, srv)
	ctx := context.Background()

	mustExec(t, c1, `BEGIN; UPDATE x IN KV SET V = 111 WHERE x.K = 1`)
	mustExec(t, c2, `BEGIN`)
	_, err := c2.Exec(ctx, `UPDATE x IN KV SET V = 222 WHERE x.K = 1`)
	if err == nil {
		// Conflict may surface at commit instead, depending on lock style.
		_, err = c2.Exec(ctx, `COMMIT`)
	}
	if !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict across the wire, got %v", err)
	}
	if _, err := c1.Exec(ctx, `COMMIT`); err != nil {
		t.Fatal(err)
	}
}

func mustExec(t *testing.T, c *aimnet.Conn, script string) {
	t.Helper()
	if _, err := c.Exec(context.Background(), script); err != nil {
		t.Fatalf("%s: %v", script, err)
	}
}

func TestCancelMidStream(t *testing.T) {
	srv, db := startServer(t, 500, Options{})
	c := dial(t, srv)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.Query(ctx, `SELECT x.K FROM x IN KV`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
		if n == 3 {
			cancel()
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled across the wire, got %v", err)
	}
	rows.Close()
	waitFor(t, "pins released", func() bool { return db.Pool().PinnedCount() == 0 })
	// The session survives a canceled statement.
	if _, err := c.Exec(context.Background(), `INSERT INTO KV VALUES (9000, 1)`); err != nil {
		t.Fatal(err)
	}
}

func TestSessionOverloadShedsTyped(t *testing.T) {
	srv, _ := startServer(t, 1, Options{MaxSessions: 2, RetryAfter: 5 * time.Millisecond})
	c1, err := aimnet.Dial(srv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := aimnet.Dial(srv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	_, err = aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: -1})
	if !errors.Is(err, netproto.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var se *netproto.ServerError
	if !errors.As(err, &se) || se.RetryAfter != 5*time.Millisecond {
		t.Fatalf("retry-after hint not carried: %v", err)
	}
	if srv.Stats().ShedSessions == 0 {
		t.Fatal("shed not counted")
	}

	// With a slot free again, the retrying client gets in.
	c1.Close()
	waitFor(t, "slot free", func() bool { return srv.Stats().SessionsOpen < 2 })
	c4, err := aimnet.Dial(srv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c4.Close()
}

func TestStatementOverloadShedsTyped(t *testing.T) {
	srv, _ := startServer(t, 2000, Options{
		MaxStatements:  1,
		StmtQueueDepth: 1,
		StmtQueueWait:  10 * time.Millisecond,
		RetryAfter:     5 * time.Millisecond,
	})
	// Hold the only slot with a slow stream (window exhausted, server
	// waits for credit).
	cHold, err := aimnet.Dial(srv.Addr(), aimnet.Options{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cHold.Close()
	rows, err := cHold.Query(context.Background(), `SELECT x.K FROM x IN KV`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	waitFor(t, "stream holding slot", func() bool { return srv.Stats().StmtsInFlight == 1 })

	// Two more statements: one queues (and times out), one is shed
	// immediately once the queue is full. Both must come back typed.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: -1})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			_, errs[i] = c.Exec(context.Background(), `INSERT INTO KV VALUES (1, 1)`)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, netproto.ErrOverloaded) {
			t.Fatalf("statement %d: want ErrOverloaded, got %v", i, err)
		}
	}
	st := srv.Stats()
	if st.ShedStmts < 2 {
		t.Fatalf("want ≥2 shed statements, got %d", st.ShedStmts)
	}
	if st.QueueWaits == 0 {
		t.Fatal("queue wait not counted")
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, db := startServer(t, 100, Options{})
	c := dial(t, srv)
	mustExec(t, c, `BEGIN; UPDATE x IN KV SET V = 1 WHERE x.K = 1`)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.SessionsOpen != 0 {
		t.Fatalf("%d sessions still open after drain", st.SessionsOpen)
	}
	if st.Drained == 0 {
		t.Fatal("drain not counted")
	}
	if n := db.Pool().PinnedCount(); n != 0 {
		t.Fatalf("%d pages pinned after drain", n)
	}
	// The drained session's transaction must have rolled back: its
	// write lock is gone.
	if _, err := db.Exec(`UPDATE x IN KV SET V = 2 WHERE x.K = 1`); err != nil {
		t.Fatalf("write lock leaked past drain: %v", err)
	}
	// New connections are refused while drained, with a typed error.
	_, err := aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: -1})
	if err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestMidNextKillRollsBack is the satellite regression: a client dies
// mid-Next with an open transaction holding write locks. The server
// must notice, abort the statement, roll the transaction back and
// release its locks — a later session updating the same object must
// NOT see a write conflict, and no page stays pinned.
func TestMidNextKillRollsBack(t *testing.T) {
	srv, db := startServer(t, 2000, Options{})

	// Raw protocol client so we can kill the socket abruptly.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello := &netproto.Hello{Version: netproto.Version, Client: "killer"}
	if err := netproto.WriteFrame(nc, netproto.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := netproto.ReadFrame(nc); err != nil || typ != netproto.TypeHelloOK {
		t.Fatalf("handshake failed: typ=0x%02x err=%v", typ, err)
	}
	exec := &netproto.Exec{Script: `BEGIN; UPDATE x IN KV SET V = 999 WHERE x.K = 7`}
	if err := netproto.WriteFrame(nc, netproto.TypeExec, exec.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := netproto.ReadFrame(nc); err != nil || typ != netproto.TypeResults {
		t.Fatalf("exec failed: typ=0x%02x err=%v", typ, err)
	}
	// Open a stream with a tiny window so the server parks mid-Next
	// waiting for credit, then kill the connection without ceremony.
	q := &netproto.Query{SQL: `SELECT x.K FROM x IN KV`, Window: 2}
	if err := netproto.WriteFrame(nc, netproto.TypeQuery, q.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := netproto.ReadFrame(nc); err != nil || typ != netproto.TypeRowHeader {
		t.Fatalf("no row header: typ=0x%02x err=%v", typ, err)
	}
	if typ, _, err := netproto.ReadFrame(nc); err != nil || typ != netproto.TypeRow {
		t.Fatalf("no first row: typ=0x%02x err=%v", typ, err)
	}
	nc.Close()

	// The server notices the dead peer, tears the session down, rolls
	// back, and releases everything.
	waitFor(t, "session teardown", func() bool { return srv.Stats().SessionsOpen == 0 })
	waitFor(t, "pins released", func() bool { return db.Pool().PinnedCount() == 0 })
	if srv.Stats().Killed == 0 {
		t.Fatal("kill not counted")
	}

	// A fresh session updates the same object without a conflict.
	c := dial(t, srv)
	res, err := c.Exec(context.Background(), `UPDATE x IN KV SET V = 1000 WHERE x.K = 7`)
	if errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("write lock leaked from killed session: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Count != 1 {
		t.Fatalf("update hit %d rows, want 1", res[0].Count)
	}
}

func TestIdleTimeoutReapsSession(t *testing.T) {
	srv, _ := startServer(t, 1, Options{IdleTimeout: 30 * time.Millisecond})
	c := dial(t, srv)
	mustExec(t, c, `INSERT INTO KV VALUES (5, 5)`)
	waitFor(t, "idle reap", func() bool { return srv.Stats().SessionsOpen == 0 })
	if srv.Stats().Killed == 0 {
		t.Fatal("idle reap not counted")
	}
	if _, err := c.Exec(context.Background(), `INSERT INTO KV VALUES (6, 6)`); err == nil {
		t.Fatal("exec on reaped session succeeded")
	}
}

func TestInfoOverWire(t *testing.T) {
	srv, _ := startServer(t, 1, Options{})
	c := dial(t, srv)
	mustExec(t, c, `INSERT INTO KV VALUES (2, 2)`)
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info["sessions_open"] < 1 || info["stmts_total"] < 1 || info["bytes_out"] == 0 {
		t.Fatalf("implausible info: %v", info)
	}
	// The wire snapshot is the same counter block aim.Stats surfaces.
	if got := srv.Stats().SessionsTotal; int64(got) != info["sessions_total"] {
		t.Fatalf("info sessions_total %d != server stats %d", info["sessions_total"], got)
	}
}

func TestTornFrameKillsSessionOnly(t *testing.T) {
	srv, db := startServer(t, 10, Options{})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello := &netproto.Hello{Version: netproto.Version, Client: "torn"}
	if err := netproto.WriteFrame(nc, netproto.TypeHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := netproto.ReadFrame(nc); err != nil || typ != netproto.TypeHelloOK {
		t.Fatalf("handshake failed: typ=0x%02x err=%v", typ, err)
	}
	// A frame header promising more bytes than we send, then death.
	nc.Write([]byte{0x00, 0x00, 0x40, 0x00, netproto.TypeExec, 'S', 'E', 'L'})
	nc.Close()
	waitFor(t, "teardown", func() bool { return srv.Stats().SessionsOpen == 0 })

	// Other sessions are unaffected.
	c := dial(t, srv)
	mustExec(t, c, `INSERT INTO KV VALUES (77, 7)`)
	if n := db.Pool().PinnedCount(); n != 0 {
		t.Fatalf("%d pages pinned", n)
	}
}
