package netserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/netproto"
	"repro/internal/sql"
)

// frame is one request handed from the reader to the worker.
type frame struct {
	typ     byte
	payload []byte
}

// session is one client connection. Two goroutines cooperate:
//
//   - the reader owns the socket's read side. It decodes frames and
//     hands requests to the worker over reqs; the out-of-band frames
//     (Cancel, Fetch, StreamClose) are applied immediately so they work
//     while a statement is executing or a stream is mid-flight.
//   - the worker (run) owns the write side and all session state: the
//     open transaction, the prepared-statement registry, the one open
//     row stream. It executes one request at a time, so session state
//     never needs a lock.
//
// Teardown runs exactly once, in the worker, on every exit path —
// clean Goodbye, dead peer, torn frame, protocol error, idle timeout,
// drain, hard kill — and always rolls back the open transaction
// (releasing its write locks) and closes the connection. Row streams
// close inside the worker before teardown, so no cursor survives it
// and no buffer page stays pinned.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	br   *bufio.Reader

	// ctx is the session's base context; kill() cancels it.
	ctx    context.Context
	cancel context.CancelFunc

	reqs     chan frame    // reader → worker requests
	dying    chan struct{} // closed when the worker exits; unblocks the reader's handoff
	peerGone chan struct{} // closed when the reader exits; unblocks credit waits

	// cancelStmt cancels the in-flight statement (Cancel frame, kill).
	cancelMu   sync.Mutex
	cancelStmt context.CancelFunc

	// Row-stream flow control: the reader adds Fetch credits and flags
	// aborts; flowCh (capacity 1) wakes a worker waiting for credit.
	credits atomic.Int64
	abort   atomic.Bool
	flowCh  chan struct{}

	// drainCh asks the worker to finish its current statement and
	// close (graceful drain).
	drainCh   chan struct{}
	drainOnce sync.Once

	// Worker-owned state (no locks needed).
	tx       *engine.Txn
	stmts    map[uint64]*engine.PreparedStmt
	nextStmt uint64

	// Exit bookkeeping for the drained/killed counters.
	drained bool
	failed  bool
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	return &session{
		srv:     s,
		id:      id,
		conn:    conn,
		br:      bufio.NewReader(conn),
		ctx:     ctx,
		cancel:  cancel,
		reqs:     make(chan frame, 1),
		dying:    make(chan struct{}),
		peerGone: make(chan struct{}),
		flowCh:  make(chan struct{}, 1),
		drainCh: make(chan struct{}),
		stmts:   make(map[uint64]*engine.PreparedStmt),
	}
}

// beginDrain asks the session to close once its in-flight statement
// (if any) finishes. Idempotent; called by Server.Shutdown.
func (sess *session) beginDrain() {
	sess.drainOnce.Do(func() { close(sess.drainCh) })
}

// kill severs the session immediately: cancel the in-flight statement,
// cancel the session context (unblocking credit waits), and expire all
// socket deadlines so blocked reads and writes return now. Teardown
// still runs in the worker, so state is released in order.
func (sess *session) kill(reason string) {
	sess.cancelInFlight()
	sess.cancel()
	sess.conn.SetDeadline(time.Now())
}

func (sess *session) cancelInFlight() bool {
	sess.cancelMu.Lock()
	c := sess.cancelStmt
	sess.cancelMu.Unlock()
	if c == nil {
		return false
	}
	c()
	return true
}

// run is the worker: handshake, then one request at a time until an
// exit path fires. The deferred teardown is the session's only
// teardown, shared by every path.
func (sess *session) run() {
	defer sess.teardown()
	if err := sess.handshake(); err != nil {
		sess.failed = true
		return
	}
	go sess.readLoop()
	for {
		sess.setIdleDeadline()
		select {
		case <-sess.drainCh:
			sess.drained = true
			sess.writeErr(&netproto.ServerError{
				Code:       netproto.CodeDraining,
				Message:    "server draining",
				RetryAfter: sess.srv.opts.RetryAfter,
			})
			return
		case f, ok := <-sess.reqs:
			if !ok {
				// Reader gone: dead peer, torn frame, or idle timeout.
				sess.failed = true
				return
			}
			sess.conn.SetReadDeadline(time.Time{})
			if exit := sess.handle(f); exit {
				return
			}
		}
	}
}

// setIdleDeadline arms the idle reaper while the worker waits for the
// next request. SetReadDeadline takes effect even for a Read already
// blocked in the reader goroutine.
func (sess *session) setIdleDeadline() {
	if d := sess.srv.opts.IdleTimeout; d > 0 {
		sess.conn.SetReadDeadline(time.Now().Add(d))
	}
}

// teardown releases everything the session holds, exactly once:
// rollback the open transaction (dropping its write locks so other
// sessions never inherit a phantom conflict), close the socket
// (unblocking the reader), and fix up the counters.
func (sess *session) teardown() {
	close(sess.dying)
	sess.cancel()
	if sess.tx != nil {
		sess.tx.Rollback()
		sess.tx = nil
	}
	sess.conn.Close()
	ctr := sess.srv.ctr
	ctr.SessionsOpen.Add(-1)
	if sess.drained {
		ctr.Drained.Add(1)
	} else if sess.failed {
		ctr.Killed.Add(1)
	}
	sess.srv.removeSession(sess.id)
}

// handshake expects a Hello within HandshakeTimeout and answers
// HelloOK.
func (sess *session) handshake() error {
	sess.conn.SetReadDeadline(time.Now().Add(sess.srv.opts.HandshakeTimeout))
	typ, payload, err := netproto.ReadFrame(sess.br)
	if err != nil {
		return err
	}
	sess.srv.ctr.BytesIn.Add(uint64(len(payload)) + 1)
	if typ != netproto.TypeHello {
		sess.writeErr(protoErr("expected Hello, got frame 0x%02x", typ))
		return errors.New("bad handshake")
	}
	hello, err := netproto.DecodeHello(payload)
	if err != nil {
		sess.writeErr(protoErr("bad Hello: %v", err))
		return err
	}
	if hello.Version != netproto.Version {
		err := protoErr("protocol version %d not supported (server speaks %d)", hello.Version, netproto.Version)
		sess.writeErr(err)
		return err
	}
	sess.conn.SetReadDeadline(time.Time{})
	ok := &netproto.HelloOK{Version: netproto.Version, SessionID: sess.id, Server: sess.srv.opts.Banner}
	if !sess.write(netproto.TypeHelloOK, ok.Encode()) {
		return errors.New("handshake write failed")
	}
	return nil
}

// readLoop owns the socket's read side. Out-of-band frames act
// immediately; everything else is handed to the worker. Any read error
// (dead peer, torn frame, idle/kill deadline) closes reqs, which the
// worker treats as session end.
func (sess *session) readLoop() {
	defer func() {
		close(sess.peerGone)
		close(sess.reqs)
	}()
	for {
		typ, payload, err := netproto.ReadFrame(sess.br)
		if err != nil {
			return
		}
		sess.srv.ctr.BytesIn.Add(uint64(len(payload)) + 1)
		switch typ {
		case netproto.TypeCancel:
			if sess.cancelInFlight() {
				sess.srv.ctr.Cancels.Add(1)
			}
		case netproto.TypeFetch:
			if f, err := netproto.DecodeFetch(payload); err == nil {
				sess.credits.Add(int64(f.N))
				sess.wakeFlow()
			}
		case netproto.TypeStreamClose:
			sess.abort.Store(true)
			sess.wakeFlow()
		default:
			select {
			case sess.reqs <- frame{typ, payload}:
			case <-sess.dying:
				return
			}
		}
	}
}

func (sess *session) wakeFlow() {
	select {
	case sess.flowCh <- struct{}{}:
	default:
	}
}

// write sends one frame, bounded by WriteTimeout so a stalled client
// cannot pin the worker. Returns false when the session must die.
func (sess *session) write(typ byte, payload []byte) bool {
	if d := sess.srv.opts.WriteTimeout; d > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := netproto.WriteFrame(sess.conn, typ, payload); err != nil {
		sess.failed = true
		return false
	}
	sess.srv.ctr.BytesOut.Add(uint64(len(payload)) + 1)
	return true
}

// writeErr reports a failure as a typed Error frame. Returns false
// when the write itself failed (session must die).
func (sess *session) writeErr(err error) bool {
	code, detail := netproto.Classify(err)
	msg := &netproto.ErrorMsg{
		Code:    code,
		Message: err.Error(),
		Detail:  detail,
		TxnOpen: sess.tx != nil,
	}
	var se *netproto.ServerError
	if errors.As(err, &se) {
		msg.Message = se.Message
		msg.RetryAfterMs = uint32(se.RetryAfter / time.Millisecond)
	}
	var pe *engine.PanicError
	if errors.As(err, &pe) {
		msg.Message = fmt.Sprint(pe.Value)
	}
	return sess.write(netproto.TypeError, msg.Encode())
}

func protoErr(format string, args ...any) error {
	return &netproto.ServerError{Code: netproto.CodeProtocol, Message: fmt.Sprintf(format, args...)}
}

// handle executes one request. It returns true when the session must
// exit: clean Goodbye, a protocol violation (session state is no
// longer trustworthy), or a failed response write.
func (sess *session) handle(f frame) bool {
	switch f.typ {
	case netproto.TypeGoodbye:
		return true
	case netproto.TypeInfo:
		// Monitoring must work even under overload: no statement slot.
		return !sess.sendInfo()
	case netproto.TypeExec:
		m, err := netproto.DecodeExec(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad Exec: %v", err))
			return true
		}
		return sess.doExec(m.Script)
	case netproto.TypeQuery:
		m, err := netproto.DecodeQuery(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad Query: %v", err))
			return true
		}
		return sess.doQuery(m.SQL, m.Window)
	case netproto.TypePrepare:
		m, err := netproto.DecodePrepare(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad Prepare: %v", err))
			return true
		}
		return sess.doPrepare(m.SQL)
	case netproto.TypeStmtExec:
		m, err := netproto.DecodeStmtExec(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad StmtExec: %v", err))
			return true
		}
		return sess.doStmtExec(m.ID, m.Args)
	case netproto.TypeStmtQuery:
		m, err := netproto.DecodeStmtQuery(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad StmtQuery: %v", err))
			return true
		}
		return sess.doStmtQuery(m.ID, m.Window, m.Args)
	case netproto.TypeReplStart:
		m, err := netproto.DecodeReplStart(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad ReplStart: %v", err))
			return true
		}
		return sess.doRepl(m.From)
	case netproto.TypeStmtClose:
		m, err := netproto.DecodeStmtClose(f.payload)
		if err != nil {
			sess.writeErr(protoErr("bad StmtClose: %v", err))
			return true
		}
		delete(sess.stmts, m.ID)
		return !sess.write(netproto.TypeDone, (&netproto.Done{}).Encode())
	default:
		sess.writeErr(protoErr("unexpected frame 0x%02x", f.typ))
		return true
	}
}

// beginStmt applies statement admission control and registers the
// in-flight cancel hook. On success the caller must call endStmt.
func (sess *session) beginStmt() (context.Context, context.CancelFunc, error) {
	if sess.srv.Draining() {
		return nil, nil, &netproto.ServerError{
			Code:       netproto.CodeDraining,
			Message:    "server draining",
			RetryAfter: sess.srv.opts.RetryAfter,
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if d := sess.srv.opts.StmtTimeout; d > 0 {
		ctx, cancel = context.WithTimeout(sess.ctx, d)
	} else {
		ctx, cancel = context.WithCancel(sess.ctx)
	}
	if err := sess.srv.acquireSlot(ctx); err != nil {
		cancel()
		return nil, nil, err
	}
	sess.cancelMu.Lock()
	sess.cancelStmt = cancel
	sess.cancelMu.Unlock()
	sess.srv.ctr.StmtsTotal.Add(1)
	sess.srv.ctr.StmtsInFlight.Add(1)
	return ctx, cancel, nil
}

func (sess *session) endStmt(cancel context.CancelFunc) {
	sess.cancelMu.Lock()
	sess.cancelStmt = nil
	sess.cancelMu.Unlock()
	cancel()
	sess.srv.releaseSlot()
	sess.srv.ctr.StmtsInFlight.Add(-1)
}

// doExec runs a script with materialized results (the Exec request).
func (sess *session) doExec(script string) bool {
	ctx, cancel, err := sess.beginStmt()
	if err != nil {
		return !sess.writeErr(err)
	}
	res, err := sess.runScript(ctx, script)
	sess.endStmt(cancel)
	if err != nil {
		return !sess.writeErr(err)
	}
	payload, err := res.Encode()
	if err != nil {
		return !sess.writeErr(err)
	}
	return !sess.write(netproto.TypeResults, payload)
}

// runScript mirrors the local shell's statement loop: parse once, then
// execute statement by statement, with BEGIN/COMMIT/ROLLBACK switching
// the session transaction.
func (sess *session) runScript(ctx context.Context, script string) (*netproto.Results, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return nil, err
	}
	out := &netproto.Results{}
	for _, st := range stmts {
		r, err := sess.execStmt(ctx, st)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, r)
	}
	out.TxnOpen = sess.tx != nil
	return out, nil
}

func (sess *session) execStmt(ctx context.Context, st sql.Stmt) (netproto.Result, error) {
	switch st.Statement.(type) {
	case *sql.Begin:
		if sess.tx != nil {
			return netproto.Result{}, errors.New("BEGIN inside an open transaction (transactions do not nest)")
		}
		tx, err := sess.srv.db.Begin()
		if err != nil {
			return netproto.Result{}, err
		}
		sess.tx = tx
		return netproto.Result{Message: "transaction started"}, nil
	case *sql.Commit:
		if sess.tx == nil {
			return netproto.Result{}, errors.New("COMMIT without BEGIN")
		}
		tx := sess.tx
		sess.tx = nil
		if err := tx.Commit(); err != nil {
			return netproto.Result{}, err
		}
		return netproto.Result{Message: "transaction committed"}, nil
	case *sql.Rollback:
		if sess.tx == nil {
			return netproto.Result{}, errors.New("ROLLBACK without BEGIN")
		}
		sess.tx.Rollback()
		sess.tx = nil
		return netproto.Result{Message: "transaction rolled back"}, nil
	}
	if st.Params > 0 {
		return netproto.Result{}, errors.New("placeholders require a prepared statement (use Prepare)")
	}
	var res engine.Result
	var err error
	if sess.tx != nil {
		res, err = sess.tx.ExecStmtContext(ctx, st)
	} else {
		res, err = sess.srv.db.ExecStmtContext(ctx, st)
	}
	if err != nil {
		return netproto.Result{}, err
	}
	return netproto.Result{
		Count:   int64(res.Count),
		Message: res.Message,
		Type:    res.Type,
		Table:   res.Table,
	}, nil
}

// doPrepare parses and binds one statement, registering it under a
// session-local id.
func (sess *session) doPrepare(text string) bool {
	if len(sess.stmts) >= sess.srv.opts.MaxPreparedPerSession {
		return !sess.writeErr(fmt.Errorf("prepared-statement limit (%d) reached", sess.srv.opts.MaxPreparedPerSession))
	}
	ps, err := sess.srv.db.Prepare(text)
	if err != nil {
		return !sess.writeErr(err)
	}
	sess.nextStmt++
	id := sess.nextStmt
	sess.stmts[id] = ps
	_, isSelect := ps.Stmt().(*sql.Select)
	resp := &netproto.Prepared{ID: id, NumParams: uint32(ps.NumParams()), IsSelect: isSelect}
	return !sess.write(netproto.TypePrepared, resp.Encode())
}

func (sess *session) lookupStmt(id uint64) (*engine.PreparedStmt, error) {
	ps, ok := sess.stmts[id]
	if !ok {
		return nil, fmt.Errorf("unknown prepared statement %d", id)
	}
	return ps, nil
}

// doStmtExec runs a prepared statement with bound args, materialized.
func (sess *session) doStmtExec(id uint64, args []model.Value) bool {
	ps, err := sess.lookupStmt(id)
	if err != nil {
		return !sess.writeErr(err)
	}
	ctx, cancel, err := sess.beginStmt()
	if err != nil {
		return !sess.writeErr(err)
	}
	var res engine.Result
	if sess.tx != nil {
		res, err = sess.tx.ExecPrepared(ctx, ps, args...)
	} else {
		res, err = ps.ExecContext(ctx, args...)
	}
	sess.endStmt(cancel)
	if err != nil {
		return !sess.writeErr(err)
	}
	out := &netproto.Results{
		Results: []netproto.Result{{
			Count:   int64(res.Count),
			Message: res.Message,
			Type:    res.Type,
			Table:   res.Table,
		}},
		TxnOpen: sess.tx != nil,
	}
	payload, err := out.Encode()
	if err != nil {
		return !sess.writeErr(err)
	}
	return !sess.write(netproto.TypeResults, payload)
}

// doQuery streams one SELECT (the Query request).
func (sess *session) doQuery(text string, window uint32) bool {
	ctx, cancel, err := sess.beginStmt()
	if err != nil {
		return !sess.writeErr(err)
	}
	rows, err := sess.openQuery(ctx, text)
	if err != nil {
		sess.endStmt(cancel)
		return !sess.writeErr(err)
	}
	ok := sess.stream(ctx, rows, window)
	sess.endStmt(cancel)
	return !ok
}

// openQuery parses text as exactly one SELECT and opens its cursor
// against the session transaction or the database.
func (sess *session) openQuery(ctx context.Context, text string) (*engine.Rows, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("Query takes exactly one statement, got %d", len(stmts))
	}
	st := stmts[0]
	if _, ok := st.Statement.(*sql.Select); !ok {
		return nil, errors.New("Query takes a SELECT; use Exec for other statements")
	}
	if st.Params > 0 {
		return nil, errors.New("placeholders require a prepared statement (use Prepare)")
	}
	if sess.tx != nil {
		return sess.tx.QueryRowsStmt(ctx, st)
	}
	return sess.srv.db.QueryRowsStmt(ctx, st)
}

// doStmtQuery streams a prepared SELECT with bound args.
func (sess *session) doStmtQuery(id uint64, window uint32, args []model.Value) bool {
	ps, err := sess.lookupStmt(id)
	if err != nil {
		return !sess.writeErr(err)
	}
	ctx, cancel, err := sess.beginStmt()
	if err != nil {
		return !sess.writeErr(err)
	}
	var rows *engine.Rows
	if sess.tx != nil {
		rows, err = sess.tx.QueryRowsPrepared(ctx, ps, args...)
	} else {
		rows, err = ps.QueryRowsContext(ctx, args...)
	}
	if err != nil {
		sess.endStmt(cancel)
		return !sess.writeErr(err)
	}
	ok := sess.stream(ctx, rows, window)
	sess.endStmt(cancel)
	return !ok
}

// stream sends RowHeader, then rows under credit-based flow control,
// then Done (or a typed Error). The cursor always closes here, inside
// the worker, before the next request runs — so cancellation, aborts,
// client death and drain all leave zero pinned pages. Returns false
// when the session must die (write failure).
func (sess *session) stream(ctx context.Context, rows *engine.Rows, window uint32) bool {
	defer rows.Close()
	// Reset flow-control state; stale credits or aborts from a previous
	// stream must not leak into this one.
	sess.credits.Store(int64(window))
	sess.abort.Store(false)
	select {
	case <-sess.flowCh:
	default:
	}

	hdr := &netproto.RowHeader{Type: rows.Type()}
	payload, err := hdr.Encode()
	if err != nil {
		return sess.writeErr(err)
	}
	if !sess.write(netproto.TypeRowHeader, payload) {
		return false
	}

	var sent uint64
	for {
		if sess.abort.Load() {
			done := &netproto.Done{Rows: sent, TxnOpen: sess.tx != nil, Aborted: true}
			return sess.write(netproto.TypeDone, done.Encode())
		}
		if err := sess.takeCredit(ctx); err != nil {
			return sess.writeErr(err)
		}
		if sess.abort.Load() {
			continue // takeCredit returned because of the abort
		}
		if !rows.Next() {
			break
		}
		rp, err := (&netproto.Row{Tuple: rows.Tuple()}).Encode()
		if err != nil {
			return sess.writeErr(err)
		}
		if !sess.write(netproto.TypeRow, rp) {
			return false
		}
		sent++
		sess.srv.ctr.RowsStreamed.Add(1)
	}
	if err := rows.Err(); err != nil {
		return sess.writeErr(err)
	}
	done := &netproto.Done{Rows: sent, TxnOpen: sess.tx != nil}
	return sess.write(netproto.TypeDone, done.Encode())
}

// takeCredit consumes one row credit, waiting for a Fetch grant when
// the window is exhausted. It returns early (without consuming) when
// the stream is aborted, and errors when the statement is canceled or
// the session dies.
func (sess *session) takeCredit(ctx context.Context) error {
	for {
		c := sess.credits.Load()
		if c > 0 {
			if sess.credits.CompareAndSwap(c, c-1) {
				return nil
			}
			continue
		}
		if sess.abort.Load() {
			return nil
		}
		select {
		case <-sess.flowCh:
		case <-ctx.Done():
			return ctx.Err()
		case <-sess.peerGone:
			return errors.New("client disconnected mid-stream")
		case <-sess.dying:
			return context.Canceled
		}
	}
}

// sendInfo answers Info with a counter snapshot — the wire twin of
// aim.Stats().Net.
func (sess *session) sendInfo() bool {
	st := sess.srv.Stats()
	resp := &netproto.InfoResp{Fields: []netproto.InfoField{
		{Key: "sessions_open", Val: st.SessionsOpen},
		{Key: "sessions_peak", Val: st.SessionsPeak},
		{Key: "sessions_total", Val: int64(st.SessionsTotal)},
		{Key: "stmts_in_flight", Val: st.StmtsInFlight},
		{Key: "stmts_total", Val: int64(st.StmtsTotal)},
		{Key: "queue_depth", Val: st.QueueDepth},
		{Key: "queue_waits", Val: int64(st.QueueWaits)},
		{Key: "shed_sessions", Val: int64(st.ShedSessions)},
		{Key: "shed_stmts", Val: int64(st.ShedStmts)},
		{Key: "drained", Val: int64(st.Drained)},
		{Key: "killed", Val: int64(st.Killed)},
		{Key: "cancels", Val: int64(st.Cancels)},
		{Key: "bytes_in", Val: int64(st.BytesIn)},
		{Key: "bytes_out", Val: int64(st.BytesOut)},
		{Key: "rows_streamed", Val: int64(st.RowsStreamed)},
	}}
	return sess.write(netproto.TypeInfoResp, resp.Encode())
}
