// Package netserver is the AIM network front end: it serves the
// netproto wire protocol over TCP (or any net.Listener), multiplexing
// any number of client sessions onto one engine.DB.
//
// The server is first an exercise in robustness:
//
//   - Admission control. At most MaxSessions connections are admitted;
//     beyond that a connection is refused with a typed overload error
//     carrying a retry-after hint before any session state is built.
//     At most MaxStatements statements execute concurrently; a bounded
//     wait queue (StmtQueueDepth deep, StmtQueueWait long) absorbs
//     bursts, and everything beyond it is shed with the same typed
//     overload error — never queued unboundedly, never silently
//     dropped.
//   - Deadlines everywhere. Each statement runs under the session's
//     context with an optional per-statement timeout; idle sessions
//     are reaped after IdleTimeout; a slow or stalled client hits
//     WriteTimeout on the next frame write and is disconnected instead
//     of pinning server memory.
//   - Graceful drain. Shutdown stops accepting, lets in-flight
//     statements finish (new ones are refused with a typed draining
//     error), and after the drain deadline cancels whatever is left.
//     Every teardown path — clean Goodbye, dead peer, torn frame,
//     idle timeout, drain — releases cursors with zero pinned pages,
//     rolls back the session transaction, and releases its write
//     locks, so a dying session can never wedge a live one.
package netserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/netproto"
)

// Options tune the server's admission control and deadlines. The zero
// value of any field selects the default.
type Options struct {
	// MaxSessions bounds concurrently open sessions (default 256).
	MaxSessions int
	// MaxStatements bounds concurrently executing statements across
	// all sessions (default 64).
	MaxStatements int
	// StmtQueueDepth bounds how many statements may wait for an
	// execution slot before admission control sheds new ones
	// (default 2×MaxStatements).
	StmtQueueDepth int
	// StmtQueueWait bounds how long one statement waits for a slot
	// before being shed (default 100ms).
	StmtQueueWait time.Duration
	// StmtTimeout bounds each statement's execution; 0 means no limit.
	StmtTimeout time.Duration
	// IdleTimeout reaps sessions with no in-flight statement and no
	// traffic for this long; 0 means never.
	IdleTimeout time.Duration
	// WriteTimeout bounds each frame write to a client; a stalled
	// reader is disconnected when the socket buffer stays full this
	// long (default 30s; negative means no limit).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the Hello frame
	// (default 5s).
	HandshakeTimeout time.Duration
	// DrainTimeout is the default grace Shutdown grants in-flight
	// statements when its context has no deadline (default 5s).
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint attached to overload errors
	// (default 50ms).
	RetryAfter time.Duration
	// MaxPreparedPerSession bounds the per-session prepared-statement
	// registry (default 1024).
	MaxPreparedPerSession int
	// Banner is the server string sent in the handshake.
	Banner string
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 256
	}
	if o.MaxStatements == 0 {
		o.MaxStatements = 64
	}
	if o.StmtQueueDepth == 0 {
		o.StmtQueueDepth = 2 * o.MaxStatements
	}
	if o.StmtQueueWait == 0 {
		o.StmtQueueWait = 100 * time.Millisecond
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = 50 * time.Millisecond
	}
	if o.MaxPreparedPerSession == 0 {
		o.MaxPreparedPerSession = 1024
	}
	if o.Banner == "" {
		o.Banner = "aimserver"
	}
	return o
}

// Server is one network front end over one engine.
type Server struct {
	db   *engine.DB
	opts Options
	ctr  *engine.NetCounters

	// stmtSem holds the statement execution slots; stmtWaiters counts
	// the queue behind it (bounded by StmtQueueDepth).
	stmtSem chan struct{}

	mu          sync.Mutex
	ln          net.Listener
	sessions    map[uint64]*session
	nextSID     uint64
	stmtWaiters int
	started     bool
	draining    bool
	drained     chan struct{} // closed when the last session is gone while draining
	acceptDone  chan struct{}
}

// New builds a server over an open engine. The engine stays owned by
// the caller: Shutdown drains sessions but does not close the DB.
func New(db *engine.DB, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		db:       db,
		opts:     opts,
		ctr:      db.NetCounters(),
		stmtSem:  make(chan struct{}, opts.MaxStatements),
		sessions: make(map[uint64]*session),
		drained:  make(chan struct{}),
	}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		ln.Close()
		return errors.New("netserver: already started")
	}
	s.started = true
	s.ln = ln
	s.acceptDone = make(chan struct{})
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listen address (after Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stats snapshots the server's counters (the same block surfaced by
// aim.Stats().Net and the protocol INFO request).
func (s *Server) Stats() engine.NetStats { return s.ctr.Snapshot() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer close(s.acceptDone)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal accept error
		}
		if !s.admit(conn) {
			continue
		}
	}
}

// admit applies session admission control and spawns the session.
// Refusals are answered with a typed error frame before close, so the
// client can tell an overloaded server from a dead one.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		go s.refuse(conn, netproto.CodeDraining)
		return false
	}
	if int(s.ctr.SessionsOpen.Load()) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.ctr.ShedSessions.Add(1)
		go s.refuse(conn, netproto.CodeOverloaded)
		return false
	}
	s.nextSID++
	sid := s.nextSID
	s.ctr.NoteSessionOpen()
	sess := newSession(s, sid, conn)
	s.sessions[sid] = sess
	s.mu.Unlock()
	go sess.run()
	return true
}

// refuse answers a rejected connection with a typed error and closes
// it. Best-effort: the client may already be gone.
func (s *Server) refuse(conn net.Conn, code netproto.ErrCode) {
	msg := &netproto.ErrorMsg{
		Code:         code,
		Message:      "server at capacity",
		RetryAfterMs: uint32(s.opts.RetryAfter / time.Millisecond),
	}
	if code == netproto.CodeDraining {
		msg.Message = "server draining"
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	netproto.WriteFrame(conn, netproto.TypeError, msg.Encode())
	conn.Close()
}

// removeSession unregisters a finished session and, while draining,
// signals Shutdown when the last one is gone.
func (s *Server) removeSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	if s.draining && len(s.sessions) == 0 {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()
}

// acquireSlot implements statement admission: an execution slot if one
// is free, else a bounded wait in a bounded queue, else a typed shed.
func (s *Server) acquireSlot(ctx context.Context) error {
	select {
	case s.stmtSem <- struct{}{}:
		return nil
	default:
	}
	s.mu.Lock()
	if s.stmtWaiters >= s.opts.StmtQueueDepth {
		s.mu.Unlock()
		s.ctr.ShedStmts.Add(1)
		return overloadErr(s.opts.RetryAfter)
	}
	s.stmtWaiters++
	s.mu.Unlock()
	s.ctr.QueueDepth.Add(1)
	s.ctr.QueueWaits.Add(1)
	defer func() {
		s.ctr.QueueDepth.Add(-1)
		s.mu.Lock()
		s.stmtWaiters--
		s.mu.Unlock()
	}()
	timer := time.NewTimer(s.opts.StmtQueueWait)
	defer timer.Stop()
	select {
	case s.stmtSem <- struct{}{}:
		return nil
	case <-timer.C:
		s.ctr.ShedStmts.Add(1)
		return overloadErr(s.opts.RetryAfter)
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseSlot() { <-s.stmtSem }

// overloadErr builds the typed overload error with the retry hint.
func overloadErr(retry time.Duration) error {
	return &netproto.ServerError{
		Code:       netproto.CodeOverloaded,
		Message:    "too many concurrent statements",
		RetryAfter: retry,
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown performs a graceful drain: stop accepting, refuse new
// statements with a typed draining error, close idle sessions, let
// in-flight statements finish, and when the context expires (or
// DrainTimeout, if the context has no deadline) cancel whatever is
// left. It returns once every session is torn down — cursors released
// with zero pinned pages, transactions rolled back, write locks
// freed. The engine itself stays open; the caller checkpoints and
// closes it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("netserver: not started")
	}
	already := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	none := len(s.sessions) == 0
	if none {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()

	if !already {
		ln.Close()
		// Ask every session to drain: idle ones close now, busy ones
		// finish their in-flight statement first.
		for _, sess := range sessions {
			sess.beginDrain()
		}
	}
	<-s.acceptDone

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
		defer cancel()
	}
	select {
	case <-s.drained:
	case <-ctx.Done():
		// Drain deadline: cancel the stragglers' statements and sever
		// their connections, then wait for their teardowns to finish —
		// teardown is quick once the statement context is canceled.
		s.mu.Lock()
		stragglers := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			stragglers = append(stragglers, sess)
		}
		s.mu.Unlock()
		for _, sess := range stragglers {
			sess.kill("drain deadline")
		}
		<-s.drained
	}
	return nil
}

// String describes the server (diagnostics).
func (s *Server) String() string {
	return fmt.Sprintf("aimserver(%s, max %d sessions / %d stmts)", s.Addr(), s.opts.MaxSessions, s.opts.MaxStatements)
}
