package netserver

import (
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/netproto"
	"repro/internal/page"
	"repro/internal/wal"
)

// replHeartbeat is how often an idle replication stream sends an empty
// batch so the follower can track the primary's durable horizon (and
// notice a dead primary) without new commits.
const replHeartbeat = 500 * time.Millisecond

// replChunk bounds one replication frame's payload: batches of WAL
// bytes and snapshot page runs both ship in chunks of at most this
// many bytes (well under netproto.MaxFrame, and a whole number of
// pages so snapshot chunks never split a page).
const replChunk = 1 << 20

// doRepl turns the session into a replication stream: ship committed
// WAL bytes from the requested offset — bootstrapping with a full
// checkpoint snapshot when the offset is zero or already recycled —
// until the follower disconnects or the server drains. The stream
// takes no statement slot: it is a long-lived background feed, not a
// statement, and monitoring-style admission applies. Always returns
// true (the session ends with the stream).
func (sess *session) doRepl(from uint64) bool {
	db := sess.srv.db
	log := db.Log()
	if log == nil {
		sess.writeErr(errors.New("replication requires a write-ahead log"))
		return true
	}
	ctr := db.ReplCounters()
	if ctr.Role.Load() == engine.RoleReplica {
		sess.writeErr(errors.New("cascading replication is not supported"))
		return true
	}
	ctr.Role.CompareAndSwap(engine.RoleNone, engine.RolePrimary)
	ctr.FollowersTotal.Add(1)
	ctr.FollowersOpen.Add(1)
	defer ctr.FollowersOpen.Add(-1)

	var cur *wal.TailCursor
	acquire := func() bool {
		for attempt := 0; attempt < 4; attempt++ {
			if from > 0 {
				c, err := log.TailCursor(from)
				if err == nil {
					cur = c
					return true
				}
				if !errors.Is(err, wal.ErrTailRecycled) {
					sess.writeErr(err)
					return false
				}
				// The follower's position fell off the retained chain
				// (it lagged across a checkpoint's recycle); fall back
				// to a fresh snapshot.
			}
			end, ok := sess.shipSnapshot(db)
			if !ok {
				return false
			}
			from = end
		}
		sess.writeErr(errors.New("snapshot raced recycling repeatedly"))
		return false
	}

	timer := time.NewTimer(replHeartbeat)
	defer timer.Stop()
	for {
		if cur == nil && !acquire() {
			return true
		}
		// Arm the notification before reading: a sync landing between
		// the read and the select wakes the loop instead of being lost.
		ch := log.TailNotify()
		data, pos, err := cur.Read(replChunk)
		if err != nil {
			if errors.Is(err, wal.ErrTailRecycled) {
				// Recycled under a slow stream: re-bootstrap.
				cur = nil
				from = 0
				continue
			}
			sess.writeErr(err)
			return true
		}
		if len(data) > 0 {
			b := &netproto.ReplBatch{From: pos, DurableEnd: log.SyncedThrough(), Data: data}
			if !sess.write(netproto.TypeReplBatch, b.Encode()) {
				return true
			}
			ctr.BatchesShipped.Add(1)
			ctr.BytesShipped.Add(uint64(len(data)))
			ctr.NoteShipped(pos + uint64(len(data)))
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(replHeartbeat)
		select {
		case <-ch:
		case <-timer.C:
			hb := &netproto.ReplBatch{From: cur.Pos(), DurableEnd: log.SyncedThrough()}
			if !sess.write(netproto.TypeReplBatch, hb.Encode()) {
				return true
			}
		case <-sess.drainCh:
			sess.drained = true
			sess.writeErr(&netproto.ServerError{
				Code:       netproto.CodeDraining,
				Message:    "server draining",
				RetryAfter: sess.srv.opts.RetryAfter,
			})
			return true
		case <-sess.peerGone:
			return true
		case <-sess.dying:
			return true
		}
	}
}

// shipSnapshot sends a full checkpoint snapshot (SnapBegin, page and
// WAL-tail chunks, SnapEnd) and returns the offset batches resume
// from. ok=false means the session must die (write failure or
// snapshot error, already reported).
func (sess *session) shipSnapshot(db *engine.DB) (end uint64, ok bool) {
	snap, err := db.ReplicaSnapshot()
	if err != nil {
		sess.writeErr(err)
		return 0, false
	}
	begin := &netproto.ReplSnapBegin{WALBase: snap.WALBase}
	for _, s := range snap.Segs {
		begin.Segs = append(begin.Segs, netproto.ReplSnapSeg{Seg: uint32(s.ID), Pages: s.Pages})
	}
	if !sess.write(netproto.TypeReplSnapBegin, begin.Encode()) {
		return 0, false
	}
	for _, s := range snap.Segs {
		for off := 0; off < len(s.Data); off += replChunk {
			hi := off + replChunk
			if hi > len(s.Data) {
				hi = len(s.Data)
			}
			m := &netproto.ReplSnapPages{Seg: uint32(s.ID), First: uint32(off/page.Size) + 1, Data: s.Data[off:hi]}
			if !sess.write(netproto.TypeReplSnapPages, m.Encode()) {
				return 0, false
			}
		}
	}
	for off := 0; off < len(snap.WAL); off += replChunk {
		hi := off + replChunk
		if hi > len(snap.WAL) {
			hi = len(snap.WAL)
		}
		m := &netproto.ReplSnapPages{WAL: true, Data: snap.WAL[off:hi]}
		if !sess.write(netproto.TypeReplSnapPages, m.Encode()) {
			return 0, false
		}
	}
	if !sess.write(netproto.TypeReplSnapEnd, (&netproto.ReplSnapEnd{WALEnd: snap.WALEnd()}).Encode()) {
		return 0, false
	}
	return snap.WALEnd(), true
}
