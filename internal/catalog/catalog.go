// Package catalog holds the database schema: table definitions
// (nested NF² types, storage layout, versioning), index definitions,
// and segment assignments. The catalog itself is persisted as a
// single subtuple in the meta segment, so it participates in the
// same buffering, logging and recovery as all other data.
package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
)

// MetaSegment is the segment the catalog record lives in.
const MetaSegment segment.ID = 1

// TableKind distinguishes flat (1NF) tables from NF² tables stored as
// complex objects.
type TableKind uint8

// Table kinds.
const (
	Flat TableKind = iota + 1
	Complex
)

// Table describes one stored table.
type Table struct {
	Name string
	Type *model.TableType
	Seg  segment.ID
	Kind TableKind
	// Layout is the Mini Directory storage structure (an
	// object.Layout value) for complex tables.
	Layout uint8
	// Versioned tables keep history and answer ASOF queries.
	Versioned bool
	// DirHead is the first chunk of the table's object directory (the
	// persistent list of root MD subtuple TIDs) for complex tables.
	DirHead page.TID
}

// IndexDef describes an index (value or text).
type IndexDef struct {
	Name  string
	Table string
	Path  []string
	// Kind is an index.Kind value for value indexes.
	Kind uint8
	Text bool
}

// Catalog is the in-memory catalog with persistence.
type Catalog struct {
	mu      sync.Mutex
	st      *subtuple.Store
	self    page.TID
	tables  map[string]*Table
	indexes map[string]*IndexDef
	nextSeg segment.ID
}

type persisted struct {
	Tables  map[string]*Table
	Indexes map[string]*IndexDef
	NextSeg segment.ID
}

// Open loads (or bootstraps) the catalog from the meta store.
func Open(st *subtuple.Store) (*Catalog, error) {
	c := &Catalog{
		st:      st,
		tables:  make(map[string]*Table),
		indexes: make(map[string]*IndexDef),
		nextSeg: MetaSegment + 1,
	}
	self := page.TID{Page: 1, Slot: 0}
	// An empty meta segment cannot hold a catalog record — bootstrap
	// without probing it, so a transient read fault on a fresh store
	// can never masquerade as "no catalog yet".
	raw, err := []byte(nil), error(subtuple.ErrNotFound)
	if st.PageCount() >= 1 {
		raw, err = st.Read(self)
		if err != nil && !errors.Is(err, subtuple.ErrNotFound) {
			// The meta segment has pages, so a catalog record should be
			// there: a corrupt (or unreadable) one must surface, not
			// silently bootstrap an empty catalog over the damage.
			return nil, fmt.Errorf("catalog: read catalog record: %w", err)
		}
	}
	if err == nil {
		var p persisted
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
			return nil, fmt.Errorf("catalog: corrupt catalog record: %v: %w", err, dberr.ErrCorrupt)
		}
		c.tables = p.Tables
		c.indexes = p.Indexes
		c.nextSeg = p.NextSeg
		if c.tables == nil {
			c.tables = make(map[string]*Table)
		}
		if c.indexes == nil {
			c.indexes = make(map[string]*IndexDef)
		}
		c.self = self
		return c, nil
	}
	// Bootstrap: the catalog record becomes the very first subtuple,
	// at the conventional TID (1,0). When crash recovery wiped an
	// uncommitted meta segment, page 1 already exists (empty) and the
	// record must be placed there explicitly — a plain Insert would
	// allocate a fresh page.
	raw, err = c.encode()
	if err != nil {
		return nil, err
	}
	var tid page.TID
	if st.PageCount() >= 1 {
		tid, err = st.InsertOnPage(1, raw)
	} else {
		tid, err = st.Insert(raw)
	}
	if err != nil {
		return nil, err
	}
	if tid != self {
		return nil, fmt.Errorf("catalog: bootstrap record at %v, want %v", tid, self)
	}
	c.self = self
	return c, nil
}

func (c *Catalog) encode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(persisted{
		Tables:  c.tables,
		Indexes: c.indexes,
		NextSeg: c.nextSeg,
	})
	return buf.Bytes(), err
}

// Save persists the catalog.
func (c *Catalog) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Catalog) saveLocked() error {
	raw, err := c.encode()
	if err != nil {
		return err
	}
	return c.st.Update(c.self, raw)
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllocateSegment hands out the next free segment id and persists the
// counter.
func (c *Catalog) AllocateSegment() (segment.ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSeg
	c.nextSeg++
	return id, c.saveLocked()
}

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	return c.saveLocked()
}

// UpdateTable persists changes to a table descriptor (e.g. DirHead).
func (c *Catalog) UpdateTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
	return c.saveLocked()
}

// DropTable removes a table and its index definitions.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	for in, ix := range c.indexes {
		if ix.Table == name {
			delete(c.indexes, in)
		}
	}
	return c.saveLocked()
}

// Index returns the named index definition.
func (c *Catalog) Index(name string) (*IndexDef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[name]
	return ix, ok
}

// Indexes returns the definitions for one table, sorted by name.
func (c *Catalog) Indexes(table string) []*IndexDef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*IndexDef
	for _, ix := range c.indexes {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers an index definition.
func (c *Catalog) AddIndex(ix *IndexDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.indexes[ix.Name]; dup {
		return fmt.Errorf("catalog: index %q already exists", ix.Name)
	}
	if _, ok := c.tables[ix.Table]; !ok {
		return fmt.Errorf("catalog: no table %q", ix.Table)
	}
	c.indexes[ix.Name] = ix
	return c.saveLocked()
}

// DropIndex removes an index definition.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("catalog: no index %q", name)
	}
	delete(c.indexes, name)
	return c.saveLocked()
}
