package catalog

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func metaStore(t testing.TB) (*subtuple.Store, *segment.MemStore) {
	t.Helper()
	pool := buffer.NewPool(64)
	ms := segment.NewMemStore()
	pool.Register(MetaSegment, ms)
	return subtuple.New(subtuple.Config{Pool: pool, Seg: MetaSegment}), ms
}

func TestBootstrapAndReopen(t *testing.T) {
	st, _ := metaStore(t)
	c, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := c.AllocateSegment()
	if err != nil {
		t.Fatal(err)
	}
	if seg <= MetaSegment {
		t.Errorf("allocated segment %d", seg)
	}
	tbl := &Table{Name: "DEPARTMENTS", Type: testdata.DepartmentsType(), Seg: seg, Kind: Complex, Layout: 3, Versioned: true}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&IndexDef{Name: "fn", Table: "DEPARTMENTS", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: 3}); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same store: the persisted state must load.
	c2, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Table("DEPARTMENTS")
	if !ok {
		t.Fatal("table lost on reopen")
	}
	if !got.Type.Equal(testdata.DepartmentsType()) || !got.Versioned || got.Seg != seg {
		t.Errorf("reloaded table = %+v", got)
	}
	if ixs := c2.Indexes("DEPARTMENTS"); len(ixs) != 1 || ixs[0].Name != "fn" {
		t.Errorf("reloaded indexes = %v", ixs)
	}
	if next, _ := c2.AllocateSegment(); next <= seg {
		t.Errorf("segment counter regressed: %d", next)
	}
}

func TestDuplicatesAndDrops(t *testing.T) {
	st, _ := metaStore(t)
	c, _ := Open(st)
	seg, _ := c.AllocateSegment()
	tbl := &Table{Name: "T", Type: testdata.EmployeesType(), Seg: seg, Kind: Flat}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := c.AddIndex(&IndexDef{Name: "i", Table: "NOPE", Path: []string{"X"}}); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := c.AddIndex(&IndexDef{Name: "i", Table: "T", Path: []string{"LNAME"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&IndexDef{Name: "i", Table: "T", Path: []string{"FNAME"}}); err == nil {
		t.Error("duplicate index accepted")
	}
	// Dropping the table removes its indexes.
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("i"); ok {
		t.Error("index survived table drop")
	}
	if err := c.DropTable("T"); err == nil {
		t.Error("double drop accepted")
	}
	if err := c.DropIndex("i"); err == nil {
		t.Error("dropping missing index accepted")
	}
}

func TestTablesSorted(t *testing.T) {
	st, _ := metaStore(t)
	c, _ := Open(st)
	for _, name := range []string{"ZETA", "ALPHA", "MID"} {
		seg, _ := c.AllocateSegment()
		if err := c.AddTable(&Table{Name: name, Type: testdata.EmployeesType(), Seg: seg, Kind: Flat}); err != nil {
			t.Fatal(err)
		}
	}
	tables := c.Tables()
	if tables[0].Name != "ALPHA" || tables[1].Name != "MID" || tables[2].Name != "ZETA" {
		t.Errorf("order = %v", []string{tables[0].Name, tables[1].Name, tables[2].Name})
	}
}
