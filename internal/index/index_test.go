package index

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func newManager(t testing.TB) *object.Manager {
	t.Helper()
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	return object.NewManager(st, object.SS3)
}

func insertDepts(t testing.TB, m *object.Manager) []object.Ref {
	t.Helper()
	tt := testdata.DepartmentsType()
	var refs []object.Ref
	for _, tup := range testdata.Departments().Tuples {
		ref, err := m.Insert(tt, tup)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	return refs
}

func TestBTreeBasic(t *testing.T) {
	bt := NewBTree()
	addr := func(i int) Addr { return Addr{TID: page.TID{Page: uint32(i + 1)}} }
	for i := 0; i < 1000; i++ {
		key, _ := model.EncodeKeyValue(model.Int(int64(i % 100)))
		bt.Insert(key, addr(i))
	}
	if bt.Len() != 1000 || bt.Keys() != 100 {
		t.Fatalf("Len=%d Keys=%d", bt.Len(), bt.Keys())
	}
	key, _ := model.EncodeKeyValue(model.Int(7))
	if got := bt.Search(key); len(got) != 10 {
		t.Errorf("postings for 7 = %d, want 10", len(got))
	}
	missing, _ := model.EncodeKeyValue(model.Int(1000))
	if got := bt.Search(missing); got != nil {
		t.Errorf("postings for missing key = %v", got)
	}
}

func TestBTreeRangeOrder(t *testing.T) {
	bt := NewBTree()
	for i := 999; i >= 0; i-- {
		key, _ := model.EncodeKeyValue(model.Int(int64(i)))
		bt.Insert(key, Addr{TID: page.TID{Page: uint32(i + 1)}})
	}
	lo, _ := model.EncodeKeyValue(model.Int(100))
	hi, _ := model.EncodeKeyValue(model.Int(199))
	var got []uint32
	bt.Range(lo, hi, func(_ []byte, addrs []Addr) bool {
		got = append(got, addrs[0].TID.Page)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("range size = %d", len(got))
	}
	for i, pg := range got {
		if pg != uint32(101+i) {
			t.Fatalf("range out of order at %d: %d", i, pg)
		}
	}
	// Full scan.
	n := 0
	bt.Range(nil, nil, func(_ []byte, _ []Addr) bool { n++; return true })
	if n != 1000 {
		t.Errorf("full range = %d", n)
	}
	// Early stop.
	n = 0
	bt.Range(nil, nil, func(_ []byte, _ []Addr) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop = %d", n)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	key, _ := model.EncodeKeyValue(model.Str("k"))
	a1 := Addr{TID: page.TID{Page: 1}}
	a2 := Addr{TID: page.TID{Page: 2}}
	bt.Insert(key, a1)
	bt.Insert(key, a2)
	if !bt.Delete(key, a1) {
		t.Fatal("delete failed")
	}
	if got := bt.Search(key); len(got) != 1 || got[0].TID.Page != 2 {
		t.Errorf("after delete: %v", got)
	}
	if bt.Delete(key, a1) {
		t.Error("double delete succeeded")
	}
	bt.Delete(key, a2)
	if bt.Search(key) != nil || bt.Keys() != 0 {
		t.Error("key not removed when postings emptied")
	}
}

// Property: the tree agrees with a map of multisets under random
// inserts and deletes.
func TestBTreeQuick(t *testing.T) {
	f := func(ops []struct {
		K   uint8
		Del bool
	}) bool {
		bt := NewBTree()
		shadow := map[uint8]int{}
		for i, op := range ops {
			key, _ := model.EncodeKeyValue(model.Int(int64(op.K)))
			if op.Del && shadow[op.K] > 0 {
				if !bt.Delete(key, Addr{TID: page.TID{Page: uint32(op.K) + 1}}) {
					return false
				}
				shadow[op.K]--
			} else if !op.Del {
				bt.Insert(key, Addr{TID: page.TID{Page: uint32(op.K) + 1}})
				shadow[op.K]++
			}
			_ = i
		}
		total := 0
		for k, n := range shadow {
			key, _ := model.EncodeKeyValue(model.Int(int64(k)))
			if len(bt.Search(key)) != n {
				return false
			}
			total += n
		}
		return bt.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResolvePath(t *testing.T) {
	tt := testdata.DepartmentsType()
	tp, level, pos, kind, err := ResolvePath(tt, []string{"PROJECTS", "MEMBERS", "FUNCTION"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != 2 || tp[0] != 2 || tp[1] != 2 || pos != 1 || kind != model.KindString {
		t.Errorf("tp=%v level=%s pos=%d kind=%s", tp, level, pos, kind)
	}
	if _, _, _, _, err := ResolvePath(tt, []string{"PROJECTS"}); err == nil {
		t.Error("subtable path accepted")
	}
	if _, _, _, _, err := ResolvePath(tt, []string{"DNO", "X"}); err == nil {
		t.Error("path through atomic accepted")
	}
	if _, _, _, _, err := ResolvePath(tt, []string{"NOPE"}); err == nil {
		t.Error("missing attribute accepted")
	}
}

// TestIndexStrategies builds the FUNCTION index of §4.2 under all
// three address strategies and checks the paper's example entry:
// <'Consultant', 56019, 89921, 44512>.
func TestIndexStrategies(t *testing.T) {
	for _, kind := range []Kind{DataTID, RootTID, Hierarchical} {
		t.Run(kind.String(), func(t *testing.T) {
			m := newManager(t)
			refs := insertDepts(t, m)
			ix, err := New(Def{Name: "fn", Table: "DEPARTMENTS", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: kind}, testdata.DepartmentsType())
			if err != nil {
				t.Fatal(err)
			}
			for _, ref := range refs {
				if err := ix.AddObject(m, testdata.DepartmentsType(), ref); err != nil {
					t.Fatal(err)
				}
			}
			addrs, err := ix.Lookup(model.Str("Consultant"))
			if err != nil {
				t.Fatal(err)
			}
			if len(addrs) != 3 {
				t.Fatalf("consultant entries = %d, want 3", len(addrs))
			}
			switch kind {
			case RootTID:
				// Department 218 has two consultants: its root appears
				// twice, and deduplication yields two distinct objects.
				roots := DistinctRoots(addrs)
				if len(roots) != 2 {
					t.Errorf("distinct roots = %d, want 2 (314 and 218)", len(roots))
				}
			case Hierarchical:
				for _, a := range addrs {
					if len(a.Path) != 2 {
						t.Errorf("hierarchical address depth = %d, want 2", len(a.Path))
					}
				}
				// Direct access to the data via the address.
				atoms, err := m.ReadDataPath(addrs[0].TID, addrs[0].Path)
				if err != nil {
					t.Fatal(err)
				}
				if atoms[1].(model.Str) != "Consultant" {
					t.Errorf("ReadDataPath = %v", atoms)
				}
			case DataTID:
				for _, a := range addrs {
					if len(a.Path) != 0 {
						t.Error("data-TID address carries a path")
					}
				}
			}
		})
	}
}

// TestFig7ConjunctiveQuery reproduces the Fig 7b experiment: with
// hierarchical addresses, PNO=17 AND FUNCTION='Consultant' resolves
// from the two indexes alone (shared path prefix at depth 1 = same
// project), with no scan of the data.
func TestFig7ConjunctiveQuery(t *testing.T) {
	m := newManager(t)
	refs := insertDepts(t, m)
	tt := testdata.DepartmentsType()
	pnoIx, _ := New(Def{Name: "pno", Path: []string{"PROJECTS", "PNO"}, Kind: Hierarchical}, tt)
	fnIx, _ := New(Def{Name: "fn", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: Hierarchical}, tt)
	for _, ref := range refs {
		pnoIx.AddObject(m, tt, ref)
		fnIx.AddObject(m, tt, ref)
	}
	ps, _ := pnoIx.Lookup(model.Int(17))
	fs, _ := fnIx.Lookup(model.Str("Consultant"))
	pairs := IntersectByPrefix(ps, fs, 1)
	if len(pairs) != 1 {
		t.Fatalf("prefix intersection = %d pairs, want 1 (project 17's consultant)", len(pairs))
	}
	// The matched department is 314: P and F share the root.
	atoms, err := m.ReadDataPath(pairs[0][0].TID, pairs[0][0].Path[:1])
	if err != nil {
		t.Fatal(err)
	}
	if atoms[0].(model.Int) != 17 {
		t.Errorf("matched project = %v, want 17", atoms[0])
	}
	// Sanity: PNO=23 (HEAP) has no consultant.
	ps23, _ := pnoIx.Lookup(model.Int(23))
	if pairs := IntersectByPrefix(ps23, fs, 1); len(pairs) != 0 {
		t.Errorf("HEAP unexpectedly matched: %v", pairs)
	}
}

func TestIndexMaintenanceRemoveObject(t *testing.T) {
	m := newManager(t)
	refs := insertDepts(t, m)
	tt := testdata.DepartmentsType()
	ix, _ := New(Def{Name: "fn", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: Hierarchical}, tt)
	for _, ref := range refs {
		ix.AddObject(m, tt, ref)
	}
	before, _ := ix.Lookup(model.Str("Consultant"))
	if err := ix.RemoveObject(m, tt, refs[1]); err != nil { // dept 218
		t.Fatal(err)
	}
	after, _ := ix.Lookup(model.Str("Consultant"))
	if len(after) != len(before)-2 {
		t.Errorf("after removal: %d entries, want %d", len(after), len(before)-2)
	}
}

func TestFlatIndex(t *testing.T) {
	tt := testdata.EmployeesType()
	ix, err := New(Def{Name: "lname", Path: []string{"LNAME"}, Kind: DataTID}, tt)
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range testdata.Employees().Tuples {
		if err := ix.AddFlat(page.TID{Page: 1, Slot: uint16(i)}, tup, tt); err != nil {
			t.Fatal(err)
		}
	}
	addrs, _ := ix.Lookup(model.Str("Schmidt"))
	if len(addrs) != 1 {
		t.Fatalf("Schmidt = %d entries", len(addrs))
	}
	// Range over a name interval.
	n := 0
	ix.LookupRange(model.Str("A"), model.Str("L"), func(addrs []Addr) bool {
		n += len(addrs)
		return true
	})
	if n == 0 {
		t.Error("range lookup found nothing")
	}
}

func TestSharedPrefix(t *testing.T) {
	root := page.TID{Page: 5, Slot: 1}
	p1 := page.MiniTID{Page: 0, Slot: 3}
	p2 := page.MiniTID{Page: 1, Slot: 7}
	a := Addr{TID: root, Path: []page.MiniTID{p1, p2}}
	b := Addr{TID: root, Path: []page.MiniTID{p1}}
	c := Addr{TID: root, Path: []page.MiniTID{p2}}
	if !SharedPrefix(a, b, 1) {
		t.Error("same project not detected")
	}
	if SharedPrefix(a, c, 1) {
		t.Error("different projects matched")
	}
	if SharedPrefix(a, b, 2) {
		t.Error("depth beyond b's path matched")
	}
	d := Addr{TID: page.TID{Page: 6}, Path: []page.MiniTID{p1}}
	if SharedPrefix(b, d, 1) {
		t.Error("different roots matched")
	}
}

func ExampleDistinctRoots() {
	addrs := []Addr{
		{TID: page.TID{Page: 1}},
		{TID: page.TID{Page: 2}},
		{TID: page.TID{Page: 1}},
	}
	fmt.Println(len(DistinctRoots(addrs)))
	// Output: 2
}
