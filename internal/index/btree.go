// Package index implements B-tree access paths for NF² tables with
// the three address implementations discussed in §4.2 of the paper:
//
//   - DataTID: each index entry address is the TID of the data
//     subtuple containing the key — insufficient because the complex
//     object containing the match cannot be located from it;
//   - RootTID: the address is the TID of the complex object's root MD
//     subtuple — locates the object (and deduplicates multiple hits in
//     one object) but forces a scan inside the object to find which
//     subobject matched;
//   - Hierarchical: the address is the full hierarchical address of
//     Fig 7b — a root TID plus the Mini TIDs of the data subtuples of
//     the complex subobjects down to the match. Address components
//     identify complex subobjects, never subtables, so conjunctive
//     predicates can be resolved by comparing path prefixes without
//     touching the data at all.
//
// An index entry is an ordered pair <key, address list> (§4.2).
package index

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/page"
)

// Kind selects the address implementation of an index.
type Kind uint8

// The three address strategies of §4.2.
const (
	DataTID Kind = iota + 1
	RootTID
	Hierarchical
)

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case DataTID:
		return "DATA"
	case RootTID:
		return "ROOT"
	case Hierarchical:
		return "HIERARCHICAL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Addr is one address in an index entry's address list.
type Addr struct {
	// TID is the data subtuple's TID (DataTID) or the complex
	// object's root MD subtuple TID (RootTID, Hierarchical). The first
	// component of a hierarchical address "is always a TID" (§4.2).
	TID page.TID
	// Path holds, for Hierarchical addresses, the Mini TIDs of the
	// data subtuples of the complex subobjects from nesting level 1
	// down to the subtuple containing the key.
	Path []page.MiniTID
}

// Equal reports address identity.
func (a Addr) Equal(b Addr) bool {
	if a.TID != b.TID || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// SharedPrefix reports whether two hierarchical addresses refer to
// the same complex subobject at nesting depth k (1-based): same root
// and identical first k path components. This is the "P2 = F2" test
// of Fig 7b that resolves conjunctive predicates from the index
// information alone.
func SharedPrefix(a, b Addr, k int) bool {
	if a.TID != b.TID || len(a.Path) < k || len(b.Path) < k {
		return false
	}
	for i := 0; i < k; i++ {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// --- B+-tree -----------------------------------------------------------

const btreeOrder = 64 // max keys per node

type leaf struct {
	keys  [][]byte
	posts [][]Addr
	next  *leaf
}

type inner struct {
	keys     [][]byte // len(children)-1 separators
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// BTree is an in-memory B+-tree from byte keys to address lists.
// Keys are produced by model.EncodeKeyValue, so byte order equals
// value order and range scans deliver keys in value order.
//
// The tree is safe for concurrent use: lookups and range scans take a
// shared lock, mutations an exclusive one, so index reads proceed in
// parallel with each other and with concurrent statements on other
// tables while DML on the indexed table maintains its entries.
type BTree struct {
	mu      sync.RWMutex
	root    node
	first   *leaf
	entries int // number of (key, addr) pairs
	keys    int // number of distinct keys
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	l := &leaf{}
	return &BTree{root: l, first: l}
}

// Len returns the number of (key, address) pairs in the tree.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries
}

// Keys returns the number of distinct keys.
func (t *BTree) Keys() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.keys
}

// Insert adds addr to the address list of key.
func (t *BTree) Insert(key []byte, addr Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := append([]byte(nil), key...)
	midKey, sibling := t.insert(t.root, k, addr)
	if sibling != nil {
		t.root = &inner{keys: [][]byte{midKey}, children: []node{t.root, sibling}}
	}
}

func (t *BTree) insert(n node, key []byte, addr Addr) ([]byte, node) {
	switch n := n.(type) {
	case *leaf:
		i, found := findKey(n.keys, key)
		if found {
			n.posts[i] = append(n.posts[i], addr)
			t.entries++
			return nil, nil
		}
		n.keys = insertAt(n.keys, i, key)
		n.posts = insertAt(n.posts, i, []Addr{addr})
		t.entries++
		t.keys++
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		sib := &leaf{
			keys:  append([][]byte(nil), n.keys[mid:]...),
			posts: append([][]Addr(nil), n.posts[mid:]...),
			next:  n.next,
		}
		n.keys = n.keys[:mid]
		n.posts = n.posts[:mid]
		n.next = sib
		return sib.keys[0], sib
	case *inner:
		ci := childIndex(n.keys, key)
		midKey, sib := t.insert(n.children[ci], key, addr)
		if sib == nil {
			return nil, nil
		}
		n.keys = insertAt(n.keys, ci, midKey)
		n.children = insertAt(n.children, ci+1, sib)
		if len(n.children) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		up := n.keys[mid]
		sibling := &inner{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]node(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		return up, sibling
	}
	return nil, nil
}

// Delete removes addr from the address list of key. Empty postings
// drop the key from the leaf (without structural rebalancing; the
// tree shrinks fully only when rebuilt).
func (t *BTree) Delete(key []byte, addr Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, i := t.findLeaf(key)
	if l == nil {
		return false
	}
	post := l.posts[i]
	for j, a := range post {
		if a.Equal(addr) {
			post = append(post[:j], post[j+1:]...)
			t.entries--
			if len(post) == 0 {
				l.keys = append(l.keys[:i], l.keys[i+1:]...)
				l.posts = append(l.posts[:i], l.posts[i+1:]...)
				t.keys--
			} else {
				l.posts[i] = post
			}
			return true
		}
	}
	return false
}

// Search returns the address list of key (nil if absent). The slice
// is the caller's: a copy, so later mutations of the tree cannot
// reach into it.
func (t *BTree) Search(key []byte) []Addr {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, i := t.findLeaf(key)
	if l == nil {
		return nil
	}
	return append([]Addr(nil), l.posts[i]...)
}

func (t *BTree) findLeaf(key []byte) (*leaf, int) {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner:
			n = x.children[childIndex(x.keys, key)]
		case *leaf:
			i, found := findKey(x.keys, key)
			if !found {
				return nil, 0
			}
			return x, i
		}
	}
}

// Range calls fn for every key in [lo, hi] (inclusive; nil lo means
// from the smallest key, nil hi means to the largest) in ascending
// key order. fn returning false stops the scan. fn runs under the
// tree's shared lock and must not mutate the tree.
func (t *BTree) Range(lo, hi []byte, fn func(key []byte, addrs []Addr) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var l *leaf
	var i int
	if lo == nil {
		l, i = t.first, 0
	} else {
		l, i = t.seek(lo)
	}
	for l != nil {
		for ; i < len(l.keys); i++ {
			if hi != nil && bytes.Compare(l.keys[i], hi) > 0 {
				return
			}
			if !fn(l.keys[i], l.posts[i]) {
				return
			}
		}
		l, i = l.next, 0
	}
}

// seek positions at the first key >= lo.
func (t *BTree) seek(lo []byte) (*leaf, int) {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner:
			n = x.children[childIndex(x.keys, lo)]
		case *leaf:
			i, _ := findKey(x.keys, lo)
			if i == len(x.keys) {
				return x.next, 0
			}
			return x, i
		}
	}
}

// findKey returns the position of key (or its insertion point) in a
// sorted key slice.
func findKey(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndex returns the child to follow for key in an inner node.
func childIndex(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
