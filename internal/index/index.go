package index

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
)

// Def describes an index in the catalog.
type Def struct {
	Name  string
	Table string
	// Path names the indexed attribute: a chain of table-valued
	// attribute names ending in an atomic attribute, e.g.
	// PROJECTS.MEMBERS.FUNCTION. A single name indexes a top-level
	// attribute.
	Path []string
	Kind Kind
}

// Index is a live index instance over one table.
type Index struct {
	Def
	tree *BTree
	// tablePath holds the attribute indexes of the table-valued
	// attributes along Path; atomPos is the position of the indexed
	// attribute among the target level's atomic attributes.
	tablePath []int
	atomPos   int
	attrType  model.Kind
}

// ResolvePath resolves an attribute-name path against a table type,
// returning the table-valued attribute indexes, the level type, and
// the position of the final atomic attribute among the level's atoms.
func ResolvePath(tt *model.TableType, path []string) (tablePath []int, level *model.TableType, atomPos int, kind model.Kind, err error) {
	level = tt
	for i, name := range path {
		ai := level.AttrIndex(name)
		if ai < 0 {
			return nil, nil, 0, 0, fmt.Errorf("index: no attribute %q in %s", name, level)
		}
		attr := level.Attrs[ai]
		if i == len(path)-1 {
			if attr.Type.Kind == model.KindTable {
				return nil, nil, 0, 0, fmt.Errorf("index: %q is a subtable, not an atomic attribute", name)
			}
			pos := 0
			for _, j := range level.AtomicIndexes() {
				if j == ai {
					return tablePath, level, pos, attr.Type.Kind, nil
				}
				pos++
			}
			return nil, nil, 0, 0, fmt.Errorf("index: internal: %q not among atomic attributes", name)
		}
		if attr.Type.Kind != model.KindTable {
			return nil, nil, 0, 0, fmt.Errorf("index: %q is atomic but the path continues", name)
		}
		tablePath = append(tablePath, ai)
		level = attr.Type.Table
	}
	return nil, nil, 0, 0, fmt.Errorf("index: empty attribute path")
}

// New creates an empty index for the table type.
func New(def Def, tt *model.TableType) (*Index, error) {
	tp, _, pos, kind, err := ResolvePath(tt, def.Path)
	if err != nil {
		return nil, err
	}
	if def.Kind < DataTID || def.Kind > Hierarchical {
		return nil, fmt.Errorf("index: unknown address kind %d", def.Kind)
	}
	return &Index{Def: def, tree: NewBTree(), tablePath: tp, atomPos: pos, attrType: kind}, nil
}

// Tree exposes the underlying B-tree (for range scans).
func (ix *Index) Tree() *BTree { return ix.tree }

// Depth returns the number of Mini TID components a hierarchical
// address of this index carries (the nesting level of the indexed
// attribute; 1 for top-level attributes).
func (ix *Index) Depth() int {
	if len(ix.tablePath) == 0 {
		return 1
	}
	return len(ix.tablePath)
}

// Key encodes an atomic value as the index key.
func (ix *Index) Key(v model.Value) ([]byte, error) { return model.EncodeKeyValue(v) }

// AddObject indexes every occurrence of the indexed attribute inside
// one complex object, with addresses according to the index kind.
func (ix *Index) AddObject(m *object.Manager, tt *model.TableType, ref object.Ref) error {
	return ix.eachEntry(m, tt, ref, func(key []byte, addr Addr) {
		ix.tree.Insert(key, addr)
	})
}

// RemoveObject removes every index entry contributed by the object.
func (ix *Index) RemoveObject(m *object.Manager, tt *model.TableType, ref object.Ref) error {
	return ix.eachEntry(m, tt, ref, func(key []byte, addr Addr) {
		ix.tree.Delete(key, addr)
	})
}

func (ix *Index) eachEntry(m *object.Manager, tt *model.TableType, ref object.Ref, fn func(key []byte, addr Addr)) error {
	return m.EnumLevel(tt, ref, ix.tablePath, func(dpath []page.MiniTID, atoms []model.Value) error {
		// Data subtuples written before an ALTER TABLE ADD are short;
		// the missing attribute reads as null.
		var v model.Value = model.Null{}
		if ix.atomPos < len(atoms) {
			v = atoms[ix.atomPos]
		}
		key, err := ix.Key(v)
		if err != nil {
			return err
		}
		var addr Addr
		switch ix.Kind {
		case Hierarchical:
			addr = Addr{TID: ref, Path: append([]page.MiniTID(nil), dpath...)}
		case RootTID:
			addr = Addr{TID: ref}
		case DataTID:
			tid, err := m.ResolveDataMini(ref, dpath[len(dpath)-1])
			if err != nil {
				return err
			}
			addr = Addr{TID: tid}
		}
		fn(key, addr)
		return nil
	})
}

// AddFlat indexes one tuple of a flat table (the classic System R
// case: the address is simply the tuple's TID).
func (ix *Index) AddFlat(tid page.TID, tup model.Tuple, tt *model.TableType) error {
	key, err := ix.flatKey(tup, tt)
	if err != nil {
		return err
	}
	ix.tree.Insert(key, Addr{TID: tid})
	return nil
}

// RemoveFlat removes one flat tuple's entry.
func (ix *Index) RemoveFlat(tid page.TID, tup model.Tuple, tt *model.TableType) error {
	key, err := ix.flatKey(tup, tt)
	if err != nil {
		return err
	}
	ix.tree.Delete(key, Addr{TID: tid})
	return nil
}

func (ix *Index) flatKey(tup model.Tuple, tt *model.TableType) ([]byte, error) {
	if len(ix.tablePath) != 0 {
		return nil, fmt.Errorf("index: nested path on flat table")
	}
	ai := tt.AttrIndex(ix.Path[0])
	if ai < 0 {
		return nil, fmt.Errorf("index: no attribute %q", ix.Path[0])
	}
	return ix.Key(tup[ai])
}

// Lookup returns the address list for an exact key value.
func (ix *Index) Lookup(v model.Value) ([]Addr, error) {
	key, err := ix.Key(v)
	if err != nil {
		return nil, err
	}
	return ix.tree.Search(key), nil
}

// LookupRange streams the addresses of all keys in [lo, hi]; nil
// bounds are open. Exclusive bounds are handled by the caller via key
// filtering.
func (ix *Index) LookupRange(lo, hi model.Value, fn func(addrs []Addr) bool) error {
	var lk, hk []byte
	var err error
	if !model.IsNull(lo) {
		if lk, err = ix.Key(lo); err != nil {
			return err
		}
	}
	if !model.IsNull(hi) {
		if hk, err = ix.Key(hi); err != nil {
			return err
		}
	}
	ix.tree.Range(lk, hk, func(_ []byte, addrs []Addr) bool { return fn(addrs) })
	return nil
}

// DistinctRoots deduplicates an address list to the distinct complex
// objects it references — the "multiple access to the same complex
// object can be avoided" property of root-TID and hierarchical
// addresses (§4.2).
func DistinctRoots(addrs []Addr) []page.TID {
	seen := make(map[page.TID]bool, len(addrs))
	var out []page.TID
	for _, a := range addrs {
		if !seen[a.TID] {
			seen[a.TID] = true
			out = append(out, a.TID)
		}
	}
	return out
}

// IntersectByPrefix returns the pairs of addresses from as and bs
// that refer to the same complex subobject at nesting depth k — the
// final-solution query execution of Fig 7b, resolving a conjunctive
// predicate purely from index information.
func IntersectByPrefix(as, bs []Addr, k int) [][2]Addr {
	type pk struct {
		tid  page.TID
		path [8]page.MiniTID // fixed array as map key; depth ≤ 8
	}
	if k > 8 {
		k = 8
	}
	keyOf := func(a Addr) (pk, bool) {
		if len(a.Path) < k {
			return pk{}, false
		}
		key := pk{tid: a.TID}
		for i := 0; i < k; i++ {
			key.path[i] = a.Path[i]
		}
		for i := k; i < 8; i++ {
			key.path[i] = page.NilMini
		}
		return key, true
	}
	byPrefix := make(map[pk][]Addr, len(as))
	for _, a := range as {
		if key, ok := keyOf(a); ok {
			byPrefix[key] = append(byPrefix[key], a)
		}
	}
	var out [][2]Addr
	for _, b := range bs {
		key, ok := keyOf(b)
		if !ok {
			continue
		}
		for _, a := range byPrefix[key] {
			out = append(out, [2]Addr{a, b})
		}
	}
	return out
}
