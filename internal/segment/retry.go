package segment

import (
	"errors"
	"time"

	"repro/internal/dberr"
)

// TransientError marks an error as transient: the failed operation may
// succeed if simply retried (EINTR-style hiccups, short I/O stalls).
// Fault-injecting stores implement it to exercise the retry path.
type TransientError interface {
	error
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) declares
// itself transient. Corruption is always permanent: re-reading a
// rotted page returns the same bytes, so burning the retry budget on
// it only delays the quarantine — even if a fault-injecting store
// also tags the error as transient.
func IsTransient(err error) bool {
	if errors.Is(err, dberr.ErrCorrupt) {
		return false
	}
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// RetryPolicy bounds the automatic retries of transient store faults.
// Tries is the total number of attempts per operation (1 = no
// retries); Backoff is the initial sleep between attempts, doubling
// each time.
type RetryPolicy struct {
	Tries   int
	Backoff time.Duration
}

// DefaultRetry is the policy the engine applies to its stores and log
// file: up to 4 attempts with 1ms initial backoff.
var DefaultRetry = RetryPolicy{Tries: 4, Backoff: time.Millisecond}

// Do runs op, retrying transient failures per the policy. The final
// error (transient or not) is returned unchanged.
func (p RetryPolicy) Do(op func() error) error {
	tries := p.Tries
	if tries < 1 {
		tries = 1
	}
	backoff := p.Backoff
	var err error
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// retryStore wraps a Store, retrying transient faults on every
// fallible operation.
type retryStore struct {
	st Store
	p  RetryPolicy
}

// WithRetry wraps st so transient faults are retried per the policy.
// A policy with Tries <= 1 returns st unchanged.
func WithRetry(st Store, p RetryPolicy) Store {
	if p.Tries <= 1 {
		return st
	}
	return &retryStore{st: st, p: p}
}

func (r *retryStore) ReadPage(no uint32, buf []byte) error {
	return r.p.Do(func() error { return r.st.ReadPage(no, buf) })
}

func (r *retryStore) WritePage(no uint32, buf []byte) error {
	return r.p.Do(func() error { return r.st.WritePage(no, buf) })
}

func (r *retryStore) Sync() error {
	return r.p.Do(func() error { return r.st.Sync() })
}

func (r *retryStore) PageCount() uint32 { return r.st.PageCount() }
func (r *retryStore) Allocate() uint32  { return r.st.Allocate() }
func (r *retryStore) Close() error      { return r.st.Close() }
