// Package segment provides database segments: linearly addressed
// arrays of fixed-size pages with a persistent backing store. A
// segment is the unit within which TIDs are interpreted ("the page
// number in a TID is interpreted relatively to the beginning of the
// database segment", §4.1).
//
// Two backing stores are provided: a file store for durability and a
// memory store for tests and benchmarks where only logical page
// traffic (counted by the buffer pool) matters.
package segment

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/page"
)

// ID identifies a segment within a database.
type ID uint16

// Store is the persistence interface of a segment: page 1 is the
// first page (page 0 is never used, keeping the zero TID invalid).
type Store interface {
	// ReadPage fills buf (len page.Size) with the page's content.
	ReadPage(no uint32, buf []byte) error
	// WritePage persists buf as the page's content, extending the
	// store if the page is beyond the current end.
	WritePage(no uint32, buf []byte) error
	// PageCount returns the highest allocated page number.
	PageCount() uint32
	// Allocate reserves the next page number.
	Allocate() uint32
	// Sync flushes to stable storage.
	Sync() error
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory Store. Reads take a shared lock so
// concurrent page faults on different pages do not serialize on the
// store.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte // index 0 unused
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{pages: make([][]byte, 1)} }

// ReadPage implements Store.
func (m *MemStore) ReadPage(no uint32, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if no == 0 || int(no) >= len(m.pages) {
		return fmt.Errorf("segment: read of unallocated page %d", no)
	}
	if m.pages[no] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, m.pages[no])
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(no uint32, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if no == 0 {
		return fmt.Errorf("segment: write of page 0")
	}
	for int(no) >= len(m.pages) {
		m.pages = append(m.pages, nil)
	}
	if m.pages[no] == nil {
		m.pages[no] = make([]byte, page.Size)
	}
	copy(m.pages[no], buf)
	return nil
}

// PageCount implements Store.
func (m *MemStore) PageCount() uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint32(len(m.pages) - 1)
}

// Allocate implements Store.
func (m *MemStore) Allocate() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, nil)
	return uint32(len(m.pages) - 1)
}

// Sync implements Store.
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a file-backed Store; page n lives at offset
// (n-1)*page.Size. Reads take a shared lock: ReadAt is positioned
// I/O, safe to issue concurrently, so parallel page faults overlap at
// the file level too.
type FileStore struct {
	mu    sync.RWMutex
	f     *os.File
	count uint32
}

// OpenFileStore opens (or creates) the segment file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, count: uint32(st.Size() / page.Size)}, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(no uint32, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if no == 0 || no > s.count {
		return fmt.Errorf("segment: read of unallocated page %d", no)
	}
	n, err := s.f.ReadAt(buf, int64(no-1)*page.Size)
	if err != nil && n != page.Size {
		return fmt.Errorf("segment: read page %d: %w", no, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(no uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if no == 0 {
		return fmt.Errorf("segment: write of page 0")
	}
	if no > s.count {
		s.count = no
	}
	if _, err := s.f.WriteAt(buf, int64(no-1)*page.Size); err != nil {
		return fmt.Errorf("segment: write page %d: %w", no, err)
	}
	return nil
}

// PageCount implements Store.
func (s *FileStore) PageCount() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Allocate implements Store.
func (s *FileStore) Allocate() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	// Materialize the page so later reads succeed.
	zero := make([]byte, page.Size)
	s.f.WriteAt(zero, int64(s.count-1)*page.Size)
	return s.count
}

// Sync implements Store.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
