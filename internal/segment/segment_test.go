package segment

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/page"
)

func testStore(t *testing.T, st Store) {
	t.Helper()
	if st.PageCount() != 0 {
		t.Fatalf("fresh store has %d pages", st.PageCount())
	}
	p1 := st.Allocate()
	p2 := st.Allocate()
	if p1 != 1 || p2 != 2 {
		t.Fatalf("allocated %d, %d; want 1, 2", p1, p2)
	}
	buf := make([]byte, page.Size)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := st.WritePage(p2, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	if err := st.ReadPage(p2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("page content mismatch")
	}
	// Unwritten allocated page reads as zeros.
	if err := st.ReadPage(p1, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Error("fresh page not zero")
			break
		}
	}
	// Errors.
	if err := st.ReadPage(0, got); err == nil {
		t.Error("read of page 0 succeeded")
	}
	if err := st.ReadPage(99, got); err == nil {
		t.Error("read beyond end succeeded")
	}
	if err := st.WritePage(0, buf); err == nil {
		t.Error("write of page 0 succeeded")
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStore(t *testing.T) {
	st := NewMemStore()
	defer st.Close()
	testStore(t, st)
}

func TestFileStore(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFileStore(filepath.Join(dir, "seg.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	testStore(t, st)
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.dat")
	st, _ := OpenFileStore(path)
	no := st.Allocate()
	buf := make([]byte, page.Size)
	copy(buf, "persisted content")
	if err := st.WritePage(no, buf); err != nil {
		t.Fatal(err)
	}
	st.Sync()
	st.Close()

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.PageCount() != 1 {
		t.Fatalf("reopened page count = %d", st2.PageCount())
	}
	got := make([]byte, page.Size)
	if err := st2.ReadPage(no, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persisted content")) {
		t.Error("content lost across reopen")
	}
}

func TestWriteBeyondEndExtends(t *testing.T) {
	st := NewMemStore()
	buf := make([]byte, page.Size)
	buf[0] = 7
	if err := st.WritePage(5, buf); err != nil {
		t.Fatal(err)
	}
	if st.PageCount() != 5 {
		t.Errorf("page count after write-beyond = %d", st.PageCount())
	}
	got := make([]byte, page.Size)
	if err := st.ReadPage(5, got); err != nil || got[0] != 7 {
		t.Errorf("read back: %v, %d", err, got[0])
	}
	// Pages 1-4 exist as zeros.
	if err := st.ReadPage(3, got); err != nil {
		t.Errorf("intermediate page unreadable: %v", err)
	}
}
