package segment

import (
	"errors"
	"testing"

	"repro/internal/page"
)

// blinkErr is a transient fault; stoneErr is not.
type blinkErr struct{}

func (blinkErr) Error() string   { return "blink" }
func (blinkErr) Transient() bool { return true }

var stoneErr = errors.New("stone")

// flakyStore fails the next `fail` operations with err, then works.
type flakyStore struct {
	*MemStore
	fail  int
	err   error
	calls int
}

func (f *flakyStore) step() error {
	f.calls++
	if f.fail > 0 {
		f.fail--
		return f.err
	}
	return nil
}

func (f *flakyStore) ReadPage(no uint32, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.MemStore.ReadPage(no, buf)
}

func (f *flakyStore) WritePage(no uint32, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.MemStore.WritePage(no, buf)
}

func (f *flakyStore) Sync() error {
	if err := f.step(); err != nil {
		return err
	}
	return f.MemStore.Sync()
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(blinkErr{}) {
		t.Fatal("blinkErr should be transient")
	}
	if IsTransient(stoneErr) || IsTransient(nil) {
		t.Fatal("stoneErr and nil are not transient")
	}
	// Classification must survive wrapping.
	if !IsTransient(errors.Join(errors.New("ctx"), blinkErr{})) {
		t.Fatal("wrapped transient error lost its classification")
	}
}

func TestRetryAbsorbsTransientBurst(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fail: 3, err: blinkErr{}}
	st := WithRetry(fs, RetryPolicy{Tries: 4})
	no := st.Allocate()
	buf := make([]byte, page.Size)
	buf[0] = 0xAB
	if err := st.WritePage(no, buf); err != nil {
		t.Fatalf("burst of 3 should be absorbed by 4 tries: %v", err)
	}
	if fs.calls != 4 {
		t.Fatalf("expected 4 attempts, saw %d", fs.calls)
	}
	got := make([]byte, page.Size)
	if err := st.ReadPage(no, got); err != nil || got[0] != 0xAB {
		t.Fatalf("read back: %v, byte %x", err, got[0])
	}
}

func TestRetryGivesUpAfterTries(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fail: 10, err: blinkErr{}}
	st := WithRetry(fs, RetryPolicy{Tries: 4})
	no := st.Allocate()
	err := st.WritePage(no, make([]byte, page.Size))
	if !IsTransient(err) {
		t.Fatalf("exhausted retries must surface the transient error, got %v", err)
	}
	if fs.calls != 4 {
		t.Fatalf("expected exactly 4 attempts, saw %d", fs.calls)
	}
}

func TestRetryDoesNotRetryPersistent(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fail: 10, err: stoneErr}
	st := WithRetry(fs, RetryPolicy{Tries: 4})
	no := st.Allocate()
	if err := st.WritePage(no, make([]byte, page.Size)); !errors.Is(err, stoneErr) {
		t.Fatalf("want stoneErr, got %v", err)
	}
	if fs.calls != 1 {
		t.Fatalf("persistent errors must not be retried, saw %d attempts", fs.calls)
	}
}

func TestRetryDisabled(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fail: 1, err: blinkErr{}}
	st := WithRetry(fs, RetryPolicy{Tries: 1})
	if st != Store(fs) {
		t.Fatal("Tries of 1 should return the store unwrapped")
	}
}
