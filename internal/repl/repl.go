// Package repl is the follower side of WAL-shipping replication: it
// dials a primary aimserver, bootstraps from a checkpoint snapshot
// when it has no usable state, then applies the shipped stream of
// committed WAL groups onto a local read-only replica engine.
//
// The follower's local state is a byte-identical mirror of a prefix of
// the primary's log (plus the pages that log produces), which is what
// makes every piece of existing machinery work unchanged: recovery
// after a follower crash is ordinary WAL recovery, catch-up after a
// disconnect resumes from the mirrored log's end, and falling behind a
// primary checkpoint's segment recycling degrades to a fresh snapshot
// — the same path as first bootstrap.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/netproto"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/wal"
)

// Options configure a Follower.
type Options struct {
	// Addr is the primary server's address.
	Addr string
	// Dir is the replica's database directory.
	Dir string
	// Engine is the base engine configuration (pool size, segment
	// bounds, ...). Dir, Replica, CheckpointEvery and DisableWAL are
	// overridden; WALSegmentBytes should match the primary's so the
	// mirrored chain rolls at the same offsets.
	Engine engine.Options
	// DialTimeout bounds each dial+handshake (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for one frame; the primary heartbeats
	// every 500ms, so expiry means a dead or wedged primary and the
	// follower re-dials (default 10s).
	ReadTimeout time.Duration
	// Backoff is the initial re-dial delay, doubling per consecutive
	// failure up to MaxBackoff (defaults 50ms, 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// BeforeReseed runs just before a mid-life re-bootstrap closes the
	// current engine (the primary recycled the follower's position
	// away). Callers serving reads from DB() use it to quiesce them.
	BeforeReseed func(*engine.DB)
	// AfterReseed runs once the re-bootstrapped engine is open.
	AfterReseed func(*engine.DB)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 2 * time.Second
	}
	return o
}

// Follower replicates one primary into a local directory.
type Follower struct {
	opts Options

	mu sync.RWMutex // guards db (swapped on re-bootstrap)
	db *engine.DB

	connMu sync.Mutex
	conn   net.Conn

	stop chan struct{}
	done chan struct{}

	// Cumulative counters that must survive engine swaps (the engine's
	// ReplCounters die with it on re-bootstrap).
	reconnects uint64
	snapshots  uint64

	errMu   sync.Mutex
	lastErr error
}

// Start opens (or re-opens) the replica directory and begins following
// the primary in the background. An existing replica state recovers
// locally first — a crashed follower resumes from its own log, exactly
// like a primary would, and only then asks the primary for the bytes
// beyond it.
func Start(opts Options) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("repl: follower requires a directory")
	}
	f := &Follower{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// A directory with a WAL is prior replica state; recover it now so
	// reads work before the primary is even reachable.
	logs, err := filepath.Glob(filepath.Join(opts.Dir, "wal*.log"))
	if err != nil {
		return nil, err
	}
	if len(logs) > 0 {
		db, err := engine.Open(f.engineOpts())
		if err != nil {
			return nil, fmt.Errorf("repl: recover replica state: %w", err)
		}
		f.db = db
	}
	go f.run()
	return f, nil
}

func (f *Follower) engineOpts() engine.Options {
	o := f.opts.Engine
	o.Dir = f.opts.Dir
	o.Replica = true
	o.DisableWAL = false
	o.CheckpointEvery = 0
	o.OpenStore = nil
	o.OpenWALFile = nil
	o.OpenWALStorage = nil
	return o
}

// DB returns the replica engine serving reads, or nil while the
// follower has no state yet (before the first snapshot lands, or
// mid-reseed).
func (f *Follower) DB() *engine.DB {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.db
}

// Err returns the most recent stream error (nil while healthy); the
// follower keeps retrying regardless.
func (f *Follower) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.lastErr
}

func (f *Follower) noteErr(err error) {
	f.errMu.Lock()
	f.lastErr = err
	f.errMu.Unlock()
}

// WaitApplied blocks until the replica has applied the primary's log
// through at least lsn (a primary-side Log().End() reading), or the
// deadline passes.
func (f *Follower) WaitApplied(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if db := f.DB(); db != nil {
			if db.ReplCounters().AppliedLSN.Load() >= lsn {
				return nil
			}
		}
		if time.Now().After(deadline) {
			err := f.Err()
			if err == nil {
				err = errors.New("timed out")
			}
			return fmt.Errorf("repl: waiting for lsn %d: %w", lsn, err)
		}
		select {
		case <-f.stop:
			return errors.New("repl: follower stopped")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Stop ends the stream and waits for the background loop to exit. The
// replica engine stays open for reads; Close stops and closes it.
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()
	<-f.done
}

// Close stops the follower and closes the replica engine.
func (f *Follower) Close() error {
	f.Stop()
	f.mu.Lock()
	db := f.db
	f.db = nil
	f.mu.Unlock()
	if db != nil {
		return db.Close()
	}
	return nil
}

func (f *Follower) stopping() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// run dials, streams, and re-dials with exponential backoff until Stop.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.opts.Backoff
	first := true
	for !f.stopping() {
		err := f.streamOnce()
		if f.stopping() {
			return
		}
		if err != nil {
			f.noteErr(err)
		}
		if !first {
			f.reconnects++
			if db := f.DB(); db != nil {
				db.ReplCounters().Reconnects.Store(f.reconnects)
			}
		}
		first = false
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.opts.MaxBackoff {
			backoff = f.opts.MaxBackoff
		}
	}
}

// streamOnce runs one connection's lifetime: handshake, ReplStart from
// the mirrored log's end (zero = bootstrap), then frames until error.
func (f *Follower) streamOnce() error {
	nc, err := net.DialTimeout("tcp", f.opts.Addr, f.opts.DialTimeout)
	if err != nil {
		return err
	}
	f.connMu.Lock()
	if f.stopping() {
		f.connMu.Unlock()
		nc.Close()
		return errors.New("repl: stopped")
	}
	f.conn = nc
	f.connMu.Unlock()
	defer func() {
		f.connMu.Lock()
		f.conn = nil
		f.connMu.Unlock()
		nc.Close()
	}()

	br := bufio.NewReaderSize(nc, 64<<10)
	nc.SetDeadline(time.Now().Add(f.opts.DialTimeout))
	hello := &netproto.Hello{Version: netproto.Version, Client: "aimrepl"}
	if err := netproto.WriteFrame(nc, netproto.TypeHello, hello.Encode()); err != nil {
		return err
	}
	typ, payload, err := netproto.ReadFrame(br)
	if err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	switch typ {
	case netproto.TypeHelloOK:
	case netproto.TypeError:
		return wireErr(payload)
	default:
		return fmt.Errorf("repl: unexpected handshake frame 0x%02x", typ)
	}

	var from uint64
	if db := f.DB(); db != nil {
		from = db.Log().End()
	}
	nc.SetDeadline(time.Time{})
	if err := netproto.WriteFrame(nc, netproto.TypeReplStart, (&netproto.ReplStart{From: from}).Encode()); err != nil {
		return err
	}

	st := &streamState{f: f}
	st.resetPending()
	for {
		nc.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := netproto.ReadFrame(br)
		if err != nil {
			return err
		}
		if err := st.frame(typ, payload); err != nil {
			return err
		}
	}
}

// streamState is one connection's receive state: the partial-group
// buffer and, during bootstrap, the snapshot under assembly.
type streamState struct {
	f *Follower

	// pending holds shipped bytes not yet applied: the (possibly
	// incomplete) suffix after the last commit-terminated group.
	// pendingBase is pending[0]'s global offset and always equals the
	// mirrored log's end — only whole groups are ever persisted.
	pendingBase uint64
	pending     []byte

	snap *snapBuild
}

// snapBuild assembles an incoming snapshot.
type snapBuild struct {
	walBase uint64
	segs    map[uint32][]byte // preallocated, chunks land at page offsets
	pages   map[uint32]uint32
	order   []uint32
	wal     []byte
}

func (st *streamState) resetPending() {
	st.pendingBase = 0
	st.pending = nil
	if db := st.f.DB(); db != nil {
		st.pendingBase = db.Log().End()
	}
}

func (st *streamState) frame(typ byte, payload []byte) error {
	switch typ {
	case netproto.TypeReplBatch:
		m, err := netproto.DecodeReplBatch(payload)
		if err != nil {
			return err
		}
		return st.batch(m)
	case netproto.TypeReplSnapBegin:
		m, err := netproto.DecodeReplSnapBegin(payload)
		if err != nil {
			return err
		}
		sb := &snapBuild{walBase: m.WALBase, segs: map[uint32][]byte{}, pages: map[uint32]uint32{}}
		for _, s := range m.Segs {
			if _, dup := sb.segs[s.Seg]; dup {
				return fmt.Errorf("repl: snapshot lists segment %d twice", s.Seg)
			}
			sb.segs[s.Seg] = make([]byte, int(s.Pages)*page.Size)
			sb.pages[s.Seg] = s.Pages
			sb.order = append(sb.order, s.Seg)
		}
		st.snap = sb
		return nil
	case netproto.TypeReplSnapPages:
		m, err := netproto.DecodeReplSnapPages(payload)
		if err != nil {
			return err
		}
		if st.snap == nil {
			return errors.New("repl: snapshot pages outside a snapshot")
		}
		if m.WAL {
			st.snap.wal = append(st.snap.wal, m.Data...)
			return nil
		}
		buf, ok := st.snap.segs[m.Seg]
		if !ok {
			return fmt.Errorf("repl: snapshot chunk for unannounced segment %d", m.Seg)
		}
		off := int(m.First-1) * page.Size
		if m.First == 0 || off+len(m.Data) > len(buf) {
			return fmt.Errorf("repl: snapshot chunk overflows segment %d", m.Seg)
		}
		copy(buf[off:], m.Data)
		return nil
	case netproto.TypeReplSnapEnd:
		m, err := netproto.DecodeReplSnapEnd(payload)
		if err != nil {
			return err
		}
		if st.snap == nil {
			return errors.New("repl: snapshot end outside a snapshot")
		}
		if got := st.snap.walBase + uint64(len(st.snap.wal)); got != m.WALEnd {
			return fmt.Errorf("repl: snapshot tail ends at %d, announced %d", got, m.WALEnd)
		}
		snap := st.snap
		st.snap = nil
		if err := st.f.installSnapshot(snap); err != nil {
			return err
		}
		st.resetPending()
		return nil
	case netproto.TypeError:
		return wireErr(payload)
	default:
		return fmt.Errorf("repl: unexpected frame 0x%02x", typ)
	}
}

// batch merges one shipped batch into the pending buffer and applies
// every complete commit-terminated group. The primary may re-ship
// bytes the follower already persisted (a reconnect, or a shipper
// cursor regressing past a primary-side truncation): anything below
// the mirrored log's end is skipped — it can only be a byte-identical
// prefix, since the follower persists nothing above the primary's last
// commit and truncation never cuts below one.
func (st *streamState) batch(m *netproto.ReplBatch) error {
	db := st.f.DB()
	if db == nil {
		return errors.New("repl: batch before snapshot bootstrap")
	}
	db.ReplCounters().PrimaryEnd.Store(m.DurableEnd)
	data, from := m.Data, m.From
	if from < st.pendingBase {
		skip := st.pendingBase - from
		if skip >= uint64(len(data)) {
			return nil // entirely below our persisted end
		}
		data = data[skip:]
		from = st.pendingBase
	}
	held := st.pendingBase + uint64(len(st.pending))
	if from > held {
		return fmt.Errorf("repl: gap in stream: batch at %d, follower at %d", from, held)
	}
	// A regression inside the buffer discards the unapplied suffix the
	// primary rewrote.
	st.pending = append(st.pending[:from-st.pendingBase], data...)

	recs, _, err := wal.DecodeRecords(st.pending, st.pendingBase)
	if err != nil {
		return fmt.Errorf("repl: shipped bytes undecodable: %w", err)
	}
	groupStart := 0
	appliedEnd := st.pendingBase
	for i, r := range recs {
		if r.Op != wal.OpCommit && r.Op != wal.OpCheckpoint {
			continue
		}
		group := recs[groupStart : i+1]
		start := group[0].LSN - 1
		end := r.LSN - 1 + uint64(r.Size())
		raw := st.pending[start-st.pendingBase : end-st.pendingBase]
		if err := db.ReplicaApply(start, raw, group); err != nil {
			return err
		}
		groupStart = i + 1
		appliedEnd = end
	}
	if appliedEnd > st.pendingBase {
		// Applied groups are in the mirrored log's buffer; make them
		// durable before acknowledging progress to ourselves.
		if err := db.Log().Sync(); err != nil {
			return err
		}
		st.pending = append([]byte(nil), st.pending[appliedEnd-st.pendingBase:]...)
		st.pendingBase = appliedEnd
	}
	return nil
}

// installSnapshot replaces the follower's state with a received
// snapshot: quiesce and close the current engine (if any), restore the
// files, and open the replica engine over them.
func (f *Follower) installSnapshot(sb *snapBuild) error {
	f.mu.Lock()
	old := f.db
	f.db = nil
	f.mu.Unlock()
	if old != nil {
		if f.opts.BeforeReseed != nil {
			f.opts.BeforeReseed(old)
		}
		if err := old.Close(); err != nil {
			return fmt.Errorf("repl: closing outrun replica: %w", err)
		}
	}
	snap := &engine.ReplSnapshot{WALBase: sb.walBase, WAL: sb.wal}
	sort.Slice(sb.order, func(i, j int) bool { return sb.order[i] < sb.order[j] })
	for _, id := range sb.order {
		snap.Segs = append(snap.Segs, engine.ReplSnapSeg{
			ID:    segment.ID(id),
			Pages: sb.pages[id],
			Data:  sb.segs[id],
		})
	}
	if err := engine.RestoreSnapshot(f.opts.Dir, snap); err != nil {
		return fmt.Errorf("repl: restore snapshot: %w", err)
	}
	db, err := engine.Open(f.engineOpts())
	if err != nil {
		return fmt.Errorf("repl: open restored replica: %w", err)
	}
	f.snapshots++
	ctr := db.ReplCounters()
	ctr.SnapshotsTaken.Store(f.snapshots)
	ctr.Reconnects.Store(f.reconnects)
	f.mu.Lock()
	f.db = db
	f.mu.Unlock()
	f.noteErr(nil)
	if f.opts.AfterReseed != nil {
		f.opts.AfterReseed(db)
	}
	return nil
}

// wireErr converts a typed Error frame into the error it carries.
func wireErr(payload []byte) error {
	m, err := netproto.DecodeError(payload)
	if err != nil {
		return err
	}
	return m.DecodeWireError()
}
