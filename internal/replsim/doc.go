// Package replsim is a seeded chaos harness for WAL-shipping
// replication: a real primary (engine + netserver) feeds real
// followers (internal/repl) over loopback TCP while the matrix kills
// and restarts followers, tears shipped frames mid-byte, races the
// primary's segment recycling against a lagging follower, and crashes
// followers mid-replay. Every cell converges the follower and checks
// it against the primary itself as an oracle: a follower's reads must
// equal the primary's ASOF reads at the follower's visible horizon,
// with zero pinned pages and zero leaked goroutines.
//
// Everything is driven by explicit seeds, so any failure reproduces
// with its seed number. CI runs the full matrix under -race
// (the replchaos job); -short keeps a smoke slice.
package replsim
