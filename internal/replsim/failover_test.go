package replsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/aimnet"
	"repro/internal/doctor"
	"repro/internal/engine"
	"repro/internal/netserver"
)

// TestFailoverDrill promotes a follower after the primary dies: stop
// the primary, reopen the follower's directory read-write, and verify
// the promoted store is healthy (aimdoctor's verify pass) with every
// committed-and-shipped transaction intact — including ones the
// follower had only mirrored seconds before the primary stopped.
//
// Commits the primary accepted but never shipped are the documented
// lost-tail window: replication is asynchronous, so promotion recovers
// the shipped prefix, not the primary's final instants. The drill
// pins both sides of that line.
func TestFailoverDrill(t *testing.T) {
	leakCheck(t)
	rng := rand.New(rand.NewSource(0xFA11))
	primary, srv := startPrimary(t, engine.Options{})
	dir := t.TempDir()
	f := startFollower(t, srv.Addr(), dir)
	mutate(t, primary, rng, 60)
	if _, err := primary.Exec(`INSERT INTO KV VALUES (9001, 1)`); err != nil {
		t.Fatal(err)
	}
	catchUp(t, primary, f)
	shipped := dump(t, primary, 0)

	// The lost tail: committed on the primary after the follower's
	// stream is gone, never shipped.
	f.Stop()
	if _, err := primary.Exec(`INSERT INTO KV VALUES (9002, 1)`); err != nil {
		t.Fatal(err)
	}

	// Primary dies; follower closes its replica engine for promotion.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
	if err := primary.Close(); err != nil {
		t.Fatalf("primary close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}

	// The promoted directory must pass the doctor's verify scrub.
	rep, err := doctor.Verify(engine.Options{Dir: dir})
	if err != nil {
		t.Fatalf("doctor verify: %v", err)
	}
	if !rep.Healthy {
		t.Fatalf("promoted directory unhealthy: %+v", rep)
	}

	// Reopen read-write: ordinary recovery, indexes rebuilt, writes on.
	promoted, err := engine.Open(engine.Options{Dir: dir})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()
	if got := dump(t, promoted, 0); got != shipped {
		t.Fatalf("promoted state != shipped state\n got:\n%s\nwant:\n%s", got, shipped)
	}
	tab, _, err := promoted.Query(`SELECT x.K FROM x IN KV WHERE x.K = 9002`)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatal("unshipped commit survived promotion; lost-tail window misdrawn")
	}
	if _, err := promoted.Exec(`INSERT INTO KV VALUES (9003, 1)`); err != nil {
		t.Fatalf("promoted engine refused a write: %v", err)
	}
	noPins(t, "promoted", promoted)
}

// TestReplicaCursorSnapshotStable opens a streaming cursor on a
// replica, lets replication publish new commits under it, and checks
// the cursor never sees them: replica cursors read at the visible
// timestamp sampled when they opened.
func TestReplicaCursorSnapshotStable(t *testing.T) {
	leakCheck(t)
	primary, srv := startPrimary(t, engine.Options{})
	for i := 0; i < 20; i++ {
		if _, err := primary.Exec(fmt.Sprintf(`INSERT INTO KV VALUES (%d, 0)`, i)); err != nil {
			t.Fatal(err)
		}
	}
	f := startFollower(t, srv.Addr(), t.TempDir())
	catchUp(t, primary, f)
	fdb := f.DB()

	rows, err := fdb.QueryRows(`SELECT x.K, x.V FROM x IN KV ORDER BY x.K`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var ks []int64
	for i := 0; i < 5; i++ { // drain a prefix before the world moves
		if !rows.Next() {
			t.Fatalf("cursor died early: %v", rows.Err())
		}
		var k, v int64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}

	// New commits land and replicate while the cursor is mid-stream.
	for i := 0; i < 20; i++ {
		if _, err := primary.Exec(fmt.Sprintf(`INSERT INTO KV VALUES (%d, 1)`, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := primary.Exec(`UPDATE x IN KV SET V = 7 WHERE x.K < 20`); err != nil {
		t.Fatal(err)
	}
	catchUp(t, primary, f)

	for rows.Next() {
		var k, v int64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("cursor saw post-open update V=%d at K=%d", v, k)
		}
		ks = append(ks, k)
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if len(ks) != 20 {
		t.Fatalf("snapshot cursor returned %d rows, want the 20 pre-open ones", len(ks))
	}
	for i, k := range ks {
		if k != int64(i) {
			t.Fatalf("cursor row %d has K=%d; post-open rows leaked in", i, k)
		}
	}

	// A fresh query sees the replicated world.
	tab, _, err := fdb.Query(`SELECT x.K FROM x IN KV WHERE x.K >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 20 {
		t.Fatalf("fresh replica query sees %d new rows, want 20", tab.Len())
	}
	noPins(t, "replica", fdb)
}

// TestReplicaRefusesWrites pins the typed error: every write path on a
// replica — DML, DDL, transactions, in process and across the wire —
// fails with ErrReadOnlyReplica and nothing else.
func TestReplicaRefusesWrites(t *testing.T) {
	leakCheck(t)
	primary, srv := startPrimary(t, engine.Options{})
	if _, err := primary.Exec(`INSERT INTO KV VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, srv.Addr(), t.TempDir())
	catchUp(t, primary, f)
	fdb := f.DB()

	for _, q := range []string{
		`INSERT INTO KV VALUES (2, 20)`,
		`UPDATE x IN KV SET V = 0 WHERE x.K = 1`,
		`DELETE x FROM x IN KV WHERE x.K = 1`,
		`CREATE TABLE T2 (A INT)`,
		`DROP TABLE KV`,
		`BEGIN`,
	} {
		_, err := fdb.Exec(q)
		if !errors.Is(err, engine.ErrReadOnlyReplica) {
			t.Fatalf("%s on replica: got %v, want ErrReadOnlyReplica", q, err)
		}
	}
	if _, err := fdb.Begin(); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("Begin on replica: got %v, want ErrReadOnlyReplica", err)
	}

	// Reads are fine, including ASOF at the visible horizon.
	ts := fdb.ReplCounters().VisibleTS.Load()
	if _, _, err := fdb.Query(fmt.Sprintf(`SELECT x.K FROM x IN KV ASOF %d`, ts)); err != nil {
		t.Fatalf("ASOF read on replica: %v", err)
	}

	// Across the wire: serve the replica and check the error
	// round-trips the protocol as the same sentinel.
	rsrv := netserver.New(fdb, netserver.Options{})
	if err := rsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx)
	}()
	conn, err := aimnet.Dial(rsrv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()
	if _, err := conn.Exec(ctx, `INSERT INTO KV VALUES (3, 30)`); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("network write to replica: got %v, want ErrReadOnlyReplica", err)
	}
	rows, err := conn.Query(ctx, `SELECT x.K, x.V FROM x IN KV ORDER BY x.K`)
	if err != nil {
		t.Fatalf("network read from replica: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n != 1 {
		t.Fatalf("network read from replica returned %d rows, want 1", n)
	}
	noPins(t, "replica", fdb)
}
