package replsim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// TestKilledFollowers kills and restarts followers at random points of
// a random workload. Every kill freezes the follower's horizon, so
// each one is an oracle checkpoint: the dead follower's state must
// equal the primary ASOF its visible timestamp; each restart must
// recover locally and catch up incrementally (no snapshot — the
// primary retains the whole log here).
func TestKilledFollowers(t *testing.T) {
	for seed := 0; seed < seedCount(killFull, 4); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leakCheck(t)
			rng := rand.New(rand.NewSource(0x41AA + int64(seed)))
			primary, srv := startPrimary(t, engine.Options{})
			dir := t.TempDir()
			f := startFollower(t, srv.Addr(), dir)
			mutate(t, primary, rng, 5+rng.Intn(20))
			catchUp(t, primary, f)

			kills := 1 + rng.Intn(3)
			for i := 0; i < kills; i++ {
				mutate(t, primary, rng, rng.Intn(25))
				if rng.Intn(2) == 0 {
					catchUp(t, primary, f) // sometimes kill a fully caught-up follower
				}
				f.Stop() // abrupt: stream dies, engine stays for inspection
				fdb := f.DB()
				if fdb == nil {
					t.Fatal("killed follower lost its engine")
				}
				compareFrozen(t, fmt.Sprintf("after kill %d", i), primary, fdb)
				noPins(t, "killed follower", fdb)
				if err := f.Close(); err != nil {
					t.Fatalf("closing killed follower: %v", err)
				}
				mutate(t, primary, rng, rng.Intn(25)) // primary moves on while follower is down
				f = startFollower(t, srv.Addr(), dir)
			}

			mutate(t, primary, rng, 5+rng.Intn(20))
			catchUp(t, primary, f)
			f.Stop()
			fdb := f.DB()
			compareFrozen(t, "final", primary, fdb)
			if got, want := dump(t, fdb, 0), dump(t, primary, 0); got != want {
				t.Fatalf("caught-up follower != primary present\n got:\n%s\nwant:\n%s", got, want)
			}
			ctr := fdb.ReplCounters()
			if ctr.SnapshotsTaken.Load() != 0 {
				t.Fatalf("restart took %d snapshots; incremental catch-up expected", ctr.SnapshotsTaken.Load())
			}
			noPins(t, "final follower", fdb)
			noPins(t, "primary", primary)
		})
	}
}

// TestTornShippedFrames routes the stream through a proxy that cuts
// the primary-to-follower byte stream at random offsets, tearing
// handshake, snapshot and batch frames mid-byte. The follower must
// discard incomplete groups, reconnect, resume from its own durable
// horizon and converge byte-exactly.
func TestTornShippedFrames(t *testing.T) {
	for seed := 0; seed < seedCount(tornFull, 3); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leakCheck(t)
			rng := rand.New(rand.NewSource(0x70A2 + int64(seed)))
			primary, srv := startPrimary(t, engine.Options{})
			mutate(t, primary, rng, 10+rng.Intn(30))

			cuts := 2 + rng.Intn(5)
			budgets := make([]int64, cuts)
			for i := range budgets {
				budgets[i] = 1 + int64(rng.Intn(4096))
			}
			proxy := startChop(t, srv.Addr(), budgets)
			f := startFollower(t, proxy.Addr(), t.TempDir())

			for i := 0; i < 3; i++ {
				mutate(t, primary, rng, rng.Intn(20))
			}
			catchUp(t, primary, f)
			f.Stop()
			fdb := f.DB()
			compareFrozen(t, "after torn frames", primary, fdb)
			if got, want := dump(t, fdb, 0), dump(t, primary, 0); got != want {
				t.Fatalf("follower != primary after torn frames\n got:\n%s\nwant:\n%s", got, want)
			}
			if proxy.Cuts() < cuts {
				t.Fatalf("proxy cut %d connections, want %d", proxy.Cuts(), cuts)
			}
			noPins(t, "torn follower", fdb)
			noPins(t, "primary", primary)
		})
	}
}

// TestRecycleRacesLaggingFollower disconnects a follower, then drives
// the primary through enough churn and checkpoints that the follower's
// resume position is recycled away. Reconnecting must detect the gap
// and fall back to a fresh checkpoint snapshot — and still converge to
// the oracle.
func TestRecycleRacesLaggingFollower(t *testing.T) {
	for seed := 0; seed < seedCount(recycleFull, 3); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leakCheck(t)
			rng := rand.New(rand.NewSource(0x2ECC + int64(seed)))
			// Tiny segments so checkpoints actually retire history fast.
			primary, srv := startPrimary(t, engine.Options{WALSegmentBytes: 4096})
			dir := t.TempDir()
			f := startFollower(t, srv.Addr(), dir)
			mutate(t, primary, rng, 5+rng.Intn(15))
			catchUp(t, primary, f)
			lagAt := primary.Log().End()
			if err := f.Close(); err != nil { // lagging follower goes dark
				t.Fatalf("closing follower: %v", err)
			}

			// Churn past the follower's position and recycle it away.
			for primary.Log().OldestRetained() <= lagAt {
				mutate(t, primary, rng, 10)
				if err := primary.WALCheckpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}

			f2 := startFollower(t, srv.Addr(), dir)
			mutate(t, primary, rng, rng.Intn(15))
			catchUp(t, primary, f2)
			f2.Stop()
			fdb := f2.DB()
			compareFrozen(t, "after recycle race", primary, fdb)
			if got, want := dump(t, fdb, 0), dump(t, primary, 0); got != want {
				t.Fatalf("follower != primary after recycle race\n got:\n%s\nwant:\n%s", got, want)
			}
			ctr := fdb.ReplCounters()
			if ctr.SnapshotsTaken.Load() < 1 {
				t.Fatal("recycled-away follower caught up without a snapshot")
			}
			noPins(t, "reseeded follower", fdb)
			noPins(t, "primary", primary)
		})
	}
}

// TestFollowerCrashMidReplay crashes a follower mid-replay: its last
// MirrorAppend may have reached the OS but not survived (the group was
// never acknowledged), leaving a torn garbage suffix on the mirrored
// log. Reopening must trim the tear with ordinary WAL recovery and
// resume shipping from the follower's own durable horizon.
func TestFollowerCrashMidReplay(t *testing.T) {
	for seed := 0; seed < seedCount(midreplayFull, 3); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leakCheck(t)
			rng := rand.New(rand.NewSource(0xC4A5 + int64(seed)))
			primary, srv := startPrimary(t, engine.Options{})
			dir := t.TempDir()
			f := startFollower(t, srv.Addr(), dir)
			mutate(t, primary, rng, 10+rng.Intn(30))
			catchUp(t, primary, f)
			if err := f.Close(); err != nil { // crash: stream and engine die
				t.Fatalf("closing follower: %v", err)
			}

			// Tear the mirrored log: an in-flight, never-synced group
			// crash-lands as a garbage suffix on the newest segment.
			if rng.Intn(4) != 0 { // sometimes the crash was clean
				tearWALTail(t, dir, rng)
			}
			mutate(t, primary, rng, rng.Intn(20)) // primary moves on meanwhile

			f2 := startFollower(t, srv.Addr(), dir)
			mutate(t, primary, rng, rng.Intn(20))
			catchUp(t, primary, f2)
			f2.Stop()
			fdb := f2.DB()
			compareFrozen(t, "after crash mid-replay", primary, fdb)
			if got, want := dump(t, fdb, 0), dump(t, primary, 0); got != want {
				t.Fatalf("follower != primary after crash\n got:\n%s\nwant:\n%s", got, want)
			}
			if fdb.ReplCounters().SnapshotsTaken.Load() != 0 {
				t.Fatal("crashed follower reseeded; local recovery expected")
			}
			noPins(t, "recovered follower", fdb)
			noPins(t, "primary", primary)
		})
	}
}

// tearWALTail appends random garbage to the newest WAL segment in dir,
// modeling a crash that tore an unacknowledged append.
func tearWALTail(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	logs, err := filepath.Glob(filepath.Join(dir, "wal*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no WAL segments to tear: %v", err)
	}
	newest, base := "", uint64(0)
	for _, l := range logs {
		var b uint64
		if l == filepath.Join(dir, wal.SegFileName(0)) {
			b = 0
		} else {
			fmt.Sscanf(filepath.Base(l), "wal-%d.log", &b)
		}
		if newest == "" || b >= base {
			newest, base = l, b
		}
	}
	junk := make([]byte, 1+rng.Intn(2048))
	rng.Read(junk)
	fh, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
}
