package replsim

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/netserver"
	"repro/internal/repl"
)

// Matrix sizing: each seeded subtest is one chaos point. The full
// matrix (what CI's replchaos job runs) must cover at least 120
// points; -short keeps a smoke slice for the ordinary test run.
const (
	killFull      = 40
	tornFull      = 30
	recycleFull   = 30
	midreplayFull = 30
)

// seedCount picks the matrix width for one cell.
func seedCount(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// TestMatrixCoversBudget pins the acceptance floor: the full matrix is
// at least 120 seeded points.
func TestMatrixCoversBudget(t *testing.T) {
	n := killFull + tornFull + recycleFull + midreplayFull
	if n < 120 {
		t.Fatalf("full chaos matrix has %d points, want >= 120", n)
	}
}

// leakCheck snapshots the goroutine count and, at cleanup time (after
// the teardown cleanups registered later have run), verifies it
// settled back. Register it BEFORE starting anything: cleanups run
// LIFO.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at start, %d after teardown\n%s",
			base, runtime.NumGoroutine(), buf[:n])
	})
}

// startPrimary opens a durable primary with a versioned KV table (the
// versioning is what gives replica reads and the ASOF oracle a common
// timeline) and serves it on a loopback port.
func startPrimary(t *testing.T, opts engine.Options) (*engine.DB, *netserver.Server) {
	t.Helper()
	opts.Dir = t.TempDir()
	db, err := engine.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE KV (K INT, V INT) VERSIONED`); err != nil {
		t.Fatal(err)
	}
	srv := netserver.New(db, netserver.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return db, srv
}

// startFollower begins following addr into dir. The returned follower
// is cleaned up at test end; tests that stop or close it earlier are
// fine (both are idempotent).
func startFollower(t *testing.T, addr, dir string) *repl.Follower {
	t.Helper()
	f, err := repl.Start(repl.Options{Addr: addr, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// mutate runs n random auto-commit statements against the primary:
// inserts, updates and deletes over a small key space so history has
// real churn.
func mutate(t *testing.T, db *engine.DB, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := rng.Intn(64)
		var q string
		switch rng.Intn(4) {
		case 0:
			q = fmt.Sprintf(`DELETE x FROM x IN KV WHERE x.K = %d`, k)
		case 1:
			q = fmt.Sprintf(`UPDATE x IN KV SET V = %d WHERE x.K = %d`, rng.Intn(1000), k)
		default:
			q = fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, k, rng.Intn(1000))
		}
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("workload %q: %v", q, err)
		}
	}
}

// dump renders KV's full ordered contents; asof 0 reads the present.
func dump(t *testing.T, db *engine.DB, asof int64) string {
	t.Helper()
	q := `SELECT x.K, x.V FROM x IN KV ORDER BY x.K, x.V`
	if asof != 0 {
		q = fmt.Sprintf(`SELECT x.K, x.V FROM x IN KV ASOF %d ORDER BY x.K, x.V`, asof)
	}
	tab, _, err := db.Query(q)
	if err != nil {
		t.Fatalf("dump (asof %d): %v", asof, err)
	}
	var sb strings.Builder
	for _, tup := range tab.Tuples {
		sb.WriteString(tup.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// catchUp waits until the follower has applied everything the primary
// has logged so far.
func catchUp(t *testing.T, primary *engine.DB, f *repl.Follower) {
	t.Helper()
	end := primary.Log().End()
	if err := f.WaitApplied(end, 15*time.Second); err != nil {
		t.Fatalf("follower never caught up to %d: %v", end, err)
	}
}

// compareFrozen checks the chaos matrix's core oracle: with the
// follower's stream stopped (so its horizon cannot move), its reads
// must equal the primary's ASOF reads at the follower's visible
// timestamp.
func compareFrozen(t *testing.T, label string, primary *engine.DB, fdb *engine.DB) {
	t.Helper()
	ts := fdb.ReplCounters().VisibleTS.Load()
	if ts == 0 {
		return // nothing replicated yet: nothing to compare
	}
	got := dump(t, fdb, 0)
	want := dump(t, primary, ts)
	if got != want {
		t.Fatalf("%s: follower diverged from primary ASOF %d\n got:\n%s\nwant:\n%s",
			label, ts, got, want)
	}
}

// noPins asserts zero pinned buffer pages, waiting briefly for
// in-flight teardowns to release theirs.
func noPins(t *testing.T, label string, db *engine.DB) {
	t.Helper()
	waitFor(t, label+": pins released", func() bool { return db.Pool().PinnedCount() == 0 })
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// chopProxy sits between follower and primary and tears the
// server-to-client stream mid-byte: each of the first len(budgets)
// connections is cut after forwarding its budget of shipped bytes
// (tearing frames at arbitrary offsets), later connections forward
// untouched so the test converges.
type chopProxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	budgets []int64
	conns   map[net.Conn]struct{}
	closed  bool
	cuts    int

	wg sync.WaitGroup
}

func startChop(t *testing.T, target string, budgets []int64) *chopProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chopProxy{ln: ln, target: target, budgets: budgets, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *chopProxy) Addr() string { return p.ln.Addr().String() }

func (p *chopProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Cuts reports how many connections were torn.
func (p *chopProxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

func (p *chopProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *chopProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *chopProxy) accept() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		var budget int64 = -1
		if len(p.budgets) > 0 {
			budget = p.budgets[0]
			p.budgets = p.budgets[1:]
			p.cuts++
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(cli, budget)
	}
}

func (p *chopProxy) pipe(cli net.Conn, budget int64) {
	defer p.wg.Done()
	srv, err := net.Dial("tcp", p.target)
	if err != nil {
		cli.Close()
		return
	}
	if !p.track(cli) || !p.track(srv) {
		cli.Close()
		srv.Close()
		return
	}
	defer p.untrack(cli)
	defer p.untrack(srv)
	done := make(chan struct{}, 2)
	go func() { // client -> server: requests pass untouched
		io.Copy(srv, cli)
		done <- struct{}{}
	}()
	go func() { // server -> client: bounded by the chaos budget
		if budget < 0 {
			io.Copy(cli, srv)
		} else {
			io.CopyN(cli, srv, budget)
		}
		done <- struct{}{}
	}()
	<-done // either direction ending (budget hit, peer gone) kills both
}
