package corruptsim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/crashsim"
	"repro/internal/dberr"
	"repro/internal/doctor"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/page"
)

// The corruption matrix: ≥200 seeded fault points across four fault
// kinds and several timings, all asserting the same contract — a
// fault may cost availability (typed errors) or reported data loss,
// but NEVER a silently wrong answer. With a WAL, recovery or
// aimdoctor must restore full oracle equality.

const matrixSeed = 0xA1D2

func pointsPerCell(t *testing.T) int {
	if testing.Short() {
		return 3
	}
	return 25
}

// buildTemplate materializes the seeded workload into dir and closes
// the database, leaving durable files to corrupt.
func buildTemplate(t *testing.T, dir string, w *crashsim.Workload, disableWAL bool) {
	t.Helper()
	db, err := engine.Open(engine.Options{Dir: dir, DisableWAL: disableWAL})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range append(append([]string{}, w.Setup...), w.Stmts...) {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("workload: %v\n%s", err, stmt)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// replay executes statements on a fresh in-memory engine: the oracle.
func replay(t *testing.T, stmts ...[]string) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range stmts {
		for _, stmt := range group {
			if _, err := db.Exec(stmt); err != nil {
				t.Fatalf("oracle: %v\n%s", err, stmt)
			}
		}
	}
	return db
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func rowsOf(db *engine.DB, tbl *catalog.Table) (*model.Table, error) {
	out := &model.Table{Ordered: tbl.Type.Ordered}
	err := db.ScanTable(tbl, 0, func(_ page.TID, tup model.Tuple) error {
		out.Tuples = append(out.Tuples, tup.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// typedFailure reports whether err is a loud, classified corruption
// outcome (the only acceptable kind of failure).
func typedFailure(err error) bool {
	return errors.Is(err, engine.ErrQuarantined) || dberr.IsCorrupt(err)
}

// checkNoSilentWrongAnswers scans every table: each scan must either
// fail with a typed corruption error (loud, contained) or return
// exactly the oracle's rows. Returns how many tables failed loudly.
func checkNoSilentWrongAnswers(t *testing.T, ctx string, db, orc *engine.DB) int {
	t.Helper()
	loud := 0
	for _, wt := range orc.Catalog().Tables() {
		gt, ok := db.Catalog().Table(wt.Name)
		if !ok {
			t.Fatalf("%s: table %s missing from catalog", ctx, wt.Name)
		}
		got, err := rowsOf(db, gt)
		if err != nil {
			if !typedFailure(err) {
				t.Fatalf("%s: scan %s failed with untyped error: %v", ctx, wt.Name, err)
			}
			loud++
			continue
		}
		want, err := rowsOf(orc, wt)
		if err != nil {
			t.Fatalf("oracle scan %s: %v", wt.Name, err)
		}
		if !model.TableEqual(got, want) {
			t.Fatalf("%s: SILENT WRONG ANSWER on %s: got %d rows, oracle %d",
				ctx, wt.Name, len(got.Tuples), len(want.Tuples))
		}
	}
	return loud
}

// multisetSubset reports whether every tuple of got matches a
// distinct tuple of want.
func multisetSubset(got, want *model.Table) bool {
	used := make([]bool, len(want.Tuples))
	for _, g := range got.Tuples {
		found := false
		for i, w := range want.Tuples {
			if !used[i] && model.TupleEqual(g, w) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestCorruptionMatrix(t *testing.T) {
	per := pointsPerCell(t)
	w := crashsim.NewWorkload(1, 50)
	orc := replay(t, w.Setup, w.Stmts)
	defer orc.Close()

	walTpl := t.TempDir()
	buildTemplate(t, walTpl, w, false)
	rawTpl := t.TempDir()
	buildTemplate(t, rawTpl, w, true)

	points := 0

	// Cell A — at-rest rot, WAL present: recovery at open must rebuild
	// the damaged pages exactly; the reopened database equals the
	// oracle with no repair tooling involved.
	t.Run("AtRestWithWAL", func(t *testing.T) {
		for _, kind := range []Kind{BitFlip, ZeroPage} {
			faults, err := Plan(matrixSeed+int64(kind), walTpl, []Kind{kind}, per)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range faults {
				dir := copyDir(t, walTpl)
				if err := Inject(dir, f); err != nil {
					t.Fatalf("%v: %v", f, err)
				}
				db, err := engine.Open(engine.Options{Dir: dir})
				if err != nil {
					t.Fatalf("%v: open after rot: %v", f, err)
				}
				if msg := crashsim.CompareState(db, orc); msg != "" {
					t.Fatalf("%v: recovery did not heal: %s", f, msg)
				}
				db.Close()
				points++
			}
		}
	})

	// Cell B — at-rest rot, no WAL: the rot is permanent. Reads must
	// fail loudly or answer exactly; aimdoctor repair must converge,
	// and any missing row afterwards must be a reported loss.
	t.Run("AtRestNoWAL", func(t *testing.T) {
		for _, kind := range []Kind{BitFlip, ZeroPage} {
			faults, err := Plan(matrixSeed+int64(kind), rawTpl, []Kind{kind}, per)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range faults {
				dir := copyDir(t, rawTpl)
				if err := Inject(dir, f); err != nil {
					t.Fatalf("%v: %v", f, err)
				}
				opts := engine.Options{Dir: dir, DisableWAL: true}
				db, err := engine.Open(opts)
				if err != nil {
					// Catalog/meta rot without a WAL: opening may fail, but
					// it must fail as classified corruption, never garbage.
					if !typedFailure(err) {
						t.Fatalf("%v: open failed untyped: %v", f, err)
					}
					points++
					continue
				}
				checkNoSilentWrongAnswers(t, f.String(), db, orc)
				db.Close()

				rep, err := doctor.Repair(opts)
				if err != nil {
					t.Fatalf("%v: doctor: %v", f, err)
				}
				if !rep.Healthy {
					// Unrepairable without a WAL is acceptable — but only
					// as a reported verdict, which Healthy=false is.
					points++
					continue
				}
				db, err = engine.Open(opts)
				if err != nil {
					t.Fatalf("%v: reopen after repair: %v", f, err)
				}
				lost := false
				for _, wt := range orc.Catalog().Tables() {
					gt, _ := db.Catalog().Table(wt.Name)
					got, err := rowsOf(db, gt)
					if err != nil {
						t.Fatalf("%v: post-repair scan %s: %v", f, wt.Name, err)
					}
					want, _ := rowsOf(orc, wt)
					if !multisetSubset(got, want) {
						t.Fatalf("%v: post-repair %s has rows the oracle never had", f, wt.Name)
					}
					if len(got.Tuples) != len(want.Tuples) {
						lost = true
					}
				}
				if lost && len(rep.Actions) == 0 {
					t.Fatalf("%v: rows lost but repair reported no actions", f)
				}
				db.Close()
				points++
			}
		}
	})

	// Cell C — write-path faults (lost and misdirected writes) under a
	// live engine with WAL: every durable page is armed, the workload
	// runs, and recovery at the next open must still reach exact
	// oracle equality.
	t.Run("WritePathWithWAL", func(t *testing.T) {
		fired := 0
		for _, kind := range []Kind{LostWrite, MisdirectedWrite} {
			for i := 0; i < per; i++ {
				dir := copyDir(t, walTpl)
				extra := crashsim.NewWorkload(matrixSeed+int64(kind)*1000+int64(i), 12)
				counts, err := Pages(dir)
				if err != nil {
					t.Fatal(err)
				}
				d := NewDisk(dir)
				rng := rand.New(rand.NewSource(matrixSeed + int64(i)))
				for id, c := range counts {
					for p := uint32(1); p <= c; p++ {
						f := Fault{Seg: id, Page: p, Kind: kind}
						if kind == MisdirectedWrite && c > 1 {
							f.Target = 1 + uint32(rng.Intn(int(c)))
							if f.Target == p {
								f.Target = 1 + f.Target%c
							}
						} else if kind == MisdirectedWrite {
							continue // nowhere else to land in a 1-page segment
						}
						d.Arm(f)
					}
				}
				db, err := engine.Open(engine.Options{Dir: dir, OpenStore: d.OpenStore})
				if err != nil {
					t.Fatalf("point %v/%d: open: %v", kind, i, err)
				}
				for _, stmt := range extra.Stmts {
					if _, err := db.Exec(stmt); err != nil {
						t.Fatalf("point %v/%d: %v\n%s", kind, i, err, stmt)
					}
				}
				if err := db.Close(); err != nil {
					t.Fatalf("point %v/%d: close: %v", kind, i, err)
				}
				fired += d.FiredCount()

				porc := replay(t, w.Setup, w.Stmts, extra.Stmts)
				db, err = engine.Open(engine.Options{Dir: dir})
				if err != nil {
					t.Fatalf("point %v/%d: reopen: %v", kind, i, err)
				}
				if msg := crashsim.CompareState(db, porc); msg != "" {
					t.Fatalf("point %v/%d: recovery did not mask %d %v faults: %s",
						kind, i, d.FiredCount(), kind, msg)
				}
				db.Close()
				porc.Close()
				points++
			}
		}
		if fired == 0 {
			t.Fatal("no write-path fault ever fired; the cell is vacuous")
		}
		t.Logf("write-path faults fired: %d", fired)
	})

	// Cell D — rot under a live engine (after its open): reads must
	// quarantine the damaged objects while healthy tables keep
	// serving oracle-identical answers; aimdoctor repair (whose open
	// replays the WAL) must then restore full equality.
	t.Run("OnlineRotWithWAL", func(t *testing.T) {
		for _, kind := range []Kind{BitFlip, ZeroPage} {
			faults, err := Plan(matrixSeed+77+int64(kind), walTpl, []Kind{kind}, per)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range faults {
				dir := copyDir(t, walTpl)
				db, err := engine.Open(engine.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				if err := Inject(dir, f); err != nil {
					t.Fatalf("%v: %v", f, err)
				}
				// Force the engine to re-read the rotten durable images.
				db.Pool().InvalidateAll()
				checkNoSilentWrongAnswers(t, "online "+f.String(), db, orc)
				db.Close()

				rep, err := doctor.Repair(engine.Options{Dir: dir})
				if err != nil {
					t.Fatalf("%v: doctor: %v", f, err)
				}
				if !rep.Healthy {
					t.Fatalf("%v: WAL-recoverable rot not repaired: %s", f, doctor.FormatText(rep))
				}
				db, err = engine.Open(engine.Options{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				if msg := crashsim.CompareState(db, orc); msg != "" {
					t.Fatalf("%v: post-repair state diverges: %s", f, msg)
				}
				db.Close()
				points++
			}
		}
	})

	if !testing.Short() && points < 200 {
		t.Fatalf("matrix covered only %d fault points, want >= 200", points)
	}
	t.Logf("matrix covered %d fault points", points)
}

// A quarantined table must not block its healthy neighbours: this is
// the containment contract at matrix scale, checked explicitly on one
// deterministic fault point.
func TestCorruptionContainment(t *testing.T) {
	w := crashsim.NewWorkload(2, 40)
	orc := replay(t, w.Setup, w.Stmts)
	defer orc.Close()
	tpl := t.TempDir()
	buildTemplate(t, tpl, w, false)

	// Rot one page of EMP's segment while the engine is live.
	dir := copyDir(t, tpl)
	db, err := engine.Open(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	emp, _ := db.Catalog().Table("EMP")
	if err := Inject(dir, Fault{Seg: emp.Seg, Page: 1, Kind: BitFlip, Off: 300}); err != nil {
		t.Fatal(err)
	}
	db.Pool().InvalidateAll()

	if _, err := rowsOf(db, emp); !typedFailure(err) {
		t.Fatalf("scan of rotten EMP: want typed corruption failure, got %v", err)
	}
	if len(db.Quarantined()) == 0 {
		t.Fatal("nothing quarantined after corrupt read")
	}
	for _, name := range []string{"DEPT1", "DEPT2", "DEPT3", "HIST"} {
		gt, _ := db.Catalog().Table(name)
		wt, _ := orc.Catalog().Table(name)
		got, err := rowsOf(db, gt)
		if err != nil {
			t.Fatalf("healthy table %s failed during quarantine: %v", name, err)
		}
		want, _ := rowsOf(orc, wt)
		if !model.TableEqual(got, want) {
			t.Fatalf("healthy table %s diverged during quarantine", name)
		}
	}
}

var _ = fmt.Sprint // keep fmt for debug scaffolding in failures
