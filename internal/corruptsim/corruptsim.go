// Package corruptsim injects silent storage corruption — the faults a
// checksum-less DBMS would never notice — into an on-disk database:
//
//   - BitFlip: media rot flips a byte of a durable page image.
//   - ZeroPage: a page reads back as zeroes (unwritten/remapped block).
//   - LostWrite: the device acks a page write and drops it; the page
//     keeps its previous, stale-but-well-formed image.
//   - MisdirectedWrite: a page write lands on the wrong block, so one
//     page is stale and another holds a page sealed for a different
//     identity.
//
// At-rest faults (BitFlip, ZeroPage) are applied directly to segment
// files between runs (Inject). Write-path faults (LostWrite,
// MisdirectedWrite) need a live write to subvert: Disk wraps the
// engine's file stores via engine.Options.OpenStore and fires armed
// faults when the targeted page is written.
//
// The corruption-matrix test drives hundreds of seeded fault points
// through this package and asserts the paper-prototype's robustness
// contract: corruption may cost availability of the damaged object
// (typed errors, repairable loss) but never a silently wrong answer.
package corruptsim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/page"
	"repro/internal/segment"
)

// Kind is a silent-corruption fault kind.
type Kind int

const (
	BitFlip Kind = iota
	ZeroPage
	LostWrite
	MisdirectedWrite
)

func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bit-flip"
	case ZeroPage:
		return "zero-page"
	case LostWrite:
		return "lost-write"
	case MisdirectedWrite:
		return "misdirected-write"
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Fault is one fault point: a kind aimed at one durable page.
type Fault struct {
	Seg  segment.ID
	Page uint32
	Kind Kind
	// Off is the in-page byte offset a BitFlip corrupts.
	Off int
	// Target is the page a MisdirectedWrite actually lands on.
	Target uint32
}

func (f Fault) String() string {
	s := fmt.Sprintf("%v@%d.%d", f.Kind, f.Seg, f.Page)
	switch f.Kind {
	case BitFlip:
		s += "+" + strconv.Itoa(f.Off)
	case MisdirectedWrite:
		s += "->" + strconv.Itoa(int(f.Target))
	}
	return s
}

func segPath(dir string, id segment.ID) string {
	return filepath.Join(dir, fmt.Sprintf("seg_%d.dat", id))
}

// Pages enumerates the segments of the database under dir and their
// durable page counts.
func Pages(dir string) (map[segment.ID]uint32, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[segment.ID]uint32)
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg_") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg_"), ".dat"))
		if err != nil {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		out[segment.ID(id)] = uint32(fi.Size() / page.Size)
	}
	return out, nil
}

// Plan generates n seeded fault points of the given kinds (round
// robin) aimed at existing pages of the database under dir.
func Plan(seed int64, dir string, kinds []Kind, n int) ([]Fault, error) {
	counts, err := Pages(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment.ID
	for id, c := range counts {
		if c > 0 {
			segs = append(segs, id)
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("corruptsim: no durable pages under %s", dir)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		id := segs[rng.Intn(len(segs))]
		f := Fault{
			Seg:  id,
			Page: 1 + uint32(rng.Intn(int(counts[id]))),
			Kind: kinds[i%len(kinds)],
			Off:  rng.Intn(page.Size),
		}
		if f.Kind == MisdirectedWrite {
			f.Target = 1 + uint32(rng.Intn(int(counts[id])))
			if f.Target == f.Page { // a self-directed write is no fault
				f.Target = 1 + f.Target%counts[id]
			}
		}
		faults = append(faults, f)
	}
	return faults, nil
}

// Inject applies an at-rest fault (BitFlip or ZeroPage) to the
// durable segment file under dir.
func Inject(dir string, f Fault) error {
	fl, err := os.OpenFile(segPath(dir, f.Seg), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer fl.Close()
	off := int64(f.Page-1) * page.Size
	switch f.Kind {
	case BitFlip:
		b := make([]byte, 1)
		if _, err := fl.ReadAt(b, off+int64(f.Off)); err != nil {
			return err
		}
		b[0] ^= 0xFF
		_, err = fl.WriteAt(b, off+int64(f.Off))
		return err
	case ZeroPage:
		_, err = fl.WriteAt(make([]byte, page.Size), off)
		return err
	}
	return fmt.Errorf("corruptsim: %v is a write-path fault; arm it on a Disk", f.Kind)
}

// Disk opens the database's segment files with write-path fault
// injection. Wire OpenStore into engine.Options.OpenStore.
type Disk struct {
	dir string

	mu    sync.Mutex
	armed map[[2]uint64][]Fault
	// Fired records the faults that actually subverted a write.
	Fired []Fault
}

// NewDisk wraps the segment files under dir.
func NewDisk(dir string) *Disk {
	return &Disk{dir: dir, armed: make(map[[2]uint64][]Fault)}
}

// Arm schedules a write-path fault: the next WritePage to the
// fault's page fires it (and disarms it).
func (d *Disk) Arm(f Fault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := dkey(f.Seg, f.Page)
	d.armed[k] = append(d.armed[k], f)
}

// FiredCount reports how many armed faults have fired so far.
func (d *Disk) FiredCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.Fired)
}

func dkey(id segment.ID, no uint32) [2]uint64 {
	return [2]uint64{uint64(id), uint64(no)}
}

// OpenStore implements engine.Options.OpenStore.
func (d *Disk) OpenStore(id segment.ID) (segment.Store, error) {
	st, err := segment.OpenFileStore(segPath(d.dir, id))
	if err != nil {
		return nil, err
	}
	return &faultStore{d: d, id: id, Store: st}, nil
}

type faultStore struct {
	segment.Store
	d  *Disk
	id segment.ID
}

// WritePage fires at most one armed fault aimed at (seg, page); the
// rest of the writes pass through untouched.
func (fs *faultStore) WritePage(no uint32, buf []byte) error {
	fs.d.mu.Lock()
	k := dkey(fs.id, no)
	pending := fs.d.armed[k]
	var f Fault
	fire := len(pending) > 0
	if fire {
		f = pending[0]
		if len(pending) == 1 {
			delete(fs.d.armed, k)
		} else {
			fs.d.armed[k] = pending[1:]
		}
		fs.d.Fired = append(fs.d.Fired, f)
	}
	fs.d.mu.Unlock()
	if !fire {
		return fs.Store.WritePage(no, buf)
	}
	switch f.Kind {
	case LostWrite:
		return nil // acked and dropped
	case MisdirectedWrite:
		return fs.Store.WritePage(f.Target, buf)
	default:
		// At-rest kinds armed on a Disk corrupt the image in flight.
		img := make([]byte, len(buf))
		copy(img, buf)
		switch f.Kind {
		case BitFlip:
			img[f.Off%len(img)] ^= 0xFF
		case ZeroPage:
			for i := range img {
				img[i] = 0
			}
		}
		return fs.Store.WritePage(no, img)
	}
}
