package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/aimnet"
	"repro/internal/engine"
	"repro/internal/netproto"
	"repro/internal/netserver"
)

func dialNet(t *testing.T, srv *netserver.Server, o aimnet.Options) *aimnet.Conn {
	t.Helper()
	c, err := aimnet.Dial(srv.Addr(), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestChaosTornFrames drives seeded byte-level corruption at the
// server — truncated frames, lying length prefixes, hostile lengths
// past MaxFrame, raw garbage instead of a handshake — and asserts each
// kills only the offending session: a healthy session keeps working,
// the database never moves off the oracle, and no page stays pinned.
func TestChaosTornFrames(t *testing.T) {
	leakCheck(t)
	db := openKV(t, 20)
	oracle := openKV(t, 20)
	srv := startSrv(t, db, netserver.Options{})
	healthy := dialNet(t, srv, aimnet.Options{})

	n := seedCount(tornFull, 6)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 1))
			attack := rawDial(t, srv.Addr())
			switch rng.Intn(5) {
			case 0: // truncated valid Exec after a good handshake
				attack.handshake(t)
				fb := frameBytes(netproto.TypeExec, (&netproto.Exec{Script: `SELECT x.K FROM x IN KV`}).Encode())
				attack.nc.Write(fb[:1+rng.Intn(len(fb)-1)])
			case 1: // header promising bytes that never arrive
				attack.handshake(t)
				hdr := make([]byte, 5)
				binary.BigEndian.PutUint32(hdr, uint32(2+rng.Intn(1<<16)))
				hdr[4] = netproto.TypeExec
				attack.nc.Write(hdr)
			case 2: // raw garbage instead of a handshake
				junk := make([]byte, 1+rng.Intn(64))
				rng.Read(junk)
				attack.nc.Write(junk)
			case 3: // hostile length prefix beyond MaxFrame
				attack.handshake(t)
				hdr := make([]byte, 5)
				binary.BigEndian.PutUint32(hdr, uint32(netproto.MaxFrame+1+rng.Intn(1000)))
				hdr[4] = netproto.TypeExec
				attack.nc.Write(hdr)
			case 4: // a good statement first, then death mid-frame
				attack.handshake(t)
				ex := &netproto.Exec{Script: `SELECT x.K FROM x IN KV WHERE x.K = 3`}
				if err := attack.write(netproto.TypeExec, ex.Encode()); err != nil {
					t.Fatal(err)
				}
				attack.expect(t, netproto.TypeResults)
				q := &netproto.Query{SQL: `SELECT x.K FROM x IN KV`, Window: 64}
				fb := frameBytes(netproto.TypeQuery, q.Encode())
				attack.nc.Write(fb[:3+rng.Intn(2)])
			}
			attack.nc.Close()

			// Only the attacker dies; the healthy session keeps
			// working and engine matches oracle exactly.
			waitFor(t, "attacker teardown", func() bool { return srv.Stats().SessionsOpen == 1 })
			k := int64(10000 + seed)
			stmt := fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, k, k)
			if _, err := healthy.Exec(context.Background(), stmt); err != nil {
				t.Fatalf("healthy session broken after torn frames: %v", err)
			}
			if _, err := oracle.Exec(stmt); err != nil {
				t.Fatal(err)
			}
			compareKV(t, "after torn frames", db, oracle)
			noPins(t, "after torn frames", db)
		})
	}
}

// TestChaosMidStreamKills severs connections that hold an open
// transaction with write locks while a row stream is parked on flow
// control. Every kill must roll the transaction back, release the
// locks (a healthy session updates the same key with no conflict),
// unpin every page, and leave the engine exactly on the oracle.
func TestChaosMidStreamKills(t *testing.T) {
	leakCheck(t)
	const rows = 400
	db := openKV(t, rows)
	oracle := openKV(t, rows)
	srv := startSrv(t, db, netserver.Options{})
	healthy := dialNet(t, srv, aimnet.Options{})

	n := seedCount(killFull, 6)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 100))
			victim := rawDial(t, srv.Addr())
			victim.handshake(t)
			k := rng.Intn(rows)
			ex := &netproto.Exec{Script: fmt.Sprintf(`BEGIN; UPDATE x IN KV SET V = 999999 WHERE x.K = %d`, k)}
			if err := victim.write(netproto.TypeExec, ex.Encode()); err != nil {
				t.Fatal(err)
			}
			victim.expect(t, netproto.TypeResults)
			window := uint32(1 + rng.Intn(4))
			q := &netproto.Query{SQL: `SELECT x.K, x.V FROM x IN KV`, Window: window}
			if err := victim.write(netproto.TypeQuery, q.Encode()); err != nil {
				t.Fatal(err)
			}
			victim.expect(t, netproto.TypeRowHeader)
			for i := rng.Intn(int(window) + 1); i > 0; i-- {
				victim.expect(t, netproto.TypeRow)
			}
			if rng.Intn(2) == 0 {
				victim.nc.Write([]byte{0xFF, 0xEE}) // parting garbage
			}
			victim.nc.Close()

			waitFor(t, "victim teardown", func() bool { return srv.Stats().SessionsOpen == 1 })
			noPins(t, "after mid-stream kill", db)

			// The killed transaction rolled back: same-key update from
			// a healthy session must not conflict, and both engines
			// converge on the new value.
			stmt := fmt.Sprintf(`UPDATE x IN KV SET V = %d WHERE x.K = %d`, k*10+1, k)
			res, err := healthy.Exec(context.Background(), stmt)
			if errors.Is(err, engine.ErrWriteConflict) {
				t.Fatalf("write lock leaked from killed session: %v", err)
			}
			if err != nil {
				t.Fatal(err)
			}
			if res[0].Count != 1 {
				t.Fatalf("update hit %d rows, want 1", res[0].Count)
			}
			if _, err := oracle.Exec(stmt); err != nil {
				t.Fatal(err)
			}
			compareKV(t, "after mid-stream kill", db, oracle)
		})
	}
	if srv.Stats().Killed == 0 {
		t.Error("no kill was ever counted")
	}
}

// TestChaosStalledReaderParks stalls the flow-control loop: the client
// consumes its window and then grants no more credit. The statement
// deadline must reap the parked stream with a typed deadline error,
// free the execution slot, and leave the session itself usable.
func TestChaosStalledReaderParks(t *testing.T) {
	leakCheck(t)
	db := openKV(t, 200)
	srv := startSrv(t, db, netserver.Options{StmtTimeout: 150 * time.Millisecond})

	n := seedCount(parkFull, 3)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 200))
			rc := rawDial(t, srv.Addr())
			rc.handshake(t)
			window := uint32(1 + rng.Intn(2))
			q := &netproto.Query{SQL: `SELECT x.K FROM x IN KV`, Window: window}
			if err := rc.write(netproto.TypeQuery, q.Encode()); err != nil {
				t.Fatal(err)
			}
			rc.expect(t, netproto.TypeRowHeader)
			for i := uint32(0); i < window; i++ {
				rc.expect(t, netproto.TypeRow)
			}
			// Stall. The server must not hold the slot forever.
			var em *netproto.ErrorMsg
			for em == nil {
				typ, payload, err := rc.read(5 * time.Second)
				if err != nil {
					t.Fatalf("waiting for the stall to be reaped: %v", err)
				}
				switch typ {
				case netproto.TypeRow: // stragglers already in flight
				case netproto.TypeError:
					var derr error
					if em, derr = netproto.DecodeError(payload); derr != nil {
						t.Fatal(derr)
					}
				default:
					t.Fatalf("unexpected frame 0x%02x while stalled", typ)
				}
			}
			if werr := em.DecodeWireError(); !errors.Is(werr, context.DeadlineExceeded) {
				t.Fatalf("stalled stream reaped with %v, want a typed deadline", werr)
			}
			waitFor(t, "slot released", func() bool { return srv.Stats().StmtsInFlight == 0 })
			// The session survives its reaped stream.
			ex := &netproto.Exec{Script: `SELECT x.K FROM x IN KV WHERE x.K = 1`}
			if err := rc.write(netproto.TypeExec, ex.Encode()); err != nil {
				t.Fatal(err)
			}
			rc.expect(t, netproto.TypeResults)
			rc.write(netproto.TypeGoodbye, nil)
			rc.nc.Close()
			waitFor(t, "session gone", func() bool { return srv.Stats().SessionsOpen == 0 })
			noPins(t, "after stalled park", db)
		})
	}
}

// TestChaosStalledReaderSocketFull stalls at the TCP level: the client
// grants a huge window and then never reads, so the server keeps
// writing until the socket buffers fill. The write deadline must sever
// the stalled reader instead of wedging the statement slot forever.
func TestChaosStalledReaderSocketFull(t *testing.T) {
	leakCheck(t)
	db := openKV(t, 0)
	if _, err := db.Exec(`CREATE TABLE DOC (K INT, BODY STRING)`); err != nil {
		t.Fatal(err)
	}
	body := strings.Repeat("x", 2048)
	for i := 0; i < 120; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO DOC VALUES (%d, '%s')`, i, body)); err != nil {
			t.Fatal(err)
		}
	}
	srv := startSrv(t, db, netserver.Options{WriteTimeout: 150 * time.Millisecond})

	n := seedCount(wstallFull, 1)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rc := rawDial(t, srv.Addr())
			rc.handshake(t)
			// ~29 MB of cross-product rows against a silent reader: far
			// beyond any loopback socket buffer.
			q := &netproto.Query{SQL: `SELECT x.K, x.BODY, y.K AS K2 FROM x IN DOC, y IN DOC`, Window: 1 << 20}
			if err := rc.write(netproto.TypeQuery, q.Encode()); err != nil {
				t.Fatal(err)
			}
			killed := srv.Stats().Killed
			waitFor(t, "stalled reader severed", func() bool { return srv.Stats().SessionsOpen == 0 })
			if srv.Stats().Killed <= killed {
				t.Error("sever not counted as a kill")
			}
			noPins(t, "after socket-full stall", db)
		})
	}
}

// TestChaosConnectFloods slams a tiny-capacity server with seeded
// connection bursts. Every connection must either get in or fail with
// the typed ErrOverloaded carrying a retry-after hint — never hang,
// never die silently — and after the burst disperses the server is
// clean: zero sessions, zero pins, data untouched.
func TestChaosConnectFloods(t *testing.T) {
	leakCheck(t)
	db := openKV(t, 10)
	oracle := openKV(t, 10)
	srv := startSrv(t, db, netserver.Options{MaxSessions: 6, RetryAfter: 2 * time.Millisecond})

	n := seedCount(floodFull, 3)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 300))
			flood := 20 + rng.Intn(20)
			retries := make([]int, flood)
			for i := range retries {
				if rng.Intn(2) == 0 {
					retries[i] = -1 // no retries: the shed must surface typed
				} else {
					retries[i] = 2 // jittered backoff honoring the hint
				}
			}
			errs := make([]error, flood)
			var wg sync.WaitGroup
			for i := 0; i < flood; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: retries[i], DialTimeout: 5 * time.Second})
					if err != nil {
						errs[i] = err
						return
					}
					defer c.Close()
					_, errs[i] = c.Exec(context.Background(), `SELECT x.K FROM x IN KV WHERE x.K = 1`)
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("flood hung: a connection neither succeeded nor failed typed")
			}
			okCount := 0
			for i, err := range errs {
				switch {
				case err == nil:
					okCount++
				case errors.Is(err, netproto.ErrOverloaded):
					var se *netproto.ServerError
					if !errors.As(err, &se) || se.RetryAfter == 0 {
						t.Fatalf("conn %d: shed without a retry-after hint: %v", i, err)
					}
				default:
					t.Fatalf("conn %d: shed was not typed: %v", i, err)
				}
			}
			if okCount == 0 {
				t.Fatal("flood starved every connection")
			}
			waitFor(t, "flood dispersed", func() bool { return srv.Stats().SessionsOpen == 0 })
			compareKV(t, "after flood", db, oracle)
			noPins(t, "after flood", db)
		})
	}
	if srv.Stats().ShedSessions == 0 {
		t.Error("no session was ever shed across the flood matrix")
	}
}

// pair is one two-row transaction's keys: committed atomically or not
// at all.
type pair struct{ k1, k2 int64 }

// writerLog partitions one writer's transactions by what the client
// learned: acked must be present, absent must not be, unknown (the
// connection died with COMMIT in flight) may be either — atomically.
type writerLog struct {
	acked   []pair
	absent  []pair
	unknown []pair
}

// refused reports a typed refusal — admission control or drain turned
// the statement away before it ran, or cancellation rolled it back.
func refused(err error) bool {
	return errors.Is(err, netproto.ErrDraining) ||
		errors.Is(err, netproto.ErrOverloaded) ||
		errors.Is(err, context.Canceled)
}

// stepwisePair drives one two-row transaction statement by statement.
// committed reports whether COMMIT reached the wire — only then is the
// outcome unknowable when the connection dies.
func stepwisePair(ctx context.Context, c *aimnet.Conn, p pair) (committed bool, err error) {
	if _, err = c.Exec(ctx, `BEGIN`); err != nil {
		return false, err
	}
	if _, err = c.Exec(ctx, fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, p.k1, p.k1)); err != nil {
		return false, err
	}
	if _, err = c.Exec(ctx, fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, p.k2, p.k2)); err != nil {
		return false, err
	}
	_, err = c.Exec(ctx, `COMMIT`)
	return true, err
}

// runWriter commits two-row transactions until the drain (or a dead
// connection) stops it, logging each pair's fate for the oracle.
func runWriter(t *testing.T, srv *netserver.Server, lg *writerLog, base int64, stepwise bool) {
	c, err := aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: -1})
	if err != nil {
		return // drain won the race to the listener; nothing attempted
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; ; i++ {
		p := pair{base + int64(2*i), base + int64(2*i) + 1}
		var committed bool
		if stepwise {
			committed, err = stepwisePair(ctx, c, p)
		} else {
			committed = true // the script carries its own COMMIT
			_, err = c.Exec(ctx, fmt.Sprintf(
				`BEGIN; INSERT INTO KV VALUES (%d, %d); INSERT INTO KV VALUES (%d, %d); COMMIT`,
				p.k1, p.k1, p.k2, p.k2))
		}
		if err == nil {
			lg.acked = append(lg.acked, p)
			continue
		}
		if refused(err) || !committed {
			lg.absent = append(lg.absent, p)
		} else {
			lg.unknown = append(lg.unknown, p)
		}
		// Chaos must never masquerade as an engine failure.
		if errors.Is(err, engine.ErrWriteConflict) {
			t.Errorf("writer saw a write conflict on disjoint keys: %v", err)
		}
		var pe *engine.PanicError
		if errors.As(err, &pe) {
			t.Errorf("writer saw a recovered panic: %v", err)
		}
		return
	}
}

// replayPair applies one committed transaction to the oracle engine.
func replayPair(t *testing.T, oracle *engine.DB, p pair) {
	t.Helper()
	stmt := fmt.Sprintf(
		`BEGIN; INSERT INTO KV VALUES (%d, %d); INSERT INTO KV VALUES (%d, %d); COMMIT`,
		p.k1, p.k1, p.k2, p.k2)
	if _, err := oracle.Exec(stmt); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
}

// TestChaosDrainRacesCommits races Shutdown against writers committing
// two-row transactions, across drain graces from 15ms (hard-kill path)
// to 1s (everything finishes). Afterward: every acknowledged commit is
// present, every typed refusal absent, every lost-ack commit atomic
// (both rows or neither), and the database equals an oracle replaying
// exactly the surviving transactions.
func TestChaosDrainRacesCommits(t *testing.T) {
	leakCheck(t)
	graces := []time.Duration{15 * time.Millisecond, 50 * time.Millisecond, 300 * time.Millisecond, time.Second}

	n := seedCount(drainFull, 4)
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 400))
			db := openKV(t, 0)
			oracle := openKV(t, 0)
			srv := startSrv(t, db, netserver.Options{RetryAfter: time.Millisecond})

			const writers = 5
			logs := make([]writerLog, writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w, stepwise := w, rng.Intn(2) == 0
				wg.Add(1)
				go func() {
					defer wg.Done()
					runWriter(t, srv, &logs[w], int64(1000*(w+1)), stepwise)
				}()
			}
			time.Sleep(time.Duration(1+rng.Intn(20)) * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), graces[rng.Intn(len(graces))])
			start := time.Now()
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if took := time.Since(start); took > 5*time.Second {
				t.Fatalf("drain took %v, want bounded", took)
			}
			wg.Wait()

			if open := srv.Stats().SessionsOpen; open != 0 {
				t.Fatalf("%d sessions leaked past drain", open)
			}
			noPins(t, "after drain", db)

			// Rebuild the oracle from the acknowledged commits, admit
			// lost-ack commits atomically, and demand exact equality.
			for w := range logs {
				for _, p := range logs[w].acked {
					if !hasKey(t, db, p.k1) || !hasKey(t, db, p.k2) {
						t.Fatalf("writer %d: acked commit (%d,%d) missing after drain", w, p.k1, p.k2)
					}
					replayPair(t, oracle, p)
				}
				for _, p := range logs[w].absent {
					if hasKey(t, db, p.k1) || hasKey(t, db, p.k2) {
						t.Fatalf("writer %d: refused commit (%d,%d) leaked into the database", w, p.k1, p.k2)
					}
				}
				for _, p := range logs[w].unknown {
					h1, h2 := hasKey(t, db, p.k1), hasKey(t, db, p.k2)
					if h1 != h2 {
						t.Fatalf("writer %d: torn transaction (%d,%d): one row without the other", w, p.k1, p.k2)
					}
					if h1 {
						replayPair(t, oracle, p)
					}
				}
			}
			compareKV(t, "after drain race", db, oracle)
		})
	}
}
