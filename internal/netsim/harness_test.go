package netsim

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/netproto"
	"repro/internal/netserver"
)

// Matrix sizing: each seeded subtest is one chaos point. The full
// matrix (what CI's netchaos job runs) must cover at least 150 points;
// -short keeps a smoke slice for the ordinary test run.
const (
	tornFull   = 50
	killFull   = 50
	parkFull   = 20
	wstallFull = 5
	floodFull  = 15
	drainFull  = 20
)

// seedCount picks the matrix width for one cell.
func seedCount(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// TestMatrixCoversBudget pins the acceptance floor: the full matrix is
// at least 150 seeded points.
func TestMatrixCoversBudget(t *testing.T) {
	n := tornFull + killFull + parkFull + wstallFull + floodFull + drainFull
	if n < 150 {
		t.Fatalf("full chaos matrix has %d points, want >= 150", n)
	}
}

// leakCheck snapshots the goroutine count and, at cleanup time (after
// the server shutdown cleanups registered later have run), verifies it
// settled back. Register it BEFORE starting servers: cleanups run LIFO.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at start, %d after teardown\n%s",
			base, runtime.NumGoroutine(), buf[:n])
	})
}

// openKV opens an in-memory engine with KV(K INT, V INT) seeded with
// rows (K=i, V=i*10).
func openKV(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE KV (K INT, V INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// startSrv boots a server over db on a loopback port and registers a
// shutdown cleanup.
func startSrv(t *testing.T, db *engine.DB, opts netserver.Options) *netserver.Server {
	t.Helper()
	srv := netserver.New(db, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// kvDump renders the full ordered contents of KV for oracle comparison.
func kvDump(t *testing.T, db *engine.DB) string {
	t.Helper()
	tab, _, err := db.Query(`SELECT x.K, x.V FROM x IN KV ORDER BY x.K`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tup := range tab.Tuples {
		sb.WriteString(tup.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// compareKV asserts engine-vs-oracle equality on the full KV contents.
func compareKV(t *testing.T, label string, db, oracle *engine.DB) {
	t.Helper()
	got, want := kvDump(t, db), kvDump(t, oracle)
	if got != want {
		t.Fatalf("%s: engine diverged from oracle\n got:\n%s\nwant:\n%s", label, got, want)
	}
}

// hasKey reports whether KV holds a row with the given key.
func hasKey(t *testing.T, db *engine.DB, k int64) bool {
	t.Helper()
	tab, _, err := db.Query(fmt.Sprintf(`SELECT x.K FROM x IN KV WHERE x.K = %d`, k))
	if err != nil {
		t.Fatal(err)
	}
	return tab.Len() > 0
}

// noPins asserts zero pinned buffer pages, waiting briefly for in-
// flight teardowns to release theirs.
func noPins(t *testing.T, label string, db *engine.DB) {
	t.Helper()
	waitFor(t, label+": pins released", func() bool { return db.Pool().PinnedCount() == 0 })
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// raw is a frame-level client used where chaos needs byte control the
// aimnet package would never allow.
type raw struct {
	nc net.Conn
	br *bufio.Reader
}

func rawDial(t *testing.T, addr string) *raw {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := &raw{nc: nc, br: bufio.NewReader(nc)}
	t.Cleanup(func() { nc.Close() })
	return r
}

// handshake performs the Hello exchange; chaos cells that corrupt the
// handshake itself write bytes directly instead.
func (r *raw) handshake(t *testing.T) {
	t.Helper()
	hello := &netproto.Hello{Version: netproto.Version, Client: "netsim"}
	if err := netproto.WriteFrame(r.nc, netproto.TypeHello, hello.Encode()); err != nil {
		t.Fatalf("handshake write: %v", err)
	}
	typ, _, err := r.read(3 * time.Second)
	if err != nil || typ != netproto.TypeHelloOK {
		t.Fatalf("handshake: typ=0x%02x err=%v", typ, err)
	}
}

func (r *raw) write(typ byte, payload []byte) error {
	return netproto.WriteFrame(r.nc, typ, payload)
}

// read returns the next frame, bounded by a deadline so a server bug
// can never hang the harness.
func (r *raw) read(timeout time.Duration) (byte, []byte, error) {
	r.nc.SetReadDeadline(time.Now().Add(timeout))
	return netproto.ReadFrame(r.br)
}

// expect reads one frame and asserts its type.
func (r *raw) expect(t *testing.T, want byte) []byte {
	t.Helper()
	typ, payload, err := r.read(5 * time.Second)
	if err != nil {
		t.Fatalf("expecting frame 0x%02x: %v", want, err)
	}
	if typ != want {
		if typ == netproto.TypeError {
			if em, derr := netproto.DecodeError(payload); derr == nil {
				t.Fatalf("expecting frame 0x%02x, got error: %v", want, em.DecodeWireError())
			}
		}
		t.Fatalf("expecting frame 0x%02x, got 0x%02x", want, typ)
	}
	return payload
}

// frameBytes renders one complete frame to raw bytes so chaos cells
// can tear it at arbitrary offsets.
func frameBytes(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	netproto.WriteFrame(&buf, typ, payload)
	return buf.Bytes()
}
