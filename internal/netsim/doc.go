// Package netsim is the socket-level chaos harness for the network
// front end. Its test matrix drives seeded disruptions against a live
// aimserver — torn and truncated frames, mid-stream connection kills,
// stalled readers, connect floods, graceful drain racing committing
// writers — and after every disruption asserts the full robustness
// contract:
//
//   - engine-vs-oracle equality: the surviving database contents match
//     an oracle engine replaying exactly the acknowledged commits
//     (plus, atomically, any commit whose ack was lost in the chaos);
//   - zero pinned buffer pages on every teardown path;
//   - zero leaked sessions and goroutines once the dust settles;
//   - overload sheds are always the typed ErrOverloaded with a
//     retry-after hint — never a hang, never a silent drop.
//
// The package holds no production code; it exists so `go test
// ./internal/netsim/ -race` is the single entry point CI's netchaos
// job runs.
package netsim
