package sql

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func mustSelect(t *testing.T, q string) *Select {
	t.Helper()
	st, err := ParseOne(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("parse %q: got %T", q, st)
	}
	return sel
}

// The paper's Example 1 (shorthand form).
func TestParseExample1(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM x IN DEPARTMENTS`)
	if !sel.Star || len(sel.From) != 1 || sel.From[0].Var != "x" || sel.From[0].Source.Table != "DEPARTMENTS" {
		t.Errorf("unexpected AST: %+v", sel)
	}
	sel = mustSelect(t, `SELECT x.DNO, x.MGRNO, x.PROJECTS, x.BUDGET, x.EQUIP FROM x IN DEPARTMENTS`)
	if len(sel.Items) != 5 {
		t.Errorf("items = %d", len(sel.Items))
	}
	if sel.Items[2].ResultName() != "PROJECTS" {
		t.Errorf("item 2 name = %s", sel.Items[2].ResultName())
	}
}

// Fig 2: explicit result structure with nested selects.
func TestParseFig2(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS`)
	if len(sel.Items) != 5 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	proj := sel.Items[2]
	if proj.Name != "PROJECTS" || proj.Sub == nil {
		t.Fatalf("item 2 not a nested constructor: %+v", proj)
	}
	mem := proj.Sub.Items[2]
	if mem.Name != "MEMBERS" || mem.Sub == nil {
		t.Fatalf("nested MEMBERS constructor missing")
	}
	if src := proj.Sub.From[0].Source; src.Path == nil || src.Path.String() != "x.PROJECTS" {
		t.Errorf("nested FROM source = %+v", src)
	}
}

// Fig 3: nest — building Table 5 from Tables 1-4.
func TestParseFig3(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS_1NF
                                     WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                   FROM y IN PROJECTS_1NF
                   WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS_1NF`)
	if sel.Items[2].Sub.Where == nil {
		t.Error("nested WHERE lost")
	}
}

// Example 4: unnest with projection.
func TestParseExample4(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[2].Source.Path.String() != "y.MEMBERS" {
		t.Errorf("third source = %v", sel.From[2].Source.Path)
	}
}

// Example 5: EXISTS.
func TestParseExample5(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`)
	q, ok := sel.Where.(*Quant)
	if !ok || q.All || q.Var != "y" {
		t.Fatalf("where = %#v", sel.Where)
	}
	cmp, ok := q.Cond.(*Binary)
	if !ok || cmp.Op != "=" {
		t.Fatalf("cond = %#v", q.Cond)
	}
}

// Example 6: two chained ALL quantifiers.
func TestParseExample6(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	outer, ok := sel.Where.(*Quant)
	if !ok || !outer.All {
		t.Fatalf("outer = %#v", sel.Where)
	}
	inner, ok := outer.Cond.(*Quant)
	if !ok || !inner.All || inner.Var != "z" {
		t.Fatalf("inner = %#v", outer.Cond)
	}
}

// Example 8: list indexing on an ordered subtable.
func TestParseExample8(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.AUTHORS[1].NAME = 'Jones'`)
	cmp := sel.Where.(*Binary)
	path := cmp.L.(*PathExpr)
	if len(path.Steps) != 3 || path.Steps[1].Index != 1 || path.Steps[2].Name != "NAME" {
		t.Errorf("path = %v", path)
	}
}

// §5 text query: CONTAINS with a mask plus EXISTS over a list.
func TestParseTextQuery(t *testing.T) {
	sel := mustSelect(t, `
SELECT x.REPNO, x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.TITLE CONTAINS '*comput*'
  AND EXISTS y IN x.AUTHORS: y.NAME = 'Jones'`)
	and := sel.Where.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("op = %s", and.Op)
	}
	c := and.L.(*Contains)
	if c.Mask != "*comput*" {
		t.Errorf("mask = %s", c.Mask)
	}
}

// §5 ASOF query.
func TestParseASOF(t *testing.T) {
	sel := mustSelect(t, `
SELECT y.PNO, y.PNAME
FROM x IN DEPARTMENTS ASOF '1984-01-15', y IN x.PROJECTS
WHERE x.DNO = 314`)
	if sel.From[0].AsOf == nil {
		t.Fatal("ASOF lost")
	}
	lit := sel.From[0].AsOf.(*Literal)
	if lit.Val.(model.Str) != "1984-01-15" {
		t.Errorf("asof literal = %v", lit.Val)
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := ParseOne(`
CREATE TABLE DEPARTMENTS (
  DNO INT,
  MGRNO INT,
  PROJECTS TABLE OF (
    PNO INT,
    PNAME STRING,
    MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)
  ),
  BUDGET INT,
  EQUIP TABLE OF (QU INT, TYPE STRING)
) VERSIONED LAYOUT SS3`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "DEPARTMENTS" || !ct.Versioned || ct.Layout != "SS3" {
		t.Errorf("header = %+v", ct)
	}
	if ct.Type.Depth() != 3 {
		t.Errorf("depth = %d", ct.Type.Depth())
	}
	proj, _ := ct.Type.Attr("PROJECTS")
	if proj.Type.Kind != model.KindTable || proj.Type.Table.Ordered {
		t.Errorf("PROJECTS = %+v", proj)
	}
}

func TestParseCreateTableWithList(t *testing.T) {
	st, err := ParseOne(`
CREATE TABLE REPORTS (
  REPNO STRING,
  AUTHORS LIST OF (NAME STRING),
  TITLE STRING,
  DESCRIPTORS TABLE OF (WORD STRING, WEIGHT FLOAT)
)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	a, _ := ct.Type.Attr("AUTHORS")
	if !a.Type.Table.Ordered {
		t.Error("AUTHORS not ordered")
	}
}

func TestParseCreateIndex(t *testing.T) {
	st, err := ParseOne(`CREATE INDEX fn ON DEPARTMENTS (PROJECTS.MEMBERS.FUNCTION) USING HIERARCHICAL`)
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if len(ci.Path) != 3 || ci.Using != "HIERARCHICAL" || ci.Text {
		t.Errorf("index = %+v", ci)
	}
	st, err = ParseOne(`CREATE TEXT INDEX ti ON REPORTS (TITLE)`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*CreateIndex).Text {
		t.Error("text flag lost")
	}
}

func TestParseInsertNested(t *testing.T) {
	st, err := ParseOne(`
INSERT INTO DEPARTMENTS VALUES
 (314, 56194, {(17, 'CGA', {(39582, 'Leader'), (56019, 'Consultant')})}, 320000, {(2, '3278')}),
 (218, 71349, {}, 440000, {})`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 {
		t.Fatalf("rows = %d", len(ins.Rows))
	}
	row := ins.Rows[0].(*TupleLit)
	if len(row.Elems) != 5 {
		t.Fatalf("row arity = %d", len(row.Elems))
	}
	projects := row.Elems[2].(*TableLit)
	if projects.Ordered || len(projects.Rows) != 1 {
		t.Fatalf("projects = %+v", projects)
	}
	members := projects.Rows[0].(*TupleLit).Elems[2].(*TableLit)
	if len(members.Rows) != 2 {
		t.Errorf("members = %d", len(members.Rows))
	}
}

func TestParseInsertOrderedLiteral(t *testing.T) {
	st, err := ParseOne(`INSERT INTO REPORTS VALUES ('0179', <('Jones')>, 'Concurrency', {('Recovery', 0.3)})`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	authors := ins.Rows[0].(*TupleLit).Elems[1].(*TableLit)
	if !authors.Ordered {
		t.Error("authors literal not ordered")
	}
}

func TestParseSubtableInsert(t *testing.T) {
	st, err := ParseOne(`
INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
WHERE y.PNO = 17 VALUES (11111, 'Consultant')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Path == nil || ins.Path.String() != "y.MEMBERS" || len(ins.From) != 2 || ins.Where == nil {
		t.Errorf("insert = %+v", ins)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	st, err := ParseOne(`DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23`)
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*Delete)
	if del.Var != "y" || len(del.From) != 2 {
		t.Errorf("delete = %+v", del)
	}
	st, err = ParseOne(`UPDATE x IN DEPARTMENTS SET BUDGET = 999, MGRNO = 1 WHERE x.DNO = 314`)
	if err != nil {
		t.Fatal(err)
	}
	upd := st.(*Update)
	if len(upd.Set) != 2 || upd.Set[0].Attr != "BUDGET" {
		t.Errorf("update = %+v", upd)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := Parse(`
-- the two 1NF tables
CREATE TABLE A (X INT);
CREATE TABLE B (Y INT);
INSERT INTO A VALUES (1);
SELECT * FROM a IN A;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Errorf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM x DEPARTMENTS`,
		`SELECT x. FROM x IN T`,
		`SELECT * FROM x IN T WHERE EXISTS y IN x.E`,
		`CREATE TABLE T (A INTT)`,
		`CREATE TABLE T (A INT`,
		`INSERT INTO T VALUES (1,`,
		`SELECT * FROM x IN T WHERE x.A = 'unterminated`,
		`SELECT * FROM x IN T WHERE x.AUTHORS[0] = 1`,
		`DELETE FROM x IN T`,
		`UPDATE x SET A = 1`,
	}
	for _, q := range bad {
		if _, err := ParseOne(q); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustSelect(t, `SELECT a.X FROM a IN T WHERE a.X = 1 OR a.Y = 2 AND NOT a.Z = 3`)
	or := sel.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top op = %s", or.Op)
	}
	and := or.R.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("right op = %s", and.Op)
	}
	if _, ok := and.R.(*Unary); !ok {
		t.Fatalf("NOT lost: %#v", and.R)
	}
	// Arithmetic precedence.
	sel = mustSelect(t, `SELECT a.X + a.Y * 2 FROM a IN T`)
	add := sel.Items[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top arith = %s", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatalf("mul = %s", mul.Op)
	}
}

func TestParseOrderBy(t *testing.T) {
	sel := mustSelect(t, `SELECT x.DNO FROM x IN DEPARTMENTS ORDER BY x.BUDGET DESC, x.DNO`)
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustSelect(t, `SELECT DISTINCT x.DNO, COUNT(x.PROJECTS) AS NPROJ FROM x IN DEPARTMENTS`)
	if !sel.Distinct {
		t.Error("distinct lost")
	}
	if _, ok := sel.Items[1].Expr.(*Count); !ok {
		t.Error("count lost")
	}
	if sel.Items[1].Name != "NPROJ" {
		t.Error("alias lost")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
}

func TestParseExplainAlterTName(t *testing.T) {
	st, err := ParseOne(`EXPLAIN SELECT x.A FROM x IN T WHERE x.A = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Explain); !ok {
		t.Fatalf("got %T", st)
	}
	st, err = ParseOne(`ALTER TABLE T ADD SUB.NEWATTR FLOAT`)
	if err != nil {
		t.Fatal(err)
	}
	alter := st.(*AlterTableAdd)
	if alter.Table != "T" || len(alter.Path) != 2 || alter.Type.Kind != model.KindFloat {
		t.Errorf("alter = %+v", alter)
	}
	sel := mustSelect(t, `SELECT TNAME(y) AS R FROM x IN T, y IN x.S`)
	if _, ok := sel.Items[0].Expr.(*TNameOf); !ok {
		t.Fatalf("got %T", sel.Items[0].Expr)
	}
	bad := []string{
		`ALTER TABLE T ADD X TABLE OF (A INT)`,
		`ALTER TABLE T ADD`,
		`EXPLAIN INSERT INTO T VALUES (1)`,
		`SELECT TNAME(x.A) FROM x IN T`,
	}
	for _, q := range bad {
		if _, err := ParseOne(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestParseEmptyOrderedLiteral(t *testing.T) {
	st, err := ParseOne(`INSERT INTO T VALUES (1, <>, {})`)
	if err != nil {
		t.Fatal(err)
	}
	row := st.(*Insert).Rows[0].(*TupleLit)
	if !row.Elems[1].(*TableLit).Ordered || row.Elems[2].(*TableLit).Ordered {
		t.Error("empty literal ordering wrong")
	}
}

// Property: the lexer and parser never panic on arbitrary input.
func TestParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on input %q", input)
				ok = false
			}
		}()
		Parse(input)
		Parse("SELECT " + input)
		Parse("CREATE TABLE T (" + input + ")")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
