package sql

import (
	"strings"
	"testing"
)

// FuzzParser feeds arbitrary input to the statement parser. The
// parser must reject malformed input with an error, never panic, and
// always terminate.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"",
		";",
		"SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.EQUIP: y.TYPE = '3278'",
		`CREATE TABLE DEPT (DNO INT, BUDGET INT,
		   PROJECTS TABLE OF (PNO INT, MEMBERS TABLE OF (MNO INT, ROLE STRING)),
		   EQUIP LIST OF (QU INT, ETYPE STRING)) VERSIONED LAYOUT SS2`,
		"INSERT INTO DEPT VALUES (314, 320000, {(17, {(39582, 'Leader')})}, <(2, '3278'), (1, '3279')>)",
		"INSERT INTO x.PROJECTS FROM x IN DEPT WHERE x.DNO = 314 VALUES (18, {})",
		"DELETE p FROM x IN DEPT, p IN x.PROJECTS WHERE p.PNO = 17",
		"UPDATE x IN DEPT SET BUDGET = BUDGET + 1 WHERE x.DNO = 314",
		"SELECT h.ID FROM h IN HIST ASOF 42",
		"CREATE INDEX DEPT_PNO ON DEPT (PROJECTS.PNO) USING HIERARCHICAL",
		"SELECT e.EQUIP[1].QU FROM e IN DEPT",
		"SELECT x FROM x IN T WHERE ALL y IN x.S: y.A >= 0.5 AND y.B <> 'x'",
		"DROP TABLE DEPT; DROP INDEX DEPT_PNO",
		"SELECT (SELECT m.MNO FROM m IN p.MEMBERS) FROM x IN DEPT, p IN x.PROJECTS",
		"INSERT INTO T VALUES (1, 'a''b', -2.5e3, TRUE, NULL)",
		"SELECT\x00;\"'{<(((",
		strings.Repeat("(", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := Parse(input)
		if err != nil && len(stmts) > 0 {
			t.Errorf("Parse returned both statements and an error: %v", err)
		}
	})
}
