// Package sql implements the generalized SQL-like query language for
// extended NF² tables described in §3 of the paper (and in /PT85,
// PA86/): SELECT-FROM-WHERE generalized so that
//
//   - the SELECT clause can define nested result structures with
//     embedded subqueries (NAME = (SELECT ...));
//   - the FROM clause binds range variables to stored tables or to
//     table-valued attributes of other variables, at any nesting
//     level (y IN x.PROJECTS);
//   - the WHERE clause supports EXISTS and ALL quantifiers over
//     subtables, list indexing (x.AUTHORS[1]), masked text search
//     (CONTAINS '*comput*'), and joins across nesting levels;
//   - FROM items accept ASOF timestamps for time-version queries.
//
// The concrete syntax follows the paper's examples with one
// deviation: quantifier bodies are delimited with a colon
// (EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT') or parentheses, and path
// components are separated with dots, since the paper's layout-based
// notation does not survive linearization.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, idents keep their case
	Pos  int    // byte offset in the input
	Line int    // 1-based line of the token's first byte
	Col  int    // 1-based column (byte-based) within the line
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "IN": true, "AS": true,
	"EXISTS": true, "ALL": true, "AND": true, "OR": true, "NOT": true,
	"CONTAINS": true, "ASOF": true, "TRUE": true, "FALSE": true, "NULL": true,
	"CREATE": true, "DROP": true, "TABLE": true, "LIST": true, "OF": true,
	"ORDERED": true, "VERSIONED": true, "LAYOUT": true, "INDEX": true,
	"TEXT": true, "ON": true, "USING": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "UPDATE": true, "SET": true,
	"INT": true, "FLOAT": true, "STRING": true, "BOOL": true, "TIME": true,
	"DISTINCT": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"COUNT": true, "SHOW": true, "TABLES": true, "DESCRIBE": true,
	"TNAME": true, "PICK": true, "EXPLAIN": true, "ALTER": true, "ADD": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "WORK": true,
}

var symbols = []string{
	"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", "{", "}", "[", "]",
	",", ".", ";", "*", "+", "-", "/", ":", "?",
}

// lineTracker converts byte offsets to 1-based line/column positions.
// Offsets must be requested in non-decreasing order (tokens are
// appended left to right), so the scan over the input is amortized
// linear.
type lineTracker struct {
	input     string
	pos       int // next unscanned byte
	line      int
	lineStart int // byte offset where the current line begins
}

func (lt *lineTracker) at(off int) (line, col int) {
	for lt.pos < off && lt.pos < len(lt.input) {
		if lt.input[lt.pos] == '\n' {
			lt.line++
			lt.lineStart = lt.pos + 1
		}
		lt.pos++
	}
	return lt.line + 1, off - lt.lineStart + 1
}

// Lex splits the input into tokens. Every token carries its byte
// offset and 1-based line/column position, so parse errors can point
// at the offending token.
func Lex(input string) ([]Token, error) {
	var toks []Token
	lt := &lineTracker{input: input}
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentRune(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case unicode.IsDigit(c):
			start := i
			isFloat := false
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			if i+1 < n && input[i] == '.' && unicode.IsDigit(rune(input[i+1])) {
				isFloat = true
				i++
				for i < n && unicode.IsDigit(rune(input[i])) {
					i++
				}
			}
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && unicode.IsDigit(rune(input[j])) {
					isFloat = true
					i = j
					for i < n && unicode.IsDigit(rune(input[i])) {
						i++
					}
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: strings.ReplaceAll(input[start:i], "_", ""), Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				line, col := lt.at(start)
				return nil, fmt.Errorf("sql: unterminated string literal at line %d, column %d", line, col)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(input[i:], s) {
					toks = append(toks, Token{Kind: TokSymbol, Text: s, Pos: i})
					i += len(s)
					matched = true
					break
				}
			}
			if !matched {
				line, col := lt.at(i)
				return nil, fmt.Errorf("sql: unexpected character %q at line %d, column %d", c, line, col)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	for j := range toks {
		toks[j].Line, toks[j].Col = lt.at(toks[j].Pos)
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
