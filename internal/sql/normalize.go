package sql

import (
	"strings"
	"sync/atomic"
)

// statementsParsed counts every statement the parser has built since
// process start. The prepared-statement tests assert it stays flat
// across re-executions of a PreparedStmt — the "zero parser work"
// acceptance check.
var statementsParsed atomic.Uint64

// StatementsParsed returns the process-wide count of parsed
// statements.
func StatementsParsed() uint64 { return statementsParsed.Load() }

// Normalize renders a statement's canonical text from its token
// stream: comments vanish, whitespace collapses to single spaces, and
// keywords are upper-cased (the lexer already did that). Two
// statements that differ only in layout or comments normalize to the
// same string, which is what makes it the plan-cache key.
func Normalize(input string) (string, error) {
	toks, err := Lex(input)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.Kind == TokString {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteByte('\'')
			continue
		}
		b.WriteString(t.Text)
	}
	return b.String(), nil
}
