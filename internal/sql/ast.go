package sql

import (
	"strings"

	"repro/internal/model"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Select is a (possibly nested) query block.
type Select struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr // nil when absent
	OrderBy  []OrderItem
}

func (*Select) stmt() {}

// SelectItem is one entry of the SELECT clause: either an expression
// (with optional alias) or a nested table constructor
// NAME = (SELECT ...), which makes the result attribute table-valued.
type SelectItem struct {
	Name string // alias or constructor name; "" = derived from Expr
	Expr Expr
	Sub  *Select // non-nil for nested constructors
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromItem binds a range variable: var IN source [ASOF literal].
type FromItem struct {
	Var    string
	Source TableRef
	AsOf   Expr // nil when absent
}

// TableRef is a range source: a stored table by name or a
// table-valued path rooted at an outer variable.
type TableRef struct {
	Table string
	Path  *PathExpr
}

// Expr is any scalar or predicate expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val model.Value }

// PathExpr navigates from a range variable through attributes and
// list positions: x.PROJECTS, x.AUTHORS[1].NAME, y.PNO.
type PathExpr struct {
	Var   string
	Steps []PathStep
}

// PathStep is one path component: an attribute name or a 1-based list
// index ([1] selects the first member of an ordered subtable).
type PathStep struct {
	Name  string
	Index int // > 0 for [k] steps
}

// Binary is a binary operation: comparisons (= <> < <= > >=), logic
// (AND OR) and arithmetic (+ - * /).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string
	E  Expr
}

// Quant is a quantified predicate over a subtable:
// EXISTS v IN path: cond   or   ALL v IN path: cond.
type Quant struct {
	All    bool
	Var    string
	Source TableRef
	Cond   Expr
}

// Contains is the masked text-search predicate of §5:
// expr CONTAINS '*comput*'.
type Contains struct {
	Text Expr
	Mask string
}

// Count is the aggregate COUNT(path) over a table-valued expression.
type Count struct{ Arg Expr }

// TNameOf yields the tuple name (§4.3) of the object or subobject a
// range variable is currently bound to, as an opaque token.
type TNameOf struct{ Var string }

// Param is a positional `?` placeholder in a prepared statement. Ord
// is 1-based in order of appearance within the statement; execution
// substitutes the caller's argument values by ordinal.
type Param struct{ Ord int }

func (*Literal) expr()  {}
func (*Param) expr()    {}
func (*PathExpr) expr() {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*Quant) expr()    {}
func (*Contains) expr() {}
func (*Count) expr()    {}
func (*TNameOf) expr()  {}

// ResultName derives the result attribute name of a select item:
// alias if present, else the last path component, else "".
func (it SelectItem) ResultName() string {
	if it.Name != "" {
		return it.Name
	}
	if p, ok := it.Expr.(*PathExpr); ok {
		for i := len(p.Steps) - 1; i >= 0; i-- {
			if p.Steps[i].Name != "" {
				return p.Steps[i].Name
			}
		}
		return p.Var
	}
	return ""
}

// String renders the path like x.PROJECTS[1].PNO.
func (p *PathExpr) String() string {
	var b strings.Builder
	b.WriteString(p.Var)
	for _, s := range p.Steps {
		if s.Name != "" {
			b.WriteByte('.')
			b.WriteString(s.Name)
		} else {
			b.WriteString("[")
			b.WriteString(itoa(s.Index))
			b.WriteString("]")
		}
	}
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

// --- DDL / DML statements --------------------------------------------

// CreateTable defines a new (possibly nested) table.
type CreateTable struct {
	Name      string
	Type      *model.TableType
	Versioned bool
	Layout    string // "", "SS1", "SS2", "SS3"
}

func (*CreateTable) stmt() {}

// DropTable removes a table.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

// CreateIndex defines a value index (with an address strategy) or a
// text index over an attribute path.
type CreateIndex struct {
	Name  string
	Table string
	Path  []string
	Using string // "", "DATA", "ROOT", "HIERARCHICAL"
	Text  bool
}

func (*CreateIndex) stmt() {}

// DropIndex removes an index.
type DropIndex struct{ Name string }

func (*DropIndex) stmt() {}

// Insert adds literal tuples to a stored table, or — when Path is set
// — inserts members into a subtable of selected objects:
//
//	INSERT INTO DEPARTMENTS VALUES (...), (...)
//	INSERT INTO x.PROJECTS FROM x IN DEPARTMENTS WHERE x.DNO = 314
//	    VALUES (99, 'NEW', {})
type Insert struct {
	Table string
	Path  *PathExpr
	From  []FromItem
	Where Expr
	Rows  []Expr // each row is a TupleLit
}

func (*Insert) stmt() {}

// TupleLit is a literal tuple; nested TableLits build NF² values.
type TupleLit struct{ Elems []Expr }

func (*TupleLit) expr() {}

// TableLit is a literal table value: {(..),(..)} or <(..),(..)>.
type TableLit struct {
	Ordered bool
	Rows    []Expr // TupleLits
}

func (*TableLit) expr() {}

// Delete removes tuples of a stored table, or — when Path is set —
// members of a subtable:
//
//	DELETE x FROM x IN DEPARTMENTS WHERE x.DNO = 218
//	DELETE y FROM x IN DEPARTMENTS, y IN x.PROJECTS WHERE y.PNO = 23
type Delete struct {
	Var   string
	From  []FromItem
	Where Expr
}

func (*Delete) stmt() {}

// Update overwrites atomic attributes of selected objects or
// subobjects:
//
//	UPDATE x IN DEPARTMENTS SET BUDGET = 100 WHERE x.DNO = 314
//	UPDATE y FROM x IN DEPARTMENTS, y IN x.PROJECTS SET PNAME = '...'
type Update struct {
	Var   string
	From  []FromItem
	Set   []SetClause
	Where Expr
}

func (*Update) stmt() {}

// SetClause assigns an expression to an atomic attribute.
type SetClause struct {
	Attr string
	Expr Expr
}

// ShowTables lists the catalog.
type ShowTables struct{}

func (*ShowTables) stmt() {}

// Describe shows a table's schema.
type Describe struct{ Name string }

func (*Describe) stmt() {}

// Explain reports the access paths the planner would choose for a
// query, without running it.
type Explain struct{ Sel *Select }

func (*Explain) stmt() {}

// AlterTableAdd appends a new atomic attribute at the end of the
// level addressed by Path (the last component is the new attribute's
// name; earlier components name subtables). Existing tuples read the
// new attribute as null — the schema-evolution facility the paper
// lists under future research ("handling of schema changes", §5).
type AlterTableAdd struct {
	Table string
	Path  []string
	Type  model.Type
}

func (*AlterTableAdd) stmt() {}

// Begin starts a multi-statement transaction: every statement until
// the matching Commit or Rollback runs against one snapshot, and its
// writes become visible to other sessions only at Commit.
type Begin struct{}

func (*Begin) stmt() {}

// Commit ends the current transaction, publishing its writes
// atomically.
type Commit struct{}

func (*Commit) stmt() {}

// Rollback ends the current transaction, discarding its writes.
type Rollback struct{}

func (*Rollback) stmt() {}
