package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks   []Token
	pos    int
	params int // `?` placeholders seen in the current statement
}

// Stmt is one parsed statement together with its source text; the
// engine uses the text to tag statement errors (notably recovered
// panics) with what was being executed. Params counts the `?`
// placeholders the statement contains.
type Stmt struct {
	Statement
	Text   string
	Params int
}

// Parse parses a script of semicolon-separated statements.
func Parse(input string) ([]Statement, error) {
	ss, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	stmts := make([]Statement, len(ss))
	for i, s := range ss {
		stmts[i] = s.Statement
	}
	return stmts, nil
}

// ParseScript parses a script keeping each statement's source text.
func ParseScript(input string) ([]Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []Stmt
	for {
		for p.acceptSym(";") {
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		start := p.peek().Pos
		p.params = 0
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		statementsParsed.Add(1)
		end := p.peek().Pos // the ';' or EOF token after the statement
		stmts = append(stmts, Stmt{Statement: s, Text: strings.TrimSpace(input[start:end]), Params: p.params})
		if !p.acceptSym(";") && p.peek().Kind != TokEOF {
			return nil, p.errorf("expected ';' or end of input, got %s", p.peek())
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(input string) (Statement, error) {
	st, err := ParseOneStmt(input)
	if err != nil {
		return nil, err
	}
	return st.Statement, nil
}

// ParseOneStmt parses exactly one statement, keeping its source text
// and `?` placeholder count (the prepare path needs both).
func ParseOneStmt(input string) (Stmt, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return Stmt{}, err
	}
	if len(stmts) != 1 {
		return Stmt{}, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("sql: parse error at line %d, column %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) acceptSym(s string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errorf("expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement, got %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Sel: sel}, nil
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "DELETE":
		return p.parseDelete()
	case "UPDATE":
		return p.parseUpdate()
	case "SHOW":
		p.next()
		if err := p.expectKw("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTables{}, nil
	case "DESCRIBE":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Describe{Name: name}, nil
	case "ALTER":
		return p.parseAlter()
	case "BEGIN":
		p.next()
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Rollback{}, nil
	}
	return nil, p.errorf("unexpected keyword %s", t.Text)
}

// --- SELECT -----------------------------------------------------------

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	if p.acceptSym("*") {
		sel.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, fi)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// Nested constructor: IDENT = ( SELECT ... )
	if p.peek().Kind == TokIdent && p.peek2().Kind == TokSymbol && p.peek2().Text == "=" {
		save := p.pos
		name := p.next().Text
		p.next() // '='
		if p.acceptSym("(") {
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return SelectItem{}, err
				}
				if err := p.expectSym(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Name: name, Sub: sub}, nil
			}
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		name, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Name = name
	}
	return item, nil
}

func (p *Parser) parseFromItem() (FromItem, error) {
	v, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	if err := p.expectKw("IN"); err != nil {
		return FromItem{}, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Var: v, Source: ref}
	if p.acceptKw("ASOF") {
		e, err := p.parsePrimary()
		if err != nil {
			return FromItem{}, err
		}
		fi.AsOf = e
	}
	return fi, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	if p.peek().Kind == TokSymbol && (p.peek().Text == "." || p.peek().Text == "[") {
		path := &PathExpr{Var: name}
		if err := p.parsePathSteps(path); err != nil {
			return TableRef{}, err
		}
		return TableRef{Path: path}, nil
	}
	return TableRef{Table: name}, nil
}

// --- expressions --------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	// Quantifiers sit at comparison level so they chain naturally:
	// EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: pred
	if t := p.peek(); t.Kind == TokKeyword && (t.Text == "EXISTS" || t.Text == "ALL") {
		return p.parseQuant()
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	if t.Kind == TokKeyword && t.Text == "CONTAINS" {
		p.next()
		m := p.peek()
		if m.Kind != TokString {
			return nil, p.errorf("CONTAINS requires a string mask, got %s", m)
		}
		p.next()
		return &Contains{Text: l, Mask: m.Text}, nil
	}
	return l, nil
}

func (p *Parser) parseQuant() (Expr, error) {
	all := p.peek().Text == "ALL"
	p.next()
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("IN"); err != nil {
		return nil, err
	}
	src, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q := &Quant{All: all, Var: v, Source: src}
	// Body: another quantifier directly, ':' expr, or '(' expr ')'.
	switch {
	case p.peek().Kind == TokKeyword && (p.peek().Text == "EXISTS" || p.peek().Text == "ALL"):
		body, err := p.parseQuant()
		if err != nil {
			return nil, err
		}
		q.Cond = body
	case p.acceptSym(":"):
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Cond = body
	case p.acceptSym("("):
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		q.Cond = body
	default:
		return nil, p.errorf("expected ':', '(' or nested quantifier after %s %s IN ...", map[bool]string{true: "ALL", false: "EXISTS"}[all], v)
	}
	return q, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s", t.Text)
		}
		return &Literal{Val: model.Int(i)}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float %s", t.Text)
		}
		return &Literal{Val: model.Float(f)}, nil
	case TokString:
		p.next()
		return &Literal{Val: model.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Val: model.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: model.Bool(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: model.Null{}}, nil
		case "COUNT":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &Count{Arg: arg}, nil
		case "TNAME":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &TNameOf{Var: v}, nil
		}
	case TokIdent:
		name := p.next().Text
		path := &PathExpr{Var: name}
		if err := p.parsePathSteps(path); err != nil {
			return nil, err
		}
		return path, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.next()
			p.params++
			return &Param{Ord: p.params}, nil
		}
	}
	return nil, p.errorf("expected expression, got %s", t)
}

func (p *Parser) parsePathSteps(path *PathExpr) error {
	for {
		switch {
		case p.acceptSym("."):
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			path.Steps = append(path.Steps, PathStep{Name: name})
		case p.peek().Kind == TokSymbol && p.peek().Text == "[":
			p.next()
			t := p.peek()
			if t.Kind != TokInt {
				return p.errorf("expected list index, got %s", t)
			}
			p.next()
			i, err := strconv.Atoi(t.Text)
			if err != nil || i < 1 {
				return p.errorf("list index must be a positive integer, got %s", t.Text)
			}
			if err := p.expectSym("]"); err != nil {
				return err
			}
			path.Steps = append(path.Steps, PathStep{Index: i})
		default:
			return nil
		}
	}
}

// --- DDL ---------------------------------------------------------------

func (p *Parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.acceptKw("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tt, err := p.parseTableTypeBody(false)
		if err != nil {
			return nil, err
		}
		ct := &CreateTable{Name: name, Type: tt}
		for {
			switch {
			case p.acceptKw("VERSIONED"):
				ct.Versioned = true
			case p.acceptKw("LAYOUT"):
				l, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ct.Layout = l
			default:
				return ct, nil
			}
		}
	case p.acceptKw("TEXT"):
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndexTail(true)
	case p.acceptKw("INDEX"):
		return p.parseCreateIndexTail(false)
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

// parseTableTypeBody parses '(' attrdefs ')' where each attrdef is
// NAME atomictype | NAME TABLE OF (...) | NAME LIST OF (...).
func (p *Parser) parseTableTypeBody(ordered bool) (*model.TableType, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var attrs []model.Attr
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		var attr model.Attr
		switch {
		case t.Kind == TokKeyword && t.Text == "INT":
			p.next()
			attr = model.Attr{Name: name, Type: model.AtomicType(model.KindInt)}
		case t.Kind == TokKeyword && t.Text == "FLOAT":
			p.next()
			attr = model.Attr{Name: name, Type: model.AtomicType(model.KindFloat)}
		case t.Kind == TokKeyword && t.Text == "STRING":
			p.next()
			attr = model.Attr{Name: name, Type: model.AtomicType(model.KindString)}
		case t.Kind == TokKeyword && t.Text == "BOOL":
			p.next()
			attr = model.Attr{Name: name, Type: model.AtomicType(model.KindBool)}
		case t.Kind == TokKeyword && t.Text == "TIME":
			p.next()
			attr = model.Attr{Name: name, Type: model.AtomicType(model.KindTime)}
		case t.Kind == TokKeyword && t.Text == "TABLE":
			p.next()
			if err := p.expectKw("OF"); err != nil {
				return nil, err
			}
			sub, err := p.parseTableTypeBody(false)
			if err != nil {
				return nil, err
			}
			attr = model.Attr{Name: name, Type: model.Type{Kind: model.KindTable, Table: sub}}
		case t.Kind == TokKeyword && t.Text == "LIST":
			p.next()
			if err := p.expectKw("OF"); err != nil {
				return nil, err
			}
			sub, err := p.parseTableTypeBody(true)
			if err != nil {
				return nil, err
			}
			attr = model.Attr{Name: name, Type: model.Type{Kind: model.KindTable, Table: sub}}
		default:
			return nil, p.errorf("expected attribute type, got %s", t)
		}
		attrs = append(attrs, attr)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return model.NewTableType(ordered, attrs...)
}

func (p *Parser) parseCreateIndexTail(text bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var path []string
	for {
		comp, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		path = append(path, comp)
		if !p.acceptSym(".") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table, Path: path, Text: text}
	if p.acceptKw("USING") {
		u, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci.Using = u
	}
	return ci, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.acceptKw("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKw("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	}
	return nil, p.errorf("expected TABLE or INDEX after DROP")
}

// --- DML ---------------------------------------------------------------

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	ins := &Insert{}
	if ref.Path != nil {
		ins.Path = ref.Path
		if err := p.expectKw("FROM"); err != nil {
			return nil, err
		}
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			ins.From = append(ins.From, fi)
			if !p.acceptSym(",") {
				break
			}
		}
		if p.acceptKw("WHERE") {
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ins.Where = w
		}
	} else {
		ins.Table = ref.Table
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseTupleLit()
		if err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseTupleLit() (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	tl := &TupleLit{}
	if p.acceptSym(")") {
		return tl, nil
	}
	for {
		v, err := p.parseValueLit()
		if err != nil {
			return nil, err
		}
		tl.Elems = append(tl.Elems, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return tl, nil
}

// parseValueLit parses a literal value in INSERT rows: atoms or
// nested table literals ({...} unordered, <...> ordered).
func (p *Parser) parseValueLit() (Expr, error) {
	t := p.peek()
	// "<>" lexes as one token (the inequality operator); in value
	// position it is the empty ordered table literal.
	if t.Kind == TokSymbol && t.Text == "<>" {
		p.next()
		return &TableLit{Ordered: true}, nil
	}
	if t.Kind == TokSymbol && (t.Text == "{" || t.Text == "<") {
		open := t.Text
		close := "}"
		ordered := false
		if open == "<" {
			close = ">"
			ordered = true
		}
		p.next()
		lit := &TableLit{Ordered: ordered}
		if p.acceptSym(close) {
			return lit, nil
		}
		for {
			row, err := p.parseTupleLit()
			if err != nil {
				return nil, err
			}
			lit.Rows = append(lit.Rows, row)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(close); err != nil {
			return nil, err
		}
		return lit, nil
	}
	return p.parseExpr()
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	del := &Delete{Var: v}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		del.From = append(del.From, fi)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &Update{Var: v}
	switch {
	case p.acceptKw("IN"):
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		upd.From = []FromItem{{Var: v, Source: ref}}
	case p.acceptKw("FROM"):
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			upd.From = append(upd.From, fi)
			if !p.acceptSym(",") {
				break
			}
		}
	default:
		return nil, p.errorf("expected IN or FROM after UPDATE %s", v)
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Attr: attr, Expr: e})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

// parseAlter parses ALTER TABLE name ADD path TYPE.
func (p *Parser) parseAlter() (Statement, error) {
	p.next() // ALTER
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ADD"); err != nil {
		return nil, err
	}
	var path []string
	for {
		comp, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		path = append(path, comp)
		if !p.acceptSym(".") {
			break
		}
	}
	t := p.peek()
	var typ model.Type
	switch {
	case t.Kind == TokKeyword && t.Text == "INT":
		typ = model.AtomicType(model.KindInt)
	case t.Kind == TokKeyword && t.Text == "FLOAT":
		typ = model.AtomicType(model.KindFloat)
	case t.Kind == TokKeyword && t.Text == "STRING":
		typ = model.AtomicType(model.KindString)
	case t.Kind == TokKeyword && t.Text == "BOOL":
		typ = model.AtomicType(model.KindBool)
	case t.Kind == TokKeyword && t.Text == "TIME":
		typ = model.AtomicType(model.KindTime)
	default:
		return nil, p.errorf("ALTER TABLE ADD supports atomic types only, got %s", t)
	}
	p.next()
	return &AlterTableAdd{Table: name, Path: path, Type: typ}, nil
}
