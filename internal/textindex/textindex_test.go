package textindex

import (
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/page"
)

func addrN(n int) index.Addr { return index.Addr{TID: page.TID{Page: uint32(n)}} }

func TestTokenize(t *testing.T) {
	got := Tokenize("Minicomputer Performance, for COMPUTATIONAL work-loads (v2)!")
	want := []string{"minicomputer", "performance", "for", "computational", "work", "loads", "v2"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("...")) != 0 {
		t.Error("empty text yields tokens")
	}
}

func TestMatchMask(t *testing.T) {
	cases := []struct {
		mask, word string
		want       bool
	}{
		{"*comput*", "minicomputer", true},
		{"*comput*", "computational", true},
		{"*comput*", "computer", true},
		{"*comput*", "commuter", false},
		{"comput*", "computer", true},
		{"comput*", "minicomputer", false},
		{"*puter", "computer", true},
		{"*puter", "computers", false},
		{"c?mputer", "computer", true},
		{"c?mputer", "cmputer", false},
		{"computer", "computer", true},
		{"computer", "computers", false},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := MatchMask(c.mask, c.word); got != c.want {
			t.Errorf("MatchMask(%q, %q) = %v, want %v", c.mask, c.word, got, c.want)
		}
	}
}

// The §5 example: reports with *comput* in the title.
func TestSearchMasked(t *testing.T) {
	ix := New("ti", "REPORTS", []string{"TITLE"})
	ix.Add("Concurrency and Concurrency Control", addrN(1))
	ix.Add("Minicomputer Performance for Computational Workloads", addrN(2))
	ix.Add("Computer Networks", addrN(3))
	ix.Add("Text Editing and String Search", addrN(4))

	got := ix.Search("*comput*")
	if len(got) != 2 {
		t.Fatalf("*comput* matched %d documents, want 2", len(got))
	}
	pages := map[uint32]bool{}
	for _, a := range got {
		pages[a.TID.Page] = true
	}
	if !pages[2] || !pages[3] {
		t.Errorf("matched %v, want docs 2 and 3", pages)
	}
	// The fragment filter must narrow the vocabulary before
	// verification.
	cands := ix.CandidateWords("*comput*")
	for _, w := range cands {
		t.Logf("candidate: %s", w)
	}
	if len(cands) >= ix.Words() {
		t.Errorf("fragment filter did not narrow: %d candidates of %d words", len(cands), ix.Words())
	}
	// Anchored masks.
	if got := ix.Search("comput*"); len(got) != 2 { // computational, computer
		t.Errorf("comput* matched %d docs", len(got))
	}
	if got := ix.Search("concurrency"); len(got) != 1 {
		t.Errorf("exact word matched %d docs", len(got))
	}
	if got := ix.Search("*zzz*"); len(got) != 0 {
		t.Errorf("absent fragment matched %d docs", len(got))
	}
}

func TestSearchDeduplicatesDocs(t *testing.T) {
	ix := New("ti", "T", []string{"A"})
	ix.Add("computer computing computational", addrN(1))
	if got := ix.Search("*comput*"); len(got) != 1 {
		t.Errorf("multiple matching words in one doc produced %d results", len(got))
	}
}

func TestRemove(t *testing.T) {
	ix := New("ti", "T", []string{"A"})
	ix.Add("alpha beta", addrN(1))
	ix.Add("beta gamma", addrN(2))
	ix.Remove("alpha beta", addrN(1))
	if got := ix.Search("alpha"); len(got) != 0 {
		t.Errorf("alpha still found: %v", got)
	}
	if got := ix.Search("beta"); len(got) != 1 || got[0].TID.Page != 2 {
		t.Errorf("beta = %v", got)
	}
	if ix.Words() != 2 { // beta, gamma
		t.Errorf("vocabulary = %d", ix.Words())
	}
}

func TestHierarchicalAddresses(t *testing.T) {
	a := index.Addr{TID: page.TID{Page: 9}, Path: []page.MiniTID{{Page: 0, Slot: 2}}}
	ix := New("ti", "T", []string{"DESCRIPTORS", "WORD"})
	ix.Add("Recovery", a)
	got := ix.Search("recover*")
	if len(got) != 1 || len(got[0].Path) != 1 {
		t.Fatalf("got %v", got)
	}
}

// Property: Search with a full word mask finds exactly the documents
// whose tokenization contains that word.
func TestSearchQuick(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	f := func(docs [][3]uint8) bool {
		ix := New("q", "T", []string{"A"})
		contains := map[string]map[uint32]bool{}
		for i, d := range docs {
			text := words[d[0]%5] + " " + words[d[1]%5] + " " + words[d[2]%5]
			ix.Add(text, addrN(i+1))
			for _, w := range Tokenize(text) {
				if contains[w] == nil {
					contains[w] = map[uint32]bool{}
				}
				contains[w][uint32(i+1)] = true
			}
		}
		for _, w := range words {
			got := ix.Search(w)
			if len(got) != len(contains[w]) {
				return false
			}
			for _, a := range got {
				if !contains[w][a.TID.Page] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContainsFallback(t *testing.T) {
	if !Contains("Computer Aided Design", "*comput*") {
		t.Error("fallback Contains failed")
	}
	if Contains("Office Automation", "*comput*") {
		t.Error("fallback Contains false positive")
	}
}

func TestShortWordsAndUnselectiveMasks(t *testing.T) {
	ix := New("ti", "T", []string{"A"})
	ix.Add("a ab abc", addrN(1))
	ix.Add("xyz", addrN(2))
	if got := ix.Search("a"); len(got) != 1 {
		t.Errorf("single-letter word = %v", got)
	}
	if got := ix.Search("*a*"); len(got) != 1 {
		t.Errorf("unselective mask = %v", got)
	}
	if got := ix.Search("??"); len(got) != 1 { // "ab"
		t.Errorf("?? mask = %v", got)
	}
}
