// Package textindex implements the word-fragment text index of the
// AIM-II prototype (§5, based on Schek's reference-string indexing
// /Sch78/ and the graph-structured word-fragment index /KW81/). It
// supports masked search operations like
//
//	SELECT ... WHERE x.TITLE CONTAINS '*comput*'
//
// A text attribute's words are decomposed into overlapping fragments
// (trigrams over the word extended with boundary markers). A masked
// pattern is answered by intersecting the fragment posting sets of
// the literal parts of the mask — yielding a small candidate word
// set — then verifying each candidate against the mask and taking the
// union of the surviving words' document postings.
package textindex

import (
	"sort"
	"strings"
	"sync"
	"unicode"

	"repro/internal/index"
	"repro/internal/page"
)

// boundary marks word start/end in fragments, so anchored mask parts
// (prefix/suffix) can use anchored fragments.
const boundary = '\x01'

// Index is a word-fragment text index over one string attribute of a
// table. It is safe for concurrent use: searches take a shared lock,
// Add/Remove an exclusive one.
type Index struct {
	Name  string
	Table string
	Path  []string // attribute path, as for value indexes

	mu sync.RWMutex
	// postings: word -> addresses of the (sub)objects whose attribute
	// value contains the word.
	postings map[string][]index.Addr
	// fragments: trigram -> set of words containing it.
	fragments map[string]map[string]struct{}
}

// New creates an empty text index.
func New(name, table string, path []string) *Index {
	return &Index{
		Name:      name,
		Table:     table,
		Path:      path,
		postings:  make(map[string][]index.Addr),
		fragments: make(map[string]map[string]struct{}),
	}
}

// Words returns the vocabulary size.
func (ix *Index) Words() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Walk visits every posting list in sorted word order; the scrubber
// uses it to compare a live index against a freshly built shadow. The
// callback must not retain or mutate addrs, and must not mutate the
// index (it runs under the shared lock).
func (ix *Index) Walk(fn func(word string, addrs []index.Addr)) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	words := make([]string, 0, len(ix.postings))
	for w := range ix.postings {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fn(w, ix.postings[w])
	}
}

// Fragments returns the number of distinct fragments.
func (ix *Index) Fragments() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.fragments)
}

// Tokenize splits a text into lowercase words (letter/digit runs).
func Tokenize(text string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return words
}

// fragmentsOf returns the trigrams of the word extended with boundary
// markers: "pc" -> ␂pc, pc␃ (as trigrams over \x01pc\x01).
func fragmentsOf(word string) []string {
	ext := string(boundary) + word + string(boundary)
	runes := []rune(ext)
	if len(runes) < 3 {
		return []string{ext}
	}
	frags := make([]string, 0, len(runes)-2)
	for i := 0; i+3 <= len(runes); i++ {
		frags = append(frags, string(runes[i:i+3]))
	}
	return frags
}

// Add indexes the text under the given address.
func (ix *Index) Add(text string, addr index.Addr) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	seen := map[string]bool{}
	for _, w := range Tokenize(text) {
		if seen[w] {
			continue
		}
		seen[w] = true
		if _, known := ix.postings[w]; !known {
			for _, f := range fragmentsOf(w) {
				set := ix.fragments[f]
				if set == nil {
					set = make(map[string]struct{})
					ix.fragments[f] = set
				}
				set[w] = struct{}{}
			}
		}
		ix.postings[w] = append(ix.postings[w], addr)
	}
}

// Remove withdraws the text's contribution under the address.
func (ix *Index) Remove(text string, addr index.Addr) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	seen := map[string]bool{}
	for _, w := range Tokenize(text) {
		if seen[w] {
			continue
		}
		seen[w] = true
		post := ix.postings[w]
		for i, a := range post {
			if a.Equal(addr) {
				post = append(post[:i], post[i+1:]...)
				break
			}
		}
		if len(post) == 0 {
			delete(ix.postings, w)
			for _, f := range fragmentsOf(w) {
				if set := ix.fragments[f]; set != nil {
					delete(set, w)
					if len(set) == 0 {
						delete(ix.fragments, f)
					}
				}
			}
		} else {
			ix.postings[w] = post
		}
	}
}

// MatchMask reports whether the word matches the mask, where '*'
// matches any (possibly empty) run and '?' any single character.
// Masks are matched case-insensitively against lowercase words.
func MatchMask(mask, word string) bool {
	return matchRunes([]rune(strings.ToLower(mask)), []rune(word))
}

func matchRunes(mask, word []rune) bool {
	if len(mask) == 0 {
		return len(word) == 0
	}
	switch mask[0] {
	case '*':
		for i := 0; i <= len(word); i++ {
			if matchRunes(mask[1:], word[i:]) {
				return true
			}
		}
		return false
	case '?':
		return len(word) > 0 && matchRunes(mask[1:], word[1:])
	default:
		return len(word) > 0 && word[0] == mask[0] && matchRunes(mask[1:], word[1:])
	}
}

// CandidateWords returns the vocabulary words that survive fragment
// filtering for the mask (before verification). Exposed so the
// experiments can report the filter's selectivity.
func (ix *Index) CandidateWords(mask string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.candidateWordsLocked(mask)
}

func (ix *Index) candidateWordsLocked(mask string) []string {
	mask = strings.ToLower(mask)
	// Split the mask at wildcards into literal runs; anchor the first
	// and last runs when the mask does not start/end with '*'.
	type run struct {
		text           string
		atStart, atEnd bool
	}
	var runs []run
	var cur strings.Builder
	start := true
	flush := func(end bool) {
		if cur.Len() > 0 {
			runs = append(runs, run{text: cur.String(), atStart: start, atEnd: end})
			cur.Reset()
		}
		start = false
	}
	for _, r := range mask {
		if r == '*' || r == '?' {
			flush(false)
			continue
		}
		cur.WriteRune(r)
	}
	flush(!strings.HasSuffix(mask, "*") && !strings.HasSuffix(mask, "?"))

	var candidate map[string]struct{}
	intersect := func(set map[string]struct{}) {
		if candidate == nil {
			candidate = make(map[string]struct{}, len(set))
			for w := range set {
				candidate[w] = struct{}{}
			}
			return
		}
		for w := range candidate {
			if _, ok := set[w]; !ok {
				delete(candidate, w)
			}
		}
	}
	usable := false
	for _, r := range runs {
		ext := r.text
		if r.atStart {
			ext = string(boundary) + ext
		}
		if r.atEnd {
			ext = ext + string(boundary)
		}
		rs := []rune(ext)
		for i := 0; i+3 <= len(rs); i++ {
			set := ix.fragments[string(rs[i:i+3])]
			if set == nil {
				return nil // a required fragment is absent: no matches
			}
			intersect(set)
			usable = true
		}
	}
	if !usable {
		// Mask too unselective for fragments (e.g. "*a*"): fall back
		// to the full vocabulary.
		candidate = make(map[string]struct{}, len(ix.postings))
		for w := range ix.postings {
			candidate[w] = struct{}{}
		}
	}
	words := make([]string, 0, len(candidate))
	for w := range candidate {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}

// Search returns the distinct addresses whose indexed text contains a
// word matching the mask. A mask without wildcards is an exact word
// search.
func (ix *Index) Search(mask string) []index.Addr {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []index.Addr
	seen := map[string]bool{}
	addrKey := func(a index.Addr) string {
		k := a.TID.String()
		for _, m := range a.Path {
			k += "/" + m.String()
		}
		return k
	}
	for _, w := range ix.candidateWordsLocked(mask) {
		if !MatchMask(mask, w) {
			continue
		}
		for _, a := range ix.postings[w] {
			if k := addrKey(a); !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Contains is the evaluator's fallback when no text index exists: it
// reports whether any word of the text matches the mask.
func Contains(text, mask string) bool {
	for _, w := range Tokenize(text) {
		if MatchMask(mask, w) {
			return true
		}
	}
	return false
}

// DistinctRoots deduplicates search results to object roots.
func DistinctRoots(addrs []index.Addr) []page.TID { return index.DistinctRoots(addrs) }
