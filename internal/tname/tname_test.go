package tname

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func setup(t *testing.T, layout object.Layout) (*Registry, object.Ref) {
	t.Helper()
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	m := object.NewManager(st, layout)
	tt := testdata.DepartmentsType()
	ref, err := m.Insert(tt, testdata.Departments().Tuples[0]) // dept 314
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(m, tt), ref
}

// TestFig8Names mints the five t-names of Fig 8: U (department 314),
// V (project 17), T (the '56019 Consultant' member), W (the PROJECTS
// subtable) and X (the MEMBERS subtable of project 17).
func TestFig8Names(t *testing.T) {
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		t.Run(layout.String(), func(t *testing.T) {
			reg, ref := setup(t, layout)

			u := ObjectName(ref)
			if !u.IsObject() || u.IsSubtable() {
				t.Fatalf("U = %v", u)
			}
			dept, err := reg.ResolveTuple(u)
			if err != nil {
				t.Fatal(err)
			}
			if dept[0].(model.Int) != 314 {
				t.Errorf("U resolves to %v", dept[0])
			}

			v, err := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 0})
			if err != nil {
				t.Fatal(err)
			}
			if len(v.Path) != 1 { // V = V1·V2: root TID + project data subtuple
				t.Errorf("V path = %d components, want 1", len(v.Path))
			}
			proj, err := reg.ResolveTuple(v)
			if err != nil {
				t.Fatal(err)
			}
			if proj[0].(model.Int) != 17 {
				t.Errorf("V resolves to project %v", proj[0])
			}

			tn, err := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 0}, object.Step{Attr: 2, Pos: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(tn.Path) != 2 { // T = T1·T2·T3
				t.Errorf("T path = %d components, want 2", len(tn.Path))
			}
			member, err := reg.ResolveTuple(tn)
			if err != nil {
				t.Fatal(err)
			}
			if member[0].(model.Int) != 56019 || member[1].(model.Str) != "Consultant" {
				t.Errorf("T resolves to %v", member)
			}

			w, err := reg.SubtableName(ref, 2) // PROJECTS
			if err != nil {
				t.Fatal(err)
			}
			if !w.IsSubtable() {
				t.Fatal("W is not a subtable name")
			}
			projects, err := reg.ResolveSubtable(w)
			if err != nil {
				t.Fatal(err)
			}
			if projects.Len() != 2 {
				t.Errorf("W resolves to %d projects", projects.Len())
			}

			x, err := reg.SubtableName(ref, 2, object.Step{Attr: 2, Pos: 0}) // MEMBERS of project 17
			if err != nil {
				t.Fatal(err)
			}
			members, err := reg.ResolveSubtable(x)
			if err != nil {
				t.Fatal(err)
			}
			if members.Len() != 3 {
				t.Errorf("X resolves to %d members", members.Len())
			}
		})
	}
}

// T-names survive serialization and can be handed to application
// programs (§4.3: "communicate references to database objects to
// application programs for later direct access").
func TestEncodeDecodeRoundTrip(t *testing.T) {
	reg, ref := setup(t, object.SS3)
	names := []Name{ObjectName(ref)}
	v, _ := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 1})
	names = append(names, v)
	w, _ := reg.SubtableName(ref, 4)
	names = append(names, w)
	for _, n := range names {
		token := n.Encode()
		got, err := Decode(token)
		if err != nil {
			t.Fatalf("decode %q: %v", token, err)
		}
		if got.Root != n.Root || got.Subtable != n.Subtable || len(got.Path) != len(n.Path) {
			t.Errorf("round trip: got %v, want %v", got, n)
		}
		for i := range n.Path {
			if got.Path[i] != n.Path[i] {
				t.Errorf("path component %d mismatch", i)
			}
		}
	}
	if _, err := Decode("not base64!!"); err == nil {
		t.Error("garbage token accepted")
	}
}

// T-names stay valid across updates to unrelated parts of the object
// (subtuple addresses are stable).
func TestNamesStableAcrossMutation(t *testing.T) {
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	m := object.NewManager(st, object.SS3)
	tt := testdata.DepartmentsType()
	ref, _ := m.Insert(tt, testdata.Departments().Tuples[0])
	reg := NewRegistry(m, tt)
	tn, err := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 0}, object.Step{Attr: 2, Pos: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: add equipment and a new project.
	if err := m.InsertMember(tt, ref, nil, 4, -1, model.Tuple{model.Int(9), model.Str("3290")}); err != nil {
		t.Fatal(err)
	}
	newProj := model.Tuple{model.Int(99), model.Str("NEW"), model.NewRelation()}
	if err := m.InsertMember(tt, ref, nil, 2, -1, newProj); err != nil {
		t.Fatal(err)
	}
	member, err := reg.ResolveTuple(tn)
	if err != nil {
		t.Fatal(err)
	}
	if member[0].(model.Int) != 56019 {
		t.Errorf("t-name drifted to %v", member)
	}
}

func TestSubtableNameRejectsTupleResolve(t *testing.T) {
	reg, ref := setup(t, object.SS3)
	w, _ := reg.SubtableName(ref, 2)
	if _, err := reg.ResolveTuple(w); err == nil {
		t.Error("subtable t-name resolved as tuple")
	}
	u := ObjectName(ref)
	if _, err := reg.ResolveSubtable(u); err == nil {
		t.Error("object t-name resolved as subtable")
	}
}
