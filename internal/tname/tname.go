// Package tname implements tuple names (§4.3 of the paper): system
// generated keys that identify complex objects, complex and flat
// subobjects, and subtables, for data sharing between hierarchies and
// for handing stable references out to application programs.
//
// T-names reuse the hierarchical address machinery of the indexes
// (§4.2): the t-name of a complex object is the TID of its root MD
// subtuple (U in Fig 8); the t-name of a subobject is the root TID
// plus the Mini TIDs of the data subtuples down to the subobject's
// own data subtuple (V = V1·V2 for project 17, T = T1·T2·T3 for the
// flat '56019 Consultant' member). Subtables get "special" t-names
// that address the subtable rather than a data subtuple (W, X in
// Fig 8) — legal as t-names but not as index addresses, the "minor
// difference between t-names and i-addresses" the paper points out.
package tname

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
)

// Name is a tuple name.
type Name struct {
	// Root is the TID of the complex object's root MD subtuple; the
	// first component of every t-name is a full TID (§4.2).
	Root page.TID
	// Path holds the Mini TIDs of the data subtuples of the complex
	// subobjects from nesting level 1 down to the named subobject.
	// Empty for the whole object.
	Path []page.MiniTID
	// Subtable, when >= 0, names the subtable at that attribute index
	// of the subobject addressed by Path (the special t-name form).
	Subtable int
}

// IsObject reports whether the name addresses a whole complex object.
func (n Name) IsObject() bool { return len(n.Path) == 0 && n.Subtable < 0 }

// IsSubtable reports whether the name addresses a subtable.
func (n Name) IsSubtable() bool { return n.Subtable >= 0 }

// String renders the t-name like the paper's U, V=V1·V2 examples.
func (n Name) String() string {
	s := n.Root.String()
	for _, m := range n.Path {
		s += "·" + m.String()
	}
	if n.Subtable >= 0 {
		s += fmt.Sprintf("·subtable(%d)", n.Subtable)
	}
	return s
}

// Encode serializes the t-name into an opaque token that can be
// communicated to application programs for later direct access.
func (n Name) Encode() string {
	b := page.AppendTID(nil, n.Root)
	b = binary.AppendVarint(b, int64(n.Subtable))
	b = binary.AppendUvarint(b, uint64(len(n.Path)))
	for _, m := range n.Path {
		b = page.AppendMiniTID(b, m)
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// Decode parses a token produced by Encode.
func Decode(token string) (Name, error) {
	b, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return Name{}, fmt.Errorf("tname: bad token: %w", err)
	}
	root, err := page.DecodeTID(b)
	if err != nil {
		return Name{}, err
	}
	b = b[page.EncodedTIDLen:]
	sub, sz := binary.Varint(b)
	if sz <= 0 {
		return Name{}, fmt.Errorf("tname: bad token")
	}
	b = b[sz:]
	np, sz := binary.Uvarint(b)
	if sz <= 0 {
		return Name{}, fmt.Errorf("tname: bad token")
	}
	b = b[sz:]
	n := Name{Root: root, Subtable: int(sub)}
	for i := uint64(0); i < np; i++ {
		m, err := page.DecodeMiniTID(b)
		if err != nil {
			return Name{}, err
		}
		n.Path = append(n.Path, m)
		b = b[page.EncodedMiniTIDLen:]
	}
	return n, nil
}

// Registry mints and resolves t-names against one complex-object
// manager and table type.
type Registry struct {
	m  *object.Manager
	tt *model.TableType
}

// NewRegistry creates a t-name registry for a stored NF² table.
func NewRegistry(m *object.Manager, tt *model.TableType) *Registry {
	return &Registry{m: m, tt: tt}
}

// ObjectName returns the t-name of the whole complex object (U in
// Fig 8): simply the address of its root MD subtuple.
func ObjectName(ref object.Ref) Name { return Name{Root: ref, Subtable: -1} }

// SubobjectName returns the t-name of the (complex or flat) subobject
// addressed by the navigation steps. For a complex subobject the data
// subtuple containing its first-level atomic attribute values
// represents it (V in Fig 8); for a flat subobject the t-name looks
// exactly like an index address for one of its attribute values (T).
func (r *Registry) SubobjectName(ref object.Ref, steps ...object.Step) (Name, error) {
	if len(steps) == 0 {
		return ObjectName(ref), nil
	}
	dpath, err := r.m.DataPathAt(r.tt, ref, steps...)
	if err != nil {
		return Name{}, err
	}
	return Name{Root: ref, Path: dpath, Subtable: -1}, nil
}

// SubtableName returns the special t-name of a subtable: the owning
// subobject's path plus the subtable's attribute index (W and X in
// Fig 8).
func (r *Registry) SubtableName(ref object.Ref, attr int, steps ...object.Step) (Name, error) {
	var dpath []page.MiniTID
	if len(steps) > 0 {
		var err error
		dpath, err = r.m.DataPathAt(r.tt, ref, steps...)
		if err != nil {
			return Name{}, err
		}
	}
	return Name{Root: ref, Path: dpath, Subtable: attr}, nil
}

// ResolveSubtable dereferences a subtable t-name to its table value.
func (r *Registry) ResolveSubtable(n Name) (*model.Table, error) {
	if !n.IsSubtable() {
		return nil, fmt.Errorf("tname: %s does not name a subtable", n)
	}
	var steps []object.Step
	if len(n.Path) > 0 {
		var err error
		steps, err = r.m.FindByDataPath(r.tt, n.Root, n.Path)
		if err != nil {
			return nil, err
		}
	}
	return r.m.ReadSubtable(r.tt, n.Root, n.Subtable, steps...)
}

// ResolveTuple dereferences an object/subobject t-name to its tuple.
func (r *Registry) ResolveTuple(n Name) (model.Tuple, error) {
	if n.IsSubtable() {
		return nil, fmt.Errorf("tname: %s names a subtable, not a tuple", n)
	}
	if n.IsObject() {
		return r.m.Read(r.tt, n.Root)
	}
	steps, err := r.m.FindByDataPath(r.tt, n.Root, n.Path)
	if err != nil {
		return nil, err
	}
	return r.m.ReadSubobject(r.tt, n.Root, steps...)
}
