package netproto

import "fmt"

// Replication frame family. A follower opens a normal session, then
// sends ReplStart with the global WAL offset it wants the stream to
// resume from (its own mirrored log's end). The server answers with an
// unbounded sequence of ReplBatch frames carrying raw committed WAL
// bytes — or, when the requested offset is zero or already recycled
// below the primary's retained chain, with a checkpoint snapshot
// (SnapBegin, SnapPages*, SnapEnd) followed by batches from the
// snapshot's end. The session carries no other statements once
// replication starts; the stream ends only when either side closes or
// the server drains.

// ReplStart asks the server to stream WAL bytes from offset From.
// From = 0 requests a full snapshot bootstrap.
type ReplStart struct {
	From uint64
}

func (m *ReplStart) Encode() []byte {
	var e enc
	e.uvarint(m.From)
	return e.b
}

func DecodeReplStart(p []byte) (*ReplStart, error) {
	d := dec{b: p}
	m := &ReplStart{From: d.uvarint()}
	return m, d.done()
}

// ReplBatch carries raw WAL bytes starting at global offset From.
// DurableEnd is the primary's durable horizon at send time, so a
// follower can compute its lag even from an empty batch — the server
// sends empty batches as heartbeats while the log is idle. From can
// regress below a previous batch's end when the primary truncated its
// tail (statement abort, crash recovery); the follower discards any
// unapplied suffix at or beyond From and re-buffers.
type ReplBatch struct {
	From       uint64
	DurableEnd uint64
	Data       []byte
}

func (m *ReplBatch) Encode() []byte {
	var e enc
	e.uvarint(m.From)
	e.uvarint(m.DurableEnd)
	e.uvarint(uint64(len(m.Data)))
	e.b = append(e.b, m.Data...)
	return e.b
}

func DecodeReplBatch(p []byte) (*ReplBatch, error) {
	d := dec{b: p}
	m := &ReplBatch{From: d.uvarint(), DurableEnd: d.uvarint()}
	n := d.uvarint()
	if d.err == nil {
		if n > uint64(len(d.b)) {
			return nil, fmt.Errorf("netproto: batch length %d exceeds payload", n)
		}
		m.Data = d.b[:n]
		d.b = d.b[n:]
	}
	return m, d.done()
}

// ReplSnapSeg describes one data segment in a snapshot: its id and how
// many pages follow in SnapPages frames.
type ReplSnapSeg struct {
	Seg   uint32
	Pages uint32
}

// ReplSnapBegin opens a checkpoint snapshot. WALBase is the global
// offset of the snapshot's checkpoint tail: the follower seeds its
// mirrored log with the raw tail bytes (shipped in WAL-flagged
// SnapPages frames) at that offset, and batches resume from WALBase
// plus the tail's length (carried in SnapEnd).
type ReplSnapBegin struct {
	WALBase uint64
	Segs    []ReplSnapSeg
}

func (m *ReplSnapBegin) Encode() []byte {
	var e enc
	e.uvarint(m.WALBase)
	e.uvarint(uint64(len(m.Segs)))
	for _, s := range m.Segs {
		e.uvarint(uint64(s.Seg))
		e.uvarint(uint64(s.Pages))
	}
	return e.b
}

func DecodeReplSnapBegin(p []byte) (*ReplSnapBegin, error) {
	d := dec{b: p}
	m := &ReplSnapBegin{WALBase: d.uvarint()}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("netproto: segment count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Segs = append(m.Segs, ReplSnapSeg{Seg: uint32(d.uvarint()), Pages: uint32(d.uvarint())})
	}
	return m, d.done()
}

// ReplSnapPages carries one chunk of a snapshot: either consecutive
// raw pages of a data segment (WAL=false; First is the 1-based page
// number of the chunk's first page, Data holds whole pages) or a chunk
// of the checkpoint WAL tail (WAL=true; First is unused and the chunks
// arrive in offset order).
type ReplSnapPages struct {
	WAL   bool
	Seg   uint32
	First uint32
	Data  []byte
}

func (m *ReplSnapPages) Encode() []byte {
	var e enc
	e.bool(m.WAL)
	e.uvarint(uint64(m.Seg))
	e.uvarint(uint64(m.First))
	e.uvarint(uint64(len(m.Data)))
	e.b = append(e.b, m.Data...)
	return e.b
}

func DecodeReplSnapPages(p []byte) (*ReplSnapPages, error) {
	d := dec{b: p}
	m := &ReplSnapPages{WAL: d.bool(), Seg: uint32(d.uvarint()), First: uint32(d.uvarint())}
	n := d.uvarint()
	if d.err == nil {
		if n > uint64(len(d.b)) {
			return nil, fmt.Errorf("netproto: chunk length %d exceeds payload", n)
		}
		m.Data = d.b[:n]
		d.b = d.b[n:]
	}
	return m, d.done()
}

// ReplSnapEnd closes a snapshot. WALEnd is the global offset one past
// the shipped checkpoint tail — the offset the following batches
// resume from.
type ReplSnapEnd struct {
	WALEnd uint64
}

func (m *ReplSnapEnd) Encode() []byte {
	var e enc
	e.uvarint(m.WALEnd)
	return e.b
}

func DecodeReplSnapEnd(p []byte) (*ReplSnapEnd, error) {
	d := dec{b: p}
	m := &ReplSnapEnd{WALEnd: d.uvarint()}
	return m, d.done()
}
