package netproto

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dberr"
	"repro/internal/engine"
	"repro/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %d len %d", i, typ, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestFrameTorn(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeExec, []byte("hello world payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A hostile length prefix must be rejected before allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, TypeExec}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func nestedTable() *model.Table {
	inner := &model.Table{Ordered: true}
	inner.Append(model.Tuple{model.Int(1), model.Str("leader")})
	inner.Append(model.Tuple{model.Int(2), model.Null{}})
	outer := &model.Table{}
	outer.Append(model.Tuple{model.Str("CGA"), inner, model.Float(3.5)})
	return outer
}

func TestValueRoundTrip(t *testing.T) {
	tup := model.Tuple{
		model.Int(-42), model.Float(2.718), model.Str("nf²"), model.Bool(true),
		model.Time(1234567890), model.Null{}, nestedTable(),
	}
	var e enc
	if err := e.tuple(tup); err != nil {
		t.Fatal(err)
	}
	d := dec{b: e.b}
	got := d.tuple()
	if err := d.done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tup) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, tup)
	}
}

func TestTableTypeRoundTrip(t *testing.T) {
	tt := model.MustTableType(false,
		model.Attr{Name: "DNO", Type: model.AtomicType(model.KindInt)},
		model.Attr{Name: "PROJECTS", Type: model.TableOf(true,
			model.Attr{Name: "PNAME", Type: model.AtomicType(model.KindString)},
			model.Attr{Name: "MEMBERS", Type: model.TableOf(false,
				model.Attr{Name: "EMPNO", Type: model.AtomicType(model.KindInt)},
			)},
		)},
	)
	var e enc
	if err := e.tableType(tt); err != nil {
		t.Fatal(err)
	}
	d := dec{b: e.b}
	got := d.tableType()
	if err := d.done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tt) {
		t.Fatalf("type round trip mismatch:\n got %v\nwant %v", got, tt)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	// Every message type once, through encode → decode.
	h, err := DecodeHello((&Hello{Version: 1, Client: "test"}).Encode())
	if err != nil || h.Version != 1 || h.Client != "test" {
		t.Fatalf("hello: %+v %v", h, err)
	}
	ok, err := DecodeHelloOK((&HelloOK{Version: 1, SessionID: 7, Server: "aim"}).Encode())
	if err != nil || ok.SessionID != 7 {
		t.Fatalf("hellook: %+v %v", ok, err)
	}
	q, err := DecodeQuery((&Query{SQL: "SELECT 1", Window: 64}).Encode())
	if err != nil || q.SQL != "SELECT 1" || q.Window != 64 {
		t.Fatalf("query: %+v %v", q, err)
	}
	sp, err := (&StmtQuery{ID: 3, Window: 8, Args: []model.Value{model.Int(314), model.Str("x")}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	sq, err := DecodeStmtQuery(sp)
	if err != nil || sq.ID != 3 || len(sq.Args) != 2 || sq.Args[0] != model.Int(314) {
		t.Fatalf("stmtquery: %+v %v", sq, err)
	}
	rp, err := (&Results{TxnOpen: true, Results: []Result{
		{Count: 2, Message: "2 tuple(s) inserted"},
		{Count: 1, Type: model.MustTableType(false, model.Attr{Name: "A", Type: model.AtomicType(model.KindInt)}), Table: func() *model.Table {
			tb := &model.Table{}
			tb.Append(model.Tuple{model.Int(9)})
			return tb
		}()},
	}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeResults(rp)
	if err != nil || !rs.TxnOpen || len(rs.Results) != 2 || rs.Results[1].Table.Len() != 1 {
		t.Fatalf("results: %+v %v", rs, err)
	}
	dn, err := DecodeDone((&Done{Rows: 5, TxnOpen: true, Aborted: true}).Encode())
	if err != nil || dn.Rows != 5 || !dn.Aborted {
		t.Fatalf("done: %+v %v", dn, err)
	}
	ir, err := DecodeInfoResp((&InfoResp{Fields: []InfoField{{Key: "sessions_open", Val: 3}}}).Encode())
	if err != nil || ir.Fields[0].Key != "sessions_open" || ir.Fields[0].Val != 3 {
		t.Fatalf("info: %+v %v", ir, err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	cases := []struct {
		in       error
		wantCode ErrCode
		sentinel error
	}{
		{engine.ErrWriteConflict, CodeWriteConflict, engine.ErrWriteConflict},
		{&engine.QuarantineError{Table: "T"}, CodeQuarantined, engine.ErrQuarantined},
		{context.Canceled, CodeCanceled, context.Canceled},
		{context.DeadlineExceeded, CodeDeadline, context.DeadlineExceeded},
		{engine.ErrTxnDone, CodeTxnDone, engine.ErrTxnDone},
		{dberr.Corruptf("bad page"), CodeCorrupt, dberr.ErrCorrupt},
	}
	for _, c := range cases {
		code, detail := Classify(c.in)
		if code != c.wantCode {
			t.Fatalf("%v: code %v want %v", c.in, code, c.wantCode)
		}
		m := &ErrorMsg{Code: code, Message: c.in.Error(), Detail: detail}
		dm, err := DecodeError(m.Encode())
		if err != nil {
			t.Fatal(err)
		}
		out := dm.DecodeWireError()
		if !errors.Is(out, c.sentinel) {
			t.Fatalf("%v: round-tripped %v does not match sentinel %v", c.in, out, c.sentinel)
		}
	}

	// Recovered panics come back as *engine.PanicError with the
	// statement text attached.
	pe := &engine.PanicError{Stmt: "SELECT boom", Value: "index out of range"}
	code, detail := Classify(pe)
	if code != CodePanic || detail != "SELECT boom" {
		t.Fatalf("panic classify: %v %q", code, detail)
	}
	dm, err := DecodeError((&ErrorMsg{Code: code, Message: pe.Error(), Detail: detail}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	var back *engine.PanicError
	if !errors.As(dm.DecodeWireError(), &back) || back.Stmt != "SELECT boom" {
		t.Fatalf("panic did not round-trip: %v", dm.DecodeWireError())
	}

	// Overload carries the retry-after hint.
	om := &ErrorMsg{Code: CodeOverloaded, Message: "too busy", RetryAfterMs: 250}
	dm, err = DecodeError(om.Encode())
	if err != nil {
		t.Fatal(err)
	}
	oerr := dm.DecodeWireError()
	if !errors.Is(oerr, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", oerr)
	}
	var se *ServerError
	if !errors.As(oerr, &se) || se.RetryAfter != 250*time.Millisecond {
		t.Fatalf("retry-after lost: %+v", se)
	}
}

func TestGarbageNeverParses(t *testing.T) {
	// Random-ish garbage payloads must fail decoding, not parse as a
	// valid message with trailing junk.
	garbage := [][]byte{
		[]byte(strings.Repeat("\xff", 32)),
		{0x02, 0x41, 0x41},
		append((&Query{SQL: "SELECT 1", Window: 1}).Encode(), 0xEE),
	}
	for i, g := range garbage {
		if _, err := DecodeQuery(g); err == nil {
			t.Fatalf("garbage %d decoded as Query", i)
		}
	}
}
