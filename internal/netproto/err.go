package netproto

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dberr"
	"repro/internal/engine"
)

// ErrCode classifies a failure carried in an Error frame. The codes
// mirror the engine's error taxonomy so a client can make the same
// decisions a local caller would: retry a write conflict, back off on
// overload, report a quarantined object, give up on a drain.
type ErrCode uint8

const (
	CodeOther         ErrCode = iota // unclassified server-side error
	CodeOverloaded                   // admission control shed the request; retry after the hint
	CodeDraining                     // server is shutting down; reconnect elsewhere
	CodeWriteConflict                // first-writer-wins conflict (engine.ErrWriteConflict)
	CodeQuarantined                  // statement touched a quarantined object
	CodePanic                        // recovered executor panic (engine.PanicError)
	CodeCanceled                     // statement canceled (context.Canceled)
	CodeDeadline                     // statement deadline exceeded (context.DeadlineExceeded)
	CodeTxnDone                      // operation on a finished transaction
	CodeCorrupt                      // durable corruption detected (dberr.ErrCorrupt)
	CodeProtocol                     // malformed or out-of-order frame
	CodeReadOnly                     // write refused by a read replica (engine.ErrReadOnlyReplica)
)

func (c ErrCode) String() string {
	switch c {
	case CodeOverloaded:
		return "overloaded"
	case CodeDraining:
		return "draining"
	case CodeWriteConflict:
		return "write-conflict"
	case CodeQuarantined:
		return "quarantined"
	case CodePanic:
		return "panic"
	case CodeCanceled:
		return "canceled"
	case CodeDeadline:
		return "deadline"
	case CodeTxnDone:
		return "txn-done"
	case CodeCorrupt:
		return "corrupt"
	case CodeProtocol:
		return "protocol"
	case CodeReadOnly:
		return "read-only"
	default:
		return "error"
	}
}

// ErrOverloaded is the sentinel matched by errors.Is when admission
// control sheds a connection or statement. The concrete error is a
// *ServerError whose RetryAfter carries the server's backoff hint.
var ErrOverloaded = errors.New("netproto: server overloaded")

// ErrDraining is the sentinel matched by errors.Is when the server is
// shutting down and no longer admits work.
var ErrDraining = errors.New("netproto: server draining")

// ServerError is a failure reported by the server over the wire. Is()
// maps the code back onto the sentinel a local caller would have seen,
// so errors.Is(err, engine.ErrWriteConflict), errors.Is(err,
// engine.ErrQuarantined), errors.Is(err, context.Canceled) and
// errors.Is(err, netproto.ErrOverloaded) all work across the wire.
type ServerError struct {
	Code    ErrCode
	Message string
	// RetryAfter is the server's backoff hint for CodeOverloaded (and
	// CodeDraining); zero otherwise.
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	if e.Code == CodeOther {
		return e.Message
	}
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// Is maps error codes onto the sentinels of the embedded engine.
func (e *ServerError) Is(target error) bool {
	switch e.Code {
	case CodeOverloaded:
		return target == ErrOverloaded
	case CodeDraining:
		return target == ErrDraining
	case CodeWriteConflict:
		return target == engine.ErrWriteConflict
	case CodeQuarantined:
		return target == engine.ErrQuarantined
	case CodeCanceled:
		return target == context.Canceled
	case CodeDeadline:
		return target == context.DeadlineExceeded
	case CodeTxnDone:
		return target == engine.ErrTxnDone
	case CodeCorrupt:
		return target == dberr.ErrCorrupt
	case CodeReadOnly:
		return target == engine.ErrReadOnlyReplica
	}
	return false
}

// Classify maps an engine-side error to its wire code. The detail
// string carries code-specific context (the panicking statement's text
// for CodePanic).
func Classify(err error) (code ErrCode, detail string) {
	var pe *engine.PanicError
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded, ""
	case errors.Is(err, ErrDraining):
		return CodeDraining, ""
	case errors.Is(err, engine.ErrWriteConflict):
		return CodeWriteConflict, ""
	case errors.Is(err, engine.ErrQuarantined):
		return CodeQuarantined, ""
	case errors.As(err, &pe):
		return CodePanic, pe.Stmt
	case errors.Is(err, context.Canceled):
		return CodeCanceled, ""
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline, ""
	case errors.Is(err, engine.ErrTxnDone):
		return CodeTxnDone, ""
	case errors.Is(err, dberr.ErrCorrupt):
		return CodeCorrupt, ""
	case errors.Is(err, engine.ErrReadOnlyReplica):
		return CodeReadOnly, ""
	}
	return CodeOther, ""
}

// DecodeWireError reconstructs the client-side error for a decoded
// Error frame: recovered panics come back as *engine.PanicError (so
// errors.As works like it does in-process), everything else as a
// *ServerError whose Is() maps onto the engine sentinels.
func (m *ErrorMsg) DecodeWireError() error {
	if m.Code == CodePanic {
		return &engine.PanicError{Stmt: m.Detail, Value: m.Message}
	}
	return &ServerError{
		Code:       m.Code,
		Message:    m.Message,
		RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond,
	}
}
