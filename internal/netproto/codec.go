package netproto

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
)

// The payload codec: append-style encoders over a byte slice and a
// consuming decoder that latches its first error. Values are
// self-describing (kind tag per value, tables carried recursively), so
// a Row frame can be decoded without the schema in hand; table types
// are encoded structurally for the RowHeader and Results frames.

type enc struct{ b []byte }

func (e *enc) uvarint(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)       { e.b = append(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *enc) string(s string)   { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) float(f float64)   { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f)) }

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("netproto: "+format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated payload")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds payload", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// done checks that the payload was consumed exactly.
func (d *dec) done() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes", len(d.b))
	}
	return d.err
}

// --- values --------------------------------------------------------------

// maxDepth bounds value and type nesting so a hostile payload cannot
// recurse the decoder into a stack overflow.
const maxDepth = 64

func (e *enc) value(v model.Value) error { return e.valueDepth(v, 0) }

func (e *enc) valueDepth(v model.Value, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("netproto: value nesting exceeds %d", maxDepth)
	}
	if model.IsNull(v) {
		e.byte(byte(model.KindInvalid))
		return nil
	}
	switch x := v.(type) {
	case model.Int:
		e.byte(byte(model.KindInt))
		e.varint(int64(x))
	case model.Float:
		e.byte(byte(model.KindFloat))
		e.float(float64(x))
	case model.Str:
		e.byte(byte(model.KindString))
		e.string(string(x))
	case model.Bool:
		e.byte(byte(model.KindBool))
		e.bool(bool(x))
	case model.Time:
		e.byte(byte(model.KindTime))
		e.varint(int64(x))
	case *model.Table:
		e.byte(byte(model.KindTable))
		e.bool(x.Ordered)
		e.uvarint(uint64(len(x.Tuples)))
		for _, tup := range x.Tuples {
			if err := e.tupleDepth(tup, depth+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("netproto: cannot encode value of kind %s", v.Kind())
	}
	return nil
}

func (e *enc) tuple(t model.Tuple) error { return e.tupleDepth(t, 0) }

func (e *enc) tupleDepth(t model.Tuple, depth int) error {
	e.uvarint(uint64(len(t)))
	for _, v := range t {
		if err := e.valueDepth(v, depth); err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) value() model.Value { return d.valueDepth(0) }

func (d *dec) valueDepth(depth int) model.Value {
	if depth > maxDepth {
		d.fail("value nesting exceeds %d", maxDepth)
		return nil
	}
	switch k := model.Kind(d.byte()); k {
	case model.KindInvalid:
		return model.Null{}
	case model.KindInt:
		return model.Int(d.varint())
	case model.KindFloat:
		return model.Float(d.float())
	case model.KindString:
		return model.Str(d.string())
	case model.KindBool:
		return model.Bool(d.bool())
	case model.KindTime:
		return model.Time(d.varint())
	case model.KindTable:
		tbl := &model.Table{Ordered: d.bool()}
		n := d.uvarint()
		if n > uint64(len(d.b))+1 {
			d.fail("table tuple count %d exceeds payload", n)
			return nil
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			tbl.Append(d.tupleDepth(depth + 1))
		}
		return tbl
	default:
		d.fail("unknown value kind tag %d", k)
		return nil
	}
}

func (d *dec) tuple() model.Tuple { return d.tupleDepth(0) }

func (d *dec) tupleDepth(depth int) model.Tuple {
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.fail("tuple arity %d exceeds payload", n)
		return nil
	}
	tup := make(model.Tuple, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		tup = append(tup, d.valueDepth(depth))
	}
	return tup
}

// --- table types ---------------------------------------------------------

func (e *enc) tableType(tt *model.TableType) error { return e.tableTypeDepth(tt, 0) }

func (e *enc) tableTypeDepth(tt *model.TableType, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("netproto: type nesting exceeds %d", maxDepth)
	}
	if tt == nil {
		e.bool(false)
		return nil
	}
	e.bool(true)
	e.bool(tt.Ordered)
	e.uvarint(uint64(len(tt.Attrs)))
	for _, a := range tt.Attrs {
		e.string(a.Name)
		e.byte(byte(a.Type.Kind))
		if a.Type.Kind == model.KindTable {
			if err := e.tableTypeDepth(a.Type.Table, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *dec) tableType() *model.TableType { return d.tableTypeDepth(0) }

func (d *dec) tableTypeDepth(depth int) *model.TableType {
	if depth > maxDepth {
		d.fail("type nesting exceeds %d", maxDepth)
		return nil
	}
	if !d.bool() {
		return nil
	}
	tt := &model.TableType{Ordered: d.bool()}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.fail("attr count %d exceeds payload", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		a := model.Attr{Name: d.string()}
		a.Type.Kind = model.Kind(d.byte())
		if a.Type.Kind == model.KindTable {
			a.Type.Table = d.tableTypeDepth(depth + 1)
		}
		tt.Attrs = append(tt.Attrs, a)
	}
	return tt
}
