// Package netproto defines the AIM wire protocol: length-prefixed
// frames carrying a small set of typed messages between an aimnet
// client and an aimserver session.
//
// Frame layout (all integers big-endian unless noted):
//
//	+----------------+----------+------------------+
//	| length uint32  | type u8  | payload ...      |
//	+----------------+----------+------------------+
//
// length counts the type byte plus the payload, so an empty message is
// length 1. Frames larger than MaxFrame are rejected on both sides —
// a torn or hostile length prefix can cost at most one allocation of
// MaxFrame bytes, never an unbounded one.
//
// The message payloads use the same self-describing varint encoding as
// the storage layer (see codec.go): NF² values — including arbitrarily
// nested tables — and table types travel losslessly, and typed error
// frames round-trip the engine's error taxonomy (write conflicts,
// quarantined objects, recovered panics, cancellation, overload).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version exchanged in the handshake. A server
// refuses clients whose major version differs.
const Version = 1

// MaxFrame bounds one frame's length field (type byte + payload).
const MaxFrame = 16 << 20

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set; a peer receiving a frame from
// the wrong direction treats it as a protocol error.
const (
	// Client → server.
	TypeHello       byte = 0x01 // Hello: protocol handshake
	TypeExec        byte = 0x02 // Exec: run a statement script, materialized results
	TypeQuery       byte = 0x03 // Query: run one SELECT, stream the rows
	TypePrepare     byte = 0x04 // Prepare: parse+bind a statement server-side
	TypeStmtExec    byte = 0x05 // StmtExec: run a prepared statement by id
	TypeStmtQuery   byte = 0x06 // StmtQuery: stream a prepared SELECT by id
	TypeStmtClose   byte = 0x07 // StmtClose: drop a prepared statement
	TypeFetch       byte = 0x08 // Fetch: grant row credits to the open stream
	TypeStreamClose byte = 0x09 // StreamClose: abandon the open stream
	TypeCancel      byte = 0x0A // Cancel: cancel the in-flight statement
	TypeInfo        byte = 0x0B // Info: request server/session counters
	TypeGoodbye     byte = 0x0C // Goodbye: close the session cleanly
	TypeReplStart   byte = 0x0D // ReplStart: follow the WAL from an offset (see repl.go)

	// Server → client.
	TypeHelloOK   byte = 0x81 // HelloOK: handshake accepted
	TypeResults   byte = 0x82 // Results: materialized statement results
	TypeRowHeader byte = 0x83 // RowHeader: result schema, rows follow
	TypeRow       byte = 0x84 // Row: one result tuple
	TypeDone      byte = 0x85 // Done: end of row stream
	TypeError     byte = 0x86 // Error: typed failure (see err.go)
	TypeInfoResp  byte = 0x87 // InfoResp: server/session counters
	TypePrepared  byte = 0x88 // Prepared: prepared-statement handle

	// Replication stream (server → follower, see repl.go).
	TypeReplBatch     byte = 0x89 // ReplBatch: raw committed WAL bytes
	TypeReplSnapBegin byte = 0x8A // ReplSnapBegin: checkpoint snapshot opens
	TypeReplSnapPages byte = 0x8B // ReplSnapPages: snapshot page/WAL-tail chunk
	TypeReplSnapEnd   byte = 0x8C // ReplSnapEnd: snapshot complete, batches follow
)

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("netproto: frame exceeds MaxFrame")

// WriteFrame writes one frame. The caller provides the payload without
// the type byte.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = typ
	// One Write call per frame: a frame is either fully queued to the
	// socket or fails as a unit, so a failed write never leaves a half
	// frame for the peer to misparse as the next frame's header.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame, returning its type and payload. A torn
// stream surfaces as io.ErrUnexpectedEOF; a clean close between frames
// as io.EOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("netproto: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ = hdr[4]
	if n == 1 {
		return typ, nil, nil
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}
