package netproto

import (
	"fmt"

	"repro/internal/model"
)

// Message payloads. Each message has an Encode producing the frame
// payload (without the type byte) and a matching Decode* function.
// Every Decode checks that the payload is consumed exactly — trailing
// bytes are a protocol error, which is what lets the torn-frame chaos
// cell assert that garbage never parses as a valid message.

// Hello opens a session.
type Hello struct {
	Version uint32
	Client  string // client name, for diagnostics
}

func (m *Hello) Encode() []byte {
	var e enc
	e.uvarint(uint64(m.Version))
	e.string(m.Client)
	return e.b
}

func DecodeHello(p []byte) (*Hello, error) {
	d := dec{b: p}
	m := &Hello{Version: uint32(d.uvarint()), Client: d.string()}
	return m, d.done()
}

// HelloOK accepts a session.
type HelloOK struct {
	Version   uint32
	SessionID uint64
	Server    string // server banner, for diagnostics
}

func (m *HelloOK) Encode() []byte {
	var e enc
	e.uvarint(uint64(m.Version))
	e.uvarint(m.SessionID)
	e.string(m.Server)
	return e.b
}

func DecodeHelloOK(p []byte) (*HelloOK, error) {
	d := dec{b: p}
	m := &HelloOK{Version: uint32(d.uvarint()), SessionID: d.uvarint(), Server: d.string()}
	return m, d.done()
}

// Exec runs a script of semicolon-separated statements with
// materialized results. BEGIN/COMMIT/ROLLBACK inside the script (or as
// the whole script) manipulate the session transaction.
type Exec struct {
	Script string
}

func (m *Exec) Encode() []byte {
	var e enc
	e.string(m.Script)
	return e.b
}

func DecodeExec(p []byte) (*Exec, error) {
	d := dec{b: p}
	m := &Exec{Script: d.string()}
	return m, d.done()
}

// Query runs one SELECT and streams its rows. Window is the initial
// row credit; the client grants more with Fetch frames as it consumes
// rows (credit-based flow control — the server never buffers more than
// the client asked for).
type Query struct {
	SQL    string
	Window uint32
}

func (m *Query) Encode() []byte {
	var e enc
	e.string(m.SQL)
	e.uvarint(uint64(m.Window))
	return e.b
}

func DecodeQuery(p []byte) (*Query, error) {
	d := dec{b: p}
	m := &Query{SQL: d.string(), Window: uint32(d.uvarint())}
	return m, d.done()
}

// Prepare parses and binds one statement server-side; the returned id
// addresses it in StmtExec/StmtQuery until StmtClose (or session end).
type Prepare struct {
	SQL string
}

func (m *Prepare) Encode() []byte {
	var e enc
	e.string(m.SQL)
	return e.b
}

func DecodePrepare(p []byte) (*Prepare, error) {
	d := dec{b: p}
	m := &Prepare{SQL: d.string()}
	return m, d.done()
}

// Prepared answers Prepare.
type Prepared struct {
	ID        uint64
	NumParams uint32
	IsSelect  bool
}

func (m *Prepared) Encode() []byte {
	var e enc
	e.uvarint(m.ID)
	e.uvarint(uint64(m.NumParams))
	e.bool(m.IsSelect)
	return e.b
}

func DecodePrepared(p []byte) (*Prepared, error) {
	d := dec{b: p}
	m := &Prepared{ID: d.uvarint(), NumParams: uint32(d.uvarint()), IsSelect: d.bool()}
	return m, d.done()
}

// StmtExec runs a prepared statement with bound arguments,
// materialized.
type StmtExec struct {
	ID   uint64
	Args []model.Value
}

func (m *StmtExec) Encode() ([]byte, error) {
	var e enc
	e.uvarint(m.ID)
	e.uvarint(uint64(len(m.Args)))
	for _, a := range m.Args {
		if err := e.value(a); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

func DecodeStmtExec(p []byte) (*StmtExec, error) {
	d := dec{b: p}
	m := &StmtExec{ID: d.uvarint()}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("netproto: argument count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Args = append(m.Args, d.value())
	}
	return m, d.done()
}

// StmtQuery streams a prepared SELECT with bound arguments.
type StmtQuery struct {
	ID     uint64
	Window uint32
	Args   []model.Value
}

func (m *StmtQuery) Encode() ([]byte, error) {
	var e enc
	e.uvarint(m.ID)
	e.uvarint(uint64(m.Window))
	e.uvarint(uint64(len(m.Args)))
	for _, a := range m.Args {
		if err := e.value(a); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

func DecodeStmtQuery(p []byte) (*StmtQuery, error) {
	d := dec{b: p}
	m := &StmtQuery{ID: d.uvarint(), Window: uint32(d.uvarint())}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("netproto: argument count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Args = append(m.Args, d.value())
	}
	return m, d.done()
}

// StmtClose drops a prepared statement.
type StmtClose struct {
	ID uint64
}

func (m *StmtClose) Encode() []byte {
	var e enc
	e.uvarint(m.ID)
	return e.b
}

func DecodeStmtClose(p []byte) (*StmtClose, error) {
	d := dec{b: p}
	m := &StmtClose{ID: d.uvarint()}
	return m, d.done()
}

// Fetch grants N more row credits to the session's open stream.
type Fetch struct {
	N uint32
}

func (m *Fetch) Encode() []byte {
	var e enc
	e.uvarint(uint64(m.N))
	return e.b
}

func DecodeFetch(p []byte) (*Fetch, error) {
	d := dec{b: p}
	m := &Fetch{N: uint32(d.uvarint())}
	return m, d.done()
}

// Result is one statement's materialized outcome (mirrors
// engine.Result over the wire).
type Result struct {
	Count   int64
	Message string
	Type    *model.TableType // non-nil for queries
	Table   *model.Table     // non-nil for queries
}

// Results answers Exec and StmtExec. TxnOpen reports whether the
// session has an open transaction after the script ran — the remote
// REPL's txn> prompt state.
type Results struct {
	Results []Result
	TxnOpen bool
}

func (m *Results) Encode() ([]byte, error) {
	var e enc
	e.bool(m.TxnOpen)
	e.uvarint(uint64(len(m.Results)))
	for _, r := range m.Results {
		e.varint(r.Count)
		e.string(r.Message)
		if r.Table != nil {
			e.bool(true)
			if err := e.tableType(r.Type); err != nil {
				return nil, err
			}
			if err := e.value(r.Table); err != nil {
				return nil, err
			}
		} else {
			e.bool(false)
		}
	}
	return e.b, nil
}

func DecodeResults(p []byte) (*Results, error) {
	d := dec{b: p}
	m := &Results{TxnOpen: d.bool()}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("netproto: result count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := Result{Count: d.varint(), Message: d.string()}
		if d.bool() {
			r.Type = d.tableType()
			v := d.value()
			tbl, ok := v.(*model.Table)
			if !ok && d.err == nil {
				return nil, fmt.Errorf("netproto: result table has kind %T", v)
			}
			r.Table = tbl
		}
		m.Results = append(m.Results, r)
	}
	return m, d.done()
}

// RowHeader starts a row stream with the result schema.
type RowHeader struct {
	Type *model.TableType
}

func (m *RowHeader) Encode() ([]byte, error) {
	var e enc
	if err := e.tableType(m.Type); err != nil {
		return nil, err
	}
	return e.b, nil
}

func DecodeRowHeader(p []byte) (*RowHeader, error) {
	d := dec{b: p}
	m := &RowHeader{Type: d.tableType()}
	return m, d.done()
}

// Row carries one result tuple.
type Row struct {
	Tuple model.Tuple
}

func (m *Row) Encode() ([]byte, error) {
	var e enc
	if err := e.tuple(m.Tuple); err != nil {
		return nil, err
	}
	return e.b, nil
}

func DecodeRow(p []byte) (*Row, error) {
	d := dec{b: p}
	m := &Row{Tuple: d.tuple()}
	return m, d.done()
}

// Done ends a row stream.
type Done struct {
	Rows    uint64
	TxnOpen bool
	// Aborted is set when the stream ended because the client abandoned
	// it (StreamClose), not because the result was exhausted.
	Aborted bool
}

func (m *Done) Encode() []byte {
	var e enc
	e.uvarint(m.Rows)
	e.bool(m.TxnOpen)
	e.bool(m.Aborted)
	return e.b
}

func DecodeDone(p []byte) (*Done, error) {
	d := dec{b: p}
	m := &Done{Rows: d.uvarint(), TxnOpen: d.bool(), Aborted: d.bool()}
	return m, d.done()
}

// ErrorMsg is a typed failure frame. See err.go for the code taxonomy
// and the sentinel round-trip.
type ErrorMsg struct {
	Code         ErrCode
	Message      string
	Detail       string // code-specific: the panicking statement for CodePanic
	RetryAfterMs uint32 // backoff hint for CodeOverloaded/CodeDraining
	TxnOpen      bool
}

func (m *ErrorMsg) Encode() []byte {
	var e enc
	e.byte(byte(m.Code))
	e.string(m.Message)
	e.string(m.Detail)
	e.uvarint(uint64(m.RetryAfterMs))
	e.bool(m.TxnOpen)
	return e.b
}

func DecodeError(p []byte) (*ErrorMsg, error) {
	d := dec{b: p}
	m := &ErrorMsg{Code: ErrCode(d.byte()), Message: d.string(), Detail: d.string(),
		RetryAfterMs: uint32(d.uvarint()), TxnOpen: d.bool()}
	return m, d.done()
}

// InfoField is one named counter in an InfoResp.
type InfoField struct {
	Key string
	Val int64
}

// InfoResp answers Info with the server's counters.
type InfoResp struct {
	Fields []InfoField
}

func (m *InfoResp) Encode() []byte {
	var e enc
	e.uvarint(uint64(len(m.Fields)))
	for _, f := range m.Fields {
		e.string(f.Key)
		e.varint(f.Val)
	}
	return e.b
}

func DecodeInfoResp(p []byte) (*InfoResp, error) {
	d := dec{b: p}
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("netproto: field count %d exceeds payload", n)
	}
	m := &InfoResp{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Fields = append(m.Fields, InfoField{Key: d.string(), Val: d.varint()})
	}
	return m, d.done()
}
