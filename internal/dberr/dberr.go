// Package dberr holds error sentinels shared across the storage
// stack. It sits below every other package (it imports nothing), so
// any layer — page, buffer, segment, subtuple, object, catalog,
// engine — can classify an error without import cycles.
package dberr

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the shared corruption sentinel: every error produced
// by a failed checksum, an undecodable record, a broken Mini-Directory
// tree, or any other structural inconsistency wraps it. Callers test
// with errors.Is(err, dberr.ErrCorrupt) (or IsCorrupt) regardless of
// which layer detected the fault.
//
// Corruption is permanent by definition — retrying the read returns
// the same rotten bytes — so segment.IsTransient classifies anything
// wrapping ErrCorrupt as non-retryable.
var ErrCorrupt = errors.New("data corruption detected")

// Corruptf formats a corruption error wrapping ErrCorrupt.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// IsCorrupt reports whether err (or anything it wraps) is a
// corruption error.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
