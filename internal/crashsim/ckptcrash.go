package crashsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
)

// Checkpoint and segmented-log crash points: these harnesses run the
// seeded workload on a log split into tiny segments (so rolls are
// frequent), write fuzzy checkpoints at a fixed statement cadence, and
// crash at seeded I/O budgets. Because segment creation, removal,
// every log write and every sync are all failpoints, the budget sweep
// lands inside segment switches, inside the checkpoint's flush and
// record write, and inside recycling — the recovered database must be
// indistinguishable from a clean replay of the committed statements no
// matter which of those the crash interrupts.

// ckptSegmentBytes keeps simulated segments tiny so every run rolls
// many times.
const ckptSegmentBytes = 8 << 10

// ckptEvery is the checkpoint cadence of the faulted run, in
// statements.
const ckptEvery = 6

// openCkptSession opens an engine on the session's segmented,
// fault-injecting WAL storage.
func openCkptSession(s *Session, clock func() int64, poolPages int) (*engine.DB, error) {
	return engine.Open(engine.Options{
		PoolPages:       poolPages,
		Clock:           clock,
		OpenStore:       s.OpenStore,
		OpenWALStorage:  s.OpenWALStorage,
		WALSegmentBytes: ckptSegmentBytes,
	})
}

// CkptTotalOps measures the mutating I/O operations of a crash-free
// checkpointing run, for sweeping crash budgets.
func CkptTotalOps(wseed int64) (int64, error) {
	w := NewWorkload(wseed, stmtCount)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(1, -1)
	eng, err := openCkptSession(s, clock, 8)
	if err != nil {
		return 0, err
	}
	for i, stmt := range append(append([]string{}, w.Setup...), w.Stmts...) {
		if _, err := eng.Exec(stmt); err != nil {
			return 0, fmt.Errorf("crashsim: ckpt probe statement failed: %w\n%s", err, stmt)
		}
		if (i+1)%ckptEvery == 0 {
			if err := eng.WALCheckpoint(); err != nil {
				return 0, fmt.Errorf("crashsim: ckpt probe checkpoint after %d: %w", i, err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		return 0, err
	}
	return s.Ops(), nil
}

// RunCkptCrash executes one crash-recover-verify cycle on the
// segmented, checkpointing configuration, crashing at the budget-th
// mutating I/O operation (with recBudget >= 0 the first recovery is
// crashed too and retried). The verification is the same as RunCrash —
// invariants, state equivalence against a clean replay, ASOF history,
// continued usability — plus checkpoint bookkeeping: after recovery a
// fresh checkpoint must establish a one-segment chain whose replay
// tail starts at the checkpoint record.
func RunCkptCrash(wseed, budget, recBudget int64) error {
	w := NewWorkload(wseed, stmtCount)
	all := append(append([]string{}, w.Setup...), w.Stmts...)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }

	d := NewDisk()
	s := d.Open(wseed*47+budget, budget)
	committed := 0
	inFlight := false
	var snaps []snapshot
	eng, err := openCkptSession(s, clock, 8)
	if err != nil {
		if !s.Crashed() {
			return fmt.Errorf("crashsim: ckpt initial open failed without a crash: %w", err)
		}
	} else {
	loop:
		for i, stmt := range all {
			if _, err := eng.Exec(stmt); err != nil {
				if !s.Crashed() {
					return fmt.Errorf("crashsim: ckpt statement %d failed without a crash: %w\n%s", i, err, stmt)
				}
				inFlight = true
				break
			}
			committed++
			switch snap, err := histSnapshot(eng, clk.Add(1)); {
			case err != nil:
				if !s.Crashed() {
					return fmt.Errorf("crashsim: ckpt snapshot after statement %d failed without a crash: %w", i, err)
				}
				break loop
			case snap != nil:
				snaps = append(snaps, *snap)
			}
			if (i+1)%ckptEvery == 0 {
				// A crash inside the checkpoint interrupts no statement:
				// the state to recover is exactly the committed prefix.
				if err := eng.WALCheckpoint(); err != nil {
					if !s.Crashed() {
						return fmt.Errorf("crashsim: checkpoint after statement %d failed without a crash: %w", i, err)
					}
					break loop
				}
			}
		}
		if !s.Crashed() {
			if err := eng.Close(); err != nil && !s.Crashed() {
				return fmt.Errorf("crashsim: ckpt clean close failed: %w", err)
			}
		}
	}

	// Recover; with recBudget >= 0 the first attempt is itself crashed
	// and retried — recovery over segments must be idempotent too.
	if recBudget >= 0 {
		rs := d.Open(wseed*59+budget+1, recBudget)
		if _, err := openCkptSession(rs, clock, 8); err != nil && !rs.Crashed() {
			return fmt.Errorf("crashsim: ckpt budgeted recovery failed without a crash: %w", err)
		}
	}
	rs := d.Open(wseed*83+budget+7, -1)
	eng2, err := openCkptSession(rs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: ckpt recovery failed: %w", err)
	}

	if err := CheckInvariants(eng2); err != nil {
		return err
	}

	// State equivalence against the committed replay (or, for an
	// in-flight statement, the replay including it).
	refA, err := replayEngine(all[:committed], clock)
	if err != nil {
		return err
	}
	diffA := compareState(eng2, refA)
	if diffA != "" {
		if !inFlight {
			return fmt.Errorf("crashsim: ckpt-recovered state differs from committed replay: %s", diffA)
		}
		refB, err := replayEngine(all[:committed+1], clock)
		if err != nil {
			return err
		}
		if diffB := compareState(eng2, refB); diffB != "" {
			return fmt.Errorf("crashsim: ckpt-recovered state matches neither replay\nwithout in-flight: %s\nwith in-flight: %s", diffA, diffB)
		}
	}

	// ASOF history across checkpoints: recycling must never eat
	// versions a snapshot needs — versions live in pages, not the log,
	// so every pre-crash snapshot must still be reproducible.
	for _, sn := range snaps {
		t, ok := eng2.Catalog().Table("HIST")
		if !ok {
			return fmt.Errorf("crashsim: HIST vanished despite a recorded snapshot")
		}
		rows, err := tableRows(eng2, t, sn.ts)
		if err != nil {
			return fmt.Errorf("crashsim: ckpt ASOF %d scan: %w", sn.ts, err)
		}
		if !model.TableEqual(rows, sn.rows) {
			return fmt.Errorf("crashsim: HIST ASOF %d differs from the snapshot taken before the crash", sn.ts)
		}
	}

	// Checkpoint bookkeeping on the recovered handle: a fresh
	// checkpoint must leave a one-segment chain whose replay tail is
	// the checkpoint record.
	if err := eng2.WALCheckpoint(); err != nil {
		return fmt.Errorf("crashsim: post-recovery checkpoint: %w", err)
	}
	ws := eng2.WALStats()
	if ws.End > 0 && ws.CheckpointLSN == 0 {
		return fmt.Errorf("crashsim: post-recovery checkpoint left no checkpoint LSN (stats %+v)", ws)
	}
	if ws.CheckpointLSN > 0 {
		if ws.TailStart != ws.CheckpointLSN-1 {
			return fmt.Errorf("crashsim: replay tail %d does not start at the checkpoint record %d", ws.TailStart, ws.CheckpointLSN)
		}
		if ws.Segments != 1 {
			return fmt.Errorf("crashsim: %d segments retained after checkpoint, want 1", ws.Segments)
		}
	}

	// The recovered database must remain fully usable across another
	// clean cycle.
	if _, ok := eng2.Catalog().Table("EMP"); !ok {
		if _, err := eng2.Exec(w.Setup[0]); err != nil {
			return fmt.Errorf("crashsim: ckpt post-recovery create: %w", err)
		}
	}
	if _, err := eng2.Exec(`INSERT INTO EMP VALUES (999999, 'POST', 1)`); err != nil {
		return fmt.Errorf("crashsim: ckpt post-recovery insert: %w", err)
	}
	if err := eng2.Close(); err != nil {
		return fmt.Errorf("crashsim: ckpt post-recovery close: %w", err)
	}
	fs := d.Open(wseed*107+budget+11, -1)
	eng3, err := openCkptSession(fs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: ckpt reopen after recovery: %w", err)
	}
	if err := CheckInvariants(eng3); err != nil {
		return fmt.Errorf("crashsim: ckpt after clean reopen: %w", err)
	}
	t, _ := eng3.Catalog().Table("EMP")
	rows, err := tableRows(eng3, t, 0)
	if err != nil {
		return err
	}
	for _, tup := range rows.Tuples {
		if v, ok := tup[0].(model.Int); ok && int64(v) == 999999 {
			return nil
		}
	}
	return fmt.Errorf("crashsim: ckpt post-recovery insert not visible after reopen")
}

// --- group commit under crashes ------------------------------------------

// gcRowsPerWriter is how many inserts each concurrent committer
// attempts in the group-commit crash harness.
const gcRowsPerWriter = 20

// gcSetup creates the table the concurrent committers write.
const gcSetup = `CREATE TABLE GC (ID INT, W INT)`

// GCTotalOps measures the mutating I/O operations of a crash-free
// group-commit run.
func GCTotalOps(writers int) (int64, error) {
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(1, -1)
	acked, err := runGCSession(s, clock, writers)
	if err != nil {
		return 0, err
	}
	want := writers * gcRowsPerWriter
	if len(acked) != want {
		return 0, fmt.Errorf("crashsim: crash-free group-commit run acked %d/%d inserts", len(acked), want)
	}
	return s.Ops(), nil
}

// RunGroupCommitCrash crashes a run with several concurrent
// auto-commit writers batching onto shared fsyncs, then verifies the
// fundamental acknowledgement contract across recovery: every insert
// whose Exec returned success is present, every present row was
// actually attempted, and no row is duplicated. (No statement-order
// oracle exists — the interleaving is scheduler-dependent — so the
// check is exactly the contract group commit must not weaken.)
func RunGroupCommitCrash(seed, budget int64, writers int) error {
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(seed*53+budget, budget)
	acked, err := runGCSession(s, clock, writers)
	if err != nil && !s.Crashed() {
		return fmt.Errorf("crashsim: group-commit run failed without a crash: %w", err)
	}

	rs := d.Open(seed*71+budget+5, -1)
	eng2, err := openCkptSession(rs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: group-commit recovery failed: %w", err)
	}
	defer eng2.Close()
	if err := CheckInvariants(eng2); err != nil {
		return err
	}
	present := make(map[int64]int)
	if t, ok := eng2.Catalog().Table("GC"); ok {
		rows, err := tableRows(eng2, t, 0)
		if err != nil {
			return err
		}
		for _, tup := range rows.Tuples {
			id, ok := tup[0].(model.Int)
			if !ok {
				return fmt.Errorf("crashsim: GC row with non-int ID %v", tup[0])
			}
			present[int64(id)]++
		}
	}
	for id, n := range present {
		if n != 1 {
			return fmt.Errorf("crashsim: GC row %d present %d times after recovery", id, n)
		}
		w, j := id/1000, id%1000
		if w < 0 || w >= int64(writers) || j >= gcRowsPerWriter {
			return fmt.Errorf("crashsim: GC row %d was never attempted", id)
		}
	}
	for id := range acked {
		if present[id] == 0 {
			return fmt.Errorf("crashsim: insert of GC row %d was acknowledged but is gone after recovery", id)
		}
	}
	return nil
}

// runGCSession runs the concurrent-committer workload on one session
// and returns the set of acknowledged row IDs. The returned error is
// the first statement failure (nil when everything committed and the
// engine closed cleanly).
func runGCSession(s *Session, clock func() int64, writers int) (map[int64]bool, error) {
	acked := make(map[int64]bool)
	eng, err := engine.Open(engine.Options{
		PoolPages:       8,
		Clock:           clock,
		OpenStore:       s.OpenStore,
		OpenWALStorage:  s.OpenWALStorage,
		WALSegmentBytes: ckptSegmentBytes,
		GroupCommitWait: 100 * time.Microsecond,
	})
	if err != nil {
		return acked, err
	}
	if _, err := eng.Exec(gcSetup); err != nil {
		return acked, err
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < gcRowsPerWriter; j++ {
				id := int64(w*1000 + j)
				_, err := eng.Exec(fmt.Sprintf(`INSERT INTO GC VALUES (%d, %d)`, id, w))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				acked[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return acked, firstErr
	}
	if err := eng.Close(); err != nil {
		return acked, err
	}
	return acked, nil
}
