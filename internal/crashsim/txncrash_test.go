package crashsim

import "testing"

// TestTxnCrashMatrix sweeps seeded crash points across the
// prefix-then-transaction run: budgets stride the full range of
// mutating I/O operations, so crashes land before the transaction,
// during its commit's apply phase, and after its commit record is
// durable. Every recovery must satisfy transactional atomicity (see
// RunTxnCrash).
func TestTxnCrashMatrix(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 12
	}
	var total int64
	wseed := int64(-1)
	for i := 0; i < iterations; i++ {
		ws := int64(1 + i/12) // fresh workload every 12 crash points
		if ws != wseed {
			wseed = ws
			var err error
			total, err = TxnTotalOps(wseed)
			if err != nil {
				t.Fatalf("txn workload %d probe: %v", wseed, err)
			}
			if total < 20 {
				t.Fatalf("txn workload %d issues only %d mutating ops; harness miswired", wseed, total)
			}
		}
		budget := 1 + (int64(i)*2654435761)%total
		if i%12 >= 9 {
			// A quarter of the points aim at the tail, where the
			// transaction's commit applies its buffered writes.
			budget = total - int64(i%12-8)
			if budget < 1 {
				budget = 1
			}
		}
		if err := RunTxnCrash(wseed, budget); err != nil {
			t.Fatalf("wseed=%d budget=%d: %v", wseed, budget, err)
		}
	}
}

// TestTxnCleanRun drives the transactional workload with no crash:
// the committed transaction must be fully present after a clean
// close and reopen.
func TestTxnCleanRun(t *testing.T) {
	if err := RunTxnCrash(5, -1); err != nil {
		t.Fatal(err)
	}
}
