// Package crashsim is a deterministic fault-injection harness for the
// storage stack. It wraps the segment stores and the write-ahead log
// file of an engine in fault-injecting implementations that crash the
// "machine" after a seeded budget of mutating I/O operations, models
// what an operating system may do to unsynced writes at a crash
// (survive, vanish, or tear at sector granularity), and checks that
// recovery restores exactly the committed state.
//
// The pieces:
//
//   - Injector counts mutating I/O and fires the crash (fault.go);
//   - Disk models durable storage across simulated reboots, Session is
//     one "process lifetime" whose unsynced writes are settled with
//     seeded outcomes when the next session opens (disk.go);
//   - Workload generates seeded NF² DDL/DML scripts covering flat
//     tables, all three complex-object layouts, ordered subtables,
//     overflow-length fields and versioned history (workload.go);
//   - CheckInvariants audits a recovered engine: page checksums and
//     LSN bounds, Mini-Directory walks, index round-trips (check.go);
//   - RunCrash drives one crash-recover-verify cycle against a replay
//     oracle (harness.go).
package crashsim

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrCrashed is returned by every I/O operation of a session after its
// simulated crash point: the process is "dead" and nothing it attempts
// afterwards reaches storage.
var ErrCrashed = errors.New("crashsim: simulated crash")

// Injector decides when the crash happens. Every mutating I/O
// operation (page write, store sync, log append, log sync) consumes
// one unit of budget; the operation that exhausts the budget is
// applied partially (torn) and fails with ErrCrashed, and every
// operation after it fails immediately.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	budget  int64 // remaining ops before the crash; < 0 means never
	ops     int64 // mutating ops observed
	crashed bool
}

// NewInjector returns an injector that crashes on the budget-th
// mutating operation (1-based); budget < 0 never crashes.
func NewInjector(seed int64, budget int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), budget: budget}
}

// step accounts one mutating operation. It returns crashNow=true for
// the operation on which the crash fires (the caller applies a torn
// prefix and returns ErrCrashed) and err=ErrCrashed for every
// operation after the crash.
func (in *Injector) step() (crashNow bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, ErrCrashed
	}
	in.ops++
	if in.budget >= 0 && in.ops >= in.budget {
		in.crashed = true
		return true, nil
	}
	return false, nil
}

// intn returns a seeded value in [0, n); used by the crashing
// operation to choose how much of it tears.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Kill fires the crash point immediately: every subsequent I/O
// operation of the session fails with ErrCrashed. The soft-chaos
// harness uses it to cut power at an arbitrary moment after live
// fault containment has been verified, composing with the crash
// recovery checks.
func (in *Injector) Kill() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashed = true
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Ops returns the number of mutating operations observed so far; a
// probe run with a negative budget uses it to size the crash matrix.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}
