package crashsim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/wal"
)

// sessWALSeg is the session's view of one WAL segment file: the full
// visible content plus the prefix known to be durable. What the
// unsynced suffix leaves on the disk is decided at settle, like every
// other unsynced write.
type sessWALSeg struct {
	data    []byte
	synced  int
	created bool // did not exist durably when this session first opened it
}

// OpenWALStorage returns the fault-injecting segment-file namespace of
// the log; it is the engine.Options.OpenWALStorage hook. Segment
// creation and removal are failpoints of their own, so the crash
// matrix lands inside rolls, checkpoints and recycling.
func (s *Session) OpenWALStorage() (wal.Storage, error) {
	return &faultWALStorage{s: s}, nil
}

type faultWALStorage struct {
	s *Session
}

func (st *faultWALStorage) List() ([]string, error) {
	if st.s.inj.Crashed() {
		return nil, ErrCrashed
	}
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	s.d.mu.Lock()
	for name := range s.d.walSegs {
		seen[name] = true
	}
	s.d.mu.Unlock()
	for name := range s.walSegFiles {
		seen[name] = true
	}
	for name := range s.walRemoved {
		delete(seen, name)
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (st *faultWALStorage) Open(name string) (wal.File, error) {
	s := st.s
	s.mu.Lock()
	if ws := s.walSegFiles[name]; ws != nil {
		s.mu.Unlock()
		return &faultSegFile{s: s, ws: ws}, nil
	}
	if !s.walRemoved[name] {
		s.d.mu.Lock()
		durable, ok := s.d.walSegs[name]
		if ok {
			ws := &sessWALSeg{data: append([]byte(nil), durable...), synced: len(durable)}
			s.walSegFiles[name] = ws
			s.d.mu.Unlock()
			s.mu.Unlock()
			return &faultSegFile{s: s, ws: ws}, nil
		}
		s.d.mu.Unlock()
	}
	s.mu.Unlock()
	// Creating a file is a mutating directory operation: a failpoint.
	crashNow, err := s.inj.step()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	delete(s.walRemoved, name) // a re-create supersedes a pending removal
	ws := &sessWALSeg{created: true}
	s.walSegFiles[name] = ws
	s.mu.Unlock()
	if crashNow {
		return nil, ErrCrashed
	}
	return &faultSegFile{s: s, ws: ws}, nil
}

func (st *faultWALStorage) Remove(name string) error {
	crashNow, err := st.s.inj.step()
	if err != nil {
		return err
	}
	s := st.s
	s.mu.Lock()
	delete(s.walSegFiles, name)
	s.walRemoved[name] = true
	s.mu.Unlock()
	if crashNow {
		// The removal is pending; settle decides whether it reached the
		// directory before the power failed.
		return ErrCrashed
	}
	return nil
}

// faultSegFile is one segment file of the session's segmented log.
// Write and Sync are failpoints, exactly like the single-file
// faultFile.
type faultSegFile struct {
	s  *Session
	ws *sessWALSeg
}

func (f *faultSegFile) Write(p []byte) (int, error) {
	crashNow, err := f.s.inj.step()
	if err != nil {
		return 0, err
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if crashNow {
		k := f.s.inj.intn(len(p) + 1)
		f.ws.data = append(f.ws.data, p[:k]...)
		return k, ErrCrashed
	}
	f.ws.data = append(f.ws.data, p...)
	return len(p), nil
}

func (f *faultSegFile) Sync() error {
	crashNow, err := f.s.inj.step()
	if err != nil {
		return err
	}
	if crashNow {
		return ErrCrashed
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.ws.synced = len(f.ws.data)
	return nil
}

func (f *faultSegFile) ReadAt(p []byte, off int64) (int, error) {
	if f.s.inj.Crashed() {
		return 0, ErrCrashed
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if off >= int64(len(f.ws.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ws.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultSegFile) Seek(offset int64, whence int) (int64, error) {
	if f.s.inj.Crashed() {
		return 0, ErrCrashed
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	switch whence {
	case io.SeekStart:
		return offset, nil
	case io.SeekEnd:
		return int64(len(f.ws.data)) + offset, nil
	default:
		return 0, fmt.Errorf("crashsim: unsupported seek whence %d", whence)
	}
}

func (f *faultSegFile) Truncate(size int64) error {
	if f.s.inj.Crashed() {
		return ErrCrashed
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if size < int64(len(f.ws.data)) {
		f.ws.data = f.ws.data[:size]
	}
	if f.ws.synced > int(size) {
		f.ws.synced = int(size)
	}
	return nil
}

func (f *faultSegFile) Close() error { return nil }
