package crashsim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/wal"
)

// sectorSize is the granularity at which a torn write mixes old and
// new content, modelling a disk that persists individual sectors of a
// page atomically but not the page as a whole.
const sectorSize = 512

// segImage is the durable image of one segment: the pages that ever
// reached stable storage plus the allocated extent.
type segImage struct {
	count uint32
	pages map[uint32][]byte
}

// Disk models stable storage across simulated reboots: the durable
// page images of every segment and the durable prefix of the log
// file. A Disk outlives the sessions that run on it; opening a new
// session first settles the unsynced writes of the previous one.
type Disk struct {
	mu      sync.Mutex
	segs    map[segment.ID]*segImage
	wal     []byte            // single-file log (OpenWALFile sessions)
	walSegs map[string][]byte // segmented log files (OpenWALStorage sessions)
	sess    *Session
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{segs: make(map[segment.ID]*segImage), walSegs: make(map[string][]byte)}
}

// Session is one process lifetime on the disk: it sees the durable
// state plus its own unsynced writes, counts mutating I/O against the
// injector's budget, and dies at the crash point. What its unsynced
// writes leave on the disk is decided when the NEXT session opens
// (settle), exactly like an operating system losing its page cache.
type Session struct {
	d   *Disk
	inj *Injector

	mu     sync.Mutex
	stores map[segment.ID]*faultStore
	pend   map[segment.ID]map[uint32][]byte // unsynced page writes
	counts map[segment.ID]uint32            // visible segment extents
	wal    []byte                           // full visible log content
	synced int                              // durable log prefix length

	walSegFiles map[string]*sessWALSeg // segmented log: session view per file
	walRemoved  map[string]bool        // segmented log: removals pending settle
}

// Open settles the previous session (if any) using outcomes drawn
// from seed and starts a new session that crashes after budget
// mutating I/O operations (budget < 0: never).
func (d *Disk) Open(seed, budget int64) *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.settleLocked(rand.New(rand.NewSource(seed*7919 + 13)))
	s := &Session{
		d:           d,
		inj:         NewInjector(seed, budget),
		stores:      make(map[segment.ID]*faultStore),
		pend:        make(map[segment.ID]map[uint32][]byte),
		counts:      make(map[segment.ID]uint32),
		wal:         append([]byte(nil), d.wal...),
		walSegFiles: make(map[string]*sessWALSeg),
		walRemoved:  make(map[string]bool),
	}
	s.synced = len(s.wal)
	d.sess = s
	return s
}

// settleLocked resolves the unsynced writes of the previous session.
// After a clean exit everything is promoted (a graceful shutdown
// flushes the page cache); after a crash each pending page write
// independently survives, vanishes, or tears at sector granularity,
// and the unsynced log tail survives as a seeded prefix.
func (d *Disk) settleLocked(rng *rand.Rand) {
	s := d.sess
	if s == nil {
		return
	}
	d.sess = nil
	crashed := s.inj.Crashed()

	ids := make([]segment.ID, 0, len(s.pend))
	for id := range s.pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		img := d.segLocked(id)
		nos := make([]uint32, 0, len(s.pend[id]))
		for no := range s.pend[id] {
			nos = append(nos, no)
		}
		sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
		for _, no := range nos {
			buf := s.pend[id][no]
			if !crashed {
				img.put(no, buf)
				continue
			}
			switch rng.Intn(3) {
			case 0: // the write reached the platter before power loss
				img.put(no, buf)
			case 1: // the write never left the cache
			case 2: // torn: some sectors new, some old
				old := img.pages[no]
				mixed := make([]byte, page.Size)
				if old != nil {
					copy(mixed, old)
				}
				for off := 0; off < page.Size; off += sectorSize {
					if rng.Intn(2) == 1 {
						copy(mixed[off:off+sectorSize], buf[off:off+sectorSize])
					}
				}
				img.put(no, mixed)
			}
		}
	}

	keep := len(s.wal)
	if crashed {
		keep = s.synced + rng.Intn(len(s.wal)-s.synced+1)
	}
	d.wal = append([]byte(nil), s.wal[:keep]...)

	// Segmented log files. Removals settle first: after a crash each
	// one independently reached the directory or not (an unsynced
	// metadata operation). Then the surviving content of every file the
	// session touched: a file created but never synced may vanish
	// entirely; otherwise the synced prefix survives plus a seeded
	// portion of the unsynced tail.
	removed := make([]string, 0, len(s.walRemoved))
	for name := range s.walRemoved {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		if !crashed || rng.Intn(2) == 1 {
			delete(d.walSegs, name)
		}
	}
	names := make([]string, 0, len(s.walSegFiles))
	for name := range s.walSegFiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := s.walSegFiles[name]
		if !crashed {
			d.walSegs[name] = append([]byte(nil), ws.data...)
			continue
		}
		if ws.created && ws.synced == 0 && rng.Intn(2) == 1 {
			// The create itself never reached the directory.
			delete(d.walSegs, name)
			continue
		}
		k := ws.synced + rng.Intn(len(ws.data)-ws.synced+1)
		d.walSegs[name] = append([]byte(nil), ws.data[:k]...)
	}
}

func (d *Disk) segLocked(id segment.ID) *segImage {
	img := d.segs[id]
	if img == nil {
		img = &segImage{pages: make(map[uint32][]byte)}
		d.segs[id] = img
	}
	return img
}

func (img *segImage) put(no uint32, buf []byte) {
	img.pages[no] = append([]byte(nil), buf...)
	if no > img.count {
		img.count = no
	}
}

// WALSize returns the durable log length; directed tests use it to
// observe settlement outcomes.
func (d *Disk) WALSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wal)
}

// Crashed reports whether this session has hit its crash point.
func (s *Session) Crashed() bool { return s.inj.Crashed() }

// Kill crashes the session immediately: all later I/O fails with
// ErrCrashed and the next Open settles the unsynced writes with
// seeded survive/vanish/tear outcomes, exactly as for a budgeted
// crash.
func (s *Session) Kill() { s.inj.Kill() }

// Ops returns the mutating I/O operations counted so far; probe runs
// use it to size the crash matrix.
func (s *Session) Ops() int64 { return s.inj.Ops() }

// OpenStore returns the fault-injecting store of a segment; it is the
// engine.Options.OpenStore hook.
func (s *Session) OpenStore(id segment.ID) (segment.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.stores[id]
	if fs == nil {
		fs = &faultStore{s: s, id: id}
		s.stores[id] = fs
	}
	return fs, nil
}

// OpenWALFile returns the fault-injecting log file; it is the
// engine.Options.OpenWALFile hook.
func (s *Session) OpenWALFile() (wal.File, error) {
	return &faultFile{s: s}, nil
}

// countOf returns the visible extent of a segment, initializing it
// from the durable image on first use.
func (s *Session) countOf(id segment.ID) uint32 {
	if c, ok := s.counts[id]; ok {
		return c
	}
	s.d.mu.Lock()
	c := uint32(0)
	if img := s.d.segs[id]; img != nil {
		c = img.count
	}
	s.d.mu.Unlock()
	s.counts[id] = c
	return c
}

// faultStore implements segment.Store over the session's view of one
// segment. WritePage and Sync are failpoints.
type faultStore struct {
	s  *Session
	id segment.ID
}

func (fs *faultStore) ReadPage(no uint32, buf []byte) error {
	if fs.s.inj.Crashed() {
		return ErrCrashed
	}
	s := fs.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if no == 0 || no > s.countOf(fs.id) {
		return fmt.Errorf("crashsim: read of unallocated page %d.%d", fs.id, no)
	}
	if p := s.pend[fs.id][no]; p != nil {
		copy(buf, p)
		return nil
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if img := s.d.segs[fs.id]; img != nil && img.pages[no] != nil {
		copy(buf, img.pages[no])
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

func (fs *faultStore) WritePage(no uint32, buf []byte) error {
	crashNow, err := fs.s.inj.step()
	if err != nil {
		return err
	}
	s := fs.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if no == 0 {
		return fmt.Errorf("crashsim: write of page 0")
	}
	if no > s.countOf(fs.id) {
		s.counts[fs.id] = no
	}
	if s.pend[fs.id] == nil {
		s.pend[fs.id] = make(map[uint32][]byte)
	}
	if !crashNow {
		s.pend[fs.id][no] = append([]byte(nil), buf...)
		return nil
	}
	// The crashing write applies a sector prefix over the previously
	// visible content, then the process dies.
	old := make([]byte, page.Size)
	if p := s.pend[fs.id][no]; p != nil {
		copy(old, p)
	} else {
		s.d.mu.Lock()
		if img := s.d.segs[fs.id]; img != nil && img.pages[no] != nil {
			copy(old, img.pages[no])
		}
		s.d.mu.Unlock()
	}
	k := fs.s.inj.intn(page.Size/sectorSize+1) * sectorSize
	copy(old[:k], buf[:k])
	s.pend[fs.id][no] = old
	return ErrCrashed
}

func (fs *faultStore) PageCount() uint32 {
	fs.s.mu.Lock()
	defer fs.s.mu.Unlock()
	return fs.s.countOf(fs.id)
}

func (fs *faultStore) Allocate() uint32 {
	// Allocation only moves the in-memory extent (segment.Store has no
	// error path here); a dead session's allocations are harmless
	// because every subsequent write fails.
	fs.s.mu.Lock()
	defer fs.s.mu.Unlock()
	c := fs.s.countOf(fs.id) + 1
	fs.s.counts[fs.id] = c
	return c
}

func (fs *faultStore) Sync() error {
	crashNow, err := fs.s.inj.step()
	if err != nil {
		return err
	}
	if crashNow {
		// Power fails before the flush; settlement decides the fate of
		// every pending write.
		return ErrCrashed
	}
	s := fs.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	img := s.d.segLocked(fs.id)
	for no, buf := range s.pend[fs.id] {
		img.put(no, buf)
	}
	delete(s.pend, fs.id)
	return nil
}

func (fs *faultStore) Close() error { return nil }

// faultFile implements wal.File over the session's view of the log.
// Write and Sync are failpoints.
type faultFile struct {
	s *Session
}

func (f *faultFile) Write(p []byte) (int, error) {
	crashNow, err := f.s.inj.step()
	if err != nil {
		return 0, err
	}
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if crashNow {
		k := f.s.inj.intn(len(p) + 1)
		s.wal = append(s.wal, p[:k]...)
		return k, ErrCrashed
	}
	s.wal = append(s.wal, p...)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	crashNow, err := f.s.inj.step()
	if err != nil {
		return err
	}
	if crashNow {
		return ErrCrashed
	}
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = len(s.wal)
	return nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if f.s.inj.Crashed() {
		return 0, ErrCrashed
	}
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= int64(len(s.wal)) {
		return 0, io.EOF
	}
	n := copy(p, s.wal[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Seek only repositions the append cursor conceptually; the session
// always appends at the end of the visible log, which is where the
// engine seeks to after scanning for the last complete record.
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if f.s.inj.Crashed() {
		return 0, ErrCrashed
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	switch whence {
	case io.SeekStart:
		return offset, nil
	case io.SeekEnd:
		return int64(len(f.s.wal)) + offset, nil
	default:
		return 0, fmt.Errorf("crashsim: unsupported seek whence %d", whence)
	}
}

func (f *faultFile) Truncate(size int64) error {
	if f.s.inj.Crashed() {
		return ErrCrashed
	}
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < int64(len(s.wal)) {
		s.wal = s.wal[:size]
	}
	if s.synced > int(size) {
		s.synced = int(size)
	}
	return nil
}

func (f *faultFile) Close() error { return nil }
